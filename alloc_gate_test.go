// Allocation gates: these tests pin the zero-allocation contract of
// the engine hot path (DESIGN.md "Engine performance"). They are part
// of the ordinary test suite, so `go test ./...` and `make ci` fail if
// a change reintroduces per-event or per-packet allocation.
package tlb_test

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// TestAllocGateEventScheduleCancel: a steady-state At+Cancel cycle —
// the pattern every transport timer re-arm executes — must not
// allocate once the event freelist is warm.
func TestAllocGateEventScheduleCancel(t *testing.T) {
	s := eventsim.New()
	fn := func() {}
	cycle := func() { s.Cancel(s.At(s.Now()+1, fn)) }
	for i := 0; i < 4096; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(5000, cycle); allocs != 0 {
		t.Fatalf("At+Cancel cycle allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocGateEventScheduleFire: a steady-state At+fire cycle must
// not allocate either — firing releases the node back to the freelist
// the next At pops from.
func TestAllocGateEventScheduleFire(t *testing.T) {
	s := eventsim.New()
	fn := func() {}
	cycle := func() {
		s.At(s.Now()+1, fn)
		if !s.Step() {
			t.Fatal("nothing to step")
		}
	}
	for i := 0; i < 4096; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(5000, cycle); allocs != 0 {
		t.Fatalf("At+fire cycle allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocGateFarFutureTimer: an At+Cancel cycle beyond the wheel
// horizon — the RTO-timer pattern, which lands in the calendar queue's
// spill heap rather than a wheel slot — must not allocate either.
func TestAllocGateFarFutureTimer(t *testing.T) {
	s := eventsim.New()
	fn := func() {}
	const far = 50 * units.Millisecond // >> the ~1 ms wheel horizon
	cycle := func() { s.Cancel(s.At(s.Now()+far, fn)) }
	for i := 0; i < 4096; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(5000, cycle); allocs != 0 {
		t.Fatalf("far-future At+Cancel cycle allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocGateSameTickBatch: scheduling a burst at one instant and
// draining it through RunUntil's batched same-timestamp dispatch must
// not allocate in steady state.
func TestAllocGateSameTickBatch(t *testing.T) {
	s := eventsim.New()
	fn := func() {}
	burst := func() {
		at := s.Now() + 1
		for i := 0; i < 16; i++ {
			s.At(at, fn)
		}
		s.RunUntil(at)
	}
	for i := 0; i < 1024; i++ {
		burst()
	}
	if allocs := testing.AllocsPerRun(2000, burst); allocs != 0 {
		t.Fatalf("same-tick batch drain allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocGateAtArg: the closure-free (fn, arg) scheduling variant
// with a pointer-typed argument must not allocate in steady state
// (this is the Port delivery path).
func TestAllocGateAtArg(t *testing.T) {
	s := eventsim.New()
	type payload struct{ n int }
	arg := &payload{}
	fn := func(a any) { a.(*payload).n++ }
	cycle := func() {
		s.AtArg(s.Now()+1, fn, arg)
		if !s.Step() {
			t.Fatal("nothing to step")
		}
	}
	for i := 0; i < 4096; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(5000, cycle); allocs != 0 {
		t.Fatalf("AtArg+fire cycle allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocGatePortTransit: the full per-packet path — pool Get,
// Port.Send (queue admission + delivery scheduling), serialization,
// delivery, pool release — must be allocation-free in steady state.
func TestAllocGatePortTransit(t *testing.T) {
	s := eventsim.New()
	pool := netem.NewPacketPool()
	p := netem.NewPort(s,
		netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		netem.QueueConfig{Capacity: 1 << 20},
		func(pkt *netem.Packet) { pool.Put(pkt) }, "gate")
	transit := func() {
		pkt := pool.Get()
		pkt.Flow = netem.FlowID{Src: 1, Dst: 2}
		pkt.Kind = netem.Data
		pkt.Payload = 1460
		pkt.Wire = 1500
		if !p.Send(pkt) {
			t.Fatal("send refused")
		}
		s.Run()
	}
	for i := 0; i < 4096; i++ {
		transit()
	}
	if allocs := testing.AllocsPerRun(2000, transit); allocs != 0 {
		t.Fatalf("steady-state port transit allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocGatePortTransitPipelined covers the burst shape the real
// fabric produces — many packets admitted before the drain runs — so
// the queue ring and heap exercise depth > 1.
func TestAllocGatePortTransitPipelined(t *testing.T) {
	s := eventsim.New()
	pool := netem.NewPacketPool()
	p := netem.NewPort(s,
		netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		netem.QueueConfig{Capacity: 1 << 20},
		func(pkt *netem.Packet) { pool.Put(pkt) }, "gate")
	burst := func() {
		for i := 0; i < 64; i++ {
			pkt := pool.Get()
			pkt.Flow = netem.FlowID{Src: 1, Dst: 2}
			pkt.Kind = netem.Data
			pkt.Payload = 1460
			pkt.Wire = 1500
			if !p.Send(pkt) {
				t.Fatal("send refused")
			}
		}
		s.Run()
	}
	for i := 0; i < 256; i++ {
		burst()
	}
	if allocs := testing.AllocsPerRun(500, burst); allocs != 0 {
		t.Fatalf("steady-state 64-deep transit burst allocates %.1f allocs/op, want 0", allocs)
	}
}
