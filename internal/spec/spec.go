// Package spec is the declarative scenario layer: a versioned JSON
// description of one simulation run — topology, transport, workload,
// scheme + parameters, fault schedule, outputs — with a validating
// compiler down to sim.Scenario. Every figure runner in
// internal/experiments builds its scenarios through this layer, so
// anything the experiments can run, a spec file can too (and vice
// versa: cmd/tlbsim -spec runs any spec file with no Go changes).
//
// Physical quantities are exact unit strings ("150us", "100KB",
// "64KiB", "20Mbps"; see units.Parse*/Format*), so a compiled spec
// marshals back to the same scenario byte for byte. Validation
// aggregates every problem with a JSON-path-style location
// ("workload.load: must be in (0,1]") instead of stopping at the
// first.
package spec

import (
	"encoding/json"
	"sort"

	"tlb/internal/units"
)

// Version is the spec format version this build reads and writes.
const Version = 1

// Duration is an exact duration string ("150us", "30s").
type Duration string

// Size is an exact byte-size string ("100KB", "64KiB").
type Size string

// Rate is an exact bandwidth string ("1Gbps", "20Mbps").
type Rate string

// Dur renders a time as its spec string.
func Dur(t units.Time) Duration { return Duration(units.FormatTime(t)) }

// Sz renders a byte count as its spec string.
func Sz(b units.Bytes) Size { return Size(units.FormatBytes(b)) }

// Bw renders a bandwidth as its spec string.
func Bw(b units.Bandwidth) Rate { return Rate(units.FormatBandwidth(b)) }

// Spec is one complete scenario description.
type Spec struct {
	// Version is the format version (see Version).
	Version int `json:"version"`
	// Name labels the run in results and progress lines.
	Name string `json:"name"`
	// RunID, when set, is echoed back by the serve layer (run handles,
	// SSE events, report rows). Compile ignores it — it is submission
	// metadata, not simulation input.
	RunID string `json:"runId,omitempty"`
	// Seed drives all randomness; the same spec + seed reproduces
	// every number exactly.
	Seed uint64 `json:"seed"`

	Scheme   Scheme   `json:"scheme"`
	Topology Topology `json:"topology"`
	// Transport overrides individual endpoint parameters; unset fields
	// keep the paper's DCTCP defaults.
	Transport *Transport `json:"transport,omitempty"`
	Workload  Workload   `json:"workload"`
	// Faults is the run's link-fault schedule (leaf-spine fabrics
	// only).
	Faults []Fault `json:"faults,omitempty"`
	// Replication enables RepFlow-style short-flow replication on top
	// of the scheme.
	Replication *Replication `json:"replication,omitempty"`

	Run     Run     `json:"run"`
	Outputs Outputs `json:"outputs"`
}

// Scheme names the balancer and its parameters. Name must be a
// registered scheme (lb.Names() enumerates them); Params must match
// that scheme's schema.
type Scheme struct {
	Name string `json:"name"`
	// Label, when set, is the display name results carry ("flow" for
	// ecmp in the motivation figures); it defaults to Name.
	Label  string `json:"label,omitempty"`
	Params Params `json:"params,omitempty"`
}

// Params carries scheme parameters. Values are unit strings for
// quantities and plain JSON numbers/bools/strings otherwise; it
// marshals with sorted keys so specs serialize deterministically.
type Params map[string]any

// MarshalJSON writes the map in sorted-key order.
func (p Params) MarshalJSON() ([]byte, error) {
	keys := make([]string, 0, len(p))
	//simlint:allow maporder(keys are collected here and sorted below before any use)
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := []byte{'{'}
	for i, k := range keys {
		if i > 0 {
			buf = append(buf, ',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		vb, err := json.Marshal(p[k])
		if err != nil {
			return nil, err
		}
		buf = append(buf, kb...)
		buf = append(buf, ':')
		buf = append(buf, vb...)
	}
	return append(buf, '}'), nil
}

// Topology describes the fabric.
type Topology struct {
	// Kind is "leafspine" (default when empty) or "fattree".
	Kind string `json:"kind,omitempty"`

	// Leaf-spine dimensions.
	Leaves       int `json:"leaves,omitempty"`
	Spines       int `json:"spines,omitempty"`
	HostsPerLeaf int `json:"hostsPerLeaf,omitempty"`

	// K is the fat-tree arity (k pods, k^3/4 hosts).
	K int `json:"k,omitempty"`

	HostLink   Link  `json:"hostLink"`
	FabricLink Link  `json:"fabricLink"`
	Queue      Queue `json:"queue"`

	// Overrides re-parameterize specific leaf-spine pairs (static
	// asymmetry, as in the paper's Fig. 16/17).
	Overrides []Override `json:"overrides,omitempty"`
}

// Link is one directed link's parameters.
type Link struct {
	Bandwidth Rate     `json:"bandwidth"`
	Delay     Duration `json:"delay"`
}

// Queue parameterizes every output queue.
type Queue struct {
	// Capacity is the buffer size in packets.
	Capacity int `json:"capacity"`
	// ECNThreshold is the marking threshold in packets; 0 disables
	// marking (drop-tail only).
	ECNThreshold int `json:"ecnThreshold,omitempty"`
}

// Override re-parameterizes one leaf-spine pair in both directions.
type Override struct {
	Leaf  int  `json:"leaf"`
	Spine int  `json:"spine"`
	Link  Link `json:"link"`
}

// Transport overrides endpoint parameters; nil fields keep
// transport.DefaultConfig.
type Transport struct {
	MSS               *Size     `json:"mss,omitempty"`
	HeaderBytes       *Size     `json:"headerBytes,omitempty"`
	InitCwnd          *int      `json:"initCwnd,omitempty"`
	RcvWindow         *Size     `json:"rcvWindow,omitempty"`
	MinRTO            *Duration `json:"minRTO,omitempty"`
	MaxRTO            *Duration `json:"maxRTO,omitempty"`
	InitialRTO        *Duration `json:"initialRTO,omitempty"`
	DupAckThreshold   *int      `json:"dupAckThreshold,omitempty"`
	DCTCP             *bool     `json:"dctcp,omitempty"`
	DCTCPGain         *float64  `json:"dctcpGain,omitempty"`
	Handshake         *bool     `json:"handshake,omitempty"`
	DelayedAck        *bool     `json:"delayedAck,omitempty"`
	DelayedAckTimeout *Duration `json:"delayedAckTimeout,omitempty"`
	SACK              *bool     `json:"sack,omitempty"`
}

// Workload generates the run's flows. Exactly one kind is active;
// the other kinds' fields must be unset.
type Workload struct {
	// Kind is "poisson", "mix" or "interpod".
	Kind string `json:"kind"`
	// Seed, when set, overrides the workload RNG seed; the default is
	// the scenario seed + 1 (the repository-wide convention).
	Seed *uint64 `json:"seed,omitempty"`

	// Poisson (open-loop arrivals at a fabric load; leaf-spine only):
	// Flows arrive Poisson between random cross-leaf host pairs, sized
	// from Sizes, at rate load * aggregate-fabric-capacity / mean size.
	Flows int       `json:"flows,omitempty"`
	Load  float64   `json:"load,omitempty"`
	Sizes *SizeDist `json:"sizes,omitempty"`

	// Mix (closed populations of shorts and longs): each group is one
	// StaticMix drawn from the shared workload RNG in order. Senders
	// and Receivers default to leaf 0's hosts and leaf 1's hosts.
	Groups    []MixGroup `json:"groups,omitempty"`
	Senders   []int      `json:"senders,omitempty"`
	Receivers []int      `json:"receivers,omitempty"`

	// InterPod (fat-tree cross-pod traffic).
	InterPod *InterPod `json:"interPod,omitempty"`

	// Deadlines assigns completion budgets during generation (poisson
	// and mix groups without their own).
	Deadlines *Deadlines `json:"deadlines,omitempty"`

	// DeadlineOverride rewrites every generated flow's deadline after
	// generation — the model-verification experiments pin all shorts
	// to one budget D this way.
	DeadlineOverride *DeadlineOverride `json:"deadlineOverride,omitempty"`
}

// MixGroup is one StaticMix population.
type MixGroup struct {
	Shorts     int       `json:"shorts,omitempty"`
	Longs      int       `json:"longs,omitempty"`
	ShortSizes *SizeDist `json:"shortSizes,omitempty"`
	LongSizes  *SizeDist `json:"longSizes,omitempty"`
	// ArrivalJitter spreads starts uniformly over [0, jitter].
	ArrivalJitter Duration `json:"arrivalJitter,omitempty"`
	// Deadlines, when set, overrides Workload.Deadlines for this group.
	Deadlines *Deadlines `json:"deadlines,omitempty"`
}

// InterPod is the fat-tree workload: flows between hosts in different
// pods, arriving with uniform random gaps.
type InterPod struct {
	Flows int      `json:"flows"`
	Sizes SizeDist `json:"sizes"`
	// MaxGap bounds the uniform inter-arrival gap.
	MaxGap Duration `json:"maxGap"`
	// Deadline = start + base + U[0, jitter), for flows at or below
	// OnlyBelow; jitter 0 disables deadlines.
	DeadlineBase      Duration `json:"deadlineBase,omitempty"`
	DeadlineJitter    Duration `json:"deadlineJitter,omitempty"`
	DeadlineOnlyBelow Size     `json:"deadlineOnlyBelow,omitempty"`
}

// SizeDist is a flow-size distribution.
type SizeDist struct {
	// Kind is "websearch", "datamining", "uniform" or "fixed".
	Kind string `json:"kind"`
	// Min/Max bound the uniform distribution.
	Min Size `json:"min,omitempty"`
	Max Size `json:"max,omitempty"`
	// Size is the fixed distribution's value.
	Size Size `json:"size,omitempty"`
	// Truncate caps samples of any kind (the experiments truncate the
	// heavy tails to bound run time).
	Truncate Size `json:"truncate,omitempty"`
}

// Deadlines assigns uniform completion budgets.
type Deadlines struct {
	Min Duration `json:"min"`
	Max Duration `json:"max"`
	// OnlyBelow restricts deadlines to flows at or below this size;
	// empty applies them to every flow.
	OnlyBelow Size `json:"onlyBelow,omitempty"`
}

// DeadlineOverride rewrites deadlines after generation: flows at or
// below OnlyBelow (everything when empty) get start + Deadline, all
// others get none.
type DeadlineOverride struct {
	Deadline  Duration `json:"deadline"`
	OnlyBelow Size     `json:"onlyBelow,omitempty"`
}

// Fault is one scheduled link fault (see internal/faults).
type Fault struct {
	At    Duration `json:"at"`
	Leaf  int      `json:"leaf"`
	Spine int      `json:"spine"`
	// Op is "down", "restore", "derate" or "delay".
	Op string `json:"op"`
	// Dir is "both" (default when empty), "leafToSpine" or
	// "spineToLeaf".
	Dir string `json:"dir,omitempty"`
	// Bandwidth is the derate target.
	Bandwidth Rate `json:"bandwidth,omitempty"`
	// Delay is the new one-way propagation delay.
	Delay Duration `json:"delay,omitempty"`
}

// Replication parameterizes RepFlow-style replication.
type Replication struct {
	Threshold Size `json:"threshold"`
	Copies    int  `json:"copies"`
}

// Run sets the stop criteria and result classification.
type Run struct {
	// MaxTime hard-stops the run (the runner defaults to 60s when
	// empty).
	MaxTime Duration `json:"maxTime,omitempty"`
	// StopWhenDone ends the run once every flow completed.
	StopWhenDone bool `json:"stopWhenDone,omitempty"`
	// ShortThreshold classifies flows for result aggregation (default
	// 100KB).
	ShortThreshold Size `json:"shortThreshold,omitempty"`
	// Shards > 1 partitions the topology spatially and runs one shard
	// per goroutine with deterministic cross-shard handoff; results are
	// byte-identical at any shard count. Clamped to the topology's
	// parallelism (leaf groups / pods); 0 or 1 runs the single-engine
	// path.
	Shards int `json:"shards,omitempty"`
}

// Outputs selects optional measurement collection.
type Outputs struct {
	// SampleShortPackets retains one sample per short-flow data packet
	// (memory-heavy; the Fig. 3 CDFs).
	SampleShortPackets bool `json:"sampleShortPackets,omitempty"`
	// CollectTimeSeries enables the bucketed instantaneous series.
	CollectTimeSeries bool `json:"collectTimeSeries,omitempty"`
	// TimeBucket is the series bucket width (default 1ms).
	TimeBucket Duration `json:"timeBucket,omitempty"`
	// StreamStats folds flow records into fixed-size per-class
	// aggregates instead of retaining them — O(1) memory per flow, for
	// large-scale runs. Poisson and interpod workloads also generate
	// lazily under it. Incompatible with sampleShortPackets,
	// collectTimeSeries and replication.
	StreamStats bool `json:"streamStats,omitempty"`
	// Report includes this run in the self-contained HTML report the
	// serve layer (and examples/serve) renders. Compile ignores it; a
	// faulted leaf-spine run with report set also records its
	// trace.LinkFault timeline for the report's fault section.
	Report bool `json:"report,omitempty"`
}
