package spec

import (
	"fmt"
	"strings"

	"tlb/internal/eventsim"
	"tlb/internal/faults"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// LeafSpineEnv derives the scheme-builder environment from a
// leaf-spine fabric: the spine paths' rate, the base RTT and the
// queue parameters.
func LeafSpineEnv(cfg topology.Config) lb.Env {
	return lb.Env{
		FabricBandwidth: cfg.FabricLink.Bandwidth,
		BaseRTT:         cfg.BaseRTT(),
		QueueCapacity:   cfg.Queue.Capacity,
		ECNThreshold:    cfg.Queue.ECNThreshold,
	}
}

// FatTreeEnv derives the scheme-builder environment from a fat-tree
// fabric. The base RTT crosses 2 host links and 4 fabric links each
// way (host-edge-agg-core-agg-edge-host).
func FatTreeEnv(cfg topology.FatTreeConfig) lb.Env {
	return lb.Env{
		FabricBandwidth: cfg.FabricLink.Bandwidth,
		BaseRTT:         2 * (2*cfg.HostLink.Delay + 4*cfg.FabricLink.Delay),
		QueueCapacity:   cfg.Queue.Capacity,
		ECNThreshold:    cfg.Queue.ECNThreshold,
	}
}

// checker accumulates validation problems with JSON-path-style
// locations so one pass reports everything wrong with a spec.
type checker struct {
	errs []string
}

func (c *checker) errf(path, format string, args ...any) {
	c.errs = append(c.errs, path+": "+fmt.Sprintf(format, args...))
}

func (c *checker) err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return fmt.Errorf("%s", strings.Join(c.errs, "\n"))
}

// addErr folds an already-located error (e.g. from lb.Build) into the
// accumulated list.
func (c *checker) addErr(err error) {
	if err != nil {
		c.errs = append(c.errs, strings.Split(err.Error(), "\n")...)
	}
}

func (c *checker) dur(path string, d Duration) units.Time {
	if d == "" {
		return 0
	}
	t, err := units.ParseTime(string(d))
	if err != nil {
		c.errf(path, "%v", err)
		return 0
	}
	return t
}

func (c *checker) size(path string, s Size) units.Bytes {
	if s == "" {
		return 0
	}
	b, err := units.ParseBytes(string(s))
	if err != nil {
		c.errf(path, "%v", err)
		return 0
	}
	return b
}

func (c *checker) rate(path string, r Rate) units.Bandwidth {
	if r == "" {
		return 0
	}
	b, err := units.ParseBandwidth(string(r))
	if err != nil {
		c.errf(path, "%v", err)
		return 0
	}
	return b
}

// Validate checks the spec without materializing flows; it reports
// every problem found, located by JSON path.
func (s *Spec) Validate() error {
	_, err := s.compile(false)
	return err
}

// Compile validates the spec and lowers it to a runnable
// sim.Scenario, materializing the workload's flows.
func (s *Spec) Compile() (sim.Scenario, error) {
	return s.compile(true)
}

func (s *Spec) compile(materialize bool) (sim.Scenario, error) {
	c := &checker{}
	var sc sim.Scenario

	if s.Version != Version {
		c.errf("version", "unsupported spec version %d (this build reads version %d)", s.Version, Version)
	}
	if s.Name == "" {
		c.errf("name", "must be set (it labels the run's results)")
	}
	sc.Name = s.Name
	sc.Seed = s.Seed

	// Topology.
	kind := s.Topology.Kind
	if kind == "" {
		kind = "leafspine"
	}
	var (
		lsCfg topology.Config
		ftCfg topology.FatTreeConfig
		env   lb.Env
	)
	switch kind {
	case "leafspine":
		lsCfg = s.compileLeafSpine(c)
		env = LeafSpineEnv(lsCfg)
		sc.Topology = lsCfg
	case "fattree":
		ftCfg = s.compileFatTree(c)
		env = FatTreeEnv(ftCfg)
		cfg := ftCfg
		sc.BuildNetwork = func(sm *eventsim.Sim, f lb.Factory, rng *eventsim.RNG, deliver topology.DeliverFunc) (topology.Network, error) {
			return topology.NewFatTree(sm, cfg, f, rng, deliver)
		}
	default:
		c.errf("topology.kind", "unknown kind %q (valid: leafspine, fattree)", s.Topology.Kind)
	}

	// Transport: the paper's DCTCP defaults with explicit overrides.
	sc.Transport = s.compileTransport(c)

	// Scheme, through the registry.
	if s.Scheme.Name == "" {
		c.errf("scheme.name", "must name a registered scheme (valid: %s)", strings.Join(lb.Names(), ", "))
	} else {
		f, err := lb.Build(s.Scheme.Name, s.Scheme.Params, "scheme.params", env)
		if err != nil {
			if _, known := lb.Lookup(s.Scheme.Name); !known {
				c.errf("scheme.name", "%v", err)
			} else {
				c.addErr(err)
			}
		} else {
			sc.Balancer = f
		}
	}
	sc.SchemeName = s.Scheme.Label
	if sc.SchemeName == "" {
		sc.SchemeName = s.Scheme.Name
	}

	// Workload.
	sc.Flows, sc.FlowSourceNew = s.compileWorkload(c, kind, lsCfg, ftCfg, materialize)

	// Faults address leaf-spine pairs; the fat-tree build has no
	// notion of them.
	if len(s.Faults) > 0 {
		if kind == "fattree" {
			c.errf("faults", "fault schedules address leaf-spine links and cannot apply to a fattree topology")
		}
		sc.Faults = s.compileFaults(c)
	}

	if s.Replication != nil {
		r := sim.ReplicationConfig{
			Threshold: c.size("replication.threshold", s.Replication.Threshold),
			Copies:    s.Replication.Copies,
		}
		if r.Copies < 2 {
			c.errf("replication.copies", "need at least 2 copies, got %d", r.Copies)
		}
		if r.Threshold <= 0 {
			c.errf("replication.threshold", "must be a positive size")
		}
		sc.Replication = &r
	}

	sc.MaxTime = c.dur("run.maxTime", s.Run.MaxTime)
	if sc.MaxTime < 0 {
		c.errf("run.maxTime", "must not be negative")
	}
	sc.StopWhenDone = s.Run.StopWhenDone
	sc.ShortThreshold = c.size("run.shortThreshold", s.Run.ShortThreshold)
	if s.Run.Shards < 0 {
		c.errf("run.shards", "must not be negative")
	}
	sc.Shards = s.Run.Shards

	sc.SampleShortPackets = s.Outputs.SampleShortPackets
	sc.CollectTimeSeries = s.Outputs.CollectTimeSeries
	sc.TimeBucket = c.dur("outputs.timeBucket", s.Outputs.TimeBucket)
	sc.StreamStats = s.Outputs.StreamStats
	if s.Outputs.StreamStats {
		if s.Outputs.SampleShortPackets {
			c.errf("outputs.streamStats", "incompatible with outputs.sampleShortPackets (per-packet samples need retained records)")
		}
		if s.Outputs.CollectTimeSeries {
			c.errf("outputs.streamStats", "incompatible with outputs.collectTimeSeries (the series sampler scans retained records)")
		}
		if s.Replication != nil {
			c.errf("outputs.streamStats", "incompatible with replication (racing copies need retained records)")
		}
	}

	if err := c.err(); err != nil {
		return sim.Scenario{}, fmt.Errorf("spec %q invalid:\n%w", s.Name, err)
	}
	return sc, nil
}

func (s *Spec) compileLeafSpine(c *checker) topology.Config {
	t := s.Topology
	for _, bad := range []struct {
		path string
		set  bool
	}{
		{"topology.k", t.K != 0},
	} {
		if bad.set {
			c.errf(bad.path, "only applies to kind %q", "fattree")
		}
	}
	cfg := topology.Config{
		Leaves:       t.Leaves,
		Spines:       t.Spines,
		HostsPerLeaf: t.HostsPerLeaf,
		HostLink:     s.compileLink(c, "topology.hostLink", t.HostLink),
		FabricLink:   s.compileLink(c, "topology.fabricLink", t.FabricLink),
		Queue: netem.QueueConfig{
			Capacity:     t.Queue.Capacity,
			ECNThreshold: t.Queue.ECNThreshold,
		},
	}
	for i, o := range t.Overrides {
		cfg.Overrides = append(cfg.Overrides, topology.LinkOverride{
			Leaf:  o.Leaf,
			Spine: o.Spine,
			Link:  s.compileLink(c, fmt.Sprintf("topology.overrides[%d].link", i), o.Link),
		})
	}
	if err := cfg.Validate(); err != nil {
		c.errf("topology", "%v", err)
	}
	return cfg
}

func (s *Spec) compileFatTree(c *checker) topology.FatTreeConfig {
	t := s.Topology
	for _, bad := range []struct {
		path string
		set  bool
	}{
		{"topology.leaves", t.Leaves != 0},
		{"topology.spines", t.Spines != 0},
		{"topology.hostsPerLeaf", t.HostsPerLeaf != 0},
		{"topology.overrides", len(t.Overrides) != 0},
	} {
		if bad.set {
			c.errf(bad.path, "only applies to kind %q", "leafspine")
		}
	}
	cfg := topology.FatTreeConfig{
		K:          t.K,
		HostLink:   s.compileLink(c, "topology.hostLink", t.HostLink),
		FabricLink: s.compileLink(c, "topology.fabricLink", t.FabricLink),
		Queue: netem.QueueConfig{
			Capacity:     t.Queue.Capacity,
			ECNThreshold: t.Queue.ECNThreshold,
		},
	}
	if err := cfg.Validate(); err != nil {
		c.errf("topology", "%v", err)
	}
	return cfg
}

func (s *Spec) compileLink(c *checker, path string, l Link) netem.LinkConfig {
	cfg := netem.LinkConfig{
		Bandwidth: c.rate(path+".bandwidth", l.Bandwidth),
		Delay:     c.dur(path+".delay", l.Delay),
	}
	if l.Bandwidth == "" {
		c.errf(path+".bandwidth", "must be set")
	}
	if cfg.Delay < 0 {
		c.errf(path+".delay", "must not be negative")
	}
	return cfg
}

func (s *Spec) compileTransport(c *checker) transport.Config {
	cfg := transport.DefaultConfig()
	t := s.Transport
	if t == nil {
		return cfg
	}
	if t.MSS != nil {
		cfg.MSS = c.size("transport.mss", *t.MSS)
	}
	if t.HeaderBytes != nil {
		cfg.HeaderBytes = c.size("transport.headerBytes", *t.HeaderBytes)
	}
	if t.InitCwnd != nil {
		cfg.InitCwnd = *t.InitCwnd
	}
	if t.RcvWindow != nil {
		cfg.RcvWindow = c.size("transport.rcvWindow", *t.RcvWindow)
	}
	if t.MinRTO != nil {
		cfg.MinRTO = c.dur("transport.minRTO", *t.MinRTO)
	}
	if t.MaxRTO != nil {
		cfg.MaxRTO = c.dur("transport.maxRTO", *t.MaxRTO)
	}
	if t.InitialRTO != nil {
		cfg.InitialRTO = c.dur("transport.initialRTO", *t.InitialRTO)
	}
	if t.DupAckThreshold != nil {
		cfg.DupAckThreshold = *t.DupAckThreshold
	}
	if t.DCTCP != nil {
		cfg.DCTCP = *t.DCTCP
	}
	if t.DCTCPGain != nil {
		cfg.DCTCPGain = *t.DCTCPGain
	}
	if t.Handshake != nil {
		cfg.Handshake = *t.Handshake
	}
	if t.DelayedAck != nil {
		cfg.DelayedAck = *t.DelayedAck
	}
	if t.DelayedAckTimeout != nil {
		cfg.DelayedAckTimeout = c.dur("transport.delayedAckTimeout", *t.DelayedAckTimeout)
	}
	if t.SACK != nil {
		cfg.SACK = *t.SACK
	}
	return cfg
}

// Dist compiles the distribution alone, for callers that need the
// sampler outside a full scenario (load calibration, tests).
func (d SizeDist) Dist() (workload.SizeDist, error) {
	var (
		c checker
		s Spec
	)
	dist := s.compileSizes(&c, "sizes", &d)
	if err := c.err(); err != nil {
		return nil, err
	}
	return dist, nil
}

func (s *Spec) compileSizes(c *checker, path string, d *SizeDist) workload.SizeDist {
	if d == nil {
		c.errf(path, "must be set")
		return nil
	}
	var dist workload.SizeDist
	switch d.Kind {
	case "websearch":
		dist = workload.WebSearch()
	case "datamining":
		dist = workload.DataMining()
	case "uniform":
		u := workload.Uniform{
			MinSize: c.size(path+".min", d.Min),
			MaxSize: c.size(path+".max", d.Max),
		}
		if u.MaxSize < u.MinSize || u.MaxSize <= 0 {
			c.errf(path, "uniform needs 0 < min <= max, got [%v, %v]", d.Min, d.Max)
		}
		dist = u
	case "fixed":
		f := workload.Fixed{Size: c.size(path+".size", d.Size)}
		if f.Size <= 0 {
			c.errf(path+".size", "must be a positive size")
		}
		dist = f
	case "":
		c.errf(path+".kind", "must be set (valid: websearch, datamining, uniform, fixed)")
		return nil
	default:
		c.errf(path+".kind", "unknown kind %q (valid: websearch, datamining, uniform, fixed)", d.Kind)
		return nil
	}
	if d.Truncate != "" {
		max := c.size(path+".truncate", d.Truncate)
		if max <= 0 {
			c.errf(path+".truncate", "must be a positive size")
		}
		dist = workload.Truncated{Dist: dist, Max: max}
	}
	return dist
}

func (s *Spec) compileDeadlines(c *checker, path string, d *Deadlines) workload.DeadlineDist {
	if d == nil {
		return workload.DeadlineDist{}
	}
	dd := workload.DeadlineDist{
		Min:       c.dur(path+".min", d.Min),
		Max:       c.dur(path+".max", d.Max),
		OnlyBelow: c.size(path+".onlyBelow", d.OnlyBelow),
	}
	if dd.Max <= 0 || dd.Max < dd.Min || dd.Min < 0 {
		c.errf(path, "need 0 <= min <= max with max > 0, got [%v, %v]", d.Min, d.Max)
	}
	return dd
}

// compileWorkload lowers the workload to either a materialized flow
// slice or (under outputs.streamStats, for the kinds that support it)
// a replayable source factory: every call draws the identical lazy
// sequence, which is what lets a sharded run give each shard its own
// copy of the stream. Exactly one of the two returns is non-nil on
// success.
func (s *Spec) compileWorkload(c *checker, topoKind string, lsCfg topology.Config, ftCfg topology.FatTreeConfig, materialize bool) ([]workload.Flow, func() workload.Source) {
	w := s.Workload
	wseed := s.Seed + 1
	if w.Seed != nil {
		wseed = *w.Seed
	}

	// Reject fields that belong to another workload kind, so a typo'd
	// spec fails loudly instead of silently ignoring half its content.
	reject := func(kind string, used ...struct {
		path string
		set  bool
	}) {
		for _, u := range used {
			if u.set {
				c.errf(u.path, "only applies to workload kind %q", kind)
			}
		}
	}
	type field = struct {
		path string
		set  bool
	}
	poissonFields := []field{
		{"workload.flows", w.Flows != 0},
		//simlint:allow floateq(set-check on a decoded JSON field; the unset value is exactly 0)
		{"workload.load", w.Load != 0},
		{"workload.sizes", w.Sizes != nil},
	}
	mixFields := []field{
		{"workload.groups", len(w.Groups) != 0},
		{"workload.senders", len(w.Senders) != 0},
		{"workload.receivers", len(w.Receivers) != 0},
	}
	interpodFields := []field{
		{"workload.interPod", w.InterPod != nil},
	}

	switch w.Kind {
	case "poisson":
		reject("mix", mixFields...)
		reject("interpod", interpodFields...)
		return s.compilePoisson(c, topoKind, lsCfg, wseed, materialize)
	case "mix":
		reject("poisson", poissonFields...)
		reject("interpod", interpodFields...)
		// Mix populations are bounded by their group lists, so streaming
		// runs keep the materialized slice (sim folds it all the same).
		return s.compileMix(c, topoKind, lsCfg, ftCfg, wseed, materialize), nil
	case "interpod":
		reject("poisson", poissonFields...)
		reject("mix", mixFields...)
		return s.compileInterPod(c, topoKind, ftCfg, wseed, materialize)
	case "":
		c.errf("workload.kind", "must be set (valid: poisson, mix, interpod)")
	default:
		c.errf("workload.kind", "unknown kind %q (valid: poisson, mix, interpod)", w.Kind)
	}
	return nil, nil
}

func (s *Spec) compilePoisson(c *checker, topoKind string, lsCfg topology.Config, wseed uint64, materialize bool) ([]workload.Flow, func() workload.Source) {
	w := s.Workload
	if topoKind != "leafspine" {
		c.errf("workload.kind", "poisson traffic needs a leafspine topology (load is defined against the leaf-spine fabric capacity)")
		return nil, nil
	}
	if w.Flows <= 0 {
		c.errf("workload.flows", "must be a positive flow count")
	}
	if w.Load <= 0 || w.Load > 1 {
		c.errf("workload.load", "must be in (0,1], got %v", w.Load)
	}
	sizes := s.compileSizes(c, "workload.sizes", w.Sizes)
	deadlines := s.compileDeadlinesOpt(c, "workload.deadlines", w.Deadlines)
	if len(c.errs) > 0 || !materialize {
		return nil, nil
	}
	hostsPerLeaf := lsCfg.HostsPerLeaf
	// Load is defined against the aggregate fabric capacity, exactly as
	// the large-scale experiments define it.
	fabricCapacity := float64(lsCfg.Leaves) * float64(lsCfg.Spines) * lsCfg.FabricLink.Bandwidth.BytesPerSecond()
	pc := workload.PoissonConfig{
		Hosts:         lsCfg.Hosts(),
		Sizes:         sizes,
		RateOverride:  w.Load * fabricCapacity / sizes.Mean(),
		Deadlines:     deadlines,
		CrossLeafOnly: true,
		LeafOf:        func(h int) int { return h / hostsPerLeaf },
	}
	if s.Outputs.StreamStats {
		// Validate the stream configuration once so spec errors surface
		// at compile time; the factory then re-creates the identical
		// source on every call (each shard of a sharded run pumps its
		// own copy).
		if _, err := pc.Source(eventsim.NewRNG(wseed), w.Flows, 0); err != nil {
			c.errf("workload", "%v", err)
			return nil, nil
		}
		decorate := s.deadlineOverrideDecorator(c)
		flows := w.Flows
		return nil, func() workload.Source {
			src, err := pc.Source(eventsim.NewRNG(wseed), flows, 0)
			if err != nil {
				panic(fmt.Sprintf("spec: validated poisson source failed to rebuild: %v", err))
			}
			return decorate(src)
		}
	}
	flows, err := pc.Generate(eventsim.NewRNG(wseed), w.Flows, 0)
	if err != nil {
		c.errf("workload", "%v", err)
		return nil, nil
	}
	return s.applyDeadlineOverride(c, flows), nil
}

func (s *Spec) compileDeadlinesOpt(c *checker, path string, d *Deadlines) workload.DeadlineDist {
	if d == nil {
		return workload.DeadlineDist{}
	}
	return s.compileDeadlines(c, path, d)
}

func (s *Spec) compileMix(c *checker, topoKind string, lsCfg topology.Config, ftCfg topology.FatTreeConfig, wseed uint64, materialize bool) []workload.Flow {
	w := s.Workload
	if len(w.Groups) == 0 {
		c.errf("workload.groups", "mix needs at least one group")
		return nil
	}
	hosts := 0
	switch topoKind {
	case "leafspine":
		hosts = lsCfg.Hosts()
	case "fattree":
		hosts = ftCfg.Hosts()
	}

	senders, receivers := w.Senders, w.Receivers
	if len(senders) == 0 && len(receivers) == 0 {
		// Default: leaf 0's hosts send to leaf 1's hosts — the
		// motivation/testbed pattern.
		if topoKind == "leafspine" && lsCfg.Leaves >= 2 {
			for h := 0; h < lsCfg.HostsPerLeaf; h++ {
				senders = append(senders, h)
				receivers = append(receivers, lsCfg.HostsPerLeaf+h)
			}
		} else {
			c.errf("workload.senders", "must be set (the leaf0→leaf1 default needs a leafspine topology with >= 2 leaves)")
		}
	} else if len(senders) == 0 || len(receivers) == 0 {
		c.errf("workload.senders", "senders and receivers must be set together")
	}
	for i, h := range senders {
		if h < 0 || (hosts > 0 && h >= hosts) {
			c.errf(fmt.Sprintf("workload.senders[%d]", i), "host %d out of range [0, %d)", h, hosts)
		}
	}
	for i, h := range receivers {
		if h < 0 || (hosts > 0 && h >= hosts) {
			c.errf(fmt.Sprintf("workload.receivers[%d]", i), "host %d out of range [0, %d)", h, hosts)
		}
	}

	mixes := make([]workload.StaticMix, 0, len(w.Groups))
	for i, g := range w.Groups {
		path := fmt.Sprintf("workload.groups[%d]", i)
		if g.Shorts < 0 || g.Longs < 0 || g.Shorts+g.Longs == 0 {
			c.errf(path, "needs a positive number of shorts and/or longs")
		}
		m := workload.StaticMix{
			ShortFlows:    g.Shorts,
			LongFlows:     g.Longs,
			Senders:       senders,
			Receivers:     receivers,
			ArrivalJitter: c.dur(path+".arrivalJitter", g.ArrivalJitter),
		}
		if g.Shorts > 0 {
			m.ShortSizes = s.compileSizes(c, path+".shortSizes", g.ShortSizes)
		}
		if g.Longs > 0 {
			m.LongSizes = s.compileSizes(c, path+".longSizes", g.LongSizes)
		}
		if g.Deadlines != nil {
			m.Deadlines = s.compileDeadlines(c, path+".deadlines", g.Deadlines)
		} else {
			m.Deadlines = s.compileDeadlinesOpt(c, "workload.deadlines", w.Deadlines)
		}
		mixes = append(mixes, m)
	}
	if len(c.errs) > 0 || !materialize {
		return nil
	}
	// One RNG shared across all groups in order: group boundaries do
	// not disturb the stream, so a single-group spec draws exactly the
	// same flows as the pre-spec experiment code did.
	rng := eventsim.NewRNG(wseed)
	var flows []workload.Flow
	for i, m := range mixes {
		fs, err := m.Generate(rng, 0)
		if err != nil {
			c.errf(fmt.Sprintf("workload.groups[%d]", i), "%v", err)
			return nil
		}
		flows = append(flows, fs...)
	}
	return s.applyDeadlineOverride(c, flows)
}

func (s *Spec) compileInterPod(c *checker, topoKind string, ftCfg topology.FatTreeConfig, wseed uint64, materialize bool) ([]workload.Flow, func() workload.Source) {
	w := s.Workload
	if topoKind != "fattree" {
		c.errf("workload.kind", "interpod traffic needs a fattree topology")
		return nil, nil
	}
	ip := w.InterPod
	if ip == nil {
		c.errf("workload.interPod", "must be set for kind %q", "interpod")
		return nil, nil
	}
	if ip.Flows <= 0 {
		c.errf("workload.interPod.flows", "must be a positive flow count")
	}
	sizes := s.compileSizes(c, "workload.interPod.sizes", &ip.Sizes)
	maxGap := c.dur("workload.interPod.maxGap", ip.MaxGap)
	if maxGap <= 0 {
		c.errf("workload.interPod.maxGap", "must be a positive duration")
	}
	dlBase := c.dur("workload.interPod.deadlineBase", ip.DeadlineBase)
	dlJitter := c.dur("workload.interPod.deadlineJitter", ip.DeadlineJitter)
	dlBelow := c.size("workload.interPod.deadlineOnlyBelow", ip.DeadlineOnlyBelow)
	if dlJitter < 0 || dlBase < 0 {
		c.errf("workload.interPod.deadlineBase", "deadline base and jitter must not be negative")
	}
	if len(c.errs) > 0 || !materialize {
		return nil, nil
	}
	hosts := ftCfg.Hosts()
	ipc := workload.InterPodConfig{
		Hosts:             hosts,
		PerPod:            hosts / ftCfg.K,
		Flows:             ip.Flows,
		Sizes:             sizes,
		MaxGap:            maxGap,
		DeadlineBase:      dlBase,
		DeadlineJitter:    dlJitter,
		DeadlineOnlyBelow: dlBelow,
	}
	if s.Outputs.StreamStats {
		// Same factory shape as compilePoisson: validate once, rebuild
		// identically per call.
		if _, err := ipc.Source(eventsim.NewRNG(wseed)); err != nil {
			c.errf("workload.interPod", "%v", err)
			return nil, nil
		}
		decorate := s.deadlineOverrideDecorator(c)
		return nil, func() workload.Source {
			src, err := ipc.Source(eventsim.NewRNG(wseed))
			if err != nil {
				panic(fmt.Sprintf("spec: validated interpod source failed to rebuild: %v", err))
			}
			return decorate(src)
		}
	}
	flows, err := ipc.Generate(eventsim.NewRNG(wseed))
	if err != nil {
		c.errf("workload.interPod", "%v", err)
		return nil, nil
	}
	return s.applyDeadlineOverride(c, flows), nil
}

// applyDeadlineOverride rewrites deadlines after generation. It runs
// after the workload RNG is fully consumed, so overriding deadlines
// never perturbs arrival times or sizes.
func (s *Spec) applyDeadlineOverride(c *checker, flows []workload.Flow) []workload.Flow {
	o := s.Workload.DeadlineOverride
	if o == nil {
		return flows
	}
	d := c.dur("workload.deadlineOverride.deadline", o.Deadline)
	below := c.size("workload.deadlineOverride.onlyBelow", o.OnlyBelow)
	if d <= 0 {
		c.errf("workload.deadlineOverride.deadline", "must be a positive duration")
		return flows
	}
	for i := range flows {
		if below == 0 || flows[i].Size <= below {
			flows[i].Deadline = flows[i].Start + d
		} else {
			flows[i].Deadline = 0
		}
	}
	return flows
}

// deadlineOverrideDecorator is the lazy counterpart of
// applyDeadlineOverride: it validates the override once against the
// checker and returns a pure decorator for streamed sources, with
// identical per-flow semantics (the decorator runs after each flow's
// draws, so the underlying stream is undisturbed). The returned
// function is checker-free so source factories can call it long after
// compilation — the sharded runner re-creates one source per shard.
func (s *Spec) deadlineOverrideDecorator(c *checker) func(workload.Source) workload.Source {
	o := s.Workload.DeadlineOverride
	if o == nil {
		return func(src workload.Source) workload.Source { return src }
	}
	d := c.dur("workload.deadlineOverride.deadline", o.Deadline)
	below := c.size("workload.deadlineOverride.onlyBelow", o.OnlyBelow)
	if d <= 0 {
		c.errf("workload.deadlineOverride.deadline", "must be a positive duration")
		return func(src workload.Source) workload.Source { return src }
	}
	return func(src workload.Source) workload.Source {
		return workload.OverrideDeadlines(src, d, below)
	}
}

//simlint:allow sharedstate(immutable name table; never written after init)
var faultOps = []struct {
	name string
	op   faults.Op
}{
	{"down", faults.OpDown},
	{"restore", faults.OpRestore},
	{"derate", faults.OpDeRate},
	{"delay", faults.OpDelay},
}

//simlint:allow sharedstate(immutable name table; never written after init)
var faultDirs = []struct {
	name string
	dir  faults.Direction
}{
	{"both", faults.BothDirections},
	{"leafToSpine", faults.LeafToSpine},
	{"spineToLeaf", faults.SpineToLeaf},
}

// FaultOpName returns the spec string for an op.
func FaultOpName(op faults.Op) string {
	for _, e := range faultOps {
		if e.op == op {
			return e.name
		}
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// FaultDirName returns the spec string for a direction ("" for the
// both-directions default).
func FaultDirName(d faults.Direction) string {
	if d == faults.BothDirections {
		return ""
	}
	for _, e := range faultDirs {
		if e.dir == d {
			return e.name
		}
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

func (s *Spec) compileFaults(c *checker) faults.Schedule {
	sched := make(faults.Schedule, 0, len(s.Faults))
	for i, f := range s.Faults {
		path := fmt.Sprintf("faults[%d]", i)
		e := faults.Event{
			At:    c.dur(path+".at", f.At),
			Leaf:  f.Leaf,
			Spine: f.Spine,
		}
		opOK := false
		for _, o := range faultOps {
			if o.name == f.Op {
				e.Op, opOK = o.op, true
				break
			}
		}
		if !opOK {
			c.errf(path+".op", "unknown op %q (valid: down, restore, derate, delay)", f.Op)
		}
		dirOK := f.Dir == ""
		for _, d := range faultDirs {
			if d.name == f.Dir {
				e.Dir, dirOK = d.dir, true
				break
			}
		}
		if !dirOK {
			c.errf(path+".dir", "unknown direction %q (valid: both, leafToSpine, spineToLeaf)", f.Dir)
		}
		if f.Bandwidth != "" {
			e.Bandwidth = c.rate(path+".bandwidth", f.Bandwidth)
		}
		if f.Delay != "" {
			e.Delay = c.dur(path+".delay", f.Delay)
		}
		sched = append(sched, e)
	}
	if err := sched.Validate(); err != nil {
		c.errf("faults", "%v", err)
	}
	return sched
}
