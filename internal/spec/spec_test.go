package spec

import (
	"reflect"
	"strings"
	"testing"

	_ "tlb/internal/core" // register the tlb scheme
	"tlb/internal/eventsim"
	"tlb/internal/faults"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// testTopology is a small leaf-spine fabric shared by the tests.
func testTopology() Topology {
	return Topology{
		Leaves:       2,
		Spines:       4,
		HostsPerLeaf: 4,
		HostLink:     Link{Bandwidth: "1Gbps", Delay: "5us"},
		FabricLink:   Link{Bandwidth: "1Gbps", Delay: "10us"},
		Queue:        Queue{Capacity: 256, ECNThreshold: 65},
	}
}

func testSpec() *Spec {
	return &Spec{
		Version:  Version,
		Name:     "test",
		Seed:     42,
		Scheme:   Scheme{Name: "ecmp"},
		Topology: testTopology(),
		Workload: Workload{
			Kind: "mix",
			Groups: []MixGroup{{
				Shorts:        10,
				Longs:         2,
				ShortSizes:    &SizeDist{Kind: "uniform", Min: "40KB", Max: "100KB"},
				LongSizes:     &SizeDist{Kind: "fixed", Size: "10MB"},
				ArrivalJitter: "5ms",
			}},
			Deadlines: &Deadlines{Min: "5ms", Max: "25ms", OnlyBelow: "100KB"},
		},
		Run: Run{MaxTime: "30s", StopWhenDone: true},
	}
}

func TestCompileMixMatchesStaticMix(t *testing.T) {
	sc, err := testSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	// The same mix drawn directly, with the repo's seed+1 convention.
	want, err := workload.StaticMix{
		ShortFlows:    10,
		LongFlows:     2,
		ShortSizes:    workload.Uniform{MinSize: 40 * units.KB, MaxSize: 100 * units.KB},
		LongSizes:     workload.Fixed{Size: 10 * units.MB},
		Senders:       []int{0, 1, 2, 3},
		Receivers:     []int{4, 5, 6, 7},
		ArrivalJitter: 5 * units.Millisecond,
		Deadlines: workload.DeadlineDist{
			Min: 5 * units.Millisecond, Max: 25 * units.Millisecond,
			OnlyBelow: 100 * units.KB,
		},
	}.Generate(eventsim.NewRNG(43), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Flows, want) {
		t.Fatalf("spec mix diverges from direct StaticMix generation:\n got %v\nwant %v",
			sc.Flows[:3], want[:3])
	}
	if sc.SchemeName != "ecmp" || sc.Name != "test" {
		t.Errorf("names: scheme %q scenario %q", sc.SchemeName, sc.Name)
	}
	if sc.MaxTime != 30*units.Second || !sc.StopWhenDone {
		t.Errorf("run block not applied: MaxTime %v StopWhenDone %v", sc.MaxTime, sc.StopWhenDone)
	}
}

func TestCompilePoissonMatchesPoissonConfig(t *testing.T) {
	s := testSpec()
	s.Workload = Workload{
		Kind:      "poisson",
		Flows:     50,
		Load:      0.5,
		Sizes:     &SizeDist{Kind: "websearch", Truncate: "20MB"},
		Deadlines: &Deadlines{Min: "5ms", Max: "25ms", OnlyBelow: "100KB"},
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sizes := workload.Truncated{Dist: workload.WebSearch(), Max: 20 * units.MB}
	fabricCapacity := float64(2) * float64(4) * units.Gbps.BytesPerSecond()
	want, err := workload.PoissonConfig{
		Hosts:        8,
		Sizes:        sizes,
		RateOverride: 0.5 * fabricCapacity / sizes.Mean(),
		Deadlines: workload.DeadlineDist{
			Min: 5 * units.Millisecond, Max: 25 * units.Millisecond,
			OnlyBelow: 100 * units.KB,
		},
		CrossLeafOnly: true,
		LeafOf:        func(h int) int { return h / 4 },
	}.Generate(eventsim.NewRNG(43), 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Flows, want) {
		t.Fatal("spec poisson diverges from direct PoissonConfig generation")
	}
}

func TestCompileInterPodMatchesLoop(t *testing.T) {
	s := testSpec()
	s.Topology = Topology{
		Kind:       "fattree",
		K:          4,
		HostLink:   Link{Bandwidth: "1Gbps", Delay: "5us"},
		FabricLink: Link{Bandwidth: "1Gbps", Delay: "10us"},
		Queue:      Queue{Capacity: 256, ECNThreshold: 65},
	}
	s.Workload = Workload{
		Kind: "interpod",
		InterPod: &InterPod{
			Flows:             40,
			Sizes:             SizeDist{Kind: "websearch", Truncate: "20MB"},
			MaxGap:            "200us",
			DeadlineBase:      "5ms",
			DeadlineJitter:    "20ms",
			DeadlineOnlyBelow: "100KB",
		},
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if sc.BuildNetwork == nil {
		t.Fatal("fattree spec compiled without a BuildNetwork")
	}
	// The exact fat-tree flow loop from the experiments.
	rng := eventsim.NewRNG(43)
	sizes := workload.Truncated{Dist: workload.WebSearch(), Max: 20 * units.MB}
	hosts, perPod := 16, 4
	var want []workload.Flow
	at := units.Time(0)
	for i := 0; i < 40; i++ {
		at += units.Time(rng.Intn(int(200 * units.Microsecond)))
		src := rng.Intn(hosts)
		dst := rng.Intn(hosts)
		for dst/perPod == src/perPod {
			dst = rng.Intn(hosts)
		}
		size := sizes.Sample(rng)
		f := workload.Flow{Src: src, Dst: dst, Size: size, Start: at}
		if size <= 100*units.KB {
			f.Deadline = at + 5*units.Millisecond + units.Time(rng.Intn(int(20*units.Millisecond)))
		}
		want = append(want, f)
	}
	if !reflect.DeepEqual(sc.Flows, want) {
		t.Fatal("spec interpod diverges from the experiments' fat-tree loop")
	}
}

func TestValidateAggregatesErrors(t *testing.T) {
	s := testSpec()
	s.Version = 99
	s.Scheme = Scheme{Name: "letflow", Params: Params{"gap": "10lightyears", "nope": 1}}
	s.Workload.Kind = "poisson"
	s.Workload.Load = 1.5
	s.Workload.Sizes = &SizeDist{Kind: "uniform", Min: "100KB", Max: "40KB"}
	err := s.Validate()
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		"version",
		"scheme.params.gap",
		"scheme.params.nope",
		"workload.load: must be in (0,1], got 1.5",
		"workload.sizes",
		"workload.groups", // mix fields rejected under kind poisson
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregate error missing %q:\n%s", want, msg)
		}
	}
}

func TestValidateUnknownScheme(t *testing.T) {
	s := testSpec()
	s.Scheme = Scheme{Name: "bogus"}
	err := s.Validate()
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if !strings.Contains(err.Error(), "tlb") || !strings.Contains(err.Error(), "ecmp") {
		t.Errorf("unknown-scheme error should list registered schemes: %v", err)
	}
}

func TestCompileFaults(t *testing.T) {
	s := testSpec()
	s.Faults = []Fault{
		{At: "2500ms", Leaf: 0, Spine: 2, Op: "down"},
		{At: "3s", Leaf: 0, Spine: 2, Op: "derate", Bandwidth: "5Mbps", Dir: "leafToSpine"},
		{At: "4s", Leaf: 0, Spine: 2, Op: "delay", Delay: "1ms", Dir: "spineToLeaf"},
		{At: "5500ms", Leaf: 0, Spine: 2, Op: "restore"},
	}
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := faults.Schedule{
		{At: 2500 * units.Millisecond, Spine: 2, Op: faults.OpDown},
		{At: 3 * units.Second, Spine: 2, Op: faults.OpDeRate, Bandwidth: 5 * units.Mbps, Dir: faults.LeafToSpine},
		{At: 4 * units.Second, Spine: 2, Op: faults.OpDelay, Delay: units.Millisecond, Dir: faults.SpineToLeaf},
		{At: 5500 * units.Millisecond, Spine: 2, Op: faults.OpRestore},
	}
	if !reflect.DeepEqual(sc.Faults, want) {
		t.Fatalf("faults compiled to %+v, want %+v", sc.Faults, want)
	}
}

func TestFaultsRejectedOnFatTree(t *testing.T) {
	s := testSpec()
	s.Topology = Topology{
		Kind:       "fattree",
		K:          4,
		HostLink:   Link{Bandwidth: "1Gbps", Delay: "5us"},
		FabricLink: Link{Bandwidth: "1Gbps", Delay: "10us"},
		Queue:      Queue{Capacity: 256},
	}
	s.Workload = Workload{
		Kind:     "interpod",
		InterPod: &InterPod{Flows: 10, Sizes: SizeDist{Kind: "fixed", Size: "1MB"}, MaxGap: "100us"},
	}
	s.Faults = []Fault{{At: "1s", Op: "down"}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "faults") {
		t.Fatalf("fattree+faults should be rejected, got %v", err)
	}
}

func TestMarshalLoadRoundTrip(t *testing.T) {
	s := testSpec()
	s.Scheme = Scheme{
		Name:   "tlb",
		Params: Params{"interval": "500us", "deadline": "10ms", "meanShortSize": "70KB"},
	}
	tr := Duration("50ms")
	s.Transport = &Transport{MinRTO: &tr, InitialRTO: &tr}
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the spec:\n%s", data)
	}
	// And marshalling again is byte-identical (sorted params).
	data2, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("second marshal differs from the first")
	}
	sc1, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := back.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc1.Flows, sc2.Flows) {
		t.Fatal("round-tripped spec compiles to different flows")
	}
	if sc1.Transport != sc2.Transport {
		t.Fatal("round-tripped spec compiles to different transport")
	}
	if sc1.Transport.MinRTO != 50*units.Millisecond {
		t.Fatalf("transport override lost: MinRTO %v", sc1.Transport.MinRTO)
	}
}

// TestShardsRoundTrip pins the run.shards field: it survives
// marshal/load, compiles into Scenario.Shards, and a negative count is
// rejected at compile time.
func TestShardsRoundTrip(t *testing.T) {
	s := testSpec()
	s.Run.Shards = 4
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Run.Shards != 4 {
		t.Fatalf("shards lost in round trip: %d", back.Run.Shards)
	}
	sc, err := back.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Shards != 4 {
		t.Fatalf("compile dropped shards: %d", sc.Shards)
	}
	// Zero (the default) must stay off the JSON so old specs re-marshal
	// unchanged.
	s.Run.Shards = 0
	if data, err = s.Marshal(); err != nil {
		t.Fatal(err)
	} else if strings.Contains(string(data), "shards") {
		t.Fatalf("zero shards serialized:\n%s", data)
	}
	s.Run.Shards = -1
	if _, err := s.Compile(); err == nil {
		t.Fatal("negative shards accepted")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := LoadBytes([]byte(`{"version": 1, "nmae": "typo"}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestWorkloadSeedOverride(t *testing.T) {
	s := testSpec()
	base, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(43) // the default derived seed, set explicitly
	s.Workload.Seed = &seed
	same, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Flows, same.Flows) {
		t.Fatal("explicit workload seed 43 should match the default seed+1")
	}
	other := uint64(7)
	s.Workload.Seed = &other
	diff, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(base.Flows, diff.Flows) {
		t.Fatal("different workload seed should change the flows")
	}
}

// A streaming spec must compile the workload to a lazy Source drawing
// the exact flow sequence the eager path materializes — for both kinds
// that support it — and carry the StreamStats flag into the scenario.
func TestCompileStreamStatsProducesSource(t *testing.T) {
	// Poisson on leaf-spine.
	s := testSpec()
	s.Workload = Workload{
		Kind:             "poisson",
		Flows:            50,
		Load:             0.5,
		Sizes:            &SizeDist{Kind: "websearch", Truncate: "20MB"},
		Deadlines:        &Deadlines{Min: "5ms", Max: "25ms", OnlyBelow: "100KB"},
		DeadlineOverride: &DeadlineOverride{Deadline: "10ms", OnlyBelow: "100KB"},
	}
	eager, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	s.Outputs.StreamStats = true
	lazy, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.StreamStats {
		t.Fatal("StreamStats flag not carried into the scenario")
	}
	if lazy.Flows != nil || lazy.FlowSourceNew == nil {
		t.Fatalf("streaming compile: Flows %v lazy factory %v", lazy.Flows, lazy.FlowSourceNew != nil)
	}
	if got := workload.Collect(lazy.FlowSourceNew()); !reflect.DeepEqual(got, eager.Flows) {
		t.Fatal("lazy poisson source diverges from the eager flows")
	}
	// The factory must be replayable: the sharded runner pumps one
	// fresh copy per shard.
	if got := workload.Collect(lazy.FlowSourceNew()); !reflect.DeepEqual(got, eager.Flows) {
		t.Fatal("lazy poisson factory is not replayable")
	}

	// Interpod on fat-tree.
	s = testSpec()
	s.Topology = Topology{
		Kind:       "fattree",
		K:          4,
		HostLink:   Link{Bandwidth: "1Gbps", Delay: "5us"},
		FabricLink: Link{Bandwidth: "1Gbps", Delay: "10us"},
		Queue:      Queue{Capacity: 256, ECNThreshold: 65},
	}
	s.Workload = Workload{
		Kind: "interpod",
		InterPod: &InterPod{
			Flows:             40,
			Sizes:             SizeDist{Kind: "websearch", Truncate: "20MB"},
			MaxGap:            "200us",
			DeadlineBase:      "5ms",
			DeadlineJitter:    "20ms",
			DeadlineOnlyBelow: "100KB",
		},
	}
	eager, err = s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	s.Outputs.StreamStats = true
	lazy, err = s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Flows != nil || lazy.FlowSourceNew == nil {
		t.Fatalf("streaming compile: Flows %v lazy factory %v", lazy.Flows, lazy.FlowSourceNew != nil)
	}
	if got := workload.Collect(lazy.FlowSourceNew()); !reflect.DeepEqual(got, eager.Flows) {
		t.Fatal("lazy interpod source diverges from the eager flows")
	}

	// Mix keeps the materialized slice even when streaming.
	s = testSpec()
	s.Outputs.StreamStats = true
	sc, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !sc.StreamStats || len(sc.Flows) == 0 || sc.FlowSourceNew != nil {
		t.Fatalf("streaming mix: StreamStats %v Flows %d lazy factory %v",
			sc.StreamStats, len(sc.Flows), sc.FlowSourceNew != nil)
	}
}

func TestStreamStatsOutputConflicts(t *testing.T) {
	s := testSpec()
	s.Outputs.StreamStats = true
	s.Outputs.CollectTimeSeries = true
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "outputs.streamStats") {
		t.Fatalf("streamStats+collectTimeSeries should be rejected, got %v", err)
	}

	s = testSpec()
	s.Outputs.StreamStats = true
	s.Outputs.SampleShortPackets = true
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "outputs.streamStats") {
		t.Fatalf("streamStats+sampleShortPackets should be rejected, got %v", err)
	}

	s = testSpec()
	s.Outputs.StreamStats = true
	s.Replication = &Replication{Threshold: "100KB", Copies: 2}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "outputs.streamStats") {
		t.Fatalf("streamStats+replication should be rejected, got %v", err)
	}
}

func TestStreamStatsRoundTrip(t *testing.T) {
	s := testSpec()
	s.Outputs.StreamStats = true
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"streamStats": true`) {
		t.Fatalf("marshal lost streamStats:\n%s", data)
	}
	back, err := LoadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the spec:\n%s", data)
	}
}
