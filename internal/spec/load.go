package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// LoadBytes parses a spec from JSON. Unknown fields are rejected — a
// misspelled key is almost always a scenario silently different from
// the one intended.
func LoadBytes(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	// A second document in the same file is a concatenation mistake.
	var extra any
	if err := dec.Decode(&extra); err == nil {
		return nil, fmt.Errorf("spec: trailing data after the spec document")
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := LoadBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Marshal renders the spec as indented JSON, newline-terminated —
// the format Save writes and the golden files are stored in.
func (s *Spec) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return append(data, '\n'), nil
}

// Save writes the spec to a file.
func (s *Spec) Save(path string) error {
	data, err := s.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
