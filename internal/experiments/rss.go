package experiments

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// peakRSSMB reports the process's peak resident set size in MiB. On
// Linux it reads VmHWM from /proc/self/status — the kernel's
// high-water mark, which is what the figLS scale experiment wants:
// a number that must NOT grow with flow count under streaming stats.
// Elsewhere (or if procfs is unreadable) it falls back to the Go
// runtime's total OS memory, a looser but same-order proxy.
//
// The high-water mark covers the whole process lifetime, so a
// dedicated `cmd/experiments -fig figLS` invocation measures the
// streamed run itself; mixed invocations measure the largest figure
// run so far.
func peakRSSMB() float64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line) // "VmHWM:  123456 kB"
			if len(fields) >= 2 {
				if kb, err := strconv.ParseFloat(fields[1], 64); err == nil {
					return kb / 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Sys) / (1 << 20)
}
