package experiments

import (
	"fmt"

	"tlb/internal/core"
	"tlb/internal/lb"
	"tlb/internal/sim"
	"tlb/internal/stats"
	"tlb/internal/units"
)

// The ablations probe the design choices DESIGN.md calls out. Each
// runs TLB variants under the loaded web-search environment (load 0.7,
// where granularity decisions actually bind) and reports short-flow
// AFCT and long-flow goodput.

// ablationLoad is the fabric load the ablations run at.
const ablationLoad = 0.7

// ablationEnv builds the shared contended environment.
func ablationEnv(o Options) largeEnv {
	return newLargeEnv(websearchSizes(), o.FlowsPerRun)
}

// ablationPoint runs one TLB variant and returns (AFCT seconds,
// long goodput Gbps, deadline miss fraction).
func ablationPoint(o Options, env largeEnv, name string, f lb.Factory) (float64, float64, float64, error) {
	res, err := env.run(name, f, ablationLoad, o.Seed)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.AFCT(sim.ShortFlows).Seconds(),
		float64(res.Goodput(sim.LongFlows)) / 1e9,
		res.DeadlineMissRatio(sim.ShortFlows),
		nil
}

func ablationFigure(id, title, xlabel string) (Figure, Figure) {
	return Figure{ID: id + "-afct", Title: title + " (short AFCT)", XLabel: xlabel, YLabel: "AFCT (s)"},
		Figure{ID: id + "-tput", Title: title + " (long goodput)", XLabel: xlabel, YLabel: "Gbps"}
}

// AblationInterval sweeps the q_th update interval t.
func AblationInterval(o Options) ([]Figure, error) {
	afct, tput := ablationFigure("ablation-interval", "TLB update interval", "interval (µs)")
	sa := stats.Series{Name: "tlb"}
	st := stats.Series{Name: "tlb"}
	for _, us := range trim(o, []float64{125, 250, 500, 1000, 2000}) {
		env := ablationEnv(o)
		cfg := env.tlbConfig(0)
		cfg.Interval = units.Time(us) * units.Microsecond
		o.logf("ablation-interval: t=%vµs", us)
		a, g, _, err := ablationPoint(o, env, fmt.Sprintf("tlb-t%v", us), tlbFactory(cfg))
		if err != nil {
			return nil, err
		}
		sa.Add(us, a)
		st.Add(us, g)
	}
	afct.Series = []stats.Series{sa}
	tput.Series = []stats.Series{st}
	return []Figure{afct, tput}, nil
}

// AblationThreshold sweeps the short/long classification boundary.
func AblationThreshold(o Options) ([]Figure, error) {
	afct, tput := ablationFigure("ablation-threshold", "Short/long classification threshold", "threshold (KB)")
	sa := stats.Series{Name: "tlb"}
	st := stats.Series{Name: "tlb"}
	for _, kb := range trim(o, []float64{25, 50, 100, 200, 400}) {
		env := ablationEnv(o)
		cfg := env.tlbConfig(0)
		cfg.ShortThreshold = units.Bytes(kb) * units.KB
		o.logf("ablation-threshold: %vKB", kb)
		a, g, _, err := ablationPoint(o, env, fmt.Sprintf("tlb-th%v", kb), tlbFactory(cfg))
		if err != nil {
			return nil, err
		}
		sa.Add(kb, a)
		st.Add(kb, g)
	}
	afct.Series = []stats.Series{sa}
	tput.Series = []stats.Series{st}
	return []Figure{afct, tput}, nil
}

// AblationFixedGranularity compares adaptive q_th against fixed
// thresholds (0 = switch per packet, buffer = never switch), isolating
// the value of the granularity calculator.
func AblationFixedGranularity(o Options) ([]Figure, error) {
	afct := Figure{ID: "ablation-fixed-afct", Title: "Adaptive vs fixed q_th (short AFCT)",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "ablation-fixed-tput", Title: "Adaptive vs fixed q_th (long goodput)",
		YLabel: "Gbps"}
	variants := []struct {
		name  string
		fixed int
	}{
		{"adaptive", -1},
		{"fixed-0", 0},
		{"fixed-16", 16},
		{"fixed-64", 64},
		{"fixed-256", 256},
	}
	for _, v := range variants {
		env := ablationEnv(o)
		cfg := env.tlbConfig(0)
		cfg.FixedQTh = v.fixed
		o.logf("ablation-fixed: %s", v.name)
		a, g, _, err := ablationPoint(o, env, "tlb-"+v.name, tlbFactory(cfg))
		if err != nil {
			return nil, err
		}
		afct.Bars = append(afct.Bars, Bar{v.name, a})
		tput.Bars = append(tput.Bars, Bar{v.name, g})
	}
	return []Figure{afct, tput}, nil
}

// AblationShortPolicy swaps the short-flow per-packet policy: global
// shortest queue (TLB's choice), DRILL-style power-of-two-choices, and
// uniform random spraying, while keeping the adaptive long-flow logic.
func AblationShortPolicy(o Options) ([]Figure, error) {
	afct := Figure{ID: "ablation-shortpolicy-afct", Title: "Short-flow path policy (short AFCT)",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "ablation-shortpolicy-tput", Title: "Short-flow path policy (long goodput)",
		YLabel: "Gbps"}
	policies := []struct {
		name string
		pick core.ShortPolicy
	}{
		{"shortest-queue", core.ShortShortestQueue},
		{"po2c", core.ShortPowerOfTwo},
		{"random", core.ShortRandom},
	}
	for _, p := range policies {
		env := ablationEnv(o)
		cfg := env.tlbConfig(0)
		cfg.ShortFlowPolicy = p.pick
		o.logf("ablation-shortpolicy: %s", p.name)
		a, g, _, err := ablationPoint(o, env, "tlb-"+p.name, tlbFactory(cfg))
		if err != nil {
			return nil, err
		}
		afct.Bars = append(afct.Bars, Bar{p.name, a})
		tput.Bars = append(tput.Bars, Bar{p.name, g})
	}
	return []Figure{afct, tput}, nil
}

// AblationSafeSwitch quantifies deviation #2 of DESIGN.md: the
// reorder-safe switching guard on and off, plus hysteresis on and off.
func AblationSafeSwitch(o Options) ([]Figure, error) {
	afct := Figure{ID: "ablation-safeswitch-afct", Title: "Reorder-safe switching (short AFCT)",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "ablation-safeswitch-tput", Title: "Reorder-safe switching (long goodput)",
		YLabel: "Gbps"}
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"guarded", func(c *core.Config) {}},
		{"no-guard", func(c *core.Config) { c.DisableSafeSwitch = true }},
		{"no-hysteresis", func(c *core.Config) { c.ShortHysteresis = 0 }},
		{"neither", func(c *core.Config) { c.DisableSafeSwitch = true; c.ShortHysteresis = 0 }},
	}
	for _, v := range variants {
		env := ablationEnv(o)
		cfg := env.tlbConfig(0)
		v.mut(&cfg)
		o.logf("ablation-safeswitch: %s", v.name)
		a, g, _, err := ablationPoint(o, env, "tlb-"+v.name, tlbFactory(cfg))
		if err != nil {
			return nil, err
		}
		afct.Bars = append(afct.Bars, Bar{v.name, a})
		tput.Bars = append(tput.Bars, Bar{v.name, g})
	}
	return []Figure{afct, tput}, nil
}

// AblationDemandCap quantifies deviation #3: Eq. 1's long-flow demand
// with and without the line-rate cap.
func AblationDemandCap(o Options) ([]Figure, error) {
	afct := Figure{ID: "ablation-demandcap-afct", Title: "Eq.1 demand cap (short AFCT)",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "ablation-demandcap-tput", Title: "Eq.1 demand cap (long goodput)",
		YLabel: "Gbps"}
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"capped", func(c *core.Config) {}},
		{"paper-literal", func(c *core.Config) { c.UncappedLongDemand = true }},
	}
	for _, v := range variants {
		env := ablationEnv(o)
		cfg := env.tlbConfig(0)
		v.mut(&cfg)
		o.logf("ablation-demandcap: %s", v.name)
		a, g, _, err := ablationPoint(o, env, "tlb-"+v.name, tlbFactory(cfg))
		if err != nil {
			return nil, err
		}
		afct.Bars = append(afct.Bars, Bar{v.name, a})
		tput.Bars = append(tput.Bars, Bar{v.name, g})
	}
	return []Figure{afct, tput}, nil
}
