package experiments

import (
	"fmt"

	"tlb/internal/core"
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/stats"
	"tlb/internal/units"
)

// The ablations probe the design choices DESIGN.md calls out. Each
// runs TLB variants under the loaded web-search environment (load 0.7,
// where granularity decisions actually bind) and reports short-flow
// AFCT and long-flow goodput.

// ablationLoad is the fabric load the ablations run at.
const ablationLoad = 0.7

// ablationEnv builds the shared contended environment.
func ablationEnv(o Options) largeEnv {
	return newLargeEnv(websearchSizes(), o.FlowsPerRun)
}

// ablationVariant is one bar or sweep point of an ablation: a named
// TLB configuration in its own environment.
type ablationVariant struct {
	name string
	env  largeEnv
	cfg  core.Config
}

// ablationMetrics is the (short AFCT s, long goodput Gbps, deadline
// miss fraction) triple every ablation reduces to.
type ablationMetrics struct {
	afct, tput, miss float64
}

// runAblation executes the variants as one batch on the shared runner
// and returns their metrics in input order. Each variant's mutated TLB
// configuration serializes as the parameter diff against the
// environment's base.
func runAblation(o Options, label string, variants []ablationVariant) ([]ablationMetrics, error) {
	specs := make([]spec.Spec, len(variants))
	for i, v := range variants {
		s := Scheme{Name: "tlb", Label: v.name, Params: tlbParams(v.cfg, spec.LeafSpineEnv(v.env.topo))}
		specs[i] = v.env.spec(s, ablationLoad, o.Seed)
	}
	results, err := o.runSpecs(label, specs)
	if err != nil {
		return nil, err
	}
	out := make([]ablationMetrics, len(results))
	for i, res := range results {
		out[i] = ablationMetrics{
			afct: res.AFCT(sim.ShortFlows).Seconds(),
			tput: float64(res.Goodput(sim.LongFlows)) / 1e9,
			miss: res.DeadlineMissRatio(sim.ShortFlows),
		}
	}
	return out, nil
}

func ablationFigure(id, title, xlabel string) (Figure, Figure) {
	return Figure{ID: id + "-afct", Title: title + " (short AFCT)", XLabel: xlabel, YLabel: "AFCT (s)"},
		Figure{ID: id + "-tput", Title: title + " (long goodput)", XLabel: xlabel, YLabel: "Gbps"}
}

// AblationInterval sweeps the q_th update interval t.
func AblationInterval(o Options) ([]Figure, error) {
	afct, tput := ablationFigure("ablation-interval", "TLB update interval", "interval (µs)")
	grid := trim(o, []float64{125, 250, 500, 1000, 2000})
	variants := make([]ablationVariant, len(grid))
	for i, us := range grid {
		env := ablationEnv(o)
		cfg := env.tlbConfig(0)
		cfg.Interval = units.Time(us) * units.Microsecond
		variants[i] = ablationVariant{fmt.Sprintf("tlb-t%v", us), env, cfg}
	}
	ms, err := runAblation(o, "ablation-interval", variants)
	if err != nil {
		return nil, err
	}
	sa := stats.Series{Name: "tlb"}
	st := stats.Series{Name: "tlb"}
	for i, us := range grid {
		sa.Add(us, ms[i].afct)
		st.Add(us, ms[i].tput)
	}
	afct.Series = []stats.Series{sa}
	tput.Series = []stats.Series{st}
	return []Figure{afct, tput}, nil
}

// AblationThreshold sweeps the short/long classification boundary.
func AblationThreshold(o Options) ([]Figure, error) {
	afct, tput := ablationFigure("ablation-threshold", "Short/long classification threshold", "threshold (KB)")
	grid := trim(o, []float64{25, 50, 100, 200, 400})
	variants := make([]ablationVariant, len(grid))
	for i, kb := range grid {
		env := ablationEnv(o)
		cfg := env.tlbConfig(0)
		cfg.ShortThreshold = units.Bytes(kb) * units.KB
		variants[i] = ablationVariant{fmt.Sprintf("tlb-th%v", kb), env, cfg}
	}
	ms, err := runAblation(o, "ablation-threshold", variants)
	if err != nil {
		return nil, err
	}
	sa := stats.Series{Name: "tlb"}
	st := stats.Series{Name: "tlb"}
	for i, kb := range grid {
		sa.Add(kb, ms[i].afct)
		st.Add(kb, ms[i].tput)
	}
	afct.Series = []stats.Series{sa}
	tput.Series = []stats.Series{st}
	return []Figure{afct, tput}, nil
}

// barAblation runs a bar-chart ablation: one named TLB config mutation
// per bar.
func barAblation(o Options, label string, afct, tput Figure, names []string, mut func(name string, c *core.Config)) ([]Figure, error) {
	variants := make([]ablationVariant, len(names))
	for i, name := range names {
		env := ablationEnv(o)
		cfg := env.tlbConfig(0)
		mut(name, &cfg)
		variants[i] = ablationVariant{"tlb-" + name, env, cfg}
	}
	ms, err := runAblation(o, label, variants)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		afct.Bars = append(afct.Bars, Bar{name, ms[i].afct})
		tput.Bars = append(tput.Bars, Bar{name, ms[i].tput})
	}
	return []Figure{afct, tput}, nil
}

// AblationFixedGranularity compares adaptive q_th against fixed
// thresholds (0 = switch per packet, buffer = never switch), isolating
// the value of the granularity calculator.
func AblationFixedGranularity(o Options) ([]Figure, error) {
	afct := Figure{ID: "ablation-fixed-afct", Title: "Adaptive vs fixed q_th (short AFCT)",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "ablation-fixed-tput", Title: "Adaptive vs fixed q_th (long goodput)",
		YLabel: "Gbps"}
	fixed := map[string]int{
		"adaptive": -1, "fixed-0": 0, "fixed-16": 16, "fixed-64": 64, "fixed-256": 256,
	}
	names := []string{"adaptive", "fixed-0", "fixed-16", "fixed-64", "fixed-256"}
	return barAblation(o, "ablation-fixed", afct, tput, names, func(name string, c *core.Config) {
		c.FixedQTh = fixed[name]
	})
}

// AblationShortPolicy swaps the short-flow per-packet policy: global
// shortest queue (TLB's choice), DRILL-style power-of-two-choices, and
// uniform random spraying, while keeping the adaptive long-flow logic.
func AblationShortPolicy(o Options) ([]Figure, error) {
	afct := Figure{ID: "ablation-shortpolicy-afct", Title: "Short-flow path policy (short AFCT)",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "ablation-shortpolicy-tput", Title: "Short-flow path policy (long goodput)",
		YLabel: "Gbps"}
	policies := map[string]core.ShortPolicy{
		"shortest-queue": core.ShortShortestQueue,
		"po2c":           core.ShortPowerOfTwo,
		"random":         core.ShortRandom,
	}
	names := []string{"shortest-queue", "po2c", "random"}
	return barAblation(o, "ablation-shortpolicy", afct, tput, names, func(name string, c *core.Config) {
		c.ShortFlowPolicy = policies[name]
	})
}

// AblationSafeSwitch quantifies deviation #2 of DESIGN.md: the
// reorder-safe switching guard on and off, plus hysteresis on and off.
func AblationSafeSwitch(o Options) ([]Figure, error) {
	afct := Figure{ID: "ablation-safeswitch-afct", Title: "Reorder-safe switching (short AFCT)",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "ablation-safeswitch-tput", Title: "Reorder-safe switching (long goodput)",
		YLabel: "Gbps"}
	names := []string{"guarded", "no-guard", "no-hysteresis", "neither"}
	return barAblation(o, "ablation-safeswitch", afct, tput, names, func(name string, c *core.Config) {
		switch name {
		case "no-guard":
			c.DisableSafeSwitch = true
		case "no-hysteresis":
			c.ShortHysteresis = 0
		case "neither":
			c.DisableSafeSwitch = true
			c.ShortHysteresis = 0
		}
	})
}

// AblationDemandCap quantifies deviation #3: Eq. 1's long-flow demand
// with and without the line-rate cap.
func AblationDemandCap(o Options) ([]Figure, error) {
	afct := Figure{ID: "ablation-demandcap-afct", Title: "Eq.1 demand cap (short AFCT)",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "ablation-demandcap-tput", Title: "Eq.1 demand cap (long goodput)",
		YLabel: "Gbps"}
	names := []string{"capped", "paper-literal"}
	return barAblation(o, "ablation-demandcap", afct, tput, names, func(name string, c *core.Config) {
		if name == "paper-literal" {
			c.UncappedLongDemand = true
		}
	})
}
