package experiments

import (
	"fmt"

	"tlb/internal/core"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/stats"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// testbedEnv mirrors the paper's §7 Mininet/P4 testbed: 10 equal-cost
// paths of 20 Mbps with 1 ms per-link delay, 256-packet buffers,
// 100 short (<100 KB) + 4 long (5 MB) flows, deadlines U[2s,6s] with
// D = 3 s, and both the flowlet timeout and the TLB update interval at
// 15 ms.
type testbedEnv struct {
	topo      topology.Config
	transport transport.Config
	shorts    int
	longs     int
}

func newTestbedEnv(shorts, longs int) testbedEnv {
	return testbedEnv{
		topo: topology.Config{
			Leaves:       2,
			Spines:       10,
			HostsPerLeaf: 10,
			HostLink:     netem.LinkConfig{Bandwidth: 20 * units.Mbps, Delay: units.Millisecond},
			FabricLink:   netem.LinkConfig{Bandwidth: 20 * units.Mbps, Delay: units.Millisecond},
			Queue:        netem.QueueConfig{Capacity: 256, ECNThreshold: 20},
		},
		transport: testbedTransport(),
		shorts:    shorts,
		longs:     longs,
	}
}

func testbedTransport() transport.Config {
	cfg := transport.DefaultConfig()
	// RTT here is ~8 ms; the datacenter 10 ms RTO floor would fire
	// spuriously. Use a floor a few RTTs out, like Mininet's Linux
	// stack would converge to.
	cfg.MinRTO = 50 * units.Millisecond
	cfg.InitialRTO = 50 * units.Millisecond
	return cfg
}

const testbedFlowletGap = 15 * units.Millisecond

func (e testbedEnv) tlbConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.LinkBandwidth = e.topo.FabricLink.Bandwidth
	cfg.RTT = e.topo.BaseRTT()
	cfg.Interval = 15 * units.Millisecond
	cfg.Deadline = 3 * units.Second
	cfg.MaxQTh = e.topo.Queue.Capacity
	cfg.MeanShortSize = 55 * units.KB
	return cfg
}

// workloadSpec is the testbed's static mix: senders on leaf 0,
// receivers on leaf 1 (the spec compiler's default pairing), shorts
// arriving over a 500 ms window against the established longs.
func (e testbedEnv) workloadSpec() spec.Workload {
	return spec.Workload{
		Kind: "mix",
		Groups: []spec.MixGroup{{
			Shorts:        e.shorts,
			Longs:         e.longs,
			ShortSizes:    sizeSpec(workload.Uniform{MinSize: 10 * units.KB, MaxSize: 100 * units.KB}),
			LongSizes:     sizeSpec(workload.Fixed{Size: 5 * units.MB}),
			ArrivalJitter: spec.Dur(500 * units.Millisecond),
		}},
		Deadlines: deadlineSpec(workload.DeadlineDist{
			Min: 2 * units.Second, Max: 6 * units.Second,
			OnlyBelow: 100 * units.KB,
		}),
	}
}

// spec builds one scheme's scenario description in this environment.
func (e testbedEnv) spec(s Scheme, name string, seed uint64, maxTime units.Time) spec.Spec {
	return spec.Spec{
		Version:     spec.Version,
		Name:        name,
		Seed:        seed,
		Scheme:      s.schemeSpec(),
		Topology:    topoSpec(e.topo),
		Transport:   transportSpec(e.transport),
		Workload:    e.workloadSpec(),
		Replication: s.Replication,
		Run: spec.Run{
			MaxTime:      spec.Dur(maxTime),
			StopWhenDone: true,
		},
	}
}

// schemes returns the five §7 schemes configured for the slow fabric.
func (e testbedEnv) schemes() []Scheme {
	return append(baselines(testbedFlowletGap),
		Scheme{Name: "tlb", Params: tlbParams(e.tlbConfig(), spec.LeafSpineEnv(e.topo))})
}

// normalizedPanels builds the two §7 panels: AFCT of short flows and
// mean long-flow throughput, each normalized to TLB's result at the
// same x (the paper's presentation).
type normalizedPanels struct {
	afct, tput Figure
}

func newNormalizedPanels(prefix, xlabel string) *normalizedPanels {
	return &normalizedPanels{
		afct: Figure{ID: prefix + "a", Title: "Normalized AFCT of short flows",
			XLabel: xlabel, YLabel: "AFCT / TLB's AFCT"},
		tput: Figure{ID: prefix + "b", Title: "Normalized throughput of long flows",
			XLabel: xlabel, YLabel: "goodput / TLB's goodput"},
	}
}

// addColumn appends one x-column. order fixes the series order (map
// iteration would randomize it run to run).
func (p *normalizedPanels) addColumn(x float64, order []string, results map[string]*sim.Result) {
	ref := results["tlb"]
	refAFCT := ref.AFCT(sim.ShortFlows).Seconds()
	refTput := float64(ref.Goodput(sim.LongFlows))
	add := func(f *Figure, name string, y float64) {
		for i := range f.Series {
			if f.Series[i].Name == name {
				f.Series[i].Add(x, y)
				return
			}
		}
		s := stats.Series{Name: name}
		s.Add(x, y)
		f.Series = append(f.Series, s)
	}
	for _, name := range order {
		res := results[name]
		if res == nil {
			continue
		}
		if refAFCT > 0 {
			add(&p.afct, name, res.AFCT(sim.ShortFlows).Seconds()/refAFCT)
		}
		if refTput > 0 {
			add(&p.tput, name, float64(res.Goodput(sim.LongFlows))/refTput)
		}
	}
}

// testbedSweep runs all schemes over a list of environment variants:
// the whole (x x scheme) grid goes to the shared runner as one spec
// batch, and the normalized columns are reduced in input order.
func testbedSweep(o Options, prefix, xlabel string, xs []float64, mk func(x float64) testbedEnv, mut func(x float64, env *testbedEnv, sp *spec.Spec)) ([]Figure, error) {
	panels := newNormalizedPanels(prefix, xlabel)
	type cell struct {
		x      float64
		scheme string
	}
	var cells []cell
	var specs []spec.Spec
	for _, x := range xs {
		env := mk(x)
		for _, s := range env.schemes() {
			sp := env.spec(s, fmt.Sprintf("%s-%s-%v", prefix, s.label(), x), o.Seed, 120*units.Second)
			if mut != nil {
				mut(x, &env, &sp)
			}
			cells = append(cells, cell{x, s.label()})
			specs = append(specs, sp)
		}
	}
	results, err := o.runSpecs(prefix, specs)
	if err != nil {
		return nil, err
	}
	// Flush one normalized column per x value, in input order.
	column := map[string]*sim.Result{}
	var order []string
	for i, res := range results {
		if len(order) > 0 && cells[i].x != cells[i-1].x {
			panels.addColumn(cells[i-1].x, order, column)
			column, order = map[string]*sim.Result{}, nil
		}
		column[cells[i].scheme] = res
		order = append(order, cells[i].scheme)
	}
	if len(order) > 0 {
		panels.addColumn(cells[len(cells)-1].x, order, column)
	}
	return []Figure{panels.afct, panels.tput}, nil
}

// Fig13 reproduces §7's Fig. 13: testbed performance as the number of
// short flows grows (normalized to TLB).
func Fig13(o Options) ([]Figure, error) {
	xs := trim(o, []float64{50, 100, 150, 200})
	return testbedSweep(o, "fig13", "number of short flows", xs,
		func(x float64) testbedEnv { return newTestbedEnv(int(x), 4) }, nil)
}

// Fig14 reproduces Fig. 14: varying the number of long flows.
func Fig14(o Options) ([]Figure, error) {
	xs := trim(o, []float64{2, 4, 6, 8})
	return testbedSweep(o, "fig14", "number of long flows", xs,
		func(x float64) testbedEnv { return newTestbedEnv(100, int(x)) }, nil)
}

// Fig16 reproduces Fig. 16: topology asymmetry by adding propagation
// delay to two leaf-to-spine links.
func Fig16(o Options) ([]Figure, error) {
	xs := trim(o, []float64{0, 1, 2, 4}) // extra one-way delay, ms
	return testbedSweep(o, "fig16", "extra delay on 2 links (ms)", xs,
		func(x float64) testbedEnv {
			env := newTestbedEnv(100, 4)
			slow := env.topo.FabricLink
			slow.Delay += units.Time(x) * units.Millisecond
			env.topo.Overrides = []topology.LinkOverride{
				{Leaf: 0, Spine: 2, Link: slow},
				{Leaf: 0, Spine: 7, Link: slow},
			}
			return env
		}, nil)
}

// Fig17 reproduces Fig. 17: asymmetry by de-rating the bandwidth of
// two leaf-to-spine links.
func Fig17(o Options) ([]Figure, error) {
	xs := trim(o, []float64{20, 15, 10, 5}) // Mbps on the slow links
	return testbedSweep(o, "fig17", "bandwidth of 2 links (Mbps)", xs,
		func(x float64) testbedEnv {
			env := newTestbedEnv(100, 4)
			slow := env.topo.FabricLink
			slow.Bandwidth = units.Bandwidth(x) * units.Mbps
			env.topo.Overrides = []topology.LinkOverride{
				{Leaf: 0, Spine: 2, Link: slow},
				{Leaf: 0, Spine: 7, Link: slow},
			}
			return env
		}, nil)
}
