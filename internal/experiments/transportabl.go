package experiments

import (
	"fmt"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// AblationTransport re-runs the load-0.7 web-search comparison under
// four transport variants: the paper's DCTCP, plain TCP NewReno
// (drop-tail, no ECN), DCTCP+SACK and DCTCP+delayed ACKs. It answers
// two questions the paper leaves open: how much of each scheme's
// standing depends on DCTCP keeping queues shallow, and whether
// SACK (which forgives reordering) erodes TLB's advantage over
// packet-spraying schemes.
func AblationTransport(o Options) ([]Figure, error) {
	afct := Figure{ID: "ablation-transport-afct", Title: "Transport variants (short AFCT)",
		XLabel: "variant", YLabel: "AFCT (s): bars labeled scheme/variant"}
	tput := Figure{ID: "ablation-transport-tput", Title: "Transport variants (long goodput)",
		XLabel: "variant", YLabel: "Gbps"}

	variants := []struct {
		name string
		mut  func(*transport.Config, *topology.Config)
	}{
		{"dctcp", func(*transport.Config, *topology.Config) {}},
		{"newreno", func(tc *transport.Config, topo *topology.Config) {
			tc.DCTCP = false
			topo.Queue.ECNThreshold = 0 // drop-tail only
		}},
		{"dctcp+sack", func(tc *transport.Config, _ *topology.Config) { tc.SACK = true }},
		{"dctcp+delack", func(tc *transport.Config, _ *topology.Config) { tc.DelayedAck = true }},
	}
	schemes := []Scheme{
		{Name: "ecmp", Factory: lb.ECMP()},
		{Name: "rps", Factory: lb.RPS()},
		{Name: "letflow", Factory: lb.LetFlow(150 * units.Microsecond)},
	}

	var labels []string
	var scs []sim.Scenario
	for _, v := range variants {
		env := newLargeEnv(websearchSizes(), o.FlowsPerRun)
		tcfg := transport.DefaultConfig()
		v.mut(&tcfg, &env.topo)
		env.transport = tcfg
		all := append(append([]Scheme{}, schemes...),
			Scheme{Name: "tlb", Factory: tlbFactory(env.tlbConfig(0))})
		for _, s := range all {
			sc, err := env.scenario(Scheme{Name: s.Name + "-" + v.name, Factory: s.Factory, Replication: s.Replication}, ablationLoad, o.Seed)
			if err != nil {
				return nil, fmt.Errorf("ablation-transport %s/%s: %w", s.Name, v.name, err)
			}
			labels = append(labels, s.Name+"/"+v.name)
			scs = append(scs, sc)
		}
	}
	results, err := o.runBatch("ablation-transport", scs)
	if err != nil {
		return nil, fmt.Errorf("ablation-transport: %w", err)
	}
	for i, res := range results {
		afct.Bars = append(afct.Bars, Bar{labels[i], res.AFCT(sim.ShortFlows).Seconds()})
		tput.Bars = append(tput.Bars, Bar{labels[i], float64(res.Goodput(sim.LongFlows)) / 1e9})
	}
	return []Figure{afct, tput}, nil
}

// FatTreeComparison runs the headline schemes on a k=4 fat-tree with
// inter-pod traffic — the multi-rooted-tree generalization the paper's
// introduction motivates but its evaluation (leaf-spine only) never
// exercises. Two chained balancing decisions per packet (edge and
// aggregation tiers).
func FatTreeComparison(o Options) ([]Figure, error) {
	afct := Figure{ID: "fattree-afct", Title: "k=4 fat-tree, inter-pod mix (short AFCT)",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "fattree-tput", Title: "k=4 fat-tree, inter-pod mix (long goodput)",
		YLabel: "Gbps"}

	ftCfg := topology.FatTreeConfig{
		K:          4,
		HostLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink: netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:      netem.QueueConfig{Capacity: 256, ECNThreshold: 65},
	}
	flows := fatTreeFlows(o, ftCfg)

	tlbCfg := tlbFatTreeConfig(ftCfg)
	schemes := append(baselines(150*units.Microsecond), Scheme{Name: "tlb", Factory: tlbFactory(tlbCfg)})
	scs := make([]sim.Scenario, len(schemes))
	for i, s := range schemes {
		scs[i] = sim.Scenario{
			Name:       "fattree-" + s.Name,
			Transport:  transport.DefaultConfig(),
			Balancer:   s.Factory,
			SchemeName: s.Name,
			Seed:       o.Seed,
			// flows is shared read-only across the batch: sim.Run never
			// mutates a scenario's flow slice.
			Flows: flows,
			BuildNetwork: func(sm *eventsim.Sim, f lb.Factory, r *eventsim.RNG, deliver topology.DeliverFunc) (topology.Network, error) {
				return topology.NewFatTree(sm, ftCfg, f, r, deliver)
			},
			StopWhenDone: true,
			MaxTime:      60 * units.Second,
		}
	}
	results, err := o.runBatch("fattree", scs)
	if err != nil {
		return nil, fmt.Errorf("fattree: %w", err)
	}
	for i, s := range schemes {
		res := results[i]
		afct.Bars = append(afct.Bars, Bar{s.Name, res.AFCT(sim.ShortFlows).Seconds()})
		tput.Bars = append(tput.Bars, Bar{s.Name, float64(res.Goodput(sim.LongFlows)) / 1e9})
	}
	return []Figure{afct, tput}, nil
}

// tlbFatTreeConfig adapts TLB to the 3-tier fabric.
func tlbFatTreeConfig(ft topology.FatTreeConfig) core.Config {
	c := core.DefaultConfig()
	c.LinkBandwidth = ft.FabricLink.Bandwidth
	// 3-tier round trip: 2 host links + 4 fabric links each way.
	c.RTT = 2 * (2*ft.HostLink.Delay + 4*ft.FabricLink.Delay)
	c.MaxQTh = ft.Queue.Capacity
	c.MeanShortSize = 30 * units.KB
	return c
}

// fatTreeFlows builds an inter-pod web-search-style workload.
func fatTreeFlows(o Options, ft topology.FatTreeConfig) []workload.Flow {
	rng := newRNG(o.Seed + 1)
	sizes := websearchSizes()
	n := o.FlowsPerRun / 2
	if n < 60 {
		n = 60
	}
	hosts := ft.Hosts()
	perPod := hosts / ft.K
	var flows []workload.Flow
	at := units.Time(0)
	for i := 0; i < n; i++ {
		at += units.Time(rng.Intn(int(200 * units.Microsecond)))
		src := rng.Intn(hosts)
		dst := rng.Intn(hosts)
		for dst/perPod == src/perPod {
			dst = rng.Intn(hosts)
		}
		size := sizes.Sample(rng)
		f := workload.Flow{Src: src, Dst: dst, Size: size, Start: at}
		if size <= 100*units.KB {
			f.Deadline = at + 5*units.Millisecond + units.Time(rng.Intn(int(20*units.Millisecond)))
		}
		flows = append(flows, f)
	}
	return flows
}
