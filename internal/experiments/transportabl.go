package experiments

import (
	"tlb/internal/core"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
)

// AblationTransport re-runs the load-0.7 web-search comparison under
// four transport variants: the paper's DCTCP, plain TCP NewReno
// (drop-tail, no ECN), DCTCP+SACK and DCTCP+delayed ACKs. It answers
// two questions the paper leaves open: how much of each scheme's
// standing depends on DCTCP keeping queues shallow, and whether
// SACK (which forgives reordering) erodes TLB's advantage over
// packet-spraying schemes.
func AblationTransport(o Options) ([]Figure, error) {
	afct := Figure{ID: "ablation-transport-afct", Title: "Transport variants (short AFCT)",
		XLabel: "variant", YLabel: "AFCT (s): bars labeled scheme/variant"}
	tput := Figure{ID: "ablation-transport-tput", Title: "Transport variants (long goodput)",
		XLabel: "variant", YLabel: "Gbps"}

	variants := []struct {
		name string
		mut  func(*transport.Config, *topology.Config)
	}{
		{"dctcp", func(*transport.Config, *topology.Config) {}},
		{"newreno", func(tc *transport.Config, topo *topology.Config) {
			tc.DCTCP = false
			topo.Queue.ECNThreshold = 0 // drop-tail only
		}},
		{"dctcp+sack", func(tc *transport.Config, _ *topology.Config) { tc.SACK = true }},
		{"dctcp+delack", func(tc *transport.Config, _ *topology.Config) { tc.DelayedAck = true }},
	}
	schemes := []Scheme{
		{Name: "ecmp"},
		{Name: "rps"},
		{Name: "letflow", Params: spec.Params{"gap": pDur(150 * units.Microsecond)}},
	}

	var labels []string
	var specs []spec.Spec
	for _, v := range variants {
		env := newLargeEnv(websearchSizes(), o.FlowsPerRun)
		tcfg := transport.DefaultConfig()
		v.mut(&tcfg, &env.topo)
		env.transport = tcfg
		all := append(append([]Scheme{}, schemes...), tlbScheme(env, 0))
		for _, s := range all {
			labels = append(labels, s.Name+"/"+v.name)
			specs = append(specs, env.spec(Scheme{
				Name:        s.Name,
				Label:       s.Name + "-" + v.name,
				Params:      s.Params,
				Replication: s.Replication,
			}, ablationLoad, o.Seed))
		}
	}
	results, err := o.runSpecs("ablation-transport", specs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		afct.Bars = append(afct.Bars, Bar{labels[i], res.AFCT(sim.ShortFlows).Seconds()})
		tput.Bars = append(tput.Bars, Bar{labels[i], float64(res.Goodput(sim.LongFlows)) / 1e9})
	}
	return []Figure{afct, tput}, nil
}

// FatTreeComparison runs the headline schemes on a k=4 fat-tree with
// inter-pod traffic — the multi-rooted-tree generalization the paper's
// introduction motivates but its evaluation (leaf-spine only) never
// exercises. Two chained balancing decisions per packet (edge and
// aggregation tiers).
func FatTreeComparison(o Options) ([]Figure, error) {
	afct := Figure{ID: "fattree-afct", Title: "k=4 fat-tree, inter-pod mix (short AFCT)",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "fattree-tput", Title: "k=4 fat-tree, inter-pod mix (long goodput)",
		YLabel: "Gbps"}

	ftCfg := topology.FatTreeConfig{
		K:          4,
		HostLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink: netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:      netem.QueueConfig{Capacity: 256, ECNThreshold: 65},
	}
	n := o.FlowsPerRun / 2
	if n < 60 {
		n = 60
	}
	// An inter-pod web-search-style workload: uniform random arrival
	// gaps, cross-pod host pairs, deadlines on the mice.
	wl := spec.Workload{
		Kind: "interpod",
		InterPod: &spec.InterPod{
			Flows:             n,
			Sizes:             websearchSizes(),
			MaxGap:            spec.Dur(200 * units.Microsecond),
			DeadlineBase:      spec.Dur(5 * units.Millisecond),
			DeadlineJitter:    spec.Dur(20 * units.Millisecond),
			DeadlineOnlyBelow: spec.Sz(100 * units.KB),
		},
	}

	schemes := append(baselines(150*units.Microsecond),
		Scheme{Name: "tlb", Params: tlbParams(tlbFatTreeConfig(ftCfg), spec.FatTreeEnv(ftCfg))})
	specs := make([]spec.Spec, len(schemes))
	for i, s := range schemes {
		specs[i] = spec.Spec{
			Version:  spec.Version,
			Name:     "fattree-" + s.label(),
			Seed:     o.Seed,
			Scheme:   s.schemeSpec(),
			Topology: fatTreeSpec(ftCfg),
			Workload: wl,
			Run: spec.Run{
				MaxTime:      spec.Dur(60 * units.Second),
				StopWhenDone: true,
			},
		}
	}
	results, err := o.runSpecs("fattree", specs)
	if err != nil {
		return nil, err
	}
	for i, s := range schemes {
		res := results[i]
		afct.Bars = append(afct.Bars, Bar{s.label(), res.AFCT(sim.ShortFlows).Seconds()})
		tput.Bars = append(tput.Bars, Bar{s.label(), float64(res.Goodput(sim.LongFlows)) / 1e9})
	}
	return []Figure{afct, tput}, nil
}

// tlbFatTreeConfig adapts TLB to the 3-tier fabric.
func tlbFatTreeConfig(ft topology.FatTreeConfig) core.Config {
	c := core.DefaultConfig()
	c.LinkBandwidth = ft.FabricLink.Bandwidth
	// 3-tier round trip: 2 host links + 4 fabric links each way.
	c.RTT = 2 * (2*ft.HostLink.Delay + 4*ft.FabricLink.Delay)
	c.MaxQTh = ft.Queue.Capacity
	c.MeanShortSize = 30 * units.KB
	return c
}
