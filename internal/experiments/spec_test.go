package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tlb/internal/sim"
	"tlb/internal/spec"
)

// goldenOpts pins the options the checked-in golden specs were
// generated with; changing them invalidates testdata/specs.
func goldenOpts() Options { return Options{Seed: 42, FlowsPerRun: 150} }

// goldenSources enumerates the spec batches covered by the golden
// files: the basic-environment comparison (fig8/9), the faulted
// testbed batch (figF1) and the streamed scale run (figLS) — between
// them they exercise schemes with parameters, mix groups, deadlines,
// outputs (including streamStats), interpod workloads and fault
// schedules.
func goldenSources() map[string][]spec.Spec {
	o := goldenOpts()
	_, fig89 := fig89Specs(o)
	_, figF1 := figF1Specs(o)
	_, figLS := figLSSpecs(o)
	return map[string][]spec.Spec{
		"fig8-9": fig89,
		"figF1":  figF1,
		"figLS":  figLS,
	}
}

// TestSpecsRoundTrip marshals every figure-built spec to JSON, loads
// it back, and requires the loaded value to be structurally identical,
// re-marshal byte-identical, and valid.
func TestSpecsRoundTrip(t *testing.T) {
	for prefix, specs := range goldenSources() {
		for i := range specs {
			sp := specs[i]
			data, err := sp.Marshal()
			if err != nil {
				t.Fatalf("%s[%d] %s: marshal: %v", prefix, i, sp.Name, err)
			}
			back, err := spec.LoadBytes(data)
			if err != nil {
				t.Fatalf("%s[%d] %s: load: %v", prefix, i, sp.Name, err)
			}
			if !reflect.DeepEqual(sp, *back) {
				t.Errorf("%s[%d] %s: spec changed across marshal/unmarshal\nbefore: %+v\nafter:  %+v",
					prefix, i, sp.Name, sp, *back)
			}
			again, err := back.Marshal()
			if err != nil {
				t.Fatalf("%s[%d] %s: re-marshal: %v", prefix, i, sp.Name, err)
			}
			if !bytes.Equal(data, again) {
				t.Errorf("%s[%d] %s: JSON not stable across a round trip", prefix, i, sp.Name)
			}
			if err := back.Validate(); err != nil {
				t.Errorf("%s[%d] %s: loaded spec invalid: %v", prefix, i, sp.Name, err)
			}
		}
	}
}

// TestGoldenSpecFiles compares the figure-built specs against the
// checked-in JSON under testdata/specs — the serialized contract of
// the experiment definitions. Regenerate with
//
//	TLB_UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGoldenSpecFiles
func TestGoldenSpecFiles(t *testing.T) {
	update := os.Getenv("TLB_UPDATE_GOLDEN") != ""
	dir := filepath.Join("testdata", "specs")
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for prefix, specs := range goldenSources() {
		for i := range specs {
			sp := specs[i]
			name := fmt.Sprintf("%s-%03d-%s.json", sanitizeFileName(prefix), i, sanitizeFileName(sp.Name))
			path := filepath.Join(dir, name)
			data, err := sp.Marshal()
			if err != nil {
				t.Fatalf("%s: marshal: %v", sp.Name, err)
			}
			if update {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: %v (regenerate with TLB_UPDATE_GOLDEN=1)", sp.Name, err)
			}
			if !bytes.Equal(data, want) {
				t.Errorf("%s: spec differs from golden %s (regenerate with TLB_UPDATE_GOLDEN=1 if the change is intended)",
					sp.Name, path)
			}
		}
	}
}

// TestSpecCompileRoundTripResults runs one scenario twice — once from
// the in-memory spec, once from its JSON round trip — and requires
// identical results: serializing an experiment must not change what it
// measures.
func TestSpecCompileRoundTripResults(t *testing.T) {
	_, specs := fig89Specs(goldenOpts())
	sp := specs[0] // ecmp on the basic environment

	run := func(s *spec.Spec) *sim.Result {
		t.Helper()
		sc, err := s.Compile()
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		res, err := sim.Run(sc)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}

	direct := run(&sp)
	data, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := spec.LoadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	tripped := run(loaded)

	checks := []struct {
		name     string
		from, to float64
	}{
		{"flows", float64(direct.Count(sim.AllFlows)), float64(tripped.Count(sim.AllFlows))},
		{"completed", float64(direct.CompletedCount(sim.AllFlows)), float64(tripped.CompletedCount(sim.AllFlows))},
		{"short AFCT", direct.AFCT(sim.ShortFlows).Seconds(), tripped.AFCT(sim.ShortFlows).Seconds()},
		{"long AFCT", direct.AFCT(sim.LongFlows).Seconds(), tripped.AFCT(sim.LongFlows).Seconds()},
		{"drops", float64(direct.Drops), float64(tripped.Drops)},
		{"end time", direct.EndTime.Seconds(), tripped.EndTime.Seconds()},
	}
	for _, c := range checks {
		if c.from != c.to {
			t.Errorf("%s: direct %v != round-tripped %v", c.name, c.from, c.to)
		}
	}
}

// TestSpecObserverSeesEveryRun runs a figure with the spec observer
// installed and checks that every scenario the figure executes is
// visible — and valid — as a spec.
func TestSpecObserverSeesEveryRun(t *testing.T) {
	o := Options{Seed: 42, FlowsPerRun: 60}
	var seen []spec.Spec
	o.specObserver = func(prefix string, sp *spec.Spec) {
		if prefix != "fig8/9" {
			t.Errorf("unexpected prefix %q", prefix)
		}
		seen = append(seen, *sp)
	}
	if _, err := Fig8And9(o); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("observed %d specs, want 5 (the four baselines + tlb)", len(seen))
	}
	for _, sp := range seen {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
		if !sp.Outputs.CollectTimeSeries {
			t.Errorf("%s: fig8/9 needs the time series enabled", sp.Name)
		}
	}
}
