package experiments

import (
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/stats"
	"tlb/internal/units"
)

// loadGrid is the paper's workload sweep.
var loadGrid = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

// fourPanels aggregates one large-scale run into the paper's four
// standard panels.
type fourPanels struct {
	afct, tail, miss, tput Figure
}

func newFourPanels(prefix, workloadName string) *fourPanels {
	return &fourPanels{
		afct: Figure{ID: prefix + "a", Title: "AFCT of short flows (" + workloadName + ")",
			XLabel: "load", YLabel: "AFCT (s)"},
		tail: Figure{ID: prefix + "b", Title: "99th percentile FCT of short flows (" + workloadName + ")",
			XLabel: "load", YLabel: "FCT (s)"},
		miss: Figure{ID: prefix + "c", Title: "Missed deadlines of short flows (" + workloadName + ")",
			XLabel: "load", YLabel: "miss fraction"},
		tput: Figure{ID: prefix + "d", Title: "Throughput of long flows (" + workloadName + ")",
			XLabel: "load", YLabel: "per-flow goodput (Gbps)"},
	}
}

func (p *fourPanels) addPoint(series string, load float64, res *sim.Result) {
	add := func(f *Figure, y float64) {
		for i := range f.Series {
			if f.Series[i].Name == series {
				f.Series[i].Add(load, y)
				return
			}
		}
		s := stats.Series{Name: series}
		s.Add(load, y)
		f.Series = append(f.Series, s)
	}
	add(&p.afct, res.AFCT(sim.ShortFlows).Seconds())
	add(&p.tail, res.FCTPercentile(sim.ShortFlows, 99).Seconds())
	add(&p.miss, res.DeadlineMissRatio(sim.ShortFlows))
	add(&p.tput, float64(res.Goodput(sim.LongFlows))/1e9)
}

func (p *fourPanels) figures() []Figure {
	return []Figure{p.afct, p.tail, p.miss, p.tput}
}

// largeSweep runs the scheme set over the load grid in the given
// environment: the whole (load x scheme) grid is built as one spec
// batch, submitted to the shared runner, and reduced in input order —
// so the resulting figures are identical at any worker count.
func largeSweep(o Options, env largeEnv, schemes []Scheme, prefix, workloadName string) ([]Figure, error) {
	panels := newFourPanels(prefix, workloadName)
	loads := trim(o, loadGrid)
	type point struct {
		scheme string
		load   float64
	}
	pts := make([]point, 0, len(loads)*len(schemes))
	specs := make([]spec.Spec, 0, len(loads)*len(schemes))
	for _, load := range loads {
		for _, s := range schemes {
			pts = append(pts, point{s.label(), load})
			specs = append(specs, env.spec(s, load, o.Seed))
		}
	}
	results, err := o.runSpecs(prefix, specs)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		panels.addPoint(pts[i].scheme, pts[i].load, res)
	}
	return panels.figures(), nil
}

// tlbScheme renders TLB with the environment's configuration (the
// parameters are the diff against the registry's environment-derived
// base, so a plain environment renders as parameterless "tlb").
func tlbScheme(env largeEnv, deadline units.Time) Scheme {
	return Scheme{Name: "tlb", Params: tlbParams(env.tlbConfig(deadline), spec.LeafSpineEnv(env.topo))}
}

// Fig10 reproduces the web-search large-scale sweep (§6.2): AFCT, tail
// FCT and deadline misses of short flows plus long-flow throughput for
// ECMP, RPS, Presto, LetFlow and TLB over loads 0.1–0.8.
func Fig10(o Options) ([]Figure, error) {
	env := newLargeEnv(websearchSizes(), o.FlowsPerRun)
	schemes := append(baselines(150*units.Microsecond), tlbScheme(env, 0))
	return largeSweep(o, env, schemes, "fig10", "web search")
}

// Fig11 reproduces the data-mining sweep (§6.2). The VL2 elephant tail
// is truncated at 50 MB (paper: <5% of flows exceed 35 MB) to bound
// single-run time; the mice/elephant boundary the paper discusses is
// preserved.
func Fig11(o Options) ([]Figure, error) {
	env := newLargeEnv(dataminingSizes(), o.FlowsPerRun*2/3)
	schemes := append(baselines(150*units.Microsecond), tlbScheme(env, 0))
	return largeSweep(o, env, schemes, "fig11", "data mining")
}

// Fig12 reproduces the deadline-agnostic study (§6.3): TLB configured
// with the 5th/25th/50th/75th percentile of the (unknown to the
// switch) U[5ms,25ms] deadline distribution, under the web-search
// workload.
func Fig12(o Options) ([]Figure, error) {
	env := newLargeEnv(websearchSizes(), o.FlowsPerRun)
	percentiles := []struct {
		name string
		d    units.Time
	}{
		{"tlb-5th", 5 * units.Millisecond},
		{"tlb-25th", 10 * units.Millisecond},
		{"tlb-50th", 15 * units.Millisecond},
		{"tlb-75th", 20 * units.Millisecond},
	}
	schemes := make([]Scheme, 0, len(percentiles))
	for _, p := range percentiles {
		s := tlbScheme(env, p.d)
		s.Label = p.name
		schemes = append(schemes, s)
	}
	return largeSweep(o, env, schemes, "fig12", "web search, deadline-agnostic")
}
