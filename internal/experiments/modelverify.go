package experiments

import (
	"fmt"
	"math"

	"tlb/internal/model"
	"tlb/internal/sim"
	"tlb/internal/stats"
	"tlb/internal/units"
)

// fig7Env is the §4.2 verification setup: 512-packet buffers, 3 long +
// 100 short flows, X = 70 KB, D = 10 ms.
type fig7Env struct {
	basicEnv
	deadline units.Time
}

func newFig7Env(shorts, longs, paths int, deadline units.Time) fig7Env {
	env := newBasicEnv(512, shorts, longs)
	env.topo.Spines = paths
	if paths > env.topo.HostsPerLeaf {
		env.topo.HostsPerLeaf = paths
	}
	return fig7Env{basicEnv: env, deadline: deadline}
}

// modelParams translates the environment into the queueing model's
// inputs.
func (e fig7Env) modelParams() model.Params {
	return model.Params{
		Paths:         e.topo.Spines,
		ShortFlows:    e.shorts,
		LongFlows:     e.longs,
		LinkBandwidth: e.topo.FabricLink.Bandwidth,
		RTT:           e.topo.BaseRTT(),
		MeanShortSize: units.Bytes(e.shortSize.Mean()),
		LongWindow:    64 * units.KiB,
		Deadline:      e.deadline,
		Interval:      500 * units.Microsecond,
		MSS:           e.transport.MSS,
		// Fig. 7's numeric curves are the paper's literal Eq. 9.
		UncappedLongDemand: true,
	}
}

// simulatedMinQTh searches for the smallest fixed switching threshold
// under which the run misses no short-flow deadlines — the empirical
// counterpart of Eq. 9. The search is a binary search over [0, buffer]
// exploiting that more stickiness (larger q_th) only helps shorts.
func (e fig7Env) simulatedMinQTh(o Options, seed uint64) (int, error) {
	missesAt := func(qth int) (float64, error) {
		cfg := e.tlbConfig()
		cfg.FixedQTh = qth
		cfg.Deadline = e.deadline
		res, err := e.run(fmt.Sprintf("fig7-q%d", qth), tlbFactory(cfg), seed, func(sc *sim.Scenario) {
			// Override deadlines to the fixed model deadline D so the
			// measurement matches the model's question ("do shorts
			// finish within D").
			for i := range sc.Flows {
				if sc.Flows[i].Size <= 100*units.KB {
					sc.Flows[i].Deadline = sc.Flows[i].Start + e.deadline
				} else {
					sc.Flows[i].Deadline = 0
				}
			}
		})
		if err != nil {
			return 0, err
		}
		return res.DeadlineMissRatio(sim.ShortFlows), nil
	}

	max := e.topo.Queue.Capacity
	// Tolerate a small residual miss ratio: a handful of unlucky
	// flows (hash collisions on the reverse path, ACK losses) would
	// otherwise absorb the whole search range.
	const tol = 0.02
	mAtMax, err := missesAt(max)
	if err != nil {
		return 0, err
	}
	if mAtMax > tol {
		return max, nil // even full stickiness cannot meet D
	}
	lo, hi := 0, max // invariant: hi satisfies, lo-1 unknown/fails
	m0, err := missesAt(0)
	if err != nil {
		return 0, err
	}
	if m0 <= tol {
		return 0, nil
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		m, err := missesAt(mid)
		if err != nil {
			return 0, err
		}
		o.logf("fig7: qth=%d miss=%.3f", mid, m)
		if m <= tol {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// Fig7 reproduces the §4.2 model verification: the minimum switching
// threshold q_th, numeric (Eq. 9) versus simulated, swept over the
// number of short flows (7a), long flows (7b), paths (7c) and the
// deadline (7d).
func Fig7(o Options) ([]Figure, error) {
	defaultDeadline := 10 * units.Millisecond

	type sweep struct {
		id, title, xlabel string
		xs                []float64
		env               func(x float64) fig7Env
	}
	sweeps := []sweep{
		{"fig7a", "q_th vs number of short flows", "short flows",
			[]float64{20, 40, 60, 80, 100},
			func(x float64) fig7Env { return newFig7Env(int(x), 3, 15, defaultDeadline) }},
		{"fig7b", "q_th vs number of long flows", "long flows",
			[]float64{1, 2, 3, 4, 5},
			func(x float64) fig7Env { return newFig7Env(100, int(x), 15, defaultDeadline) }},
		{"fig7c", "q_th vs number of paths", "paths",
			[]float64{10, 15, 20, 25, 30},
			func(x float64) fig7Env { return newFig7Env(100, 3, int(x), defaultDeadline) }},
		{"fig7d", "q_th vs deadline", "deadline (ms)",
			[]float64{5, 10, 15, 20, 25},
			func(x float64) fig7Env {
				return newFig7Env(100, 3, 15, units.Time(x)*units.Millisecond)
			}},
	}

	var figs []Figure
	for _, sw := range sweeps {
		xs := trim(o, sw.xs)
		numeric := stats.Series{Name: "model"}
		simulated := stats.Series{Name: "simulation"}
		for _, x := range xs {
			env := sw.env(x)
			q := env.modelParams().QTh()
			if math.IsInf(q, 1) {
				q = float64(env.topo.Queue.Capacity)
			}
			numeric.Add(x, q)
			o.logf("fig7 %s: x=%v model=%.1f, searching simulation...", sw.id, x, q)
			sq, err := env.simulatedMinQTh(o, o.Seed)
			if err != nil {
				return nil, fmt.Errorf("%s at %v: %w", sw.id, x, err)
			}
			simulated.Add(x, float64(sq))
		}
		figs = append(figs, Figure{
			ID: sw.id, Title: sw.title, XLabel: sw.xlabel,
			YLabel: "min q_th (packets)",
			Series: []stats.Series{numeric, simulated},
		})
	}
	return figs, nil
}
