package experiments

import (
	"fmt"
	"math"

	"tlb/internal/model"
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/stats"
	"tlb/internal/units"
)

// fig7Env is the §4.2 verification setup: 512-packet buffers, 3 long +
// 100 short flows, X = 70 KB, D = 10 ms.
type fig7Env struct {
	basicEnv
	deadline units.Time
}

func newFig7Env(shorts, longs, paths int, deadline units.Time) fig7Env {
	env := newBasicEnv(512, shorts, longs)
	env.topo.Spines = paths
	if paths > env.topo.HostsPerLeaf {
		env.topo.HostsPerLeaf = paths
	}
	return fig7Env{basicEnv: env, deadline: deadline}
}

// modelParams translates the environment into the queueing model's
// inputs.
func (e fig7Env) modelParams() model.Params {
	return model.Params{
		Paths:         e.topo.Spines,
		ShortFlows:    e.shorts,
		LongFlows:     e.longs,
		LinkBandwidth: e.topo.FabricLink.Bandwidth,
		RTT:           e.topo.BaseRTT(),
		MeanShortSize: units.Bytes(e.shortSize.Mean()),
		LongWindow:    64 * units.KiB,
		Deadline:      e.deadline,
		Interval:      500 * units.Microsecond,
		MSS:           e.transport.MSS,
		// Fig. 7's numeric curves are the paper's literal Eq. 9.
		UncappedLongDemand: true,
	}
}

// qthSpec builds the run measuring the short-flow deadline-miss
// ratio under a fixed switching threshold qth. label keys the scenario
// to its sweep point for progress lines and error reports.
func (e fig7Env) qthSpec(label string, qth int, seed uint64) spec.Spec {
	cfg := e.tlbConfig()
	cfg.FixedQTh = qth
	cfg.Deadline = e.deadline
	s := Scheme{
		Name:   "tlb",
		Label:  fmt.Sprintf("%s-q%d", label, qth),
		Params: tlbParams(cfg, spec.LeafSpineEnv(e.topo)),
	}
	sp := e.spec(s, seed)
	// Override deadlines to the fixed model deadline D so the
	// measurement matches the model's question ("do shorts finish
	// within D").
	sp.Workload.DeadlineOverride = &spec.DeadlineOverride{
		Deadline:  spec.Dur(e.deadline),
		OnlyBelow: spec.Sz(100 * units.KB),
	}
	return sp
}

// qthSearchTol is the residual miss ratio the search tolerates: a
// handful of unlucky flows (hash collisions on the reverse path, ACK
// losses) would otherwise absorb the whole search range.
const qthSearchTol = 0.02

// qthSearch finds the smallest fixed switching threshold under which a
// run misses (almost) no short-flow deadlines — the empirical
// counterpart of Eq. 9, a binary search over [0, buffer] exploiting
// that more stickiness (larger q_th) only helps shorts.
//
// The search is expressed as a state machine (propose next probe,
// observe its miss ratio) so that Fig7 can run all sweep points'
// searches in lockstep rounds through the shared sweep runner: each
// search's probe sequence is exactly the serial binary search's, so
// batched and serial execution produce identical thresholds — only
// independent searches overlap in time.
type qthSearch struct {
	env   fig7Env
	label string
	seed  uint64

	phase   int // 0: probe max; 1: probe 0; 2: bisect; 3: done
	lo, hi  int
	probe   int // the pending threshold when phase < 3
	result  int
	verbose func(format string, args ...any)
}

func newQthSearch(env fig7Env, label string, seed uint64, verbose func(string, ...any)) *qthSearch {
	return &qthSearch{
		env: env, label: label, seed: seed,
		probe: env.topo.Queue.Capacity, verbose: verbose,
	}
}

func (q *qthSearch) done() bool { return q.phase == 3 }

// spec returns the run for the pending probe.
func (q *qthSearch) spec() spec.Spec {
	return q.env.qthSpec(q.label, q.probe, q.seed)
}

// observe consumes the pending probe's miss ratio and advances the
// search.
func (q *qthSearch) observe(miss float64) {
	max := q.env.topo.Queue.Capacity
	switch q.phase {
	case 0: // full stickiness
		if miss > qthSearchTol {
			q.finish(max) // even full stickiness cannot meet D
			return
		}
		q.phase, q.probe = 1, 0
	case 1: // no stickiness
		if miss <= qthSearchTol {
			q.finish(0)
			return
		}
		// Invariant: hi satisfies, lo fails.
		q.lo, q.hi = 0, max
		q.bisect()
	case 2:
		q.verbose("fig7 %s: qth=%d miss=%.3f", q.label, q.probe, miss)
		if miss <= qthSearchTol {
			q.hi = q.probe
		} else {
			q.lo = q.probe
		}
		q.bisect()
	}
}

func (q *qthSearch) bisect() {
	if q.lo+1 >= q.hi {
		q.finish(q.hi)
		return
	}
	q.phase, q.probe = 2, (q.lo+q.hi)/2
}

func (q *qthSearch) finish(result int) { q.result, q.phase = result, 3 }

// Fig7 reproduces the §4.2 model verification: the minimum switching
// threshold q_th, numeric (Eq. 9) versus simulated, swept over the
// number of short flows (7a), long flows (7b), paths (7c) and the
// deadline (7d). All sweep points' threshold searches advance in
// lockstep: each round batches every active search's next probe
// through the shared runner.
func Fig7(o Options) ([]Figure, error) {
	defaultDeadline := 10 * units.Millisecond

	type sweep struct {
		id, title, xlabel string
		xs                []float64
		env               func(x float64) fig7Env
	}
	sweeps := []sweep{
		{"fig7a", "q_th vs number of short flows", "short flows",
			[]float64{20, 40, 60, 80, 100},
			func(x float64) fig7Env { return newFig7Env(int(x), 3, 15, defaultDeadline) }},
		{"fig7b", "q_th vs number of long flows", "long flows",
			[]float64{1, 2, 3, 4, 5},
			func(x float64) fig7Env { return newFig7Env(100, int(x), 15, defaultDeadline) }},
		{"fig7c", "q_th vs number of paths", "paths",
			[]float64{10, 15, 20, 25, 30},
			func(x float64) fig7Env { return newFig7Env(100, 3, int(x), defaultDeadline) }},
		{"fig7d", "q_th vs deadline", "deadline (ms)",
			[]float64{5, 10, 15, 20, 25},
			func(x float64) fig7Env {
				return newFig7Env(100, 3, 15, units.Time(x)*units.Millisecond)
			}},
	}

	// One search per (sweep, x) point, plus the numeric curve computed
	// up front.
	type point struct {
		sweepIdx int
		x        float64
		search   *qthSearch
	}
	var points []point
	numeric := make([]stats.Series, len(sweeps))
	for si, sw := range sweeps {
		numeric[si] = stats.Series{Name: "model"}
		for _, x := range trim(o, sw.xs) {
			env := sw.env(x)
			q := env.modelParams().QTh()
			if math.IsInf(q, 1) {
				q = float64(env.topo.Queue.Capacity)
			}
			numeric[si].Add(x, q)
			label := fmt.Sprintf("%s-x%v", sw.id, x)
			points = append(points, point{
				sweepIdx: si, x: x,
				search: newQthSearch(env, label, o.Seed, o.logf),
			})
		}
	}

	// Lockstep rounds: batch every active search's pending probe.
	for round := 1; ; round++ {
		var specs []spec.Spec
		var owner []int // batch position -> points index
		for pi := range points {
			if !points[pi].search.done() {
				specs = append(specs, points[pi].search.spec())
				owner = append(owner, pi)
			}
		}
		if len(specs) == 0 {
			break
		}
		o.logf("fig7: search round %d, %d active probes", round, len(specs))
		results, err := o.runSpecs("fig7", specs)
		if err != nil {
			return nil, err
		}
		for k, res := range results {
			points[owner[k]].search.observe(res.DeadlineMissRatio(sim.ShortFlows))
		}
	}

	var figs []Figure
	for si, sw := range sweeps {
		simulated := stats.Series{Name: "simulation"}
		for _, p := range points {
			if p.sweepIdx == si {
				simulated.Add(p.x, float64(p.search.result))
			}
		}
		figs = append(figs, Figure{
			ID: sw.id, Title: sw.title, XLabel: sw.xlabel,
			YLabel: "min q_th (packets)",
			Series: []stats.Series{numeric[si], simulated},
		})
	}
	return figs, nil
}
