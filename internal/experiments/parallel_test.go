package experiments

import (
	"testing"
)

// figureCSV concatenates every panel's CSV rendering — the byte-level
// identity the parallel runner must preserve.
func figureCSV(figs []Figure) string {
	out := ""
	for _, f := range figs {
		out += f.CSV()
	}
	return out
}

// TestParallelSerialIdenticalFigures is the determinism contract of
// the shared sweep runner: the same figure run serially (Workers: 1)
// and with a full worker pool (Workers: 8) must produce byte-identical
// CSV output. Scenarios own their seeds and results are reduced in
// input order, so scheduling must not be observable.
func TestParallelSerialIdenticalFigures(t *testing.T) {
	run := func(workers int) string {
		figs, err := Fig8And9(Options{Seed: 11, FlowsPerRun: 100, SweepPoints: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return figureCSV(figs)
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatalf("Workers=1 and Workers=8 diverge:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if len(serial) == 0 {
		t.Fatal("empty figures")
	}
}

// TestParallelSerialIdenticalLargeSweep covers the batched load-grid
// path (and with it the Poisson workload generation), which fans out
// the widest in the figure suite.
func TestParallelSerialIdenticalLargeSweep(t *testing.T) {
	run := func(workers int) string {
		figs, err := Fig10(Options{Seed: 5, FlowsPerRun: 60, SweepPoints: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return figureCSV(figs)
	}
	if a, b := run(1), run(6); a != b {
		t.Fatalf("large sweep diverges across worker counts:\n%s\nvs\n%s", a, b)
	}
}
