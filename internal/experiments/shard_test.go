package experiments

import "testing"

// These tests are the figure-level determinism contract of the
// sharded scenario runner (sim.Scenario.Shards): a figure rendered
// with every simulation partitioned across 1, 2 or 4 spatial shards
// must be byte-identical to the unsharded run. The sharded engine
// reproduces the global event order exactly — deliveries are keyed by
// (admission time, port index) in both modes — so this holds at the
// strictest possible level, the CSV bytes.

// runShardCounts renders one figure at each shard count and fails on
// the first byte difference.
func runShardCounts(t *testing.T, name string, run func(o Options) ([]Figure, error), base Options) {
	t.Helper()
	render := func(shards int) string {
		o := base
		o.Shards = shards
		figs, err := run(o)
		if err != nil {
			t.Fatalf("%s at %d shard(s): %v", name, shards, err)
		}
		return figureCSV(figs)
	}
	unsharded := render(1)
	if len(unsharded) == 0 {
		t.Fatalf("%s: empty figures", name)
	}
	for _, shards := range []int{2, 4} {
		if got := render(shards); got != unsharded {
			t.Fatalf("%s diverges at %d shards:\n--- 1 shard ---\n%s\n--- %d shards ---\n%s",
				name, shards, unsharded, shards, got)
		}
	}
}

// TestShardedIdenticalFig8 covers the leaf-spine incast/web-search
// sweep — spine-heavy cross-leaf traffic, so almost every packet
// crosses a shard boundary.
func TestShardedIdenticalFig8(t *testing.T) {
	runShardCounts(t, "fig8/9", Fig8And9, Options{Seed: 11, FlowsPerRun: 100, SweepPoints: 2})
}

// TestShardedIdenticalFig10 covers the Poisson load grid (large-scale
// FCT sweep), the widest fan-out in the suite.
func TestShardedIdenticalFig10(t *testing.T) {
	runShardCounts(t, "fig10", Fig10, Options{Seed: 5, FlowsPerRun: 60, SweepPoints: 2})
}

// TestShardedIdenticalFig13 covers the testbed short-flow sweep.
func TestShardedIdenticalFig13(t *testing.T) {
	runShardCounts(t, "fig13", Fig13, Options{Seed: 9, FlowsPerRun: 60, SweepPoints: 2})
}

// TestShardedIdenticalFigF1 covers fault injection: the fault schedule
// is installed per shard with ownership-filtered resolution, and this
// pins that partitioned installation to the unsharded behavior.
func TestShardedIdenticalFigF1(t *testing.T) {
	runShardCounts(t, "figF1", FigF1, Options{Seed: 7, FlowsPerRun: 80, SweepPoints: 2})
}

// TestShardedIdenticalFigF2 covers the flapping-link recovery figure.
func TestShardedIdenticalFigF2(t *testing.T) {
	runShardCounts(t, "figF2", FigF2, Options{Seed: 3, FlowsPerRun: 60, SweepPoints: 2})
}

// TestShardedComposesWithWorkers runs shards inside the concurrent
// sweep pool: worker goroutines each drive their own sharded
// coordinator, and the figure must still match the serial unsharded
// render.
func TestShardedComposesWithWorkers(t *testing.T) {
	render := func(workers, shards int) string {
		figs, err := FigF1(Options{Seed: 7, FlowsPerRun: 80, SweepPoints: 2, Workers: workers, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return figureCSV(figs)
	}
	serial := render(1, 1)
	if got := render(4, 2); got != serial {
		t.Fatalf("workers=4 shards=2 diverges from serial unsharded:\n%s\nvs\n%s", serial, got)
	}
}
