package experiments

import (
	"fmt"
	"math"

	"tlb/internal/faults"
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/stats"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// The paper's §7 asymmetry study (Fig. 16–17) degrades links statically
// before the run starts. FigF1 and FigF2 extend it to the dynamic case:
// links fail and recover mid-traffic, which is when a load balancer's
// path-condition detection actually earns its keep. Both run on the §7
// testbed fabric (2 leaves x 10 spines, 20 Mbps, 1 ms links) and use
// the deterministic schedule-driven injector of internal/faults.

// figF1 failure window: both overridden Fig. 16/17 links — (leaf0,
// spine2) and (leaf0, spine7) — go down at 2.5 s and recover at 5.5 s,
// while short flows keep arriving over an 8 s window against 4
// established 15 MB long flows.
const (
	figF1FailAt    = 2500 * units.Millisecond
	figF1RecoverAt = 5500 * units.Millisecond
	figF1Window    = 8 * units.Second
)

// figF1Workload spreads shorts uniformly over the whole observation
// window (so every phase — before, during, after the failure — sees
// fresh arrivals) against long flows established at t=0. Two mix
// groups drawn in order from the shared workload RNG: the longs
// first, then the jittered shorts.
func figF1Workload(env testbedEnv, shorts int) spec.Workload {
	return spec.Workload{
		Kind: "mix",
		Groups: []spec.MixGroup{
			{
				Longs:     env.longs,
				LongSizes: sizeSpec(workload.Fixed{Size: 15 * units.MB}),
			},
			{
				Shorts:        shorts,
				ShortSizes:    sizeSpec(workload.Uniform{MinSize: 10 * units.KB, MaxSize: 100 * units.KB}),
				ArrivalJitter: spec.Dur(figF1Window),
				Deadlines: deadlineSpec(workload.DeadlineDist{
					Min: 2 * units.Second, Max: 6 * units.Second,
					OnlyBelow: 100 * units.KB,
				}),
			},
		},
	}
}

// figF1Shorts scales the short-flow count off Options.FlowsPerRun
// (which targets the 1 Gbps large-scale runs) to something the 20 Mbps
// testbed fabric can drain inside the window.
func figF1Shorts(o Options) int {
	n := o.FlowsPerRun / 4
	if n < 20 {
		n = 20
	}
	if n > 300 {
		n = 300
	}
	return n
}

// figF1Specs builds the fail→recover batch: every testbed scheme under
// the fault schedule, with the time series enabled. Shared with the
// golden-spec tests.
func figF1Specs(o Options) ([]string, []spec.Spec) {
	env := newTestbedEnv(0, 4)
	shorts := figF1Shorts(o)
	sched := faults.Schedule{
		faults.Down(figF1FailAt, 0, 2),
		faults.Down(figF1FailAt, 0, 7),
		faults.Restore(figF1RecoverAt, 0, 2),
		faults.Restore(figF1RecoverAt, 0, 7),
	}
	var specs []spec.Spec
	var order []string
	for _, s := range env.schemes() {
		order = append(order, s.label())
		sp := env.spec(s, fmt.Sprintf("figF1-%s", s.label()), o.Seed, 120*units.Second)
		sp.Workload = figF1Workload(env, shorts)
		sp.Faults = faultSpecs(sched)
		sp.Outputs.CollectTimeSeries = true
		sp.Outputs.TimeBucket = spec.Dur(250 * units.Millisecond)
		specs = append(specs, sp)
	}
	return order, specs
}

// FigF1 runs the fail→recover experiment: two of ten uplinks of leaf 0
// go down mid-run and come back 3 s later.
//
//   - figF1a: short-flow AFCT bucketed by flow start time — the
//     recovery transient, per scheme.
//   - figF1b: aggregate long-flow goodput over time.
//   - figF1c: short-flow AFCT in the pre-failure, failure and
//     post-recovery windows, as bars per scheme.
func FigF1(o Options) ([]Figure, error) {
	order, specs := figF1Specs(o)
	results, err := o.runSpecs("figF1", specs)
	if err != nil {
		return nil, err
	}

	afct := Figure{ID: "figF1a", Title: "Short-flow AFCT by start time through fail/recover",
		XLabel: "flow start time (s)", YLabel: "AFCT (s)"}
	tput := Figure{ID: "figF1b", Title: "Long-flow goodput through fail/recover",
		XLabel: "time (s)", YLabel: "aggregate goodput (Mbps)"}
	bars := Figure{ID: "figF1c", Title: "Short-flow AFCT before / during / after the failure",
		XLabel: "phase", YLabel: "AFCT (s)"}
	for i, res := range results {
		name := order[i]
		afct.Series = append(afct.Series, stats.Series{
			Name: name, Points: afctByStartTime(res, 500*units.Millisecond)})
		tp := stats.Series{Name: name}
		for _, p := range res.LongGoodputBytes.Rates() {
			tp.Add(p.X, p.Y*8/1e6) // bytes/s -> Mbps
		}
		tput.Series = append(tput.Series, tp)
		for _, ph := range figF1Phases(res) {
			bars.Bars = append(bars.Bars, Bar{
				Label: fmt.Sprintf("%s %s", name, ph.name),
				Value: ph.afct.Seconds(),
			})
		}
	}
	return []Figure{afct, tput, bars}, nil
}

// afctByStartTime buckets finished short flows by start time and
// returns (bucket midpoint s, mean FCT s) points.
func afctByStartTime(res *sim.Result, bucket units.Time) []stats.Point {
	ts := stats.NewTimeSeries(bucket.Seconds())
	res.Each(sim.ShortFlows, func(fs *transport.FlowStats) {
		if fs.Done {
			ts.Add(fs.Start.Seconds(), fs.FCT().Seconds())
		}
	})
	return ts.Means()
}

// phase is one failure-relative window of a figF1 run.
type phase struct {
	name string
	afct units.Time
}

// figF1Phases slices short-flow AFCT by where the flow STARTED
// relative to the failure window. Flows straddling a boundary are
// charged to the phase they started in — the paper's testbed figures
// use the same convention for arrival-windowed metrics.
func figF1Phases(res *sim.Result) []phase {
	windows := []struct {
		name     string
		from, to units.Time
	}{
		{"pre", 0, figF1FailAt},
		{"fail", figF1FailAt, figF1RecoverAt},
		{"post", figF1RecoverAt, figF1Window},
	}
	out := make([]phase, 0, len(windows))
	for _, w := range windows {
		var sum units.Time
		n := 0
		res.Each(sim.ShortFlows, func(fs *transport.FlowStats) {
			if fs.Done && fs.Start >= w.from && fs.Start < w.to {
				sum += fs.FCT()
				n++
			}
		})
		p := phase{name: w.name}
		if n > 0 {
			p.afct = sum / units.Time(n)
		}
		out = append(out, p)
	}
	return out
}

// FigF2 sweeps link-flap frequency: one uplink of leaf 0 flaps with a
// 50% duty cycle at increasing frequency while the testbed workload
// runs, and the panels report short AFCT and long goodput normalized
// to TLB (the Fig. 13–17 presentation). The workload is figF1's
// spread-arrival mix — the standard testbed mix front-loads its shorts
// into the first 500 ms, before the first flap would hit anything.
func FigF2(o Options) ([]Figure, error) {
	xs := trim(o, []float64{4, 2, 1, 0.5}) // flap period, seconds
	return testbedSweep(o, "figF2", "flap period on 1 link (s)", xs,
		func(x float64) testbedEnv { return newTestbedEnv(0, 4) },
		func(x float64, env *testbedEnv, sp *spec.Spec) {
			sp.Workload = figF1Workload(*env, figF1Shorts(o))
			period := units.FromSeconds(x)
			cycles := int(math.Ceil((8 * units.Second).Seconds() / x))
			sp.Faults = faultSpecs(faults.Flap(0, 2, units.Second, period/2, period/2, cycles))
		})
}
