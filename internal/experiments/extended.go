package experiments

import (
	"fmt"

	"tlb/internal/lb"
	"tlb/internal/sim"
	"tlb/internal/topology"
	"tlb/internal/units"
)

// ExtendedBaselines goes beyond the paper's four comparisons: it pits
// TLB against the broader related-work field of §8 — DRILL (per-packet
// power-of-two-choices), a congestion-aware flowlet scheme (CONGA with
// local signals), Hermes-style cautious rerouting, FlowBender-style
// congestion-triggered re-hashing and WCMP — on the web-search sweep.
// The paper discusses these systems but does not measure them; this
// experiment fills that gap on the same substrate.
func ExtendedBaselines(o Options) ([]Figure, error) {
	env := newLargeEnv(websearchSizes(), o.FlowsPerRun)
	schemes := extendedSchemeSet(env)
	return largeSweep(o, env, schemes, "extended", "web search, extended field")
}

// extendedSchemeSet builds the wider comparison set for an environment.
func extendedSchemeSet(env largeEnv) []Scheme {
	return []Scheme{
		{Name: "ecmp", Factory: lb.ECMP()},
		{Name: "drill", Factory: lb.DRILL(2, 1)},
		{Name: "conga", Factory: lb.CongaFlowlet(0)},
		{Name: "hermes", Factory: lb.Hermes(lb.HermesConfig{})},
		{Name: "flowbender", Factory: lb.FlowBender(lb.FlowBenderConfig{ECNThreshold: env.topo.Queue.ECNThreshold})},
		{Name: "wcmp", Factory: lb.WCMP()},
		{Name: "letflow", Factory: lb.LetFlow(150 * units.Microsecond)},
		{Name: "repflow", Factory: lb.ECMP(),
			Replication: &sim.ReplicationConfig{Threshold: 100 * units.KB, Copies: 2}},
		{Name: "tlb", Factory: tlbFactory(env.tlbConfig(0))},
	}
}

// ExtendedAsymmetric runs the wider field on the bandwidth-asymmetric
// testbed (the Fig. 17 setting, where WCMP's static weighting and the
// delay-aware schemes differentiate most).
func ExtendedAsymmetric(o Options) ([]Figure, error) {
	afct := Figure{ID: "extended-asym-afct", Title: "Short AFCT, 2 of 10 links at 5 Mbps",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "extended-asym-tput", Title: "Long goodput, 2 of 10 links at 5 Mbps",
		YLabel: "Mbps per flow"}

	env := newTestbedEnv(100, 4)
	slow := env.topo.FabricLink
	slow.Bandwidth = 5 * units.Mbps
	env.topo.Overrides = append(env.topo.Overrides,
		topology.LinkOverride{Leaf: 0, Spine: 2, Link: slow},
		topology.LinkOverride{Leaf: 0, Spine: 7, Link: slow})

	schemes := []Scheme{
		{Name: "ecmp", Factory: lb.ECMP()},
		{Name: "wcmp", Factory: lb.WCMP()},
		{Name: "drill", Factory: lb.DRILL(2, 1)},
		{Name: "conga", Factory: lb.CongaFlowlet(0)},
		{Name: "hermes", Factory: lb.Hermes(lb.HermesConfig{})},
		{Name: "flowbender", Factory: lb.FlowBender(lb.FlowBenderConfig{ECNThreshold: env.topo.Queue.ECNThreshold})},
		{Name: "letflow", Factory: lb.LetFlow(testbedFlowletGap)},
		{Name: "tlb", Factory: tlbFactory(env.tlbConfig())},
	}
	scs := make([]sim.Scenario, len(schemes))
	for i, s := range schemes {
		scs[i] = sim.Scenario{
			Name:         "extended-asym-" + s.Name,
			Topology:     env.topo,
			Transport:    env.transport,
			Balancer:     s.Factory,
			SchemeName:   s.Name,
			Seed:         o.Seed,
			Flows:        env.flows(o.Seed + 1),
			StopWhenDone: true,
			MaxTime:      300 * units.Second,
		}
	}
	results, err := o.runBatch("extended-asym", scs)
	if err != nil {
		return nil, fmt.Errorf("extended-asym: %w", err)
	}
	for i, s := range schemes {
		res := results[i]
		afct.Bars = append(afct.Bars, Bar{s.Name, res.AFCT(sim.ShortFlows).Seconds()})
		tput.Bars = append(tput.Bars, Bar{s.Name, float64(res.Goodput(sim.LongFlows)) / 1e6})
	}
	return []Figure{afct, tput}, nil
}
