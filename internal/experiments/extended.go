package experiments

import (
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/topology"
	"tlb/internal/units"
)

// ExtendedBaselines goes beyond the paper's four comparisons: it pits
// TLB against the broader related-work field of §8 — DRILL (per-packet
// power-of-two-choices), a congestion-aware flowlet scheme (CONGA with
// local signals), Hermes-style cautious rerouting, FlowBender-style
// congestion-triggered re-hashing and WCMP — on the web-search sweep.
// The paper discusses these systems but does not measure them; this
// experiment fills that gap on the same substrate.
func ExtendedBaselines(o Options) ([]Figure, error) {
	env := newLargeEnv(websearchSizes(), o.FlowsPerRun)
	schemes := extendedSchemeSet(env)
	return largeSweep(o, env, schemes, "extended", "web search, extended field")
}

// extendedSchemeSet builds the wider comparison set for an environment.
// Every entry is registry data; the registry's defaults are the same
// explicit values this set used to construct (DRILL d=2 m=1, CONGA's
// own flowlet gap, Hermes and FlowBender defaults with the
// environment's ECN threshold).
func extendedSchemeSet(env largeEnv) []Scheme {
	return []Scheme{
		{Name: "ecmp"},
		{Name: "drill"},
		{Name: "conga"},
		{Name: "hermes"},
		{Name: "flowbender"},
		{Name: "wcmp"},
		{Name: "letflow", Params: spec.Params{"gap": pDur(150 * units.Microsecond)}},
		{Name: "ecmp", Label: "repflow",
			Replication: &spec.Replication{Threshold: spec.Sz(100 * units.KB), Copies: 2}},
		tlbScheme(env, 0),
	}
}

// ExtendedAsymmetric runs the wider field on the bandwidth-asymmetric
// testbed (the Fig. 17 setting, where WCMP's static weighting and the
// delay-aware schemes differentiate most).
func ExtendedAsymmetric(o Options) ([]Figure, error) {
	afct := Figure{ID: "extended-asym-afct", Title: "Short AFCT, 2 of 10 links at 5 Mbps",
		YLabel: "AFCT (s)"}
	tput := Figure{ID: "extended-asym-tput", Title: "Long goodput, 2 of 10 links at 5 Mbps",
		YLabel: "Mbps per flow"}

	env := newTestbedEnv(100, 4)
	slow := env.topo.FabricLink
	slow.Bandwidth = 5 * units.Mbps
	env.topo.Overrides = append(env.topo.Overrides,
		topology.LinkOverride{Leaf: 0, Spine: 2, Link: slow},
		topology.LinkOverride{Leaf: 0, Spine: 7, Link: slow})

	schemes := []Scheme{
		{Name: "ecmp"},
		{Name: "wcmp"},
		{Name: "drill"},
		{Name: "conga"},
		{Name: "hermes"},
		{Name: "flowbender"},
		{Name: "letflow", Params: spec.Params{"gap": pDur(testbedFlowletGap)}},
		{Name: "tlb", Params: tlbParams(env.tlbConfig(), spec.LeafSpineEnv(env.topo))},
	}
	specs := make([]spec.Spec, len(schemes))
	for i, s := range schemes {
		specs[i] = env.spec(s, "extended-asym-"+s.label(), o.Seed, 300*units.Second)
	}
	results, err := o.runSpecs("extended-asym", specs)
	if err != nil {
		return nil, err
	}
	for i, s := range schemes {
		res := results[i]
		afct.Bars = append(afct.Bars, Bar{s.label(), res.AFCT(sim.ShortFlows).Seconds()})
		tput.Bars = append(tput.Bars, Bar{s.label(), float64(res.Goodput(sim.LongFlows)) / 1e6})
	}
	return []Figure{afct, tput}, nil
}
