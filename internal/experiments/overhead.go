package experiments

import (
	"fmt"
	"runtime"
	"time"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/spec"
	"tlb/internal/units"
)

// Fig15 reproduces the §7 overhead study in this repository's terms.
// The paper measures switch CPU and memory utilization on BMv2; here
// the equivalent question is "what does each scheme's per-packet
// forwarding decision cost". fig15a reports nanoseconds per decision,
// fig15b bytes of per-switch scheme state after a realistic flow mix —
// TLB's overhead must be a small constant over ECMP/RPS/Presto, which
// is the figure's claim.
//
// The repository benchmarks (BenchmarkFig15*) measure the same thing
// under the standard testing.B machinery; this function exists so
// cmd/experiments can print the figure without the bench harness.
func Fig15(o Options) ([]Figure, error) {
	sim := eventsim.New()
	rng := newRNG(o.Seed)
	ports := make([]*netem.Port, 10)
	for i := range ports {
		ports[i] = netem.NewPort(sim,
			netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
			netem.QueueConfig{Capacity: 256},
			func(*netem.Packet) {}, "up")
	}

	env := newTestbedEnv(100, 4)
	schemes := env.schemes()
	lbEnv := spec.LeafSpineEnv(env.topo)

	cpu := Figure{ID: "fig15a", Title: "Per-packet decision cost", YLabel: "ns/decision"}
	mem := Figure{ID: "fig15b", Title: "Per-switch scheme state", YLabel: "bytes after 1000-flow mix"}

	const decisions = 200000
	const flows = 1000
	for _, s := range schemes {
		factory, err := lb.Build(s.Name, s.Params, "scheme.params", lbEnv)
		if err != nil {
			return nil, fmt.Errorf("fig15: %s: %w", s.label(), err)
		}
		bal := factory(sim, rng.Split(), ports)
		// The warm mix is what a leaf switch actually balances: every
		// flow's data direction plus the reverse-direction pure-ACK
		// stream of every fourth flow. The ACKs matter for fig15b: they
		// never carry FIN, so a scheme that gives them flow-table
		// entries (the Presto/LetFlow leak this repo fixed) shows the
		// leaked state here.
		pkts := make([]*netem.Packet, 0, flows+flows/4)
		for i := 0; i < flows; i++ {
			flow := netem.FlowID{Src: i % 97, Dst: 100 + i%89, Port: i}
			pkts = append(pkts, &netem.Packet{
				Flow: flow, Kind: netem.Data, Payload: 1460, Wire: 1500,
			})
			if i%4 == 0 {
				pkts = append(pkts, &netem.Packet{
					Flow: flow.Reversed(), Kind: netem.Ack, Wire: 40,
				})
			}
		}
		// Memory: live heap growth from warming the scheme's state
		// with the flow mix (flow tables, flowlet maps, ...).
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for _, pkt := range pkts {
			bal.Pick(pkt, ports)
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		stateBytes := float64(after.HeapAlloc) - float64(before.HeapAlloc)
		if stateBytes < 0 {
			stateBytes = 0
		}

		// CPU: steady-state decision cost over the warmed state.
		start := time.Now()
		for i := 0; i < decisions; i++ {
			bal.Pick(pkts[i%len(pkts)], ports)
		}
		elapsed := time.Since(start)

		cpu.Bars = append(cpu.Bars, Bar{s.label(), float64(elapsed.Nanoseconds()) / decisions})
		mem.Bars = append(mem.Bars, Bar{s.label(), stateBytes})
		o.logf("fig15: %s %.1f ns/decision", s.label(), float64(elapsed.Nanoseconds())/decisions)
		if tl, ok := bal.(*core.TLB); ok {
			// TLB's decision breakdown: control routing is counted apart
			// from short/long data decisions (Stats.ControlPackets).
			st := tl.Stats()
			o.logf("fig15: tlb decisions short=%d long=%d control=%d",
				st.ShortPackets, st.LongPackets, st.ControlPackets)
		}
	}
	return []Figure{cpu, mem}, nil
}
