package experiments

import (
	"strings"
	"testing"

	"tlb/internal/units"
)

// TestFigF1ParallelSerialIdentical extends the sweep runner's
// determinism contract to runs that carry a fault schedule: injected
// events ride the same event queue as everything else, so worker count
// must stay unobservable.
func TestFigF1ParallelSerialIdentical(t *testing.T) {
	run := func(workers int) string {
		figs, err := FigF1(Options{Seed: 7, FlowsPerRun: 80, SweepPoints: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return figureCSV(figs)
	}
	serial := run(1)
	if parallel := run(6); serial != parallel {
		t.Fatalf("faulted run diverges across worker counts:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if len(serial) == 0 {
		t.Fatal("empty figures")
	}
}

// TestFigF1TLBDegradesLessThanECMP is the experiment's headline claim:
// during the failure window TLB notices the dead uplinks (its own
// dead-port reroute plus the liveness-aware delay scan) while ECMP
// keeps hashing a fifth of its flows into a black hole until their
// RTOs fire. TLB's failure-window short AFCT must therefore inflate
// strictly less than ECMP's, relative to each scheme's own pre-failure
// baseline.
func TestFigF1TLBDegradesLessThanECMP(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figF1 batch")
	}
	figs, err := FigF1(Options{Seed: 42, FlowsPerRun: 240, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	bars := figs[2] // figF1c: "<scheme> pre|fail|post" bars
	window := map[string]map[string]float64{}
	for _, b := range bars.Bars {
		scheme, phase, ok := strings.Cut(b.Label, " ")
		if !ok {
			t.Fatalf("unparseable bar label %q", b.Label)
		}
		if window[scheme] == nil {
			window[scheme] = map[string]float64{}
		}
		window[scheme][phase] = b.Value
	}
	inflation := func(scheme string) float64 {
		w := window[scheme]
		if w == nil || w["pre"] <= 0 || w["fail"] <= 0 {
			t.Fatalf("missing pre/fail AFCT for %s: %v", scheme, w)
		}
		return w["fail"] / w["pre"]
	}
	ecmp, tlb := inflation("ecmp"), inflation("tlb")
	if tlb >= ecmp {
		t.Fatalf("TLB failure-window AFCT inflation %.2fx not below ECMP's %.2fx", tlb, ecmp)
	}
}

// TestFigF2SmallSweepRuns exercises the flap-schedule path end to end
// at reduced scale: every scheme must survive repeated down/up cycles
// and still produce non-degenerate normalized panels.
func TestFigF2SmallSweepRuns(t *testing.T) {
	figs, err := FigF2(Options{Seed: 3, FlowsPerRun: 60, SweepPoints: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d panels, want 2", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) == 0 {
			t.Fatalf("panel %s has no series", f.ID)
		}
		for _, s := range f.Series {
			for _, p := range s.Points {
				if p.Y <= 0 {
					t.Fatalf("panel %s series %s has non-positive point %+v", f.ID, s.Name, p)
				}
			}
		}
	}
}

// TestFigF1PhasesPartitionWindow pins the phase boundaries so a future
// edit can't silently overlap or gap the pre/fail/post windows.
func TestFigF1PhasesPartitionWindow(t *testing.T) {
	if figF1FailAt <= 0 || figF1RecoverAt <= figF1FailAt || figF1Window <= figF1RecoverAt {
		t.Fatalf("phase boundaries out of order: 0 < %v < %v < %v expected",
			figF1FailAt, figF1RecoverAt, figF1Window)
	}
	if figF1RecoverAt-figF1FailAt != 3*units.Second {
		t.Fatalf("failure window %v, want 3 s", figF1RecoverAt-figF1FailAt)
	}
}
