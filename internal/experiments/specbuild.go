package experiments

// Translators from the simulator's in-memory configuration structs to
// the declarative spec layer. Every figure runner builds spec.Spec
// values through these helpers and executes them via Options.runSpecs,
// so each scenario an experiment runs is serializable (-dump-specs)
// and reproducible from JSON alone (tlbsim -spec).

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tlb/internal/core"
	"tlb/internal/faults"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// pDur renders a duration as a scheme-parameter value.
func pDur(t units.Time) string { return string(spec.Dur(t)) }

// linkSpec renders one link's parameters.
func linkSpec(l netem.LinkConfig) spec.Link {
	return spec.Link{Bandwidth: spec.Bw(l.Bandwidth), Delay: spec.Dur(l.Delay)}
}

// topoSpec renders a leaf-spine topology.
func topoSpec(t topology.Config) spec.Topology {
	ts := spec.Topology{
		Leaves:       t.Leaves,
		Spines:       t.Spines,
		HostsPerLeaf: t.HostsPerLeaf,
		HostLink:     linkSpec(t.HostLink),
		FabricLink:   linkSpec(t.FabricLink),
		Queue:        spec.Queue{Capacity: t.Queue.Capacity, ECNThreshold: t.Queue.ECNThreshold},
	}
	for _, o := range t.Overrides {
		ts.Overrides = append(ts.Overrides, spec.Override{
			Leaf: o.Leaf, Spine: o.Spine, Link: linkSpec(o.Link),
		})
	}
	return ts
}

// fatTreeSpec renders a fat-tree topology.
func fatTreeSpec(t topology.FatTreeConfig) spec.Topology {
	return spec.Topology{
		Kind:       "fattree",
		K:          t.K,
		HostLink:   linkSpec(t.HostLink),
		FabricLink: linkSpec(t.FabricLink),
		Queue:      spec.Queue{Capacity: t.Queue.Capacity, ECNThreshold: t.Queue.ECNThreshold},
	}
}

// transportSpec diffs a transport configuration against the defaults
// and renders only the overridden fields; nil means "all defaults".
func transportSpec(cfg transport.Config) *spec.Transport {
	def := transport.DefaultConfig()
	var t spec.Transport
	set := false
	if cfg.MSS != def.MSS {
		v := spec.Sz(cfg.MSS)
		t.MSS, set = &v, true
	}
	if cfg.HeaderBytes != def.HeaderBytes {
		v := spec.Sz(cfg.HeaderBytes)
		t.HeaderBytes, set = &v, true
	}
	if cfg.InitCwnd != def.InitCwnd {
		v := cfg.InitCwnd
		t.InitCwnd, set = &v, true
	}
	if cfg.RcvWindow != def.RcvWindow {
		v := spec.Sz(cfg.RcvWindow)
		t.RcvWindow, set = &v, true
	}
	if cfg.MinRTO != def.MinRTO {
		v := spec.Dur(cfg.MinRTO)
		t.MinRTO, set = &v, true
	}
	if cfg.MaxRTO != def.MaxRTO {
		v := spec.Dur(cfg.MaxRTO)
		t.MaxRTO, set = &v, true
	}
	if cfg.InitialRTO != def.InitialRTO {
		v := spec.Dur(cfg.InitialRTO)
		t.InitialRTO, set = &v, true
	}
	if cfg.DupAckThreshold != def.DupAckThreshold {
		v := cfg.DupAckThreshold
		t.DupAckThreshold, set = &v, true
	}
	if cfg.DCTCP != def.DCTCP {
		v := cfg.DCTCP
		t.DCTCP, set = &v, true
	}
	if cfg.DCTCPGain != def.DCTCPGain {
		v := cfg.DCTCPGain
		t.DCTCPGain, set = &v, true
	}
	if cfg.Handshake != def.Handshake {
		v := cfg.Handshake
		t.Handshake, set = &v, true
	}
	if cfg.DelayedAck != def.DelayedAck {
		v := cfg.DelayedAck
		t.DelayedAck, set = &v, true
	}
	if cfg.DelayedAckTimeout != def.DelayedAckTimeout {
		v := spec.Dur(cfg.DelayedAckTimeout)
		t.DelayedAckTimeout, set = &v, true
	}
	if cfg.SACK != def.SACK {
		v := cfg.SACK
		t.SACK, set = &v, true
	}
	if !set {
		return nil
	}
	return &t
}

// sizeSpec renders the closed-form distributions the environments use.
// The CDF-backed workloads (web search, data mining) are spec values
// already and never pass through here.
func sizeSpec(d workload.SizeDist) *spec.SizeDist {
	switch v := d.(type) {
	case workload.Uniform:
		return &spec.SizeDist{Kind: "uniform", Min: spec.Sz(v.MinSize), Max: spec.Sz(v.MaxSize)}
	case workload.Fixed:
		return &spec.SizeDist{Kind: "fixed", Size: spec.Sz(v.Size)}
	case workload.Truncated:
		s := sizeSpec(v.Dist)
		s.Truncate = spec.Sz(v.Max)
		return s
	}
	panic(fmt.Sprintf("sizeSpec: no spec rendering for %T", d))
}

// szOpt renders a size that may be unset.
func szOpt(b units.Bytes) spec.Size {
	if b <= 0 {
		return ""
	}
	return spec.Sz(b)
}

// deadlineSpec renders a deadline distribution; nil means "none".
func deadlineSpec(d workload.DeadlineDist) *spec.Deadlines {
	if d.Max <= 0 {
		return nil
	}
	return &spec.Deadlines{Min: spec.Dur(d.Min), Max: spec.Dur(d.Max), OnlyBelow: szOpt(d.OnlyBelow)}
}

// faultSpecs renders a fault schedule.
func faultSpecs(sched faults.Schedule) []spec.Fault {
	out := make([]spec.Fault, 0, len(sched))
	for _, e := range sched {
		f := spec.Fault{
			At:    spec.Dur(e.At),
			Leaf:  e.Leaf,
			Spine: e.Spine,
			Op:    spec.FaultOpName(e.Op),
			Dir:   spec.FaultDirName(e.Dir),
		}
		if e.Bandwidth != 0 {
			f.Bandwidth = spec.Bw(e.Bandwidth)
		}
		if e.Delay != 0 {
			f.Delay = spec.Dur(e.Delay)
		}
		out = append(out, f)
	}
	return out
}

// tlbParams diffs a TLB configuration against the registry's
// environment-derived base (core.EnvConfig) and renders the overridden
// fields as scheme parameters; nil means the base is used as-is. This
// keeps the experiments building core.Config values natively (the
// ablations mutate them freely) while every run's parameters remain
// serializable.
func tlbParams(cfg core.Config, env lb.Env) spec.Params {
	base := core.EnvConfig(env)
	p := spec.Params{}
	if cfg.ShortThreshold != base.ShortThreshold {
		p["shortThreshold"] = string(spec.Sz(cfg.ShortThreshold))
	}
	if cfg.Interval != base.Interval {
		p["interval"] = string(spec.Dur(cfg.Interval))
	}
	if cfg.Deadline != base.Deadline {
		p["deadline"] = string(spec.Dur(cfg.Deadline))
	}
	if cfg.MeanShortSize != base.MeanShortSize {
		p["meanShortSize"] = string(spec.Sz(cfg.MeanShortSize))
	}
	if cfg.EstimateShortSize != base.EstimateShortSize {
		p["estimateShortSize"] = cfg.EstimateShortSize
	}
	if cfg.LongWindow != base.LongWindow {
		p["longWindow"] = string(spec.Sz(cfg.LongWindow))
	}
	if cfg.RTT != base.RTT {
		p["rtt"] = string(spec.Dur(cfg.RTT))
	}
	if cfg.LinkBandwidth != base.LinkBandwidth {
		p["linkBandwidth"] = string(spec.Bw(cfg.LinkBandwidth))
	}
	if cfg.MSS != base.MSS {
		p["mss"] = string(spec.Sz(cfg.MSS))
	}
	if cfg.MaxQTh != base.MaxQTh {
		p["maxQTh"] = cfg.MaxQTh
	}
	if cfg.FixedQTh != base.FixedQTh {
		p["fixedQTh"] = cfg.FixedQTh
	}
	if cfg.ShortFlowPolicy != base.ShortFlowPolicy {
		p["shortPolicy"] = core.ShortPolicyName(cfg.ShortFlowPolicy)
	}
	if cfg.ShortHysteresis != base.ShortHysteresis {
		p["shortHysteresis"] = cfg.ShortHysteresis
	}
	if cfg.UncappedLongDemand != base.UncappedLongDemand {
		p["uncappedLongDemand"] = cfg.UncappedLongDemand
	}
	if cfg.RerouteLeastLong != base.RerouteLeastLong {
		p["rerouteLeastLong"] = cfg.RerouteLeastLong
	}
	if cfg.DisableSafeSwitch != base.DisableSafeSwitch {
		p["disableSafeSwitch"] = cfg.DisableSafeSwitch
	}
	if cfg.EscapeFactor != base.EscapeFactor {
		p["escapeFactor"] = cfg.EscapeFactor
	}
	if len(p) == 0 {
		return nil
	}
	return p
}

// runSpecs compiles one experiment's spec batch and submits it to the
// shared concurrent runner. Options.DumpSpecs writes each spec as JSON
// before running; the unexported specObserver hook lets tests see the
// exact specs a figure builds.
func (o Options) runSpecs(prefix string, specs []spec.Spec) ([]*sim.Result, error) {
	scs := make([]sim.Scenario, len(specs))
	for i := range specs {
		if o.specObserver != nil {
			o.specObserver(prefix, &specs[i])
		}
		sc, err := specs[i].Compile()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", prefix, err)
		}
		if o.Shards > 0 {
			// Shard at run time only: the dumped spec JSON stays
			// shard-free, so an archived spec replays anywhere.
			sc.Shards = o.Shards
		}
		scs[i] = sc
	}
	if o.DumpSpecs != "" {
		if err := dumpSpecs(o.DumpSpecs, prefix, specs); err != nil {
			return nil, fmt.Errorf("%s: dump specs: %w", prefix, err)
		}
	}
	return o.runBatch(prefix, scs)
}

// dumpSpecs writes one batch's specs as <prefix>-<index>-<name>.json.
func dumpSpecs(dir, prefix string, specs []spec.Spec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := range specs {
		name := fmt.Sprintf("%s-%03d-%s.json", sanitizeFileName(prefix), i, sanitizeFileName(specs[i].Name))
		if err := specs[i].Save(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeFileName maps scenario names (which may contain "/" and
// other separators) onto portable file names.
func sanitizeFileName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}
