package experiments

import (
	"strings"
	"testing"

	"tlb/internal/stats"
	"tlb/internal/units"
)

func quickOpts() Options {
	return Options{Seed: 42, FlowsPerRun: 120, SweepPoints: 2}
}

func TestRegistryCoversEveryPaperFigure(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
	}
	got := map[string]bool{}
	for _, e := range Registry() {
		got[e.Name] = true
		if e.Run == nil {
			t.Fatalf("entry %s has no runner", e.Name)
		}
		if e.Description == "" {
			t.Fatalf("entry %s has no description", e.Name)
		}
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("registry missing %s", w)
		}
	}
}

func TestLookup(t *testing.T) {
	all, err := Lookup("all")
	if err != nil || len(all) != len(Registry()) {
		t.Fatalf("all: %v (%d entries)", err, len(all))
	}
	two, err := Lookup("fig10, fig13")
	if err != nil || len(two) != 2 || two[0].Name != "fig10" || two[1].Name != "fig13" {
		t.Fatalf("pair lookup: %v %v", err, two)
	}
	dedup, err := Lookup("fig10,fig10")
	if err != nil || len(dedup) != 1 {
		t.Fatalf("dedup lookup: %v %v", err, dedup)
	}
	abl, err := Lookup("ablations")
	if err != nil || len(abl) == 0 {
		t.Fatalf("ablations lookup: %v", err)
	}
	for _, e := range abl {
		if !strings.HasPrefix(e.Name, "ablation-") {
			t.Fatalf("non-ablation %s in ablations set", e.Name)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestTrim(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	o := Options{SweepPoints: 3}
	got := trim(o, xs)
	if len(got) != 3 || got[0] != 1 || got[2] != 8 {
		t.Fatalf("trim = %v", got)
	}
	if got := trim(Options{}, xs); len(got) != len(xs) {
		t.Fatal("no-op trim changed length")
	}
	if got := trim(Options{SweepPoints: 1}, xs); len(got) != 1 || got[0] != 8 {
		t.Fatalf("1-point trim = %v", got)
	}
	if got := trim(Options{SweepPoints: 20}, xs); len(got) != len(xs) {
		t.Fatal("over-trim changed length")
	}
}

func TestFig3And4ProducesAllPanels(t *testing.T) {
	figs, err := Fig3And4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]Figure{}
	for _, f := range figs {
		ids[f.ID] = f
	}
	for _, id := range []string{"fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig4c"} {
		if _, ok := ids[id]; !ok {
			t.Fatalf("missing panel %s", id)
		}
	}
	// Each of 3 granularities contributes one curve or bar per panel.
	if len(ids["fig3a"].Series) != 3 || len(ids["fig3b"].Bars) != 3 {
		t.Fatalf("panel population wrong: %d series, %d bars",
			len(ids["fig3a"].Series), len(ids["fig3b"].Bars))
	}
	// The paper's directional claims at this scale:
	// packet-level has the largest dup-ACK ratio (fig3b).
	bars := map[string]float64{}
	for _, b := range ids["fig3b"].Bars {
		bars[b.Label] = b.Value
	}
	if !(bars["packet"] > bars["flow"]) {
		t.Fatalf("packet-level dup-ACK ratio %v not above flow-level %v",
			bars["packet"], bars["flow"])
	}
}

func TestFig13NormalizedToTLB(t *testing.T) {
	o := quickOpts()
	figs, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range figs {
		if len(f.Series) != 5 {
			t.Fatalf("%s has %d series, want 5 schemes", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if s.Name != "tlb" {
				continue
			}
			for _, p := range s.Points {
				if p.Y != 1 {
					t.Fatalf("TLB's normalized value is %v, want exactly 1", p.Y)
				}
			}
		}
	}
}

func TestFig15ReportsAllSchemes(t *testing.T) {
	figs, err := Fig15(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("%d figures", len(figs))
	}
	for _, f := range figs {
		if len(f.Bars) != 5 {
			t.Fatalf("%s has %d bars, want 5", f.ID, len(f.Bars))
		}
		for _, b := range f.Bars {
			if b.Value < 0 {
				t.Fatalf("%s: negative metric for %s", f.ID, b.Label)
			}
		}
	}
}

func TestFigureFormat(t *testing.T) {
	f := Figure{ID: "x", Title: "T", XLabel: "a", YLabel: "b"}
	f.Bars = []Bar{{"one", 1.5}}
	out := f.Format()
	for _, want := range []string{"== x: T ==", "one", "1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q: %s", want, out)
		}
	}
}

func TestLargeEnvLoadCalibration(t *testing.T) {
	env := newLargeEnv(websearchSizes(), 500)
	flows, err := env.flows(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Offered bytes over the arrival span should be ~0.5x the fabric
	// capacity.
	var bytes float64
	for _, f := range flows {
		bytes += float64(f.Size)
	}
	span := (flows[len(flows)-1].Start - flows[0].Start).Seconds()
	fabric := float64(env.topo.Leaves) * float64(env.topo.Spines) * env.topo.FabricLink.Bandwidth.BytesPerSecond()
	load := bytes / span / fabric
	if load < 0.35 || load > 0.65 {
		t.Fatalf("realized load %.2f, want ~0.5", load)
	}
	for _, f := range flows {
		if env.topo.Hosts() <= f.Src || env.topo.Hosts() <= f.Dst {
			t.Fatal("flow endpoints out of range")
		}
		if f.Src/env.topo.HostsPerLeaf == f.Dst/env.topo.HostsPerLeaf {
			t.Fatal("intra-leaf flow in cross-leaf workload")
		}
	}
}

func TestBasicEnvTLBConfigMatchesTopology(t *testing.T) {
	env := newBasicEnv(256, 100, 3)
	cfg := env.tlbConfig()
	if cfg.LinkBandwidth != units.Gbps {
		t.Fatalf("bandwidth %v", cfg.LinkBandwidth)
	}
	if cfg.RTT != env.topo.BaseRTT() {
		t.Fatalf("RTT %v vs %v", cfg.RTT, env.topo.BaseRTT())
	}
	if cfg.MaxQTh != 256 {
		t.Fatalf("MaxQTh %d", cfg.MaxQTh)
	}
}

// TestExperimentDeterminism: the same seed must reproduce a figure
// exactly — the reproducibility contract of the whole harness.
func TestExperimentDeterminism(t *testing.T) {
	run := func() string {
		figs, err := Fig13(Options{Seed: 7, FlowsPerRun: 100, SweepPoints: 2})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, f := range figs {
			out += f.CSV()
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different figures:\n%s\nvs\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty figures")
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{ID: "x", Title: "T"}
	f.Bars = []Bar{{"a", 1}}
	f.Series = []stats.Series{{Name: "s", Points: []stats.Point{{X: 1, Y: 2}}}}
	csv := f.CSV()
	for _, want := range []string{"# x,T", "a,1", "s,1,2"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("CSV missing %q:\n%s", want, csv)
		}
	}
}

// TestFatTreeComparisonRuns exercises the 3-tier experiment end to end
// at tiny scale.
func TestFatTreeComparisonRuns(t *testing.T) {
	figs, err := FatTreeComparison(Options{Seed: 3, FlowsPerRun: 80})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("%d figures", len(figs))
	}
	for _, f := range figs {
		if len(f.Bars) != 5 {
			t.Fatalf("%s: %d bars", f.ID, len(f.Bars))
		}
		for _, b := range f.Bars {
			if b.Value <= 0 {
				t.Fatalf("%s: non-positive %s", f.ID, b.Label)
			}
		}
	}
}
