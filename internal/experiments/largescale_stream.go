package experiments

// figLS is the streaming-scale experiment: one k=16 fat-tree scenario
// with ~1M flows run under outputs.streamStats, where the workload is
// generated lazily and every completed flow folds into fixed-size
// per-class aggregates — O(1) memory per flow. Alongside the usual
// AFCT/p99/deadline metrics it reports the two scale numbers: flows
// per wall-clock second and the process's peak RSS.

import (
	"fmt"
	"time"

	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/topology"
	"tlb/internal/units"
)

// figLSFlowFactor scales Options.FlowsPerRun (800 by default) to the
// streamed run's flow count: the default hits 1M flows, the Quick()
// benchmark scale stays far smaller, and `-flows 8` is a ten-thousand
// flow smoke run.
const figLSFlowFactor = 1250

// figLSTopo is the k=16 fat-tree: 1024 hosts in 16 pods, full
// bisection at 1 Gbps.
func figLSTopo() topology.FatTreeConfig {
	return topology.FatTreeConfig{
		K:          16,
		HostLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink: netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:      netem.QueueConfig{Capacity: 256, ECNThreshold: 65},
	}
}

// figLSSpecs builds the streamed batch (currently one ECMP run; the
// memory behavior under test is the stats layer's, not the balancer's).
// Mice-only sizes keep the event count per flow small enough that a
// million flows stay in minutes of wall clock; arrivals average one
// flow per 600 ns, ~0.23 load against the hosts' aggregate 1 Tbps —
// low enough that the run is stationary (FCTs, and with them the
// peak number of concurrently open flows, do not grow with run
// length), which is what makes peak RSS independent of the total
// flow count.
func figLSSpecs(o Options) ([]string, []spec.Spec) {
	ft := figLSTopo()
	sp := spec.Spec{
		Version:  spec.Version,
		Name:     fmt.Sprintf("largescale-ecmp-%dk", o.FlowsPerRun*figLSFlowFactor/1000),
		Seed:     o.Seed,
		Scheme:   spec.Scheme{Name: "ecmp"},
		Topology: fatTreeSpec(ft),
		Workload: spec.Workload{
			Kind: "interpod",
			InterPod: &spec.InterPod{
				Flows:             o.FlowsPerRun * figLSFlowFactor,
				Sizes:             spec.SizeDist{Kind: "uniform", Min: spec.Sz(2 * units.KB), Max: spec.Sz(32 * units.KB)},
				MaxGap:            spec.Dur(1200 * units.Nanosecond),
				DeadlineBase:      spec.Dur(5 * units.Millisecond),
				DeadlineJitter:    spec.Dur(20 * units.Millisecond),
				DeadlineOnlyBelow: spec.Sz(100 * units.KB),
			},
		},
		Outputs: spec.Outputs{StreamStats: true},
		Run: spec.Run{
			MaxTime:      spec.Dur(600 * units.Second),
			StopWhenDone: true,
		},
	}
	return []string{"ecmp"}, []spec.Spec{sp}
}

// FigLS runs the streamed million-flow scenario and reports scale
// (flows/sec wall clock, peak RSS) next to the streamed statistics.
// `-flows` scales the count: 800 (the default) is 1M flows, 8 is a
// 10k smoke run.
func FigLS(o Options) ([]Figure, error) {
	labels, specs := figLSSpecs(o)
	start := time.Now()
	results, err := o.runSpecs("figLS", specs)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	fig := Figure{
		ID:     "figLS",
		Title:  "streaming scale: k=16 fat-tree under streamStats (O(1) memory per flow)",
		YLabel: "mixed units, see bar labels",
	}
	for i, res := range results {
		if res.Stream == nil {
			return nil, fmt.Errorf("figLS: %s ran without streaming aggregates", labels[i])
		}
		flows := res.Count(sim.AllFlows)
		fig.Bars = append(fig.Bars,
			Bar{labels[i] + " flows", float64(flows)},
			Bar{labels[i] + " completed", float64(res.CompletedCount(sim.AllFlows))},
			Bar{labels[i] + " flows/sec (wall)", float64(flows) / elapsed.Seconds()},
			Bar{labels[i] + " peak RSS (MB)", peakRSSMB()},
			Bar{labels[i] + " AFCT (s)", res.AFCT(sim.ShortFlows).Seconds()},
			Bar{labels[i] + " p99 FCT (s)", res.FCTPercentile(sim.ShortFlows, 99).Seconds()},
			Bar{labels[i] + " deadline miss", res.DeadlineMissRatio(sim.ShortFlows)},
			Bar{labels[i] + " sim time (s)", res.EndTime.Seconds()},
		)
	}
	return []Figure{fig}, nil
}
