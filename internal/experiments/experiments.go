// Package experiments regenerates every figure of the paper's
// evaluation (§2.2 motivation, §4.2 model verification, §6 NS2
// simulations, §7 testbed) on this repository's simulator. Each FigNN
// function returns the plotted series/bars; cmd/experiments prints
// them, and the repository benchmarks run reduced-scale versions.
//
// Every figure builds its scenarios as declarative spec.Spec values
// and runs them through Options.runSpecs, so each run an experiment
// performs is serializable JSON (Options.DumpSpecs) that tlbsim -spec
// reproduces byte for byte.
//
// Scale note: the returned shapes (who wins, by what factor, where
// curves cross) are the reproduction target; absolute numbers differ
// from the paper because the substrate is this repo's simulator, not
// the authors' NS2 scripts. Options.Scale trades fidelity for runtime;
// Quick() is what the benchmarks use.
package experiments

import (
	"fmt"
	"io"
	"time"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/stats"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// Options control experiment scale and reporting.
type Options struct {
	// Seed drives all randomness; the same seed reproduces every
	// number exactly.
	Seed uint64
	// FlowsPerRun is the number of flows in each large-scale run
	// (Fig. 10-12). More flows = tighter estimates, longer runs.
	FlowsPerRun int
	// SweepPoints caps the number of x-axis points per sweep; 0 keeps
	// each figure's default grid.
	SweepPoints int
	// Workers caps how many scenarios the shared sweep runner executes
	// concurrently; 0 means runtime.GOMAXPROCS(0). Any worker count
	// produces byte-identical figures: scenarios own their seeds, and
	// results are reduced in input order.
	Workers int
	// Shards, when > 1, spatially shards every scenario across that
	// many goroutines (clamped per topology). Composes with Workers and
	// keeps every figure byte-identical: the sharded runner reproduces
	// the single-engine event order exactly. Applied at run time, after
	// compilation, so dumped specs are shard-free and portable.
	Shards int
	// DumpSpecs, when set, writes every scenario an experiment runs as
	// a spec JSON file into this directory before running it.
	DumpSpecs string
	// Log, when non-nil, receives progress lines.
	Log io.Writer

	// specObserver, when non-nil, sees every spec a figure builds just
	// before compilation (test hook for round-trip checks).
	specObserver func(prefix string, sp *spec.Spec)
}

// Default returns the standard reduced-scale options used by
// cmd/experiments (full-figure shapes in minutes on one core).
func Default() Options {
	return Options{Seed: 42, FlowsPerRun: 800}
}

// Quick returns the miniature options used by the benchmarks.
func Quick() Options {
	return Options{Seed: 42, FlowsPerRun: 150, SweepPoints: 3}
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// runBatch submits one experiment's scenario batch to the shared
// concurrent runner (sim.RunSweep) and returns the results in input
// order. Progress lines ("prefix: [k/n] name (elapsed)") go to o.Log
// as scenarios finish, so long sweeps stay visible.
//
// The figure runners consume the session observer stream directly
// (terminal events only — figure sweeps want k/n lines, not periodic
// snapshots, so snapshots stay disabled and the event-batch slicing is
// provably output-neutral; see DESIGN.md §16).
func (o Options) runBatch(prefix string, scs []sim.Scenario) ([]*sim.Result, error) {
	return sim.RunSweep(scs, sim.SweepOptions{
		Workers:       o.Workers,
		SnapshotEvery: sim.NoSnapshots,
		Observer: sim.ObserverFunc(func(ev sim.ProgressEvent) {
			if ev.Kind != sim.ProgressDone {
				return
			}
			if ev.Err != nil {
				o.logf("%s: [%d/%d] %s FAILED after %v: %v",
					prefix, ev.Completed, ev.Total, ev.Scenario, ev.Elapsed.Round(time.Millisecond), ev.Err)
				return
			}
			o.logf("%s: [%d/%d] %s (%v)",
				prefix, ev.Completed, ev.Total, ev.Scenario, ev.Elapsed.Round(time.Millisecond))
		}),
	})
}

// trim reduces a sweep grid to at most o.SweepPoints entries, keeping
// the endpoints.
func trim[T any](o Options, xs []T) []T {
	if o.SweepPoints <= 0 || len(xs) <= o.SweepPoints {
		return xs
	}
	if o.SweepPoints == 1 {
		return xs[len(xs)-1:]
	}
	out := make([]T, 0, o.SweepPoints)
	for i := 0; i < o.SweepPoints; i++ {
		idx := i * (len(xs) - 1) / (o.SweepPoints - 1)
		out = append(out, xs[idx])
	}
	return out
}

// Bar is one categorical result (one bar of a bar chart).
type Bar struct {
	Label string
	Value float64
}

// Figure is one reproduced panel: either curves (Series) or bars.
type Figure struct {
	ID     string // e.g. "fig10a"
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
	Bars   []Bar
}

// CSV renders the figure as comma-separated rows: bars as
// "label,value", curves as "series,x,y" — convenient for piping into
// plotting tools.
func (f *Figure) CSV() string {
	out := fmt.Sprintf("# %s,%s\n", f.ID, f.Title)
	for _, b := range f.Bars {
		out += fmt.Sprintf("%s,%g\n", b.Label, b.Value)
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			out += fmt.Sprintf("%s,%g,%g\n", s.Name, p.X, p.Y)
		}
	}
	return out
}

// Format renders the figure for terminal output.
func (f *Figure) Format() string {
	out := fmt.Sprintf("== %s: %s ==\n", f.ID, f.Title)
	if f.XLabel != "" || f.YLabel != "" {
		out += fmt.Sprintf("   x: %s | y: %s\n", f.XLabel, f.YLabel)
	}
	for _, b := range f.Bars {
		out += fmt.Sprintf("%-24s %.6g\n", b.Label, b.Value)
	}
	for _, s := range f.Series {
		out += s.Format()
	}
	return out
}

// Scheme names a registered balancer plus its parameters — pure data,
// resolved through the lb registry at compile time. Replication adds
// RepFlow-style end-host copies on top (RepFlow runs ECMP at the
// switch and replicates mice at the hosts).
type Scheme struct {
	// Name is the registry name (lb.Names() enumerates them).
	Name string
	// Label, when set, is the display name results carry ("flow" for
	// ecmp in the motivation figures); it defaults to Name.
	Label       string
	Params      spec.Params
	Replication *spec.Replication
}

// label returns the display name.
func (s Scheme) label() string {
	if s.Label != "" {
		return s.Label
	}
	return s.Name
}

// schemeSpec renders the scheme clause of a spec.
func (s Scheme) schemeSpec() spec.Scheme {
	return spec.Scheme{Name: s.Name, Label: s.Label, Params: s.Params}
}

// baselines returns the four comparison schemes of the paper's §6 in
// its plotting order. flowletGap parameterizes LetFlow (150 µs in NS2
// experiments, 15 ms on the slow testbed).
func baselines(flowletGap units.Time) []Scheme {
	return []Scheme{
		{Name: "ecmp"},
		{Name: "rps"},
		{Name: "presto"},
		{Name: "letflow", Params: spec.Params{"gap": pDur(flowletGap)}},
	}
}

// ---- Shared scenario environments ----

// basicEnv is the paper's small-scale environment (§2.2, §4.2, §6.1):
// a leaf-spine with 15 equal-cost paths, 1 Gbps links, ~100 µs RTT.
type basicEnv struct {
	topo      topology.Config
	transport transport.Config
	shorts    int
	longs     int
	shortSize workload.SizeDist
	longSize  workload.SizeDist
	deadlines workload.DeadlineDist
}

// newBasicEnv builds the environment with the given buffer size
// (256 packets in §2.2/§6.1, 512 in §4.2) and flow counts.
func newBasicEnv(buffer, shorts, longs int) basicEnv {
	return basicEnv{
		topo: topology.Config{
			Leaves:       2,
			Spines:       15,
			HostsPerLeaf: 15,
			HostLink:     netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
			FabricLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
			Queue:        netem.QueueConfig{Capacity: buffer, ECNThreshold: 65},
		},
		transport: transport.DefaultConfig(),
		shorts:    shorts,
		longs:     longs,
		// "Random size of less than 100KB" with the 70KB mean §4.2
		// quotes: uniform on [40KB, 100KB].
		shortSize: workload.Uniform{MinSize: 40 * units.KB, MaxSize: 100 * units.KB},
		longSize:  workload.Fixed{Size: 10 * units.MB},
		deadlines: workload.DeadlineDist{
			Min: 5 * units.Millisecond, Max: 25 * units.Millisecond,
			OnlyBelow: 100 * units.KB,
		},
	}
}

// tlbConfig returns the TLB switch configuration matched to the
// environment.
func (e basicEnv) tlbConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.LinkBandwidth = e.topo.FabricLink.Bandwidth
	cfg.RTT = e.topo.BaseRTT()
	cfg.MaxQTh = e.topo.Queue.Capacity
	cfg.MeanShortSize = units.Bytes(e.shortSize.Mean())
	return cfg
}

// spec builds one scheme's scenario description: the static mix
// (senders on leaf 0, receivers on leaf 1, shorts bursting into the
// established longs over a few ms — the §2.2 contention scenario),
// named after the scheme's display label.
func (e basicEnv) spec(s Scheme, seed uint64) spec.Spec {
	return spec.Spec{
		Version:   spec.Version,
		Name:      s.label(),
		Seed:      seed,
		Scheme:    s.schemeSpec(),
		Topology:  topoSpec(e.topo),
		Transport: transportSpec(e.transport),
		Workload: spec.Workload{
			Kind: "mix",
			Groups: []spec.MixGroup{{
				Shorts:        e.shorts,
				Longs:         e.longs,
				ShortSizes:    sizeSpec(e.shortSize),
				LongSizes:     sizeSpec(e.longSize),
				ArrivalJitter: spec.Dur(5 * units.Millisecond),
			}},
			Deadlines: deadlineSpec(e.deadlines),
		},
		Replication: s.Replication,
		Run: spec.Run{
			MaxTime:      spec.Dur(30 * units.Second),
			StopWhenDone: true,
		},
	}
}

// ---- Large-scale environment (§6.2) ----

// largeEnv is the web-search / data-mining environment: 8 leaves,
// 8 spines, 1 Gbps, Poisson arrivals at a target fabric load.
type largeEnv struct {
	topo      topology.Config
	transport transport.Config
	sizes     spec.SizeDist
	deadlines workload.DeadlineDist
	flowCount int
}

func newLargeEnv(sizes spec.SizeDist, flowCount int) largeEnv {
	return largeEnv{
		topo: topology.Config{
			Leaves:       8,
			Spines:       8,
			HostsPerLeaf: 32,
			HostLink:     netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
			FabricLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
			Queue:        netem.QueueConfig{Capacity: 256, ECNThreshold: 65},
		},
		transport: transport.DefaultConfig(),
		sizes:     sizes,
		deadlines: workload.DeadlineDist{
			Min: 5 * units.Millisecond, Max: 25 * units.Millisecond,
			OnlyBelow: 100 * units.KB,
		},
		flowCount: flowCount,
	}
}

// websearchSizes is the web-search CDF truncated at 20MB (the
// experiments bound the heavy tail to keep run times finite).
func websearchSizes() spec.SizeDist {
	return spec.SizeDist{Kind: "websearch", Truncate: spec.Sz(20 * units.MB)}
}

// dataminingSizes is the data-mining CDF truncated at 50MB.
func dataminingSizes() spec.SizeDist {
	return spec.SizeDist{Kind: "datamining", Truncate: spec.Sz(50 * units.MB)}
}

// flows draws the Poisson workload for one load point — the same
// draw the compiled spec performs, kept for load calibration checks.
// Load is defined against the aggregate leaf-uplink capacity, the
// convention of the load-balancing literature the paper follows; all
// flows cross the fabric.
func (e largeEnv) flows(load float64, seed uint64) ([]workload.Flow, error) {
	sizes, err := e.sizes.Dist()
	if err != nil {
		return nil, err
	}
	fabricCapacity := float64(e.topo.Leaves) * float64(e.topo.Spines) * e.topo.FabricLink.Bandwidth.BytesPerSecond()
	pc := workload.PoissonConfig{
		Hosts:         e.topo.Hosts(),
		Sizes:         sizes,
		RateOverride:  load * fabricCapacity / sizes.Mean(),
		Deadlines:     e.deadlines,
		CrossLeafOnly: true,
		LeafOf:        func(h int) int { return h / e.topo.HostsPerLeaf },
	}
	return pc.Generate(newRNG(seed), e.flowCount, 0)
}

func (e largeEnv) tlbConfig(deadline units.Time) core.Config {
	cfg := core.DefaultConfig()
	cfg.LinkBandwidth = e.topo.FabricLink.Bandwidth
	cfg.RTT = e.topo.BaseRTT()
	cfg.MaxQTh = e.topo.Queue.Capacity
	cfg.MeanShortSize = 30 * units.KB // mean short (<100KB) size of both CDFs, ~tens of KB
	if deadline > 0 {
		cfg.Deadline = deadline
	}
	return cfg
}

// spec builds one scheme's scenario description (with its optional
// end-host replication) at one load point.
func (e largeEnv) spec(s Scheme, load float64, seed uint64) spec.Spec {
	sizes := e.sizes
	return spec.Spec{
		Version:   spec.Version,
		Name:      fmt.Sprintf("%s-load%.1f", s.label(), load),
		Seed:      seed,
		Scheme:    s.schemeSpec(),
		Topology:  topoSpec(e.topo),
		Transport: transportSpec(e.transport),
		Workload: spec.Workload{
			Kind:      "poisson",
			Flows:     e.flowCount,
			Load:      load,
			Sizes:     &sizes,
			Deadlines: deadlineSpec(e.deadlines),
		},
		Replication: s.Replication,
		Run: spec.Run{
			MaxTime:      spec.Dur(60 * units.Second),
			StopWhenDone: true,
		},
	}
}

func newRNG(seed uint64) *eventsim.RNG { return eventsim.NewRNG(seed) }
