package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Entry describes one runnable experiment.
type Entry struct {
	// Name is the CLI identifier ("fig10", "ablation-interval").
	Name string
	// Paper locates the result in the paper ("Fig. 10 a-d, §6.2").
	Paper string
	// Description summarizes what is reproduced.
	Description string
	// Run produces the figure panels.
	Run func(Options) ([]Figure, error)
}

// Registry lists every reproducible figure and ablation in paper
// order.
func Registry() []Entry {
	return []Entry{
		{"fig3", "Fig. 3 a-c, §2.2", "impact of switching granularity on short flows", figs3Only},
		{"fig4", "Fig. 4 a-c, §2.2", "impact of switching granularity on long flows", figs4Only},
		{"fig7", "Fig. 7 a-d, §4.2", "model vs simulated minimum switching threshold q_th", Fig7},
		{"fig8", "Fig. 8 a-b, §6.1", "short-flow reordering and queueing delay over time", figs8Only},
		{"fig9", "Fig. 9 a-b, §6.1", "long-flow reordering and instantaneous throughput", figs9Only},
		{"fig10", "Fig. 10 a-d, §6.2", "web-search workload sweep (loads 0.1-0.8, 5 schemes)", Fig10},
		{"fig11", "Fig. 11 a-d, §6.2", "data-mining workload sweep", Fig11},
		{"fig12", "Fig. 12 a-d, §6.3", "deadline-agnostic TLB percentile study", Fig12},
		{"fig13", "Fig. 13 a-b, §7", "testbed: varying the number of short flows", Fig13},
		{"fig14", "Fig. 14 a-b, §7", "testbed: varying the number of long flows", Fig14},
		{"fig15", "Fig. 15 a-b, §7", "per-packet decision cost and scheme state (overhead)", Fig15},
		{"fig16", "Fig. 16 a-b, §7", "asymmetric topology: extra delay on two links", Fig16},
		{"fig17", "Fig. 17 a-b, §7", "asymmetric topology: de-rated bandwidth on two links", Fig17},
		{"extended", "beyond the paper", "TLB vs the wider §8 field (DRILL, CONGA-local, Hermes, FlowBender, WCMP)", ExtendedBaselines},
		{"extended-asym", "beyond the paper", "the wider field on the bandwidth-asymmetric testbed", ExtendedAsymmetric},
		{"ablation-interval", "—", "TLB ablation: q_th update interval", AblationInterval},
		{"ablation-threshold", "—", "TLB ablation: short/long classification threshold", AblationThreshold},
		{"ablation-fixed", "—", "TLB ablation: adaptive vs fixed q_th", AblationFixedGranularity},
		{"ablation-shortpolicy", "—", "TLB ablation: short-flow path policy", AblationShortPolicy},
		{"ablation-safeswitch", "—", "TLB ablation: reorder-safe switching guard and hysteresis", AblationSafeSwitch},
		{"ablation-demandcap", "—", "TLB ablation: Eq. 1 demand cap vs paper-literal", AblationDemandCap},
		{"ablation-transport", "—", "transport ablation: DCTCP vs NewReno vs SACK vs delayed ACKs", AblationTransport},
		{"fattree", "beyond the paper", "headline schemes on a k=4 fat-tree (two chained decisions)", FatTreeComparison},
		{"figF1", "beyond the paper", "fault tolerance: two uplinks fail mid-run and recover 3 s later", FigF1},
		{"figF2", "beyond the paper", "fault tolerance: flap-frequency sweep on one uplink", FigF2},
		{"figLS", "beyond the paper", "streaming scale: 1M flows on a k=16 fat-tree in O(1) memory per flow", FigLS},
	}
}

// Lookup resolves a comma-separated list of experiment names ("all"
// selects everything; "ablations" selects the ablation set).
func Lookup(names string) ([]Entry, error) {
	all := Registry()
	if names == "" || names == "all" {
		return all, nil
	}
	byName := map[string]Entry{}
	for _, e := range all {
		byName[e.Name] = e
	}
	var out []Entry
	seen := map[string]bool{}
	for _, raw := range strings.Split(names, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			continue
		}
		if name == "ablations" {
			for _, e := range all {
				if strings.HasPrefix(e.Name, "ablation-") && !seen[e.Name] {
					out = append(out, e)
					seen[e.Name] = true
				}
			}
			continue
		}
		e, ok := byName[name]
		if !ok {
			var known []string
			for k := range byName {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown experiment %q (known: %s, plus \"all\" and \"ablations\")",
				name, strings.Join(known, ", "))
		}
		if !seen[name] {
			out = append(out, e)
			seen[name] = true
		}
	}
	return out, nil
}

// The paper presents Fig. 3/4 (one shared run set) and Fig. 8/9
// (likewise) as separate figures; these wrappers slice the shared
// results accordingly. Each pair costs its runs once per call.

func figs3Only(o Options) ([]Figure, error) { return sliceFigs(Fig3And4(o))("fig3") }
func figs4Only(o Options) ([]Figure, error) { return sliceFigs(Fig3And4(o))("fig4") }
func figs8Only(o Options) ([]Figure, error) { return sliceFigs(Fig8And9(o))("fig8") }
func figs9Only(o Options) ([]Figure, error) { return sliceFigs(Fig8And9(o))("fig9") }

func sliceFigs(figs []Figure, err error) func(prefix string) ([]Figure, error) {
	return func(prefix string) ([]Figure, error) {
		if err != nil {
			return nil, err
		}
		var out []Figure
		for _, f := range figs {
			if strings.HasPrefix(f.ID, prefix) {
				out = append(out, f)
			}
		}
		return out, nil
	}
}
