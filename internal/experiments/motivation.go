package experiments

import (
	"fmt"

	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/stats"
	"tlb/internal/units"
)

// Fig3And4 reproduces the §2.2 motivation study: 100 short + 5 long
// flows on 15 paths, rerouted at flow (ECMP), flowlet (LetFlow 150 µs)
// and packet (RPS) granularity.
//
// Returned figures:
//
//	fig3a — CDF of queue length experienced by short-flow packets
//	fig3b — duplicate-ACK ratio of short flows (bars)
//	fig3c — CDF of short-flow FCT
//	fig4a — mean uplink utilization (bars)
//	fig4b — long-flow out-of-order ratio (bars)
//	fig4c — mean long-flow throughput, fraction of capacity (bars)
func Fig3And4(o Options) ([]Figure, error) {
	env := newBasicEnv(256, 100, 5)
	granularities := []Scheme{
		{Name: "ecmp", Label: "flow"},
		{Name: "letflow", Label: "flowlet", Params: spec.Params{"gap": pDur(150 * units.Microsecond)}},
		{Name: "rps", Label: "packet"},
	}

	queueCDF := Figure{ID: "fig3a", Title: "Queue length seen by short-flow packets",
		XLabel: "queue length (packets)", YLabel: "CDF"}
	dupAck := Figure{ID: "fig3b", Title: "Duplicate-ACK ratio of short flows",
		YLabel: "dup ACKs / packets received"}
	fctCDF := Figure{ID: "fig3c", Title: "Short-flow FCT",
		XLabel: "FCT (s)", YLabel: "CDF"}
	util := Figure{ID: "fig4a", Title: "Mean uplink utilization",
		YLabel: "busy fraction"}
	ooo := Figure{ID: "fig4b", Title: "Long-flow out-of-order arrivals",
		YLabel: "out-of-order / packets received"}
	tput := Figure{ID: "fig4c", Title: "Mean long-flow throughput",
		YLabel: "fraction of link capacity"}

	specs := make([]spec.Spec, len(granularities))
	for i, g := range granularities {
		sp := env.spec(g, o.Seed)
		sp.Outputs.SampleShortPackets = true
		specs[i] = sp
	}
	results, err := o.runSpecs("fig3/4", specs)
	if err != nil {
		return nil, fmt.Errorf("fig3/4: %w", err)
	}
	for i, g := range granularities {
		res := results[i]
		if res.CompletedCount(sim.AllFlows) < len(res.Flows) {
			o.logf("fig3/4: %s left %d flows unfinished at %v", g.label(),
				len(res.Flows)-res.CompletedCount(sim.AllFlows), res.EndTime)
		}

		var ql stats.Sample
		for _, ps := range res.ShortSamples {
			ql.Add(float64(ps.QueueLen))
		}
		queueCDF.Series = append(queueCDF.Series, stats.Series{
			Name: g.label(), Points: ql.CDF(50),
		})
		dupAck.Bars = append(dupAck.Bars, Bar{g.label(), res.DupAckRatio(sim.ShortFlows)})
		fctCDF.Series = append(fctCDF.Series, stats.Series{
			Name: g.label(), Points: res.FCTSample(sim.ShortFlows).CDF(50),
		})

		util.Bars = append(util.Bars, Bar{g.label(), res.UplinkUtilization()})
		ooo.Bars = append(ooo.Bars, Bar{g.label(), res.OutOfOrderRatio(sim.LongFlows)})
		capacity := float64(env.topo.FabricLink.Bandwidth)
		tput.Bars = append(tput.Bars, Bar{g.label(), float64(res.Goodput(sim.LongFlows)) / capacity})
	}
	return []Figure{queueCDF, dupAck, fctCDF, util, ooo, tput}, nil
}

// fig89Specs builds the §6.1 basic-test batch: TLB against the
// baselines in the 3-long/100-short environment, with the
// instantaneous time series enabled. Shared with the golden-spec
// tests.
func fig89Specs(o Options) ([]Scheme, []spec.Spec) {
	env := newBasicEnv(256, 100, 3)
	schemes := append(baselines(150*units.Microsecond), Scheme{Name: "tlb"})
	specs := make([]spec.Spec, len(schemes))
	for i, s := range schemes {
		sp := env.spec(s, o.Seed)
		sp.Outputs.CollectTimeSeries = true
		sp.Outputs.TimeBucket = spec.Dur(2 * units.Millisecond)
		specs[i] = sp
	}
	return schemes, specs
}

// Fig8And9 reproduces the §6.1 basic performance test: TLB against the
// baselines in the 3-long/100-short environment, reporting the
// instantaneous behaviour of short flows (reordering ratio, queueing
// delay) and long flows (reordering, throughput).
//
//	fig8a — short-flow reordering ratio over time
//	fig8b — short-flow mean queueing delay over time (µs)
//	fig9a — long-flow reordering ratio over time
//	fig9b — long-flow aggregate goodput over time (Gbps)
func Fig8And9(o Options) ([]Figure, error) {
	schemes, specs := fig89Specs(o)

	shortOOO := Figure{ID: "fig8a", Title: "Short-flow reordering over time",
		XLabel: "time (s)", YLabel: "out-of-order fraction"}
	shortDelay := Figure{ID: "fig8b", Title: "Short-flow queueing delay over time",
		XLabel: "time (s)", YLabel: "mean queueing delay (µs)"}
	longOOO := Figure{ID: "fig9a", Title: "Long-flow reordering over time",
		XLabel: "time (s)", YLabel: "out-of-order fraction"}
	longTput := Figure{ID: "fig9b", Title: "Long-flow goodput over time",
		XLabel: "time (s)", YLabel: "Gbps"}
	summary := Figure{ID: "fig8-9-summary", Title: "Basic test summary (whole run)",
		YLabel: "scheme: shortOOO shortQueueDelay(µs) longOOO longGoodput(Gbps)"}

	results, err := o.runSpecs("fig8/9", specs)
	if err != nil {
		return nil, fmt.Errorf("fig8/9: %w", err)
	}
	for i, s := range schemes {
		res := results[i]
		shortOOO.Series = append(shortOOO.Series, stats.Series{
			Name: s.label(), Points: res.ShortOOORatio.Means(),
		})
		shortDelay.Series = append(shortDelay.Series, stats.Series{
			Name: s.label(), Points: res.ShortQueueDelayUs.Means(),
		})
		longOOO.Series = append(longOOO.Series, stats.Series{
			Name: s.label(), Points: res.LongOOORatio.Means(),
		})
		rates := res.LongGoodputBytes.Rates()
		for i := range rates {
			rates[i].Y = rates[i].Y * 8 / 1e9 // bytes/s -> Gbps
		}
		longTput.Series = append(longTput.Series, stats.Series{Name: s.label(), Points: rates})
		summary.Bars = append(summary.Bars, Bar{
			Label: s.label(),
			Value: float64(res.Goodput(sim.LongFlows)) / 1e9,
		})
	}
	return []Figure{shortOOO, shortDelay, longOOO, longTput, summary}, nil
}
