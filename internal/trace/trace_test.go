package trace

import (
	"strings"
	"testing"

	"tlb/internal/netem"
	"tlb/internal/units"
)

func ev(at units.Time, k EventKind, where string) Event {
	return Event{At: at, Kind: k, Flow: netem.FlowID{Src: 1, Dst: 2}, Where: where}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(ev(1, Enqueue, "x")) // must not panic
	if tr.Events() != nil || tr.Count(Enqueue) != 0 {
		t.Fatal("nil tracer returned data")
	}
	if err := tr.Dump(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Summary(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordAndOrder(t *testing.T) {
	tr := New(0)
	for i := 0; i < 10; i++ {
		tr.Record(ev(units.Time(i), Enqueue, "p"))
	}
	evs := tr.Events()
	if len(evs) != 10 {
		t.Fatalf("%d events", len(evs))
	}
	for i, e := range evs {
		if e.At != units.Time(i) {
			t.Fatal("order broken")
		}
	}
	if tr.Count(Enqueue) != 10 {
		t.Fatalf("count %d", tr.Count(Enqueue))
	}
}

func TestRingRotation(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Record(ev(units.Time(i), Drop, "p"))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	// Oldest retained is 6, newest 9, chronological.
	if evs[0].At != 6 || evs[3].At != 9 {
		t.Fatalf("ring contents %v..%v", evs[0].At, evs[3].At)
	}
	// Counts survive rotation.
	if tr.Count(Drop) != 10 {
		t.Fatalf("count %d", tr.Count(Drop))
	}
}

func TestFilterKinds(t *testing.T) {
	tr := New(0).WithFilter(Filter{Kinds: []EventKind{Drop, Retransmit}})
	tr.Record(ev(1, Enqueue, ""))
	tr.Record(ev(2, Drop, ""))
	tr.Record(ev(3, Retransmit, ""))
	if len(tr.Events()) != 2 {
		t.Fatalf("filter kept %d", len(tr.Events()))
	}
}

func TestFilterFlowMatchesBothDirections(t *testing.T) {
	flow := netem.FlowID{Src: 3, Dst: 4, Port: 1}
	f := Filter{Flow: &flow}
	if !f.Match(Event{Flow: flow}) {
		t.Fatal("forward direction rejected")
	}
	if !f.Match(Event{Flow: flow.Reversed()}) {
		t.Fatal("reverse direction rejected")
	}
	if f.Match(Event{Flow: netem.FlowID{Src: 9, Dst: 9}}) {
		t.Fatal("unrelated flow accepted")
	}
}

func TestFilterTimeWindowAndPrefix(t *testing.T) {
	f := Filter{After: 10, Before: 20, WherePrefix: "leaf0->"}
	if f.Match(Event{At: 5, Where: "leaf0->spine1"}) {
		t.Fatal("early event accepted")
	}
	if f.Match(Event{At: 25, Where: "leaf0->spine1"}) {
		t.Fatal("late event accepted")
	}
	if f.Match(Event{At: 15, Where: "leaf1->spine1"}) {
		t.Fatal("wrong location accepted")
	}
	if !f.Match(Event{At: 15, Where: "leaf0->spine1"}) {
		t.Fatal("matching event rejected")
	}
}

func TestDumpAndSummary(t *testing.T) {
	tr := New(0)
	tr.Record(Event{At: units.Microsecond, Kind: Enqueue, Flow: netem.FlowID{Src: 1, Dst: 2}, Where: "leaf0->spine0", Seq: 1460})
	tr.Record(Event{At: 2 * units.Microsecond, Kind: Drop, Flow: netem.FlowID{Src: 1, Dst: 2}, Where: "leaf0->spine0", Note: "full"})
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"ENQ", "DROP", "leaf0->spine0", "seq=1460", "(full)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	if err := tr.Summary(&b); err != nil {
		t.Fatal(err)
	}
	sum := b.String()
	if !strings.Contains(sum, "ENQ") || !strings.Contains(sum, "hot leaf0->spine0") {
		t.Fatalf("summary:\n%s", sum)
	}
}

func TestKindString(t *testing.T) {
	if Enqueue.String() != "ENQ" || Reroute.String() != "REROUTE" {
		t.Fatal("kind names")
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Fatal("unknown kind")
	}
}
