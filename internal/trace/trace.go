// Package trace provides structured event tracing for simulation runs:
// a ring- or stream-backed recorder that components publish packet and
// flow events to, with filtering, pretty-printing and summary
// statistics. It is the simulator's equivalent of a pcap + switch
// counter dump, and exists for debugging experiments — production runs
// leave it disabled (nil Tracer receivers are no-ops throughout).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tlb/internal/netem"
	"tlb/internal/units"
)

// EventKind classifies trace events.
type EventKind uint8

// Event kinds.
const (
	// Enqueue: a packet was admitted to a port queue.
	Enqueue EventKind = iota
	// Drop: a packet was rejected by a full queue.
	Drop
	// Deliver: a packet reached a host.
	Deliver
	// FlowStart / FlowEnd: transport-level flow lifecycle.
	FlowStart
	FlowEnd
	// Reroute: a load balancer moved a flow to a new port.
	Reroute
	// Retransmit: the transport resent a segment.
	Retransmit
	// Mark: a packet was CE-marked.
	Mark
	// LinkFault: the fault injector changed a link's state (down,
	// restore, de-rate, delay); the note carries the operation.
	LinkFault
)

//simlint:allow sharedstate(immutable name table; written only at init)
var kindNames = [...]string{
	Enqueue:    "ENQ",
	Drop:       "DROP",
	Deliver:    "DLV",
	FlowStart:  "FSTART",
	FlowEnd:    "FEND",
	Reroute:    "REROUTE",
	Retransmit: "RETX",
	Mark:       "MARK",
	LinkFault:  "FAULT",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one recorded occurrence.
type Event struct {
	At    units.Time
	Kind  EventKind
	Flow  netem.FlowID
	Where string // port label, host name, ...
	Seq   units.Bytes
	Note  string
}

// Format renders the event as one log line.
func (e Event) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12v %-8s %-14v", e.At, e.Kind, e.Flow)
	if e.Where != "" {
		fmt.Fprintf(&b, " @%s", e.Where)
	}
	if e.Kind == Enqueue || e.Kind == Deliver || e.Kind == Retransmit {
		fmt.Fprintf(&b, " seq=%d", e.Seq)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " (%s)", e.Note)
	}
	return b.String()
}

// Filter selects which events a tracer keeps. Zero-valued fields match
// everything.
type Filter struct {
	// Kinds restricts to the given kinds (empty = all).
	Kinds []EventKind
	// Flow restricts to one flow in either direction.
	Flow *netem.FlowID
	// After/Before bound the time window (zero = unbounded).
	After, Before units.Time
	// WherePrefix restricts to locations with this prefix (e.g.
	// "leaf0->").
	WherePrefix string
}

// Match reports whether the event passes the filter.
func (f *Filter) Match(e Event) bool {
	if len(f.Kinds) > 0 {
		ok := false
		for _, k := range f.Kinds {
			if e.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Flow != nil && e.Flow != *f.Flow && e.Flow != f.Flow.Reversed() {
		return false
	}
	if f.After != 0 && e.At < f.After {
		return false
	}
	if f.Before != 0 && e.At >= f.Before {
		return false
	}
	if f.WherePrefix != "" && !strings.HasPrefix(e.Where, f.WherePrefix) {
		return false
	}
	return true
}

// Tracer records events. A nil *Tracer is a valid no-op recorder, so
// components can hold one unconditionally.
type Tracer struct {
	filter Filter
	// ring buffer of the most recent `cap` events; cap <= 0 keeps
	// everything.
	events []Event
	max    int
	head   int
	full   bool
	counts map[EventKind]int64
}

// New creates a tracer retaining at most max events (<= 0: unbounded).
func New(max int) *Tracer {
	return &Tracer{max: max, counts: make(map[EventKind]int64)}
}

// WithFilter sets the keep-filter and returns the tracer.
func (t *Tracer) WithFilter(f Filter) *Tracer {
	t.filter = f
	return t
}

// Record stores one event (respecting the filter). Safe on nil.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	if !t.filter.Match(e) {
		return
	}
	t.counts[e.Kind]++
	if t.max <= 0 {
		t.events = append(t.events, e)
		return
	}
	if len(t.events) < t.max {
		t.events = append(t.events, e)
		return
	}
	t.events[t.head] = e
	t.head = (t.head + 1) % t.max
	t.full = true
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if t.max <= 0 || !t.full {
		out := make([]Event, len(t.events))
		copy(out, t.events)
		return out
	}
	out := make([]Event, 0, t.max)
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// Count returns how many events of the kind were recorded (including
// ones that have since rotated out of the ring).
func (t *Tracer) Count(k EventKind) int64 {
	if t == nil {
		return 0
	}
	return t.counts[k]
}

// Dump writes the retained events to w, one line each.
func (t *Tracer) Dump(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e.Format()); err != nil {
			return err
		}
	}
	return nil
}

// Summary writes per-kind counts plus the busiest locations.
func (t *Tracer) Summary(w io.Writer) error {
	if t == nil {
		return nil
	}
	kinds := make([]EventKind, 0, len(t.counts))
	//simlint:allow maporder(keys are collected and sorted on the next line before any output)
	for k := range t.counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "%-8s %d\n", k, t.counts[k]); err != nil {
			return err
		}
	}
	where := map[string]int{}
	for _, e := range t.Events() {
		if e.Where != "" {
			where[e.Where]++
		}
	}
	type wc struct {
		w string
		n int
	}
	ws := make([]wc, 0, len(where))
	//simlint:allow maporder(entries are collected and sorted by count then name before any output)
	for k, v := range where {
		ws = append(ws, wc{k, v})
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].n != ws[j].n {
			return ws[i].n > ws[j].n
		}
		return ws[i].w < ws[j].w
	})
	for i, x := range ws {
		if i >= 5 {
			break
		}
		if _, err := fmt.Fprintf(w, "hot %-24s %d\n", x.w, x.n); err != nil {
			return err
		}
	}
	return nil
}
