package model

import (
	"math"
	"testing"
	"testing/quick"

	"tlb/internal/units"
)

// paperParams mirrors the paper's §4.2 verification setup: 15 paths,
// 1 Gbps, 3 long + 100 short flows, X = 70 KB, D = 10 ms, t = 500 µs,
// RTT = 100 µs.
func paperParams() Params {
	return Params{
		Paths:         15,
		ShortFlows:    100,
		LongFlows:     3,
		LinkBandwidth: units.Gbps,
		RTT:           100 * units.Microsecond,
		MeanShortSize: 70 * units.KB,
		LongWindow:    64 * units.KiB,
		Deadline:      10 * units.Millisecond,
		Interval:      500 * units.Microsecond,
		MSS:           1460,
		// Paper-literal Eq. 1 (W_L per propagation RTT), which is
		// what §4.2's numbers are computed from.
		UncappedLongDemand: true,
	}
}

func TestLongDemandCapLowersQTh(t *testing.T) {
	uncapped := paperParams()
	capped := uncapped
	capped.UncappedLongDemand = false
	qu, qc := uncapped.QTh(), capped.QTh()
	// W_L/RTT = ~5.2 Gbps > C = 1 Gbps here, so the cap must bite.
	if !(qc < qu) {
		t.Fatalf("capped q_th %v not below uncapped %v", qc, qu)
	}
	// When W_L/RTT <= C the flag must not matter.
	uncapped.RTT = 10 * units.Millisecond
	capped.RTT = 10 * units.Millisecond
	if uncapped.QTh() != capped.QTh() {
		t.Fatalf("cap changed q_th despite W_L/RTT < C: %v vs %v",
			uncapped.QTh(), capped.QTh())
	}
}

func TestRounds(t *testing.T) {
	cases := []struct {
		x    units.Bytes
		want int
	}{
		{1, 1},      // sub-MSS
		{1460, 1},   // exactly one segment
		{1461, 1},   // floor(log2(~1.0007))+1 = 1
		{2920, 2},   // 2 segments: floor(log2 2)+1 = 2
		{11680, 4},  // 8 segments
		{70000, 6},  // ~48 segments: floor(log2 47.9)=5, +1
		{100000, 7}, // ~68.5 segments
	}
	for _, c := range cases {
		if got := Rounds(c.x, 1460); got != c.want {
			t.Errorf("Rounds(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestPKWait(t *testing.T) {
	c := 83333.0 // pkts/s
	if w := PKWait(0, c); w != 0 {
		t.Fatalf("wait at rho=0 is %v", w)
	}
	if w := PKWait(1.0, c); !math.IsInf(w, 1) {
		t.Fatalf("wait at rho=1 is %v, want +Inf", w)
	}
	// rho=0.5: W = 0.5/(2*0.5)/C = 1/(2C).
	if w, want := PKWait(0.5, c), 1/(2*c); math.Abs(w-want) > 1e-12 {
		t.Fatalf("PKWait(0.5) = %v, want %v", w, want)
	}
	// Monotone in rho.
	prev := -1.0
	for rho := 0.0; rho < 1; rho += 0.05 {
		w := PKWait(rho, c)
		if w < prev {
			t.Fatalf("PKWait not monotone at rho=%v", rho)
		}
		prev = w
	}
}

func TestQThPaperSetupIsFinitePositive(t *testing.T) {
	q := paperParams().QTh()
	if math.IsInf(q, 1) || q < 0 {
		t.Fatalf("paper setup q_th = %v", q)
	}
	// Sanity: the paper's Fig. 7 shows thresholds of tens to a few
	// hundred packets in this regime.
	if q < 1 || q > 2000 {
		t.Fatalf("q_th = %v packets, outside plausible range", q)
	}
}

// The four monotonicity properties of Fig. 7: q_th increases with more
// short flows (7a) and more long flows (7b), decreases with more paths
// (7c) and looser deadlines (7d).
func TestQThMonotoneInShortFlows(t *testing.T) {
	prev := -1.0
	for ms := 20; ms <= 100; ms += 20 {
		p := paperParams()
		p.ShortFlows = ms
		q := p.QTh()
		if q < prev {
			t.Fatalf("q_th decreased when m_S grew to %d: %v < %v", ms, q, prev)
		}
		prev = q
	}
}

func TestQThMonotoneInLongFlows(t *testing.T) {
	prev := -1.0
	for ml := 1; ml <= 5; ml++ {
		p := paperParams()
		p.LongFlows = ml
		q := p.QTh()
		if q < prev {
			t.Fatalf("q_th decreased when m_L grew to %d", ml)
		}
		prev = q
	}
}

func TestQThMonotoneInPaths(t *testing.T) {
	prev := math.Inf(1)
	for n := 10; n <= 35; n += 5 {
		p := paperParams()
		p.Paths = n
		q := p.QTh()
		if q > prev {
			t.Fatalf("q_th increased when paths grew to %d", n)
		}
		prev = q
	}
}

func TestQThMonotoneInDeadline(t *testing.T) {
	prev := math.Inf(1)
	for d := 5; d <= 25; d += 5 {
		p := paperParams()
		p.Deadline = units.Time(d) * units.Millisecond
		q := p.QTh()
		if q > prev {
			t.Fatalf("q_th increased when deadline loosened to %dms", d)
		}
		prev = q
	}
}

func TestQThEdgeCases(t *testing.T) {
	p := paperParams()
	p.LongFlows = 0
	if q := p.QTh(); q != 0 {
		t.Fatalf("q_th with no long flows = %v, want 0 (switch freely)", q)
	}

	// Infeasible deadline (tighter than bare transmission time).
	p = paperParams()
	p.Deadline = units.Microsecond
	if q := p.QTh(); !math.IsInf(q, 1) {
		t.Fatalf("q_th with infeasible deadline = %v, want +Inf", q)
	}

	// So many short flows they need all paths: long flows must never
	// switch.
	p = paperParams()
	p.ShortFlows = 100000
	if q := p.QTh(); !math.IsInf(q, 1) {
		t.Fatalf("q_th with saturating shorts = %v, want +Inf", q)
	}
}

func TestQThPacketsClamp(t *testing.T) {
	p := paperParams()
	p.Deadline = units.Microsecond // infeasible -> +Inf
	if got := p.QThPackets(256); got != 256 {
		t.Fatalf("clamp = %d, want 256", got)
	}
	p = paperParams()
	p.LongFlows = 0
	if got := p.QThPackets(256); got != 0 {
		t.Fatalf("no-longs = %d, want 0", got)
	}
	q := paperParams().QTh()
	got := paperParams().QThPackets(1 << 20)
	if float64(got) < q || float64(got) > q+1 {
		t.Fatalf("QThPackets %d does not ceil %v", got, q)
	}
}

func TestFCTShortLimits(t *testing.T) {
	p := paperParams()
	// With no short flows, FCT is the bare transmission time X/C.
	p.ShortFlows = 0
	c := p.withDefaults().capacityPkts()
	x := p.withDefaults().shortSizePkts()
	if got, want := p.FCTShort(100), x/c; math.Abs(got-want) > 1e-9 {
		t.Fatalf("FCT with no load = %v, want %v", got, want)
	}
}

func TestFCTShortMonotoneInQTh(t *testing.T) {
	// Larger q_th -> long flows hold fewer paths... actually larger
	// q_th means longs stay longer per path (nL smaller share), giving
	// shorts MORE paths (nS larger) -> smaller FCT.
	p := paperParams()
	prev := math.Inf(1)
	for _, q := range []float64{10, 50, 100, 200, 400} {
		f := p.FCTShort(q)
		if f > prev {
			t.Fatalf("FCT increased with larger q_th=%v", q)
		}
		prev = f
	}
}

// TestQThFCTConsistency: the q_th from Eq. 9 must make Eq. 8's FCT come
// out at (or under) the deadline — the two equations are inverses.
func TestQThFCTConsistency(t *testing.T) {
	f := func(msRaw, mlRaw, dRaw uint8) bool {
		p := paperParams()
		p.ShortFlows = int(msRaw%100) + 1
		p.LongFlows = int(mlRaw%5) + 1
		p.Deadline = units.Time(int(dRaw%20)+6) * units.Millisecond
		q := p.QTh()
		if math.IsInf(q, 1) {
			return true // infeasible: nothing to check
		}
		fct := p.FCTShort(q + 1e-9)
		return fct <= p.Deadline.Seconds()*1.02 // 2% numeric slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	good := paperParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Paths = 0
	if bad.Validate() == nil {
		t.Fatal("0 paths validated")
	}
	bad = good
	bad.Deadline = 0
	if bad.Validate() == nil {
		t.Fatal("0 deadline validated")
	}
	bad = good
	bad.ShortFlows = -1
	if bad.Validate() == nil {
		t.Fatal("negative flows validated")
	}
}
