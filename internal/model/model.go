// Package model implements the paper's §4 queueing analysis: the
// M/G/1-FCFS model (Pollaczek–Khintchine) for short-flow queueing
// delay, the path-allocation balance for long flows (Eq. 1–2), the
// slow-start round count (Eq. 3), the short-flow FCT fixed point
// (Eq. 8) and the optimal switching threshold q_th (Eq. 9).
//
// The model works in packet units throughout: capacity C is packets per
// second per path, sizes are packets, and the resulting q_th is a queue
// length in packets — the unit the paper's figures use. This is exactly
// the unit system in which the paper's E[S] = 1/C (service time of a
// single packet) holds.
package model

import (
	"fmt"
	"math"

	"tlb/internal/units"
)

// Params collects the inputs of Eq. 9.
type Params struct {
	// Paths is n, the number of equal-cost paths.
	Paths int
	// ShortFlows is m_S, the number of concurrent short flows.
	ShortFlows int
	// LongFlows is m_L, the number of concurrent long flows.
	LongFlows int
	// LinkBandwidth is the per-path bottleneck bandwidth.
	LinkBandwidth units.Bandwidth
	// RTT is the round-trip propagation delay.
	RTT units.Time
	// MeanShortSize is X, the mean short-flow size in bytes.
	MeanShortSize units.Bytes
	// LongWindow is W_L, the long flows' maximum (receive-buffer
	// limited) window in bytes — 64 KB by default in Linux.
	LongWindow units.Bytes
	// Deadline is D, the short-flow completion budget.
	Deadline units.Time
	// Interval is t, the granularity-update period (500 µs default).
	Interval units.Time
	// MSS is the segment size used to convert bytes to packets and to
	// count slow-start rounds (Eq. 3).
	MSS units.Bytes
	// PacketBytes is the on-wire packet size used to convert bandwidth
	// to packets/s; defaults to MSS + 40 header bytes.
	PacketBytes units.Bytes
	// UncappedLongDemand reproduces the paper's Eq. 1 literally, where
	// each long flow is assumed to send W_L per propagation RTT. With
	// W_L = 64 KB and RTT = 100 µs that is 5+ Gbps per flow — more
	// than a 1 Gbps NIC can physically emit — so by default the
	// per-long demand is capped at the line rate C. The cap only
	// matters when W_L/RTT > C; set this flag for paper-literal
	// numbers (e.g. the Fig. 7 numeric curves).
	UncappedLongDemand bool
}

func (p Params) withDefaults() Params {
	if p.MSS <= 0 {
		p.MSS = 1460
	}
	if p.PacketBytes <= 0 {
		p.PacketBytes = p.MSS + 40
	}
	if p.Interval <= 0 {
		p.Interval = 500 * units.Microsecond
	}
	if p.LongWindow <= 0 {
		p.LongWindow = 64 * units.KiB
	}
	return p
}

// Validate reports structural problems with the parameters.
func (p Params) Validate() error {
	switch {
	case p.Paths <= 0:
		return fmt.Errorf("model: need paths > 0, got %d", p.Paths)
	case p.LinkBandwidth <= 0:
		return fmt.Errorf("model: need positive bandwidth")
	case p.RTT <= 0:
		return fmt.Errorf("model: need positive RTT")
	case p.MeanShortSize <= 0:
		return fmt.Errorf("model: need positive mean short size")
	case p.Deadline <= 0:
		return fmt.Errorf("model: need positive deadline")
	case p.ShortFlows < 0 || p.LongFlows < 0:
		return fmt.Errorf("model: negative flow counts")
	}
	return nil
}

// capacityPkts returns C in packets/second per path.
func (p Params) capacityPkts() float64 {
	return p.LinkBandwidth.PacketsPerSecond(p.PacketBytes)
}

// shortSizePkts returns X in packets.
func (p Params) shortSizePkts() float64 {
	return float64(p.MeanShortSize) / float64(p.MSS)
}

// longWindowPkts returns W_L in packets.
func (p Params) longWindowPkts() float64 {
	return float64(p.LongWindow) / float64(p.MSS)
}

// Rounds implements Eq. 3: the number of slow-start RTT rounds to
// transfer X bytes starting from a 2-segment window
// (r = floor(log2(X/MSS)) + 1, at least 1).
func Rounds(x, mss units.Bytes) int {
	if x <= mss {
		return 1
	}
	r := int(math.Floor(math.Log2(float64(x)/float64(mss)))) + 1
	if r < 1 {
		r = 1
	}
	return r
}

// PKWait implements Eq. 6: the expected M/D/1-FCFS waiting time
// (P-K formula with C_v^2 = 0) at load rho on a server draining C
// packets per second. Returns +Inf at rho >= 1.
func PKWait(rho, capacityPkts float64) float64 {
	if rho < 0 {
		return 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (2 * (1 - rho)) / capacityPkts
}

// ShortPathsNeeded returns n_S, the number of paths short flows need so
// that their mean FCT equals the deadline D. This is the m_S
// coefficient inside Eq. 9's denominator. It returns +Inf when the
// deadline is infeasible (D <= X/C: even an empty network can't make
// it).
func (p Params) ShortPathsNeeded() float64 {
	p = p.withDefaults()
	c := p.capacityPkts()
	x := p.shortSizePkts()
	d := p.Deadline.Seconds()
	a := d - x/c // time budget left for queueing
	if a <= 0 {
		return math.Inf(1)
	}
	r := float64(Rounds(p.MeanShortSize, p.MSS))
	// From FCT_S = r*rho/(2(1-rho)C) + X/C = D:
	//   rho = 2aC / (r + 2aC)
	// and lambda = mS*X/(D*nS)  =>  nS = mS*X/(D*C*rho).
	rho := 2 * a * c / (r + 2*a*c)
	return float64(p.ShortFlows) * x / (d * c * rho)
}

// QTh implements Eq. 9: the minimum queue-length switching threshold
// (in packets) for rerouting long flows such that short flows still
// meet the deadline. The result is clamped to [0, +Inf); math.Inf(1)
// means "never switch" (the deadline leaves no spare paths, so long
// flows must hold maximal granularity).
func (p Params) QTh() float64 {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return math.Inf(1)
	}
	c := p.capacityPkts()
	t := p.Interval.Seconds()
	if p.LongFlows == 0 {
		return 0 // nothing to reroute: switch freely
	}
	nS := p.ShortPathsNeeded()
	nL := float64(p.Paths) - nS
	if nL <= 0 {
		return math.Inf(1)
	}
	// Eq. 1/2: q_th*nL + t*C*nL = mL*WL*t/RTT  (all in packets).
	perLongRate := p.longWindowPkts() / p.RTT.Seconds() // pkts/s
	if !p.UncappedLongDemand && perLongRate > c {
		perLongRate = c
	}
	demand := float64(p.LongFlows) * perLongRate * t
	qth := demand/nL - t*c
	if qth < 0 {
		return 0
	}
	return qth
}

// QThPackets returns Eq. 9 rounded up to whole packets and clamped to
// the given maximum (typically the switch buffer size). A +Inf model
// result clamps to max.
func (p Params) QThPackets(max int) int {
	q := p.QTh()
	if math.IsInf(q, 1) || q > float64(max) {
		return max
	}
	return int(math.Ceil(q))
}

// FCTShort solves Eq. 8: the mean short-flow FCT implied by a given
// switching threshold qth (packets). It returns +Inf when the short
// flows' offered load saturates their allocated paths.
//
// Eq. 8 is a fixed point because lambda depends on FCT_S; substituting
// yields a quadratic in FCT_S which we solve directly:
//
//	FCT = r*mS*X / (2C(FCT*nS*C - mS*X)) + X/C
//
// with nS = n - mL*WL*(t/RTT)/(qth + tC).
func (p Params) FCTShort(qth float64) float64 {
	p = p.withDefaults()
	c := p.capacityPkts()
	x := p.shortSizePkts()
	t := p.Interval.Seconds()
	nS := float64(p.Paths)
	if p.LongFlows > 0 {
		nS -= float64(p.LongFlows) * p.longWindowPkts() * (t / p.RTT.Seconds()) / (qth + t*c)
	}
	if nS <= 0 {
		return math.Inf(1)
	}
	// The empty-shorts special case tests the integer count, not its
	// float64 mirror: an exact float comparison would only be correct by
	// accident of the int→float conversion, and simlint's floateq rule
	// flags it. No epsilon is involved anywhere in this branch — the
	// quadratic below tolerates any ms > 0.
	if p.ShortFlows == 0 {
		return x / c
	}
	ms := float64(p.ShortFlows)
	r := float64(Rounds(p.MeanShortSize, p.MSS))
	// Let F = FCT, T0 = X/C. F = r*ms*x/(2C(F*nS*C - ms*x)) + T0
	// => (F - T0)(F*nS*C - ms*x)*2C = r*ms*x
	// => 2C*nS*C*F^2 - 2C(ms*x + T0*nS*C)F + 2C*T0*ms*x - r*ms*x = 0.
	t0 := x / c
	A := 2 * c * nS * c
	B := -2 * c * (ms*x + t0*nS*c)
	C := 2*c*t0*ms*x - r*ms*x
	disc := B*B - 4*A*C
	if disc < 0 {
		return math.Inf(1)
	}
	f := (-B + math.Sqrt(disc)) / (2 * A)
	if f < t0 {
		return math.Inf(1)
	}
	return f
}
