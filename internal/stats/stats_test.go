package stats

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"tlb/internal/eventsim"
)

func TestOnlineBasics(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.N() != 0 {
		t.Fatal("empty Online not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 || o.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", o.N(), o.Mean())
	}
	// Sample variance of that classic dataset is 32/7.
	if math.Abs(o.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v", o.Var())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("min=%v max=%v", o.Min(), o.Max())
	}
	if math.Abs(o.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std = %v", o.Std())
	}
}

// Welford must match the naive two-pass computation.
func TestOnlineMatchesNaiveProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var o Online
		sum := 0.0
		for _, x := range xs {
			o.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		naiveVar := m2 / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return math.Abs(o.Mean()-mean) < 1e-6*math.Max(1, math.Abs(mean)) &&
			math.Abs(o.Var()-naiveVar) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 {
		t.Fatal("empty sample not zero")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.Percentile(0) != 1 || s.Percentile(100) != 100 {
		t.Fatalf("extremes: %v, %v", s.Percentile(0), s.Percentile(100))
	}
	if p := s.Percentile(50); math.Abs(p-50.5) > 1e-9 {
		t.Fatalf("median = %v, want 50.5", p)
	}
	if p := s.Percentile(99); p < 99 || p > 100 {
		t.Fatalf("p99 = %v", p)
	}
	if s.Mean() != 50.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestSampleUnsortedInsertions(t *testing.T) {
	var s Sample
	for _, x := range []float64{5, 1, 4, 2, 3} {
		s.Add(x)
	}
	if s.Percentile(50) != 3 {
		t.Fatalf("median = %v", s.Percentile(50))
	}
	s.Add(0) // re-sort must trigger
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("min after new add = %v", got)
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if f := s.FractionAtOrBelow(5); f != 0.5 {
		t.Fatalf("F(5) = %v", f)
	}
	if f := s.FractionAtOrBelow(0.5); f != 0 {
		t.Fatalf("F(0.5) = %v", f)
	}
	if f := s.FractionAtOrBelow(10); f != 1 {
		t.Fatalf("F(10) = %v", f)
	}
}

func TestCDFOutput(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	pts := s.CDF(11)
	if len(pts) != 11 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Y != 0 || pts[10].Y != 1 {
		t.Fatalf("CDF endpoints %v %v", pts[0], pts[10])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF not monotone")
		}
	}
	if s2 := (&Sample{}).CDF(5); s2 != nil {
		t.Fatal("empty CDF not nil")
	}
}

// Percentile must be monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := eventsim.NewRNG(1)
	var s Sample
	for i := 0; i < 500; i++ {
		s.Add(rng.Float64() * 100)
	}
	f := func(a, b uint8) bool {
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesFormat(t *testing.T) {
	s := Series{Name: "afct"}
	s.Add(0.1, 2)
	s.Add(0.2, 4)
	out := s.Format()
	if !strings.HasPrefix(out, "# afct\n") {
		t.Fatalf("format: %q", out)
	}
	if !strings.Contains(out, "0.1") || !strings.Contains(out, "4") {
		t.Fatalf("format: %q", out)
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(1.0)
	ts.Add(0.5, 10)
	ts.Add(0.7, 20)
	ts.Add(2.5, 6)
	ts.Add(-1, 99) // ignored

	means := ts.Means()
	if len(means) != 2 {
		t.Fatalf("%d mean points", len(means))
	}
	if means[0].X != 0.5 || means[0].Y != 15 {
		t.Fatalf("bucket 0 mean %v", means[0])
	}
	if means[1].X != 2.5 || means[1].Y != 6 {
		t.Fatalf("bucket 2 mean %v", means[1])
	}

	sums := ts.Sums()
	if len(sums) != 3 {
		t.Fatalf("%d sum points", len(sums))
	}
	if sums[0].Y != 30 || sums[1].Y != 0 || sums[2].Y != 6 {
		t.Fatalf("sums %v", sums)
	}

	rates := ts.Rates()
	if rates[0].Y != 30 {
		t.Fatalf("rate %v with width 1", rates[0].Y)
	}
}

func TestTimeSeriesWidthScaling(t *testing.T) {
	ts := NewTimeSeries(0.5)
	ts.Add(0.1, 100)
	rates := ts.Rates()
	if rates[0].Y != 200 {
		t.Fatalf("rate %v, want 200 (100 per 0.5s)", rates[0].Y)
	}
}

// Regression: int(at/width) on a huge timestamp wraps negative and
// indexed out of range; a merely-large one allocated an absurd slice.
// Both must land in the overflow bucket instead.
func TestTimeSeriesHugeTimestampOverflows(t *testing.T) {
	ts := NewTimeSeries(1.0)
	ts.Add(1e300, 7) // wrapped negative before the fix → panic
	ts.Add(1e9, 3)   // would have allocated a billion buckets
	ts.Add(0.5, 10)  // normal observation still lands in a bucket
	if n, sum := ts.Overflow(); n != 2 || sum != 10 {
		t.Fatalf("overflow n=%d sum=%v, want 2/10", n, sum)
	}
	if len(ts.buckets) != 1 {
		t.Fatalf("%d buckets allocated, want 1", len(ts.buckets))
	}
	means := ts.Means()
	if len(means) != 1 || means[0].Y != 10 {
		t.Fatalf("means %v: overflow must not leak into buckets", means)
	}
}

func TestTimeSeriesBucketCapBoundary(t *testing.T) {
	ts := NewTimeSeries(1.0)
	ts.Add(float64(maxTimeBuckets)-0.5, 1) // last in-range bucket
	ts.Add(float64(maxTimeBuckets), 1)     // first overflow value
	if n, _ := ts.Overflow(); n != 1 {
		t.Fatalf("overflow n=%d, want 1", n)
	}
	if len(ts.buckets) != maxTimeBuckets {
		t.Fatalf("%d buckets, want %d", len(ts.buckets), maxTimeBuckets)
	}
}

func TestTimeSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTimeSeries(0)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 10) // bins [0,10), [10,20), ... [90,100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Add(1000) // overflow
	h.Add(-5)   // clamps to bin 0
	if h.N() != 102 {
		t.Fatalf("n = %d", h.N())
	}
	if q := h.Quantile(0.5); q < 40 || q > 60 {
		t.Fatalf("median bound %v", q)
	}
	if q := h.Quantile(0); q != 10 {
		t.Fatalf("q0 = %v, want first bin edge", q)
	}
	pts := h.CDF()
	if len(pts) == 0 || pts[len(pts)-1].Y > 1.0001 {
		t.Fatalf("CDF %v", pts)
	}
	prev := 0.0
	for _, p := range pts {
		if p.Y < prev {
			t.Fatal("CDF not monotone")
		}
		prev = p.Y
	}
	if h.Mean() == 0 {
		t.Fatal("mean")
	}
}

// Regression: CDF never folded h.overflow into the cumulative count,
// so any overflow mass left the curve ending below 1.0.
func TestHistogramCDFReachesOneWithOverflow(t *testing.T) {
	h := NewHistogram(10, 4) // covers [0, 40)
	h.Add(5)
	h.Add(15)
	h.Add(1000) // overflow
	h.Add(2000) // overflow
	pts := h.CDF()
	if len(pts) != 3 {
		t.Fatalf("CDF %v, want 3 points", pts)
	}
	last := pts[len(pts)-1]
	if last.X != 40 || last.Y != 1.0 {
		t.Fatalf("terminal point %v, want (40, 1)", last)
	}
	if pts[0].Y != 0.25 || pts[1].Y != 0.5 {
		t.Fatalf("prefix points %v", pts[:2])
	}

	// When the last bin is occupied too, the terminal point replaces it
	// rather than duplicating the X.
	h2 := NewHistogram(10, 2)
	h2.Add(15)  // last bin
	h2.Add(100) // overflow
	pts2 := h2.CDF()
	if len(pts2) != 1 || pts2[0].X != 20 || pts2[0].Y != 1.0 {
		t.Fatalf("CDF %v, want single (20, 1)", pts2)
	}

	// No overflow: curve already ends at 1.0 with no extra point.
	h3 := NewHistogram(10, 2)
	h3.Add(5)
	pts3 := h3.CDF()
	if len(pts3) != 1 || pts3[0].Y != 1.0 {
		t.Fatalf("CDF %v", pts3)
	}
}

// The running-sum Mean and Builder-based Format must match the naive
// implementations exactly.
func TestSampleMeanMatchesNaive(t *testing.T) {
	rng := eventsim.NewRNG(7)
	var s Sample
	sum := 0.0
	for i := 0; i < 1000; i++ {
		x := rng.Float64()*1e6 - 5e5
		s.Add(x)
		sum += x
	}
	if got, want := s.Mean(), sum/1000; got != want {
		t.Fatalf("mean %v, want %v", got, want)
	}
	// Percentile sorts xs in place; Mean must be unaffected.
	s.Percentile(50)
	if got, want := s.Mean(), sum/1000; got != want {
		t.Fatalf("mean after sort %v, want %v", got, want)
	}
}

func TestSeriesFormatMatchesNaive(t *testing.T) {
	rng := eventsim.NewRNG(9)
	s := Series{Name: "curve"}
	want := "# curve\n"
	for i := 0; i < 100; i++ {
		x, y := rng.Float64()*10, rng.Float64()*1e9
		s.Add(x, y)
		want += fmt.Sprintf("%-12.6g %.6g\n", x, y)
	}
	if got := s.Format(); got != want {
		t.Fatalf("Format diverged from naive concatenation:\n%q\nvs\n%q", got, want)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(0, 10)
}
