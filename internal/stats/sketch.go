package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSketchAlpha is the relative-error bound the streaming
// experiments use: a reported quantile is within 1% of the true value.
const DefaultSketchAlpha = 0.01

// defaultSketchBuckets caps the bucket map. With alpha = 0.01 (gamma ≈
// 1.0202) 2048 buckets span a dynamic range of e^(2048·ln γ) ≈ 6e17,
// far wider than any FCT distribution; the cap only engages on
// adversarial inputs, collapsing the *lowest* buckets so upper
// quantiles (the p99s the figures report) keep their bound.
const defaultSketchBuckets = 2048

// QuantileSketch is a DDSketch-style streaming quantile estimator with
// a relative-error guarantee: for any quantile q whose true value is x,
// the estimate x̂ satisfies |x̂ - x| <= alpha·x, using O(log(max/min)/
// log(gamma)) memory independent of the observation count.
//
// Values map to geometric buckets: index(x) = ceil(ln x / ln gamma)
// with gamma = (1+alpha)/(1-alpha), estimated back as the bucket
// midpoint 2·gamma^i/(gamma+1). Non-positive values count in a
// dedicated zero bucket (estimated as exactly 0, which FCTs below the
// simulator's time resolution round to anyway).
//
// Sketches with equal alpha merge exactly: bucket counts add, so a
// merge of per-shard sketches equals the single-stream sketch over the
// concatenated observations, bucket for bucket. This is what lets
// RunSweep workers reduce shards without widening the bound.
type QuantileSketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64
	counts  map[int]int64
	zeros   int64
	n       int64
	min     float64
	max     float64
	// maxBuckets bounds len(counts); exceeding it collapses the lowest
	// buckets together, degrading low quantiles only.
	maxBuckets int
	collapsed  bool
}

// NewQuantileSketch creates a sketch with the given relative-error
// bound (0 < alpha < 1).
func NewQuantileSketch(alpha float64) *QuantileSketch {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: sketch alpha %v outside (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{
		alpha:      alpha,
		gamma:      gamma,
		lnGamma:    math.Log(gamma),
		counts:     make(map[int]int64),
		maxBuckets: defaultSketchBuckets,
	}
}

// Alpha returns the sketch's relative-error bound.
func (s *QuantileSketch) Alpha() float64 { return s.alpha }

// N returns the observation count.
func (s *QuantileSketch) N() int64 { return s.n }

// Collapsed reports whether the bucket cap ever forced low buckets to
// merge (low quantiles may exceed the bound afterwards; high ones keep
// it).
func (s *QuantileSketch) Collapsed() bool { return s.collapsed }

func (s *QuantileSketch) index(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnGamma))
}

func (s *QuantileSketch) value(i int) float64 {
	// Bucket i covers (gamma^(i-1), gamma^i]; the midpoint in relative
	// terms is 2·gamma^i/(gamma+1), within alpha of everything in it.
	return 2 * math.Exp(float64(i)*s.lnGamma) / (s.gamma + 1)
}

// Add folds one observation in. NaN is ignored; non-positive values
// (and +Inf's negation) count in the zero bucket.
func (s *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	if x <= 0 {
		s.zeros++
		return
	}
	s.counts[s.index(x)]++
	s.collapse()
}

// Merge folds another sketch into this one. Both must share the same
// alpha; merge is exact (bucket counts add).
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o == nil || o.n == 0 {
		return
	}
	if math.Abs(s.alpha-o.alpha) > 1e-12 {
		panic(fmt.Sprintf("stats: merging sketches with different alpha (%v vs %v)", s.alpha, o.alpha))
	}
	if s.n == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.n += o.n
	s.zeros += o.zeros
	s.collapsed = s.collapsed || o.collapsed
	for _, k := range o.sortedKeys() {
		s.counts[k] += o.counts[k]
	}
	s.collapse()
}

func (s *QuantileSketch) sortedKeys() []int {
	keys := make([]int, 0, len(s.counts))
	//simlint:allow maporder(keys are collected here and sorted below before any use)
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// collapse merges the lowest buckets whenever the cap is exceeded,
// preserving upper-quantile accuracy.
func (s *QuantileSketch) collapse() {
	if len(s.counts) <= s.maxBuckets {
		return
	}
	keys := s.sortedKeys()
	// Fold everything below the cut into the first retained bucket.
	cut := len(keys) - s.maxBuckets
	keep := keys[cut]
	for _, k := range keys[:cut] {
		s.counts[keep] += s.counts[k]
		delete(s.counts, k)
	}
	s.collapsed = true
}

// Quantile returns the estimated q-quantile (q in [0,1]); 0 when
// empty. The rank convention matches Sample.Percentile: rank q·(n-1)
// over the sorted observations.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.n-1))
	if rank >= s.n {
		rank = s.n - 1
	}
	if rank < s.zeros {
		// All zero-bucket values are <= 0; estimate with the smallest
		// observation (exact when everything non-positive is 0).
		if s.min < 0 {
			return s.min
		}
		return 0
	}
	acc := s.zeros
	for _, k := range s.sortedKeys() {
		acc += s.counts[k]
		if acc > rank {
			return s.clamp(s.value(k))
		}
	}
	return s.clamp(s.max)
}

// Percentile is Quantile with p in [0,100], mirroring Sample.
func (s *QuantileSketch) Percentile(p float64) float64 {
	return s.Quantile(p / 100)
}

// clamp keeps estimates inside the observed range: bucket midpoints
// can stick out past min/max by up to alpha, and the observed extremes
// are always the better answer there.
func (s *QuantileSketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Min returns the smallest observation (0 when empty).
func (s *QuantileSketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *QuantileSketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}
