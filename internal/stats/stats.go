// Package stats provides the small statistics toolkit the experiments
// reduce their measurements with: streaming mean/variance, percentile
// and CDF estimation over collected samples, time-bucketed series for
// "instantaneous" plots, and interval throughput meters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Online accumulates count/mean/variance in one pass (Welford).
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Merge folds another accumulator into this one (Chan et al.'s
// parallel variance formula), so per-shard Online stats reduce exactly
// as if the shards had been one stream.
func (o *Online) Merge(p *Online) {
	if p.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *p
		return
	}
	n := o.n + p.n
	d := p.mean - o.mean
	o.m2 += p.m2 + d*d*float64(o.n)*float64(p.n)/float64(n)
	o.mean += d * float64(p.n) / float64(n)
	if p.min < o.min {
		o.min = p.min
	}
	if p.max > o.max {
		o.max = p.max
	}
	o.n = n
}

// N returns the observation count.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Var returns the unbiased sample variance (0 with <2 observations).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the sample standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Var()) }

// Min returns the smallest observation (0 when empty).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the largest observation (0 when empty).
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.max
}

// Sample collects raw observations for percentile/CDF queries. It
// sorts lazily and re-sorts only after new data arrives.
type Sample struct {
	xs     []float64
	sum    float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 when empty). The sum accumulates
// at Add time (insertion order), so Mean is O(1) per call instead of a
// re-scan — the re-scan made every figure's AFCT render O(n²) at large
// flow counts.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation between order statistics; 0 when empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.xs) {
		return s.xs[len(s.xs)-1]
	}
	// Interpolate in difference form and clamp to the bracketing
	// samples: the two-product form can round one ulp outside the
	// bracket, leaking values beyond the observed range.
	v := s.xs[lo] + frac*(s.xs[lo+1]-s.xs[lo])
	if v < s.xs[lo] {
		v = s.xs[lo]
	}
	if v > s.xs[lo+1] {
		v = s.xs[lo+1]
	}
	return v
}

// CDF returns (value, cumulative fraction) pairs at the given number of
// evenly spaced quantiles, suitable for plotting.
func (s *Sample) CDF(points int) []Point {
	if len(s.xs) == 0 || points < 2 {
		return nil
	}
	s.ensureSorted()
	out := make([]Point, 0, points)
	for i := 0; i < points; i++ {
		q := float64(i) / float64(points-1)
		idx := int(q * float64(len(s.xs)-1))
		out = append(out, Point{X: s.xs[idx], Y: q})
	}
	return out
}

// FractionAtOrBelow returns the empirical CDF evaluated at x.
func (s *Sample) FractionAtOrBelow(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	i := sort.SearchFloat64s(s.xs, math.Nextafter(x, math.MaxFloat64))
	return float64(i) / float64(len(s.xs))
}

// Point is one (x, y) plot coordinate.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points — one curve of one figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Format renders the series as aligned "x y" rows for terminal output.
// A strings.Builder keeps rendering linear in the point count; the
// previous += concatenation re-copied the whole prefix per row, which
// is quadratic across a large figure's render path.
func (s *Series) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-12.6g %.6g\n", p.X, p.Y)
	}
	return b.String()
}

// TimeSeries buckets observations by time for "instantaneous" plots
// (Fig. 8/9): each bucket keeps the count and sum of observations
// falling in [i*width, (i+1)*width).
type TimeSeries struct {
	width   float64
	buckets []bucket
	// Observations past maxTimeBuckets*width land here instead of
	// growing the bucket slice without bound (or, worse, wrapping the
	// index negative on float→int conversion).
	overflowN   int64
	overflowSum float64
}

// maxTimeBuckets caps the bucket slice: at the default widths used by
// the figures (1–10ms) this covers hours of simulated time while
// bounding memory at ~16 MB even for adversarial timestamps.
const maxTimeBuckets = 1 << 20

type bucket struct {
	n   int64
	sum float64
}

// NewTimeSeries creates a series with the given bucket width (in
// whatever unit the caller keys by, typically seconds).
func NewTimeSeries(width float64) *TimeSeries {
	if width <= 0 {
		panic("stats: non-positive bucket width")
	}
	return &TimeSeries{width: width}
}

// Add records an observation at the given time. Observations at or
// beyond maxTimeBuckets*width count into an overflow bucket (see
// Overflow) and are excluded from Means/Sums/Rates.
func (t *TimeSeries) Add(at, value float64) {
	if at < 0 {
		return
	}
	// Compare in float space before converting: int(huge/width) wraps
	// negative and would index out of range, and a merely-large quotient
	// would allocate an absurd bucket slice.
	if at/t.width >= float64(maxTimeBuckets) {
		t.overflowN++
		t.overflowSum += value
		return
	}
	i := int(at / t.width)
	for len(t.buckets) <= i {
		t.buckets = append(t.buckets, bucket{})
	}
	t.buckets[i].n++
	t.buckets[i].sum += value
}

// Overflow returns the count and sum of observations that fell beyond
// the bucket cap.
func (t *TimeSeries) Overflow() (n int64, sum float64) {
	return t.overflowN, t.overflowSum
}

// Means returns one point per non-empty bucket: (bucket midpoint,
// bucket mean).
func (t *TimeSeries) Means() []Point {
	var out []Point
	for i, b := range t.buckets {
		if b.n == 0 {
			continue
		}
		out = append(out, Point{
			X: (float64(i) + 0.5) * t.width,
			Y: b.sum / float64(b.n),
		})
	}
	return out
}

// Sums returns one point per bucket (including empty ones up to the
// last occupied): (bucket midpoint, bucket sum). Useful for rates:
// sum of bytes per bucket / width = throughput.
func (t *TimeSeries) Sums() []Point {
	out := make([]Point, len(t.buckets))
	for i, b := range t.buckets {
		out[i] = Point{X: (float64(i) + 0.5) * t.width, Y: b.sum}
	}
	return out
}

// Rates divides bucket sums by the bucket width, turning byte counts
// into throughput curves.
func (t *TimeSeries) Rates() []Point {
	out := t.Sums()
	for i := range out {
		out[i].Y /= t.width
	}
	return out
}

// Histogram counts observations in fixed-width bins, for queue-length
// and delay distributions where retaining raw samples would be too
// costly.
type Histogram struct {
	width    float64
	bins     []int64
	n        int64
	overflow int64
	sum      float64
}

// NewHistogram creates a histogram with the given bin width and number
// of bins; observations beyond bins*width are counted in an overflow
// bucket.
func NewHistogram(width float64, bins int) *Histogram {
	if width <= 0 || bins <= 0 {
		panic("stats: histogram needs positive width and bins")
	}
	return &Histogram{width: width, bins: make([]int64, bins)}
}

// Add records one observation (negative values clamp to bin 0).
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	if x < 0 {
		h.bins[0]++
		return
	}
	// Compare in float space: converting a huge quotient to int is
	// undefined and can wrap negative, indexing out of range.
	if x/h.width >= float64(len(h.bins)) {
		h.overflow++
		return
	}
	h.bins[int(x/h.width)]++
}

// N returns the observation count.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from
// the binned counts; observations in the overflow bucket return +Inf's
// stand-in, the histogram's upper edge.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var acc int64
	for i, c := range h.bins {
		acc += c
		if acc > target {
			return float64(i+1) * h.width
		}
	}
	return float64(len(h.bins)) * h.width
}

// CDF returns (upper bin edge, cumulative fraction) points for
// non-empty prefixes of the histogram. Overflow mass is folded into a
// terminal point at the histogram's upper edge so the curve always
// ends at exactly 1.0.
func (h *Histogram) CDF() []Point {
	if h.n == 0 {
		return nil
	}
	var out []Point
	var acc int64
	lastBinEmitted := false
	for i, c := range h.bins {
		acc += c
		if c > 0 {
			out = append(out, Point{X: float64(i+1) * h.width, Y: float64(acc) / float64(h.n)})
			lastBinEmitted = i == len(h.bins)-1
		}
	}
	if h.overflow > 0 {
		// The overflow bucket has no upper edge of its own; pin its mass
		// to the histogram's upper edge, replacing the last bin's point
		// if that bin already emitted at the same X.
		p := Point{X: float64(len(h.bins)) * h.width, Y: 1.0}
		if lastBinEmitted {
			out[len(out)-1] = p
		} else {
			out = append(out, p)
		}
	}
	return out
}
