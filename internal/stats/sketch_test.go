package stats

import (
	"math"
	"sort"
	"testing"

	"tlb/internal/eventsim"
)

// bracketBound checks est against the exact quantile's bracketing
// order statistics: any estimator honoring a relative bound alpha must
// land in [lo·(1-alpha), hi·(1+alpha)] for positive data.
func bracketBound(t *testing.T, xs []float64, q, est, alpha float64) {
	t.Helper()
	rank := q * float64(len(xs)-1)
	lo := xs[int(rank)]
	hi := xs[int(math.Ceil(rank))]
	if est < lo*(1-alpha)-1e-12 || est > hi*(1+alpha)+1e-12 {
		t.Fatalf("q=%v: estimate %v outside [%v, %v]·(1±%v)", q, est, lo, hi, alpha)
	}
}

func TestSketchAccuracyLogUniform(t *testing.T) {
	rng := eventsim.NewRNG(11)
	s := NewQuantileSketch(DefaultSketchAlpha)
	xs := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-uniform over [1e-6, 1e2] seconds — the FCT range the
		// figures span.
		x := math.Exp(math.Log(1e-6) + rng.Float64()*math.Log(1e8))
		s.Add(x)
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
		bracketBound(t, xs, q, s.Quantile(q), s.Alpha())
	}
	if s.Min() != xs[0] || s.Max() != xs[len(xs)-1] {
		t.Fatalf("min/max %v/%v, want %v/%v", s.Min(), s.Max(), xs[0], xs[len(xs)-1])
	}
	if s.Collapsed() {
		t.Fatal("10k log-uniform values must not hit the bucket cap")
	}
}

func TestSketchMergeMatchesSingleStream(t *testing.T) {
	rng := eventsim.NewRNG(13)
	single := NewQuantileSketch(DefaultSketchAlpha)
	shards := make([]*QuantileSketch, 4)
	for i := range shards {
		shards[i] = NewQuantileSketch(DefaultSketchAlpha)
	}
	for i := 0; i < 5000; i++ {
		x := rng.ExpFloat64() * 1e-3
		single.Add(x)
		shards[i%4].Add(x)
	}
	merged := NewQuantileSketch(DefaultSketchAlpha)
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if merged.N() != single.N() {
		t.Fatalf("merged n=%d, single n=%d", merged.N(), single.N())
	}
	// Without collapse, merge is exact: same buckets, same counts, so
	// identical quantiles — not merely within-bound.
	for q := 0.0; q <= 1.0; q += 0.01 {
		if m, s := merged.Quantile(q), single.Quantile(q); m != s {
			t.Fatalf("q=%v: merged %v != single %v", q, m, s)
		}
	}
}

func TestSketchZerosAndNegatives(t *testing.T) {
	s := NewQuantileSketch(0.01)
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty sketch quantile not 0")
	}
	s.Add(0)
	s.Add(0)
	s.Add(0)
	if s.Quantile(0.5) != 0 || s.Quantile(1) != 0 {
		t.Fatalf("all-zero quantiles %v %v", s.Quantile(0.5), s.Quantile(1))
	}
	s.Add(-2.5)
	if got := s.Quantile(0); got != -2.5 {
		t.Fatalf("q0 with negative = %v", got)
	}
	s.Add(10)
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("q1 = %v", got)
	}
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	if s.N() != 5 {
		t.Fatalf("non-finite values must be ignored, n=%d", s.N())
	}
}

func TestSketchCollapseKeepsUpperQuantiles(t *testing.T) {
	rng := eventsim.NewRNG(17)
	s := NewQuantileSketch(DefaultSketchAlpha)
	// 512 buckets cover a gamma^512 ≈ 2.8e4 value ratio; the data spans
	// 1e14, so collapse must trigger. Retained buckets then cover the
	// top ~30% of the log-uniform mass, so quantiles from 0.9 up must
	// keep the bound while lower ones are sacrificed.
	s.maxBuckets = 512
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		x := math.Exp(math.Log(1e-9) + rng.Float64()*math.Log(1e14))
		s.Add(x)
		xs = append(xs, x)
	}
	if !s.Collapsed() {
		t.Fatal("collapse must have triggered")
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.9, 0.95, 0.99, 0.999, 1} {
		bracketBound(t, xs, q, s.Quantile(q), s.Alpha())
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.02 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("collapsed sketch not monotone at q=%v", q)
		}
		prev = v
	}
}

func TestSketchMergeAlphaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a := NewQuantileSketch(0.01)
	a.Add(1)
	b := NewQuantileSketch(0.02)
	b.Add(2)
	a.Merge(b)
}

func TestSketchBadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewQuantileSketch(1.5)
}

func TestOnlineMergeMatchesSingleStream(t *testing.T) {
	rng := eventsim.NewRNG(19)
	var single Online
	parts := make([]Online, 3)
	for i := 0; i < 3000; i++ {
		x := rng.Float64()*200 - 100
		single.Add(x)
		parts[i%3].Add(x)
	}
	var merged Online
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.N() != single.N() {
		t.Fatalf("n %d vs %d", merged.N(), single.N())
	}
	if math.Abs(merged.Mean()-single.Mean()) > 1e-9 {
		t.Fatalf("mean %v vs %v", merged.Mean(), single.Mean())
	}
	if math.Abs(merged.Var()-single.Var()) > 1e-6*math.Max(1, single.Var()) {
		t.Fatalf("var %v vs %v", merged.Var(), single.Var())
	}
	if merged.Min() != single.Min() || merged.Max() != single.Max() {
		t.Fatalf("min/max %v/%v vs %v/%v", merged.Min(), merged.Max(), single.Min(), single.Max())
	}
	// Merging into an empty accumulator copies; merging empty is a no-op.
	var empty, copyTo Online
	copyTo.Merge(&single)
	if copyTo.Mean() != single.Mean() || copyTo.N() != single.N() {
		t.Fatal("merge into empty must copy")
	}
	copyTo.Merge(&empty)
	if copyTo.N() != single.N() {
		t.Fatal("merging empty must be a no-op")
	}
}

func TestFlowAggMerge(t *testing.T) {
	var a, b FlowAgg
	a.Count, a.Completed, a.BytesAcked = 10, 8, 1000
	a.DeadlineTotal, a.DeadlineMissed = 4, 1
	a.GoodputSum, a.GoodputN = 8e9, 8
	a.Retransmits, a.Timeouts = 3, 1
	a.PacketsRecv, a.OutOfOrder, a.DupAcksSent = 500, 5, 2
	a.SumQueueDelay, a.DelaySamples = 12345, 500
	a.AddFCT(0.010)
	a.AddFCT(0.020)

	b.Count, b.Completed, b.BytesAcked = 5, 5, 600
	b.DeadlineTotal, b.DeadlineMissed = 2, 2
	b.GoodputSum, b.GoodputN = 5e9, 5
	b.AddFCT(0.030)

	a.Merge(&b)
	if a.Count != 15 || a.Completed != 13 || a.BytesAcked != 1600 {
		t.Fatalf("counters %+v", a)
	}
	if a.DeadlineTotal != 6 || a.DeadlineMissed != 3 {
		t.Fatalf("deadlines %+v", a)
	}
	if got := a.MissRatio(); got != 0.5 {
		t.Fatalf("miss ratio %v", got)
	}
	if got := a.MeanGoodput(); got != 1e9 {
		t.Fatalf("mean goodput %v", got)
	}
	if a.FCT.N() != 3 || math.Abs(a.FCT.Mean()-0.020) > 1e-12 {
		t.Fatalf("fct n=%d mean=%v", a.FCT.N(), a.FCT.Mean())
	}
	if a.Sketch.N() != 3 {
		t.Fatalf("sketch n=%d", a.Sketch.N())
	}
	if p := a.Sketch.Quantile(1); math.Abs(p-0.030) > 0.030*DefaultSketchAlpha {
		t.Fatalf("sketch max quantile %v", p)
	}

	// Merging a sketch-bearing agg into a zero one initializes it.
	var c FlowAgg
	c.Merge(&a)
	if c.Sketch == nil || c.Sketch.N() != 3 {
		t.Fatal("merge into zero agg must carry the sketch")
	}
	if (&FlowAgg{}).MissRatio() != 0 || (&FlowAgg{}).MeanGoodput() != 0 {
		t.Fatal("zero agg ratios must be 0")
	}
}
