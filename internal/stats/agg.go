package stats

// FlowAgg is a fixed-size accumulator for one class of flows: the
// streaming counterpart of retaining a []FlowStats and reducing it
// later. Every figure-level metric the Result accessors compute from
// raw records is answerable from these fields — mean/min/max FCT via
// Online, FCT percentiles via the sketch (within its alpha bound),
// and the rest from plain counters. Memory is O(1) per flow observed.
//
// Time-valued sums (FCT seconds aside) stay in the caller's native
// integer tick domain so streamed counters equal the record-based
// reductions exactly, not just approximately.
type FlowAgg struct {
	// Count is every flow observed; Completed those that finished.
	Count     int64
	Completed int64

	// FCT aggregates completion times in seconds, completed flows only.
	FCT Online
	// Sketch estimates FCT percentiles, completed flows only. Lazily
	// created on first AddFCT so a zero FlowAgg is usable.
	Sketch *QuantileSketch

	// DeadlineTotal counts flows that carried a deadline;
	// DeadlineMissed those that finished late or were unfinished past
	// it at run end.
	DeadlineTotal  int64
	DeadlineMissed int64

	// GoodputSum accumulates per-flow goodput (bits/second over the
	// flow's active time) for GoodputN flows with positive duration and
	// acked bytes, matching Result.Goodput's per-flow average.
	GoodputSum float64
	GoodputN   int64

	// BytesAcked sums cumulatively acknowledged payload bytes.
	BytesAcked int64

	// Sender/receiver counters, summed over the class.
	Retransmits int64
	Timeouts    int64
	PacketsRecv int64
	OutOfOrder  int64
	DupAcksSent int64

	// SumQueueDelay is total queueing delay in native time ticks;
	// DelaySamples the packet count it averages over.
	SumQueueDelay int64
	DelaySamples  int64
}

// AddFCT records one completed flow's completion time in seconds,
// creating the sketch on first use.
func (a *FlowAgg) AddFCT(seconds float64) {
	if a.Sketch == nil {
		a.Sketch = NewQuantileSketch(DefaultSketchAlpha)
	}
	a.FCT.Add(seconds)
	a.Sketch.Add(seconds)
}

// Merge folds another accumulator into this one; merged counters are
// exact and the sketch merge preserves its bound, so RunSweep shards
// reduce to the same answers as a single-threaded run.
func (a *FlowAgg) Merge(b *FlowAgg) {
	a.Count += b.Count
	a.Completed += b.Completed
	a.FCT.Merge(&b.FCT)
	if b.Sketch != nil {
		if a.Sketch == nil {
			a.Sketch = NewQuantileSketch(b.Sketch.Alpha())
		}
		a.Sketch.Merge(b.Sketch)
	}
	a.DeadlineTotal += b.DeadlineTotal
	a.DeadlineMissed += b.DeadlineMissed
	a.GoodputSum += b.GoodputSum
	a.GoodputN += b.GoodputN
	a.BytesAcked += b.BytesAcked
	a.Retransmits += b.Retransmits
	a.Timeouts += b.Timeouts
	a.PacketsRecv += b.PacketsRecv
	a.OutOfOrder += b.OutOfOrder
	a.DupAcksSent += b.DupAcksSent
	a.SumQueueDelay += b.SumQueueDelay
	a.DelaySamples += b.DelaySamples
}

// MissRatio returns DeadlineMissed/DeadlineTotal (0 when no flow
// carried a deadline).
func (a *FlowAgg) MissRatio() float64 {
	if a.DeadlineTotal == 0 {
		return 0
	}
	return float64(a.DeadlineMissed) / float64(a.DeadlineTotal)
}

// MeanGoodput returns the per-flow goodput average in bits/second.
func (a *FlowAgg) MeanGoodput() float64 {
	if a.GoodputN == 0 {
		return 0
	}
	return a.GoodputSum / float64(a.GoodputN)
}
