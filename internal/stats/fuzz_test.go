package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzQuantiles feeds arbitrary float64 samples (8 input bytes each,
// non-finite values skipped) to the two quantile estimators and checks
// the estimator contracts the experiments rely on:
//
//   - Sample.Percentile(p) lies within [min, max] of the data and is
//     monotone non-decreasing in p;
//   - Histogram.Quantile(q) is monotone non-decreasing in q and bounded
//     by the histogram's value range (0, bins*width].
func FuzzQuantiles(f *testing.F) {
	seed := func(vals ...float64) []byte {
		var b []byte
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(1.0, 2.5, -3.0, 2.5))
	f.Add(seed(0.0))
	f.Add(seed(1e-12, 1e12, -1e12, 7.25, 7.25, 7.25))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sample
		h := NewHistogram(0.5, 64)
		lo, hi := math.Inf(1), math.Inf(-1)
		for len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
			h.Add(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if s.N() == 0 {
			return
		}

		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			q := s.Percentile(p)
			if q < lo || q > hi {
				t.Fatalf("Percentile(%v) = %v outside data range [%v, %v]", p, q, lo, hi)
			}
			if q < prev {
				t.Fatalf("Percentile not monotone: p=%v gave %v after %v", p, q, prev)
			}
			prev = q
		}
		if got := s.Percentile(0); got != lo {
			t.Fatalf("Percentile(0) = %v, want min %v", got, lo)
		}
		if got := s.Percentile(100); got != hi {
			t.Fatalf("Percentile(100) = %v, want max %v", got, hi)
		}

		prevH := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prevH {
				t.Fatalf("Histogram.Quantile not monotone: q=%v gave %v after %v", q, v, prevH)
			}
			if v <= 0 || v > 0.5*64 {
				t.Fatalf("Histogram.Quantile(%v) = %v outside (0, %v]", q, v, 0.5*64)
			}
			prevH = v
		}
	})
}
