package stats

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// FuzzQuantiles feeds arbitrary float64 samples (8 input bytes each,
// non-finite values skipped) to the two quantile estimators and checks
// the estimator contracts the experiments rely on:
//
//   - Sample.Percentile(p) lies within [min, max] of the data and is
//     monotone non-decreasing in p;
//   - Histogram.Quantile(q) is monotone non-decreasing in q and bounded
//     by the histogram's value range (0, bins*width].
//
// FuzzQuantileSketch drives the quantile sketch through arbitrary
// add/merge interleavings: each 9-byte chunk is a shard selector byte
// plus a float64 observation (non-finite skipped). The same stream
// feeds one single sketch and N per-shard sketches merged afterwards,
// checking the contracts the streaming stats mode relies on:
//
//   - no panics on any interleaving;
//   - merged-shards count equals the single-stream count, and (absent
//     collapse) every quantile matches the single stream exactly;
//   - for positive data, quantiles stay within the documented alpha
//     bound of the exact bracketing order statistics;
//   - Quantile is monotone non-decreasing in q and inside [min, max].
func FuzzQuantileSketch(f *testing.F) {
	seed := func(vals ...float64) []byte {
		var b []byte
		for i, v := range vals {
			b = append(b, byte(i))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(1.0, 2.5, 0.001, 2.5))
	f.Add(seed(0.0, -1.0, 1e300))
	f.Add(seed(1e-12, 1e12, 7.25, 7.25, 7.25, 1e-300))
	f.Fuzz(func(t *testing.T, data []byte) {
		const alpha = DefaultSketchAlpha
		single := NewQuantileSketch(alpha)
		shards := make([]*QuantileSketch, 4)
		for i := range shards {
			shards[i] = NewQuantileSketch(alpha)
		}
		var xs []float64
		allPositive := true
		for len(data) >= 9 {
			shard := int(data[0]) % len(shards)
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[1:9]))
			data = data[9:]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				single.Add(v) // must be ignored, not panic
				continue
			}
			single.Add(v)
			shards[shard].Add(v)
			xs = append(xs, v)
			if v <= 0 {
				allPositive = false
			}
		}
		merged := NewQuantileSketch(alpha)
		for _, sh := range shards {
			merged.Merge(sh)
		}
		if merged.N() != single.N() {
			t.Fatalf("merged n=%d, single n=%d", merged.N(), single.N())
		}
		if len(xs) == 0 {
			if single.Quantile(0.5) != 0 {
				t.Fatal("empty sketch quantile not 0")
			}
			return
		}
		sort.Float64s(xs)
		lo, hi := xs[0], xs[len(xs)-1]
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			est := single.Quantile(q)
			if est < prev {
				t.Fatalf("Quantile not monotone: q=%v gave %v after %v", q, est, prev)
			}
			prev = est
			if est < lo || est > hi {
				t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, est, lo, hi)
			}
			if !single.Collapsed() {
				if m := merged.Quantile(q); m != est {
					t.Fatalf("q=%v: merged %v != single %v", q, m, est)
				}
			}
			if allPositive && !single.Collapsed() {
				rank := q * float64(len(xs)-1)
				bLo := xs[int(rank)]
				bHi := xs[int(math.Ceil(rank))]
				if est < bLo*(1-alpha)-1e-12 || est > bHi*(1+alpha)+1e-12 {
					t.Fatalf("q=%v: %v outside [%v, %v]·(1±%v)", q, est, bLo, bHi, alpha)
				}
			}
		}
	})
}

func FuzzQuantiles(f *testing.F) {
	seed := func(vals ...float64) []byte {
		var b []byte
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(1.0, 2.5, -3.0, 2.5))
	f.Add(seed(0.0))
	f.Add(seed(1e-12, 1e12, -1e12, 7.25, 7.25, 7.25))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Sample
		h := NewHistogram(0.5, 64)
		lo, hi := math.Inf(1), math.Inf(-1)
		for len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
			h.Add(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if s.N() == 0 {
			return
		}

		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			q := s.Percentile(p)
			if q < lo || q > hi {
				t.Fatalf("Percentile(%v) = %v outside data range [%v, %v]", p, q, lo, hi)
			}
			if q < prev {
				t.Fatalf("Percentile not monotone: p=%v gave %v after %v", p, q, prev)
			}
			prev = q
		}
		if got := s.Percentile(0); got != lo {
			t.Fatalf("Percentile(0) = %v, want min %v", got, lo)
		}
		if got := s.Percentile(100); got != hi {
			t.Fatalf("Percentile(100) = %v, want max %v", got, hi)
		}

		prevH := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prevH {
				t.Fatalf("Histogram.Quantile not monotone: q=%v gave %v after %v", q, v, prevH)
			}
			if v <= 0 || v > 0.5*64 {
				t.Fatalf("Histogram.Quantile(%v) = %v outside (0, %v]", q, v, 0.5*64)
			}
			prevH = v
		}
	})
}
