package workload

import (
	"fmt"

	"tlb/internal/eventsim"
	"tlb/internal/units"
)

// IncastConfig models the partition/aggregate pattern of the OLDI
// applications the paper's introduction motivates (web search, social
// networking): an aggregator fans a query out and all workers answer
// at once, so bursts of short response flows converge on one receiver.
// It is the classic stress test for the destination side of a fabric.
type IncastConfig struct {
	// Aggregator is the receiving host.
	Aggregator int
	// Workers are the responding hosts (the aggregator is skipped if
	// it appears here).
	Workers []int
	// ResponseSize samples each worker's answer (often fixed, e.g.
	// 32 KB per worker).
	ResponseSize SizeDist
	// Rounds is how many query rounds to generate.
	Rounds int
	// RoundInterval separates consecutive rounds (think one query per
	// interval).
	RoundInterval units.Time
	// Jitter staggers the responses within a round (server think-time
	// variance); 0 makes the burst perfectly synchronized.
	Jitter units.Time
	// Deadlines assigns per-response deadlines.
	Deadlines DeadlineDist
}

// Generate materializes the incast rounds starting at start.
func (c IncastConfig) Generate(rng *eventsim.RNG, start units.Time) ([]Flow, error) {
	if len(c.Workers) == 0 {
		return nil, fmt.Errorf("workload: incast needs workers")
	}
	if c.ResponseSize == nil {
		return nil, fmt.Errorf("workload: incast needs a response size distribution")
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.RoundInterval <= 0 {
		c.RoundInterval = 10 * units.Millisecond
	}
	var flows []Flow
	for r := 0; r < c.Rounds; r++ {
		at := start + units.Time(r)*c.RoundInterval
		for _, w := range c.Workers {
			if w == c.Aggregator {
				continue
			}
			t := at
			if c.Jitter > 0 {
				t += units.Time(rng.Intn(int(c.Jitter) + 1))
			}
			size := c.ResponseSize.Sample(rng)
			f := Flow{Src: w, Dst: c.Aggregator, Size: size, Start: t}
			if d := c.Deadlines.Sample(rng, size); d > 0 {
				f.Deadline = t + d
			}
			flows = append(flows, f)
		}
	}
	return flows, nil
}
