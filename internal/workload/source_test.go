package workload

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/units"
)

func testPoissonConfig() PoissonConfig {
	return PoissonConfig{
		Hosts:         16,
		Sizes:         Uniform{MinSize: 4 * units.KB, MaxSize: 64 * units.KB},
		Load:          0.5,
		HostBandwidth: 10 * units.Gbps,
		Deadlines: DeadlineDist{
			Min:       5 * units.Millisecond,
			Max:       25 * units.Millisecond,
			OnlyBelow: 100 * units.KB,
		},
	}
}

// The lazy source and the eager Generate must consume the RNG
// identically: same seed, same flows, flow for flow.
func TestPoissonSourceMatchesGenerate(t *testing.T) {
	cfg := testPoissonConfig()
	want, err := cfg.Generate(eventsim.NewRNG(3), 500, 1*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	src, err := cfg.Source(eventsim.NewRNG(3), 500, 1*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(src)
	if len(got) != len(want) {
		t.Fatalf("%d flows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flow %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// Exhausted source keeps returning false.
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source yielded a flow")
	}
}

func TestPoissonSourceStartsNonDecreasing(t *testing.T) {
	src, err := testPoissonConfig().Source(eventsim.NewRNG(5), 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	var prev units.Time
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		if f.Start < prev {
			t.Fatalf("start went backwards: %v after %v", f.Start, prev)
		}
		prev = f.Start
	}
}

func TestPoissonSourceValidation(t *testing.T) {
	bad := testPoissonConfig()
	bad.Hosts = 1
	if _, err := bad.Source(eventsim.NewRNG(1), 10, 0); err == nil {
		t.Fatal("no error for 1 host")
	}
	bad = testPoissonConfig()
	bad.Load = 0
	if _, err := bad.Source(eventsim.NewRNG(1), 10, 0); err == nil {
		t.Fatal("no error for zero load")
	}
}

func TestInterPodSourceMatchesGenerate(t *testing.T) {
	cfg := InterPodConfig{
		Hosts:             64,
		PerPod:            16,
		Flows:             400,
		Sizes:             Uniform{MinSize: 4 * units.KB, MaxSize: 64 * units.KB},
		MaxGap:            20 * units.Microsecond,
		DeadlineBase:      5 * units.Millisecond,
		DeadlineJitter:    20 * units.Millisecond,
		DeadlineOnlyBelow: 100 * units.KB,
	}
	want, err := cfg.Generate(eventsim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 400 {
		t.Fatalf("%d flows", len(want))
	}
	src, err := cfg.Source(eventsim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		f, ok := src.Next()
		if !ok {
			if i != len(want) {
				t.Fatalf("source ended at %d, want %d", i, len(want))
			}
			break
		}
		if f != want[i] {
			t.Fatalf("flow %d: %+v != %+v", i, f, want[i])
		}
		if f.Src/cfg.PerPod == f.Dst/cfg.PerPod {
			t.Fatalf("flow %d not cross-pod: %d -> %d", i, f.Src, f.Dst)
		}
		if f.Deadline == 0 && f.Size <= cfg.DeadlineOnlyBelow {
			t.Fatalf("flow %d below threshold lacks deadline", i)
		}
	}
}

func TestInterPodValidation(t *testing.T) {
	base := InterPodConfig{Hosts: 64, PerPod: 16, Flows: 10, Sizes: Fixed{Size: units.KB}, MaxGap: units.Microsecond}
	for _, mod := range []func(*InterPodConfig){
		func(c *InterPodConfig) { c.Flows = 0 },
		func(c *InterPodConfig) { c.PerPod = 0 },
		func(c *InterPodConfig) { c.Hosts = 16 }, // single pod
		func(c *InterPodConfig) { c.MaxGap = 0 },
	} {
		c := base
		mod(&c)
		if _, err := c.Source(eventsim.NewRNG(1)); err == nil {
			t.Fatalf("no error for %+v", c)
		}
	}
	if _, err := base.Source(eventsim.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSourceRoundTrip(t *testing.T) {
	flows := []Flow{
		{Src: 0, Dst: 1, Size: units.KB, Start: 0},
		{Src: 1, Dst: 2, Size: 2 * units.KB, Start: units.Microsecond},
	}
	got := Collect(NewSliceSource(flows))
	if len(got) != 2 || got[0] != flows[0] || got[1] != flows[1] {
		t.Fatalf("round trip %+v", got)
	}
	if got := Collect(NewSliceSource(nil)); got != nil {
		t.Fatalf("empty source collected %+v", got)
	}
}

func TestOverrideDeadlines(t *testing.T) {
	flows := []Flow{
		{Src: 0, Dst: 1, Size: 10 * units.KB, Start: units.Millisecond, Deadline: 99 * units.Millisecond},
		{Src: 1, Dst: 2, Size: 500 * units.KB, Start: 2 * units.Millisecond, Deadline: 99 * units.Millisecond},
	}
	src := OverrideDeadlines(NewSliceSource(flows), 5*units.Millisecond, 100*units.KB)
	got := Collect(src)
	if got[0].Deadline != flows[0].Start+5*units.Millisecond {
		t.Fatalf("small flow deadline %v", got[0].Deadline)
	}
	if got[1].Deadline != 0 {
		t.Fatalf("large flow deadline %v, want cleared", got[1].Deadline)
	}
	// onlyBelow == 0 applies to everything.
	src = OverrideDeadlines(NewSliceSource(flows), 5*units.Millisecond, 0)
	got = Collect(src)
	if got[1].Deadline != flows[1].Start+5*units.Millisecond {
		t.Fatalf("deadline %v", got[1].Deadline)
	}
}
