// Package workload generates the traffic the paper evaluates under:
// heavy-tailed flow-size distributions (the web-search and data-mining
// CDFs from the DCTCP/VL2 measurement studies the paper cites), Poisson
// flow arrivals at a target load, uniform short/long mixes for the
// motivation and model-verification experiments, and per-flow deadline
// assignment.
package workload

import (
	"fmt"
	"math"
	"sort"

	"tlb/internal/eventsim"
	"tlb/internal/units"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	// Sample draws one flow size (>= 1 byte).
	Sample(rng *eventsim.RNG) units.Bytes
	// Mean returns the distribution's mean size in bytes.
	Mean() float64
	// Name identifies the distribution.
	Name() string
}

// CDFPoint anchors an empirical CDF: Frac of flows are <= Size bytes.
type CDFPoint struct {
	Size units.Bytes
	Frac float64
}

// CDFDist interpolates between empirical CDF anchor points, the way
// packet-level simulators replay published workload CDFs. Between
// anchors the size is interpolated linearly in log-size space, which
// matches how these heavy-tailed distributions are usually plotted and
// sampled.
type CDFDist struct {
	name   string
	points []CDFPoint
	mean   float64
}

// NewCDF builds a distribution from anchor points. Points must be
// sorted by fraction with the last at 1.0.
func NewCDF(name string, points []CDFPoint) (*CDFDist, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: CDF %q needs >= 2 points", name)
	}
	for i, p := range points {
		if p.Size < 1 || p.Frac < 0 || p.Frac > 1 {
			return nil, fmt.Errorf("workload: CDF %q point %d out of range", name, i)
		}
		if i > 0 && (p.Frac < points[i-1].Frac || p.Size < points[i-1].Size) {
			return nil, fmt.Errorf("workload: CDF %q not monotone at point %d", name, i)
		}
	}
	//simlint:allow floateq(validates a hand-written config constant that must be the literal 1.0, not a computed value)
	if points[len(points)-1].Frac != 1 {
		return nil, fmt.Errorf("workload: CDF %q must end at fraction 1", name)
	}
	d := &CDFDist{name: name, points: points}
	d.mean = d.computeMean()
	return d, nil
}

// MustCDF is NewCDF for package-level literals.
func MustCDF(name string, points []CDFPoint) *CDFDist {
	d, err := NewCDF(name, points)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *CDFDist) Name() string  { return d.name }
func (d *CDFDist) Mean() float64 { return d.mean }

// computeMean integrates the interpolated inverse CDF.
func (d *CDFDist) computeMean() float64 {
	// Numerical integration over the quantile function: fine-grained
	// enough that sampling means converge to it in tests.
	const steps = 100000
	sum := 0.0
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) / steps
		sum += float64(d.quantile(u))
	}
	return sum / steps
}

// quantile returns the interpolated size at fraction u in [0,1).
func (d *CDFDist) quantile(u float64) units.Bytes {
	pts := d.points
	if u <= pts[0].Frac {
		return pts[0].Size
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Frac >= u })
	if i >= len(pts) {
		return pts[len(pts)-1].Size
	}
	lo, hi := pts[i-1], pts[i]
	//simlint:allow floateq(exact guard against dividing by a zero Frac span just below; an epsilon would misroute near-equal anchors)
	if hi.Frac == lo.Frac || hi.Size == lo.Size {
		return hi.Size
	}
	frac := (u - lo.Frac) / (hi.Frac - lo.Frac)
	// Log-linear interpolation in size.
	ls := math.Log(float64(lo.Size)) + frac*(math.Log(float64(hi.Size))-math.Log(float64(lo.Size)))
	s := units.Bytes(math.Exp(ls))
	if s < 1 {
		s = 1
	}
	return s
}

// Sample draws a flow size.
func (d *CDFDist) Sample(rng *eventsim.RNG) units.Bytes {
	return d.quantile(rng.Float64())
}

// WebSearch returns the DCTCP web-search flow-size distribution, the
// heavy-tailed mix where ~30% of flows exceed 1 MB and long flows carry
// ~95% of the bytes (paper §6.2).
func WebSearch() *CDFDist {
	return MustCDF("websearch", []CDFPoint{
		{6 * units.KB, 0.15},
		{13 * units.KB, 0.20},
		{19 * units.KB, 0.30},
		{33 * units.KB, 0.40},
		{53 * units.KB, 0.53},
		{133 * units.KB, 0.60},
		{667 * units.KB, 0.70},
		{1467 * units.KB, 0.80},
		{2107 * units.KB, 0.90},
		{6667 * units.KB, 0.95},
		{20 * units.MB, 0.98},
		{30 * units.MB, 1.00},
	})
}

// DataMining returns the VL2 data-mining distribution: ~80% of flows
// under 10 KB, fewer than 5% over 35 MB, with an extreme elephant tail
// (paper §6.2). The tail is truncated at 1 GB to keep single runs
// bounded; the paper's observation (clear boundary between many tiny
// flows and a few elephants) is preserved.
func DataMining() *CDFDist {
	return MustCDF("datamining", []CDFPoint{
		{100 * units.Byte, 0.03},
		{180 * units.Byte, 0.10},
		{250 * units.Byte, 0.20},
		{560 * units.Byte, 0.30},
		{900 * units.Byte, 0.40},
		{1100 * units.Byte, 0.50},
		{60 * units.KB, 0.60},
		{950 * units.KB, 0.70},
		{9100 * units.KB, 0.80},
		{35 * units.MB, 0.95},
		{1000 * units.MB, 1.00},
	})
}

// Uniform returns sizes uniform on [min, max] — e.g. the paper's
// "short flows with random size of less than 100 KB".
type Uniform struct {
	MinSize, MaxSize units.Bytes
}

func (u Uniform) Name() string { return fmt.Sprintf("uniform[%v,%v]", u.MinSize, u.MaxSize) }

func (u Uniform) Mean() float64 { return float64(u.MinSize+u.MaxSize) / 2 }

func (u Uniform) Sample(rng *eventsim.RNG) units.Bytes {
	if u.MaxSize <= u.MinSize {
		return u.MinSize
	}
	return u.MinSize + units.Bytes(rng.Intn(int(u.MaxSize-u.MinSize+1)))
}

// Fixed always returns the same size (e.g. 10 MB long flows).
type Fixed struct {
	Size units.Bytes
}

func (f Fixed) Name() string                       { return fmt.Sprintf("fixed[%v]", f.Size) }
func (f Fixed) Mean() float64                      { return float64(f.Size) }
func (f Fixed) Sample(_ *eventsim.RNG) units.Bytes { return f.Size }

// Truncated caps another distribution's samples, keeping large-scale
// runs bounded without changing the body of the distribution.
type Truncated struct {
	Dist SizeDist
	Max  units.Bytes
}

func (t Truncated) Name() string { return fmt.Sprintf("%s<=%v", t.Dist.Name(), t.Max) }

func (t Truncated) Mean() float64 {
	// Approximate by sampling-free clamp of the underlying mean when
	// cheap is fine; for planning loads we estimate numerically.
	if c, ok := t.Dist.(*CDFDist); ok {
		const steps = 20000
		sum := 0.0
		for i := 0; i < steps; i++ {
			u := (float64(i) + 0.5) / steps
			s := c.quantile(u)
			if s > t.Max {
				s = t.Max
			}
			sum += float64(s)
		}
		return sum / steps
	}
	m := t.Dist.Mean()
	if m > float64(t.Max) {
		return float64(t.Max)
	}
	return m
}

func (t Truncated) Sample(rng *eventsim.RNG) units.Bytes {
	s := t.Dist.Sample(rng)
	if s > t.Max {
		s = t.Max
	}
	return s
}
