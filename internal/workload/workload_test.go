package workload

import (
	"math"
	"testing"
	"testing/quick"

	"tlb/internal/eventsim"
	"tlb/internal/units"
)

func TestCDFValidation(t *testing.T) {
	if _, err := NewCDF("one-point", []CDFPoint{{100, 1}}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewCDF("not-ending-at-1", []CDFPoint{{100, 0.5}, {200, 0.9}}); err == nil {
		t.Error("CDF not ending at 1 accepted")
	}
	if _, err := NewCDF("non-monotone-frac", []CDFPoint{{100, 0.5}, {200, 0.4}, {300, 1}}); err == nil {
		t.Error("non-monotone fraction accepted")
	}
	if _, err := NewCDF("non-monotone-size", []CDFPoint{{100, 0.5}, {50, 1}}); err == nil {
		t.Error("non-monotone size accepted")
	}
	if _, err := NewCDF("ok", []CDFPoint{{100, 0.5}, {1000, 1}}); err != nil {
		t.Errorf("valid CDF rejected: %v", err)
	}
}

func TestCDFSamplesWithinRange(t *testing.T) {
	rng := eventsim.NewRNG(1)
	for _, d := range []*CDFDist{WebSearch(), DataMining()} {
		min := d.points[0].Size
		max := d.points[len(d.points)-1].Size
		for i := 0; i < 10000; i++ {
			s := d.Sample(rng)
			if s < 1 || s > max {
				t.Fatalf("%s sample %v outside (0, %v]", d.Name(), s, max)
			}
			_ = min
		}
	}
}

func TestCDFSampleMeanMatchesAnalyticMean(t *testing.T) {
	rng := eventsim.NewRNG(2)
	d := WebSearch()
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	got := sum / n
	want := d.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("sampled mean %.0f vs analytic %.0f (>5%% off)", got, want)
	}
}

func TestWebSearchHeavyTail(t *testing.T) {
	rng := eventsim.NewRNG(3)
	d := WebSearch()
	var total, fromBig float64
	bigCount, n := 0, 100000
	for i := 0; i < n; i++ {
		s := float64(d.Sample(rng))
		total += s
		if s > 1e6 {
			fromBig += s
			bigCount++
		}
	}
	fracFlows := float64(bigCount) / float64(n)
	fracBytes := fromBig / total
	// Paper: ~30% of web-search flows > 1MB carrying the vast
	// majority of bytes.
	if fracFlows < 0.2 || fracFlows > 0.4 {
		t.Fatalf(">1MB flow fraction = %.2f, want ~0.3", fracFlows)
	}
	if fracBytes < 0.85 {
		t.Fatalf(">1MB byte share = %.2f, want > 0.85", fracBytes)
	}
}

func TestDataMiningMostlyTinyFlows(t *testing.T) {
	rng := eventsim.NewRNG(4)
	d := DataMining()
	small, n := 0, 100000
	for i := 0; i < n; i++ {
		if d.Sample(rng) <= 100*units.KB {
			small++
		}
	}
	// The VL2 data-mining CDF puts ~60% of flows at or below ~60KB and
	// half below ~1.1KB: the mass sits far below 100KB.
	if frac := float64(small) / float64(n); frac < 0.58 {
		t.Fatalf("<=100KB fraction = %.2f, want >= 0.58", frac)
	}
	// "Obvious boundary" between mice and elephants (paper §6.2): the
	// medium range 100KB–1MB is nearly empty.
	medium := 0
	for i := 0; i < n; i++ {
		if s := d.Sample(rng); s > 100*units.KB && s < units.MB {
			medium++
		}
	}
	if frac := float64(medium) / float64(n); frac > 0.1 {
		t.Fatalf("medium-flow fraction = %.2f, want < 0.1", frac)
	}
}

func TestUniformDist(t *testing.T) {
	rng := eventsim.NewRNG(5)
	u := Uniform{MinSize: 10 * units.KB, MaxSize: 100 * units.KB}
	var sum float64
	for i := 0; i < 50000; i++ {
		s := u.Sample(rng)
		if s < u.MinSize || s > u.MaxSize {
			t.Fatalf("uniform sample %v out of range", s)
		}
		sum += float64(s)
	}
	if mean := sum / 50000; math.Abs(mean-u.Mean())/u.Mean() > 0.02 {
		t.Fatalf("uniform mean %v vs %v", mean, u.Mean())
	}
	degenerate := Uniform{MinSize: 5, MaxSize: 5}
	if degenerate.Sample(rng) != 5 {
		t.Fatal("degenerate uniform")
	}
}

func TestFixedAndTruncated(t *testing.T) {
	rng := eventsim.NewRNG(6)
	f := Fixed{Size: 10 * units.MB}
	if f.Sample(rng) != 10*units.MB || f.Mean() != 1e7 {
		t.Fatal("fixed dist")
	}
	tr := Truncated{Dist: DataMining(), Max: 50 * units.MB}
	for i := 0; i < 20000; i++ {
		if s := tr.Sample(rng); s > 50*units.MB {
			t.Fatalf("truncated sample %v above cap", s)
		}
	}
	if tr.Mean() > float64(50*units.MB) || tr.Mean() <= 0 {
		t.Fatalf("truncated mean %v", tr.Mean())
	}
	if tr.Mean() >= DataMining().Mean() {
		t.Fatal("truncation did not lower the mean")
	}
}

func TestPoissonGenerate(t *testing.T) {
	rng := eventsim.NewRNG(7)
	pc := PoissonConfig{
		Hosts:         16,
		Sizes:         Uniform{MinSize: 10 * units.KB, MaxSize: 100 * units.KB},
		Load:          0.5,
		HostBandwidth: units.Gbps,
		Deadlines:     DeadlineDist{Min: 5 * units.Millisecond, Max: 25 * units.Millisecond, OnlyBelow: 100 * units.KB},
	}
	flows, err := pc.Generate(rng, 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2000 {
		t.Fatalf("got %d flows", len(flows))
	}
	var prev units.Time
	for i, f := range flows {
		if f.Start < prev {
			t.Fatalf("flow %d arrives before its predecessor", i)
		}
		prev = f.Start
		if f.Src == f.Dst || f.Src < 0 || f.Src >= 16 || f.Dst < 0 || f.Dst >= 16 {
			t.Fatalf("flow %d endpoints %d->%d", i, f.Src, f.Dst)
		}
		if f.Deadline != 0 {
			d := f.Deadline - f.Start
			if d < 5*units.Millisecond || d > 25*units.Millisecond {
				t.Fatalf("deadline %v out of range", d)
			}
		}
	}
	// Empirical arrival rate should be close to the configured rate.
	dur := flows[len(flows)-1].Start.Seconds()
	gotRate := float64(len(flows)) / dur
	if math.Abs(gotRate-pc.Rate())/pc.Rate() > 0.1 {
		t.Fatalf("arrival rate %.0f vs configured %.0f", gotRate, pc.Rate())
	}
}

func TestPoissonCrossLeafOnly(t *testing.T) {
	rng := eventsim.NewRNG(8)
	leafOf := func(h int) int { return h / 4 }
	pc := PoissonConfig{
		Hosts: 16, Sizes: Fixed{Size: 10 * units.KB}, Load: 0.3,
		HostBandwidth: units.Gbps, CrossLeafOnly: true, LeafOf: leafOf,
	}
	flows, err := pc.Generate(rng, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if leafOf(f.Src) == leafOf(f.Dst) {
			t.Fatalf("intra-leaf flow %d->%d with CrossLeafOnly", f.Src, f.Dst)
		}
	}
}

func TestPoissonValidation(t *testing.T) {
	rng := eventsim.NewRNG(9)
	if _, err := (PoissonConfig{Hosts: 1, Sizes: Fixed{Size: 1}, Load: 0.5, HostBandwidth: units.Gbps}).Generate(rng, 10, 0); err == nil {
		t.Error("1-host config accepted")
	}
	if _, err := (PoissonConfig{Hosts: 4, Sizes: Fixed{Size: 1}, Load: 0, HostBandwidth: units.Gbps}).Generate(rng, 10, 0); err == nil {
		t.Error("zero load accepted")
	}
}

func TestDeadlineDist(t *testing.T) {
	rng := eventsim.NewRNG(10)
	d := DeadlineDist{Min: 5, Max: 25, OnlyBelow: 100}
	if d.Sample(rng, 200) != 0 {
		t.Fatal("deadline assigned above OnlyBelow")
	}
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng, 50)
		if v < 5 || v > 25 {
			t.Fatalf("deadline %v out of [5,25]", v)
		}
	}
	none := DeadlineDist{}
	if none.Sample(rng, 50) != 0 {
		t.Fatal("empty dist assigned a deadline")
	}
}

func TestStaticMix(t *testing.T) {
	rng := eventsim.NewRNG(11)
	m := StaticMix{
		ShortFlows: 100,
		LongFlows:  5,
		ShortSizes: Uniform{MinSize: 10 * units.KB, MaxSize: 100 * units.KB},
		LongSizes:  Fixed{Size: 10 * units.MB},
		Senders:    []int{0, 1, 2},
		Receivers:  []int{4, 5, 6},
		Deadlines:  DeadlineDist{Min: 5 * units.Millisecond, Max: 25 * units.Millisecond, OnlyBelow: 100 * units.KB},
	}
	flows, err := m.Generate(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 105 {
		t.Fatalf("%d flows", len(flows))
	}
	longs := 0
	for _, f := range flows {
		if f.Size > 100*units.KB {
			longs++
			if f.Deadline != 0 {
				t.Fatal("long flow got a deadline")
			}
		} else if f.Deadline == 0 {
			t.Fatal("short flow without deadline")
		}
	}
	if longs != 5 {
		t.Fatalf("%d long flows", longs)
	}
	if _, err := (StaticMix{ShortFlows: 1, ShortSizes: Fixed{Size: 1}, LongSizes: Fixed{Size: 1}}).Generate(rng, 0); err == nil {
		t.Fatal("mix without hosts accepted")
	}
}

// Property: quantile is monotone in u for any valid CDF, so sampling
// preserves stochastic ordering.
func TestQuantileMonotoneProperty(t *testing.T) {
	d := WebSearch()
	f := func(a, b uint16) bool {
		ua := float64(a) / 65536
		ub := float64(b) / 65536
		if ua > ub {
			ua, ub = ub, ua
		}
		return d.quantile(ua) <= d.quantile(ub)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIncastGenerate(t *testing.T) {
	rng := eventsim.NewRNG(12)
	c := IncastConfig{
		Aggregator:    0,
		Workers:       []int{0, 1, 2, 3, 4}, // 0 skipped (is aggregator)
		ResponseSize:  Fixed{Size: 32 * units.KB},
		Rounds:        3,
		RoundInterval: 10 * units.Millisecond,
		Jitter:        100 * units.Microsecond,
		Deadlines:     DeadlineDist{Min: 5 * units.Millisecond, Max: 25 * units.Millisecond},
	}
	flows, err := c.Generate(rng, units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 12 { // 4 workers x 3 rounds
		t.Fatalf("%d flows", len(flows))
	}
	for i, f := range flows {
		if f.Dst != 0 {
			t.Fatalf("flow %d to %d, want aggregator 0", i, f.Dst)
		}
		if f.Src == 0 {
			t.Fatal("aggregator responded to itself")
		}
		round := i / 4
		base := units.Millisecond + units.Time(round)*c.RoundInterval
		if f.Start < base || f.Start > base+c.Jitter {
			t.Fatalf("flow %d starts at %v outside its round window", i, f.Start)
		}
		if f.Deadline == 0 {
			t.Fatal("missing deadline")
		}
	}
	if _, err := (IncastConfig{Aggregator: 0, ResponseSize: Fixed{Size: 1}}).Generate(rng, 0); err == nil {
		t.Fatal("workerless incast accepted")
	}
	if _, err := (IncastConfig{Aggregator: 0, Workers: []int{1}}).Generate(rng, 0); err == nil {
		t.Fatal("sizeless incast accepted")
	}
}
