package workload

import (
	"fmt"

	"tlb/internal/eventsim"
	"tlb/internal/units"
)

// Source yields flows one at a time in non-decreasing Start order, so
// the simulator can schedule arrivals lazily instead of materializing
// a []Flow up front — the O(n) memory term that caps run sizes.
// Next returns the next flow and true, or a zero Flow and false when
// the source is exhausted.
type Source interface {
	Next() (Flow, bool)
}

// SliceSource adapts an already-materialized flow list to Source.
type SliceSource struct {
	flows []Flow
	i     int
}

// NewSliceSource wraps flows (not copied) as a Source.
func NewSliceSource(flows []Flow) *SliceSource {
	return &SliceSource{flows: flows}
}

// Next yields the next flow in slice order.
func (s *SliceSource) Next() (Flow, bool) {
	if s.i >= len(s.flows) {
		return Flow{}, false
	}
	f := s.flows[s.i]
	s.i++
	return f, true
}

// Collect drains a source into a slice — the materializing path the
// eager Generate methods are built from, so lazy and eager generation
// share one draw sequence by construction.
func Collect(src Source) []Flow {
	var out []Flow
	for {
		f, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

// poissonSource yields PoissonConfig's flows lazily with the exact
// draw order of the historical eager loop: gap, pair, size, deadline.
type poissonSource struct {
	cfg  PoissonConfig
	rng  *eventsim.RNG
	rate float64
	at   units.Time
	left int
}

// Source returns a lazy generator for n flows starting at start,
// consuming rng with the same draw sequence as Generate.
func (c PoissonConfig) Source(rng *eventsim.RNG, n int, start units.Time) (Source, error) {
	if c.Hosts < 2 {
		return nil, fmt.Errorf("workload: poisson traffic needs >= 2 hosts, got %d", c.Hosts)
	}
	if c.RateOverride <= 0 && (c.Load <= 0 || c.HostBandwidth <= 0) {
		return nil, fmt.Errorf("workload: poisson traffic needs positive load and bandwidth")
	}
	rate := c.Rate()
	if rate <= 0 {
		return nil, fmt.Errorf("workload: degenerate arrival rate")
	}
	return &poissonSource{cfg: c, rng: rng, rate: rate, at: start, left: n}, nil
}

// Next draws one flow.
func (p *poissonSource) Next() (Flow, bool) {
	if p.left <= 0 {
		return Flow{}, false
	}
	p.left--
	c := p.cfg
	gap := units.FromSeconds(p.rng.ExpFloat64() / p.rate)
	p.at += gap
	src, dst := c.pickPair(p.rng)
	size := c.Sizes.Sample(p.rng)
	f := Flow{Src: src, Dst: dst, Size: size, Start: p.at}
	if d := c.Deadlines.Sample(p.rng, size); d > 0 {
		f.Deadline = p.at + d
	}
	return f, true
}

// InterPodConfig drives the fat-tree scale experiments: flows between
// hosts in different pods, uniformly-jittered arrivals, optionally
// deadlined. Extracted from the spec compiler's inline loop so the
// same draw sequence is available lazily.
type InterPodConfig struct {
	// Hosts is the total host count; PerPod how many share a pod (src
	// and dst are redrawn until they differ in pod).
	Hosts  int
	PerPod int
	// Flows is the number of flows to generate.
	Flows int
	Sizes SizeDist
	// MaxGap bounds the uniform arrival gap: each flow starts
	// Intn(MaxGap) after the previous one.
	MaxGap units.Time
	// DeadlineBase/DeadlineJitter assign deadlines of base +
	// Intn(jitter) to flows at or below DeadlineOnlyBelow (all flows if
	// zero); no deadlines when jitter is zero.
	DeadlineBase      units.Time
	DeadlineJitter    units.Time
	DeadlineOnlyBelow units.Bytes
}

type interPodSource struct {
	cfg  InterPodConfig
	rng  *eventsim.RNG
	at   units.Time
	left int
}

// Source returns a lazy generator consuming rng with the same draw
// sequence as Generate (and as the spec compiler's historical loop).
func (c InterPodConfig) Source(rng *eventsim.RNG) (Source, error) {
	if c.Flows <= 0 {
		return nil, fmt.Errorf("workload: interpod traffic needs a positive flow count, got %d", c.Flows)
	}
	if c.PerPod <= 0 || c.Hosts <= c.PerPod {
		return nil, fmt.Errorf("workload: interpod traffic needs >= 2 pods (%d hosts, %d per pod)", c.Hosts, c.PerPod)
	}
	if c.MaxGap <= 0 {
		return nil, fmt.Errorf("workload: interpod traffic needs a positive max arrival gap")
	}
	return &interPodSource{cfg: c, rng: rng, left: c.Flows}, nil
}

// Generate materializes the whole config eagerly.
func (c InterPodConfig) Generate(rng *eventsim.RNG) ([]Flow, error) {
	src, err := c.Source(rng)
	if err != nil {
		return nil, err
	}
	return Collect(src), nil
}

// Next draws one flow: gap, src, dst (redrawn until cross-pod), size,
// deadline.
func (s *interPodSource) Next() (Flow, bool) {
	if s.left <= 0 {
		return Flow{}, false
	}
	s.left--
	c := s.cfg
	s.at += units.Time(s.rng.Intn(int(c.MaxGap)))
	src := s.rng.Intn(c.Hosts)
	dst := s.rng.Intn(c.Hosts)
	for dst/c.PerPod == src/c.PerPod {
		dst = s.rng.Intn(c.Hosts)
	}
	size := c.Sizes.Sample(s.rng)
	f := Flow{Src: src, Dst: dst, Size: size, Start: s.at}
	if c.DeadlineJitter > 0 && (c.DeadlineOnlyBelow == 0 || size <= c.DeadlineOnlyBelow) {
		f.Deadline = s.at + c.DeadlineBase + units.Time(s.rng.Intn(int(c.DeadlineJitter)))
	}
	return f, true
}

// OverrideDeadlines decorates a source, rewriting each flow's deadline
// to start+deadline for flows at or below onlyBelow (all flows if
// zero) and clearing it otherwise — the lazy counterpart of the spec
// layer's deadline override, which never perturbs the underlying draw
// stream.
func OverrideDeadlines(src Source, deadline units.Time, onlyBelow units.Bytes) Source {
	return &overrideSource{src: src, deadline: deadline, onlyBelow: onlyBelow}
}

type overrideSource struct {
	src       Source
	deadline  units.Time
	onlyBelow units.Bytes
}

func (o *overrideSource) Next() (Flow, bool) {
	f, ok := o.src.Next()
	if !ok {
		return Flow{}, false
	}
	if o.onlyBelow == 0 || f.Size <= o.onlyBelow {
		f.Deadline = f.Start + o.deadline
	} else {
		f.Deadline = 0
	}
	return f, true
}
