package workload

import (
	"fmt"

	"tlb/internal/eventsim"
	"tlb/internal/units"
)

// Flow is one generated flow: who talks to whom, how much, by when.
type Flow struct {
	Src, Dst int
	Size     units.Bytes
	// Start is the absolute arrival time.
	Start units.Time
	// Deadline is the absolute completion deadline, or 0 if none.
	Deadline units.Time
}

// DeadlineDist assigns completion budgets to flows.
type DeadlineDist struct {
	// Min/Max bound the uniform deadline range ([5ms, 25ms] in the
	// paper); both zero means no deadlines.
	Min, Max units.Time
	// OnlyBelow restricts deadlines to flows at or below this size
	// (the paper gives deadlines to short flows only); zero applies
	// deadlines to every flow.
	OnlyBelow units.Bytes
}

// Sample draws a relative deadline for a flow of the given size, or 0.
func (d DeadlineDist) Sample(rng *eventsim.RNG, size units.Bytes) units.Time {
	if d.Max <= 0 {
		return 0
	}
	if d.OnlyBelow > 0 && size > d.OnlyBelow {
		return 0
	}
	if d.Max <= d.Min {
		return d.Min
	}
	return d.Min + units.Time(rng.Intn(int(d.Max-d.Min+1)))
}

// PoissonConfig drives the large-scale experiments' open-loop traffic:
// flows arrive as a Poisson process between random distinct host
// pairs, sized from a distribution, at a target load on the host links.
type PoissonConfig struct {
	Hosts int
	Sizes SizeDist
	// Load is the target utilization of each host's access link
	// (0.1–0.8 in the paper's sweeps).
	Load float64
	// HostBandwidth is the access-link rate the load is relative to.
	HostBandwidth units.Bandwidth
	// RateOverride, when > 0, sets the flow arrival rate (flows per
	// second) directly, bypassing the Load/HostBandwidth computation —
	// used when load is defined against fabric capacity instead.
	RateOverride float64
	Deadlines    DeadlineDist
	// CrossLeafOnly, with LeafOf set, forces src and dst onto
	// different leaves so every flow crosses the fabric.
	CrossLeafOnly bool
	LeafOf        func(host int) int
}

// Rate returns the aggregate flow arrival rate (flows/second) implied
// by the target load: load * C * hosts / mean size.
func (c PoissonConfig) Rate() float64 {
	if c.RateOverride > 0 {
		return c.RateOverride
	}
	if c.Sizes.Mean() <= 0 {
		return 0
	}
	return c.Load * c.HostBandwidth.BytesPerSecond() * float64(c.Hosts) / c.Sizes.Mean()
}

// Generate produces n flows with Poisson interarrivals starting at
// time start. It drains the lazy Source, so eager and streaming
// callers see one draw sequence by construction.
func (c PoissonConfig) Generate(rng *eventsim.RNG, n int, start units.Time) ([]Flow, error) {
	src, err := c.Source(rng, n, start)
	if err != nil {
		return nil, err
	}
	return Collect(src), nil
}

func (c PoissonConfig) pickPair(rng *eventsim.RNG) (src, dst int) {
	for {
		src = rng.Intn(c.Hosts)
		dst = rng.Intn(c.Hosts)
		if src == dst {
			continue
		}
		if c.CrossLeafOnly && c.LeafOf != nil && c.LeafOf(src) == c.LeafOf(dst) {
			continue
		}
		return src, dst
	}
}

// StaticMix builds the motivation/model-verification traffic: a fixed
// number of short and long flows between distinct sender/receiver
// pairs, all arriving within a small jitter window so they contend.
type StaticMix struct {
	// ShortFlows and LongFlows count each class.
	ShortFlows, LongFlows int
	// ShortSizes and LongSizes sample each class (paper: uniform
	// <100 KB shorts, >10 MB longs).
	ShortSizes, LongSizes SizeDist
	// Senders and Receivers are the host index ranges to draw pairs
	// from (src from Senders, dst from Receivers).
	Senders, Receivers []int
	// ArrivalJitter spreads starts uniformly over [0, ArrivalJitter].
	ArrivalJitter units.Time
	Deadlines     DeadlineDist
}

// Generate materializes the mix.
func (m StaticMix) Generate(rng *eventsim.RNG, start units.Time) ([]Flow, error) {
	if len(m.Senders) == 0 || len(m.Receivers) == 0 {
		return nil, fmt.Errorf("workload: static mix needs senders and receivers")
	}
	flows := make([]Flow, 0, m.ShortFlows+m.LongFlows)
	add := func(n int, sizes SizeDist) {
		for i := 0; i < n; i++ {
			src := m.Senders[rng.Intn(len(m.Senders))]
			dst := m.Receivers[rng.Intn(len(m.Receivers))]
			at := start
			if m.ArrivalJitter > 0 {
				at += units.Time(rng.Intn(int(m.ArrivalJitter) + 1))
			}
			size := sizes.Sample(rng)
			f := Flow{Src: src, Dst: dst, Size: size, Start: at}
			if d := m.Deadlines.Sample(rng, size); d > 0 {
				f.Deadline = at + d
			}
			flows = append(flows, f)
		}
	}
	// Long flows first so they are established when shorts arrive,
	// matching the paper's motivating scenario.
	add(m.LongFlows, m.LongSizes)
	add(m.ShortFlows, m.ShortSizes)
	return flows, nil
}
