package netem

import (
	"tlb/internal/eventsim"
	"tlb/internal/units"
)

// Handler consumes packets delivered by the network.
type Handler func(*Packet)

// LinkConfig describes one directed link.
type LinkConfig struct {
	Bandwidth units.Bandwidth
	Delay     units.Time // one-way propagation delay
}

// Port is a switch (or host NIC) output: a FIFO queue drained by a
// directed link. Because the queue is FIFO and the link delay fixed,
// every packet's service start, service end and delivery time are known
// the moment it is admitted; the port therefore schedules exactly one
// simulator event per packet (its delivery) and the queue evaluates its
// own occupancy lazily from the precomputed service times.
type Port struct {
	sim  *eventsim.Sim
	link LinkConfig
	q    *Queue
	dst  Handler

	// lastFinish is when the most recently admitted packet finishes
	// serializing; the next packet starts at max(now, lastFinish).
	lastFinish units.Time
	// busyNs accumulates serialization time for utilization accounting.
	busyNs units.Time
	// deliverFn is the single pre-bound delivery callback reused for
	// every packet (deliveries fire in FIFO order, so it always pops
	// the head).
	deliverFn func()
	// label is a human-readable identity for traces and tests.
	label string
}

// NewPort wires a queue to a link ending at dst.
func NewPort(sim *eventsim.Sim, link LinkConfig, qcfg QueueConfig, dst Handler, label string) *Port {
	if link.Bandwidth <= 0 {
		panic("netem: port with non-positive bandwidth")
	}
	p := &Port{sim: sim, link: link, q: NewQueue(qcfg), dst: dst, label: label}
	p.deliverFn = p.deliver
	return p
}

// Queue exposes the port's queue (read-mostly: load balancers consult
// Len; tests consult Stats).
func (p *Port) Queue() *Queue { return p.q }

// QueueLen is the current backlog in packets, the signal every
// queue-length-based load balancer in this repo consults.
func (p *Port) QueueLen() int { return p.q.Len(p.sim.Now()) }

// Link returns the link configuration.
func (p *Port) Link() LinkConfig { return p.link }

// Label returns the port's diagnostic name.
func (p *Port) Label() string { return p.label }

// BusyTime returns the cumulative serialization time, from which
// utilization over an interval is computed.
func (p *Port) BusyTime() units.Time { return p.busyNs }

// refWire is the reference packet size EstimatedDelay charges for the
// packet being placed: a full-size frame. Without this term an *empty*
// slow port looks as cheap as an empty fast one — the asymmetry only
// shows once the packet itself serializes.
const refWire units.Bytes = 1500

// EstimatedDelay returns the time a full-size packet enqueued now would
// take to reach the far end: the backlog's serialization time, its own
// serialization time, and the link's propagation delay. Unlike the raw
// queue length, this is comparable across ports of different speeds and
// delays, which is what a load balancer needs on an asymmetric fabric.
// (All inputs — port rate and configured link delay — are local switch
// knowledge.) Across equal-speed ports the own-packet term is a shared
// constant, so orderings there match the queue-length comparison.
func (p *Port) EstimatedDelay() units.Time {
	d := p.link.Delay + p.link.Bandwidth.TxTime(refWire)
	if backlog := p.q.Bytes(p.sim.Now()); backlog > 0 {
		d += p.link.Bandwidth.TxTime(backlog)
	}
	return d
}

// Send enqueues the packet for transmission. It reports false when the
// packet was dropped at the queue.
func (p *Port) Send(pkt *Packet) bool {
	now := p.sim.Now()
	start := now
	if p.lastFinish > start {
		start = p.lastFinish
	}
	if !p.q.admit(pkt, now, start) {
		return false
	}
	tx := p.link.Bandwidth.TxTime(pkt.Wire)
	finish := start + tx
	p.lastFinish = finish
	p.busyNs += tx
	p.sim.At(finish+p.link.Delay, p.deliverFn)
	return true
}

// deliver fires when the head packet has finished propagating.
func (p *Port) deliver() {
	pkt := p.q.popDelivered()
	p.dst(pkt)
}
