package netem

import (
	"tlb/internal/eventsim"
	"tlb/internal/units"
)

// Handler consumes packets delivered by the network.
type Handler func(*Packet)

// LinkConfig describes one directed link.
type LinkConfig struct {
	Bandwidth units.Bandwidth
	Delay     units.Time // one-way propagation delay
}

// Port is a switch (or host NIC) output: a FIFO queue drained by a
// directed link. Because the queue is FIFO, every packet's service
// start, service end and delivery time are known the moment it is
// admitted; the queue evaluates its own occupancy lazily from the
// precomputed service times.
//
// Delivery scheduling is batched: the port keeps at most one engine
// event pending — for its oldest undelivered packet — and re-arms it
// for the next packet when that one fires, instead of holding one
// event per in-flight packet. Each packet's position within its
// delivery instant is fixed at admission by a DeliveryKey — a value in
// the engine's keyed ordering domain (eventsim.Sim.AtKey) built from
// the admission time and the port's construction-order index. The key
// is a pure function of the traffic and the topology, never of
// scheduling history, so simultaneous deliveries at different ports
// order identically whether the whole fabric runs on one engine or is
// partitioned across the sharded runner's per-shard engines — the
// property behind the "byte-identical at any shard count" guarantee.
// Within one port the key is monotone in admission order (FIFO), so
// the single re-armed event always fires for the queue head.
//
// Link parameters are dynamic: SetLink re-rates or re-delays the link
// mid-run and SetDown fails the port entirely (see internal/faults).
// Changes apply at admission time — packets already committed to the
// wire keep the schedule computed when they were admitted.
type Port struct {
	sim  *eventsim.Sim
	link LinkConfig
	q    *Queue
	dst  Handler

	// lastFinish is when the most recently admitted packet finishes
	// serializing; the next packet starts at max(now, lastFinish).
	lastFinish units.Time
	// lastDelivery is the latest delivery time scheduled so far. SetLink
	// re-anchors lastFinish against it so that a mid-run delay decrease
	// cannot let a later packet's delivery event beat an earlier one's
	// (deliver pops the FIFO head, so delivery events must stay in
	// admission order).
	lastDelivery units.Time
	// evPending reports whether the single delivery event for the queue
	// head is currently scheduled (ports never cancel deliveries, so a
	// bool suffices — no handle is kept).
	evPending bool
	// down marks a failed link: Send drops at admission, like a pulled
	// cable, and liveness-aware balancers route around the port.
	down bool
	// busyNs accumulates serialization time for utilization accounting.
	busyNs units.Time
	// label is a human-readable identity for traces and tests.
	label string
	// idx is the port's construction-order index (eventsim.ReserveKeyedID):
	// the partition-invariant identity inside every DeliveryKey.
	idx uint32

	// boundary, when set, marks the port as a shard-boundary egress
	// (see SetBoundary): every admitted packet is additionally captured
	// as a value copy for cross-shard handoff. Nil on every port of a
	// single-shard run, costing one predictable branch in Send.
	boundary func(pkt *Packet, admittedAt, deliverAt units.Time)
}

// NewPort wires a queue to a link ending at dst. Each port draws a
// construction-order index from its engine; two builds that construct
// ports in the same order assign the same indices, which is what makes
// DeliveryKey ordering identical across the sharded runner's per-shard
// rebuilds of one topology.
func NewPort(sim *eventsim.Sim, link LinkConfig, qcfg QueueConfig, dst Handler, label string) *Port {
	if link.Bandwidth <= 0 {
		panic("netem: port with non-positive bandwidth")
	}
	idx := sim.ReserveKeyedID()
	if idx >= 1<<deliveryPortBits {
		panic("netem: port index overflows DeliveryKey packing (raise deliveryPortBits)")
	}
	return &Port{sim: sim, link: link, q: NewQueue(qcfg), dst: dst, label: label, idx: idx}
}

// Index returns the port's construction-order index — stable across
// rebuilds of the same topology, and unique within one engine.
func (p *Port) Index() uint32 { return p.idx }

// DeliveryKey packing: the low deliveryPortBits carry the port index,
// the admission timestamp sits above it, and the engine's KeyDomain
// bit tops the word. 20 index bits allow a million ports; the 43
// remaining timestamp bits cover ~2.4 simulated hours, far beyond any
// scenario here (the guard panic says how to rebalance if that ever
// changes).
const (
	deliveryPortBits = 20
	maxKeyedTime     = units.Time(1) << (63 - deliveryPortBits)
)

// DeliveryKey builds the keyed-domain ordering key for a packet
// admitted at admittedAt on the port with the given index. Ordering
// simultaneous deliveries by (admission time, port index) — rather
// than by engine scheduling history — is what makes the event order a
// pure function of the traffic: the sharded runner schedules a
// cross-shard handoff in the destination engine with the same key the
// source port used, landing it at exactly the position the unsharded
// run would have fired the delivery.
func DeliveryKey(admittedAt units.Time, port uint32) uint64 {
	if admittedAt >= maxKeyedTime {
		panic("netem: simulated time overflows DeliveryKey packing (lower deliveryPortBits)")
	}
	return eventsim.KeyDomain | uint64(admittedAt)<<deliveryPortBits | uint64(port)
}

// Queue exposes the port's queue (read-mostly: load balancers consult
// Len; tests consult Stats).
func (p *Port) Queue() *Queue { return p.q }

// QueueLen is the current backlog in packets, the signal every
// queue-length-based load balancer in this repo consults.
func (p *Port) QueueLen() int { return p.q.Len(p.sim.Now()) }

// Link returns the current link configuration.
func (p *Port) Link() LinkConfig { return p.link }

// Down reports whether the port's link is failed.
func (p *Port) Down() bool { return p.down }

// SetDown fails (true) or revives (false) the port's link. While down,
// Send drops every packet at admission and counts it in
// QueueStats.FaultDropped. Packets admitted before the failure were
// already committed to the wire and still deliver — the model drops at
// admission, not in flight.
func (p *Port) SetDown(down bool) { p.down = down }

// SetLink re-parameterizes the link at the current simulated time. The
// new rate and delay apply to packets admitted from now on; packets
// already admitted keep the service and delivery times computed at
// their admission (they are on the wire). lastFinish is re-anchored so
// the next admission stays causally consistent: it can start no
// earlier than now, and — if the propagation delay shrank — no earlier
// than would keep its delivery behind every delivery already
// scheduled.
func (p *Port) SetLink(link LinkConfig) {
	if link.Bandwidth <= 0 {
		panic("netem: SetLink with non-positive bandwidth")
	}
	if now := p.sim.Now(); p.lastFinish < now {
		p.lastFinish = now
	}
	if floor := p.lastDelivery - link.Delay; p.lastFinish < floor {
		p.lastFinish = floor
	}
	p.link = link
}

// Label returns the port's diagnostic name.
func (p *Port) Label() string { return p.label }

// SetBoundary turns the port into a shard-boundary egress for the
// sharded runner (internal/sim): this shard owns the port — its queue,
// serialization schedule, drops and ECN marks stay exact and local —
// but the far end belongs to another shard, so the real delivery
// happens there. capture is invoked from Send for every admitted
// packet, after the queue has applied all admission-time mutations (CE
// mark, queue-delay and timestamp stamping), with the packet's
// admission and delivery times; the callee copies the packet by value
// into a handoff message. sink replaces the local destination handler:
// the port's own delivery event still fires at the exact (time, seq)
// position it would in an unsharded run — keeping occupancy, busy-time
// and stats byte-identical — but the popped packet is released back to
// this shard's pool instead of being handed to a peer, because the
// value copy already crossed the boundary. Ownership of the original
// thus never leaves the shard (packetown stays clean); the destination
// shard materializes the copy from its own pool.
func (p *Port) SetBoundary(capture func(pkt *Packet, admittedAt, deliverAt units.Time), sink Handler) {
	if capture == nil || sink == nil {
		panic("netem: SetBoundary with nil capture or sink")
	}
	p.boundary = capture
	p.dst = sink
}

// BusyTime returns the cumulative serialization time, from which
// utilization over an interval is computed.
func (p *Port) BusyTime() units.Time { return p.busyNs }

// refWire is the reference packet size EstimatedDelay charges for the
// packet being placed: a full-size frame. Without this term an *empty*
// slow port looks as cheap as an empty fast one — the asymmetry only
// shows once the packet itself serializes.
const refWire units.Bytes = 1500

// EstimatedDelay returns the time a full-size packet enqueued now would
// take to reach the far end: the committed backlog's remaining
// serialization time, its own serialization time, and the link's
// propagation delay. Unlike the raw queue length, this is comparable
// across ports of different speeds and delays, which is what a load
// balancer needs on an asymmetric fabric. (All inputs — port rate,
// configured link delay and the admission-time service schedule — are
// local switch knowledge.) Across equal-speed ports the own-packet term
// is a shared constant, so orderings there match the queue-length
// comparison.
//
// The backlog term is lastFinish − now: exactly when the wire goes
// idle. This charges the residual serialization of the in-service
// packet too — a port midway through a large frame on a slow link is
// not as cheap as an empty one — and stays exact across mid-run rate
// changes, because each packet's finish time was fixed at admission.
func (p *Port) EstimatedDelay() units.Time {
	d := p.link.Delay + p.link.Bandwidth.TxTime(refWire)
	if resid := p.lastFinish - p.sim.Now(); resid > 0 {
		d += resid
	}
	return d
}

// Send enqueues the packet for transmission. It reports false when the
// packet was dropped at the queue, or dropped at admission because the
// link is down.
func (p *Port) Send(pkt *Packet) bool {
	if p.down {
		p.q.faultDrop()
		return false
	}
	now := p.sim.Now()
	start := now
	if p.lastFinish > start {
		start = p.lastFinish
	}
	if !p.q.admit(pkt, now, start) {
		return false
	}
	tx := p.link.Bandwidth.TxTime(pkt.Wire)
	finish := start + tx
	p.lastFinish = finish
	p.busyNs += tx
	deliverAt := finish + p.link.Delay
	if deliverAt > p.lastDelivery {
		p.lastDelivery = deliverAt
	}
	// Fix the packet's position within its delivery instant now (the
	// key is a function of the admission time, so it must be built
	// here), but only materialize an engine event if none is pending:
	// the port re-arms for the next packet when the current delivery
	// fires.
	p.q.setDelivery(deliverAt, DeliveryKey(now, p.idx))
	if p.boundary != nil {
		p.boundary(pkt, now, deliverAt)
	}
	if !p.evPending {
		at, key := p.q.headDelivery()
		p.sim.AtKey(at, key, portDeliver, p)
		p.evPending = true
	}
	return true
}

// portDeliver is the delivery callback shared by every port and every
// packet: scheduled through AtKey with the port as the argument (a
// pointer, so the any-conversion does not allocate), it keeps Send
// closure-free. Deliveries fire in FIFO order, so it always pops the
// head, then re-arms the port's single event for the next undelivered
// packet at its admission-fixed (time, key) position. The pop happens
// before the handler runs so a handler that sends on this same port
// sees a consistent queue (its Send re-arms the event; the check after
// the handler then skips).
func portDeliver(arg any) {
	p := arg.(*Port)
	p.evPending = false
	p.dst(p.q.popDelivered())
	if !p.evPending && p.q.hasEntries() {
		at, key := p.q.headDelivery()
		p.sim.AtKey(at, key, portDeliver, p)
		p.evPending = true
	}
}
