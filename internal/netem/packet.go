// Package netem models the data plane: packets, drop-tail FIFO queues
// with ECN marking, and links with bandwidth serialization and
// propagation delay, composed into switch output ports.
//
// The fidelity target is NS2-style packet-level simulation: every data
// segment and ACK is an individual packet that is enqueued, serialized
// at line rate, propagated, and delivered — so queue lengths, drops,
// ECN marks and reordering emerge from the same mechanisms the paper's
// evaluation measures.
package netem

import (
	"fmt"

	"tlb/internal/units"
)

// FlowID identifies a transport flow. Src and Dst are host indices;
// Port disambiguates concurrent flows between the same pair. ACKs of a
// flow carry the same FlowID as its data with Reverse set, so switches
// can attribute every packet to a five-tuple.
type FlowID struct {
	Src, Dst int
	Port     int
}

// Reversed returns the FlowID as seen from the opposite direction.
func (f FlowID) Reversed() FlowID {
	return FlowID{Src: f.Dst, Dst: f.Src, Port: f.Port}
}

func (f FlowID) String() string {
	return fmt.Sprintf("%d->%d#%d", f.Src, f.Dst, f.Port)
}

// Hash returns a deterministic 64-bit hash of the flow identity mixed
// with a per-switch seed — this is the "flow hash" ECMP uses. FNV-1a
// over the three ints keeps it allocation-free.
func (f FlowID) Hash(seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	for _, v := range [3]uint64{uint64(f.Src), uint64(f.Dst), uint64(f.Port)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// Kind distinguishes the packet types the transport layer exchanges.
type Kind uint8

const (
	// Data carries payload bytes [Seq, Seq+Payload).
	Data Kind = iota
	// Ack carries a cumulative acknowledgement in Ack.
	Ack
	// Syn opens a connection (client -> server).
	Syn
	// SynAck acknowledges a Syn (server -> client).
	SynAck
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Syn:
		return "SYN"
	case SynAck:
		return "SYNACK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Packet is one unit on the wire. Packets are passed by pointer through
// the fabric and must not be mutated after being handed to a port,
// except for the congestion-experienced bit which queues set.
//
// Field order is part of the performance contract (layout_test.go pins
// it): the fields every hop touches — Flow for routing and hashing,
// Seq/Wire/Ack for forwarding and byte accounting, QueueDelay plus all
// the single-byte flags for admission — pack into the first 64 bytes,
// so a switch hop reads one cache line; the admission-stamped
// timestamps and stats share the second line, and the cold SACK block
// array sits last. The reorder also drops the struct from 168 to 144
// bytes, so the pool's freelist and every queue entry carry less.
type Packet struct {
	Flow FlowID
	// Seq is the first payload byte for Data packets.
	Seq units.Bytes
	// Wire is the total on-wire size including headers; serialization
	// and queue occupancy are charged per packet but byte counters use
	// Wire.
	Wire units.Bytes
	// Ack is the cumulative acknowledgement (next expected byte) on
	// Ack/SynAck packets.
	Ack units.Bytes
	// QueueDelay accumulates time spent waiting in queues across all
	// hops; ports add to it at dequeue. The receiver folds it into the
	// per-flow queueing-delay statistics (paper Fig. 3a, Fig. 8b).
	QueueDelay units.Time

	Kind Kind
	// SackCount says how many SackBlocks entries are valid.
	SackCount uint8
	// CE is the ECN congestion-experienced bit, set by a queue whose
	// length exceeds its marking threshold.
	CE bool
	// ECNEcho on an ACK echoes the CE bit of the data packet it
	// acknowledges (per-packet echo, as DCTCP requires).
	ECNEcho bool
	// FIN marks the last data packet of a flow, standing in for the TCP
	// FIN the paper's switch uses to decrement its flow counters.
	FIN bool
	// Retransmit marks retransmitted segments (excluded from
	// reordering stats, since their displacement is intentional).
	Retransmit bool
	// pooled guards PacketPool ownership: true while the packet sits
	// in a freelist, so a double release panics instead of silently
	// aliasing two live packets onto one struct.
	pooled bool

	// Payload is the number of payload bytes (0 for pure ACK/SYN).
	Payload units.Bytes
	// SentAt is when the transport first handed the packet to the
	// network; used for delay accounting.
	SentAt units.Time
	// EnqueuedAt is stamped by the queue on admission, for per-hop
	// queueing-delay stats.
	EnqueuedAt units.Time
	// MaxQueueSeen is the largest queue length (in packets, excluding
	// this packet) encountered on admission at any hop — the
	// "queueing length experienced by each packet" of Fig. 3a.
	MaxQueueSeen int

	// SackBlocks carries up to 3 selective-acknowledgement ranges
	// (start inclusive, end exclusive) when the transport has SACK
	// enabled; SackCount says how many are valid.
	SackBlocks [3]SackBlock
}

// SackBlock is one selectively-acknowledged byte range [Start, End).
type SackBlock struct {
	Start, End units.Bytes
}

// IsShortHeader reports whether the packet is a header-only packet
// (ACK or handshake), which load balancers may treat differently.
func (p *Packet) IsShortHeader() bool {
	return p.Kind != Data
}
