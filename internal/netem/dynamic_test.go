package netem

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/units"
)

// TestEstimatedDelayChargesResidual is the regression for the
// estimator bug where the in-service packet's remaining serialization
// (lastFinish − now) was not charged: a port midway through a frame on
// a slow link looked as cheap as an idle one. Two unequal-rate ports,
// one packet each.
func TestEstimatedDelayChargesResidual(t *testing.T) {
	s := eventsim.New()
	fast := NewPort(s, LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		QueueConfig{}, func(*Packet) {}, "fast")
	slow := NewPort(s, LinkConfig{Bandwidth: 100 * units.Mbps, Delay: 10 * units.Microsecond},
		QueueConfig{}, func(*Packet) {}, "slow")
	fast.Send(pkt(1500))
	slow.Send(pkt(1500)) // serializes for 120µs, until t=120µs

	// At t=0 the whole frame is still ahead: delay + own tx + resid.
	if got, want := fast.EstimatedDelay(), (10+12+12)*units.Microsecond; got != want {
		t.Fatalf("fast estimate at t=0 = %v, want %v", got, want)
	}
	if got, want := slow.EstimatedDelay(), (10+120+120)*units.Microsecond; got != want {
		t.Fatalf("slow estimate at t=0 = %v, want %v", got, want)
	}

	// At t=100µs the slow port is mid-frame: 20µs of serialization
	// remain and must be charged. (The old waiting-bytes backlog term
	// was zero here — the frame is in service, not waiting.)
	s.RunUntil(100 * units.Microsecond)
	if got, want := fast.EstimatedDelay(), (10+12)*units.Microsecond; got != want {
		t.Fatalf("fast estimate at t=100µs = %v, want %v", got, want)
	}
	if got, want := slow.EstimatedDelay(), (10+120+20)*units.Microsecond; got != want {
		t.Fatalf("slow estimate at t=100µs = %v, want %v (residual not charged?)", got, want)
	}
}

// TestEstimatedDelayCountsWaitingBacklog: with several packets queued,
// the estimate covers the full committed backlog, not just the
// in-service packet.
func TestEstimatedDelayCountsWaitingBacklog(t *testing.T) {
	s := eventsim.New()
	p := NewPort(s, testLink, QueueConfig{}, func(*Packet) {}, "t")
	for i := 0; i < 3; i++ {
		p.Send(pkt(1500))
	}
	// Backlog drains at t=36µs; estimate = delay + own tx + 36µs.
	if got, want := p.EstimatedDelay(), (10+12+36)*units.Microsecond; got != want {
		t.Fatalf("estimate = %v, want %v", got, want)
	}
}

// TestMaxQueueSeenOnlyOnAdmission is the regression for the accounting
// bug where a dropped packet recorded the queue length it was rejected
// at, polluting the per-packet queue-seen distribution (Fig. 3a).
func TestMaxQueueSeenOnlyOnAdmission(t *testing.T) {
	s := eventsim.New()
	p := NewPort(s, testLink, QueueConfig{Capacity: 3}, func(*Packet) {}, "t")
	var admitted []*Packet
	for i := 0; i < 4; i++ {
		pk := pkt(1500)
		if !p.Send(pk) {
			t.Fatalf("packet %d unexpectedly dropped", i)
		}
		admitted = append(admitted, pk)
	}
	dropped := pkt(1500)
	if p.Send(dropped) {
		t.Fatal("5th packet should have hit the 3-packet cap")
	}
	if dropped.MaxQueueSeen != 0 {
		t.Fatalf("dropped packet recorded MaxQueueSeen=%d, want 0", dropped.MaxQueueSeen)
	}
	// The last admitted packet saw 2 waiting ahead of it.
	if got := admitted[3].MaxQueueSeen; got != 2 {
		t.Fatalf("last admitted packet MaxQueueSeen=%d, want 2", got)
	}
	// SumLenOnArrival intentionally still counts the dropped arrival.
	if got := p.Queue().Stats().SumLenOnArrival; got != 0+0+1+2+3 {
		t.Fatalf("SumLenOnArrival=%d, want 6", got)
	}
}

// TestDownPortDropsAtAdmission: a down port fails Send, counts the drop
// in FaultDropped (not Dropped), and still delivers what was already
// committed to the wire.
func TestDownPortDropsAtAdmission(t *testing.T) {
	s := eventsim.New()
	delivered := 0
	p := NewPort(s, testLink, QueueConfig{Capacity: 100}, func(*Packet) { delivered++ }, "t")
	if !p.Send(pkt(1500)) {
		t.Fatal("send on healthy port failed")
	}
	p.SetDown(true)
	if !p.Down() {
		t.Fatal("Down() = false after SetDown(true)")
	}
	for i := 0; i < 3; i++ {
		if p.Send(pkt(1500)) {
			t.Fatal("send on down port succeeded")
		}
	}
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (in-flight packet survives the failure)", delivered)
	}
	st := p.Queue().Stats()
	if st.FaultDropped != 3 {
		t.Fatalf("FaultDropped=%d, want 3", st.FaultDropped)
	}
	if st.Dropped != 0 {
		t.Fatalf("Dropped=%d, want 0 (fault drops are not buffer drops)", st.Dropped)
	}
	p.SetDown(false)
	if !p.Send(pkt(1500)) {
		t.Fatal("send after revival failed")
	}
	s.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d after revival, want 2", delivered)
	}
}

// TestSetLinkDeRateAppliesAtAdmission: a committed packet keeps its
// old-rate schedule; the next admission serializes at the new rate
// starting where the old backlog ends.
func TestSetLinkDeRateAppliesAtAdmission(t *testing.T) {
	s := eventsim.New()
	var times []units.Time
	p := NewPort(s, testLink, QueueConfig{}, func(*Packet) { times = append(times, s.Now()) }, "t")
	p.Send(pkt(1500)) // 12µs tx at 1 Gbps, delivery at 22µs
	p.SetLink(LinkConfig{Bandwidth: 100 * units.Mbps, Delay: 10 * units.Microsecond})
	p.Send(pkt(1500)) // starts at 12µs, 120µs tx, delivery at 142µs
	s.Run()
	want := []units.Time{22 * units.Microsecond, 142 * units.Microsecond}
	if len(times) != 2 || times[0] != want[0] || times[1] != want[1] {
		t.Fatalf("deliveries at %v, want %v", times, want)
	}
}

// TestSetLinkDelayDecreaseKeepsFIFO: shrinking the propagation delay
// mid-run must not let a later packet's delivery event fire before an
// earlier one's — deliver() pops the FIFO head, so that would hand the
// wrong packet to the handler.
func TestSetLinkDelayDecreaseKeepsFIFO(t *testing.T) {
	s := eventsim.New()
	type arrival struct {
		pkt *Packet
		at  units.Time
	}
	var got []arrival
	p := NewPort(s, LinkConfig{Bandwidth: units.Gbps, Delay: units.Millisecond},
		QueueConfig{}, func(pk *Packet) { got = append(got, arrival{pk, s.Now()}) }, "t")
	first := pkt(1500)
	p.Send(first) // delivery at 12µs + 1ms = 1012µs
	p.SetLink(LinkConfig{Bandwidth: units.Gbps, Delay: 0})
	second := pkt(1500)
	p.Send(second)
	s.Run()
	if len(got) != 2 || got[0].pkt != first || got[1].pkt != second {
		t.Fatalf("FIFO violated: got %d arrivals, first-is-first=%v", len(got), len(got) == 2 && got[0].pkt == first)
	}
	if got[1].at < got[0].at {
		t.Fatalf("second delivery (%v) before first (%v)", got[1].at, got[0].at)
	}
	// The second admission was re-anchored behind the first delivery:
	// it starts serializing no earlier than 1012µs, arriving 12µs later.
	if want := 1024 * units.Microsecond; got[1].at != want {
		t.Fatalf("second delivery at %v, want %v", got[1].at, want)
	}
}

// TestEntryRingWrapAroundGrowth exercises grow() with a non-zero head:
// the ring must preserve FIFO order when it doubles while wrapped.
func TestEntryRingWrapAroundGrowth(t *testing.T) {
	var r entryRing
	next := 0
	push := func(n int) {
		for i := 0; i < n; i++ {
			r.push(queueEntry{serviceStart: units.Time(next)})
			next++
		}
	}
	expect := 0
	pop := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			e := r.pop()
			if e.serviceStart != units.Time(expect) {
				t.Fatalf("pop #%d = %v, want %v", expect, e.serviceStart, units.Time(expect))
			}
			expect++
		}
	}
	push(16) // fills the initial capacity exactly
	pop(10)  // head now mid-buffer
	push(10) // wraps around the end
	if r.len() != 16 {
		t.Fatalf("len=%d, want 16", r.len())
	}
	push(5) // n == cap with head != 0: grow() must unwrap correctly
	// Random access must also see the post-growth order.
	for i := 0; i < r.len(); i++ {
		if got := r.at(i).serviceStart; got != units.Time(expect+i) {
			t.Fatalf("at(%d) = %v, want %v", i, got, units.Time(expect+i))
		}
	}
	pop(r.len())
	if r.len() != 0 {
		t.Fatalf("ring not empty after draining")
	}
}

// TestPopDeliveredWithoutAdvance reaches popDelivered's
// not-yet-started accounting branch: when no occupancy query ever ran
// advance(), delivery itself must settle the entry's Dequeued/BytesOut
// accounting.
func TestPopDeliveredWithoutAdvance(t *testing.T) {
	s := eventsim.New()
	p := NewPort(s, testLink, QueueConfig{}, func(*Packet) {}, "t")
	pk := pkt(1500)
	p.Send(pk) // admit on an empty queue runs advance on nothing
	s.Run()
	st := p.Queue().Stats()
	if st.Dequeued != 1 || st.BytesOut != pk.Wire {
		t.Fatalf("Dequeued=%d BytesOut=%d, want 1 and %d", st.Dequeued, st.BytesOut, pk.Wire)
	}
	if got := p.Queue().Bytes(s.Now()); got != 0 {
		t.Fatalf("waiting bytes after drain = %d, want 0", got)
	}
	if got := p.QueueLen(); got != 0 {
		t.Fatalf("queue length after drain = %d, want 0", got)
	}
}
