package netem

import (
	"testing"
	"unsafe"
)

// TestPacketLayout pins the cache-line layout of Packet. Every field a
// switch hop touches — Flow (routing/hashing), Seq/Wire/Ack
// (forwarding and byte accounting), QueueDelay and the single-byte
// flags (admission) — must stay inside the first 64 bytes, and the
// whole struct must stay at 144 bytes so pool freelists and queue
// entries stay small. Growing the packet or pushing a hot field over
// the line is a deliberate decision: update this test and re-run
// make bench.
func TestPacketLayout(t *testing.T) {
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("layout pinned for 64-bit platforms only")
	}
	if got, want := unsafe.Sizeof(Packet{}), uintptr(144); got != want {
		t.Errorf("sizeof(Packet) = %d, want %d", got, want)
	}
	var p Packet
	hot := []struct {
		name string
		off  uintptr
	}{
		{"Flow", unsafe.Offsetof(p.Flow)},
		{"Seq", unsafe.Offsetof(p.Seq)},
		{"Wire", unsafe.Offsetof(p.Wire)},
		{"Ack", unsafe.Offsetof(p.Ack)},
		{"QueueDelay", unsafe.Offsetof(p.QueueDelay)},
		{"Kind", unsafe.Offsetof(p.Kind)},
		{"SackCount", unsafe.Offsetof(p.SackCount)},
		{"CE", unsafe.Offsetof(p.CE)},
		{"ECNEcho", unsafe.Offsetof(p.ECNEcho)},
		{"FIN", unsafe.Offsetof(p.FIN)},
		{"Retransmit", unsafe.Offsetof(p.Retransmit)},
		{"pooled", unsafe.Offsetof(p.pooled)},
	}
	for _, f := range hot {
		if f.off >= 64 {
			t.Errorf("hot field Packet.%s at offset %d crossed the first cache line", f.name, f.off)
		}
	}
	// The cold SACK array must stay last so it never displaces hot
	// fields.
	if off := unsafe.Offsetof(p.SackBlocks); off+unsafe.Sizeof(p.SackBlocks) != unsafe.Sizeof(Packet{}) {
		t.Errorf("SackBlocks at offset %d is no longer the trailing field", off)
	}
}
