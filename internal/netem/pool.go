package netem

// PacketPool recycles Packet structs so the steady-state packet path —
// one Packet per data segment and per ACK, millions per run — stops
// allocating. It is deliberately NOT a sync.Pool: sync.Pool empties on
// GC at nondeterministic points, which would make reuse order (and any
// behaviour accidentally coupled to it) vary across otherwise
// identical runs. This pool is a plain LIFO stack owned by one
// simulation; the engine is single-goroutine, so no locking is needed
// and reuse order is a pure function of the event schedule.
//
// Ownership contract (see DESIGN.md "Engine performance"):
//
//   - The transport endpoint that creates a packet (Get) owns it until
//     it hands it to the network (Port.Send via the fabric).
//   - While queued/in flight the owning Port holds it.
//   - The packet terminates — and MUST be released (Put) — at exactly
//     one of three sinks: the receiving Host after dispatching it to
//     an endpoint, the switch that observed Port.Send refuse it
//     (buffer or fault drop), or nowhere if the run ends with it in
//     flight (the pool dies with the run).
//
// Endpoint handlers must therefore never retain a *Packet beyond the
// handler call; they copy out the fields they need (the receiver's
// out-of-order buffer stores (seq, len) pairs, not packets).
//
// A nil *PacketPool is valid and falls back to plain allocation with
// no-op releases, so tests and tools that do not care about churn can
// pass nothing.
type PacketPool struct {
	free []*Packet
	// allocated counts pool misses (fresh Packet allocations);
	// recycled counts Get hits. For tests and instrumentation.
	allocated int64
	recycled  int64
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a zeroed Packet, recycling a released one when possible.
func (pp *PacketPool) Get() *Packet {
	if pp == nil {
		return &Packet{}
	}
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		pp.recycled++
		*p = Packet{}
		return p
	}
	pp.allocated++
	return &Packet{}
}

// Put releases a packet back to the pool. The caller must be the
// packet's terminating sink: releasing a packet something else still
// holds corrupts the simulation (the same struct would be two packets
// at once). Double-Put panics — it is always an ownership bug.
func (pp *PacketPool) Put(p *Packet) {
	if pp == nil || p == nil {
		return
	}
	if p.pooled {
		panic("netem: packet released to pool twice")
	}
	p.pooled = true
	pp.free = append(pp.free, p)
}

// Allocated returns how many Gets missed the pool (fresh allocations).
func (pp *PacketPool) Allocated() int64 {
	if pp == nil {
		return 0
	}
	return pp.allocated
}

// Recycled returns how many Gets were served from the pool.
func (pp *PacketPool) Recycled() int64 {
	if pp == nil {
		return 0
	}
	return pp.recycled
}

// Idle returns how many released packets are currently pooled.
func (pp *PacketPool) Idle() int {
	if pp == nil {
		return 0
	}
	return len(pp.free)
}
