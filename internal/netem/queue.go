package netem

import (
	"tlb/internal/units"
)

// QueueConfig parameterizes a drop-tail FIFO queue.
type QueueConfig struct {
	// Capacity is the buffer size in packets (the unit the paper and
	// NS2 use). Zero or negative means unbounded.
	Capacity int
	// ECNThreshold K: an arriving packet is CE-marked when the queue
	// already holds >= K waiting packets. Zero disables marking.
	ECNThreshold int
}

// QueueStats accumulates per-queue counters for the whole run.
type QueueStats struct {
	Enqueued int64
	Dropped  int64
	Marked   int64
	MaxLen   int
	BytesIn  units.Bytes
	BytesOut units.Bytes
	Dequeued int64
	// FaultDropped counts packets dropped at admission because the
	// port's link was down (internal/faults), kept separate from
	// Dropped so buffer-overflow statistics are not polluted by
	// injected failures.
	FaultDropped int64
	// SumLenOnArrival sums the queue length seen by each arriving
	// packet (before it joins); with Enqueued+Dropped it yields the
	// mean queue length experienced by arrivals — the quantity Fig. 3a
	// plots the distribution of.
	SumLenOnArrival int64
}

// queueEntry is one admitted packet, the moment it starts service
// (leaves the waiting queue, NS2 drop-tail semantics), when it reaches
// the far end, and the DeliveryKey built at admission that fixes its
// tie-break position among same-instant events.
type queueEntry struct {
	pkt          *Packet
	serviceStart units.Time
	deliverAt    units.Time
	seq          uint64
}

// Queue is a drop-tail FIFO with ECN marking whose occupancy is
// evaluated lazily against precomputed service-start times: the owning
// Port computes, at admission, exactly when each packet will begin
// serializing, so "current queue length" is just a count of entries
// whose service has not started yet. This lets the Port schedule a
// single simulator event per packet (its delivery) instead of separate
// dequeue and delivery events — the difference is about 2x on whole-run
// time.
type Queue struct {
	cfg QueueConfig
	// entries holds admitted-but-undelivered packets in FIFO order;
	// the first `started` of them have already begun service.
	entries entryRing
	started int
	// waitingBytes is the wire-byte occupancy of the waiting part.
	waitingBytes units.Bytes
	stats        QueueStats
}

// NewQueue returns an empty queue.
func NewQueue(cfg QueueConfig) *Queue {
	return &Queue{cfg: cfg}
}

// advance accounts for entries whose service has begun by time now.
func (q *Queue) advance(now units.Time) {
	for q.started < q.entries.len() {
		e := q.entries.at(q.started)
		if e.serviceStart > now {
			break
		}
		q.started++
		q.waitingBytes -= e.pkt.Wire
		q.stats.Dequeued++
		q.stats.BytesOut += e.pkt.Wire
	}
}

// Len returns the number of packets waiting (service not yet started)
// at time now.
func (q *Queue) Len(now units.Time) int {
	q.advance(now)
	return q.entries.len() - q.started
}

// Bytes returns the wire bytes waiting at time now.
func (q *Queue) Bytes(now units.Time) units.Bytes {
	q.advance(now)
	return q.waitingBytes
}

// Stats returns a copy of the accumulated counters.
func (q *Queue) Stats() QueueStats { return q.stats }

// Config returns the queue's configuration.
func (q *Queue) Config() QueueConfig { return q.cfg }

// admit applies drop-tail and ECN policy and records the packet with
// its (already computed) service-start time. It reports false on drop.
func (q *Queue) admit(p *Packet, now, serviceStart units.Time) bool {
	l := q.Len(now)
	q.stats.SumLenOnArrival += int64(l)
	if q.cfg.Capacity > 0 && l >= q.cfg.Capacity {
		q.stats.Dropped++
		return false
	}
	// Per-packet queue-seen stats (Fig. 3a input) record only admitted
	// packets: a dropped packet never experiences the queue, and its
	// copy will be retransmitted with fresh counters.
	if l > p.MaxQueueSeen {
		p.MaxQueueSeen = l
	}
	if q.cfg.ECNThreshold > 0 && l >= q.cfg.ECNThreshold {
		p.CE = true
		q.stats.Marked++
	}
	p.EnqueuedAt = now
	p.QueueDelay += serviceStart - now
	q.entries.push(queueEntry{pkt: p, serviceStart: serviceStart})
	q.waitingBytes += p.Wire
	q.stats.Enqueued++
	q.stats.BytesIn += p.Wire
	if l+1 > q.stats.MaxLen {
		q.stats.MaxLen = l + 1
	}
	return true
}

// faultDrop records an admission drop at a down port.
func (q *Queue) faultDrop() { q.stats.FaultDropped++ }

// setDelivery stamps the most recently admitted entry with its
// delivery time and admission-built DeliveryKey; only admitted packets
// get a key — a dropped packet has no delivery instant to order.
func (q *Queue) setDelivery(deliverAt units.Time, seq uint64) {
	e := q.entries.tailRef()
	e.deliverAt = deliverAt
	e.seq = seq
}

// headDelivery returns the delivery time and DeliveryKey of the oldest
// undelivered entry — the one the port's single pending engine event
// stands for.
func (q *Queue) headDelivery() (units.Time, uint64) {
	e := q.entries.headRef()
	return e.deliverAt, e.seq
}

// hasEntries reports whether any admitted packet is still undelivered.
func (q *Queue) hasEntries() bool { return q.entries.len() > 0 }

// popDelivered removes and returns the oldest entry (its delivery
// event has fired).
func (q *Queue) popDelivered() *Packet {
	e := q.entries.pop()
	if q.started > 0 {
		q.started--
	} else {
		// Delivery implies service completed long ago; account for it.
		q.waitingBytes -= e.pkt.Wire
		q.stats.Dequeued++
		q.stats.BytesOut += e.pkt.Wire
	}
	return e.pkt
}

// entryRing is a growable FIFO ring buffer; it avoids the
// per-operation allocation a linked list would pay on the simulator's
// hottest path.
type entryRing struct {
	buf  []queueEntry
	head int
	n    int
}

func (r *entryRing) len() int { return r.n }

func (r *entryRing) at(i int) queueEntry {
	return r.buf[(r.head+i)%len(r.buf)]
}

func (r *entryRing) push(e queueEntry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
}

func (r *entryRing) headRef() *queueEntry {
	return &r.buf[r.head]
}

func (r *entryRing) tailRef() *queueEntry {
	return &r.buf[(r.head+r.n-1)%len(r.buf)]
}

func (r *entryRing) pop() queueEntry {
	if r.n == 0 {
		panic("netem: pop from empty queue")
	}
	e := r.buf[r.head]
	r.buf[r.head] = queueEntry{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return e
}

func (r *entryRing) grow() {
	newCap := len(r.buf) * 2
	if newCap == 0 {
		newCap = 16
	}
	nb := make([]queueEntry, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
}
