package netem

import (
	"testing"
	"testing/quick"

	"tlb/internal/eventsim"
	"tlb/internal/units"
)

func pkt(n units.Bytes) *Packet {
	return &Packet{Flow: FlowID{Src: 0, Dst: 1}, Kind: Data, Payload: n - 40, Wire: n}
}

// Link: 1500B at 1Gbps serializes in 12µs.
//
//simlint:allow sharedstate(immutable link fixture; tests only read it)
var testLink = LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond}

func TestPortDeliversWithSerializationAndPropagation(t *testing.T) {
	s := eventsim.New()
	var deliveredAt units.Time
	p := NewPort(s, testLink, QueueConfig{}, func(*Packet) { deliveredAt = s.Now() }, "t")
	p.Send(pkt(1500))
	s.Run()
	want := 12*units.Microsecond + 10*units.Microsecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestPortBackToBackSerialization(t *testing.T) {
	s := eventsim.New()
	var times []units.Time
	p := NewPort(s, testLink, QueueConfig{}, func(*Packet) { times = append(times, s.Now()) }, "t")
	for i := 0; i < 3; i++ {
		p.Send(pkt(1500))
	}
	s.Run()
	// Deliveries at 12+10, 24+10, 36+10 µs.
	want := []units.Time{22 * units.Microsecond, 34 * units.Microsecond, 46 * units.Microsecond}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("delivery %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestQueueLenExcludesInService(t *testing.T) {
	s := eventsim.New()
	p := NewPort(s, testLink, QueueConfig{}, func(*Packet) {}, "t")
	for i := 0; i < 5; i++ {
		p.Send(pkt(1500))
	}
	// At t=0 one packet is in service, 4 wait.
	if got := p.QueueLen(); got != 4 {
		t.Fatalf("QueueLen at t0 = %d, want 4", got)
	}
	// After 2 serializations (24µs) 2 remain waiting.
	s.RunUntil(24 * units.Microsecond)
	if got := p.QueueLen(); got != 2 {
		t.Fatalf("QueueLen at 24µs = %d, want 2", got)
	}
	s.Run()
	if got := p.QueueLen(); got != 0 {
		t.Fatalf("QueueLen after drain = %d, want 0", got)
	}
}

func TestDropTail(t *testing.T) {
	s := eventsim.New()
	delivered := 0
	p := NewPort(s, testLink, QueueConfig{Capacity: 3}, func(*Packet) { delivered++ }, "t")
	sent := 0
	for i := 0; i < 10; i++ {
		if p.Send(pkt(1500)) {
			sent++
		}
	}
	// 1 in service + 3 queued admitted; the rest dropped.
	if sent != 4 {
		t.Fatalf("admitted %d, want 4", sent)
	}
	s.Run()
	if delivered != 4 {
		t.Fatalf("delivered %d, want 4", delivered)
	}
	if d := p.Queue().Stats().Dropped; d != 6 {
		t.Fatalf("drops = %d, want 6", d)
	}
}

func TestECNMarking(t *testing.T) {
	s := eventsim.New()
	var marked int
	p := NewPort(s, testLink, QueueConfig{Capacity: 100, ECNThreshold: 2},
		func(pk *Packet) {
			if pk.CE {
				marked++
			}
		}, "t")
	for i := 0; i < 6; i++ {
		p.Send(pkt(1500))
	}
	s.Run()
	// Arrivals see waiting lengths 0,0,1,2,3,4 -> marked when >= 2:
	// the 4th, 5th and 6th packets.
	if marked != 3 {
		t.Fatalf("marked %d, want 3", marked)
	}
	if m := p.Queue().Stats().Marked; m != 3 {
		t.Fatalf("stats.Marked = %d, want 3", m)
	}
}

func TestQueueDelayAccounting(t *testing.T) {
	s := eventsim.New()
	var delays []units.Time
	p := NewPort(s, testLink, QueueConfig{}, func(pk *Packet) { delays = append(delays, pk.QueueDelay) }, "t")
	for i := 0; i < 3; i++ {
		p.Send(pkt(1500))
	}
	s.Run()
	// Waiting times: 0, 12µs, 24µs.
	want := []units.Time{0, 12 * units.Microsecond, 24 * units.Microsecond}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delay %d = %v, want %v", i, delays[i], want[i])
		}
	}
}

func TestMaxQueueSeen(t *testing.T) {
	s := eventsim.New()
	var seen []int
	p := NewPort(s, testLink, QueueConfig{}, func(pk *Packet) { seen = append(seen, pk.MaxQueueSeen) }, "t")
	for i := 0; i < 4; i++ {
		p.Send(pkt(1500))
	}
	s.Run()
	want := []int{0, 0, 1, 2}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("MaxQueueSeen %d = %d, want %d", i, seen[i], want[i])
		}
	}
}

func TestBusyTime(t *testing.T) {
	s := eventsim.New()
	p := NewPort(s, testLink, QueueConfig{}, func(*Packet) {}, "t")
	for i := 0; i < 5; i++ {
		p.Send(pkt(1500))
	}
	s.Run()
	if got, want := p.BusyTime(), 60*units.Microsecond; got != want {
		t.Fatalf("BusyTime = %v, want %v", got, want)
	}
}

// TestConservation: admitted packets are all delivered, exactly once,
// in FIFO order, regardless of arrival pattern.
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := eventsim.NewRNG(seed)
		s := eventsim.New()
		var delivered []int
		p := NewPort(s, testLink, QueueConfig{Capacity: 8}, func(pk *Packet) {
			delivered = append(delivered, pk.Flow.Port)
		}, "t")
		admitted := []int{}
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			i := i
			at := units.Time(rng.Intn(2000)) * units.Microsecond
			s.At(at, func() {
				pk := pkt(units.Bytes(100 + rng.Intn(1400)))
				pk.Flow.Port = i
				if p.Send(pk) {
					admitted = append(admitted, i)
				}
			})
		}
		s.Run()
		if len(delivered) != len(admitted) {
			return false
		}
		for i := range admitted {
			if delivered[i] != admitted[i] {
				return false
			}
		}
		return p.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowIDHashDeterministicAndSeeded(t *testing.T) {
	id := FlowID{Src: 3, Dst: 9, Port: 42}
	if id.Hash(1) != id.Hash(1) {
		t.Fatal("hash not deterministic")
	}
	if id.Hash(1) == id.Hash(2) {
		t.Fatal("hash ignores seed")
	}
	if id.Hash(1) == id.Reversed().Hash(1) {
		t.Fatal("hash ignores direction")
	}
}

func TestFlowIDReversed(t *testing.T) {
	id := FlowID{Src: 1, Dst: 2, Port: 7}
	r := id.Reversed()
	if r.Src != 2 || r.Dst != 1 || r.Port != 7 {
		t.Fatalf("Reversed = %v", r)
	}
	if r.Reversed() != id {
		t.Fatal("double reverse is not identity")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Data: "DATA", Ack: "ACK", Syn: "SYN", SynAck: "SYNACK"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q", k, k.String())
		}
	}
}

func TestEstimatedDelay(t *testing.T) {
	s := eventsim.New()
	p := NewPort(s, testLink, QueueConfig{}, func(*Packet) {}, "t")
	ownTx := testLink.Bandwidth.TxTime(refWire)
	// Empty: propagation plus the placed packet's own serialization.
	if got := p.EstimatedDelay(); got != testLink.Delay+ownTx {
		t.Fatalf("empty EstimatedDelay = %v, want %v", got, testLink.Delay+ownTx)
	}
	// 3 packets of 1500B: the committed backlog — the in-service
	// packet's residual plus the two waiting — drains 36µs from now.
	for i := 0; i < 3; i++ {
		p.Send(pkt(1500))
	}
	want := testLink.Delay + ownTx + testLink.Bandwidth.TxTime(3*1500)
	if got := p.EstimatedDelay(); got != want {
		t.Fatalf("EstimatedDelay with backlog = %v, want %v", got, want)
	}
}

func TestEstimatedDelayComparableAcrossAsymmetricPorts(t *testing.T) {
	s := eventsim.New()
	fast := NewPort(s, LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		QueueConfig{}, func(*Packet) {}, "fast")
	slow := NewPort(s, LinkConfig{Bandwidth: units.Gbps, Delay: 4 * units.Millisecond},
		QueueConfig{}, func(*Packet) {}, "slow")
	// Both empty: the fast port must look strictly cheaper even though
	// both queue lengths are zero.
	if fast.QueueLen() != slow.QueueLen() {
		t.Fatal("queue lengths differ unexpectedly")
	}
	if fast.EstimatedDelay() >= slow.EstimatedDelay() {
		t.Fatal("delay asymmetry invisible to EstimatedDelay")
	}
	// It takes ~333 packets of backlog at 1 Gbps to make the fast port
	// as expensive as the slow port's bare propagation delay.
	for i := 0; i < 100; i++ {
		fast.Send(pkt(1500))
	}
	if fast.EstimatedDelay() >= slow.EstimatedDelay() {
		t.Fatal("100-packet backlog should still be cheaper than +4ms")
	}
	for i := 0; i < 300; i++ {
		fast.Send(pkt(1500))
	}
	if fast.EstimatedDelay() <= slow.EstimatedDelay() {
		t.Fatal("400-packet backlog should exceed +4ms")
	}
}

func TestQueueBytesAccounting(t *testing.T) {
	s := eventsim.New()
	p := NewPort(s, testLink, QueueConfig{}, func(*Packet) {}, "t")
	for i := 0; i < 4; i++ {
		p.Send(pkt(1500))
	}
	// First packet in service: 3 waiting -> 4500 bytes.
	if got := p.Queue().Bytes(s.Now()); got != 4500 {
		t.Fatalf("Bytes = %v, want 4500", got)
	}
	s.Run()
	if got := p.Queue().Bytes(s.Now()); got != 0 {
		t.Fatalf("Bytes after drain = %v", got)
	}
	st := p.Queue().Stats()
	if st.Enqueued != 4 || st.Dequeued != 4 || st.BytesIn != 6000 || st.BytesOut != 6000 {
		t.Fatalf("stats %+v", st)
	}
}
