package netem

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/units"
)

func TestPacketPoolRecyclesZeroed(t *testing.T) {
	pp := NewPacketPool()
	p := pp.Get()
	p.Flow = FlowID{Src: 1, Dst: 2, Port: 3}
	p.Kind = Ack
	p.Seq = 1000
	p.Payload = 1460
	p.Wire = 1500
	p.Ack = 99
	p.SackBlocks[0] = SackBlock{Start: 1, End: 2}
	p.SackCount = 1
	p.CE = true
	p.ECNEcho = true
	p.FIN = true
	p.SentAt = 7
	p.EnqueuedAt = 8
	p.Retransmit = true
	p.QueueDelay = 9
	p.MaxQueueSeen = 10
	pp.Put(p)

	q := pp.Get()
	//simlint:allow packetown(the test pins recycle identity: comparing the stale pointer is the point)
	if q != p {
		t.Fatal("pool did not recycle the released packet")
	}
	if *q != (Packet{}) {
		t.Fatalf("recycled packet not zeroed: %+v", *q)
	}
	if pp.Recycled() != 1 || pp.Allocated() != 1 {
		t.Fatalf("counters: allocated=%d recycled=%d, want 1/1", pp.Allocated(), pp.Recycled())
	}
}

// TestPacketPoolLIFO pins deterministic reuse order: last released,
// first reused. Determinism of reuse order is part of the byte-identity
// contract (any accidental coupling to it must at least be stable).
func TestPacketPoolLIFO(t *testing.T) {
	pp := NewPacketPool()
	a, b := pp.Get(), pp.Get()
	pp.Put(a)
	pp.Put(b)
	if pp.Idle() != 2 {
		t.Fatalf("idle = %d, want 2", pp.Idle())
	}
	//simlint:allow packetown(the LIFO test compares released pointers by identity on purpose)
	if got := pp.Get(); got != b {
		t.Fatal("pool is not LIFO: first Get after Put(a), Put(b) was not b")
	}
	//simlint:allow packetown(the LIFO test compares released pointers by identity on purpose)
	if got := pp.Get(); got != a {
		t.Fatal("pool is not LIFO: second Get was not a")
	}
}

func TestPacketPoolDoublePutPanics(t *testing.T) {
	pp := NewPacketPool()
	p := pp.Get()
	pp.Put(p)
	defer func() {
		if recover() == nil {
			t.Error("double Put did not panic")
		}
	}()
	//simlint:allow packetown(the test provokes the double-release panic the contract promises)
	pp.Put(p)
}

// TestNilPacketPool: a nil pool degrades to plain allocation so
// standalone endpoints and tests need no wiring.
func TestNilPacketPool(t *testing.T) {
	var pp *PacketPool
	p := pp.Get()
	if p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pp.Put(p) // must not panic
	if pp.Idle() != 0 || pp.Allocated() != 0 || pp.Recycled() != 0 {
		t.Fatal("nil pool reported non-zero stats")
	}
}

// TestPortTransitSteadyStateAllocFree is the engine-level allocation
// gate at the netem layer: once the pool, freelist and queue ring are
// warm, a full send+serialize+deliver+release cycle through a Port
// must not allocate at all.
func TestPortTransitSteadyStateAllocFree(t *testing.T) {
	s := eventsim.New()
	pp := NewPacketPool()
	p := NewPort(s,
		LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		QueueConfig{Capacity: 1 << 20},
		func(pkt *Packet) { pp.Put(pkt) }, "gate")

	transit := func() {
		pkt := pp.Get()
		pkt.Flow = FlowID{Src: 1, Dst: 2}
		pkt.Kind = Data
		pkt.Payload = 1460
		pkt.Wire = 1500
		if !p.Send(pkt) {
			t.Fatal("send refused")
		}
		s.Run()
	}
	for i := 0; i < 4096; i++ { // warm pool, freelist, ring
		transit()
	}
	if allocs := testing.AllocsPerRun(2000, transit); allocs != 0 {
		t.Fatalf("steady-state port transit allocates %.1f allocs/op, want 0", allocs)
	}
	if pp.Allocated() > 2 {
		t.Fatalf("pool allocated %d packets for a 1-deep pipeline", pp.Allocated())
	}
}
