package topology

import (
	"strings"
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/units"
)

func ftConfig(k int) FatTreeConfig {
	return FatTreeConfig{
		K:          k,
		HostLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink: netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:      netem.QueueConfig{Capacity: 128},
	}
}

func buildFT(t *testing.T, k int, f lb.Factory) (*FatTree, *eventsim.Sim, map[int]int) {
	t.Helper()
	s := eventsim.New()
	got := map[int]int{}
	ft, err := NewFatTree(s, ftConfig(k), f, eventsim.NewRNG(1), func(host int, pkt *netem.Packet) {
		got[host]++
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, s, got
}

func TestFatTreeValidate(t *testing.T) {
	bad := []FatTreeConfig{
		{K: 0},
		{K: 3, HostLink: netem.LinkConfig{Bandwidth: 1}, FabricLink: netem.LinkConfig{Bandwidth: 1}},
		{K: 4}, // no bandwidth
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	good := ftConfig(4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeCounts(t *testing.T) {
	cfg := ftConfig(4)
	if cfg.Hosts() != 16 || cfg.Paths() != 4 {
		t.Fatalf("k=4: hosts=%d paths=%d", cfg.Hosts(), cfg.Paths())
	}
	cfg.K = 8
	if cfg.Hosts() != 128 || cfg.Paths() != 16 {
		t.Fatalf("k=8: hosts=%d paths=%d", cfg.Hosts(), cfg.Paths())
	}
	ft, _, _ := buildFT(t, 4, lb.ECMP())
	if len(ft.edges) != 8 || len(ft.aggs) != 8 || len(ft.cores) != 4 {
		t.Fatalf("switch counts: %d edges %d aggs %d cores", len(ft.edges), len(ft.aggs), len(ft.cores))
	}
	// Balanced ports: 8 edges * 2 up + 8 aggs * 2 up = 32.
	if got := len(ft.BalancedPorts()); got != 32 {
		t.Fatalf("%d balanced ports, want 32", got)
	}
}

func dataPacket(src, dst int) *netem.Packet {
	return &netem.Packet{Flow: netem.FlowID{Src: src, Dst: dst}, Kind: netem.Data, Payload: 1000, Wire: 1040}
}

func TestFatTreeDelivery(t *testing.T) {
	ft, s, got := buildFT(t, 4, lb.ECMP())
	// Same edge (hosts 0,1), same pod different edge (0,2), inter-pod
	// (0, 12).
	cases := [][2]int{{0, 1}, {0, 2}, {0, 12}, {15, 0}, {7, 8}}
	for _, c := range cases {
		ft.Inject(c[0], dataPacket(c[0], c[1]))
	}
	s.Run()
	for _, c := range cases {
		if got[c[1]] == 0 {
			t.Fatalf("host %d never received packet from %d", c[1], c[0])
		}
	}
	if ft.Drops() != 0 {
		t.Fatalf("drops: %d", ft.Drops())
	}
}

func TestFatTreeSameEdgeSkipsFabric(t *testing.T) {
	ft, s, got := buildFT(t, 4, lb.ECMP())
	ft.Inject(0, dataPacket(0, 1))
	s.Run()
	if got[1] != 1 {
		t.Fatal("not delivered")
	}
	for _, e := range ft.edges {
		for _, p := range e.up {
			if p.Queue().Stats().Enqueued != 0 {
				t.Fatal("same-edge packet left the edge switch")
			}
		}
	}
}

func TestFatTreeIntraPodStaysInPod(t *testing.T) {
	ft, s, _ := buildFT(t, 4, lb.ECMP())
	// Hosts 0 and 2: same pod (0), different edges.
	ft.Inject(0, dataPacket(0, 2))
	s.Run()
	for _, a := range ft.aggs {
		for _, p := range a.up {
			if p.Queue().Stats().Enqueued != 0 {
				t.Fatal("intra-pod packet reached a core uplink")
			}
		}
	}
}

func TestFatTreeInterPodCrossesCore(t *testing.T) {
	ft, s, got := buildFT(t, 4, lb.ECMP())
	ft.Inject(0, dataPacket(0, 12)) // pod 0 -> pod 3
	s.Run()
	if got[12] != 1 {
		t.Fatal("not delivered")
	}
	coreHits := 0
	for _, a := range ft.aggs {
		for _, p := range a.up {
			coreHits += int(p.Queue().Stats().Enqueued)
		}
	}
	if coreHits != 1 {
		t.Fatalf("inter-pod packet crossed %d agg uplinks, want 1", coreHits)
	}
}

// TestFatTreeAllPairs delivers a packet between every host pair under
// per-packet random balancing, proving the routing tables are complete.
func TestFatTreeAllPairs(t *testing.T) {
	ft, s, got := buildFT(t, 4, lb.RPS())
	n := ft.Hosts()
	sent := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			ft.Inject(src, dataPacket(src, dst))
			sent++
		}
	}
	s.Run()
	recv := 0
	for _, c := range got {
		recv += c
	}
	if recv != sent {
		t.Fatalf("delivered %d of %d", recv, sent)
	}
	if ft.Drops() != 0 {
		t.Fatalf("drops: %d", ft.Drops())
	}
}

func TestFatTreeEveryQueueLabels(t *testing.T) {
	ft, _, _ := buildFT(t, 4, lb.ECMP())
	n := 0
	for range onlyLabels(ft) {
		n++
	}
	// host NICs 16 + edge down 16 + edge up 16 + agg down 16 +
	// agg up 16 + core down 16 = 96.
	if n != 96 {
		t.Fatalf("EveryQueue visited %d queues, want 96", n)
	}
}

func onlyLabels(ft *FatTree) map[string]bool {
	labels := map[string]bool{}
	ft.EveryQueue(func(label string, q *netem.Queue) {
		labels[label] = true
	})
	return labels
}

func TestFatTreeBalancerPerSwitch(t *testing.T) {
	// Count distinct balancer instances created: one per edge + agg.
	instances := 0
	counting := func(sim *eventsim.Sim, rng *eventsim.RNG, ports []*netem.Port) lb.Balancer {
		instances++
		return lb.ECMP()(sim, rng, ports)
	}
	buildFT(t, 4, counting)
	if instances != 16 {
		t.Fatalf("%d balancer instances, want 16 (8 edges + 8 aggs)", instances)
	}
}

func TestFatTreeLabelsWellFormed(t *testing.T) {
	ft, _, _ := buildFT(t, 4, lb.ECMP())
	for l := range onlyLabels(ft) {
		if !strings.Contains(l, "->") {
			t.Fatalf("label %q malformed", l)
		}
	}
}
