package topology

import (
	"strings"
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/units"
)

func testConfig() Config {
	return Config{
		Leaves:       2,
		Spines:       3,
		HostsPerLeaf: 2,
		HostLink:     netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:        netem.QueueConfig{Capacity: 64},
	}
}

func build(t *testing.T, cfg Config, f lb.Factory) (*Fabric, *eventsim.Sim, map[int][]*netem.Packet) {
	t.Helper()
	s := eventsim.New()
	got := map[int][]*netem.Packet{}
	fab, err := New(s, cfg, f, eventsim.NewRNG(1), func(host int, pkt *netem.Packet) {
		got[host] = append(got[host], pkt)
	})
	if err != nil {
		t.Fatal(err)
	}
	return fab, s, got
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{Leaves: 1, Spines: 0, HostsPerLeaf: 1},
		{Leaves: 1, Spines: 1, HostsPerLeaf: 0},
		{Leaves: 1, Spines: 1, HostsPerLeaf: 1}, // missing bandwidth
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated but should not", i)
		}
	}
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	over := good
	over.Overrides = []LinkOverride{{Leaf: 5, Spine: 0, Link: good.FabricLink}}
	if err := over.Validate(); err == nil {
		t.Error("out-of-range override validated")
	}
}

func TestCountsAndHelpers(t *testing.T) {
	cfg := testConfig()
	if cfg.Hosts() != 4 || cfg.Paths() != 3 {
		t.Fatalf("Hosts=%d Paths=%d", cfg.Hosts(), cfg.Paths())
	}
	// BaseRTT: 2*(2*5 + 2*10) = 60µs.
	if got := cfg.BaseRTT(); got != 60*units.Microsecond {
		t.Fatalf("BaseRTT = %v", got)
	}
	fab, _, _ := build(t, cfg, lb.ECMP())
	if fab.LeafOf(0) != 0 || fab.LeafOf(1) != 0 || fab.LeafOf(2) != 1 || fab.LeafOf(3) != 1 {
		t.Fatal("LeafOf mapping wrong")
	}
}

func TestCrossLeafDelivery(t *testing.T) {
	fab, s, got := build(t, testConfig(), lb.ECMP())
	pkt := &netem.Packet{Flow: netem.FlowID{Src: 0, Dst: 3}, Kind: netem.Data, Payload: 1000, Wire: 1040}
	fab.Inject(0, pkt)
	s.Run()
	if len(got[3]) != 1 {
		t.Fatalf("host 3 received %d packets, want 1", len(got[3]))
	}
	// Path: host NIC + leaf uplink + spine downlink + leaf downlink =
	// 4 serializations (1040B ~ 8.32µs each) + delays 5+10+10+5 = 30µs.
	wantMin := 30 * units.Microsecond
	if s.Now() <= wantMin {
		t.Fatalf("delivery at %v, expected after %v", s.Now(), wantMin)
	}
}

func TestSameLeafDeliverySkipsFabric(t *testing.T) {
	fab, s, got := build(t, testConfig(), lb.ECMP())
	pkt := &netem.Packet{Flow: netem.FlowID{Src: 0, Dst: 1}, Kind: netem.Data, Payload: 1000, Wire: 1040}
	fab.Inject(0, pkt)
	s.Run()
	if len(got[1]) != 1 {
		t.Fatalf("host 1 received %d packets", len(got[1]))
	}
	for _, sp := range [][]*netem.Port{fab.DownlinksOfSpine(0), fab.DownlinksOfSpine(1), fab.DownlinksOfSpine(2)} {
		for _, p := range sp {
			if p.Queue().Stats().Enqueued != 0 {
				t.Fatal("intra-leaf packet crossed a spine")
			}
		}
	}
}

func TestInjectWrongHostPanics(t *testing.T) {
	fab, _, _ := build(t, testConfig(), lb.ECMP())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on src mismatch")
		}
	}()
	fab.Inject(1, &netem.Packet{Flow: netem.FlowID{Src: 0, Dst: 3}, Wire: 100})
}

func TestOverridesApplyToBothDirections(t *testing.T) {
	cfg := testConfig()
	slow := netem.LinkConfig{Bandwidth: 100 * units.Mbps, Delay: units.Millisecond}
	cfg.Overrides = []LinkOverride{{Leaf: 0, Spine: 1, Link: slow}}
	fab, _, _ := build(t, cfg, lb.ECMP())
	up := fab.Uplinks(0)[1]
	if up.Link() != slow {
		t.Fatalf("uplink override not applied: %+v", up.Link())
	}
	down := fab.DownlinksOfSpine(1)[0]
	if down.Link() != slow {
		t.Fatalf("downlink override not applied: %+v", down.Link())
	}
	// Non-overridden links untouched.
	if fab.Uplinks(0)[0].Link() != cfg.FabricLink {
		t.Fatal("non-overridden link changed")
	}
	if fab.Uplinks(1)[1].Link() != cfg.FabricLink {
		t.Fatal("other leaf's link to spine 1 changed")
	}
}

func TestEveryQueueCoversAllPorts(t *testing.T) {
	cfg := testConfig()
	fab, _, _ := build(t, cfg, lb.ECMP())
	n := 0
	labels := map[string]bool{}
	fab.EveryQueue(func(label string, q *netem.Queue) {
		n++
		labels[label] = true
	})
	// host NICs (4) + leaf down (4) + leaf up (2*3) + spine down (3*2).
	if want := 4 + 4 + 6 + 6; n != want {
		t.Fatalf("EveryQueue visited %d, want %d", n, want)
	}
	if len(labels) != n {
		t.Fatal("duplicate port labels")
	}
	for l := range labels {
		if !strings.Contains(l, "->") {
			t.Fatalf("label %q malformed", l)
		}
	}
}

func TestBalancerSeesOnlyCrossLeafTraffic(t *testing.T) {
	picks := 0
	counting := func(sim *eventsim.Sim, rng *eventsim.RNG, ports []*netem.Port) lb.Balancer {
		return countingBalancer{n: &picks}
	}
	fab, s, _ := build(t, testConfig(), counting)
	fab.Inject(0, &netem.Packet{Flow: netem.FlowID{Src: 0, Dst: 1}, Wire: 100}) // intra-leaf
	fab.Inject(0, &netem.Packet{Flow: netem.FlowID{Src: 0, Dst: 2}, Wire: 100}) // cross-leaf
	s.Run()
	if picks != 1 {
		t.Fatalf("balancer consulted %d times, want 1", picks)
	}
}

type countingBalancer struct{ n *int }

func (c countingBalancer) Name() string { return "counting" }
func (c countingBalancer) Pick(_ *netem.Packet, _ []*netem.Port) int {
	*c.n++
	return 0
}

func TestDropsCountedOnOverflow(t *testing.T) {
	cfg := testConfig()
	cfg.Queue = netem.QueueConfig{Capacity: 1}
	fab, s, _ := build(t, cfg, lb.ECMP())
	for i := 0; i < 50; i++ {
		fab.Inject(0, &netem.Packet{Flow: netem.FlowID{Src: 0, Dst: 3, Port: i}, Kind: netem.Data, Payload: 1460, Wire: 1500})
	}
	s.Run()
	if fab.Drops() == 0 {
		t.Fatal("burst into capacity-1 queues recorded no drops")
	}
}

func TestFabricBalancedPorts(t *testing.T) {
	fab, _, _ := build(t, testConfig(), lb.ECMP())
	ports := fab.BalancedPorts()
	if len(ports) != 2*3 { // leaves * spines
		t.Fatalf("%d balanced ports, want 6", len(ports))
	}
	if fab.Hosts() != 4 {
		t.Fatalf("Hosts() = %d", fab.Hosts())
	}
	// Order: leaf-major, spine-minor.
	if ports[0].Label() != "leaf0->spine0" || ports[5].Label() != "leaf1->spine2" {
		t.Fatalf("port order: %s ... %s", ports[0].Label(), ports[5].Label())
	}
}
