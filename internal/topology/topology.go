// Package topology builds the leaf-spine fabrics the paper evaluates
// on: hosts attached to leaf (ToR) switches, every leaf connected to
// every spine, giving #spines equal-cost paths between hosts on
// different leaves.
//
// The fabric owns all switch ports and routing; transport endpoints
// plug in via an injection function (host -> fabric) and a delivery
// callback (fabric -> host). Load balancing happens at the leaf
// switches' uplink choice, exactly where the paper deploys TLB.
package topology

import (
	"fmt"

	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// LinkOverride re-parameterizes one leaf<->spine pair, in both
// directions, to create the asymmetric topologies of the paper's
// Fig. 16 (extra delay) and Fig. 17 (reduced bandwidth).
type LinkOverride struct {
	Leaf, Spine int
	Link        netem.LinkConfig
}

// Config describes a leaf-spine fabric.
type Config struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int

	// HostLink is the host<->leaf link in each direction.
	HostLink netem.LinkConfig
	// FabricLink is the default leaf<->spine link in each direction.
	FabricLink netem.LinkConfig
	// Queue applies to every output queue in the fabric.
	Queue netem.QueueConfig

	// Overrides punch asymmetry into specific leaf-spine pairs.
	Overrides []LinkOverride
}

// Validate reports a descriptive error for an unusable configuration.
func (c *Config) Validate() error {
	switch {
	case c.Leaves < 1:
		return fmt.Errorf("topology: need at least 1 leaf, got %d", c.Leaves)
	case c.Spines < 1:
		return fmt.Errorf("topology: need at least 1 spine, got %d", c.Spines)
	case c.HostsPerLeaf < 1:
		return fmt.Errorf("topology: need at least 1 host per leaf, got %d", c.HostsPerLeaf)
	case c.HostLink.Bandwidth <= 0 || c.FabricLink.Bandwidth <= 0:
		return fmt.Errorf("topology: links need positive bandwidth")
	}
	for _, o := range c.Overrides {
		if o.Leaf < 0 || o.Leaf >= c.Leaves || o.Spine < 0 || o.Spine >= c.Spines {
			return fmt.Errorf("topology: override (%d,%d) out of range", o.Leaf, o.Spine)
		}
		if o.Link.Bandwidth <= 0 {
			return fmt.Errorf("topology: override (%d,%d) needs positive bandwidth", o.Leaf, o.Spine)
		}
	}
	return nil
}

// Hosts returns the total number of hosts.
func (c *Config) Hosts() int { return c.Leaves * c.HostsPerLeaf }

// Paths returns the number of equal-cost paths between hosts on
// different leaves (one per spine).
func (c *Config) Paths() int { return c.Spines }

// BaseRTT returns the round-trip propagation delay between hosts on
// different leaves over a default (non-overridden) path, excluding
// serialization: 2 host links + 4 fabric links, out and back.
func (c *Config) BaseRTT() units.Time {
	oneWay := 2*c.HostLink.Delay + 2*c.FabricLink.Delay
	return 2 * oneWay
}

// DeliverFunc receives packets that reach their destination host.
type DeliverFunc func(host int, pkt *netem.Packet)

// Fabric is an instantiated leaf-spine network.
type Fabric struct {
	sim *eventsim.Sim
	cfg Config

	// hostNIC[h] is host h's NIC output port toward its leaf.
	hostNIC []*netem.Port
	leaves  []*leafSwitch
	spines  []*spineSwitch

	deliver DeliverFunc
	drops   int64
	pool    *netem.PacketPool
}

type leafSwitch struct {
	f *Fabric
	// id is the leaf index.
	id int
	// down[i] leads to local host index i (0..HostsPerLeaf-1).
	down []*netem.Port
	// up[s] leads to spine s.
	up []*netem.Port
	// bal chooses among up.
	bal lb.Balancer
}

type spineSwitch struct {
	f  *Fabric
	id int
	// down[l] leads to leaf l.
	down []*netem.Port
}

// New constructs the fabric. factory instantiates each leaf's
// load balancer; rng seeds per-component deterministic streams; deliver
// receives packets arriving at hosts.
func New(sim *eventsim.Sim, cfg Config, factory lb.Factory, rng *eventsim.RNG, deliver DeliverFunc) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if deliver == nil {
		return nil, fmt.Errorf("topology: nil deliver callback")
	}
	f := &Fabric{sim: sim, cfg: cfg, deliver: deliver}

	overrides := make(map[[2]int]netem.LinkConfig, len(cfg.Overrides))
	for _, o := range cfg.Overrides {
		overrides[[2]int{o.Leaf, o.Spine}] = o.Link
	}
	fabricLink := func(leaf, spine int) netem.LinkConfig {
		if l, ok := overrides[[2]int{leaf, spine}]; ok {
			return l
		}
		return cfg.FabricLink
	}

	// Spines first so leaf uplinks can point at them.
	f.spines = make([]*spineSwitch, cfg.Spines)
	for s := 0; s < cfg.Spines; s++ {
		f.spines[s] = &spineSwitch{f: f, id: s}
	}
	f.leaves = make([]*leafSwitch, cfg.Leaves)
	for l := 0; l < cfg.Leaves; l++ {
		f.leaves[l] = &leafSwitch{f: f, id: l}
	}

	// Host NICs and leaf down-ports.
	f.hostNIC = make([]*netem.Port, cfg.Hosts())
	for h := 0; h < cfg.Hosts(); h++ {
		leaf := f.leaves[h/cfg.HostsPerLeaf]
		host := h
		f.hostNIC[h] = netem.NewPort(sim, cfg.HostLink, cfg.Queue,
			func(p *netem.Packet) { leaf.receive(p) },
			fmt.Sprintf("host%d->leaf%d", h, leaf.id))
		leaf.down = append(leaf.down, netem.NewPort(sim, cfg.HostLink, cfg.Queue,
			func(p *netem.Packet) { f.deliver(host, p) },
			fmt.Sprintf("leaf%d->host%d", leaf.id, h)))
	}

	// Leaf<->spine ports.
	for l := 0; l < cfg.Leaves; l++ {
		leaf := f.leaves[l]
		leaf.up = make([]*netem.Port, cfg.Spines)
		for s := 0; s < cfg.Spines; s++ {
			spine := f.spines[s]
			leaf.up[s] = netem.NewPort(sim, fabricLink(l, s), cfg.Queue,
				func(p *netem.Packet) { spine.receive(p) },
				fmt.Sprintf("leaf%d->spine%d", l, s))
		}
	}
	for s := 0; s < cfg.Spines; s++ {
		spine := f.spines[s]
		spine.down = make([]*netem.Port, cfg.Leaves)
		for l := 0; l < cfg.Leaves; l++ {
			leaf := f.leaves[l]
			spine.down[l] = netem.NewPort(sim, fabricLink(l, s), cfg.Queue,
				func(p *netem.Packet) { leaf.receive(p) },
				fmt.Sprintf("spine%d->leaf%d", s, l))
		}
	}

	// Balancers last: they may inspect the uplink ports.
	for l := 0; l < cfg.Leaves; l++ {
		f.leaves[l].bal = factory(sim, rng.Split(), f.leaves[l].up)
	}
	return f, nil
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Hosts implements Network.
func (f *Fabric) Hosts() int { return f.cfg.Hosts() }

// BalancedPorts implements Network: all leaf uplinks in leaf order.
func (f *Fabric) BalancedPorts() []*netem.Port {
	var out []*netem.Port
	for _, l := range f.leaves {
		out = append(out, l.up...)
	}
	return out
}

// LeafOf returns the leaf index of a host.
func (f *Fabric) LeafOf(host int) int { return host / f.cfg.HostsPerLeaf }

// SetPool implements Network: dropped packets are released to pool.
func (f *Fabric) SetPool(pool *netem.PacketPool) { f.pool = pool }

// drop counts a refused packet and releases it: the switch that saw
// Send refuse the packet is its terminal sink.
func (f *Fabric) drop(pkt *netem.Packet) {
	f.drops++
	f.pool.Put(pkt)
}

// Inject sends a packet from the given host into the network through
// the host's NIC. Routing is by pkt.Flow.Dst.
func (f *Fabric) Inject(host int, pkt *netem.Packet) {
	if pkt.Flow.Src != host {
		panic(fmt.Sprintf("topology: host %d injecting packet with src %d", host, pkt.Flow.Src))
	}
	if !f.hostNIC[host].Send(pkt) {
		f.drop(pkt)
	}
}

// Drops returns the total packets dropped anywhere in the fabric
// (including host NIC queues).
func (f *Fabric) Drops() int64 {
	n := f.drops
	return n
}

// Uplinks returns the uplink ports of a leaf, for instrumentation.
func (f *Fabric) Uplinks(leaf int) []*netem.Port { return f.leaves[leaf].up }

// LinkPorts returns the two directed ports of a leaf-spine pair:
// leaf→spine and spine→leaf. It is the canonical faults.Resolver for
// this fabric.
func (f *Fabric) LinkPorts(leaf, spine int) (up, down *netem.Port, err error) {
	if leaf < 0 || leaf >= f.cfg.Leaves || spine < 0 || spine >= f.cfg.Spines {
		return nil, nil, fmt.Errorf("topology: link (leaf%d, spine%d) out of range (%d leaves, %d spines)",
			leaf, spine, f.cfg.Leaves, f.cfg.Spines)
	}
	return f.leaves[leaf].up[spine], f.spines[spine].down[leaf], nil
}

// DownlinksOfSpine returns a spine's per-leaf downlinks, for
// instrumentation.
func (f *Fabric) DownlinksOfSpine(spine int) []*netem.Port { return f.spines[spine].down }

// HostNIC returns a host's NIC port, for instrumentation.
func (f *Fabric) HostNIC(host int) *netem.Port { return f.hostNIC[host] }

// Balancer returns the load balancer instance at the given leaf.
func (f *Fabric) Balancer(leaf int) lb.Balancer { return f.leaves[leaf].bal }

// EveryQueue invokes fn for every queue in the fabric (host NICs, leaf
// down/up ports, spine down ports), for aggregate stats.
func (f *Fabric) EveryQueue(fn func(label string, q *netem.Queue)) {
	for _, p := range f.hostNIC {
		fn(p.Label(), p.Queue())
	}
	for _, l := range f.leaves {
		for _, p := range l.down {
			fn(p.Label(), p.Queue())
		}
		for _, p := range l.up {
			fn(p.Label(), p.Queue())
		}
	}
	for _, s := range f.spines {
		for _, p := range s.down {
			fn(p.Label(), p.Queue())
		}
	}
}

func (l *leafSwitch) receive(pkt *netem.Packet) {
	dst := pkt.Flow.Dst
	if l.f.LeafOf(dst) == l.id {
		local := dst % l.f.cfg.HostsPerLeaf
		if !l.down[local].Send(pkt) {
			l.f.drop(pkt)
		}
		return
	}
	idx := l.bal.Pick(pkt, l.up)
	if idx < 0 || idx >= len(l.up) {
		panic(fmt.Sprintf("topology: balancer %s picked invalid uplink %d of %d", l.bal.Name(), idx, len(l.up)))
	}
	if !l.up[idx].Send(pkt) {
		l.f.drop(pkt)
	}
}

func (s *spineSwitch) receive(pkt *netem.Packet) {
	leaf := s.f.LeafOf(pkt.Flow.Dst)
	if !s.down[leaf].Send(pkt) {
		s.f.drop(pkt)
	}
}
