package topology

import (
	"tlb/internal/netem"
	"tlb/internal/units"
)

// This file is the topology half of the sharded runner (internal/sim):
// partitioning a network into per-shard event partitions and capturing
// the packets that cross between them.
//
// The partition follows the physical hierarchy. On a leaf-spine fabric
// each shard owns a contiguous group of leaves (with their hosts and
// host links) plus a contiguous group of spines; every leaf<->spine
// link whose two ends land in different shards is a *boundary link*.
// On a fat-tree each shard owns a contiguous group of pods (edge and
// aggregation tiers are intra-pod, so they shard with their pod) plus
// a contiguous group of cores, and the agg<->core links are the only
// possible boundaries. Host<->switch links never cross a shard, so
// transport endpoints are always shard-local.
//
// A directed boundary link is owned by its *egress* side: the shard
// that owns the sending switch runs the port's queue, serialization
// and delivery events exactly as an unsharded run would (admission
// stats, ECN marks, drops and busy time stay byte-identical), while
// the packet itself crosses as a Handoff value (netem.Port.SetBoundary
// captures it at admission, after all admission-time mutations). The
// ingress shard materializes the copy from its own pool and dispatches
// it into the receiving switch — pool ownership never crosses a
// goroutine.
//
// The minimum propagation delay over all boundary links is the
// conservative lookahead: a packet admitted at time t cannot arrive in
// another shard before t + minDelay, so shards may run minDelay ahead
// of each other without ever receiving a handoff in their past.

// Handoff is one captured boundary crossing: a packet value plus the
// coordinates needed to (a) order it deterministically and (b)
// dispatch it into the destination shard's copy of the network.
type Handoff struct {
	// DeliverAt is the far-end arrival time computed by the egress
	// port at admission (finish + propagation delay).
	DeliverAt units.Time
	// AdmittedAt is when the egress port admitted the packet: the high
	// bits of its netem.DeliveryKey. Every engine — global or
	// per-shard — orders simultaneous deliveries by (AdmittedAt,
	// SrcPort), so scheduling the handoff in the destination engine
	// with the same key lands it at exactly the position the unsharded
	// run fires the delivery.
	AdmittedAt units.Time
	// SrcPort is the emitting port's construction-order index
	// (netem.Port.Index): the low bits of its DeliveryKey.
	// Partition-invariant because every shard builds the full topology
	// in the same order.
	SrcPort uint32
	// DstShard is the shard owning the ingress switch.
	DstShard int32
	// Entry locates the ingress dispatch point: the receiving spine
	// (Up) or leaf (!Up) on a leaf-spine fabric; the receiving core
	// (Up) or aggregation switch (!Up) on a fat-tree.
	Entry int32
	// Up is the crossing direction: toward the spine/core tier or back
	// down from it.
	Up bool
	// Pkt is the packet by value. pooled is false in the copy, so the
	// destination shard can overwrite a fresh pool packet with it.
	//simlint:allow packetown(whole-value copy captured at admission; the pool-owned original never leaves its shard)
	Pkt netem.Packet
}

// HandoffBefore is the deterministic application order for handoffs
// arriving at one shard: delivery time, then (admission time, source
// port index) — exactly the engine's keyed-domain delivery order,
// since a DeliveryKey is AdmittedAt over SrcPort. The sharded runner
// sorts each epoch's incoming handoffs with it before scheduling them,
// so the destination shard's event order is a pure function of the
// traffic, not of shard count.
func HandoffBefore(a, b *Handoff) bool {
	if a.DeliverAt != b.DeliverAt {
		return a.DeliverAt < b.DeliverAt
	}
	if a.AdmittedAt != b.AdmittedAt {
		return a.AdmittedAt < b.AdmittedAt
	}
	return a.SrcPort < b.SrcPort
}

// Partition assigns every switch group of a network to a shard. It is
// a pure function of (topology config, shard count): every shard
// builds its own identical copy.
type Partition struct {
	// Shards is the effective shard count after clamping to the
	// topology's parallelism (leaf groups / pods).
	Shards int
	// groupOwner maps the host-carrying group (leaf; pod) to its shard.
	groupOwner []int
	// topOwner maps the top tier (spine; core) to its shard.
	topOwner []int
}

// contiguousOwners splits n groups over the given shard count in
// contiguous, balanced runs: group i goes to shard i*shards/n.
func contiguousOwners(n, shards int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i * shards / n
	}
	return out
}

// Sharder is implemented by networks that can be partitioned for the
// sharded runner. Both substrates implement it.
type Sharder interface {
	Network
	// NewPartition returns the partition for the requested shard count,
	// clamped to the topology's parallelism (a 2-leaf fabric cannot use
	// more than 2 shards). Deterministic: depends only on the config.
	NewPartition(shards int) *Partition
	// HostOwner returns the shard owning a host (and its NIC and
	// transport endpoint).
	HostOwner(p *Partition, host int) int
	// ShardBind wires shard self's copy of the network: every boundary
	// egress port owned by self gets a capture that emits a Handoff
	// (and a local sink returning the original packet to this shard's
	// pool). It returns the minimum propagation delay over ALL boundary
	// links of the partition — the conservative lookahead — or 0 when
	// the partition has no boundary (single shard).
	ShardBind(p *Partition, self int, emit func(Handoff)) units.Time
	// ApplyHandoff materializes a handoff from this shard's pool and
	// dispatches it into the ingress switch. Must run on this shard's
	// event loop at h.DeliverAt.
	ApplyHandoff(h *Handoff)
	// BalancedPortOwners returns the owning shard of each
	// BalancedPorts() entry, index-aligned, so the runner can harvest
	// utilization snapshots from exactly one shard per port.
	BalancedPortOwners(p *Partition) []int
	// EveryOwnedQueue visits the queues owned by shard self, in the
	// same relative order EveryQueue visits them.
	EveryOwnedQueue(p *Partition, self int, fn func(label string, q *netem.Queue))
}

// Compile-time checks.
var (
	_ Sharder = (*Fabric)(nil)
	_ Sharder = (*FatTree)(nil)
)

// MinFabricDelay returns the minimum propagation delay over every
// inter-switch (boundary-capable) link of the network — the set a
// partition can ever cut, independent of any particular partition or
// shard count. The sharded runner derives the flow-teardown lag from
// it (see internal/sim): teardown must travel at finite latency like
// any other cross-shard influence, and the lag has to be a pure
// function of the topology so the single-engine run schedules the
// identical close events. Host links never cross a shard and are
// excluded.
func (f *Fabric) MinFabricDelay() units.Time {
	var min units.Time
	found := false
	for _, leaf := range f.leaves {
		for _, up := range leaf.up {
			if d := up.Link().Delay; !found || d < min {
				min, found = d, true
			}
		}
	}
	for _, spine := range f.spines {
		for _, down := range spine.down {
			if d := down.Link().Delay; d < min {
				min = d
			}
		}
	}
	if !found {
		return 0
	}
	return min
}

// MinFabricDelay returns the minimum delay over the links a fat-tree
// partition can ever cut: only agg<->core links cross pods (edge and
// aggregation tiers shard with their pod), so those are the set.
func (f *FatTree) MinFabricDelay() units.Time {
	var min units.Time
	found := false
	for _, a := range f.aggs {
		for _, p := range a.up {
			if d := p.Link().Delay; !found || d < min {
				min, found = d, true
			}
		}
	}
	for _, c := range f.cores {
		for _, p := range c.down {
			if d := p.Link().Delay; d < min {
				min = d
			}
		}
	}
	if !found {
		return 0
	}
	return min
}

// ---- leaf-spine ----

// NewPartition implements Sharder: contiguous leaf groups and
// contiguous spine groups.
func (f *Fabric) NewPartition(shards int) *Partition {
	if shards > f.cfg.Leaves {
		shards = f.cfg.Leaves
	}
	if shards < 1 {
		shards = 1
	}
	return &Partition{
		Shards:     shards,
		groupOwner: contiguousOwners(f.cfg.Leaves, shards),
		topOwner:   contiguousOwners(f.cfg.Spines, shards),
	}
}

// HostOwner implements Sharder.
func (f *Fabric) HostOwner(p *Partition, host int) int {
	return p.groupOwner[host/f.cfg.HostsPerLeaf]
}

// LinkOwners returns the shards owning the two directed ports of a
// leaf-spine link: the up direction (leaf->spine) belongs to the
// leaf's shard, the down direction to the spine's. The sharded runner
// uses it to install each fault-schedule entry only on the shard that
// owns the affected direction.
func (f *Fabric) LinkOwners(p *Partition, leaf, spine int) (upOwner, downOwner int) {
	return p.groupOwner[leaf], p.topOwner[spine]
}

// ShardBind implements Sharder.
func (f *Fabric) ShardBind(p *Partition, self int, emit func(Handoff)) units.Time {
	var la units.Time
	found := false
	for l, leaf := range f.leaves {
		lo := p.groupOwner[l]
		for s, up := range leaf.up {
			so := p.topOwner[s]
			if lo == so {
				continue
			}
			down := f.spines[s].down[l]
			if d := up.Link().Delay; !found || d < la {
				la, found = d, true
			}
			if d := down.Link().Delay; d < la {
				la = d
			}
			if lo == self {
				f.bindBoundary(up, int32(so), int32(s), true, emit)
			}
			if so == self {
				f.bindBoundary(down, int32(lo), int32(l), false, emit)
			}
		}
	}
	if !found {
		return 0
	}
	return la
}

// bindBoundary installs the capture/sink pair on one owned boundary
// egress port.
func (f *Fabric) bindBoundary(port *netem.Port, dstShard, entry int32, up bool, emit func(Handoff)) {
	srcIdx := port.Index()
	port.SetBoundary(func(pkt *netem.Packet, admittedAt, deliverAt units.Time) {
		emit(Handoff{
			DeliverAt:  deliverAt,
			AdmittedAt: admittedAt,
			SrcPort:    srcIdx,
			DstShard:   dstShard,
			Entry:      entry,
			Up:         up,
			Pkt:        *pkt,
		})
	}, func(pkt *netem.Packet) { f.pool.Put(pkt) })
}

// ApplyHandoff implements Sharder.
func (f *Fabric) ApplyHandoff(h *Handoff) {
	p := f.pool.Get()
	*p = h.Pkt
	if h.Up {
		f.spines[h.Entry].receive(p)
	} else {
		f.leaves[h.Entry].receive(p)
	}
}

// BalancedPortOwners implements Sharder: BalancedPorts is all leaf
// uplinks in leaf order, each owned by its leaf's shard.
func (f *Fabric) BalancedPortOwners(p *Partition) []int {
	out := make([]int, 0, f.cfg.Leaves*f.cfg.Spines)
	for l := 0; l < f.cfg.Leaves; l++ {
		for s := 0; s < f.cfg.Spines; s++ {
			out = append(out, p.groupOwner[l])
		}
	}
	return out
}

// EveryOwnedQueue implements Sharder, mirroring EveryQueue's order
// with an ownership filter: host NICs and leaf ports belong to the
// leaf's shard, spine downlinks to the spine's.
func (f *Fabric) EveryOwnedQueue(p *Partition, self int, fn func(label string, q *netem.Queue)) {
	for h, port := range f.hostNIC {
		if p.groupOwner[h/f.cfg.HostsPerLeaf] == self {
			fn(port.Label(), port.Queue())
		}
	}
	for l, leaf := range f.leaves {
		if p.groupOwner[l] != self {
			continue
		}
		for _, port := range leaf.down {
			fn(port.Label(), port.Queue())
		}
		for _, port := range leaf.up {
			fn(port.Label(), port.Queue())
		}
	}
	for s, spine := range f.spines {
		if p.topOwner[s] != self {
			continue
		}
		for _, port := range spine.down {
			fn(port.Label(), port.Queue())
		}
	}
}

// ---- fat-tree ----

// NewPartition implements Sharder: contiguous pod groups and
// contiguous core groups.
func (f *FatTree) NewPartition(shards int) *Partition {
	if shards > f.cfg.K {
		shards = f.cfg.K
	}
	if shards < 1 {
		shards = 1
	}
	half := f.cfg.K / 2
	return &Partition{
		Shards:     shards,
		groupOwner: contiguousOwners(f.cfg.K, shards),
		topOwner:   contiguousOwners(half*half, shards),
	}
}

// HostOwner implements Sharder.
func (f *FatTree) HostOwner(p *Partition, host int) int {
	return p.groupOwner[f.podOf(host)]
}

// ShardBind implements Sharder. The only possible boundaries are
// agg<->core links (edge and agg tiers are intra-pod).
func (f *FatTree) ShardBind(p *Partition, self int, emit func(Handoff)) units.Time {
	var la units.Time
	found := false
	k := f.cfg.K
	half := k / 2
	for pod := 0; pod < k; pod++ {
		po := p.groupOwner[pod]
		for a := 0; a < half; a++ {
			agg := f.aggs[pod*half+a]
			for j := 0; j < half; j++ {
				c := a*half + j
				co := p.topOwner[c]
				if po == co {
					continue
				}
				up := agg.up[j]
				down := f.cores[c].down[pod]
				if d := up.Link().Delay; !found || d < la {
					la, found = d, true
				}
				if d := down.Link().Delay; d < la {
					la = d
				}
				if po == self {
					f.bindBoundary(up, int32(co), int32(c), true, emit)
				}
				if co == self {
					f.bindBoundary(down, int32(po), int32(pod*half+a), false, emit)
				}
			}
		}
	}
	if !found {
		return 0
	}
	return la
}

// bindBoundary installs the capture/sink pair on one owned boundary
// egress port.
func (f *FatTree) bindBoundary(port *netem.Port, dstShard, entry int32, up bool, emit func(Handoff)) {
	srcIdx := port.Index()
	port.SetBoundary(func(pkt *netem.Packet, admittedAt, deliverAt units.Time) {
		emit(Handoff{
			DeliverAt:  deliverAt,
			AdmittedAt: admittedAt,
			SrcPort:    srcIdx,
			DstShard:   dstShard,
			Entry:      entry,
			Up:         up,
			Pkt:        *pkt,
		})
	}, func(pkt *netem.Packet) { f.pool.Put(pkt) })
}

// ApplyHandoff implements Sharder.
func (f *FatTree) ApplyHandoff(h *Handoff) {
	p := f.pool.Get()
	*p = h.Pkt
	if h.Up {
		f.cores[h.Entry].receive(p)
	} else {
		f.aggs[h.Entry].receiveDown(p)
	}
}

// BalancedPortOwners implements Sharder: BalancedPorts is every edge
// uplink (edge order) then every agg uplink (agg order); all are
// intra-pod ports owned by their pod's shard.
func (f *FatTree) BalancedPortOwners(p *Partition) []int {
	half := f.cfg.K / 2
	out := make([]int, 0, 2*f.cfg.K*half*half)
	for _, e := range f.edges {
		for j := 0; j < half; j++ {
			out = append(out, p.groupOwner[e.pod])
		}
	}
	for _, a := range f.aggs {
		for j := 0; j < half; j++ {
			out = append(out, p.groupOwner[a.pod])
		}
	}
	return out
}

// EveryOwnedQueue implements Sharder, mirroring EveryQueue's order
// with an ownership filter: everything inside a pod belongs to the
// pod's shard, core downlinks to the core's.
func (f *FatTree) EveryOwnedQueue(p *Partition, self int, fn func(label string, q *netem.Queue)) {
	for h, port := range f.hostNIC {
		if p.groupOwner[f.podOf(h)] == self {
			fn(port.Label(), port.Queue())
		}
	}
	for _, e := range f.edges {
		if p.groupOwner[e.pod] != self {
			continue
		}
		for _, port := range e.down {
			fn(port.Label(), port.Queue())
		}
		for _, port := range e.up {
			fn(port.Label(), port.Queue())
		}
	}
	for _, a := range f.aggs {
		if p.groupOwner[a.pod] != self {
			continue
		}
		for _, port := range a.down {
			fn(port.Label(), port.Queue())
		}
		for _, port := range a.up {
			fn(port.Label(), port.Queue())
		}
	}
	for c, core := range f.cores {
		if p.topOwner[c] != self {
			continue
		}
		for _, port := range core.down {
			fn(port.Label(), port.Queue())
		}
	}
}
