package topology

import (
	"fmt"

	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
)

// Network is the interface the experiment runner drives traffic
// through. Fabric (leaf-spine) and FatTree both implement it, so every
// scheme and experiment can run on either substrate.
type Network interface {
	// Hosts returns the number of attached hosts.
	Hosts() int
	// Inject sends a packet from the given host into the network.
	Inject(host int, pkt *netem.Packet)
	// Drops returns total packets dropped anywhere in the network.
	Drops() int64
	// BalancedPorts returns the ports whose selection is made by load
	// balancers (the multipath links), for instrumentation.
	BalancedPorts() []*netem.Port
	// EveryQueue visits every queue in the network.
	EveryQueue(fn func(label string, q *netem.Queue))
	// SetPool makes the network release dropped packets back to the
	// run's packet pool (a switch observing Port.Send refuse a packet
	// is that packet's terminal sink). Nil disables releasing.
	SetPool(pool *netem.PacketPool)
}

// Compile-time checks.
var (
	_ Network = (*Fabric)(nil)
	_ Network = (*FatTree)(nil)
)

// FatTreeConfig describes a k-ary fat-tree (Al-Fares et al.): k pods,
// each with k/2 edge and k/2 aggregation switches; (k/2)^2 core
// switches; k^3/4 hosts. There are (k/2)^2 equal-cost paths between
// hosts in different pods, chosen by TWO chained load-balancing
// decisions (edge picks the aggregation switch, aggregation picks the
// core), which is what distinguishes this substrate from the
// leaf-spine: schemes run an instance at every switch of both tiers.
type FatTreeConfig struct {
	// K is the arity; must be even and >= 2.
	K int
	// HostLink, FabricLink and Queue play the same roles as in Config.
	HostLink   netem.LinkConfig
	FabricLink netem.LinkConfig
	Queue      netem.QueueConfig
}

// Validate reports configuration errors.
func (c *FatTreeConfig) Validate() error {
	switch {
	case c.K < 2 || c.K%2 != 0:
		return fmt.Errorf("topology: fat-tree arity k must be even and >= 2, got %d", c.K)
	case c.HostLink.Bandwidth <= 0 || c.FabricLink.Bandwidth <= 0:
		return fmt.Errorf("topology: fat-tree links need positive bandwidth")
	}
	return nil
}

// Hosts returns k^3/4.
func (c *FatTreeConfig) Hosts() int { return c.K * c.K * c.K / 4 }

// Paths returns the number of equal-cost inter-pod paths, (k/2)^2.
func (c *FatTreeConfig) Paths() int { return c.K * c.K / 4 }

// FatTree is an instantiated k-ary fat-tree.
type FatTree struct {
	sim *eventsim.Sim
	cfg FatTreeConfig

	hostNIC []*netem.Port
	edges   []*edgeSwitch // k*k/2, index pod*(k/2)+e
	aggs    []*aggSwitch  // k*k/2
	cores   []*coreSwitch // (k/2)^2

	deliver DeliverFunc
	drops   int64
	pool    *netem.PacketPool
}

type edgeSwitch struct {
	f    *FatTree
	pod  int
	idx  int           // within pod
	down []*netem.Port // to local hosts
	up   []*netem.Port // to pod aggs
	bal  lb.Balancer
}

type aggSwitch struct {
	f    *FatTree
	pod  int
	idx  int
	down []*netem.Port // to pod edges
	up   []*netem.Port // to cores idx*(k/2) .. idx*(k/2)+k/2-1
	bal  lb.Balancer
}

type coreSwitch struct {
	f    *FatTree
	idx  int
	down []*netem.Port // one per pod
}

// NewFatTree builds the tree. factory instantiates a balancer per edge
// and per aggregation switch.
func NewFatTree(sim *eventsim.Sim, cfg FatTreeConfig, factory lb.Factory, rng *eventsim.RNG, deliver DeliverFunc) (*FatTree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if deliver == nil {
		return nil, fmt.Errorf("topology: nil deliver callback")
	}
	k := cfg.K
	half := k / 2
	f := &FatTree{sim: sim, cfg: cfg, deliver: deliver}

	f.cores = make([]*coreSwitch, half*half)
	for c := range f.cores {
		f.cores[c] = &coreSwitch{f: f, idx: c}
	}
	f.edges = make([]*edgeSwitch, k*half)
	f.aggs = make([]*aggSwitch, k*half)
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			f.edges[p*half+i] = &edgeSwitch{f: f, pod: p, idx: i}
			f.aggs[p*half+i] = &aggSwitch{f: f, pod: p, idx: i}
		}
	}

	// Hosts and edge down-ports. Host h sits at pod p, edge e, slot s:
	// h = p*(half*half) + e*half + s.
	f.hostNIC = make([]*netem.Port, cfg.Hosts())
	for h := 0; h < cfg.Hosts(); h++ {
		edge := f.edgeOf(h)
		host := h
		f.hostNIC[h] = netem.NewPort(sim, cfg.HostLink, cfg.Queue,
			func(pkt *netem.Packet) { edge.receive(pkt) },
			fmt.Sprintf("host%d->edge%d.%d", h, edge.pod, edge.idx))
		edge.down = append(edge.down, netem.NewPort(sim, cfg.HostLink, cfg.Queue,
			func(pkt *netem.Packet) { f.deliver(host, pkt) },
			fmt.Sprintf("edge%d.%d->host%d", edge.pod, edge.idx, h)))
	}

	// Edge <-> agg (full mesh within a pod).
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			edge := f.edges[p*half+e]
			edge.up = make([]*netem.Port, half)
			for a := 0; a < half; a++ {
				agg := f.aggs[p*half+a]
				edge.up[a] = netem.NewPort(sim, cfg.FabricLink, cfg.Queue,
					func(pkt *netem.Packet) { agg.receiveUp(pkt) },
					fmt.Sprintf("edge%d.%d->agg%d.%d", p, e, p, a))
			}
		}
		for a := 0; a < half; a++ {
			agg := f.aggs[p*half+a]
			agg.down = make([]*netem.Port, half)
			for e := 0; e < half; e++ {
				edge := f.edges[p*half+e]
				agg.down[e] = netem.NewPort(sim, cfg.FabricLink, cfg.Queue,
					func(pkt *netem.Packet) { edge.receiveDown(pkt) },
					fmt.Sprintf("agg%d.%d->edge%d.%d", p, a, p, e))
			}
		}
	}

	// Agg <-> core: agg (p, a) connects to cores a*half .. a*half+half-1.
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			agg := f.aggs[p*half+a]
			agg.up = make([]*netem.Port, half)
			for j := 0; j < half; j++ {
				core := f.cores[a*half+j]
				agg.up[j] = netem.NewPort(sim, cfg.FabricLink, cfg.Queue,
					func(pkt *netem.Packet) { core.receive(pkt) },
					fmt.Sprintf("agg%d.%d->core%d", p, a, core.idx))
			}
		}
	}
	for c := range f.cores {
		core := f.cores[c]
		a := c / half // the agg index this core row attaches to
		core.down = make([]*netem.Port, k)
		for p := 0; p < k; p++ {
			agg := f.aggs[p*half+a]
			core.down[p] = netem.NewPort(sim, cfg.FabricLink, cfg.Queue,
				func(pkt *netem.Packet) { agg.receiveDown(pkt) },
				fmt.Sprintf("core%d->agg%d.%d", c, p, a))
		}
	}

	// Balancers: one per edge and per agg.
	for _, e := range f.edges {
		e.bal = factory(sim, rng.Split(), e.up)
	}
	for _, a := range f.aggs {
		a.bal = factory(sim, rng.Split(), a.up)
	}
	return f, nil
}

// Config returns the tree's configuration.
func (f *FatTree) Config() FatTreeConfig { return f.cfg }

// Hosts implements Network.
func (f *FatTree) Hosts() int { return f.cfg.Hosts() }

// podOf returns the pod of a host.
func (f *FatTree) podOf(h int) int {
	perPod := f.cfg.K * f.cfg.K / 4
	return h / perPod
}

// edgeOf returns the edge switch of a host.
func (f *FatTree) edgeOf(h int) *edgeSwitch {
	half := f.cfg.K / 2
	perPod := half * half
	p := h / perPod
	e := (h % perPod) / half
	return f.edges[p*half+e]
}

// SetPool implements Network: dropped packets are released to pool.
func (f *FatTree) SetPool(pool *netem.PacketPool) { f.pool = pool }

// drop counts a refused packet and releases it: the switch that saw
// Send refuse the packet is its terminal sink.
func (f *FatTree) drop(pkt *netem.Packet) {
	f.drops++
	f.pool.Put(pkt)
}

// Inject implements Network.
func (f *FatTree) Inject(host int, pkt *netem.Packet) {
	if pkt.Flow.Src != host {
		panic(fmt.Sprintf("topology: host %d injecting packet with src %d", host, pkt.Flow.Src))
	}
	if !f.hostNIC[host].Send(pkt) {
		f.drop(pkt)
	}
}

// Drops implements Network.
func (f *FatTree) Drops() int64 { return f.drops }

// BalancedPorts implements Network: every edge and agg uplink.
func (f *FatTree) BalancedPorts() []*netem.Port {
	var out []*netem.Port
	for _, e := range f.edges {
		out = append(out, e.up...)
	}
	for _, a := range f.aggs {
		out = append(out, a.up...)
	}
	return out
}

// EveryQueue implements Network.
func (f *FatTree) EveryQueue(fn func(label string, q *netem.Queue)) {
	for _, p := range f.hostNIC {
		fn(p.Label(), p.Queue())
	}
	for _, e := range f.edges {
		for _, p := range e.down {
			fn(p.Label(), p.Queue())
		}
		for _, p := range e.up {
			fn(p.Label(), p.Queue())
		}
	}
	for _, a := range f.aggs {
		for _, p := range a.down {
			fn(p.Label(), p.Queue())
		}
		for _, p := range a.up {
			fn(p.Label(), p.Queue())
		}
	}
	for _, c := range f.cores {
		for _, p := range c.down {
			fn(p.Label(), p.Queue())
		}
	}
}

// hostSlot returns a host's slot index under its edge switch.
func (f *FatTree) hostSlot(h int) int {
	half := f.cfg.K / 2
	return h % half
}

func (e *edgeSwitch) receive(pkt *netem.Packet) {
	f := e.f
	dst := pkt.Flow.Dst
	dstEdge := f.edgeOf(dst)
	if dstEdge == e {
		if !e.down[f.hostSlot(dst)].Send(pkt) {
			f.drop(pkt)
		}
		return
	}
	// Up toward the aggs (intra-pod or inter-pod alike).
	idx := e.bal.Pick(pkt, e.up)
	if idx < 0 || idx >= len(e.up) {
		panic(fmt.Sprintf("topology: balancer %s picked invalid edge uplink %d", e.bal.Name(), idx))
	}
	if !e.up[idx].Send(pkt) {
		f.drop(pkt)
	}
}

// receiveDown handles packets descending into the edge from an agg.
func (e *edgeSwitch) receiveDown(pkt *netem.Packet) {
	f := e.f
	if !e.down[f.hostSlot(pkt.Flow.Dst)].Send(pkt) {
		f.drop(pkt)
	}
}

// receiveUp handles packets ascending into the agg from an edge.
func (a *aggSwitch) receiveUp(pkt *netem.Packet) {
	f := a.f
	dst := pkt.Flow.Dst
	if f.podOf(dst) == a.pod {
		// Intra-pod: straight down to the destination edge.
		half := f.cfg.K / 2
		perPod := half * half
		e := (dst % perPod) / half
		if !a.down[e].Send(pkt) {
			f.drop(pkt)
		}
		return
	}
	// Inter-pod: pick a core.
	idx := a.bal.Pick(pkt, a.up)
	if idx < 0 || idx >= len(a.up) {
		panic(fmt.Sprintf("topology: balancer %s picked invalid agg uplink %d", a.bal.Name(), idx))
	}
	if !a.up[idx].Send(pkt) {
		f.drop(pkt)
	}
}

// receiveDown handles packets descending into the agg from a core.
func (a *aggSwitch) receiveDown(pkt *netem.Packet) {
	f := a.f
	half := f.cfg.K / 2
	perPod := half * half
	dst := pkt.Flow.Dst
	e := (dst % perPod) / half
	if !a.down[e].Send(pkt) {
		f.drop(pkt)
	}
}

func (c *coreSwitch) receive(pkt *netem.Packet) {
	f := c.f
	if !c.down[f.podOf(pkt.Flow.Dst)].Send(pkt) {
		f.drop(pkt)
	}
}
