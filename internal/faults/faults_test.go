package faults

import (
	"strings"
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/trace"
	"tlb/internal/units"
)

// pair builds a two-port "link" (leaf→spine, spine→leaf) and a
// resolver that only knows coordinate (0, 0).
func pair(s *eventsim.Sim) (up, down *netem.Port, resolve Resolver) {
	link := netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond}
	up = netem.NewPort(s, link, netem.QueueConfig{}, func(*netem.Packet) {}, "leaf0->spine0")
	down = netem.NewPort(s, link, netem.QueueConfig{}, func(*netem.Packet) {}, "spine0->leaf0")
	resolve = func(leaf, spine int) (*netem.Port, *netem.Port, error) {
		if leaf != 0 || spine != 0 {
			return nil, nil, errNoLink
		}
		return up, down, nil
	}
	return up, down, resolve
}

type noLinkError struct{}

func (noLinkError) Error() string { return "no such link" }

//simlint:allow sharedstate(immutable error sentinel; never reassigned)
var errNoLink = noLinkError{}

func TestInjectorAppliesScheduleInOrder(t *testing.T) {
	s := eventsim.New()
	up, down, resolve := pair(s)
	tr := trace.New(0)
	sched := Schedule{
		// Deliberately out of time order: Install must sort.
		Restore(3*units.Millisecond, 0, 0),
		Down(units.Millisecond, 0, 0),
		DeRate(5*units.Millisecond, 0, 0, 100*units.Mbps),
		Delay(7*units.Millisecond, 0, 0, units.Millisecond),
	}
	inj, err := Install(s, sched, resolve, tr)
	if err != nil {
		t.Fatal(err)
	}

	s.RunUntil(2 * units.Millisecond)
	if !up.Down() || !down.Down() {
		t.Fatal("both directions should be down at t=2ms")
	}
	s.RunUntil(4 * units.Millisecond)
	if up.Down() || down.Down() {
		t.Fatal("both directions should be restored at t=4ms")
	}
	s.RunUntil(6 * units.Millisecond)
	if got := up.Link().Bandwidth; got != 100*units.Mbps {
		t.Fatalf("uplink rate at t=6ms = %v, want 100Mbps", got)
	}
	if got := up.Link().Delay; got != 10*units.Microsecond {
		t.Fatalf("derate changed the delay: %v", got)
	}
	s.RunUntil(8 * units.Millisecond)
	if got := down.Link().Delay; got != units.Millisecond {
		t.Fatalf("downlink delay at t=8ms = %v, want 1ms", got)
	}
	if got := down.Link().Bandwidth; got != 100*units.Mbps {
		t.Fatalf("delay change clobbered the rate: %v", got)
	}
	// 4 events x 2 directions.
	if inj.Applied() != 8 {
		t.Fatalf("Applied() = %d, want 8", inj.Applied())
	}
	if got := tr.Count(trace.LinkFault); got != 8 {
		t.Fatalf("traced %d LinkFault events, want 8", got)
	}
}

func TestRestoreUndoesAccumulatedChanges(t *testing.T) {
	s := eventsim.New()
	up, _, resolve := pair(s)
	orig := up.Link()
	sched := Schedule{
		DeRate(units.Millisecond, 0, 0, 5*units.Mbps),
		Delay(2*units.Millisecond, 0, 0, 4*units.Millisecond),
		Down(3*units.Millisecond, 0, 0),
		Restore(4*units.Millisecond, 0, 0),
	}
	if _, err := Install(s, sched, resolve, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if up.Down() {
		t.Fatal("port still down after restore")
	}
	if got := up.Link(); got != orig {
		t.Fatalf("restore left link at %+v, want original %+v", got, orig)
	}
}

func TestDirectionSelectsOnePort(t *testing.T) {
	s := eventsim.New()
	up, down, resolve := pair(s)
	sched := Schedule{{At: units.Millisecond, Leaf: 0, Spine: 0, Dir: LeafToSpine, Op: OpDown}}
	if _, err := Install(s, sched, resolve, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !up.Down() {
		t.Fatal("leaf→spine direction not taken down")
	}
	if down.Down() {
		t.Fatal("spine→leaf direction taken down by a LeafToSpine event")
	}
}

func TestFlapGeneratesAlternatingSchedule(t *testing.T) {
	sched := Flap(1, 2, units.Second, 100*units.Millisecond, 400*units.Millisecond, 3)
	if len(sched) != 6 {
		t.Fatalf("flap schedule has %d events, want 6", len(sched))
	}
	wantAt := []units.Time{
		units.Second, units.Second + 100*units.Millisecond,
		units.Second + 500*units.Millisecond, units.Second + 600*units.Millisecond,
		units.Second + 1000*units.Millisecond, units.Second + 1100*units.Millisecond,
	}
	for i, e := range sched {
		if e.At != wantAt[i] {
			t.Fatalf("event %d at %v, want %v", i, e.At, wantAt[i])
		}
		wantOp := OpDown
		if i%2 == 1 {
			wantOp = OpRestore
		}
		if e.Op != wantOp {
			t.Fatalf("event %d op %v, want %v", i, e.Op, wantOp)
		}
		if e.Leaf != 1 || e.Spine != 2 {
			t.Fatalf("event %d targets (%d,%d), want (1,2)", i, e.Leaf, e.Spine)
		}
	}
	if err := sched.Validate(); err != nil {
		t.Fatalf("flap schedule invalid: %v", err)
	}
	// The sequence ends restored.
	if last := sched[len(sched)-1]; last.Op != OpRestore {
		t.Fatalf("flap ends with %v, want restore", last.Op)
	}
}

func TestValidateRejectsBrokenEvents(t *testing.T) {
	cases := map[string]Schedule{
		"negative time":     {Down(-units.Second, 0, 0)},
		"negative leaf":     {Down(0, -1, 0)},
		"zero-rate derate":  {{At: 0, Op: OpDeRate}},
		"negative delay":    {{At: 0, Op: OpDelay, Delay: -units.Second}},
		"unknown direction": {{At: 0, Dir: Direction(9)}},
	}
	for name, sched := range cases {
		if err := sched.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %v", name, sched)
		}
	}
}

func TestInstallRejectsUnknownLink(t *testing.T) {
	s := eventsim.New()
	_, _, resolve := pair(s)
	_, err := Install(s, Schedule{Down(0, 3, 9)}, resolve, nil)
	if err == nil || !strings.Contains(err.Error(), "no such link") {
		t.Fatalf("Install accepted an unresolvable link: %v", err)
	}
}

func TestEmptyScheduleInstallsNothing(t *testing.T) {
	s := eventsim.New()
	_, _, resolve := pair(s)
	inj, err := Install(s, nil, resolve, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Fatalf("empty schedule left %d events pending", s.Pending())
	}
	s.Run()
	if inj.Applied() != 0 {
		t.Fatalf("empty schedule applied %d operations", inj.Applied())
	}
}
