// Package faults implements deterministic, schedule-driven link-fault
// injection: a Schedule of timed events that take leaf-spine links
// down (drops at admission, like a pulled cable), de-rate their
// bandwidth, change their propagation delay, or restore them —
// including flapping sequences — applied to a running simulation at
// exact simulated times.
//
// The paper's §7 asymmetry experiments (Fig. 16–17) degrade links
// statically, before the run starts; this package turns that into a
// dynamic axis: links fail and recover mid-traffic, which is when
// adaptive-granularity schemes have to re-detect path conditions.
//
// Everything is deterministic: a Schedule is explicit data, the
// injector consumes no randomness, and events are applied in (time,
// schedule-order) order — so a faulted run replays exactly from its
// seed, at any sweep worker count.
package faults

import (
	"fmt"
	"sort"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/trace"
	"tlb/internal/units"
)

// Op is one fault operation applied to a link.
type Op uint8

// Fault operations.
const (
	// OpDown fails the link: every Send drops at admission
	// (QueueStats.FaultDropped) and liveness-aware balancers route
	// around the port. Packets already on the wire still deliver.
	OpDown Op = iota
	// OpRestore revives the link and resets it to the rate and delay
	// it was built with.
	OpRestore
	// OpDeRate sets the link bandwidth to Event.Bandwidth, keeping the
	// current delay. The link stays up (or down) as it was.
	OpDeRate
	// OpDelay sets the one-way propagation delay to Event.Delay,
	// keeping the current bandwidth.
	OpDelay
)

func (o Op) String() string {
	switch o {
	case OpDown:
		return "down"
	case OpRestore:
		return "restore"
	case OpDeRate:
		return "derate"
	case OpDelay:
		return "delay"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Direction selects which of a leaf-spine pair's two directed links an
// event applies to. The zero value applies to both, matching the
// paper's Fig. 16/17 convention of degrading a "link" in both
// directions.
type Direction uint8

// Directions.
const (
	BothDirections Direction = iota
	LeafToSpine
	SpineToLeaf
)

// Event is one scheduled fault against the link(s) between a leaf and
// a spine.
type Event struct {
	// At is the simulated time the fault applies.
	At units.Time
	// Leaf and Spine name the link pair, as in topology.LinkOverride.
	Leaf, Spine int
	// Dir selects the directed link(s); zero value = both directions.
	Dir Direction
	// Op is what happens.
	Op Op
	// Bandwidth is the new rate for OpDeRate (must be positive).
	Bandwidth units.Bandwidth
	// Delay is the new one-way propagation delay for OpDelay.
	Delay units.Time
}

func (e Event) String() string {
	switch e.Op {
	case OpDeRate:
		return fmt.Sprintf("%v leaf%d<->spine%d derate to %v", e.At, e.Leaf, e.Spine, e.Bandwidth)
	case OpDelay:
		return fmt.Sprintf("%v leaf%d<->spine%d delay to %v", e.At, e.Leaf, e.Spine, e.Delay)
	default:
		return fmt.Sprintf("%v leaf%d<->spine%d %s", e.At, e.Leaf, e.Spine, e.Op)
	}
}

// Down builds an event failing the pair's link(s) at the given time.
func Down(at units.Time, leaf, spine int) Event {
	return Event{At: at, Leaf: leaf, Spine: spine, Op: OpDown}
}

// Restore builds an event reviving the pair's link(s) and resetting
// them to their original rate and delay.
func Restore(at units.Time, leaf, spine int) Event {
	return Event{At: at, Leaf: leaf, Spine: spine, Op: OpRestore}
}

// DeRate builds an event setting the pair's bandwidth.
func DeRate(at units.Time, leaf, spine int, bw units.Bandwidth) Event {
	return Event{At: at, Leaf: leaf, Spine: spine, Op: OpDeRate, Bandwidth: bw}
}

// Delay builds an event setting the pair's one-way propagation delay.
func Delay(at units.Time, leaf, spine int, d units.Time) Event {
	return Event{At: at, Leaf: leaf, Spine: spine, Op: OpDelay, Delay: d}
}

// Schedule is a set of fault events for one run. Order does not
// matter; events are applied by (At, position) order. An empty (or
// nil) schedule injects nothing.
type Schedule []Event

// Flap returns a schedule that fails and restores the pair's link(s)
// `cycles` times: down at start, restored downFor later, down again
// upFor after that, and so on. The last cycle ends with a restore, so
// the link is healthy after the flapping stops.
func Flap(leaf, spine int, start, downFor, upFor units.Time, cycles int) Schedule {
	if cycles <= 0 || downFor <= 0 || upFor < 0 {
		panic(fmt.Sprintf("faults: Flap(cycles=%d, downFor=%v, upFor=%v) is not a flapping sequence",
			cycles, downFor, upFor))
	}
	s := make(Schedule, 0, 2*cycles)
	at := start
	for c := 0; c < cycles; c++ {
		s = append(s, Down(at, leaf, spine))
		at += downFor
		s = append(s, Restore(at, leaf, spine))
		at += upFor
	}
	return s
}

// Validate reports the first structurally invalid event. Leaf/spine
// range checking happens at Install time, against the actual fabric.
func (s Schedule) Validate() error {
	for i, e := range s {
		switch {
		case e.At < 0:
			return fmt.Errorf("faults: event %d (%v) scheduled before t=0", i, e)
		case e.Leaf < 0 || e.Spine < 0:
			return fmt.Errorf("faults: event %d (%v) has negative link coordinates", i, e)
		case e.Dir > SpineToLeaf:
			return fmt.Errorf("faults: event %d (%v) has unknown direction %d", i, e, e.Dir)
		case e.Op > OpDelay:
			return fmt.Errorf("faults: event %d (%v) has unknown op", i, e)
		case e.Op == OpDeRate && e.Bandwidth <= 0:
			return fmt.Errorf("faults: event %d (%v) de-rates to a non-positive bandwidth", i, e)
		case e.Op == OpDelay && e.Delay < 0:
			return fmt.Errorf("faults: event %d (%v) sets a negative delay", i, e)
		}
	}
	return nil
}

// Resolver maps a (leaf, spine) pair to its two directed ports:
// leaf→spine and spine→leaf. topology.(*Fabric).LinkPorts is the
// canonical implementation. A resolver may return a nil port for a
// direction without erroring: the sharded runner (internal/sim) wraps
// the canonical resolver so each shard resolves only the directed
// ports it owns, and Install skips nil targets — the full schedule
// installs once per shard, every directed port is faulted by exactly
// the shard that runs its events.
type Resolver func(leaf, spine int) (up, down *netem.Port, err error)

// Injector is one run's armed fault schedule.
type Injector struct {
	sim    *eventsim.Sim
	tracer *trace.Tracer
	// orig remembers each targeted port's built link configuration, so
	// OpRestore undoes any accumulated de-rates and delay changes.
	orig    map[*netem.Port]netem.LinkConfig
	applied int
}

// Applied returns how many (event, port) applications have fired so
// far — for tests and post-run sanity checks.
func (inj *Injector) Applied() int { return inj.applied }

// Install validates the schedule, resolves every targeted port against
// the fabric, and schedules the events on the simulator. It must be
// called before the run starts (events in the past panic in eventsim).
// Events are applied in (At, schedule position) order. The tracer may
// be nil.
func Install(sim *eventsim.Sim, sched Schedule, resolve Resolver, tracer *trace.Tracer) (*Injector, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{sim: sim, tracer: tracer, orig: make(map[*netem.Port]netem.LinkConfig)}

	// Stable-sort a copy by time: equal-time events keep schedule
	// order, and eventsim breaks ties FIFO by scheduling order.
	events := make(Schedule, len(sched))
	copy(events, sched)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	for _, ev := range events {
		up, down, err := resolve(ev.Leaf, ev.Spine)
		if err != nil {
			return nil, fmt.Errorf("faults: %v: %w", ev, err)
		}
		var targets []*netem.Port
		switch ev.Dir {
		case LeafToSpine:
			targets = []*netem.Port{up}
		case SpineToLeaf:
			targets = []*netem.Port{down}
		default:
			targets = []*netem.Port{up, down}
		}
		// Drop directions the resolver declined (nil): an
		// ownership-filtered resolver resolves only this shard's ports.
		kept := targets[:0]
		for _, p := range targets {
			if p != nil {
				kept = append(kept, p)
			}
		}
		targets = kept
		for _, p := range targets {
			if _, ok := inj.orig[p]; !ok {
				inj.orig[p] = p.Link()
			}
		}
		if len(targets) == 0 {
			continue
		}
		ev, targets := ev, targets
		sim.At(ev.At, func() {
			for _, p := range targets {
				inj.apply(ev, p)
			}
		})
	}
	return inj, nil
}

// apply executes one event against one directed port.
func (inj *Injector) apply(ev Event, p *netem.Port) {
	switch ev.Op {
	case OpDown:
		p.SetDown(true)
	case OpRestore:
		p.SetDown(false)
		p.SetLink(inj.orig[p])
	case OpDeRate:
		l := p.Link()
		l.Bandwidth = ev.Bandwidth
		p.SetLink(l)
	case OpDelay:
		l := p.Link()
		l.Delay = ev.Delay
		p.SetLink(l)
	}
	inj.applied++
	inj.tracer.Record(trace.Event{
		At:    inj.sim.Now(),
		Kind:  trace.LinkFault,
		Where: p.Label(),
		Note:  ev.Op.String() + noteDetail(ev),
	})
}

// noteDetail renders the op's parameter for the trace note.
func noteDetail(ev Event) string {
	switch ev.Op {
	case OpDeRate:
		return fmt.Sprintf(" to %v", ev.Bandwidth)
	case OpDelay:
		return fmt.Sprintf(" to %v", ev.Delay)
	default:
		return ""
	}
}
