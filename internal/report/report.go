// Package report renders a campaign of finished scenarios into one
// self-contained HTML file: inline CSS and inline SVG, no scripts, no
// external assets, so the artifact can be mailed around or archived
// next to the CSV output and still open identically years later.
//
// The renderer is deterministic: the same Campaign produces the same
// bytes (slices only, fixed-precision formatting, no clocks), which is
// what lets the serve smoke test golden-pin the structural skeleton.
package report

import (
	"fmt"
	"html"
	"regexp"
	"sort"
	"strings"

	"tlb/internal/sim"
	"tlb/internal/trace"
	"tlb/internal/units"
)

// Item is one finished (or failed) scenario of a campaign.
type Item struct {
	// Scenario and Scheme label the run (Result carries them too, but a
	// failed run has no Result).
	Scenario string
	Scheme   string
	// Result is the run's measurements; nil when the run failed.
	Result *sim.Result
	// Err is the run's failure, if any.
	Err error
	// Faults holds the run's recorded trace.LinkFault events for the
	// timeline section (optional).
	Faults []trace.Event
}

// Campaign is the input of one report: a titled list of runs, rendered
// in input order.
type Campaign struct {
	Title string
	Items []Item
}

// Section ids, in document order. They are the report's structural
// contract: Skeleton extracts them and the serve smoke test pins them.
const (
	IDSummary = "summary"
	IDAFCT    = "afct"
	IDQueues  = "queues"
	IDFaults  = "faults"
)

// palette colors the per-item marks; index is the item's position.
//
//simlint:allow sharedstate(immutable color table; written only at init)
var palette = [...]string{"#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed", "#0891b2"}

func color(i int) string { return palette[i%len(palette)] }

// HTML renders the campaign as one self-contained document.
func HTML(c Campaign) []byte {
	var b strings.Builder
	title := c.Title
	if title == "" {
		title = "tlbsim campaign"
	}
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n<title>%s</title>\n", html.EscapeString(title))
	b.WriteString("<style>\n" + css + "</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	summarySection(&b, c)
	afctSection(&b, c)
	queueSection(&b, c)
	faultSection(&b, c)
	b.WriteString("</body>\n</html>\n")
	return []byte(b.String())
}

const css = `body { font-family: ui-monospace, monospace; margin: 2rem auto; max-width: 60rem; color: #1f2937; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; border-bottom: 1px solid #e5e7eb; }
table { border-collapse: collapse; font-size: 0.8rem; width: 100%; }
th, td { text-align: right; padding: 0.25rem 0.6rem; border-bottom: 1px solid #f3f4f6; }
th { color: #6b7280; font-weight: 600; } td.name, th.name { text-align: left; }
td.err { color: #b91c1c; text-align: left; }
svg text { font-family: ui-monospace, monospace; }
p.empty { color: #6b7280; font-style: italic; }
`

// summarySection emits the per-run metrics table.
func summarySection(b *strings.Builder, c Campaign) {
	fmt.Fprintf(b, "<section id=%q>\n<h2>Summary</h2>\n<table>\n", IDSummary)
	b.WriteString("<tr><th class=\"name\">scenario</th><th class=\"name\">scheme</th><th>flows</th><th>afct</th><th>p99 fct</th><th>short afct</th><th>goodput</th><th>util</th><th>drops</th><th>fault drops</th><th>retx</th></tr>\n")
	for _, it := range c.Items {
		fmt.Fprintf(b, "<tr><td class=\"name\">%s</td><td class=\"name\">%s</td>", html.EscapeString(it.Scenario), html.EscapeString(it.Scheme))
		if it.Result == nil {
			msg := "no result"
			if it.Err != nil {
				msg = it.Err.Error()
			}
			fmt.Fprintf(b, "<td class=\"err\" colspan=\"9\">%s</td></tr>\n", html.EscapeString(msg))
			continue
		}
		r := it.Result
		fmt.Fprintf(b, "<td>%d/%d</td>", r.CompletedCount(sim.AllFlows), r.Count(sim.AllFlows))
		fmt.Fprintf(b, "<td>%s</td>", ms(r.AFCT(sim.AllFlows)))
		fmt.Fprintf(b, "<td>%s</td>", ms(r.FCTPercentile(sim.AllFlows, 99)))
		fmt.Fprintf(b, "<td>%s</td>", ms(r.AFCT(sim.ShortFlows)))
		fmt.Fprintf(b, "<td>%.1fMbps</td>", float64(r.Goodput(sim.LongFlows))/float64(units.Mbps))
		fmt.Fprintf(b, "<td>%.1f%%</td>", 100*r.UplinkUtilization())
		fmt.Fprintf(b, "<td>%d</td><td>%d</td><td>%d</td></tr>\n", r.Drops, r.FaultDrops, r.TotalRetransmits(sim.AllFlows))
	}
	b.WriteString("</table>\n</section>\n")
}

// ms formats a time as milliseconds with fixed precision, so renders
// are byte-stable.
func ms(t units.Time) string { return fmt.Sprintf("%.3fms", t.Millis()) }

// afctSection draws horizontal percentile bars (mean, p95, p99) per
// run, scaled to the campaign's largest p99.
func afctSection(b *strings.Builder, c Campaign) {
	fmt.Fprintf(b, "<section id=%q>\n<h2>AFCT percentiles</h2>\n", IDAFCT)
	type row struct {
		label string
		vals  [3]units.Time // mean, p95, p99
		col   string
	}
	var rows []row
	var maxV units.Time
	for i, it := range c.Items {
		if it.Result == nil {
			continue
		}
		r := row{
			label: it.Scenario + "/" + it.Scheme,
			vals: [3]units.Time{
				it.Result.AFCT(sim.AllFlows),
				it.Result.FCTPercentile(sim.AllFlows, 95),
				it.Result.FCTPercentile(sim.AllFlows, 99),
			},
			col: color(i),
		}
		for _, v := range r.vals {
			if v > maxV {
				maxV = v
			}
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 || maxV <= 0 {
		b.WriteString("<p class=\"empty\">no completed runs</p>\n</section>\n")
		return
	}
	const (
		left     = 220.0 // label gutter
		barW     = 360.0
		barH     = 12.0
		gap      = 4.0
		groupGap = 14.0
	)
	names := [3]string{"mean", "p95", "p99"}
	groupH := 3*(barH+gap) + groupGap
	height := float64(len(rows))*groupH + 20
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" role=\"img\">\n", left+barW+80, height, left+barW+80, height)
	y := 10.0
	for _, r := range rows {
		fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.1f\" font-size=\"11\" text-anchor=\"end\">%s</text>\n",
			left-8, y+barH, html.EscapeString(r.label))
		for k, v := range r.vals {
			w := barW * float64(v) / float64(maxV)
			fmt.Fprintf(b, "<rect x=\"%.0f\" y=\"%.1f\" width=\"%.2f\" height=\"%.0f\" fill=\"%s\" fill-opacity=\"%.2f\"/>\n",
				left, y, w, barH, r.col, 1.0-0.3*float64(k))
			fmt.Fprintf(b, "<text x=\"%.2f\" y=\"%.1f\" font-size=\"9\" fill=\"#6b7280\">%s %s</text>\n",
				left+w+4, y+barH-2, names[k], ms(v))
			y += barH + gap
		}
		y += groupGap
	}
	b.WriteString("</svg>\n</section>\n")
}

// queueSection draws, per run, the CDF across uplink ports of the mean
// queue length seen by arriving packets — flat CDFs mean even load
// balance, long tails mean hot uplinks.
func queueSection(b *strings.Builder, c Campaign) {
	fmt.Fprintf(b, "<section id=%q>\n<h2>Uplink queue CDFs</h2>\n", IDQueues)
	type curve struct {
		label string
		xs    []float64 // sorted mean queue length per port
		col   string
	}
	var curves []curve
	var maxX float64
	for i, it := range c.Items {
		if it.Result == nil || len(it.Result.Uplinks) == 0 {
			continue
		}
		var xs []float64
		for _, p := range it.Result.Uplinks {
			arrivals := p.Queue.Enqueued + p.Queue.Dropped
			if arrivals == 0 {
				xs = append(xs, 0)
				continue
			}
			xs = append(xs, float64(p.Queue.SumLenOnArrival)/float64(arrivals))
		}
		sort.Float64s(xs)
		if top := xs[len(xs)-1]; top > maxX {
			maxX = top
		}
		curves = append(curves, curve{label: it.Scenario + "/" + it.Scheme, xs: xs, col: color(i)})
	}
	if len(curves) == 0 {
		b.WriteString("<p class=\"empty\">no completed runs</p>\n</section>\n")
		return
	}
	if maxX <= 0 {
		maxX = 1
	}
	const (
		w      = 480.0
		h      = 220.0
		margin = 40.0
	)
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" role=\"img\">\n",
		w+margin+180, h+2*margin, w+margin+180, h+2*margin)
	// Axes.
	fmt.Fprintf(b, "<line x1=\"%.0f\" y1=\"%.0f\" x2=\"%.0f\" y2=\"%.0f\" stroke=\"#9ca3af\"/>\n", margin, margin+h, margin+w, margin+h)
	fmt.Fprintf(b, "<line x1=\"%.0f\" y1=\"%.0f\" x2=\"%.0f\" y2=\"%.0f\" stroke=\"#9ca3af\"/>\n", margin, margin, margin, margin+h)
	fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"10\" text-anchor=\"middle\">mean queue length on arrival (pkts)</text>\n", margin+w/2, margin+h+28)
	fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"10\" text-anchor=\"end\">P(port &#8804; x)</text>\n", margin-4, margin+8)
	fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"9\" text-anchor=\"middle\">%.2f</text>\n", margin+w, margin+h+14, maxX)
	fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"9\" text-anchor=\"middle\">0</text>\n", margin, margin+h+14)
	for ci, cv := range curves {
		var pts []string
		n := len(cv.xs)
		px := func(x float64) float64 { return margin + w*x/maxX }
		py := func(f float64) float64 { return margin + h*(1-f) }
		pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(cv.xs[0]), py(0)))
		for k, x := range cv.xs {
			// Step CDF: rise at each sorted sample.
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(x), py(float64(k)/float64(n))))
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(x), py(float64(k+1)/float64(n))))
		}
		fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n",
			strings.Join(pts, " "), cv.col)
		ly := margin + 14*float64(ci)
		fmt.Fprintf(b, "<rect x=\"%.0f\" y=\"%.1f\" width=\"10\" height=\"10\" fill=\"%s\"/>\n", margin+w+16, ly, cv.col)
		fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.1f\" font-size=\"10\">%s</text>\n", margin+w+30, ly+9, html.EscapeString(cv.label))
	}
	b.WriteString("</svg>\n</section>\n")
}

// faultSection draws one lane per run that recorded trace.LinkFault
// events, with a marker at each event's time.
func faultSection(b *strings.Builder, c Campaign) {
	fmt.Fprintf(b, "<section id=%q>\n<h2>Fault timeline</h2>\n", IDFaults)
	type lane struct {
		label  string
		events []trace.Event
		end    units.Time
		col    string
	}
	var lanes []lane
	var maxEnd units.Time
	for i, it := range c.Items {
		var evs []trace.Event
		for _, e := range it.Faults {
			if e.Kind == trace.LinkFault {
				evs = append(evs, e)
			}
		}
		if len(evs) == 0 {
			continue
		}
		end := evs[len(evs)-1].At
		if it.Result != nil && it.Result.EndTime > end {
			end = it.Result.EndTime
		}
		if end > maxEnd {
			maxEnd = end
		}
		lanes = append(lanes, lane{label: it.Scenario + "/" + it.Scheme, events: evs, end: end, col: color(i)})
	}
	if len(lanes) == 0 {
		b.WriteString("<p class=\"empty\">no fault events recorded</p>\n</section>\n")
		return
	}
	const (
		left  = 220.0
		w     = 440.0
		laneH = 26.0
	)
	height := laneH*float64(len(lanes)) + 40
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" role=\"img\">\n", left+w+40, height, left+w+40, height)
	for li, ln := range lanes {
		y := 14 + laneH*float64(li)
		fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.1f\" font-size=\"11\" text-anchor=\"end\">%s</text>\n", left-8, y+4, html.EscapeString(ln.label))
		fmt.Fprintf(b, "<line x1=\"%.0f\" y1=\"%.1f\" x2=\"%.0f\" y2=\"%.1f\" stroke=\"#e5e7eb\"/>\n", left, y, left+w, y)
		for _, e := range ln.events {
			x := left
			if maxEnd > 0 {
				x += w * float64(e.At) / float64(maxEnd)
			}
			fmt.Fprintf(b, "<circle cx=\"%.2f\" cy=\"%.1f\" r=\"4\" fill=\"%s\"><title>%s %s %s</title></circle>\n",
				x, y, ln.col, e.At, html.EscapeString(e.Where), html.EscapeString(e.Note))
		}
	}
	fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"9\" text-anchor=\"middle\">0</text>\n", left, height-8)
	fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"9\" text-anchor=\"middle\">%s</text>\n", left+w, height-8, maxEnd)
	b.WriteString("</svg>\n</section>\n")
}

// skeletonRe matches the structural elements of a report: section ids,
// headings, and the chart/table containers.
//
//simlint:allow sharedstate(immutable compiled regexp; written only at init)
var skeletonRe = regexp.MustCompile(`<section id="([a-z]+)">|<(h1|h2|table|svg|p class="empty")[\s>]`)

// Skeleton reduces a rendered report to its structural outline —
// section ids and container elements in document order, one token per
// line — the stable surface the serve smoke test golden-pins without
// freezing pixel content.
func Skeleton(doc []byte) string {
	var out []string
	for _, m := range skeletonRe.FindAllStringSubmatch(string(doc), -1) {
		if m[1] != "" {
			out = append(out, "section#"+m[1])
		} else {
			tag := m[2]
			if tag == `p class="empty"` {
				tag = "p.empty"
			}
			out = append(out, tag)
		}
	}
	return strings.Join(out, "\n") + "\n"
}
