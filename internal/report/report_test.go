package report

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tlb/internal/faults"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/sim"
	"tlb/internal/topology"
	"tlb/internal/trace"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

//simlint:allow sharedstate(test-only golden-update flag: written once by flag parsing before any test runs)
var update = flag.Bool("update", false, "rewrite golden files")

func runItem(t *testing.T, name, scheme string, faulted bool) Item {
	t.Helper()
	sc := sim.Scenario{
		Name: name,
		Topology: topology.Config{
			Leaves: 2, Spines: 2, HostsPerLeaf: 2,
			HostLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
			FabricLink: netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
			Queue:      netem.QueueConfig{Capacity: 64, ECNThreshold: 16},
		},
		Transport:  transport.DefaultConfig(),
		Balancer:   lb.ECMP(),
		SchemeName: scheme,
		Seed:       42,
		Flows: []workload.Flow{
			{Src: 0, Dst: 2, Size: 200 * units.KB, Start: 0},
			{Src: 1, Dst: 3, Size: 40 * units.KB, Start: 100 * units.Microsecond},
		},
		StopWhenDone: true,
		MaxTime:      units.Second,
	}
	var tr *trace.Tracer
	if faulted {
		sc.Faults = faults.Schedule{
			faults.Down(200*units.Microsecond, 0, 0),
			faults.Restore(2*units.Millisecond, 0, 0),
		}
		tr = trace.New(0).WithFilter(trace.Filter{Kinds: []trace.EventKind{trace.LinkFault}})
		sc.Tracer = tr
	}
	res, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	return Item{Scenario: name, Scheme: scheme, Result: res, Faults: tr.Events()}
}

func testCampaign(t *testing.T) Campaign {
	t.Helper()
	return Campaign{
		Title: "report <test> campaign",
		Items: []Item{
			runItem(t, "healthy", "ecmp", false),
			runItem(t, "faulted", "ecmp", true),
			{Scenario: "broken", Scheme: "tlb", Err: errors.New("scenario \"broken\" has no flows")},
		},
	}
}

func TestHTMLDeterministic(t *testing.T) {
	c := testCampaign(t)
	a, b := HTML(c), HTML(c)
	if !bytes.Equal(a, b) {
		t.Fatal("two renders of the same campaign differ")
	}
}

func TestHTMLSelfContained(t *testing.T) {
	doc := string(HTML(testCampaign(t)))
	if !strings.HasPrefix(doc, "<!DOCTYPE html>") {
		t.Fatal("missing doctype")
	}
	for _, id := range []string{IDSummary, IDAFCT, IDQueues, IDFaults} {
		if !strings.Contains(doc, `<section id="`+id+`">`) {
			t.Fatalf("missing section %q", id)
		}
	}
	// Self-contained: no scripts, no external fetches of any kind.
	for _, banned := range []string{"<script", "http://", "https://", "src=", "<link", "@import", "url("} {
		if strings.Contains(doc, banned) {
			t.Fatalf("report is not self-contained: found %q", banned)
		}
	}
	// Untrusted strings are escaped.
	if strings.Contains(doc, "<test>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(doc, "report &lt;test&gt; campaign") {
		t.Fatal("escaped title missing")
	}
	// The failed item surfaces its error in the summary.
	if !strings.Contains(doc, "has no flows") {
		t.Fatal("failed item's error missing from summary")
	}
	// The faulted run produced a timeline (down + restore markers).
	if strings.Count(doc, "<circle") < 2 {
		t.Fatal("fault timeline markers missing")
	}
}

func TestHTMLNoFaults(t *testing.T) {
	c := Campaign{Items: []Item{runItem(t, "healthy", "ecmp", false)}}
	doc := string(HTML(c))
	if !strings.Contains(doc, "no fault events recorded") {
		t.Fatal("fault section should state that no events were recorded")
	}
}

func TestHTMLEmptyCampaign(t *testing.T) {
	doc := string(HTML(Campaign{Title: "empty"}))
	for _, id := range []string{IDSummary, IDAFCT, IDQueues, IDFaults} {
		if !strings.Contains(doc, `<section id="`+id+`">`) {
			t.Fatalf("empty campaign missing section %q", id)
		}
	}
}

// TestSkeletonGolden pins the report's structural outline: section ids
// and container elements in document order. Regenerate with -update
// when the structure changes on purpose.
func TestSkeletonGolden(t *testing.T) {
	got := Skeleton(HTML(testCampaign(t)))
	golden := filepath.Join("testdata", "skeleton.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("report skeleton drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
