package transport

import (
	"tlb/internal/netem"
	"tlb/internal/units"
)

// FlowStats is the per-flow record every experiment reduces over.
type FlowStats struct {
	ID   netem.FlowID
	Size units.Bytes

	// Start is when the application opened the flow; End is when the
	// last byte was cumulatively acknowledged at the sender. FCT is
	// End-Start.
	Start, End units.Time
	Done       bool

	// Deadline is the flow's absolute completion deadline (zero if
	// none). Missed is set when the flow finished after it; unfinished
	// flows past their deadline also count as missed at collection.
	Deadline units.Time

	// Sender-side counters.
	PacketsSent int64
	BytesSent   units.Bytes // payload, including retransmissions
	BytesAcked  units.Bytes // cumulatively acknowledged payload
	Retransmits int64
	Timeouts    int64
	FastRetx    int64
	DupAcksRcvd int64 // duplicate ACKs observed by the sender
	ECNAcks     int64 // ACKs carrying an ECN echo
	WindowCuts  int64 // loss- or ECN-triggered reductions
	MaxCwnd     units.Bytes

	// Receiver-side counters.
	SumQueueDelay units.Time // total queueing delay of received data packets, all hops
	PacketsRecv   int64
	OutOfOrder    int64 // data packets that arrived above rcvNxt (reordered or post-loss)
	DupAcksSent   int64
	SumPktDelay   units.Time // one-way delay summed over received data packets
	DelaySamples  int64
}

// FCT returns the flow completion time, or 0 for unfinished flows.
func (s *FlowStats) FCT() units.Time {
	if !s.Done {
		return 0
	}
	return s.End - s.Start
}

// MissedDeadline reports whether the flow had a deadline and failed it
// (either finished late, or unfinished by time now).
func (s *FlowStats) MissedDeadline(now units.Time) bool {
	if s.Deadline == 0 {
		return false
	}
	if s.Done {
		return s.End > s.Deadline
	}
	return now > s.Deadline
}

// AvgPacketDelay returns the mean one-way delay of received data
// packets, or 0 with no samples.
func (s *FlowStats) AvgPacketDelay() units.Time {
	if s.DelaySamples == 0 {
		return 0
	}
	return s.SumPktDelay / units.Time(s.DelaySamples)
}

// DupAckRatio returns the receiver's duplicate-ACK count over packets
// received — the reordering signal of the paper's Fig. 3b.
func (s *FlowStats) DupAckRatio() float64 {
	if s.PacketsRecv == 0 {
		return 0
	}
	return float64(s.DupAcksSent) / float64(s.PacketsRecv)
}
