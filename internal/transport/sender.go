package transport

import (
	"fmt"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// Sender is the sending endpoint of one flow. It is driven entirely by
// simulator events: Start kicks off the handshake (or first window),
// and the owning Host feeds it ACKs via onAck.
type Sender struct {
	sim  *eventsim.Sim
	cfg  Config
	out  func(*netem.Packet)
	done func(*Sender)

	id   netem.FlowID
	size units.Bytes

	// Sequence state (bytes).
	sndUna units.Bytes // oldest unacknowledged
	sndNxt units.Bytes // next to send

	// Congestion control (bytes, float64 so sub-MSS growth in
	// congestion avoidance accumulates).
	cwnd     float64
	ssthresh float64

	dupAcks    int
	inRecovery bool
	recover    units.Bytes

	// RTO machinery. The timer is lazy: arming only records the
	// deadline, and an already-scheduled (earlier) event re-schedules
	// itself on expiry if the deadline moved. This avoids a
	// cancel+insert pair of heap operations on every ACK. rtoFn is the
	// one pre-bound callback reused for every (re)arm, so scheduling
	// the timer never allocates a closure; rtoTimer is a generation-
	// checked handle, inert once the event fired or was cancelled.
	rtoTimer    eventsim.Event
	rtoDeadline units.Time
	rtoFn       func()
	rtoBackoff  units.Time
	srtt        units.Time
	rttvar      units.Time
	hasRTT      bool
	// Karn's algorithm: time one un-retransmitted segment at a time.
	rttSeq    units.Bytes
	rttSentAt units.Time
	rttValid  bool

	// DCTCP state.
	alpha       float64
	winEnd      units.Bytes // alpha observation window boundary (seq)
	bytesAcked  units.Bytes
	bytesMarked units.Bytes

	established bool
	started     bool
	finished    bool

	// SACK scoreboard: the set of segment starts the receiver has
	// reported (sorted, so every scan is deterministic); retxRec tracks
	// what this recovery episode already retransmitted so each hole is
	// resent once per episode.
	sacked  segSet
	retxRec segSet

	Stats FlowStats
}

// NewSender creates an idle sender for a flow of the given size. out
// injects packets into the network; done (optional) fires once when the
// last byte is acknowledged.
func NewSender(sim *eventsim.Sim, cfg Config, id netem.FlowID, size units.Bytes, out func(*netem.Packet), done func(*Sender)) *Sender {
	if size <= 0 {
		panic(fmt.Sprintf("transport: flow %v with non-positive size %d", id, size))
	}
	c := cfg.withDefaults()
	s := &Sender{
		sim:      sim,
		cfg:      c,
		out:      out,
		done:     done,
		id:       id,
		size:     size,
		cwnd:     float64(c.MSS) * float64(c.InitCwnd),
		ssthresh: float64(c.RcvWindow),
		alpha:    1.0,
	}
	s.Stats.ID = id
	s.Stats.Size = size
	s.rtoFn = s.onRTOTimer
	return s
}

// ID returns the flow identity.
func (s *Sender) ID() netem.FlowID { return s.id }

// Size returns the flow size in bytes.
func (s *Sender) Size() units.Bytes { return s.size }

// Done reports whether every byte has been acknowledged.
func (s *Sender) Done() bool { return s.finished }

// Cwnd returns the current congestion window in bytes (for tests and
// instrumentation).
func (s *Sender) Cwnd() units.Bytes { return units.Bytes(s.cwnd) }

// Start opens the flow: SYN first when handshaking, otherwise straight
// to data.
func (s *Sender) Start() {
	if s.started {
		panic(fmt.Sprintf("transport: flow %v started twice", s.id))
	}
	s.started = true
	s.Stats.Start = s.sim.Now()
	s.rtoBackoff = s.rto()
	if s.cfg.Handshake {
		s.sendControl(netem.Syn)
		s.armRTO()
		return
	}
	s.established = true
	s.winEnd = 0
	s.trySend()
}

// onSynAck completes the handshake.
func (s *Sender) onSynAck(pkt *netem.Packet) {
	if s.established || s.finished {
		return // duplicate SYN-ACK
	}
	s.established = true
	s.sampleRTT(s.sim.Now() - s.Stats.Start)
	s.trySend()
}

// onAck processes a cumulative acknowledgement.
func (s *Sender) onAck(pkt *netem.Packet) {
	if s.finished || !s.established {
		return
	}
	ack := pkt.Ack
	if pkt.ECNEcho {
		s.Stats.ECNAcks++
	}
	if s.cfg.SACK && pkt.SackCount > 0 {
		s.recordSack(pkt)
	}
	if ack > s.sndUna {
		s.newAck(ack, pkt.ECNEcho)
		return
	}
	// Stale ACK (below the window, e.g. reordered on the reverse
	// path): ignore. Only an ACK restating exactly snd_una counts as
	// a duplicate (RFC 5681), and only while data is outstanding.
	if ack < s.sndUna || s.sndNxt == s.sndUna {
		return
	}
	s.dupAcks++
	s.Stats.DupAcksRcvd++
	switch {
	case s.inRecovery:
		// Inflate: each dup ACK means a packet left the network.
		s.cwnd += float64(s.cfg.MSS)
		if s.cfg.SACK {
			s.sackRetransmit()
		}
		s.trySend()
	case s.dupAcks == s.cfg.DupAckThreshold:
		s.fastRetransmit()
	}
}

// recordSack folds an ACK's selective blocks into the scoreboard.
func (s *Sender) recordSack(pkt *netem.Packet) {
	for i := 0; i < int(pkt.SackCount); i++ {
		b := pkt.SackBlocks[i]
		for seq := b.Start; seq < b.End; {
			seg := s.segLen(seq)
			if seg <= 0 {
				break
			}
			s.sacked.Add(seq)
			seq += seg
		}
	}
}

// sackRetransmit resends the lowest segment the scoreboard deems lost,
// at most once per recovery episode. Per RFC 6675's loss criterion, an
// un-SACKed segment counts as lost only once DupAckThreshold segments
// above it have been SACKed — merely being in flight is not enough.
func (s *Sender) sackRetransmit() {
	for seq := s.sndUna; seq < s.recover; {
		seg := s.segLen(seq)
		if seg <= 0 {
			return
		}
		if !s.sacked.Has(seq) && !s.retxRec.Has(seq) && s.sackedAbove(seq) >= s.cfg.DupAckThreshold {
			s.retxRec.Add(seq)
			s.retransmit(seq)
			return
		}
		seq += seg
	}
}

// sackedAbove counts SACKed segments beyond seq.
func (s *Sender) sackedAbove(seq units.Bytes) int {
	return s.sacked.CountAbove(seq)
}

// segLen returns the length of the segment starting at seq.
func (s *Sender) segLen(seq units.Bytes) units.Bytes {
	if seq >= s.size {
		return 0
	}
	seg := s.cfg.MSS
	if rem := s.size - seq; rem < seg {
		seg = rem
	}
	return seg
}

func (s *Sender) newAck(ack units.Bytes, ece bool) {
	newly := ack - s.sndUna
	s.sndUna = ack
	s.Stats.BytesAcked = ack
	s.dupAcks = 0

	// RTT sampling (Karn: only segments never retransmitted).
	if s.rttValid && ack > s.rttSeq {
		s.sampleRTT(s.sim.Now() - s.rttSentAt)
		s.rttValid = false
	}

	// DCTCP fraction accounting over one window of data.
	s.bytesAcked += newly
	if ece {
		s.bytesMarked += newly
	}
	if ack >= s.winEnd {
		s.endAlphaWindow()
	}

	if s.cfg.SACK {
		s.sacked.DropBelow(s.sndUna)
	}
	if s.inRecovery {
		if ack >= s.recover {
			// Full ACK: leave recovery, deflate to ssthresh.
			s.inRecovery = false
			s.cwnd = s.ssthresh
			if s.cfg.SACK {
				s.retxRec.Reset()
			}
		} else if s.cfg.SACK {
			// Partial ACK: resend the next un-SACKed hole.
			s.sackRetransmit()
		} else {
			// Partial ACK: the next hole is lost too.
			s.retransmit(s.sndUna)
		}
	} else if s.cwnd < s.ssthresh {
		// Slow start: one MSS per MSS acked.
		s.cwnd += float64(newly)
	} else {
		// Congestion avoidance: ~one MSS per RTT.
		s.cwnd += float64(s.cfg.MSS) * float64(newly) / s.cwnd
	}
	if s.cwnd > float64(s.cfg.RcvWindow) {
		s.cwnd = float64(s.cfg.RcvWindow)
	}
	if units.Bytes(s.cwnd) > s.Stats.MaxCwnd {
		s.Stats.MaxCwnd = units.Bytes(s.cwnd)
	}

	if s.sndUna >= s.size {
		s.complete()
		return
	}
	s.rtoBackoff = s.rto() // fresh progress resets backoff
	s.armRTO()
	s.trySend()
}

// endAlphaWindow closes one observation window: update alpha from the
// marked fraction and, if the window saw any marks, apply the (single)
// DCTCP reduction for it.
func (s *Sender) endAlphaWindow() {
	if s.bytesAcked > 0 {
		frac := float64(s.bytesMarked) / float64(s.bytesAcked)
		if s.cfg.DCTCP {
			g := s.cfg.DCTCPGain
			s.alpha = (1-g)*s.alpha + g*frac
			if s.bytesMarked > 0 {
				s.cwnd = maxf(s.cwnd*(1-s.alpha/2), float64(s.cfg.MSS))
				s.ssthresh = s.cwnd
				s.Stats.WindowCuts++
			}
		} else if s.bytesMarked > 0 {
			// Classic ECN: halve once per window.
			s.cwnd = maxf(s.cwnd/2, 2*float64(s.cfg.MSS))
			s.ssthresh = s.cwnd
			s.Stats.WindowCuts++
		}
	}
	s.bytesAcked, s.bytesMarked = 0, 0
	s.winEnd = s.sndNxt
}

func (s *Sender) fastRetransmit() {
	s.ssthresh = maxf(s.cwnd/2, 2*float64(s.cfg.MSS))
	s.cwnd = s.ssthresh + float64(s.cfg.DupAckThreshold)*float64(s.cfg.MSS)
	s.inRecovery = true
	s.recover = s.sndNxt
	s.Stats.FastRetx++
	s.Stats.WindowCuts++
	if s.cfg.SACK {
		s.retxRec.Reset()
		s.sackRetransmit()
		return
	}
	s.retransmit(s.sndUna)
}

// onRTOTimer fires at the scheduled instant; if the deadline has moved
// forward since scheduling (progress arrived), it just re-arms. The
// fired handle in rtoTimer is already inert (its generation no longer
// matches), so it needs no explicit clearing.
func (s *Sender) onRTOTimer() {
	if s.finished {
		return
	}
	if s.sim.Now() < s.rtoDeadline {
		s.rtoTimer = s.sim.At(s.rtoDeadline, s.rtoFn)
		return
	}
	s.onRTO()
}

// onRTO is the actual retransmission-timeout reaction.
func (s *Sender) onRTO() {
	if s.finished {
		return
	}
	s.Stats.Timeouts++
	if !s.established {
		// Lost SYN (or SYN-ACK): try again.
		s.sendControl(netem.Syn)
		s.doubleBackoff()
		s.armRTO()
		return
	}
	s.ssthresh = maxf(s.cwnd/2, 2*float64(s.cfg.MSS))
	s.cwnd = float64(s.cfg.MSS)
	s.dupAcks = 0
	s.inRecovery = false
	s.rttValid = false
	s.Stats.WindowCuts++
	if s.cfg.SACK {
		// RTO invalidates the scoreboard (RFC 6675 conservativeness).
		s.sacked.Reset()
		s.retxRec.Reset()
	}
	// Go-back-N from the hole.
	s.sndNxt = s.sndUna
	s.retransmit(s.sndUna)
	s.doubleBackoff()
	s.armRTO()
}

// doubleBackoff applies the exponential timeout backoff, capped at
// MaxRTO so a loss streak cannot push the next retry beyond reach.
func (s *Sender) doubleBackoff() {
	s.rtoBackoff *= 2
	if s.rtoBackoff > s.cfg.MaxRTO {
		s.rtoBackoff = s.cfg.MaxRTO
	}
}

// trySend emits as many new segments as the window allows.
func (s *Sender) trySend() {
	if s.finished || !s.established {
		return
	}
	wnd := units.Bytes(s.cwnd)
	if wnd > s.cfg.RcvWindow {
		wnd = s.cfg.RcvWindow
	}
	for s.sndNxt < s.size {
		inflight := s.sndNxt - s.sndUna
		seg := s.cfg.MSS
		if rem := s.size - s.sndNxt; rem < seg {
			seg = rem
		}
		// Always allow one segment in flight so a tiny window cannot
		// deadlock the flow.
		if inflight > 0 && inflight+seg > wnd {
			break
		}
		s.emitData(s.sndNxt, seg, false)
		if !s.rttValid {
			s.rttSeq = s.sndNxt
			s.rttSentAt = s.sim.Now()
			s.rttValid = true
		}
		s.sndNxt += seg
	}
	if s.winEnd < s.sndUna {
		s.winEnd = s.sndNxt
	}
	s.armRTO()
}

func (s *Sender) retransmit(seq units.Bytes) {
	seg := s.cfg.MSS
	if rem := s.size - seq; rem < seg {
		seg = rem
	}
	if seg <= 0 {
		return
	}
	s.Stats.Retransmits++
	if s.rttValid && seq == s.rttSeq {
		s.rttValid = false
	}
	s.emitData(seq, seg, true)
	if seq+seg > s.sndNxt {
		s.sndNxt = seq + seg
	}
}

func (s *Sender) emitData(seq, seg units.Bytes, retx bool) {
	pkt := s.cfg.Pool.Get()
	pkt.Flow = s.id
	pkt.Kind = netem.Data
	pkt.Seq = seq
	pkt.Payload = seg
	pkt.Wire = seg + s.cfg.HeaderBytes
	pkt.SentAt = s.sim.Now()
	pkt.Retransmit = retx
	pkt.FIN = seq+seg >= s.size
	s.Stats.PacketsSent++
	s.Stats.BytesSent += seg
	s.out(pkt)
}

func (s *Sender) sendControl(kind netem.Kind) {
	pkt := s.cfg.Pool.Get()
	pkt.Flow = s.id
	pkt.Kind = kind
	pkt.Wire = s.cfg.HeaderBytes
	pkt.SentAt = s.sim.Now()
	s.Stats.PacketsSent++
	s.out(pkt)
}

func (s *Sender) complete() {
	s.finished = true
	s.Stats.Done = true
	s.Stats.End = s.sim.Now()
	s.cancelRTO()
	if s.done != nil {
		s.done(s)
	}
}

func (s *Sender) rto() units.Time {
	if !s.hasRTT {
		return s.cfg.InitialRTO
	}
	rto := s.srtt + 4*s.rttvar
	if rto < s.cfg.MinRTO {
		rto = s.cfg.MinRTO
	}
	return rto
}

func (s *Sender) sampleRTT(rtt units.Time) {
	if rtt <= 0 {
		rtt = 1
	}
	if !s.hasRTT {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.hasRTT = true
	} else {
		// RFC 6298 with alpha=1/8, beta=1/4.
		d := s.srtt - rtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rtoBackoff = s.rto()
}

func (s *Sender) armRTO() {
	if s.finished {
		return
	}
	// Nothing outstanding and nothing to come: no timer needed.
	if s.established && s.sndUna >= s.sndNxt && s.sndNxt >= s.size {
		return
	}
	s.rtoDeadline = s.sim.Now() + s.rtoBackoff
	if !s.rtoTimer.Scheduled() {
		s.rtoTimer = s.sim.At(s.rtoDeadline, s.rtoFn)
	} else if s.rtoTimer.At() > s.rtoDeadline {
		// The deadline moved *earlier* (progress reset a long timeout
		// backoff): the lazy scheme only recovers from deadlines that
		// move later, so a stale far-future event would leave the flow
		// without a live RTO for the rest of the old backoff.
		s.sim.Cancel(s.rtoTimer)
		s.rtoTimer = s.sim.At(s.rtoDeadline, s.rtoFn)
	}
}

func (s *Sender) cancelRTO() {
	s.sim.Cancel(s.rtoTimer)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
