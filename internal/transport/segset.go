package transport

import (
	"sort"

	"tlb/internal/units"
)

// This file holds the two sorted containers that replaced the maps the
// SACK machinery originally used. Go maps iterate in randomized order,
// which simlint's maporder rule forbids in simulation packages: even
// though the original sweeps happened to be order-free, every future
// edit risked making the byte stream of a run depend on map iteration
// order. The containers below iterate in ascending sequence order by
// construction, so determinism is structural rather than reviewed-in.
// Segment counts are bounded by the congestion window (tens of
// entries), so O(n) inserts are cheaper in practice than map hashing.

// segSet is a sorted set of segment start offsets — the sender's SACK
// scoreboard.
type segSet struct {
	xs []units.Bytes // ascending
}

// search returns the index of the first element >= x.
func (s *segSet) search(x units.Bytes) int {
	return sort.Search(len(s.xs), func(i int) bool { return s.xs[i] >= x })
}

// Add inserts x, keeping the set sorted; duplicates are ignored.
func (s *segSet) Add(x units.Bytes) {
	i := s.search(x)
	if i < len(s.xs) && s.xs[i] == x {
		return
	}
	s.xs = append(s.xs, 0)
	copy(s.xs[i+1:], s.xs[i:])
	s.xs[i] = x
}

// Has reports membership.
func (s *segSet) Has(x units.Bytes) bool {
	i := s.search(x)
	return i < len(s.xs) && s.xs[i] == x
}

// CountAbove returns how many elements are strictly greater than x.
func (s *segSet) CountAbove(x units.Bytes) int {
	return len(s.xs) - s.search(x+1)
}

// DropBelow removes every element strictly less than x.
func (s *segSet) DropBelow(x units.Bytes) {
	i := s.search(x)
	if i > 0 {
		s.xs = s.xs[:copy(s.xs, s.xs[i:])]
	}
}

// Reset empties the set, retaining capacity.
func (s *segSet) Reset() { s.xs = s.xs[:0] }

// Len returns the number of elements.
func (s *segSet) Len() int { return len(s.xs) }

// Keys returns the elements in ascending order. The slice aliases the
// set's storage; callers must not mutate it.
func (s *segSet) Keys() []units.Bytes { return s.xs }

// oooSeg is one buffered out-of-order segment [Start, Start+Len).
type oooSeg struct {
	Start, Len units.Bytes
}

// oooBuf is the receiver's out-of-order reassembly buffer: segments
// sorted by start offset.
type oooBuf struct {
	segs []oooSeg // ascending by Start
}

// search returns the index of the first segment with Start >= x.
func (b *oooBuf) search(x units.Bytes) int {
	return sort.Search(len(b.segs), func(i int) bool { return b.segs[i].Start >= x })
}

// Insert adds (or replaces, on equal start) a segment.
func (b *oooBuf) Insert(start, length units.Bytes) {
	i := b.search(start)
	if i < len(b.segs) && b.segs[i].Start == start {
		b.segs[i].Len = length
		return
	}
	b.segs = append(b.segs, oooSeg{})
	copy(b.segs[i+1:], b.segs[i:])
	b.segs[i] = oooSeg{Start: start, Len: length}
}

// At returns the length of the segment starting exactly at start.
func (b *oooBuf) At(start units.Bytes) (units.Bytes, bool) {
	i := b.search(start)
	if i < len(b.segs) && b.segs[i].Start == start {
		return b.segs[i].Len, true
	}
	return 0, false
}

// Take removes and returns the length of the segment starting exactly
// at start.
func (b *oooBuf) Take(start units.Bytes) (units.Bytes, bool) {
	i := b.search(start)
	if i >= len(b.segs) || b.segs[i].Start != start {
		return 0, false
	}
	l := b.segs[i].Len
	b.segs = append(b.segs[:i], b.segs[i+1:]...)
	return l, true
}

// EndingAt returns the segment whose end (Start+Len) equals x — the
// predecessor a coalescing sweep extends a SACK block over. With
// MSS-partitioned non-overlapping segments this is exactly the segment
// immediately below x.
func (b *oooBuf) EndingAt(x units.Bytes) (oooSeg, bool) {
	i := b.search(x)
	if i == 0 {
		return oooSeg{}, false
	}
	if s := b.segs[i-1]; s.Start+s.Len == x {
		return s, true
	}
	return oooSeg{}, false
}

// Empty reports whether nothing is buffered.
func (b *oooBuf) Empty() bool { return len(b.segs) == 0 }

// Segs returns the buffered segments in ascending start order. The
// slice aliases the buffer's storage; callers must not mutate it.
func (b *oooBuf) Segs() []oooSeg { return b.segs }
