package transport

import (
	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// PacketSample describes one received data packet, for experiments that
// plot per-packet distributions (queue length seen, queueing delay).
type PacketSample struct {
	Flow       netem.FlowID
	At         units.Time
	QueueLen   int        // max queue length seen on admission at any hop
	QueueDelay units.Time // total queueing delay across hops
	OneWay     units.Time // send-to-receive delay
	OutOfOrder bool
}

// Receiver is the receiving endpoint of one flow: it generates one
// cumulative ACK per arriving data packet (no delayed ACKs, matching
// the NS2 setups the paper uses), buffers out-of-order data and echoes
// each packet's CE bit, which is what DCTCP needs.
type Receiver struct {
	sim  *eventsim.Sim
	cfg  Config
	out  func(*netem.Packet)
	id   netem.FlowID
	size units.Bytes

	rcvNxt units.Bytes
	// ooo buffers out-of-order segments, sorted by start seq so every
	// reassembly and SACK-construction sweep is deterministic.
	ooo oooBuf

	lastAckSent units.Bytes
	sentAnyAck  bool

	// frozen is set once all payload bytes have arrived: from then on
	// the receiver keeps answering (late retransmissions still get their
	// ACKs, so sender dynamics are unchanged) but stops mutating Stats
	// and emitting samples. Completion is receiver-local, so the freeze
	// point — unlike the runner's teardown event — is independent of
	// both the shard layout and when the close lands, which is what
	// makes the receiver-half counters safe to snapshot at any moment
	// at or after completion.
	frozen bool

	// Delayed-ACK state: how many in-order segments are unacknowledged
	// and the timer that bounds the delay. lastCE tracks the CE bit of
	// the previous data packet so a state change forces an immediate
	// ACK (the DCTCP requirement). ackFn is the one pre-bound timeout
	// callback (so arming never allocates a closure); ackCE is the CE
	// state captured when the timer was armed, which the callback
	// echoes.
	pendingAcks int
	ackTimer    eventsim.Event
	ackFn       func()
	ackCE       bool
	lastCE      bool
	// lastBlock remembers the most recent out-of-order segment so its
	// block is reported first, as RFC 2018 prescribes.
	lastBlock netem.SackBlock

	// Sample, when non-nil, receives one record per data packet; used
	// by the Fig. 3/8 experiments. Left nil on large runs to avoid the
	// memory cost.
	Sample func(PacketSample)

	Stats *FlowStats
}

// NewReceiver creates the receiving endpoint. stats is shared with the
// experiment runner (and typically with the sender's record via
// Host.Open, which merges them — here the receiver owns the
// receiver-side fields of the same FlowStats).
func NewReceiver(sim *eventsim.Sim, cfg Config, id netem.FlowID, size units.Bytes, out func(*netem.Packet), stats *FlowStats) *Receiver {
	r := &Receiver{
		sim:   sim,
		cfg:   cfg.withDefaults(),
		out:   out,
		id:    id,
		size:  size,
		Stats: stats,
	}
	r.ackFn = r.delayedAckFire
	return r
}

// delayedAckFire is the delayed-ACK timeout callback, bound once at
// construction.
func (r *Receiver) delayedAckFire() {
	r.emitAck(r.ackCE)
}

// Complete reports whether all payload bytes have arrived.
func (r *Receiver) Complete() bool { return r.rcvNxt >= r.size }

// onSyn answers the handshake.
func (r *Receiver) onSyn(pkt *netem.Packet) {
	reply := r.cfg.Pool.Get()
	reply.Flow = r.id.Reversed()
	reply.Kind = netem.SynAck
	reply.Wire = r.cfg.HeaderBytes
	reply.SentAt = r.sim.Now()
	r.out(reply)
}

// onData ingests one data segment and emits the corresponding ACK.
func (r *Receiver) onData(pkt *netem.Packet) {
	now := r.sim.Now()
	frozen := r.frozen
	oneWay := now - pkt.SentAt
	if !frozen {
		r.Stats.PacketsRecv++
		r.Stats.SumPktDelay += oneWay
		r.Stats.DelaySamples++
	}
	outOfOrder := false

	switch {
	case pkt.Seq > r.rcvNxt:
		// Hole below this segment: buffer it. Arrival above rcvNxt is
		// the receiver-side reordering signal (retransmissions are
		// displaced on purpose and excluded).
		if !pkt.Retransmit {
			r.Stats.OutOfOrder++
			outOfOrder = true
		}
		r.ooo.Insert(pkt.Seq, pkt.Payload)
		r.lastBlock = netem.SackBlock{Start: pkt.Seq, End: pkt.Seq + pkt.Payload}
	case pkt.Seq+pkt.Payload <= r.rcvNxt:
		// Entirely duplicate; ACK below re-states rcvNxt.
	default:
		// In-order (possibly overlapping): advance and drain the
		// buffer.
		r.rcvNxt = pkt.Seq + pkt.Payload
		for {
			l, ok := r.ooo.Take(r.rcvNxt)
			if !ok {
				break
			}
			r.rcvNxt += l
		}
	}

	if !frozen {
		if r.Sample != nil {
			r.Sample(PacketSample{
				Flow:       r.id,
				At:         now,
				QueueLen:   pkt.MaxQueueSeen,
				QueueDelay: pkt.QueueDelay,
				OneWay:     oneWay,
				OutOfOrder: outOfOrder,
			})
		}
		r.Stats.SumQueueDelay += pkt.QueueDelay
		if r.Complete() {
			r.frozen = true
		}
	}

	// Delayed ACK (when enabled): in-order segments with a stable CE
	// state may share one cumulative ACK; anything irregular — gaps,
	// duplicates, CE transitions — must be acknowledged at once so the
	// sender's loss and ECN machinery stays accurate.
	ceChanged := pkt.CE != r.lastCE
	r.lastCE = pkt.CE
	if r.cfg.DelayedAck && !outOfOrder && !ceChanged && !pkt.FIN && pkt.Seq+pkt.Payload == r.rcvNxt {
		r.pendingAcks++
		if r.pendingAcks < 2 {
			if !r.ackTimer.Scheduled() {
				r.ackCE = pkt.CE
				r.ackTimer = r.sim.After(r.cfg.DelayedAckTimeout, r.ackFn)
			}
			return
		}
	}
	r.emitAck(pkt.CE)
}

// emitAck sends the cumulative (and selective) acknowledgement state.
func (r *Receiver) emitAck(ce bool) {
	// Cancel is generation-checked, so a handle whose timer already
	// fired (we are inside that firing) is a no-op.
	r.sim.Cancel(r.ackTimer)
	r.pendingAcks = 0
	ack := r.cfg.Pool.Get()
	ack.Flow = r.id.Reversed()
	ack.Kind = netem.Ack
	ack.Ack = r.rcvNxt
	ack.Wire = r.cfg.HeaderBytes
	ack.ECNEcho = ce
	ack.SentAt = r.sim.Now()
	if r.cfg.SACK {
		r.fillSackBlocks(ack)
	}
	if r.sentAnyAck && r.rcvNxt == r.lastAckSent && !r.frozen {
		r.Stats.DupAcksSent++
	}
	r.lastAckSent = r.rcvNxt
	r.sentAnyAck = true
	r.out(ack)
}

// fillSackBlocks reports up to three out-of-order ranges, the most
// recently received first (RFC 2018), then the remaining buffered
// ranges in ascending sequence order. Adjacent buffered segments are
// coalesced so a block covers a contiguous range.
func (r *Receiver) fillSackBlocks(ack *netem.Packet) {
	if r.ooo.Empty() {
		return
	}
	grow := func(b netem.SackBlock) netem.SackBlock {
		// Extend in both directions over buffered segments.
		for {
			if l, ok := r.ooo.At(b.End); ok {
				b.End += l
				continue
			}
			break
		}
		for {
			s, ok := r.ooo.EndingAt(b.Start)
			if !ok {
				break
			}
			b.Start = s.Start
		}
		return b
	}
	add := func(b netem.SackBlock) {
		if b.End <= b.Start || ack.SackCount >= 3 {
			return
		}
		for i := 0; i < int(ack.SackCount); i++ {
			if ack.SackBlocks[i] == b {
				return
			}
		}
		ack.SackBlocks[ack.SackCount] = b
		ack.SackCount++
	}
	if l, ok := r.ooo.At(r.lastBlock.Start); ok && r.lastBlock.End == r.lastBlock.Start+l {
		add(grow(r.lastBlock))
	}
	for _, seg := range r.ooo.Segs() {
		if ack.SackCount >= 3 {
			break
		}
		add(grow(netem.SackBlock{Start: seg.Start, End: seg.Start + seg.Len}))
	}
}
