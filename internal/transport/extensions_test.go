package transport

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

func TestDelayedAckHalvesAckCount(t *testing.T) {
	run := func(delayed bool) (acks int64, fct units.Time) {
		s := eventsim.New()
		p := newPipe(s, testDelay)
		cfg := testCfg()
		cfg.DelayedAck = delayed
		var ackCount int64
		p.intercept = func(dir int, pkt *netem.Packet) bool {
			if dir == 1 && pkt.Kind == netem.Ack {
				ackCount++
			}
			return true
		}
		snd := openFlow(t, p, cfg, 200*cfg.MSS)
		snd.Start()
		s.RunUntil(10 * units.Second)
		if !snd.Done() {
			t.Fatal("not done")
		}
		return ackCount, snd.Stats.FCT()
	}
	full, fctFull := run(false)
	half, fctHalf := run(true)
	if float64(half) > 0.7*float64(full) {
		t.Fatalf("delayed ACK sent %d acks vs %d without — not delaying", half, full)
	}
	// Delayed acks slow the ACK clock a little but must stay in the
	// same ballpark.
	if fctHalf > 3*fctFull {
		t.Fatalf("delayed ACK FCT %v vs %v — timer stalls", fctHalf, fctFull)
	}
}

func TestDelayedAckTimeoutFlushesLoneSegment(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	cfg.DelayedAck = true
	cfg.DelayedAckTimeout = 200 * units.Microsecond
	cfg.Handshake = false
	// One segment, no FIN suppression: ack must still arrive (here the
	// single segment IS the FIN, so use 3 segments and watch the odd
	// one get flushed by the timer).
	snd := openFlow(t, p, cfg, 3*cfg.MSS)
	snd.Start()
	s.RunUntil(5 * units.Second)
	if !snd.Done() {
		t.Fatal("flow stalled: delayed-ACK timer never flushed")
	}
}

func TestDelayedAckImmediateOnOutOfOrder(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	cfg.DelayedAck = true
	cfg.DupAckThreshold = 100 // isolate ack behaviour
	held := false
	var heldPkt *netem.Packet
	var acksBeforeRelease int64
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		if dir == 0 && pkt.Kind == netem.Data && pkt.Seq == 2*cfg.MSS && !held {
			held = true
			heldPkt = pkt
			s.After(400*units.Microsecond, func() { p.hosts[1].Receive(heldPkt) })
			return false
		}
		if dir == 1 && pkt.Kind == netem.Ack && held && heldPkt != nil {
			acksBeforeRelease++
		}
		return true
	}
	snd := openFlow(t, p, cfg, 16*cfg.MSS)
	snd.Start()
	s.RunUntil(5 * units.Second)
	if !snd.Done() {
		t.Fatal("not done")
	}
	// The receiver must have acked the out-of-order arrivals
	// immediately (several acks while the hole was outstanding).
	if acksBeforeRelease == 0 {
		t.Fatal("no immediate ACKs during reordering window")
	}
}

func TestSACKRepairsMultipleLossesInOneWindow(t *testing.T) {
	run := func(sack bool) (retx int64, timeouts int64) {
		s := eventsim.New()
		p := newPipe(s, testDelay)
		cfg := testCfg()
		cfg.SACK = sack
		dropped := map[units.Bytes]bool{}
		p.intercept = func(dir int, pkt *netem.Packet) bool {
			// Drop three separate segments of the same window once.
			if dir == 0 && pkt.Kind == netem.Data && !pkt.Retransmit {
				if (pkt.Seq == 8*cfg.MSS || pkt.Seq == 10*cfg.MSS || pkt.Seq == 12*cfg.MSS) && !dropped[pkt.Seq] {
					dropped[pkt.Seq] = true
					return false
				}
			}
			return true
		}
		snd := openFlow(t, p, cfg, 64*cfg.MSS)
		snd.Start()
		s.RunUntil(30 * units.Second)
		if !snd.Done() {
			t.Fatal("not done")
		}
		if len(dropped) != 3 {
			t.Fatalf("dropped %d segments, want 3", len(dropped))
		}
		return snd.Stats.Retransmits, snd.Stats.Timeouts
	}
	retxNo, _ := run(false)
	retxSack, toSack := run(true)
	// SACK must repair all three losses without resending delivered
	// data: exactly 3 retransmissions and no timeouts.
	if retxSack != 3 {
		t.Fatalf("SACK retransmitted %d segments for 3 losses", retxSack)
	}
	if toSack != 0 {
		t.Fatalf("SACK took %d timeouts", toSack)
	}
	if retxSack > retxNo {
		t.Fatalf("SACK (%d) retransmitted more than NewReno (%d)", retxSack, retxNo)
	}
}

func TestSACKBlocksOnACKs(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	cfg.SACK = true
	cfg.DupAckThreshold = 1000 // keep sender passive; inspect receiver
	sawBlock := false
	var dropOnce bool
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		if dir == 0 && pkt.Kind == netem.Data && pkt.Seq == 4*cfg.MSS && !dropOnce {
			dropOnce = true
			return false
		}
		if dir == 1 && pkt.Kind == netem.Ack && pkt.SackCount > 0 {
			sawBlock = true
			b := pkt.SackBlocks[0]
			if b.Start <= pkt.Ack || b.End <= b.Start {
				t.Errorf("malformed SACK block %+v with ack %d", b, pkt.Ack)
			}
		}
		return true
	}
	snd := openFlow(t, p, cfg, 16*cfg.MSS)
	snd.Start()
	s.RunUntil(10 * units.Second)
	if !sawBlock {
		t.Fatal("no SACK blocks observed despite a hole")
	}
	_ = snd
}

func TestSACKFlowStillCompletesUnderRandomLoss(t *testing.T) {
	rng := eventsim.NewRNG(99)
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	cfg.SACK = true
	cfg.DelayedAck = true
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		return rng.Float64() >= 0.15
	}
	snd := openFlow(t, p, cfg, 80*cfg.MSS)
	snd.Start()
	s.RunUntil(60 * units.Second)
	if !snd.Done() || snd.Stats.BytesAcked != 80*cfg.MSS {
		t.Fatalf("SACK+delayedAck flow failed under loss: done=%v acked=%v",
			snd.Done(), snd.Stats.BytesAcked)
	}
}
