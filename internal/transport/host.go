package transport

import (
	"fmt"
	"sort"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// Host multiplexes flow endpoints on one simulated machine. The fabric
// delivers packets to Receive; endpoints inject packets through the
// out function the host was built with (typically fabric.Inject).
type Host struct {
	sim *eventsim.Sim
	id  int
	out func(*netem.Packet)

	senders   map[netem.FlowID]*Sender
	receivers map[netem.FlowID]*Receiver

	// pool, when set via SetPool, receives every packet Receive has
	// finished dispatching: the host is the terminal sink of delivered
	// packets (endpoint handlers copy what they need and never retain
	// the *Packet).
	pool *netem.PacketPool

	// closeKey is the host's construction-order keyed identity
	// (eventsim.Sim.ReserveKeyedID), used by CloseReceiverAt to place
	// deferred teardown events at a position that is a pure function of
	// (completion time, host) — the same partition-invariance contract
	// netem ports use for deliveries.
	closeKey uint32
}

// NewHost creates a host with the given network injection function.
func NewHost(sim *eventsim.Sim, id int, out func(*netem.Packet)) *Host {
	return &Host{
		sim:       sim,
		id:        id,
		out:       out,
		senders:   make(map[netem.FlowID]*Sender),
		receivers: make(map[netem.FlowID]*Receiver),
		closeKey:  sim.ReserveKeyedID(),
	}
}

// ID returns the host index.
func (h *Host) ID() int { return h.id }

// SetPool makes the host release every delivered packet back to pool
// after dispatching it (see netem.PacketPool for the ownership
// contract). Callers that keep delivered packets alive — test pipes
// that re-deliver them, for instance — must leave the pool unset.
func (h *Host) SetPool(pool *netem.PacketPool) { h.pool = pool }

// OpenSender registers (but does not start) a sender for the flow.
// done fires at completion, after the host has released the endpoint.
func (h *Host) OpenSender(cfg Config, id netem.FlowID, size units.Bytes, done func(*Sender)) *Sender {
	if id.Src != h.id {
		panic(fmt.Sprintf("transport: host %d opening sender for flow %v", h.id, id))
	}
	if _, dup := h.senders[id]; dup {
		panic(fmt.Sprintf("transport: duplicate sender for flow %v", id))
	}
	var s *Sender
	s = NewSender(h.sim, cfg, id, size, h.out, func(snd *Sender) {
		delete(h.senders, id)
		if done != nil {
			done(snd)
		}
	})
	h.senders[id] = s
	return s
}

// OpenReceiver registers the receiving endpoint for the flow; stats is
// the same record the sender side writes its fields into.
func (h *Host) OpenReceiver(cfg Config, id netem.FlowID, size units.Bytes, stats *FlowStats) *Receiver {
	if id.Dst != h.id {
		panic(fmt.Sprintf("transport: host %d opening receiver for flow %v", h.id, id))
	}
	if _, dup := h.receivers[id]; dup {
		panic(fmt.Sprintf("transport: duplicate receiver for flow %v", id))
	}
	r := NewReceiver(h.sim, cfg, id, size, h.out, stats)
	h.receivers[id] = r
	return r
}

// CloseReceiver drops the receiving endpoint (called by the runner once
// the flow is done, so endpoint maps do not grow with completed flows).
func (h *Host) CloseReceiver(id netem.FlowID) {
	delete(h.receivers, id)
}

// hostClose carries one deferred receiver teardown through the engine.
type hostClose struct {
	h  *Host
	id netem.FlowID
}

func hostCloseFire(arg any) {
	c := arg.(*hostClose)
	c.h.CloseReceiver(c.id)
}

// CloseReceiverAt schedules CloseReceiver as a keyed event at done+lag,
// ordered by (done, host): flow teardown modelled as a finite-latency
// notification rather than an instantaneous side effect. The runner
// uses a lag no smaller than the sharded runner's synchronization
// window (and the key is built from the completion time, not the
// scheduling time), so a cross-shard completion delivered at a later
// barrier can re-create the identical event — which is what keeps a
// late retransmission's fate (consumed by a still-open receiver versus
// dropped by a closed one) byte-identical at every shard count. Two
// flows completing at the same instant toward the same host collide on
// the key; the closes are commutative map deletions, so their relative
// order is immaterial.
func (h *Host) CloseReceiverAt(done, lag units.Time, id netem.FlowID) {
	h.sim.AtKey(done+lag, netem.DeliveryKey(done, h.closeKey), hostCloseFire, &hostClose{h: h, id: id})
}

// EachOpenSenderSorted visits the still-open senders in FlowID order —
// completed flows left the map at their done callback, so this is the
// deterministic end-of-run sweep streaming stats fold unfinished flows
// with.
func (h *Host) EachOpenSenderSorted(fn func(*Sender)) {
	ids := make([]netem.FlowID, 0, len(h.senders))
	//simlint:allow maporder(ids are collected here and sorted below before any use)
	for id := range h.senders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Port < b.Port
	})
	for _, id := range ids {
		fn(h.senders[id])
	}
}

// Receive dispatches a delivered packet to the right endpoint, then
// releases it to the pool (when one is set): delivery is the packet's
// terminal sink. Packets for unknown flows (e.g. ACKs racing a
// completed sender) are dropped, as a real host would RST-and-ignore.
func (h *Host) Receive(pkt *netem.Packet) {
	switch pkt.Kind {
	case netem.Data:
		if r, ok := h.receivers[pkt.Flow]; ok {
			r.onData(pkt)
		}
	case netem.Syn:
		if r, ok := h.receivers[pkt.Flow]; ok {
			r.onSyn(pkt)
		}
	case netem.Ack:
		if s, ok := h.senders[pkt.Flow.Reversed()]; ok {
			s.onAck(pkt)
		}
	case netem.SynAck:
		if s, ok := h.senders[pkt.Flow.Reversed()]; ok {
			s.onSynAck(pkt)
		}
	}
	h.pool.Put(pkt)
}
