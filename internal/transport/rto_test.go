package transport

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// TestRTOSurvivesHeavyLoss is the regression for a loss pattern (found
// by the seeded reliability property test under -race) that stalled a
// recoverable flow for two independent reasons:
//
//  1. the lazy RTO timer never rescheduled when the deadline moved
//     *earlier* — after a long timeout-backoff streak, the first ACK
//     reset the backoff but left the timer parked tens of seconds in
//     the future, so the flow sat with no live retransmission timer;
//  2. the backoff itself was uncapped, so a streak of lost
//     retransmissions doubled the next retry past the simulation
//     horizon (RFC 6298 permits — and real stacks use — a ceiling).
//
// With both fixes the flow below completes well inside the horizon.
func TestRTOSurvivesHeavyLoss(t *testing.T) {
	seed, lossPct := uint64(0x4834699d7461b2a8), uint8(0xef)
	loss := float64(lossPct%30) / 100 // 29%, both directions
	rng := eventsim.NewRNG(seed)
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		return rng.Float64() >= loss
	}
	id := netem.FlowID{Src: 0, Dst: 1, Port: 1}
	snd := p.hosts[0].OpenSender(cfg, id, 40*cfg.MSS, nil)
	p.hosts[1].OpenReceiver(cfg, id, 40*cfg.MSS, &snd.Stats)
	snd.Start()
	s.RunUntil(60 * units.Second)
	if !snd.Done() || snd.Stats.BytesAcked != 40*cfg.MSS {
		t.Fatalf("flow stalled: done=%v acked=%v want %v (timeouts=%d retx=%d)",
			snd.Done(), snd.Stats.BytesAcked, 40*cfg.MSS,
			snd.Stats.Timeouts, snd.Stats.Retransmits)
	}
}

// TestRTORearmsWhenDeadlineMovesEarlier pins fix (1) directly: grow
// the backoff with consecutive timeouts, then deliver progress and
// check the timer is actually scheduled at the new, earlier deadline.
func TestRTORearmsWhenDeadlineMovesEarlier(t *testing.T) {
	s := eventsim.New()
	cfg := testCfg()
	var sent []*netem.Packet
	snd := NewSender(s, cfg, netem.FlowID{Src: 0, Dst: 1}, 10*cfg.MSS, func(p *netem.Packet) {
		sent = append(sent, p)
	}, nil)
	snd.Start()

	// Let several RTOs fire with nothing delivered: backoff doubles.
	s.RunUntil(200 * units.Millisecond)
	if snd.Stats.Timeouts < 3 {
		t.Fatalf("expected a timeout streak, got %d", snd.Stats.Timeouts)
	}
	if snd.rtoBackoff <= snd.rto() {
		t.Fatalf("backoff %v did not grow beyond base RTO %v", snd.rtoBackoff, snd.rto())
	}

	// First progress: one segment ACKed. The backoff resets, so the
	// deadline moves earlier than the parked timer.
	snd.onAck(&netem.Packet{Flow: netem.FlowID{Src: 0, Dst: 1}, Kind: netem.Ack, Ack: cfg.MSS})
	if !snd.rtoTimer.Scheduled() {
		t.Fatal("no RTO timer scheduled after progress")
	}
	if snd.rtoTimer.At() > snd.rtoDeadline {
		t.Fatalf("timer parked at %v, after the deadline %v: flow has no live RTO",
			snd.rtoTimer.At(), snd.rtoDeadline)
	}
}

// TestRTOBackoffIsCapped pins fix (2): however many consecutive
// timeouts fire, the backoff never exceeds MaxRTO.
func TestRTOBackoffIsCapped(t *testing.T) {
	s := eventsim.New()
	cfg := testCfg()
	snd := NewSender(s, cfg, netem.FlowID{Src: 0, Dst: 1}, 10*cfg.MSS, func(*netem.Packet) {}, nil)
	snd.Start()
	s.RunUntil(30 * units.Second)
	if snd.Stats.Timeouts < 10 {
		t.Fatalf("expected many timeouts, got %d", snd.Stats.Timeouts)
	}
	max := snd.cfg.MaxRTO
	if snd.rtoBackoff > max {
		t.Fatalf("backoff %v exceeds MaxRTO %v", snd.rtoBackoff, max)
	}
}
