package transport

import (
	"sort"
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// TestSegSetVisitOrderSorted asserts the property the sender's SACK
// scans now rely on: however the scoreboard is populated, Keys() —
// the order every sweep visits — is ascending.
func TestSegSetVisitOrderSorted(t *testing.T) {
	rng := eventsim.NewRNG(7)
	var s segSet
	inserted := map[units.Bytes]bool{}
	for i := 0; i < 500; i++ {
		x := units.Bytes(rng.Intn(200)) * 1460
		s.Add(x)
		inserted[x] = true
	}
	keys := s.Keys()
	if len(keys) != len(inserted) {
		t.Fatalf("segSet has %d keys, want %d distinct", len(keys), len(inserted))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("segSet keys not sorted: %v", keys)
	}
	for _, k := range keys {
		if !inserted[k] {
			t.Fatalf("segSet invented key %d", k)
		}
		if !s.Has(k) {
			t.Fatalf("Has(%d) = false for present key", k)
		}
	}
}

func TestSegSetCountAboveAndDropBelow(t *testing.T) {
	var s segSet
	for _, x := range []units.Bytes{4380, 0, 2920, 1460, 7300} {
		s.Add(x)
	}
	if got := s.CountAbove(1460); got != 3 {
		t.Errorf("CountAbove(1460) = %d, want 3", got)
	}
	if got := s.CountAbove(-1); got != 5 {
		t.Errorf("CountAbove(-1) = %d, want 5", got)
	}
	if got := s.CountAbove(7300); got != 0 {
		t.Errorf("CountAbove(7300) = %d, want 0", got)
	}
	s.DropBelow(2920)
	want := []units.Bytes{2920, 4380, 7300}
	if got := s.Keys(); len(got) != len(want) {
		t.Fatalf("after DropBelow: %v, want %v", got, want)
	}
	for i, k := range s.Keys() {
		if k != want[i] {
			t.Fatalf("after DropBelow: %v, want %v", s.Keys(), want)
		}
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Reset left %d keys", s.Len())
	}
}

// TestOooBufVisitOrderSorted asserts the receiver-side property: the
// reassembly buffer's sweep order (Segs) is ascending by start offset
// regardless of arrival order.
func TestOooBufVisitOrderSorted(t *testing.T) {
	rng := eventsim.NewRNG(11)
	var b oooBuf
	starts := map[units.Bytes]bool{}
	for i := 0; i < 300; i++ {
		st := units.Bytes(rng.Intn(100)) * 1000
		b.Insert(st, 1000)
		starts[st] = true
	}
	segs := b.Segs()
	if len(segs) != len(starts) {
		t.Fatalf("oooBuf has %d segments, want %d distinct", len(segs), len(starts))
	}
	if !sort.SliceIsSorted(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start }) {
		t.Fatalf("oooBuf segments not sorted: %v", segs)
	}
}

func TestOooBufTakeAndEndingAt(t *testing.T) {
	var b oooBuf
	b.Insert(3000, 1000)
	b.Insert(1000, 1000)
	b.Insert(5000, 1000)

	if s, ok := b.EndingAt(2000); !ok || s.Start != 1000 {
		t.Errorf("EndingAt(2000) = %v,%v, want segment at 1000", s, ok)
	}
	if _, ok := b.EndingAt(3000); ok {
		t.Errorf("EndingAt(3000) found a segment; none ends there")
	}
	if l, ok := b.Take(3000); !ok || l != 1000 {
		t.Errorf("Take(3000) = %d,%v", l, ok)
	}
	if _, ok := b.Take(3000); ok {
		t.Errorf("Take(3000) succeeded twice")
	}
	if _, ok := b.At(1000); !ok {
		t.Errorf("At(1000) lost a segment after unrelated Take")
	}
	if b.Empty() {
		t.Errorf("buffer reported empty with 2 segments")
	}
}

// TestFillSackBlocksDeterministicOrder pins the SACK block layout the
// sorted buffer produces: the most recent block first (RFC 2018), then
// remaining blocks in ascending sequence order — where the old
// map-backed sweep emitted them in randomized order.
func TestFillSackBlocksDeterministicOrder(t *testing.T) {
	sim := eventsim.New()
	var acks []*netem.Packet
	out := func(p *netem.Packet) { acks = append(acks, p) }
	flow := netem.FlowID{Src: 1, Dst: 2}
	r := NewReceiver(sim, Config{SACK: true}, flow, 10000, out, &FlowStats{})

	seg := func(seq units.Bytes) *netem.Packet {
		return &netem.Packet{Flow: flow, Kind: netem.Data, Seq: seq, Payload: 1000, Wire: 1040}
	}
	// Three disjoint holes, arriving 2000, 6000, then 4000.
	r.onData(seg(2000))
	r.onData(seg(6000))
	r.onData(seg(4000))

	last := acks[len(acks)-1]
	want := []netem.SackBlock{
		{Start: 4000, End: 5000}, // most recent first
		{Start: 2000, End: 3000}, // then ascending
		{Start: 6000, End: 7000},
	}
	if int(last.SackCount) != len(want) {
		t.Fatalf("SackCount = %d, want %d", last.SackCount, len(want))
	}
	for i, w := range want {
		if last.SackBlocks[i] != w {
			t.Errorf("block %d = %+v, want %+v", i, last.SackBlocks[i], w)
		}
	}
}
