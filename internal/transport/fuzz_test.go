package transport

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// FuzzReceiverReassembly drives the receiver with segments in an
// arbitrary (fuzzer-chosen) arrival order, with arbitrary duplication,
// and asserts the reassembly invariants that make the delivered byte
// stream identical to in-order delivery:
//
//   - every cumulative ACK is non-decreasing, segment-aligned and never
//     beyond the flow size (no byte is delivered twice or out of order);
//   - once every segment has arrived at least once, rcvNxt equals the
//     flow size exactly and the out-of-order buffer has drained.
//
// The first input byte picks the segment count; the rest choose which
// segment arrives next (mod the count, so duplicates are frequent).
func FuzzReceiverReassembly(f *testing.F) {
	f.Add([]byte{5, 0, 1, 2, 3, 4})             // in order
	f.Add([]byte{8, 7, 6, 5, 4, 3, 2, 1, 0})    // fully reversed
	f.Add([]byte{4, 2, 2, 0, 3, 1, 0})          // holes plus duplicates
	f.Add([]byte{1})                            // single segment, no order bytes
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		nseg := int(data[0])%24 + 1
		const mss = units.Bytes(1000)
		size := units.Bytes(nseg) * mss

		sim := eventsim.New()
		flow := netem.FlowID{Src: 1, Dst: 2, Port: 9}
		var acks []units.Bytes
		out := func(p *netem.Packet) {
			if p.Kind == netem.Ack {
				acks = append(acks, p.Ack)
			}
		}
		r := NewReceiver(sim, Config{SACK: true}, flow, size, out, &FlowStats{})

		deliver := func(i int) {
			seq := units.Bytes(i) * mss
			r.onData(&netem.Packet{
				Flow:    flow,
				Kind:    netem.Data,
				Seq:     seq,
				Payload: mss,
				Wire:    mss + 40,
				FIN:     seq+mss >= size,
			})
		}

		seen := make([]bool, nseg)
		for _, b := range data[1:] {
			i := int(b) % nseg
			deliver(i)
			seen[i] = true
		}
		// Whatever the fuzzer chose, complete the flow: the property
		// under test is order-independence, not loss recovery.
		for i := 0; i < nseg; i++ {
			if !seen[i] {
				deliver(i)
			}
		}

		prev := units.Bytes(0)
		for _, a := range acks {
			if a < prev {
				t.Fatalf("cumulative ACK went backwards: %d after %d", a, prev)
			}
			if a > size {
				t.Fatalf("ACK %d beyond flow size %d", a, size)
			}
			if a%mss != 0 {
				t.Fatalf("ACK %d not segment-aligned", a)
			}
			prev = a
		}
		if !r.Complete() || r.rcvNxt != size {
			t.Fatalf("after all segments: rcvNxt=%d, want %d", r.rcvNxt, size)
		}
		if !r.ooo.Empty() {
			t.Fatalf("out-of-order buffer not drained: %v", r.ooo.Segs())
		}
	})
}
