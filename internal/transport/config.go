// Package transport implements the TCP/DCTCP endpoints the simulated
// flows run over: a sender with slow start, congestion avoidance,
// 3-dupACK fast retransmit/recovery, RTO, a receive-window cap and
// DCTCP's ECN-fraction window reduction; and a receiver with cumulative
// ACKs, out-of-order buffering and per-packet ECN echo.
//
// The mechanisms here are exactly the ones the paper's observations
// depend on: packet reordering manifests as duplicate ACKs and spurious
// window cuts (Fig. 3b), queue buildup as queueing delay and long-tail
// FCT (Fig. 3a/c), and the long flows' 64 KB receive-window cap is the
// W_L of the paper's Eq. 1.
package transport

import (
	"tlb/internal/netem"
	"tlb/internal/units"
)

// Config parameterizes both endpoints of every flow in a simulation.
type Config struct {
	// MSS is the maximum segment (payload) size.
	MSS units.Bytes
	// HeaderBytes is added to each segment on the wire; pure ACKs and
	// handshake packets are HeaderBytes long.
	HeaderBytes units.Bytes
	// InitCwnd is the initial congestion window in segments. The
	// paper's slow-start model (Eq. 3) assumes 2.
	InitCwnd int
	// RcvWindow caps the usable window (Linux's default 64 KB receive
	// buffer in the paper; W_L in Eq. 1).
	RcvWindow units.Bytes
	// MinRTO bounds the retransmission timer from below.
	MinRTO units.Time
	// MaxRTO bounds the exponential timeout backoff from above (RFC
	// 6298 §2.5 permits a cap). Without it, a streak of lost
	// retransmissions doubles the timer past the simulation horizon
	// and a recoverable flow never retries.
	MaxRTO units.Time
	// InitialRTO is used before any RTT sample exists.
	InitialRTO units.Time
	// DupAckThreshold triggers fast retransmit (3, per TCP).
	DupAckThreshold int
	// DCTCP enables ECN-fraction-proportional window reduction; when
	// false the sender is TCP NewReno (ECE halves the window at most
	// once per RTT, RFC 3168 style).
	DCTCP bool
	// DCTCPGain is DCTCP's g for the alpha EWMA (1/16 by default).
	DCTCPGain float64
	// Handshake, when true, prefixes every flow with a SYN/SYN-ACK
	// exchange — the messages the paper's switch counts flows with.
	Handshake bool

	// DelayedAck enables RFC 1122-style delayed acknowledgements: the
	// receiver ACKs every second in-order segment or after
	// DelayedAckTimeout, whichever first. Out-of-order or CE-state
	// changes still ACK immediately (RFC 5681 / DCTCP requirements).
	// Off by default: the paper's NS2 setups ACK per packet.
	DelayedAck bool
	// DelayedAckTimeout bounds how long an ACK may be withheld
	// (default 500 µs, a datacenter-scale setting).
	DelayedAckTimeout units.Time
	// SACK enables selective acknowledgements: ACKs carry up to three
	// out-of-order blocks, and the sender's recovery retransmits only
	// segments not known to have arrived (instead of NewReno's one
	// hole per RTT / go-back-N on timeout). Off by default to match
	// the paper's NS2 TCP.
	SACK bool

	// Pool, when non-nil, supplies the Packet structs every endpoint
	// emits, so steady-state sending allocates nothing. It must be the
	// run's single per-simulation pool (sim.Run installs one and also
	// hands it to the fabric and hosts, which own the release points —
	// see netem.PacketPool for the ownership contract). Nil falls back
	// to plain allocation, which standalone endpoints and tests use.
	Pool *netem.PacketPool
}

// DefaultConfig mirrors the paper's NS2 setup: DCTCP, MSS 1460,
// initial window 2, 64 KB receive window, RTO_min 10 ms (the standard
// datacenter setting in the literature the paper builds on).
func DefaultConfig() Config {
	return Config{
		MSS:             1460,
		HeaderBytes:     40,
		InitCwnd:        2,
		RcvWindow:       64 * units.KiB,
		MinRTO:          10 * units.Millisecond,
		InitialRTO:      10 * units.Millisecond,
		DupAckThreshold: 3,
		DCTCP:           true,
		DCTCPGain:       1.0 / 16,
		Handshake:       true,
	}
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.MSS <= 0 {
		d.MSS = 1460
	}
	if d.HeaderBytes < 0 {
		d.HeaderBytes = 0
	}
	if d.InitCwnd <= 0 {
		d.InitCwnd = 2
	}
	if d.RcvWindow <= 0 {
		d.RcvWindow = 64 * units.KiB
	}
	if d.MinRTO <= 0 {
		d.MinRTO = 10 * units.Millisecond
	}
	if d.InitialRTO <= 0 {
		d.InitialRTO = d.MinRTO
	}
	if d.MaxRTO <= 0 {
		d.MaxRTO = units.Second
	}
	if d.MaxRTO < d.MinRTO {
		d.MaxRTO = d.MinRTO
	}
	if d.DupAckThreshold <= 0 {
		d.DupAckThreshold = 3
	}
	if d.DCTCPGain <= 0 {
		d.DCTCPGain = 1.0 / 16
	}
	if d.DelayedAckTimeout <= 0 {
		d.DelayedAckTimeout = 500 * units.Microsecond
	}
	return d
}
