package transport

import (
	//simlint:allow noglobalrand(testing/quick requires a *rand.Rand; both uses seed it with a fixed constant)
	"math/rand"
	"testing"
	"testing/quick"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// pipe connects two hosts with a fixed one-way delay and programmable
// per-packet interference (drop, CE-mark, extra delay), giving the
// transport tests precise control over network behaviour.
type pipe struct {
	sim   *eventsim.Sim
	delay units.Time
	// intercept may mutate the packet; returning false drops it.
	// dir is 0 for host0->host1, 1 for the reverse.
	intercept func(dir int, pkt *netem.Packet) bool

	hosts [2]*Host
}

func newPipe(sim *eventsim.Sim, delay units.Time) *pipe {
	p := &pipe{sim: sim, delay: delay}
	for i := 0; i < 2; i++ {
		dir := i
		p.hosts[i] = NewHost(sim, i, func(pkt *netem.Packet) {
			if p.intercept != nil && !p.intercept(dir, pkt) {
				return
			}
			p.sim.After(p.delay, func() { p.hosts[1-dir].Receive(pkt) })
		})
	}
	return p
}

const testDelay = 25 * units.Microsecond // one-way; RTT = 50µs

func testCfg() Config {
	c := DefaultConfig()
	c.MinRTO = 2 * units.Millisecond
	c.InitialRTO = 2 * units.Millisecond
	return c
}

// openFlow wires a sender on host0 and receiver on host1.
func openFlow(t *testing.T, p *pipe, cfg Config, size units.Bytes) *Sender {
	t.Helper()
	id := netem.FlowID{Src: 0, Dst: 1, Port: 1}
	snd := p.hosts[0].OpenSender(cfg, id, size, nil)
	p.hosts[1].OpenReceiver(cfg, id, size, &snd.Stats)
	return snd
}

func TestFlowCompletesCleanNetwork(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	snd := openFlow(t, p, testCfg(), 100*units.KB)
	snd.Start()
	s.RunUntil(units.Second)
	if !snd.Done() {
		t.Fatal("flow did not complete")
	}
	if snd.Stats.Retransmits != 0 {
		t.Fatalf("%d retransmits on a clean network", snd.Stats.Retransmits)
	}
	if snd.Stats.BytesAcked != 100*units.KB {
		t.Fatalf("acked %v", snd.Stats.BytesAcked)
	}
	// Slow start from 2 MSS: ~2+4+8+16+32+8 segments over ~6 RTTs plus
	// the handshake RTT. With RTT 50µs that's well under 1ms.
	if fct := snd.Stats.FCT(); fct > units.Millisecond {
		t.Fatalf("FCT %v too large for a clean 100KB transfer", fct)
	}
}

func TestSlowStartRoundStructure(t *testing.T) {
	// With handshake and per-packet ACKs, a 4-segment flow needs
	// SYN round + 2 data rounds (2 then 2 segments): FCT just over
	// 3 RTTs but under 4.
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	size := 4 * cfg.MSS
	snd := openFlow(t, p, cfg, size)
	snd.Start()
	s.RunUntil(units.Second)
	rtt := 2 * testDelay
	if !snd.Done() {
		t.Fatal("not done")
	}
	fct := snd.Stats.FCT()
	if fct < 3*rtt || fct > 4*rtt {
		t.Fatalf("FCT %v outside [3,4] RTTs (%v)", fct, rtt)
	}
}

func TestNoHandshakeSkipsSynRound(t *testing.T) {
	run := func(handshake bool) units.Time {
		s := eventsim.New()
		p := newPipe(s, testDelay)
		cfg := testCfg()
		cfg.Handshake = handshake
		snd := openFlow(t, p, cfg, 4*cfg.MSS)
		snd.Start()
		s.RunUntil(units.Second)
		if !snd.Done() {
			t.Fatal("not done")
		}
		return snd.Stats.FCT()
	}
	with, without := run(true), run(false)
	rtt := 2 * testDelay
	if d := with - without; d != rtt {
		t.Fatalf("handshake adds %v, want exactly one RTT (%v)", d, rtt)
	}
}

func TestReceiveWindowCapsInflight(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	maxInflight := units.Bytes(0)
	var inflight units.Bytes
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		if dir == 0 && pkt.Kind == netem.Data && !pkt.Retransmit {
			inflight = pkt.Seq + pkt.Payload
		}
		if dir == 1 && pkt.Kind == netem.Ack {
			if d := inflight - pkt.Ack; d > maxInflight {
				maxInflight = d
			}
		}
		return true
	}
	snd := openFlow(t, p, cfg, 2*units.MB)
	snd.Start()
	s.RunUntil(5 * units.Second)
	if !snd.Done() {
		t.Fatal("not done")
	}
	if maxInflight > cfg.RcvWindow+cfg.MSS {
		t.Fatalf("inflight %v exceeded receive window %v", maxInflight, cfg.RcvWindow)
	}
	if snd.Stats.MaxCwnd > cfg.RcvWindow {
		t.Fatalf("cwnd %v exceeded receive window %v", snd.Stats.MaxCwnd, cfg.RcvWindow)
	}
}

func TestFastRetransmitOnSingleLoss(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	dropped := false
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		// Drop the first data segment of the 3rd window once; later
		// segments still flow, generating dup ACKs.
		if dir == 0 && pkt.Kind == netem.Data && pkt.Seq == 6*cfg.MSS && !dropped && !pkt.Retransmit {
			dropped = true
			return false
		}
		return true
	}
	snd := openFlow(t, p, cfg, 64*cfg.MSS)
	snd.Start()
	s.RunUntil(5 * units.Second)
	if !snd.Done() {
		t.Fatal("not done")
	}
	if !dropped {
		t.Fatal("intended drop never happened")
	}
	if snd.Stats.FastRetx != 1 {
		t.Fatalf("fast retransmits = %d, want 1", snd.Stats.FastRetx)
	}
	if snd.Stats.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0 (loss should be repaired by dupacks)", snd.Stats.Timeouts)
	}
}

func TestRTOOnTailLoss(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	size := 4 * cfg.MSS
	dropped := false
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		// Drop the very last segment once: no packets behind it, so no
		// dup ACKs — only the RTO can recover.
		if dir == 0 && pkt.Kind == netem.Data && pkt.Seq == size-cfg.MSS && !dropped {
			dropped = true
			return false
		}
		return true
	}
	snd := openFlow(t, p, cfg, size)
	snd.Start()
	s.RunUntil(5 * units.Second)
	if !snd.Done() {
		t.Fatal("not done")
	}
	if snd.Stats.Timeouts < 1 {
		t.Fatalf("timeouts = %d, want >= 1", snd.Stats.Timeouts)
	}
}

func TestSynLossRecovered(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	first := true
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		if pkt.Kind == netem.Syn && first {
			first = false
			return false
		}
		return true
	}
	snd := openFlow(t, p, testCfg(), 10*units.KB)
	snd.Start()
	s.RunUntil(units.Second)
	if !snd.Done() {
		t.Fatal("flow with lost SYN did not complete")
	}
	if snd.Stats.Timeouts < 1 {
		t.Fatal("lost SYN should cost a timeout")
	}
}

func TestReorderingGeneratesDupAcksAndOOO(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	cfg.DupAckThreshold = 100 // disable fast retransmit to isolate counting
	held := false
	var heldPkt *netem.Packet
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		// Hold segment at seq 2*MSS back by re-injecting it after two
		// later segments have passed.
		if dir == 0 && pkt.Kind == netem.Data && pkt.Seq == 2*cfg.MSS && !held {
			held = true
			heldPkt = pkt
			s.After(300*units.Microsecond, func() { p.hosts[1].Receive(heldPkt) })
			return false
		}
		return true
	}
	snd := openFlow(t, p, cfg, 16*cfg.MSS)
	snd.Start()
	s.RunUntil(5 * units.Second)
	if !snd.Done() {
		t.Fatal("not done")
	}
	if snd.Stats.OutOfOrder == 0 {
		t.Fatal("no out-of-order arrivals recorded despite reordering")
	}
	if snd.Stats.DupAcksSent == 0 {
		t.Fatal("no duplicate ACKs recorded despite reordering")
	}
	if snd.Stats.Retransmits != 0 {
		t.Fatal("pure reordering should not trigger retransmission here")
	}
}

func TestECNMarksCutWindowDCTCP(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		if dir == 0 && pkt.Kind == netem.Data {
			pkt.CE = true // everything marked: alpha -> 1
		}
		return true
	}
	snd := openFlow(t, p, cfg, 200*cfg.MSS)
	snd.Start()
	s.RunUntil(10 * units.Second)
	if !snd.Done() {
		t.Fatal("not done")
	}
	if snd.Stats.ECNAcks == 0 {
		t.Fatal("no ECN-echo ACKs seen")
	}
	if snd.Stats.WindowCuts == 0 {
		t.Fatal("persistent CE marks caused no window reductions")
	}
	// Under full marking DCTCP converges toward ~2 MSS windows, so the
	// max window should stay well below the receive window.
	if snd.Stats.MaxCwnd > cfg.RcvWindow/2 {
		t.Fatalf("cwnd %v grew despite full ECN marking", snd.Stats.MaxCwnd)
	}
}

func TestECNClassicHalving(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	cfg.DCTCP = false
	markOnce := true
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		if dir == 0 && pkt.Kind == netem.Data && markOnce && pkt.Seq > 10*cfg.MSS {
			pkt.CE = true
			markOnce = false
		}
		return true
	}
	snd := openFlow(t, p, cfg, 100*cfg.MSS)
	snd.Start()
	s.RunUntil(10 * units.Second)
	if !snd.Done() {
		t.Fatal("not done")
	}
	if snd.Stats.WindowCuts != 1 {
		t.Fatalf("window cuts = %d, want exactly 1", snd.Stats.WindowCuts)
	}
}

func TestDuplicateDataIsIdempotent(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		if dir == 0 && pkt.Kind == netem.Data && pkt.Seq == 0 {
			// Deliver the first segment twice.
			dup := *pkt
			s.After(10*units.Microsecond, func() { p.hosts[1].Receive(&dup) })
		}
		return true
	}
	snd := openFlow(t, p, cfg, 8*cfg.MSS)
	snd.Start()
	s.RunUntil(units.Second)
	if !snd.Done() {
		t.Fatal("not done")
	}
	if snd.Stats.BytesAcked != 8*cfg.MSS {
		t.Fatalf("acked %v", snd.Stats.BytesAcked)
	}
}

// TestReliabilityUnderRandomLoss is the transport's core property: any
// pattern of random loss (below 100%) must still deliver the flow.
func TestReliabilityUnderRandomLoss(t *testing.T) {
	f := func(seed uint64, lossPct uint8) bool {
		loss := float64(lossPct%30) / 100 // 0–29% loss
		rng := eventsim.NewRNG(seed)
		s := eventsim.New()
		p := newPipe(s, testDelay)
		cfg := testCfg()
		p.intercept = func(dir int, pkt *netem.Packet) bool {
			return rng.Float64() >= loss
		}
		id := netem.FlowID{Src: 0, Dst: 1, Port: 1}
		snd := p.hosts[0].OpenSender(cfg, id, 40*cfg.MSS, nil)
		p.hosts[1].OpenReceiver(cfg, id, 40*cfg.MSS, &snd.Stats)
		snd.Start()
		s.RunUntil(60 * units.Second)
		return snd.Done() && snd.Stats.BytesAcked == 40*cfg.MSS
	}
	// Seeded: the property must hold for any input, but CI runs the
	// same inputs every time. Bump the seed to explore new ones.
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestHostDispatchUnknownFlowIsDropped(t *testing.T) {
	s := eventsim.New()
	h := NewHost(s, 0, func(*netem.Packet) {})
	// Must not panic.
	h.Receive(&netem.Packet{Flow: netem.FlowID{Src: 9, Dst: 0}, Kind: netem.Data})
	h.Receive(&netem.Packet{Flow: netem.FlowID{Src: 0, Dst: 9}.Reversed(), Kind: netem.Ack})
	h.Receive(&netem.Packet{Flow: netem.FlowID{Src: 9, Dst: 0}, Kind: netem.Syn})
	h.Receive(&netem.Packet{Flow: netem.FlowID{Src: 9, Dst: 0}, Kind: netem.SynAck})
}

func TestDeadlineAccounting(t *testing.T) {
	fs := FlowStats{Deadline: 100, Done: true, End: 90}
	if fs.MissedDeadline(1000) {
		t.Fatal("on-time flow reported missed")
	}
	fs.End = 110
	if !fs.MissedDeadline(1000) {
		t.Fatal("late flow reported on time")
	}
	unfinished := FlowStats{Deadline: 100}
	if unfinished.MissedDeadline(50) {
		t.Fatal("unfinished flow before deadline reported missed")
	}
	if !unfinished.MissedDeadline(150) {
		t.Fatal("unfinished flow past deadline reported on time")
	}
	noDeadline := FlowStats{}
	if noDeadline.MissedDeadline(1 << 40) {
		t.Fatal("deadline-free flow reported missed")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	d := c.withDefaults()
	if d.MSS != 1460 || d.InitCwnd != 2 || d.DupAckThreshold != 3 {
		t.Fatalf("bad defaults: %+v", d)
	}
	if d.RcvWindow != 64*units.KiB {
		t.Fatalf("RcvWindow default %v", d.RcvWindow)
	}
}

// TestSenderInvariantsProperty drives flows through random loss, CE
// marking and extra delay, asserting the sequencing invariants that
// hold for any correct TCP: snd_una is monotone, never exceeds what was
// sent, and the flow completes exactly when snd_una reaches the size.
func TestSenderInvariantsProperty(t *testing.T) {
	f := func(seed uint64, lossPct, markPct uint8, segs uint8) bool {
		loss := float64(lossPct%25) / 100
		mark := float64(markPct%50) / 100
		size := units.Bytes(int(segs%60)+1) * 1460
		rng := eventsim.NewRNG(seed)
		s := eventsim.New()
		p := newPipe(s, testDelay)
		cfg := testCfg()

		var lastUna units.Bytes
		var maxSent units.Bytes
		violated := false
		p.intercept = func(dir int, pkt *netem.Packet) bool {
			if dir == 0 && pkt.Kind == netem.Data {
				if end := pkt.Seq + pkt.Payload; end > maxSent {
					maxSent = end
				}
				if rng.Float64() < mark {
					pkt.CE = true
				}
			}
			if dir == 1 && pkt.Kind == netem.Ack {
				if pkt.Ack > maxSent {
					violated = true // acked bytes never sent
				}
			}
			return rng.Float64() >= loss
		}
		id := netem.FlowID{Src: 0, Dst: 1, Port: 1}
		snd := p.hosts[0].OpenSender(cfg, id, size, nil)
		p.hosts[1].OpenReceiver(cfg, id, size, &snd.Stats)
		snd.Start()
		for i := 0; i < 400000 && !snd.Done(); i++ {
			if !s.Step() {
				break
			}
			if snd.Stats.BytesAcked < lastUna {
				violated = true
			}
			lastUna = snd.Stats.BytesAcked
		}
		return !violated && snd.Done() && snd.Stats.BytesAcked == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestDCTCPAlphaConvergesUnderFullMarking(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		if dir == 0 && pkt.Kind == netem.Data {
			pkt.CE = true
		}
		return true
	}
	snd := openFlow(t, p, cfg, 400*cfg.MSS)
	snd.Start()
	s.RunUntil(30 * units.Second)
	if !snd.Done() {
		t.Fatal("not done")
	}
	// With every packet marked, alpha -> 1 and the window is cut by
	// ~alpha/2 every round: cwnd should end near its floor.
	if snd.alpha < 0.9 {
		t.Fatalf("alpha = %v, want near 1 under full marking", snd.alpha)
	}
	if snd.Cwnd() > 4*cfg.MSS {
		t.Fatalf("cwnd = %v did not converge down", snd.Cwnd())
	}
}

func TestDuplicateSynAckIgnored(t *testing.T) {
	s := eventsim.New()
	p := newPipe(s, testDelay)
	cfg := testCfg()
	var dup *netem.Packet
	p.intercept = func(dir int, pkt *netem.Packet) bool {
		if dir == 1 && pkt.Kind == netem.SynAck && dup == nil {
			c := *pkt
			dup = &c
			s.After(100*units.Microsecond, func() { p.hosts[0].Receive(dup) })
		}
		return true
	}
	snd := openFlow(t, p, cfg, 8*cfg.MSS)
	snd.Start()
	s.RunUntil(units.Second)
	if !snd.Done() || snd.Stats.BytesAcked != 8*cfg.MSS {
		t.Fatal("duplicate SYN-ACK broke the flow")
	}
}

func TestSenderAccessors(t *testing.T) {
	s := eventsim.New()
	cfg := testCfg()
	snd := NewSender(s, cfg, netem.FlowID{Src: 0, Dst: 1}, 1000, func(*netem.Packet) {}, nil)
	if snd.ID() != (netem.FlowID{Src: 0, Dst: 1}) || snd.Size() != 1000 || snd.Done() {
		t.Fatal("accessors")
	}
	if snd.Cwnd() != 2*cfg.MSS {
		t.Fatalf("initial cwnd %v", snd.Cwnd())
	}
}

func TestZeroSizeFlowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSender(eventsim.New(), testCfg(), netem.FlowID{}, 0, func(*netem.Packet) {}, nil)
}
