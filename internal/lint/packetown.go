package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// packetown enforces the PacketPool ownership contract (see
// internal/netem/pool.go): a *netem.Packet released with
// PacketPool.Put belongs to the pool again and may be handed to the
// next Get at any moment, so after a Put the releasing function must
// not read it, write its fields, insert it into a container, pass it
// on, release it again, or return it. Retaining packets in struct
// fields is the other half of the contract: only the netem layer
// (pool free list, port queues) owns in-flight packets; every other
// component copies out the fields it needs.
//
// The dataflow is intra-procedural and path-sensitive enough for the
// code shapes this repository uses: a Put inside a branch only
// poisons the code after the branch if the branch can fall through
// (its body does not end in return/panic/break/continue), and
// reassigning the variable (p = pool.Get()) resurrects it. Closures
// are analyzed as independent function bodies.

// checkPacketOwn runs the ownership analysis over one file.
func (l *linter) checkPacketOwn(p *pkg, f *ast.File) {
	po := &packetOwn{l: l, p: p}
	inNetem := f.Name.Name == "netem"
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok != token.TYPE || inNetem {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				po.checkFields(ts.Name.Name, st)
			}
		case *ast.FuncDecl:
			if d.Body != nil {
				po.analyzeFunc(d.Body)
			}
		}
	}
}

type packetOwn struct {
	l *linter
	p *pkg
}

func (po *packetOwn) report(pos token.Pos, msg string) {
	po.l.report(sharedFset.Position(pos), "packetown", msg)
}

// checkFields flags struct fields that retain packets outside netem.
func (po *packetOwn) checkFields(typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := po.p.info.TypeOf(field.Type)
		if t == nil || !typeContainsPacket(t) {
			continue
		}
		name := "embedded field"
		pos := field.Type.Pos()
		if len(field.Names) > 0 {
			name = field.Names[0].Name
			pos = field.Names[0].Pos()
		}
		po.report(pos, fmt.Sprintf("struct field %s.%s retains *netem.Packet; packets are pool-owned and only the netem layer may hold them (copy the fields you need instead)", typeName, name))
	}
}

// analyzeFunc runs the released-set dataflow over one function body,
// then recurses into every function literal as its own root.
func (po *packetOwn) analyzeFunc(body *ast.BlockStmt) {
	po.scanStmts(body.List, map[*types.Var]token.Pos{})
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			po.scanStmts(lit.Body.List, map[*types.Var]token.Pos{})
			// Nested literals are found by the recursive Inspect below.
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if inner, ok := m.(*ast.FuncLit); ok && inner != lit {
					po.scanStmts(inner.Body.List, map[*types.Var]token.Pos{})
					return false
				}
				return true
			})
			return false
		}
		return true
	})
}

// identPacketVar resolves an expression to the packet-typed variable it
// names, or nil.
func (po *packetOwn) identPacketVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := po.p.info.Uses[id].(*types.Var)
	if !ok || !isPacketPtr(v.Type()) {
		return nil
	}
	return v
}

// putArg returns the argument of a PacketPool.Put call, or nil.
func (po *packetOwn) putArg(call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	fn, ok := po.p.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Put" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "PacketPool" || obj.Pkg() == nil || obj.Pkg().Name() != "netem" {
		return nil
	}
	return call.Args[0]
}

// line formats the source line of a position for messages.
func (po *packetOwn) line(pos token.Pos) int { return sharedFset.Position(pos).Line }

// scanExpr visits an expression, reporting uses of released packets and
// recording new releases. Function literals are skipped (they are
// analyzed as independent roots by analyzeFunc).
func (po *packetOwn) scanExpr(e ast.Expr, rel map[*types.Var]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			arg := po.putArg(x)
			if arg == nil {
				return true
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				po.scanExpr(sel.X, rel)
			}
			if v := po.identPacketVar(arg); v != nil {
				if first, dead := rel[v]; dead {
					po.report(arg.Pos(), fmt.Sprintf("packet %s released to the pool twice (first Put at line %d); double release always panics", v.Name(), po.line(first)))
				} else {
					rel[v] = arg.Pos()
				}
			} else {
				po.scanExpr(arg, rel)
			}
			return false
		case *ast.Ident:
			if v, ok := po.p.info.Uses[x].(*types.Var); ok {
				if put, dead := rel[v]; dead {
					po.report(x.Pos(), fmt.Sprintf("packet %s used after PacketPool.Put released it (Put at line %d); the pool may already have recycled it", v.Name(), po.line(put)))
					delete(rel, v) // one report per release, not a cascade
				}
			}
		}
		return true
	})
}

// scanStmts runs the dataflow over a statement list in order.
func (po *packetOwn) scanStmts(stmts []ast.Stmt, rel map[*types.Var]token.Pos) {
	for _, s := range stmts {
		po.scanStmt(s, rel)
	}
}

func copyRel(rel map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos, len(rel))
	for k, v := range rel {
		out[k] = v
	}
	return out
}

func mergeRel(dst, src map[*types.Var]token.Pos) {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
}

func (po *packetOwn) scanStmt(s ast.Stmt, rel map[*types.Var]token.Pos) {
	switch x := s.(type) {
	case nil:
	case *ast.ExprStmt:
		po.scanExpr(x.X, rel)
	case *ast.SendStmt:
		po.scanExpr(x.Chan, rel)
		po.scanExpr(x.Value, rel)
	case *ast.IncDecStmt:
		po.scanExpr(x.X, rel)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			po.scanExpr(r, rel)
		}
		for _, lh := range x.Lhs {
			if id, ok := lh.(*ast.Ident); ok {
				// Whole-variable (re)assignment resurrects the variable:
				// it now names a different packet (or nothing).
				if v, ok := po.p.info.Defs[id].(*types.Var); ok {
					delete(rel, v)
				} else if v, ok := po.p.info.Uses[id].(*types.Var); ok {
					delete(rel, v)
				}
				continue
			}
			// A store through the variable (p.Field = ..., m[p] = ...)
			// is a use of it.
			po.scanExpr(lh, rel)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						po.scanExpr(val, rel)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			if v := po.identPacketVar(r); v != nil {
				if put, dead := rel[v]; dead {
					po.report(r.Pos(), fmt.Sprintf("function releases packet %s (Put at line %d) and then returns it; a released packet must not escape", v.Name(), po.line(put)))
					delete(rel, v)
					continue
				}
			}
			po.scanExpr(r, rel)
		}
	case *ast.DeferStmt:
		po.scanExpr(x.Call, rel)
	case *ast.GoStmt:
		po.scanExpr(x.Call, rel)
	case *ast.BlockStmt:
		po.scanStmts(x.List, rel)
	case *ast.IfStmt:
		po.scanStmt(x.Init, rel)
		po.scanExpr(x.Cond, rel)
		then := copyRel(rel)
		po.scanStmts(x.Body.List, then)
		if !terminates(x.Body.List) {
			mergeRel(rel, then)
		}
		if x.Else != nil {
			els := copyRel(rel)
			po.scanStmt(x.Else, els)
			if !stmtTerminates(x.Else) {
				mergeRel(rel, els)
			}
		}
	case *ast.ForStmt:
		po.scanStmt(x.Init, rel)
		po.scanExpr(x.Cond, rel)
		body := copyRel(rel)
		po.scanStmts(x.Body.List, body)
		po.scanStmt(x.Post, body)
		if !terminates(x.Body.List) {
			mergeRel(rel, body)
		}
	case *ast.RangeStmt:
		po.scanExpr(x.X, rel)
		body := copyRel(rel)
		po.scanStmts(x.Body.List, body)
		if !terminates(x.Body.List) {
			mergeRel(rel, body)
		}
	case *ast.SwitchStmt:
		po.scanStmt(x.Init, rel)
		po.scanExpr(x.Tag, rel)
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				po.scanExpr(e, rel)
			}
			body := copyRel(rel)
			po.scanStmts(cc.Body, body)
			if !terminates(cc.Body) {
				mergeRel(rel, body)
			}
		}
	case *ast.TypeSwitchStmt:
		po.scanStmt(x.Init, rel)
		po.scanStmt(x.Assign, rel)
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			body := copyRel(rel)
			po.scanStmts(cc.Body, body)
			if !terminates(cc.Body) {
				mergeRel(rel, body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			body := copyRel(rel)
			po.scanStmt(cc.Comm, body)
			po.scanStmts(cc.Body, body)
			if !terminates(cc.Body) {
				mergeRel(rel, body)
			}
		}
	case *ast.LabeledStmt:
		po.scanStmt(x.Stmt, rel)
	}
}

// terminates reports whether a statement list always transfers control
// away from the code after it (return, panic, or a branch out).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(x.List)
	case *ast.IfStmt:
		if x.Else == nil {
			return false
		}
		return terminates(x.Body.List) && stmtTerminates(x.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(x.Stmt)
	}
	return false
}

// isPacketPtr reports whether t is *netem.Packet.
func isPacketPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isPacketNamed(ptr.Elem())
}

func isPacketNamed(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Packet" && obj.Pkg() != nil && obj.Pkg().Name() == "netem"
}

// typeContainsPacket reports whether a field of this type can retain a
// packet: a (pointer to) Packet, or any container of one.
func typeContainsPacket(t types.Type) bool {
	switch x := t.(type) {
	case *types.Pointer:
		return typeContainsPacket(x.Elem())
	case *types.Slice:
		return typeContainsPacket(x.Elem())
	case *types.Array:
		return typeContainsPacket(x.Elem())
	case *types.Map:
		return typeContainsPacket(x.Key()) || typeContainsPacket(x.Elem())
	case *types.Chan:
		return typeContainsPacket(x.Elem())
	case *types.Named:
		return isPacketNamed(x)
	}
	return false
}
