package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// expectedFindings parses //WANT markers out of a fixture tree. A
// marker trails the offending line and names the rule(s) expected on
// that line, space-separated, one entry per expected finding:
//
//	time.Sleep(time.Millisecond) //WANT nowallclock
//
// The returned strings have the form "file:line: rule", with file
// relative to root.
func expectedFindings(t *testing.T, root string) []string {
	t.Helper()
	var want []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "//WANT ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(marker) {
				want = append(want, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(rel), i+1, rule))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	return want
}

func runLint(t *testing.T, root string) []string {
	t.Helper()
	findings, err := Run(root)
	if err != nil {
		t.Fatalf("lint.Run(%s): %v", root, err)
	}
	got := make([]string, len(findings))
	for i, f := range findings {
		got[i] = fmt.Sprintf("%s:%d: %s", f.File, f.Line, f.Rule)
	}
	sort.Strings(got)
	return got
}

// TestFixtures checks every analyzer against its positive (bad.go) and
// negative (ok.go, harness files) fixtures: the findings must match the
// //WANT markers exactly — no extra findings, none missing.
func TestFixtures(t *testing.T) {
	fixtures := []string{
		"nowallclock", "noglobalrand", "maporder", "floateq", "unitliteral",
		"packetown", "handlelife", "dimcheck", "sharedstate",
		"directives", "testfiles",
	}
	for _, fix := range fixtures {
		t.Run(fix, func(t *testing.T) {
			root := filepath.Join("testdata", fix)
			want := expectedFindings(t, root)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no //WANT markers", fix)
			}
			got := runLint(t, root)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("findings mismatch\ngot:\n%s\nwant:\n%s",
					strings.Join(got, "\n"), strings.Join(want, "\n"))
			}
		})
	}
}

// TestRepoIsClean is the gate the Makefile's lint target relies on: the
// repository itself must lint clean.
func TestRepoIsClean(t *testing.T) {
	if got := runLint(t, "../.."); len(got) != 0 {
		t.Errorf("repository has %d simlint finding(s):\n%s", len(got), strings.Join(got, "\n"))
	}
}

// copyModule copies go.mod and every .go file of the module at src
// into dst — test files included, since they are linted too —
// preserving the directory layout and skipping testdata (the fixtures
// are separate modules).
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != src && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if name != "go.mod" && !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// repoAnnotations lists every suppression group in the repository —
// test files included, since they are linted too — as (relative file,
// removal text, rule). For a single-group directive the removal text
// is the whole directive; for a multi-rule directive it is just the
// one rule(reason) group, so deleting it leaves the other groups
// intact.
func repoAnnotations(t *testing.T, root string) (files []string, texts []string, rules []string) {
	t.Helper()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		// The linter's own sources and the simlint command mention the
		// directive syntax in doc comments, diagnostic messages and this
		// very function; those are not suppressions of anything.
		if strings.HasPrefix(filepath.ToSlash(rel), "internal/lint/") || strings.HasPrefix(filepath.ToSlash(rel), "cmd/simlint/") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "//simlint:")
			if idx < 0 {
				continue
			}
			comment := line[idx:]
			loc := allowRe.FindStringIndex(comment)
			if loc == nil {
				continue
			}
			// Walk the rule(reason) groups, recording each one's extent.
			type group struct {
				start, end int
				rule       string
			}
			var groups []group
			off := loc[1]
			for {
				m := allowGroupRe.FindStringSubmatch(comment[off:])
				if m == nil {
					break
				}
				groups = append(groups, group{start: off, end: off + len(m[0]), rule: m[1]})
				off += len(m[0])
			}
			for _, g := range groups {
				files = append(files, rel)
				rules = append(rules, g.rule)
				if len(groups) == 1 {
					texts = append(texts, comment[:g.end])
				} else {
					texts = append(texts, comment[g.start:g.end])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files, texts, rules
}

// TestRemovingAnyAllowAnnotationFails proves the repo's annotations are
// load-bearing: for every //simlint:allow directive in the tree,
// deleting just that directive makes simlint report the suppressed
// rule at that site.
func TestRemovingAnyAllowAnnotationFails(t *testing.T) {
	if testing.Short() {
		t.Skip("re-lints the repository once per annotation")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	files, texts, rules := repoAnnotations(t, root)
	if len(files) < 4 {
		t.Fatalf("expected the repo to carry several allow annotations, found %d", len(files))
	}
	for i := range files {
		name := fmt.Sprintf("%s-%s-%d", strings.ReplaceAll(files[i], string(os.PathSeparator), "_"), rules[i], i)
		t.Run(name, func(t *testing.T) {
			tmp := t.TempDir()
			copyModule(t, root, tmp)
			target := filepath.Join(tmp, files[i])
			data, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			stripped := strings.Replace(string(data), texts[i], "", 1)
			if stripped == string(data) {
				t.Fatalf("directive %q not found in copy of %s", texts[i], files[i])
			}
			if err := os.WriteFile(target, []byte(stripped), 0o644); err != nil {
				t.Fatal(err)
			}
			findings, err := Run(tmp)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range findings {
				if f.Rule == rules[i] && f.File == filepath.ToSlash(files[i]) {
					return // the annotation was load-bearing
				}
			}
			t.Errorf("removing %q from %s produced no %s finding; findings: %v",
				texts[i], files[i], rules[i], findings)
		})
	}
}

// TestReintroducingWallClockFails proves the nowallclock rule guards
// the real tree: dropping a time.Now call into internal/netem makes
// the lint run fail.
func TestReintroducingWallClockFails(t *testing.T) {
	if testing.Short() {
		t.Skip("re-lints the repository")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	copyModule(t, root, tmp)
	bad := `package netem

import "time"

func wallClock() int64 { return time.Now().UnixNano() }
`
	if err := os.WriteFile(filepath.Join(tmp, "internal/netem/zz_wallclock.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := Run(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Rule == "nowallclock" && f.File == "internal/netem/zz_wallclock.go" {
			return
		}
	}
	t.Errorf("time.Now in internal/netem went undetected; findings: %v", findings)
}

// TestCleanFixtures covers loader edge cases that must produce zero
// findings: build-tag- and GOOS-excluded files are invisible, a module
// with no simulation packages loads fine, and a nested testdata tree
// is another module's fixture, not ours.
func TestCleanFixtures(t *testing.T) {
	for _, fix := range []string{"buildtags", "nosim", "nestedtestdata"} {
		t.Run(fix, func(t *testing.T) {
			got := runLint(t, filepath.Join("testdata", fix))
			if len(got) != 0 {
				t.Errorf("expected no findings, got:\n%s", strings.Join(got, "\n"))
			}
		})
	}
}

// TestRuleRegistry pins the stable diagnostic IDs: SARIF/JSON consumers
// key on them, so changing one is a breaking change.
func TestRuleRegistry(t *testing.T) {
	want := map[string]string{
		"simlint":      "SIM000",
		"nowallclock":  "SIM001",
		"noglobalrand": "SIM002",
		"maporder":     "SIM003",
		"floateq":      "SIM004",
		"unitliteral":  "SIM005",
		"packetown":    "SIM006",
		"handlelife":   "SIM007",
		"dimcheck":     "SIM008",
		"sharedstate":  "SIM009",
		"unusedallow":  "SIM010",
	}
	rules := Rules()
	if len(rules) != len(want) {
		t.Fatalf("Rules() returned %d rules, want %d: %v", len(rules), len(want), rules)
	}
	for rule, id := range want {
		if got := RuleID(rule); got != id {
			t.Errorf("RuleID(%s) = %s, want %s", rule, got, id)
		}
		if RuleDoc(rule) == "" {
			t.Errorf("RuleDoc(%s) is empty", rule)
		}
	}
	if got := RuleID("nosuchrule"); got != "SIM999" {
		t.Errorf("RuleID(nosuchrule) = %s, want SIM999", got)
	}
}

// BenchmarkSimlint tracks the analyzer's wall clock over the whole
// repository (all nine rules, test files included); `make bench`
// records it in BENCH_7.json.
func BenchmarkSimlint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		findings, err := Run("../..")
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) != 0 {
			b.Fatalf("repository not clean: %v", findings)
		}
	}
}
