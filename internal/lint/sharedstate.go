package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// sharedstate enforces shard-readiness. The roadmap's next unlock is
// sharding one scenario across cores, which turns every piece of
// mutable state reachable from two shards into a data race. Three
// shapes are flagged:
//
//  1. Package-level vars in simulation packages. Immutable lookup
//     tables are fine in principle but indistinguishable from mutable
//     accumulators syntactically, so every one needs a reasoned
//     //simlint:allow sharedstate(...) asserting it is never written
//     after init.
//  2. go statements anywhere but the approved concurrency entry
//     points: internal/sim/sweep.go (the sweep runner),
//     internal/sim/shard.go (the sharded scenario runner) and
//     internal/serve/server.go (the run-submission server, whose
//     per-run executor goroutine is joined by Server.Close).
//     Scattered goroutines make determinism and shutdown impossible
//     to reason about centrally.
//  3. Writes to captured variables inside closures passed to
//     sim.RunSweep / sim.RunAll. The runner invokes these from worker
//     goroutines, so `total += x` or `seen = append(seen, p)` races.
//     Writes through an index expression (results[i] = r) stay legal:
//     per-slot writes to disjoint indices are the intended pattern.
func (l *linter) checkSharedState(p *pkg, f *ast.File, sim bool) {
	if sim {
		l.checkPackageVars(p, f)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			pos := sharedFset.Position(x.Pos())
			rel := l.relFile(pos)
			if !strings.HasSuffix(rel, "sim/sweep.go") && !strings.HasSuffix(rel, "sim/shard.go") && !strings.HasSuffix(rel, "serve/server.go") {
				l.report(pos, "sharedstate",
					"go statement outside the approved runners (sim/sweep.go, sim/shard.go, serve/server.go); route concurrency through sim.RunSweep/RunAll, the sharded scenario runner or the serve layer so shutdown and determinism stay centralized")
			}
		case *ast.CallExpr:
			l.checkSweepClosures(p, x)
		}
		return true
	})
}

// checkPackageVars flags package-level var declarations in simulation
// packages.
func (l *linter) checkPackageVars(p *pkg, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if name.Name == "_" {
					continue
				}
				l.report(sharedFset.Position(name.Pos()), "sharedstate",
					fmt.Sprintf("package-level var %s in a simulation package is shared mutable state; sharding needs per-shard state (hang it off a struct), or annotate why it is immutable after init", name.Name))
			}
		}
	}
}

// isSweepRunner reports whether the call is sim.RunSweep or sim.RunAll.
func isSweepRunner(p *pkg, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	fn, ok := p.info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "sim" {
		return "", false
	}
	switch fn.Name() {
	case "RunSweep", "RunAll":
		return fn.Name(), true
	}
	return "", false
}

// checkSweepClosures flags writes to captured variables inside
// function literals passed (directly or nested in a composite) to the
// sweep runner.
func (l *linter) checkSweepClosures(p *pkg, call *ast.CallExpr) {
	runner, ok := isSweepRunner(p, call)
	if !ok {
		return
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			l.checkCapturedWrites(p, lit, runner)
			return true // nested literals are checked against their own extent too
		})
	}
}

// checkCapturedWrites reports assignments and ++/-- inside the literal
// whose target is a plain identifier declared outside the literal.
func (l *linter) checkCapturedWrites(p *pkg, lit *ast.FuncLit, runner string) {
	captured := func(e ast.Expr) (*types.Var, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil, false
		}
		v, ok := p.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return nil, false
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil, false // the literal's own local or parameter
		}
		return v, true
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lh := range x.Lhs {
				if v, ok := captured(lh); ok {
					l.report(sharedFset.Position(lh.Pos()), "sharedstate",
						fmt.Sprintf("closure passed to %s writes captured variable %s; worker goroutines race on it — write to a per-index slot or aggregate after the sweep returns", runner, v.Name()))
				}
			}
		case *ast.IncDecStmt:
			if v, ok := captured(x.X); ok {
				l.report(sharedFset.Position(x.X.Pos()), "sharedstate",
					fmt.Sprintf("closure passed to %s increments captured variable %s; worker goroutines race on it — write to a per-index slot or aggregate after the sweep returns", runner, v.Name()))
			}
		}
		return true
	})
}
