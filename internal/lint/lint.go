// Package lint implements simlint, the repository's custom static
// analyzer. It enforces the determinism and unit-safety contract that
// the simulator's headline guarantee — byte-identical figure output
// from a seed at any worker count — depends on:
//
//	nowallclock  no time.Now/time.Since/time.Sleep inside simulation
//	             packages; wall-clock time belongs to the harness.
//	noglobalrand no math/rand (or math/rand/v2) anywhere but
//	             eventsim/rng.go; stochastic code takes *eventsim.RNG.
//	maporder     no for-range over a map in simulation packages; Go
//	             randomizes map iteration order per iteration, so any
//	             order-sensitive sweep must iterate sorted keys.
//	floateq      no ==/!= between floating-point operands in
//	             simulation packages.
//	unitliteral  no untyped non-zero numeric literals passed directly
//	             to parameters typed units.Time/units.Bandwidth/
//	             units.Bytes; build values from the named constants.
//
// A site that is order-free or exact on purpose can be suppressed with
// an annotation on the offending line or the line above:
//
//	//simlint:allow maporder(keys are collected and sorted before use)
//
// The reason inside the parentheses is mandatory; an empty reason is
// itself reported. The analyzer is stdlib-only (go/parser, go/ast,
// go/types with the source importer), keeping the module free of
// third-party dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	File string // path relative to the linted module root
	Line int
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Msg)
}

// simPackages names the directories under internal/ whose code runs
// inside simulations and must therefore be deterministic. Everything
// else (internal/sim, internal/experiments, cmd/, examples/) is
// harness: it may read the wall clock, but still may not use
// math/rand.
var simPackages = map[string]bool{
	"eventsim": true, "netem": true, "transport": true, "core": true,
	"lb": true, "model": true, "workload": true, "topology": true,
	"trace": true, "stats": true, "units": true, "faults": true,
	"spec": true,
}

// isSimPackage reports whether the import path denotes simulation code:
// an internal package whose name is in the simPackages set.
func isSimPackage(importPath string) bool {
	segs := strings.Split(importPath, "/")
	if len(segs) < 2 {
		return false
	}
	return segs[len(segs)-2] == "internal" && simPackages[segs[len(segs)-1]]
}

// allowRe matches one suppression directive. Rule names are lowercase
// identifiers; the reason may not contain a closing parenthesis.
var allowRe = regexp.MustCompile(`simlint:allow\s+([a-z]+)\(([^)]*)\)`)

// linter carries the state of one Run.
type linter struct {
	root     string
	findings []Finding
	// allowed maps file -> line -> rule -> true for suppression
	// directives in effect on that line.
	allowed map[string]map[int]map[string]bool
}

// Run lints the Go module rooted at root and returns all findings,
// sorted by file, line and rule. A nil slice means the module is clean.
func Run(root string) ([]Finding, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := loadModule(absRoot)
	if err != nil {
		return nil, err
	}
	l := &linter{root: absRoot, allowed: make(map[string]map[int]map[string]bool)}
	for _, p := range pkgs {
		for _, f := range p.files {
			l.collectAllows(f)
		}
	}
	for _, p := range pkgs {
		l.checkPackage(p)
	}
	sort.Slice(l.findings, func(i, j int) bool {
		a, b := l.findings[i], l.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return l.findings, nil
}

// relFile converts a token position's filename to a root-relative path.
func (l *linter) relFile(pos token.Position) string {
	rel, err := filepath.Rel(l.root, pos.Filename)
	if err != nil {
		return pos.Filename
	}
	return filepath.ToSlash(rel)
}

// collectAllows records every suppression directive in the file. A
// directive covers its own line (end-of-line comment) and the next line
// (comment above the statement).
func (l *linter) collectAllows(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, m := range allowRe.FindAllStringSubmatch(c.Text, -1) {
				rule, reason := m[1], strings.TrimSpace(m[2])
				pos := sharedFset.Position(c.Pos())
				file := l.relFile(pos)
				if reason == "" {
					l.report(pos, "simlint", fmt.Sprintf("allow directive for %q needs a non-empty reason", rule))
					continue
				}
				if l.allowed[file] == nil {
					l.allowed[file] = make(map[int]map[string]bool)
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if l.allowed[file][line] == nil {
						l.allowed[file][line] = make(map[string]bool)
					}
					l.allowed[file][line][rule] = true
				}
			}
		}
	}
}

// report adds a finding unless an allow directive suppresses it.
func (l *linter) report(pos token.Position, rule, msg string) {
	file := l.relFile(pos)
	if rule != "simlint" && l.allowed[file][pos.Line][rule] {
		return
	}
	l.findings = append(l.findings, Finding{File: file, Line: pos.Line, Rule: rule, Msg: msg})
}
