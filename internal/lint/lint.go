// Package lint implements simlint, the repository's custom static
// analyzer. It enforces the determinism, unit-safety and ownership
// contract that the simulator's headline guarantees — byte-identical
// figure output from a seed at any worker count, an allocation-free
// hot path, and (next) spatial sharding of one scenario — depend on:
//
//	nowallclock  no time.Now/time.Since/time.Sleep inside simulation
//	             packages; wall-clock time belongs to the harness.
//	noglobalrand no math/rand (or math/rand/v2) anywhere but
//	             eventsim/rng.go; stochastic code takes *eventsim.RNG.
//	maporder     no for-range over a map in simulation packages; Go
//	             randomizes map iteration order per iteration, so any
//	             order-sensitive sweep must iterate sorted keys.
//	floateq      no ==/!= between floating-point operands in
//	             simulation packages.
//	unitliteral  no untyped non-zero numeric literals passed directly
//	             to parameters typed units.Time/units.Bandwidth/
//	             units.Bytes; build values from the named constants.
//	packetown    *netem.Packet pool-ownership dataflow: no use of a
//	             packet after PacketPool.Put releases it, no function
//	             that both releases and returns a packet, and no
//	             retention of packets in struct fields outside the
//	             owning netem layer.
//	handlelife   eventsim.Event handle discipline: no method calls on
//	             never-assigned zero handles, no discarded schedule
//	             results in types that track a handle field, and no
//	             ignored Cancel result on local handles.
//	dimcheck     dimensional analysis: no cross-unit conversions
//	             (units.Bytes built from a units.Time-derived value)
//	             and no mixed-unit arithmetic or comparisons smuggled
//	             through int64()/float64() strips, tracked through
//	             local assignments.
//	sharedstate  shard-readiness: no package-level mutable vars in
//	             simulation packages, no go statements outside the
//	             approved concurrent entry points (internal/sim/
//	             sweep.go, internal/sim/shard.go, internal/serve/
//	             server.go), and no writes to captured variables
//	             inside closures passed to sim.RunSweep/RunAll.
//
// Test files are analyzed too, with per-rule exemptions: wall-clock
// reads, map ranges, float equality, bare unit literals and unit
// strips are legitimate in test harnesses, but ownership, handle,
// concurrency and global-rand bugs in tests hide real races from the
// race detector, so noglobalrand, packetown, handlelife and
// sharedstate stay enforced.
//
// A site that is safe on purpose can be suppressed with an annotation
// on the offending line or the line above; one directive may carry
// several rules:
//
//	//simlint:allow maporder(keys are collected and sorted before use)
//	//simlint:allow maporder(order-free) floateq(exact sentinel)
//
// The reason inside the parentheses is mandatory; an empty reason and
// an unknown rule name are themselves reported. A directive that
// suppresses nothing is reported as unusedallow, so stale suppressions
// fail the build. The analyzer is stdlib-only (go/parser, go/ast,
// go/types with the source importer), keeping the module free of
// third-party dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	File string // path relative to the linted module root
	Line int
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Msg)
}

// ID returns the finding's stable diagnostic ID (for SARIF/JSON
// consumers that key on IDs rather than rule names).
func (f Finding) ID() string { return RuleID(f.Rule) }

// ruleInfo describes one rule for machine-readable output and
// directive validation.
type ruleInfo struct {
	// ID is the stable diagnostic identifier; it never changes once
	// assigned, even if the rule is renamed.
	ID string
	// Doc is a one-line description (SARIF shortDescription).
	Doc string
	// InTests reports whether the rule is enforced in _test.go files.
	InTests bool
}

// ruleTable registers every suppressible rule. The two meta
// diagnostics — "simlint" (malformed directives) and "unusedallow"
// (stale directives) — are not suppressible and live outside it.
var ruleTable = map[string]ruleInfo{
	"nowallclock":  {ID: "SIM001", Doc: "wall-clock read inside a simulation package", InTests: false},
	"noglobalrand": {ID: "SIM002", Doc: "math/rand import outside eventsim/rng.go", InTests: true},
	"maporder":     {ID: "SIM003", Doc: "range over map in a simulation package", InTests: false},
	"floateq":      {ID: "SIM004", Doc: "floating-point ==/!= in a simulation package", InTests: false},
	"unitliteral":  {ID: "SIM005", Doc: "untyped literal passed as a units type", InTests: false},
	"packetown":    {ID: "SIM006", Doc: "packet pool-ownership violation", InTests: true},
	"handlelife":   {ID: "SIM007", Doc: "event-handle lifetime violation", InTests: true},
	"dimcheck":     {ID: "SIM008", Doc: "cross-unit conversion or mixed-unit arithmetic", InTests: false},
	"sharedstate":  {ID: "SIM009", Doc: "shared mutable state unsafe for sharding", InTests: true},
}

// metaIDs are the IDs of the non-suppressible meta diagnostics.
var metaIDs = map[string]string{
	"simlint":     "SIM000",
	"unusedallow": "SIM010",
}

// RuleID returns the stable diagnostic ID for a rule name, or "SIM999"
// for an unknown rule (never emitted by this package).
func RuleID(rule string) string {
	if r, ok := ruleTable[rule]; ok {
		return r.ID
	}
	if id, ok := metaIDs[rule]; ok {
		return id
	}
	return "SIM999"
}

// RuleDoc returns the one-line description of a rule, or "".
func RuleDoc(rule string) string {
	if r, ok := ruleTable[rule]; ok {
		return r.Doc
	}
	switch rule {
	case "simlint":
		return "malformed simlint:allow directive"
	case "unusedallow":
		return "simlint:allow directive that suppresses nothing"
	}
	return ""
}

// Rules returns every diagnostic name this package can emit, sorted.
func Rules() []string {
	out := make([]string, 0, len(ruleTable)+len(metaIDs))
	for r := range ruleTable {
		out = append(out, r)
	}
	for r := range metaIDs {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// enforcedInTests reports whether findings of the rule are produced in
// _test.go files.
func enforcedInTests(rule string) bool { return ruleTable[rule].InTests }

// simPackages names the directories under internal/ whose code must be
// deterministic: everything that runs inside simulations, plus the
// run-control layer (sim), the report renderer and the serve layer,
// which route their one legitimate wall-clock need through the
// sim.Clock seam (clock.go). Everything else (internal/experiments,
// cmd/, examples/) is harness: it may read the wall clock, but still
// may not use math/rand.
var simPackages = map[string]bool{
	"eventsim": true, "netem": true, "transport": true, "core": true,
	"lb": true, "model": true, "workload": true, "topology": true,
	"trace": true, "stats": true, "units": true, "faults": true,
	"spec": true, "sim": true, "report": true, "serve": true,
}

// isSimPackage reports whether the import path denotes simulation code:
// an internal package whose name is in the simPackages set.
func isSimPackage(importPath string) bool {
	segs := strings.Split(importPath, "/")
	if len(segs) < 2 {
		return false
	}
	return segs[len(segs)-2] == "internal" && simPackages[segs[len(segs)-1]]
}

// allowRe locates the start of one suppression directive; the
// rule(reason) groups that follow are parsed by allowGroupRe so a
// single directive can carry several rules. A directive must start
// its comment (`//simlint:allow ...`), which keeps doc-comment
// examples of the syntax — indented or mid-sentence — from being
// parsed as real (and then stale) suppressions.
var allowRe = regexp.MustCompile(`^//simlint:allow\s+`)

// allowGroupRe matches one rule(reason) group. Rule names are
// lowercase identifiers; the reason may not contain a closing
// parenthesis.
var allowGroupRe = regexp.MustCompile(`^([a-z]+)\(([^)]*)\)\s*`)

// directive is one parsed rule(reason) suppression group. used flips
// when the directive suppresses a finding; directives that never fire
// are themselves reported (unusedallow), so suppressions cannot go
// stale silently.
type directive struct {
	file string
	line int // line the directive text is on
	rule string
	used bool
}

// linter carries the state of one Run.
type linter struct {
	root     string
	findings []Finding
	// allowed maps file -> line -> rule -> the directive in effect on
	// that line.
	allowed    map[string]map[int]map[string]*directive
	directives []*directive
}

// Run lints the Go module rooted at root and returns all findings,
// sorted by file, line and rule. A nil slice means the module is clean.
func Run(root string) ([]Finding, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := loadModule(absRoot)
	if err != nil {
		return nil, err
	}
	l := &linter{root: absRoot, allowed: make(map[string]map[int]map[string]*directive)}
	for _, p := range pkgs {
		for _, f := range p.files {
			l.collectAllows(f)
		}
	}
	for _, p := range pkgs {
		l.checkPackage(p)
	}
	for _, d := range l.directives {
		if !d.used {
			l.findings = append(l.findings, Finding{
				File: d.file, Line: d.line, Rule: "unusedallow",
				Msg: fmt.Sprintf("suppression for %q matches no finding; delete the stale directive", d.rule),
			})
		}
	}
	sort.Slice(l.findings, func(i, j int) bool {
		a, b := l.findings[i], l.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return l.findings, nil
}

// relFile converts a token position's filename to a root-relative path.
func (l *linter) relFile(pos token.Position) string {
	rel, err := filepath.Rel(l.root, pos.Filename)
	if err != nil {
		return pos.Filename
	}
	return filepath.ToSlash(rel)
}

// collectAllows records every suppression directive in the file. A
// directive covers its own line (end-of-line comment) and the next line
// (comment above the statement). One directive may carry several
// rule(reason) groups; unknown rule names and empty reasons are
// reported rather than silently suppressing nothing.
func (l *linter) collectAllows(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, loc := range allowRe.FindAllStringIndex(c.Text, -1) {
				rest := c.Text[loc[1]:]
				pos := sharedFset.Position(c.Pos())
				file := l.relFile(pos)
				groups := 0
				for {
					m := allowGroupRe.FindStringSubmatch(rest)
					if m == nil {
						break
					}
					rest = rest[len(m[0]):]
					groups++
					rule, reason := m[1], strings.TrimSpace(m[2])
					if _, known := ruleTable[rule]; !known {
						l.report(pos, "simlint", fmt.Sprintf("allow directive names unknown rule %q (known: %s)", rule, strings.Join(Rules(), ", ")))
						continue
					}
					if reason == "" {
						l.report(pos, "simlint", fmt.Sprintf("allow directive for %q needs a non-empty reason", rule))
						continue
					}
					d := &directive{file: file, line: pos.Line, rule: rule}
					l.directives = append(l.directives, d)
					if l.allowed[file] == nil {
						l.allowed[file] = make(map[int]map[string]*directive)
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						if l.allowed[file][line] == nil {
							l.allowed[file][line] = make(map[string]*directive)
						}
						l.allowed[file][line][rule] = d
					}
				}
				if groups == 0 {
					l.report(pos, "simlint", "malformed allow directive: expected one or more rule(reason) groups after simlint:allow")
				}
			}
		}
	}
}

// report adds a finding unless an allow directive suppresses it. The
// meta diagnostics ("simlint", "unusedallow") are not suppressible.
func (l *linter) report(pos token.Position, rule, msg string) {
	file := l.relFile(pos)
	if _, suppressible := ruleTable[rule]; suppressible {
		if d := l.allowed[file][pos.Line][rule]; d != nil {
			d.used = true
			return
		}
	}
	l.findings = append(l.findings, Finding{File: file, Line: pos.Line, Rule: rule, Msg: msg})
}
