package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// wallClockFuncs are the time-package functions that read or depend on
// the wall clock. time.Duration arithmetic and constants stay legal.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Sleep": true}

// checkPackage runs every analyzer over one package. Test packages
// (p.test) only run the rules whose InTests flag is set: wall-clock,
// map order, float equality and unit handling are legitimate in test
// harnesses, while ownership, handle-lifetime, global-rand and
// shared-state bugs in tests hide real races and leaks.
func (l *linter) checkPackage(p *pkg) {
	sim := isSimPackage(strings.TrimSuffix(p.path, "_test"))
	on := func(rule string) bool { return !p.test || enforcedInTests(rule) }
	for _, f := range p.files {
		if on("noglobalrand") {
			l.checkImports(p, f)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sim && on("nowallclock") {
					l.checkWallClock(p, n)
				}
			case *ast.RangeStmt:
				if sim && on("maporder") {
					l.checkMapOrder(p, n)
				}
			case *ast.BinaryExpr:
				if sim && on("floateq") {
					l.checkFloatEq(p, n)
				}
			case *ast.CallExpr:
				if sim && on("unitliteral") {
					l.checkUnitLiteral(p, n)
				}
			}
			return true
		})
		if on("packetown") {
			l.checkPacketOwn(p, f)
		}
		if on("handlelife") {
			l.checkHandleLife(p, f)
		}
		if sim && on("dimcheck") && !strings.HasSuffix(p.path, "/units") {
			l.checkDimensions(p, f)
		}
		if on("sharedstate") {
			l.checkSharedState(p, f, sim)
		}
	}
}

// checkImports enforces noglobalrand: math/rand and math/rand/v2 are
// banned module-wide — harness included — except in eventsim/rng.go,
// the one file allowed to mention them (its doc comment explains why
// the simulator rolls its own generator). Stochastic code must take an
// explicitly seeded *eventsim.RNG instead.
func (l *linter) checkImports(p *pkg, f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		pos := sharedFset.Position(imp.Pos())
		if filepath.Base(pos.Filename) == "rng.go" && strings.HasSuffix(p.path, "/eventsim") {
			continue
		}
		l.report(pos, "noglobalrand",
			fmt.Sprintf("import of %s is forbidden (only eventsim/rng.go may); take an explicitly seeded *eventsim.RNG instead", path))
	}
}

// checkWallClock enforces nowallclock: any use (call or value) of
// time.Now, time.Since or time.Sleep inside a simulation package.
func (l *linter) checkWallClock(p *pkg, sel *ast.SelectorExpr) {
	if !wallClockFuncs[sel.Sel.Name] {
		return
	}
	fn, ok := p.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	l.report(sharedFset.Position(sel.Pos()), "nowallclock",
		fmt.Sprintf("time.%s reads the wall clock; simulation code must use the simulated clock (eventsim.Sim.Now / timers)", sel.Sel.Name))
}

// checkMapOrder enforces maporder: for-range over a map type in a
// simulation package. Go randomizes map iteration order on every
// iteration, so any such loop is a nondeterminism hazard unless the
// body is provably order-free — which the author must assert with an
// allow annotation, or avoid by iterating sorted keys.
func (l *linter) checkMapOrder(p *pkg, rs *ast.RangeStmt) {
	t := p.info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	l.report(sharedFset.Position(rs.Pos()), "maporder",
		fmt.Sprintf("range over map %s iterates in randomized order; iterate sorted keys or annotate //simlint:allow maporder(reason)", t))
}

// checkFloatEq enforces floateq: ==/!= where both operands are
// floating-point. Exact float equality is almost always a latent bug
// (EWMA updates, model solvers); the rare intentional exact check
// (division-by-zero guards, sentinel values) must be annotated.
func (l *linter) checkFloatEq(p *pkg, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !isFloat(p.info.TypeOf(be.X)) || !isFloat(p.info.TypeOf(be.Y)) {
		return
	}
	l.report(sharedFset.Position(be.Pos()), "floateq",
		fmt.Sprintf("floating-point %s comparison; compare with an epsilon or restructure (annotate //simlint:allow floateq(reason) if exactness is intended)", be.Op))
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkUnitLiteral enforces unitliteral: an untyped non-zero numeric
// literal passed directly to a parameter typed units.Time,
// units.Bandwidth or units.Bytes. Such a literal silently acquires the
// unit of the parameter — `After(500, ...)` is 500 nanoseconds, almost
// never what was meant — so values must be built from the named
// constants (500*units.Microsecond, 64*units.KiB, ...). Explicit
// conversions like units.Time(x) are deliberate and stay legal.
func (l *linter) checkUnitLiteral(p *pkg, call *ast.CallExpr) {
	tv, ok := p.info.Types[call.Fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		lit := numericLiteral(arg)
		if lit == nil {
			continue
		}
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		name, ok := unitTypeName(pt)
		if !ok {
			continue
		}
		if v := p.info.Types[lit].Value; v != nil && constant.Sign(v) == 0 {
			continue // zero is unit-free
		}
		l.report(sharedFset.Position(arg.Pos()), "unitliteral",
			fmt.Sprintf("untyped literal %s passed as %s; build the value from named constants (e.g. 10*units.Microsecond, 64*units.KiB)", lit.Value, name))
	}
}

// numericLiteral unwraps parentheses and unary +/- and returns the
// numeric basic literal underneath, or nil.
func numericLiteral(e ast.Expr) *ast.BasicLit {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.SUB && x.Op != token.ADD {
				return nil
			}
			e = x.X
		case *ast.BasicLit:
			if x.Kind == token.INT || x.Kind == token.FLOAT {
				return x
			}
			return nil
		default:
			return nil
		}
	}
}

// paramType returns the type of parameter i of sig, accounting for
// variadics called without an explicit ellipsis.
func paramType(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 && !hasEllipsis {
		return sig.Params().At(n - 1).Type().(*types.Slice).Elem()
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// unitTypeName reports whether t is one of the guarded unit types and
// returns its display name.
func unitTypeName(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "units" {
		return "", false
	}
	switch obj.Name() {
	case "Time", "Bandwidth", "Bytes":
		return "units." + obj.Name(), true
	}
	return "", false
}
