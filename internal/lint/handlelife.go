package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// handlelife enforces the eventsim.Event handle discipline (see
// internal/eventsim/eventsim.go): handles are generation-counted
// values, so the engine never crashes on a stale one — it silently
// does nothing, which is exactly why losing track of the live handle
// is a latent bug instead of a loud one. Three shapes are flagged:
//
//  1. A method call on (or Cancel of) a handle variable that is never
//     assigned: the zero handle matches no event, so the call is a
//     guaranteed no-op and the author almost certainly forgot to
//     store a schedule result.
//  2. A schedule call (any call returning eventsim.Event) whose result
//     is discarded inside a method of a type that tracks a handle
//     field: the field now holds a stale handle while a new event is
//     pending, so a later Cancel through the field cannot reach it.
//  3. A Cancel on a local (non-field) handle with the result ignored:
//     Cancel reports whether the event was still pending — the
//     generation-mismatch check. Field-held timers may cancel
//     unconditionally (the documented idiom); a local handle that
//     ignores the result is usually a leaked assumption that the
//     event had not fired yet.
func (l *linter) checkHandleLife(p *pkg, f *ast.File) {
	hl := &handleLife{l: l, p: p}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		hl.checkZeroHandles(fd.Body)
		hl.checkDiscardedSchedules(fd)
		hl.checkIgnoredCancels(fd.Body)
	}
}

type handleLife struct {
	l *linter
	p *pkg
}

func (hl *handleLife) report(pos token.Pos, msg string) {
	hl.l.report(sharedFset.Position(pos), "handlelife", msg)
}

// isEventType reports whether t is eventsim.Event (the eventsim.Time
// alias resolves to units.Time, so only the handle type matches).
func isEventType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Name() == "eventsim"
}

// isSimCancel reports whether the call is eventsim.Sim.Cancel.
func (hl *handleLife) isSimCancel(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	fn, ok := hl.p.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Cancel" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Sim" && obj.Pkg() != nil && obj.Pkg().Name() == "eventsim"
}

// checkZeroHandles flags operations on handle variables that are
// declared but never assigned: two passes, first collecting
// assignments (flow-insensitively, so a later assignment anywhere in
// the function clears the variable), then reporting uses.
func (hl *handleLife) checkZeroHandles(body *ast.BlockStmt) {
	zero := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			for _, name := range vs.Names {
				if v, ok := hl.p.info.Defs[name].(*types.Var); ok && isEventType(v.Type()) {
					zero[v] = true
				}
			}
		}
		return true
	})
	if len(zero) == 0 {
		return
	}
	clear := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := hl.p.info.Uses[id].(*types.Var); ok {
				delete(zero, v)
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lh := range x.Lhs {
				clear(lh)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				clear(x.X) // address taken: may be written through
			}
		case *ast.RangeStmt:
			clear(x.Key)
			clear(x.Value)
		}
		return true
	})
	if len(zero) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if hl.isSimCancel(call) {
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if v, ok := hl.p.info.Uses[id].(*types.Var); ok && zero[v] {
					hl.report(id.Pos(), fmt.Sprintf("handle %s is never assigned; Cancel on the zero Event handle is a guaranteed no-op (store a schedule result in it first)", v.Name()))
				}
			}
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := hl.p.info.Uses[id].(*types.Var); ok && zero[v] {
			hl.report(id.Pos(), fmt.Sprintf("handle %s is never assigned; %s on the zero Event handle always returns the zero answer (store a schedule result in it first)", v.Name(), sel.Sel.Name))
		}
		return true
	})
}

// eventHandleField returns the name of the first eventsim.Event field
// of the method receiver's base struct type, or "".
func (hl *handleLife) eventHandleField(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := hl.p.info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if isEventType(st.Field(i).Type()) {
			return st.Field(i).Name()
		}
	}
	return ""
}

// checkDiscardedSchedules flags statement-position calls that return an
// Event inside methods of handle-tracking types.
func (hl *handleLife) checkDiscardedSchedules(fd *ast.FuncDecl) {
	field := hl.eventHandleField(fd)
	if field == "" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if t := hl.p.info.TypeOf(call); t != nil && isEventType(t) {
			hl.report(call.Pos(), fmt.Sprintf("schedule result discarded while the receiver tracks handle field %q; overwrite the field so the stale handle cannot outlive the event", field))
		}
		return true
	})
}

// checkIgnoredCancels flags statement-position Sim.Cancel calls on
// local handles: the bool result is the generation-mismatch check.
func (hl *handleLife) checkIgnoredCancels(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || !hl.isSimCancel(call) {
			return true
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true // field handles (x.ev) may cancel unconditionally
		}
		v, ok := hl.p.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		hl.report(call.Pos(), fmt.Sprintf("Cancel result ignored for local handle %s; check the returned generation-mismatch bool (or hold the handle in a field, where unconditional cancel is the idiom)", v.Name()))
		return true
	})
}
