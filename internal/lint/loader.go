package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// pkg is one loaded-and-type-checked package of the module under lint.
//
// Test files are loaded as separate pkg values (test=true) so the
// per-rule test exemptions can apply: an in-package test pkg carries
// the base files in allFiles (the type checker needs them) but only
// the _test.go files in files (what the analyzers visit), and an
// external _test package carries just its own files in both.
type pkg struct {
	path     string      // import path, e.g. "tlb/internal/core"
	dir      string      // absolute directory
	files    []*ast.File // files the analyzers run over
	allFiles []*ast.File // files the type checker saw (files plus, for in-package tests, the base files)
	info     *types.Info
	test     bool // _test.go variant: per-rule exemptions apply
}

// The file set and stdlib importer are shared across Run calls so that
// repeated runs in one process (the analyzer tests re-lint the repo
// many times) type-check the standard library only once. FileSets are
// append-only, and the source importer memoizes checked packages.
var (
	sharedFset  = token.NewFileSet()
	stdImporter = importer.ForCompiler(sharedFset, "source", nil)
)

// moduleImporter resolves module-internal import paths from the set of
// already-checked packages and everything else (the standard library)
// through the shared source importer. The module is kept dependency-free
// on purpose, so "not module, not stdlib" cannot occur.
type moduleImporter struct {
	modpath string
	pkgs    map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	if path == m.modpath || strings.HasPrefix(path, m.modpath+"/") {
		return nil, fmt.Errorf("module package %s imported before it was loaded (import cycle?)", path)
	}
	return stdImporter.Import(path)
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// matchFile reports whether the build system would include the file on
// the host platform: files excluded by //go:build (or // +build)
// constraints, or by _GOOS/_GOARCH filename suffixes, are invisible to
// the compiler and must be invisible to the linter too — they may not
// even type-check against the loaded platform.
func matchFile(dir, name string) (bool, error) {
	ok, err := build.Default.MatchFile(dir, name)
	if err != nil {
		return false, fmt.Errorf("lint: build constraints of %s: %w", filepath.Join(dir, name), err)
	}
	return ok, nil
}

// loadModule parses and type-checks every package under root, then
// loads each directory's _test.go files in a second pass: in-package
// test files are type-checked together with their base files, external
// _test packages on their own. Fixture modules under testdata stay
// excluded — they are other modules entirely.
func loadModule(root string) ([]*pkg, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}

	// Discover package directories (any dir with a buildable .go file,
	// test-only directories included).
	var dirs []string
	err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != absRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if hasGo {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// Parse.
	byPath := make(map[string]*pkg, len(dirs))
	testFiles := make(map[string][]*ast.File, len(dirs)) // ipath -> parsed _test.go files
	imports := make(map[string][]string, len(dirs))      // module-internal deps
	var order []string                                   // ipaths with test files, in dir order
	for _, dir := range dirs {
		rel, err := filepath.Rel(absRoot, dir)
		if err != nil {
			return nil, err
		}
		ipath := modpath
		if rel != "." {
			ipath = modpath + "/" + filepath.ToSlash(rel)
		}
		p := &pkg{path: ipath, dir: dir}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		sawTests := false
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") {
				continue
			}
			if ok, err := matchFile(dir, name); err != nil {
				return nil, err
			} else if !ok {
				continue
			}
			f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			if strings.HasSuffix(name, "_test.go") {
				testFiles[ipath] = append(testFiles[ipath], f)
				sawTests = true
				continue
			}
			p.files = append(p.files, f)
			for _, imp := range f.Imports {
				dep := strings.Trim(imp.Path.Value, `"`)
				if dep == modpath || strings.HasPrefix(dep, modpath+"/") {
					imports[ipath] = append(imports[ipath], dep)
				}
			}
		}
		if len(p.files) > 0 {
			p.allFiles = p.files
			byPath[ipath] = p
		}
		if sawTests {
			order = append(order, ipath)
		}
	}

	// Topological order over module-internal imports.
	topo, err := topoSort(byPath, imports)
	if err != nil {
		return nil, err
	}

	// Type-check in dependency order.
	imp := &moduleImporter{modpath: modpath, pkgs: make(map[string]*types.Package)}
	var out []*pkg
	for _, ipath := range topo {
		p := byPath[ipath]
		p.info = newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(ipath, sharedFset, p.files, p.info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", ipath, err)
		}
		imp.pkgs[ipath] = tpkg
		out = append(out, p)
	}

	// Second pass: test packages. Every non-test package is loaded by
	// now, so test files may import anything in the module.
	for _, ipath := range order {
		base := byPath[ipath]
		var inPkg, external []*ast.File
		baseName := ""
		if base != nil && len(base.files) > 0 {
			baseName = base.files[0].Name.Name
		}
		for _, f := range testFiles[ipath] {
			if baseName != "" && f.Name.Name == baseName+"_test" {
				external = append(external, f)
			} else {
				inPkg = append(inPkg, f)
			}
		}
		dir := filepath.Dir(sharedFset.Position(testFiles[ipath][0].Pos()).Filename)
		if len(inPkg) > 0 {
			tp := &pkg{path: ipath, dir: dir, files: inPkg, test: true}
			tp.allFiles = inPkg
			if base != nil {
				tp.allFiles = append(append([]*ast.File(nil), base.files...), inPkg...)
			}
			tp.info = newInfo()
			conf := types.Config{Importer: imp}
			if _, err := conf.Check(ipath, sharedFset, tp.allFiles, tp.info); err != nil {
				return nil, fmt.Errorf("lint: type-checking %s tests: %w", ipath, err)
			}
			out = append(out, tp)
		}
		if len(external) > 0 {
			tp := &pkg{path: ipath + "_test", dir: dir, files: external, allFiles: external, test: true}
			tp.info = newInfo()
			conf := types.Config{Importer: imp}
			if _, err := conf.Check(ipath+"_test", sharedFset, external, tp.info); err != nil {
				return nil, fmt.Errorf("lint: type-checking %s: %w", ipath+"_test", err)
			}
			out = append(out, tp)
		}
	}
	return out, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}

// topoSort orders package paths so every package follows its
// module-internal dependencies.
func topoSort(pkgs map[string]*pkg, deps map[string][]string) ([]string, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p)
		}
		state[p] = visiting
		ds := append([]string(nil), deps[p]...)
		sort.Strings(ds)
		for _, d := range ds {
			if _, ok := pkgs[d]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
