package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// pkg is one loaded-and-type-checked package of the module under lint.
type pkg struct {
	path  string // import path, e.g. "tlb/internal/core"
	dir   string // absolute directory
	files []*ast.File
	info  *types.Info
}

// The file set and stdlib importer are shared across Run calls so that
// repeated runs in one process (the analyzer tests re-lint the repo
// many times) type-check the standard library only once. FileSets are
// append-only, and the source importer memoizes checked packages.
var (
	sharedFset  = token.NewFileSet()
	stdImporter = importer.ForCompiler(sharedFset, "source", nil)
)

// moduleImporter resolves module-internal import paths from the set of
// already-checked packages and everything else (the standard library)
// through the shared source importer. The module is kept dependency-free
// on purpose, so "not module, not stdlib" cannot occur.
type moduleImporter struct {
	modpath string
	pkgs    map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	if path == m.modpath || strings.HasPrefix(path, m.modpath+"/") {
		return nil, fmt.Errorf("module package %s imported before it was loaded (import cycle?)", path)
	}
	return stdImporter.Import(path)
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// loadModule parses and type-checks every non-test package under root.
// Test files are excluded: the determinism contract governs the code
// that runs inside simulations, and fixtures under testdata are other
// modules entirely.
func loadModule(root string) ([]*pkg, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}

	// Discover package directories.
	var dirs []string
	err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != absRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if hasGo {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// Parse.
	byPath := make(map[string]*pkg, len(dirs))
	imports := make(map[string][]string, len(dirs)) // module-internal deps
	for _, dir := range dirs {
		rel, err := filepath.Rel(absRoot, dir)
		if err != nil {
			return nil, err
		}
		ipath := modpath
		if rel != "." {
			ipath = modpath + "/" + filepath.ToSlash(rel)
		}
		p := &pkg{path: ipath, dir: dir}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			p.files = append(p.files, f)
			for _, imp := range f.Imports {
				dep := strings.Trim(imp.Path.Value, `"`)
				if dep == modpath || strings.HasPrefix(dep, modpath+"/") {
					imports[ipath] = append(imports[ipath], dep)
				}
			}
		}
		if len(p.files) > 0 {
			byPath[ipath] = p
		}
	}

	// Topological order over module-internal imports.
	order, err := topoSort(byPath, imports)
	if err != nil {
		return nil, err
	}

	// Type-check in dependency order.
	imp := &moduleImporter{modpath: modpath, pkgs: make(map[string]*types.Package)}
	var out []*pkg
	for _, ipath := range order {
		p := byPath[ipath]
		p.info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(ipath, sharedFset, p.files, p.info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", ipath, err)
		}
		imp.pkgs[ipath] = tpkg
		out = append(out, p)
	}
	return out, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// topoSort orders package paths so every package follows its
// module-internal dependencies.
func topoSort(pkgs map[string]*pkg, deps map[string][]string) ([]string, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []string
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p)
		}
		state[p] = visiting
		ds := append([]string(nil), deps[p]...)
		sort.Strings(ds)
		for _, d := range ds {
			if _, ok := pkgs[d]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
