// Package experiments is harness code: package-level vars are allowed
// here, but goroutines and racy sweep closures are not.
package experiments

import "fixture/internal/sim"

var results []int // harness package: no finding

func rogueGoroutine(ch chan int) {
	go func() { ch <- 1 }() //WANT sharedstate
}

func racySweep(n int) int {
	total := 0
	sim.RunSweep(n, func(i int) {
		total += i //WANT sharedstate
	})
	return total
}

func racyAppend(n int) []int {
	var seen []int
	sim.RunSweep(n, func(i int) {
		seen = append(seen, i) //WANT sharedstate
	})
	return seen
}

func racyCounter(n int) int {
	count := 0
	sim.RunAll([]func(){func() {
		count++ //WANT sharedstate
	}})
	return count
}

func perSlotWrites(n int) []int {
	out := make([]int, n)
	sim.RunSweep(n, func(i int) {
		out[i] = i * i // disjoint per-index slots: the intended pattern
	})
	return out
}

func localStateInClosure(n int) {
	sim.RunSweep(n, func(i int) {
		acc := 0
		for j := 0; j < i; j++ {
			acc += j
		}
		_ = acc
	})
}
