// The sharded scenario runner is the second approved concurrency
// entry point (besides sweep.go): one goroutine per shard, lockstep
// epochs, values-only channels.
package sim

import "sync"

func RunSharded(shards int, epoch func(shard int)) {
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) { // legal: this file is the approved shard runner
			defer wg.Done()
			epoch(s)
		}(s)
	}
	wg.Wait()
}
