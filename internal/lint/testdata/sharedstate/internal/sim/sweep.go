// Package sim mirrors the real module's sweep runner: the one place
// allowed to start goroutines.
package sim

import "sync"

func RunSweep(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // legal: this file is the approved runner
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

func RunAll(fns []func()) {
	RunSweep(len(fns), func(i int) { fns[i]() })
}
