// Package serve mirrors the real module's run-submission server: the
// third approved concurrency entry point. Its per-run executor
// goroutine is legal in server.go only — sibling files stay flagged
// (see sse.go).
package serve

import "sync"

type Server struct {
	wg sync.WaitGroup
}

func (s *Server) Submit(run func()) {
	s.wg.Add(1)
	go func() { // legal: this file is the approved serve entry point
		defer s.wg.Done()
		run()
	}()
}

func (s *Server) Close() {
	s.wg.Wait()
}
