package serve

// Only server.go carries the serve exemption: a goroutine in any other
// file of the package is still a finding, so concurrency cannot creep
// beyond the audited entry point.

func stream(emit func()) {
	go emit() //WANT sharedstate
}
