package core

// constants are immutable: no finding.
const maxShards = 64

// state on a struct is per-shard by construction.
type shard struct {
	counter int
}

func (s *shard) bump() { s.counter++ }

//simlint:allow sharedstate(immutable lookup table; written only at init)
var names = []string{"a", "b"}

func name(i int) string { return names[i%len(names)] }
