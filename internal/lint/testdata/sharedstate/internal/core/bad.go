// Package core demonstrates the sharedstate rule: package-level
// mutable state in a simulation package breaks per-shard isolation.
package core

var counter int //WANT sharedstate

var cache = map[string]int{} //WANT sharedstate

var hi, lo int //WANT sharedstate sharedstate

func bump() {
	counter++
	cache["x"] = counter
	hi, lo = lo, hi
}
