// Package model demonstrates the dimcheck rule: the named unit types
// stop mixed-dimension math until an int64()/float64() cast strips the
// unit — the analyzer tracks the dimension through the strip.
package model

import "fixture/internal/units"

func directCrossWrap(t units.Time) units.Bytes {
	return units.Bytes(t) //WANT dimcheck
}

func smuggledThroughStrip(t units.Time) units.Bytes {
	raw := int64(t)
	return units.Bytes(raw) //WANT dimcheck
}

func smuggledThroughFloat(bw units.Bandwidth) units.Time {
	x := float64(bw)
	return units.Time(x) //WANT dimcheck
}

func mixedComparison(t units.Time, b units.Bytes) bool {
	return int64(t) > int64(b) //WANT dimcheck
}

func mixedDifference(t units.Time, b units.Bytes) int64 {
	return int64(t) - int64(b) //WANT dimcheck
}

func mixedThroughLocals(t units.Time, b units.Bytes) bool {
	elapsed := int64(t)
	size := int64(b)
	return elapsed == size //WANT dimcheck
}
