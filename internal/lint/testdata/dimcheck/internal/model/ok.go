package model

import "fixture/internal/units"

// serialization time = size / bandwidth: a cross-unit ratio is a new
// physical quantity and may be wrapped in its proper unit.
func serialize(b units.Bytes, bw units.Bandwidth) units.Time {
	return units.Time(int64(b) * 8 * int64(units.Second) / int64(bw))
}

// scalar scaling keeps the dimension.
func backoff(rto units.Time, attempt int) units.Time {
	scaled := rto
	for i := 0; i < attempt; i++ {
		scaled = 2 * scaled
	}
	return scaled
}

// like-unit ratio is a pure number and may scale another unit.
func proportional(part, whole units.Time, budget units.Bytes) units.Bytes {
	frac := float64(part) / float64(whole)
	return units.Bytes(frac * float64(budget))
}

// wrapping a dimensionless count is fine.
func fromCount(n int) units.Bytes {
	return units.Bytes(n)
}

// same-unit arithmetic, stripped or not, is fine.
func slack(deadline, now units.Time) int64 {
	return int64(deadline) - int64(now)
}

func annotatedReinterpret(t units.Time) units.Bytes {
	//simlint:allow dimcheck(wire format reinterprets the timestamp field as a byte count)
	return units.Bytes(t)
}
