// Package units mirrors the real module's unit types for the dimcheck
// fixtures. The analyzer skips this package itself: conversions inside
// the units layer are how the types are defined.
package units

type Time int64

type Bandwidth int64

type Bytes int64

const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Second      Time = 1000 * 1000 * Microsecond

	BitPerSecond Bandwidth = 1
	Gbps                   = 1000 * 1000 * 1000 * BitPerSecond

	Byte Bytes = 1
	KiB        = 1024 * Byte
)
