// Package netem mirrors the real module's packet pool for the
// packetown fixtures.
package netem

type Packet struct {
	Size int64
	Next *Packet
}

type PacketPool struct {
	free []*Packet // retention inside netem is the allowed owner set
}

func (p *PacketPool) Get() *Packet {
	if p == nil || len(p.free) == 0 {
		return &Packet{}
	}
	pkt := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return pkt
}

func (p *PacketPool) Put(pkt *Packet) {
	if p == nil {
		return
	}
	*pkt = Packet{}
	p.free = append(p.free, pkt)
}

// queue retains packets too: legal, netem is the owning layer.
type queue struct {
	entries []*Packet
}

func (q *queue) push(pkt *Packet) { q.entries = append(q.entries, pkt) }
