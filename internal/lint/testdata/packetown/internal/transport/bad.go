// Package transport demonstrates the packetown rule: a packet handed
// back with Put belongs to the pool, and nothing outside netem may
// retain one in a field.
package transport

import "fixture/internal/netem"

// stash retains a packet outside the owning layer.
type stash struct {
	pkt *netem.Packet //WANT packetown
}

// ring retains packets through a container type.
type ring struct {
	slots []*netem.Packet //WANT packetown
}

// snapshot holds a packet by value: still flagged by default — the
// copy is safe for the pool, but each one needs a reasoned directive
// (see handoff in ok.go) so value copies stay deliberate.
type snapshot struct {
	pkt netem.Packet //WANT packetown
}

func useAfterPut(pool *netem.PacketPool) int64 {
	p := pool.Get()
	pool.Put(p)
	return p.Size //WANT packetown
}

func storeAfterPut(pool *netem.PacketPool) {
	p := pool.Get()
	pool.Put(p)
	p.Size = 1 //WANT packetown
}

func insertAfterPut(pool *netem.PacketPool, sink []*netem.Packet) []*netem.Packet {
	p := pool.Get()
	pool.Put(p)
	return append(sink, p) //WANT packetown
}

func doublePut(pool *netem.PacketPool) {
	p := pool.Get()
	pool.Put(p)
	pool.Put(p) //WANT packetown
}

func releaseAndReturn(pool *netem.PacketPool) *netem.Packet {
	p := pool.Get()
	pool.Put(p)
	return p //WANT packetown
}

func putInFallthroughBranch(pool *netem.PacketPool, drop bool) int64 {
	p := pool.Get()
	if drop {
		pool.Put(p) // branch falls through, so p is dead below
	}
	return p.Size //WANT packetown
}

func closureReleases(pool *netem.PacketPool) {
	p := pool.Get()
	release := func() {
		pool.Put(p)
		p.Size = 2 //WANT packetown
	}
	release()
}
