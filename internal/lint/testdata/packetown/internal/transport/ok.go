package transport

import "fixture/internal/netem"

// handler processes packets without retaining them: copying out the
// fields it needs is the sanctioned pattern.
type handler struct {
	lastSize int64
}

func (h *handler) receive(pool *netem.PacketPool, p *netem.Packet) {
	h.lastSize = p.Size // copy first ...
	pool.Put(p)         // ... release last
}

func putThenReturnEnds(pool *netem.PacketPool, p *netem.Packet, done bool) int64 {
	if done {
		pool.Put(p)
		return 0 // branch cannot fall through: p stays live below
	}
	return p.Size
}

func reassignmentResurrects(pool *netem.PacketPool) int64 {
	p := pool.Get()
	pool.Put(p)
	p = pool.Get() // p names a fresh packet now
	n := p.Size
	pool.Put(p)
	return n
}

func loopBodyOwnsItsPacket(pool *netem.PacketPool, n int) {
	for i := 0; i < n; i++ {
		p := pool.Get()
		pool.Put(p)
	}
}

func annotatedIdentityCheck(pool *netem.PacketPool) bool {
	p := pool.Get()
	pool.Put(p)
	//simlint:allow packetown(identity comparison of the recycled pointer is the point of this probe)
	return pool.Get() == p
}

// handoff mirrors the sharded runner's boundary message: a whole-value
// packet copy, sanctioned with a reasoned directive because the
// pool-owned original is never referenced.
type handoff struct {
	//simlint:allow packetown(whole-value copy; the pool-owned original is released separately)
	pkt netem.Packet
}
