// Package experiments is harness code: the maporder rule does not
// apply outside simulation packages, so this file is clean.
package experiments

func Total(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
