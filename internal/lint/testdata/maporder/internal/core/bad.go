// Package core demonstrates the maporder rule in a simulation package.
package core

func SumValues(m map[int]int) int {
	s := 0
	for _, v := range m { //WANT maporder
		s += v
	}
	return s
}

// An allow directive with an empty reason does not suppress anything
// and is reported itself.
func Keys(m map[string]bool) []string {
	var out []string
	//simlint:allow maporder() //WANT simlint
	for k := range m { //WANT maporder
		out = append(out, k)
	}
	return out
}
