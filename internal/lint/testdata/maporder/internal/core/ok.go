package core

import "sort"

// Collect-then-sort with a justified annotation: no findings.
func SortedSum(m map[int]int) int {
	keys := make([]int, 0, len(m))
	//simlint:allow maporder(keys are collected and sorted before any use)
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	s := 0
	for _, k := range keys { // range over a slice is always fine
		s += m[k]
	}
	return s
}
