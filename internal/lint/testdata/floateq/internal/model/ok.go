package model

import "math"

// Epsilon comparison, integer equality and annotated exact checks are
// all clean.
func ConvergedEps(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func SameCount(a, b int) bool { return a == b }

func IsSentinel(x float64) bool {
	//simlint:allow floateq(0 is an exact config sentinel, never computed)
	return x == 0
}
