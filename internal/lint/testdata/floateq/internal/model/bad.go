// Package model demonstrates the floateq rule.
package model

func Converged(a, b float64) bool {
	return a == b //WANT floateq
}

func NotOne(x float32) bool {
	return x != 1.0 //WANT floateq
}
