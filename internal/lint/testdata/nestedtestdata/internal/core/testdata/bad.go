// This file lives under a nested testdata directory: it is another
// module's fixture, not part of the package above, and must be skipped.
package junk

import "time"

var shared int

func wallClock() int64 { return time.Now().UnixNano() }
