// Package core is clean; the testdata directory below it holds a
// fixture of its own that the loader must skip.
package core

func Clean() int { return 1 }
