// Package workload demonstrates the noglobalrand rule: math/rand in
// any file but eventsim/rng.go is an error, simulation or harness
// alike.
package workload

import (
	"math/rand"        //WANT noglobalrand
	v2 "math/rand/v2"  //WANT noglobalrand
)

func Draw() int { return rand.Int() + v2.Int() }
