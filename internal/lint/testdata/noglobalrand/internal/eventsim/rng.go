// Package eventsim owns the one file allowed to import math/rand: the
// custom generator's home, eventsim/rng.go. No findings expected here.
package eventsim

import "math/rand"

func Legacy(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
