// Harness code is not exempt from noglobalrand: reproducibility of
// experiment schedules depends on seeded streams everywhere.
package main

import "math/rand" //WANT noglobalrand

func main() { _ = rand.Int() }
