// Package core demonstrates the handlelife rule: zero handles, lost
// schedule results, and ignored Cancel outcomes.
package core

import "fixture/internal/eventsim"

func zeroHandleQueried(s *eventsim.Sim) bool {
	var h eventsim.Event
	return h.Scheduled() //WANT handlelife
}

func zeroHandleCancelled(s *eventsim.Sim) {
	var c eventsim.Event
	_ = s.Cancel(c) //WANT handlelife
}

// ticker tracks a handle field, so a discarded schedule result leaves
// the field stale while a new event is pending.
type ticker struct {
	ev eventsim.Event
}

func (t *ticker) arm(s *eventsim.Sim) {
	s.At(5, func() {}) //WANT handlelife
}

func (t *ticker) rearm(s *eventsim.Sim) {
	s.Cancel(t.ev)
	s.After(10, func() {}) //WANT handlelife
}

func cancelResultIgnored(s *eventsim.Sim) {
	h := s.At(5, func() {})
	s.Cancel(h) //WANT handlelife
}
