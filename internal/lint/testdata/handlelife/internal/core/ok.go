package core

import "fixture/internal/eventsim"

type timer struct {
	ev eventsim.Event
}

// field-held handles: overwrite on reschedule, cancel unconditionally.
func (t *timer) arm(s *eventsim.Sim) {
	s.Cancel(t.ev)
	t.ev = s.After(10, func() {})
}

func (t *timer) stop(s *eventsim.Sim) {
	s.Cancel(t.ev) // unconditional cancel through a field is the idiom
}

func assignedHandle(s *eventsim.Sim) bool {
	var h eventsim.Event
	h = s.At(5, func() {})
	return h.Scheduled()
}

func cancelResultChecked(s *eventsim.Sim) bool {
	h := s.At(5, func() {})
	return s.Cancel(h) // result used: fine
}

func cancelResultAssigned(s *eventsim.Sim) {
	h := s.At(5, func() {})
	if ok := s.Cancel(h); !ok {
		panic("expected pending")
	}
}

// fire-and-forget scheduling in a plain function is fine: there is no
// handle field to go stale.
func fireAndForget(s *eventsim.Sim) {
	s.At(5, func() {})
}

func annotatedProbe(s *eventsim.Sim) {
	h := s.At(5, func() {})
	//simlint:allow handlelife(probe fires regardless; the cancel outcome is irrelevant here)
	s.Cancel(h)
}
