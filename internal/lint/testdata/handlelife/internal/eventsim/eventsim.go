// Package eventsim mirrors the real module's generation-counted event
// handles for the handlelife fixtures.
package eventsim

type Event struct {
	id  int
	gen uint64
}

func (h Event) Scheduled() bool { return h.id != 0 }
func (h Event) At() int64       { return int64(h.id) }

type Sim struct {
	next int
}

func (s *Sim) At(t int64, fn func()) Event {
	s.next++
	return Event{id: s.next}
}

func (s *Sim) After(d int64, fn func()) Event { return s.At(d, fn) }

func (s *Sim) Cancel(h Event) bool { return h.id != 0 }
