// Package netem mirrors the real packet pool so the test-file pass has
// ownership semantics to check.
package netem

type Packet struct {
	Size int64
}

type PacketPool struct {
	free []*Packet
}

func (p *PacketPool) Get() *Packet {
	if p == nil || len(p.free) == 0 {
		return &Packet{}
	}
	pkt := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return pkt
}

func (p *PacketPool) Put(pkt *Packet) {
	if p == nil {
		return
	}
	*pkt = Packet{}
	p.free = append(p.free, pkt)
}
