// External test package: checked as its own package against the same
// per-rule exemptions.
package netem_test

import "fixture/internal/netem"

func doublePutInExternalTest(pool *netem.PacketPool) {
	p := pool.Get()
	pool.Put(p)
	pool.Put(p) //WANT packetown
}
