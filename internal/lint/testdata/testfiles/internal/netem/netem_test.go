// In-package test file: wall-clock reads, map ranges and float
// equality are exempt here, but global rand, ownership and shared
// state stay enforced.
package netem

import (
	"math/rand" //WANT noglobalrand
	"time"
)

var testFixture = PacketPool{} //WANT sharedstate

func wallClockIsFineInTests() int64 {
	return time.Now().UnixNano()
}

func mapOrderIsFineInTests(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func floatEqIsFineInTests(a, b float64) bool {
	return a == b
}

func seededQuickCheck() int {
	return rand.New(rand.NewSource(1)).Intn(10)
}

func useAfterPutStillChecked(pool *PacketPool) int64 {
	p := pool.Get()
	pool.Put(p)
	return p.Size //WANT packetown
}
