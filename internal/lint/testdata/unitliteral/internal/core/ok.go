package core

import "fixture/internal/units"

func OK(n int) {
	wait(0)                        // zero is unit-free
	wait(500 * units.Microsecond)  // built from named constants
	wait(units.Time(500))          // explicit conversion is deliberate
	buffer(64 * units.KiB)
	buffer(units.Bytes(n))
	reserve(units.Gbps)
	//simlint:allow unitliteral(calibration constant measured in raw nanoseconds)
	wait(123)
}
