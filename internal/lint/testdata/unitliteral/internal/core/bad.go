// Package core demonstrates the unitliteral rule: untyped numeric
// literals silently acquire the unit of the parameter.
package core

import "fixture/internal/units"

func wait(d units.Time)          {}
func reserve(b units.Bandwidth)  {}
func buffer(n units.Bytes)       {}
func timers(ds ...units.Time)    {}

func Bad() {
	wait(500)          //WANT unitliteral
	reserve(1000000)   //WANT unitliteral
	buffer(-64)        //WANT unitliteral
	timers(1, 2)       //WANT unitliteral unitliteral
}
