// Package core exercises the directive parser: multi-rule groups,
// unknown rules, empty reasons, malformed directives and stale
// suppressions.
package core

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// one directive, two rules, both load-bearing: no findings at all.
func countSentinels(m map[string]float64, sentinel float64) int {
	n := 0
	//simlint:allow maporder(order-free: the loop only counts matches) floateq(sentinel is copied verbatim, exact match intended)
	for _, v := range m { n += boolToInt(v == sentinel) }
	return n
}

//simlint:allow nosuchrule(the rule name is wrong) //WANT simlint

//simlint:allow maporder() //WANT simlint

//simlint:allow this is not a rule group //WANT simlint

//simlint:allow maporder(stale: the loop below was rewritten to sorted keys long ago) //WANT unusedallow

func sorted(keys []string) []string { return keys }
