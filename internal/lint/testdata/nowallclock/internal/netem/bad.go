// Package netem is a stand-in simulation package: wall-clock reads
// here must be flagged.
package netem

import "time"

func Elapsed(start time.Time) time.Duration {
	time.Sleep(time.Millisecond) //WANT nowallclock
	return time.Since(start)     //WANT nowallclock
}

func NowNano() int64 {
	return time.Now().UnixNano() //WANT nowallclock
}
