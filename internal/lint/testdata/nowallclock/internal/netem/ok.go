package netem

import "time"

// Duration arithmetic and constants do not read the wall clock and
// stay legal even inside simulation packages.
func Budget() time.Duration { return 3 * time.Millisecond }
