// Package experiments is harness code: wall-clock reads are allowed
// here (the figure runners time real executions), so this file must
// produce no findings.
package experiments

import "time"

func Stamp() time.Time { return time.Now() }

func Took(start time.Time) time.Duration { return time.Since(start) }
