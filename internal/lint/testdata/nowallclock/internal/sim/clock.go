// Package sim is deterministic run-control code: wall-clock reads are
// findings unless they sit on the one reasoned Clock seam, mirroring
// the real module's clock.go. The annotated lines must produce no
// findings; the bare read below must.
package sim

import "time"

func WallClock() func() time.Duration {
	//simlint:allow nowallclock(the run-control layer's single wall-clock seam)
	start := time.Now()
	return func() time.Duration {
		//simlint:allow nowallclock(same seam: distance from the epoch captured above)
		return time.Since(start)
	}
}

func Bare() time.Time {
	return time.Now() //WANT nowallclock
}
