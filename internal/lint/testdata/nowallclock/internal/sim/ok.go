// Package sim is harness code: wall-clock reads are allowed here (the
// sweep runner times real executions), so this file must produce no
// findings.
package sim

import "time"

func Stamp() time.Time { return time.Now() }

func Took(start time.Time) time.Duration { return time.Since(start) }
