// Command fixture has no simulation packages at all: the loader must
// cope with a module whose only package is harness code.
package main

import "time"

func main() {
	_ = time.Now() // harness code may read the wall clock
}
