// Excluded by the _plan9 filename suffix on every platform the tests
// run on: the violation below must not be reported.
package netem

import "time"

func plan9Clock() int64 { return time.Now().UnixNano() }
