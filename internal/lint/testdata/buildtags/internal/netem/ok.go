// Package netem is clean; its sibling files are excluded by build
// constraints and must stay invisible to the linter.
package netem

func Clean() int { return 1 }
