//go:build fixturetag

// Excluded by a build tag the host never sets: the violations below
// must not be reported.
package netem

import "time"

var hidden int

func wallClock() int64 { return time.Now().UnixNano() }
