package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// dimcheck performs dimensional analysis over the named unit types
// units.Time, units.Bandwidth and units.Bytes. The type system already
// rejects `t + b` for distinct named types — but only until someone
// writes int64(t), at which point the dimension is gone and any
// re-wrap type-checks. The analyzer closes that hole by tracking the
// physical dimension of values through explicit int64()/float64()
// strips and local assignments, and reports
//
//   - conversions that re-wrap a value of one dimension in a different
//     unit type (units.Bytes(int64(someTime))), and
//   - +, -, %, and comparison operators whose operands carry two
//     different known dimensions.
//
// Multiplication and division across dimensions are deliberately legal
// and yield an unknown dimension: Bytes/Bandwidth is how a Time is
// born, Bandwidth*Time is how a Bytes is — the physical relations are
// the intended escape hatch, so a cross-unit value built by ratio can
// be wrapped in its proper unit without complaint.
type dim int

const (
	dimUnknown dim = iota // untracked: parameters, struct fields, mixed products
	dimNone               // known dimensionless: literals, scalar constants
	dimTime
	dimBandwidth
	dimBytes
)

func (d dim) String() string {
	switch d {
	case dimTime:
		return "units.Time"
	case dimBandwidth:
		return "units.Bandwidth"
	case dimBytes:
		return "units.Bytes"
	}
	return "dimensionless"
}

func (d dim) isUnit() bool { return d >= dimTime }

// typeDim maps a type to its dimension: the three units types carry
// one, every other type carries none that we can know statically.
func typeDim(t types.Type) dim {
	named, ok := t.(*types.Named)
	if !ok {
		return dimUnknown
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "units" {
		return dimUnknown
	}
	switch obj.Name() {
	case "Time":
		return dimTime
	case "Bandwidth":
		return dimBandwidth
	case "Bytes":
		return dimBytes
	}
	return dimUnknown
}

// checkDimensions runs the dimensional analysis over one file. The
// traversal is pre-order and in source order, so assignments seen
// earlier feed the dimension environment used by later expressions —
// a deliberately flow-insensitive may-analysis that is cheap and, for
// straight-line unit math, exact.
func (l *linter) checkDimensions(p *pkg, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		dc := &dimChecker{l: l, p: p, env: map[*types.Var]dim{}}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				dc.assign(x)
			case *ast.BinaryExpr:
				dc.checkBinary(x)
			case *ast.CallExpr:
				dc.checkConversion(x)
			}
			return true
		})
	}
}

type dimChecker struct {
	l   *linter
	p   *pkg
	env map[*types.Var]dim
}

// assign records the dimension flowing into each plainly-assigned
// local, so a stripped unit (`raw := int64(t)`) keeps its dimension.
func (dc *dimChecker) assign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value call: dimensions unknown
	}
	for i, lh := range as.Lhs {
		id, ok := lh.(*ast.Ident)
		if !ok {
			continue
		}
		var v *types.Var
		if d, ok := dc.p.info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := dc.p.info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil {
			continue
		}
		if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
			dc.env[v] = dc.eval(as.Rhs[i])
		} else {
			// compound (+=, *=, ...): keep whatever we knew; the binary
			// check below sees the operator separately.
			if _, tracked := dc.env[v]; !tracked {
				dc.env[v] = dimUnknown
			}
		}
	}
}

// eval computes the dimension of an expression without reporting;
// reporting happens once per node in the Inspect walk.
func (dc *dimChecker) eval(e ast.Expr) dim {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return dc.eval(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			return dc.eval(x.X)
		}
	case *ast.BasicLit:
		return dimNone
	case *ast.Ident:
		if v, ok := dc.p.info.Uses[x].(*types.Var); ok {
			if d, tracked := dc.env[v]; tracked {
				return d
			}
			return identDim(dc.p, x)
		}
		return identDim(dc.p, x)
	case *ast.SelectorExpr:
		return exprTypeDim(dc.p, e)
	case *ast.CallExpr:
		if tv, ok := dc.p.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			target := typeDim(tv.Type)
			inner := dc.eval(x.Args[0])
			if target.isUnit() {
				return target
			}
			// numeric strip (int64(t), float64(t)): dimension survives
			return inner
		}
		return exprTypeDim(dc.p, e)
	case *ast.BinaryExpr:
		lt, rt := dc.eval(x.X), dc.eval(x.Y)
		switch x.Op {
		case token.ADD, token.SUB, token.REM:
			if lt.isUnit() {
				return lt
			}
			return rt
		case token.MUL:
			if lt.isUnit() && rt.isUnit() {
				return dimUnknown // product of units: a new physical quantity
			}
			if lt.isUnit() {
				return lt
			}
			if rt.isUnit() {
				return rt
			}
			if lt == dimNone && rt == dimNone {
				return dimNone
			}
			return dimUnknown
		case token.QUO:
			if lt.isUnit() && lt == rt {
				return dimNone // ratio of like units is a pure number
			}
			if lt.isUnit() && rt.isUnit() {
				return dimUnknown // cross-unit ratio: a new physical quantity
			}
			if lt.isUnit() {
				return lt
			}
			return dimUnknown
		case token.SHL, token.SHR:
			return dc.eval(x.X)
		}
		return dimUnknown
	}
	return exprTypeDim(dc.p, e)
}

// identDim is the environment-free fallback: the declared type's
// dimension for unit-typed names, dimensionless for constants of
// untyped kind, unknown otherwise.
func identDim(p *pkg, id *ast.Ident) dim {
	obj := p.info.Uses[id]
	if obj == nil {
		obj = p.info.Defs[id]
	}
	if obj == nil {
		return dimUnknown
	}
	if d := typeDim(obj.Type()); d.isUnit() {
		return d
	}
	if c, ok := obj.(*types.Const); ok {
		if b, ok := c.Type().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
			return dimNone
		}
	}
	return dimUnknown
}

func exprTypeDim(p *pkg, e ast.Expr) dim {
	if t := p.info.TypeOf(e); t != nil {
		if d := typeDim(t); d.isUnit() {
			return d
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
			return dimNone
		}
	}
	return dimUnknown
}

// checkBinary reports +, -, %, and comparisons whose operands carry
// two different known dimensions.
func (dc *dimChecker) checkBinary(be *ast.BinaryExpr) {
	switch be.Op {
	case token.ADD, token.SUB, token.REM,
		token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	lt, rt := dc.eval(be.X), dc.eval(be.Y)
	if lt.isUnit() && rt.isUnit() && lt != rt {
		dc.l.report(sharedFset.Position(be.OpPos), "dimcheck",
			fmt.Sprintf("%s between %s and %s mixes dimensions; relate the quantities by multiplying/dividing through the linking unit", be.Op, lt, rt))
	}
}

// checkConversion reports unit conversions whose operand already
// carries a different dimension — including one smuggled through an
// int64()/float64() strip or a tracked local.
func (dc *dimChecker) checkConversion(call *ast.CallExpr) {
	tv, ok := dc.p.info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	target := typeDim(tv.Type)
	if !target.isUnit() {
		return
	}
	inner := dc.eval(call.Args[0])
	if inner.isUnit() && inner != target {
		dc.l.report(sharedFset.Position(call.Pos()), "dimcheck",
			fmt.Sprintf("converts a %s-derived value to %s; a bare cast changes the dimension silently — derive it via the physical relation (ratio or product with the linking unit)", inner, target))
	}
}
