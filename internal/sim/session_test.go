package sim

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"tlb/internal/lb"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// fakeClock returns a deterministic Clock advancing 1ms per reading,
// so Elapsed fields are reproducible in assertions.
func fakeClock() Clock {
	var t time.Duration
	return func() time.Duration {
		t += time.Millisecond
		return t
	}
}

// sessionScenario is a run long enough (several ms of sim time) to
// cross multiple snapshot windows at a 1ms period.
func sessionScenario(shards int) Scenario {
	flows := make([]workload.Flow, 0, 8)
	for i := 0; i < 8; i++ {
		flows = append(flows, workload.Flow{
			Src:   i % 4,
			Dst:   4 + i%4,
			Size:  400 * units.KB,
			Start: units.Time(i) * 50 * units.Microsecond,
		})
	}
	return Scenario{
		Name:         "session",
		Topology:     smallTopo(),
		Transport:    transport.DefaultConfig(),
		Balancer:     lb.ECMP(),
		SchemeName:   "ecmp",
		Seed:         7,
		Flows:        flows,
		Shards:       shards,
		StopWhenDone: true,
		MaxTime:      units.Second,
	}
}

// recorder collects the session's event stream in order.
type recorder struct {
	events []ProgressEvent
}

func (r *recorder) OnProgress(ev ProgressEvent) { r.events = append(r.events, ev) }

func TestSessionCancelBeforeStart(t *testing.T) {
	rec := &recorder{}
	ss := NewSession(sessionScenario(1), SessionOptions{
		Observer: rec,
		Clock:    fakeClock(),
	})
	ss.Cancel()
	res, err := ss.Run()
	if res != nil {
		t.Fatalf("canceled-before-start returned a Result: %+v", res)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The simulation was never built: no snapshots, one Done event with
	// no progress at all.
	if len(rec.events) != 1 {
		t.Fatalf("got %d events, want exactly the Done event", len(rec.events))
	}
	ev := rec.events[0]
	if ev.Kind != ProgressDone || !errors.Is(ev.Err, ErrCanceled) {
		t.Fatalf("terminal event = %+v, want Done wrapping ErrCanceled", ev)
	}
	if ev.Events != 0 || ev.SimTime != 0 || ev.FlowsStarted != 0 {
		t.Fatalf("canceled-before-start event shows progress: %+v", ev)
	}
}

func TestSessionCancelMidRunDiscardsPartialResult(t *testing.T) {
	var ss *Session
	rec := &recorder{}
	// Cancel from inside the first snapshot callback: the run must stop
	// at the next batch boundary, not finish.
	obs := ObserverFunc(func(ev ProgressEvent) {
		rec.OnProgress(ev)
		if ev.Kind == ProgressSnapshot {
			ss.Cancel()
		}
	})
	ss = NewSession(sessionScenario(1), SessionOptions{
		Observer:      obs,
		SnapshotEvery: 100 * units.Microsecond,
		Clock:         fakeClock(),
	})
	res, err := ss.Run()
	if res != nil {
		t.Fatalf("canceled run returned a partial Result: %+v", res)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(rec.events) < 2 {
		t.Fatalf("got %d events, want at least one snapshot plus Done", len(rec.events))
	}
	first, last := rec.events[0], rec.events[len(rec.events)-1]
	if first.Kind != ProgressSnapshot {
		t.Fatalf("first event kind = %v, want snapshot", first.Kind)
	}
	if last.Kind != ProgressDone || !errors.Is(last.Err, ErrCanceled) {
		t.Fatalf("terminal event = %+v, want Done wrapping ErrCanceled", last)
	}
	// The run made real progress before stopping — the cancel was
	// mid-run, not before start.
	if last.Events == 0 || first.SimTime <= 0 {
		t.Fatalf("cancel-mid-run shows no progress: first=%+v last=%+v", first, last)
	}
}

func TestSessionCancelMidRunSharded(t *testing.T) {
	var ss *Session
	obs := ObserverFunc(func(ev ProgressEvent) {
		if ev.Kind == ProgressSnapshot {
			ss.Cancel()
		}
	})
	ss = NewSession(sessionScenario(2), SessionOptions{
		Observer:      obs,
		SnapshotEvery: 100 * units.Microsecond,
		Clock:         fakeClock(),
	})
	res, err := ss.Run()
	if res != nil {
		t.Fatalf("canceled sharded run returned a Result")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestSessionObserverNeutral is the core determinism contract of the
// run-control split: attaching an observer (snapshots included) must
// not perturb the measurement in any way, single-engine and sharded.
func TestSessionObserverNeutral(t *testing.T) {
	for _, shards := range []int{1, 2} {
		plain, err := Run(sessionScenario(shards))
		if err != nil {
			t.Fatalf("shards=%d plain run: %v", shards, err)
		}
		rec := &recorder{}
		observed, err := NewSession(sessionScenario(shards), SessionOptions{
			Observer:      rec,
			SnapshotEvery: 200 * units.Microsecond,
			Clock:         fakeClock(),
		}).Run()
		if err != nil {
			t.Fatalf("shards=%d observed run: %v", shards, err)
		}
		if len(rec.events) < 2 {
			t.Fatalf("shards=%d: %d events, want snapshots plus Done", shards, len(rec.events))
		}
		if !reflect.DeepEqual(plain, observed) {
			t.Fatalf("shards=%d: observed Result differs from plain Result", shards)
		}
	}
}

func TestSessionSnapshotStream(t *testing.T) {
	rec := &recorder{}
	res, err := NewSession(sessionScenario(1), SessionOptions{
		Observer:      rec,
		SnapshotEvery: 200 * units.Microsecond,
		Clock:         fakeClock(),
		Index:         3,
		Total:         5,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.events) < 3 {
		t.Fatalf("only %d events; want several snapshots plus Done", len(rec.events))
	}
	var prevSim units.Time
	var prevEvents uint64
	for i, ev := range rec.events {
		terminal := i == len(rec.events)-1
		if terminal != (ev.Kind == ProgressDone) {
			t.Fatalf("event %d kind = %v; Done must be exactly the last event", i, ev.Kind)
		}
		if ev.Index != 3 || ev.Total != 5 {
			t.Fatalf("event %d index/total = %d/%d, want 3/5", i, ev.Index, ev.Total)
		}
		if ev.Scenario != "session" || ev.Scheme != "ecmp" {
			t.Fatalf("event %d names = %q/%q", i, ev.Scenario, ev.Scheme)
		}
		if ev.SimTime < prevSim {
			t.Fatalf("event %d sim time went backwards: %v < %v", i, ev.SimTime, prevSim)
		}
		if ev.Events < prevEvents {
			t.Fatalf("event %d executed-count went backwards", i)
		}
		if ev.Elapsed <= 0 {
			t.Fatalf("event %d Elapsed = %v, want positive (injected clock)", i, ev.Elapsed)
		}
		if ev.Classes == nil {
			t.Fatalf("event %d has no class aggregates", i)
		}
		if len(ev.Uplinks) != len(res.Uplinks) {
			t.Fatalf("event %d has %d uplinks, want %d", i, len(ev.Uplinks), len(res.Uplinks))
		}
		prevSim, prevEvents = ev.SimTime, ev.Events
	}
	done := rec.events[len(rec.events)-1]
	if done.Err != nil {
		t.Fatalf("Done event carries error: %v", done.Err)
	}
	if done.FlowsDone != 8 || done.FlowsStarted != 8 {
		t.Fatalf("Done counters: started=%d done=%d, want 8/8", done.FlowsStarted, done.FlowsDone)
	}
	if done.SimTime != res.EndTime {
		t.Fatalf("Done SimTime %v != Result.EndTime %v", done.SimTime, res.EndTime)
	}
	// The terminal class aggregate must agree with the Result's own
	// reduction — same counts, same mean FCT.
	agg := done.Classes.Agg(AllFlows)
	if int(agg.Completed) != res.CompletedCount(AllFlows) {
		t.Fatalf("Done aggregate completed=%d, Result says %d", agg.Completed, res.CompletedCount(AllFlows))
	}
	if got, want := units.FromSeconds(agg.FCT.Mean()), res.AFCT(AllFlows); got != want {
		t.Fatalf("Done aggregate AFCT %v != Result AFCT %v", got, want)
	}
}

// TestSessionSnapshotClassesAreCopies pins the "snapshots are exact
// Merge-able copies" contract: mutating a snapshot's aggregates must
// not bleed into later snapshots or the final Result.
func TestSessionSnapshotClassesAreCopies(t *testing.T) {
	var seen []int64
	obs := ObserverFunc(func(ev ProgressEvent) {
		if ev.Classes != nil {
			// Record the delivered value, then vandalize the copy; if a
			// later snapshot aliases this one, it arrives pre-vandalized.
			seen = append(seen, ev.Classes.Agg(AllFlows).Completed)
			ev.Classes.Agg(AllFlows).Completed = 999999
		}
	})
	res, err := NewSession(sessionScenario(1), SessionOptions{
		Observer:      obs,
		SnapshotEvery: 200 * units.Microsecond,
		Clock:         fakeClock(),
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount(AllFlows) != 8 {
		t.Fatalf("vandalized snapshot bled into Result: completed=%d", res.CompletedCount(AllFlows))
	}
	for i, c := range seen {
		if c == 999999 {
			t.Fatalf("snapshot %d aliases an earlier snapshot", i)
		}
	}
}

func TestSessionValidationEmitsDone(t *testing.T) {
	sc := sessionScenario(1)
	sc.Balancer = nil
	rec := &recorder{}
	_, err := NewSession(sc, SessionOptions{Observer: rec, Clock: fakeClock()}).Run()
	if err == nil {
		t.Fatal("invalid scenario did not error")
	}
	if len(rec.events) != 1 || rec.events[0].Kind != ProgressDone || rec.events[0].Err == nil {
		t.Fatalf("validation failure events = %+v, want one Done carrying the error", rec.events)
	}
}
