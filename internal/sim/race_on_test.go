//go:build race

package sim

// raceEnabled gates tests whose scale is pointless under the race
// detector's 5-20x slowdown (the 100k cross-check exercises no
// concurrency — sim.Run is single-goroutine).
const raceEnabled = true
