// Sharded runner: one scenario spatially partitioned across event
// engines running on parallel goroutines.
//
// Each shard builds its OWN complete copy of the network and hosts
// (identical construction, same seed, so RNG consumption matches the
// single-engine run exactly) but drives only the components its
// partition owns: flows open where their endpoints live, boundary
// egress ports capture crossing packets as value handoffs
// (topology.Sharder), and unowned switches simply never see traffic.
//
// Synchronization is conservative lookahead (Chandy–Misra–Bryant
// windows): the minimum propagation delay L over all shard-boundary
// links bounds how far any shard may run ahead, because a packet
// admitted at time t cannot arrive in another shard before t + L.
// The coordinator runs fixed-width windows [start, start+L): every
// shard executes its events through the window, then all exchange
// handoffs and completion messages at a barrier. A handoff emitted
// inside a window is therefore always delivered in a strictly later
// one — never in a shard's past. Window *starts* jump over idle gaps
// (to the earliest pending event or handoff anywhere) so a quiet
// simulation does not pay L-sized steps; window *width* never exceeds
// L, which is what preserves causality.
//
// Determinism: every delivery — local or handed off — is scheduled in
// the engine's keyed domain under netem.DeliveryKey(admission time,
// port index), a pure function of traffic and topology, so two events
// colliding on one nanosecond order identically whether they met on
// one global engine or arrived across a boundary (each epoch's
// incoming handoffs are additionally sorted with topology.HandoffBefore
// — the same (DeliverAt, AdmittedAt, SrcPort) order — before being
// scheduled). Flow teardown obeys the same finite-latency rule as
// packets: a sender's completion closes its receiver via a keyed event
// at completion + lag (teardownLag, ≥ the window width), which a
// cross-shard closeMsg delivered at the next barrier re-creates
// exactly — an instantaneous close would be a zero-latency cross-shard
// influence, and whether a late retransmission meets an open or a
// closed receiver would then depend on the partition. Order-sensitive
// floating-point reductions (time series, per-packet samples) are
// logged and replayed in one canonical sorted order by BOTH runners
// (replaySampleRecs, replayGoodput). Everything shards exchange is a
// value — no mutable memory is shared between shard goroutines, and
// packet pool ownership never crosses one (packetown stays clean).
//
// Exactness: with MaxTime-bounded runs every counter, flow record,
// sample and series bucket is reproduced. Known residual divergences
// from the single-engine run, all bounded and deterministic for a
// given shard count: (1) under StopWhenDone, shards finish the last
// window after the final completion, so packets still draining can
// bump port/drop counters the single-engine run never executed (flow
// records are unaffected: all senders have completed, and every
// receiver froze its stats at payload completion); (2) streaming-stats
// mean/variance fold in barrier order, identical across runs of the
// same shard count but rounding-different across counts (counters and
// the quantile sketch merge exactly). The figure-identity tests in
// internal/experiments pin both to byte-identical CSV output on every
// acceptance figure.
package sim

import (
	"fmt"
	"sort"
	"sync"

	"tlb/internal/eventsim"
	"tlb/internal/faults"
	"tlb/internal/netem"
	"tlb/internal/stats"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// closeMsg carries a cross-shard flow completion from the sender's
// shard to the receiver's: the destination folds or snapshots the
// merged record and schedules the receiver teardown at its keyed
// position (see applyCloses). Applied at barriers in (at, idx) order.
type closeMsg struct {
	idx      int   // global flow index
	dstShard int32 // shard owning the receiver
	at       units.Time
	short    bool
	sender   transport.FlowStats // sender-half record, by value
}

// sampleRec is one logged receiver packet sample, replayed in a
// sorted merge (TimeSeries float sums are order-dependent).
type sampleRec struct {
	ps    transport.PacketSample
	short bool
}

// tickRec is one flow's goodput-sampler delta at one tick.
type tickRec struct {
	at    units.Time
	idx   int32
	short bool
	delta units.Bytes
}

// openRec remembers a flow opened with its sender on this shard, in
// open order — the record-mode result set and the goodput sampler's
// iteration domain.
type openRec struct {
	idx   int
	start units.Time
	short bool
	cross bool // receiver lives on another shard
	stats *transport.FlowStats
	last  units.Bytes // goodput sampler: BytesAcked at last tick
}

// shardEpochIn is one window's work order for a shard.
type shardEpochIn struct {
	deadline units.Time
	handoffs []topology.Handoff // due this window, sorted by HandoffBefore
	closes   []closeMsg         // sorted by (at, idx)
}

// shardEpochOut is a shard's barrier report.
type shardEpochOut struct {
	handoffs  []topology.Handoff // emitted this window
	dones     []closeMsg         // cross-shard completions this window
	nextAt    units.Time         // earliest pending local event
	hasNext   bool
	remaining int // owned-sender flows not yet completed
	drained   bool
	lastDone  units.Time // latest completion seen so far
	err       error
}

// shardState is one shard's complete private world. Only its own
// goroutine touches it between the channel barriers.
type shardState struct {
	id   int
	sc   *Scenario
	cfg  transport.Config // sc.Transport with this shard's pool
	sim  *eventsim.Sim
	net  topology.Sharder
	part *topology.Partition

	hosts     []*transport.Host
	hostOwner []int

	src workload.Source

	remaining int
	drained   bool
	lastDone  units.Time
	closeLag  units.Time // finite teardown latency, same value in every shard and mode
	err       error

	outHandoffs []topology.Handoff
	outDones    []closeMsg
	applyFn     func(any)

	// rstats holds the receiver-half record of every open cross-shard
	// flow terminating here, by global flow index; rFinal snapshots it
	// at close (record mode).
	rstats map[int]*transport.FlowStats
	rFinal map[int]transport.FlowStats

	agg *StreamAgg // per-shard fold target (stream mode)
	// obsAgg mirrors agg for observed record-mode runs: snapshots want
	// per-class aggregates even when records are retained. Folded at
	// the same points as agg, read only at barriers.
	obsAgg *StreamAgg
	// started/done count sender-owned flow opens and completions for
	// the progress stream, summed across shards at barriers.
	started int64
	done    int64

	openLog []openRec
	samples []sampleRec
	ticks   []tickRec
}

// runSharded is the Shards > 1 entry point; the session has already
// applied defaults and the shared validation.
func runSharded(ss *Session) (*Result, error) {
	sc := &ss.sc
	if sc.Replication != nil {
		return nil, fmt.Errorf("sim: scenario %q: Shards > 1 is incompatible with Replication (racing copies share one record); run with Shards: 1", sc.Name)
	}
	if sc.Tracer != nil {
		return nil, fmt.Errorf("sim: scenario %q: Shards > 1 is incompatible with a Tracer (trace order is engine-local); run with Shards: 1", sc.Name)
	}
	if sc.FlowSource != nil {
		return nil, fmt.Errorf("sim: scenario %q: Shards > 1 needs the workload as a replayable FlowSourceNew factory, not a one-shot FlowSource", sc.Name)
	}

	// Build shard 0 first to learn the partition after clamping to the
	// topology's parallelism; a single-shard partition falls back to
	// the exact single-engine path.
	first, la, err := buildShard(sc, 0)
	if err != nil {
		return nil, err
	}
	n := first.part.Shards
	if n <= 1 {
		sc.Shards = 1
		return runSingle(ss)
	}
	// The lookahead is the minimum boundary propagation delay, further
	// tightened by any scheduled OpDelay — a fault may shrink a
	// boundary link mid-run, and the window width must stay causal
	// under the smallest delay that can ever be in effect.
	for _, ev := range sc.Faults {
		if ev.Op == faults.OpDelay && ev.Delay < la {
			la = ev.Delay
		}
	}
	if la <= 0 {
		return nil, fmt.Errorf("sim: scenario %q: Shards > 1 requires a positive minimum boundary-link delay (lookahead %v)", sc.Name, la)
	}
	// Flow teardown travels at the same finite latency in both modes
	// (see teardownLag); it is computed over every boundary-capable
	// link, so it can only tighten the window — which keeps a close
	// event scheduled from a barrier (at completion + lag) always in a
	// later window than the completion's.
	lag := teardownLag(first.net, sc.Faults)
	if lag <= 0 {
		return nil, fmt.Errorf("sim: scenario %q: Shards > 1 requires a positive minimum fabric-link delay (teardown lag %v)", sc.Name, lag)
	}
	if lag < la {
		la = lag
	}

	shards := make([]*shardState, n)
	shards[0] = first
	for i := 1; i < n; i++ {
		if shards[i], _, err = buildShard(sc, i); err != nil {
			return nil, err
		}
	}
	for _, st := range shards {
		st.closeLag = lag
		if ss.observing() && !sc.StreamStats {
			st.obsAgg = &StreamAgg{}
		}
		if err := st.scheduleFlows(); err != nil {
			return nil, err
		}
		if sc.CollectTimeSeries {
			st.installTicker()
		}
	}

	// Snapshot plumbing: the uplink port objects and their global
	// owner assignment are topology structure, fixed before any event
	// runs — captured here so barrier snapshots and the final Result
	// assemble the identical port set.
	ports := make([][]*netem.Port, n)
	for i, st := range shards {
		ports[i] = st.net.BalancedPorts()
	}
	owners := shards[0].net.BalancedPortOwners(shards[0].part)

	ins := make([]chan shardEpochIn, n)
	outs := make([]chan shardEpochOut, n)
	var wg sync.WaitGroup
	for i, st := range shards {
		ins[i] = make(chan shardEpochIn, 1)
		outs[i] = make(chan shardEpochOut, 1)
		wg.Add(1)
		go st.serve(ins[i], outs[i], &wg)
	}
	stopWorkers := func() {
		for _, in := range ins {
			close(in)
		}
		wg.Wait()
	}

	// The epoch loop. pendingH/pendingC hold messages produced in past
	// windows, not yet due / not yet delivered.
	pendingH := make([][]topology.Handoff, n)
	pendingC := make([][]closeMsg, n)
	maxT := sc.MaxTime
	window := ss.window()
	nextSnap := window
	var (
		cur     units.Time
		endTime units.Time
		runErr  error
	)
	for {
		// Cooperative cancel, checked between windows like the
		// single-engine drive loop checks between batches.
		if ss.Canceled() {
			stopWorkers()
			return nil, ss.cancelErr()
		}
		deadline := cur + la - 1
		if deadline > maxT || deadline < cur {
			deadline = maxT
		}
		for i := range shards {
			due, rest := splitDue(pendingH[i], deadline)
			pendingH[i] = rest
			sortHandoffs(due)
			cs := pendingC[i]
			pendingC[i] = nil
			sortCloses(cs)
			ins[i] <- shardEpochIn{deadline: deadline, handoffs: due, closes: cs}
		}
		total := 0
		allDrained := true
		var last, next units.Time
		hasNext := false
		for i := range shards {
			o := <-outs[i]
			if o.err != nil && runErr == nil {
				runErr = o.err
			}
			for _, h := range o.handoffs {
				pendingH[h.DstShard] = append(pendingH[h.DstShard], h)
			}
			for _, d := range o.dones {
				pendingC[d.dstShard] = append(pendingC[d.dstShard], d)
			}
			total += o.remaining
			allDrained = allDrained && o.drained
			if o.lastDone > last {
				last = o.lastDone
			}
			if o.hasNext && (!hasNext || o.nextAt < next) {
				next, hasNext = o.nextAt, true
			}
		}
		// Every shard is parked at the barrier now (blocked on its next
		// work order), so reading shard-private state here is race-free:
		// the happens-before chain runs through the outs receive above.
		ss.flowsStarted, ss.flowsDone, ss.events = 0, 0, 0
		for _, st := range shards {
			ss.flowsStarted += st.started
			ss.flowsDone += st.done
			ss.events += st.sim.Executed()
		}
		if runErr != nil {
			stopWorkers()
			return nil, runErr
		}
		if sc.StopWhenDone && total == 0 && allDrained {
			endTime = last
			break
		}
		if deadline >= maxT {
			endTime = maxT
			break
		}
		if ss.observing() && deadline >= nextSnap {
			// Barrier snapshot: merge the per-shard aggregate copies —
			// exact, the same reduction the final Result performs — and
			// snapshot the uplink ports in their global order.
			ev := ss.baseEvent(ProgressSnapshot)
			ev.SimTime = deadline
			ev.Events = ss.events
			ev.EventsPerSec = ss.rate(ss.events)
			agg := &StreamAgg{}
			for _, st := range shards {
				agg.Merge(st.agg)
				agg.Merge(st.obsAgg)
			}
			ev.Classes = agg
			ev.Uplinks = make([]PortSnapshot, 0, len(owners))
			for i, o := range owners {
				p := ports[o][i]
				ev.Uplinks = append(ev.Uplinks, PortSnapshot{
					Label:    p.Label(),
					BusyTime: p.BusyTime(),
					Queue:    p.Queue().Stats(),
					Link:     p.Link(),
				})
			}
			ss.emit(ev)
			for nextSnap <= deadline {
				nextSnap += window
			}
		}
		// Jump the next window's start over the idle gap: the earliest
		// pending event or undelivered handoff anywhere. The width
		// stays la, so causality is untouched — only dead windows are
		// skipped.
		for i := range pendingH {
			for j := range pendingH[i] {
				if h := &pendingH[i][j]; !hasNext || h.DeliverAt < next {
					next, hasNext = h.DeliverAt, true
				}
			}
		}
		if !hasNext {
			endTime = maxT
			break
		}
		if next <= deadline {
			next = deadline + 1
		}
		cur = next
	}
	stopWorkers()

	// Completions from the final window: close and fold on the
	// coordinator — the workers are joined, so this is single-threaded.
	for i, st := range shards {
		cs := pendingC[i]
		sortCloses(cs)
		st.applyCloses(cs, false)
	}

	res := &Result{
		Scenario:       sc.Name,
		Scheme:         sc.SchemeName,
		ShortThreshold: sc.ShortThreshold,
		EndTime:        endTime,
	}
	if sc.CollectTimeSeries {
		w := sc.TimeBucket.Seconds()
		res.ShortQueueDelayUs = stats.NewTimeSeries(w)
		res.ShortOOORatio = stats.NewTimeSeries(w)
		res.LongOOORatio = stats.NewTimeSeries(w)
		res.ShortGoodputBytes = stats.NewTimeSeries(w)
		res.LongGoodputBytes = stats.NewTimeSeries(w)
	}

	owner := shards[0].hostOwner
	var opens []openRec
	if sc.StreamStats {
		res.Stream = &StreamAgg{}
		for _, st := range shards {
			res.Stream.Merge(st.agg)
		}
		// Unfinished flows: sweep still-open senders in global host
		// order (the single-engine sweep order), grafting the live
		// receiver half of cross-shard flows before folding.
		for h := range owner {
			st := shards[owner[h]]
			st.hosts[h].EachOpenSenderSorted(func(snd *transport.Sender) {
				fs := snd.Stats
				if dst := shards[owner[fs.ID.Dst]]; dst != st {
					addRecvHalf(&fs, dst.rstats[fs.ID.Port])
				}
				res.Stream.Fold(&fs, fs.Size <= sc.ShortThreshold, endTime)
			})
		}
	} else {
		// Record mode: assemble Flows in the single-engine append
		// order — flow open order, i.e. (start, index).
		for _, st := range shards {
			opens = append(opens, st.openLog...)
		}
		sort.SliceStable(opens, func(a, b int) bool {
			if opens[a].start != opens[b].start {
				return opens[a].start < opens[b].start
			}
			return opens[a].idx < opens[b].idx
		})
		for i := range opens {
			r := &opens[i]
			fs := r.stats
			if r.cross {
				dst := shards[owner[fs.ID.Dst]]
				merged := *fs
				if fin, ok := dst.rFinal[r.idx]; ok {
					addRecvHalf(&merged, &fin)
				} else {
					addRecvHalf(&merged, dst.rstats[r.idx])
				}
				fs = &merged
			}
			res.Flows = append(res.Flows, fs)
		}
	}

	replaySamples(sc, res, shards, endTime)
	replayGoodput(sc, res, shards, opens, endTime)

	for _, st := range shards {
		res.Drops += st.net.Drops()
		st.net.EveryOwnedQueue(st.part, st.id, func(_ string, q *netem.Queue) {
			res.FaultDrops += q.Stats().FaultDropped
		})
	}
	for i, o := range owners {
		p := ports[o][i]
		res.Uplinks = append(res.Uplinks, PortSnapshot{
			Label:    p.Label(),
			BusyTime: p.BusyTime(),
			Queue:    p.Queue().Stats(),
			Link:     p.Link(),
		})
	}
	return res, nil
}

// buildShard constructs one shard's complete private copy of the
// simulation — engine, network, hosts, pool — and binds its boundary
// ports. The returned lookahead is the minimum propagation delay over
// all boundary links (0 when the partition collapsed to one shard).
func buildShard(sc *Scenario, id int) (*shardState, units.Time, error) {
	st := &shardState{id: id, sc: sc}
	st.sim = eventsim.New()
	rng := eventsim.NewRNG(sc.Seed)
	pool := netem.NewPacketPool()
	st.cfg = sc.Transport
	st.cfg.Pool = pool

	deliver := func(host int, pkt *netem.Packet) { st.hosts[host].Receive(pkt) }
	var (
		net topology.Network
		err error
	)
	if sc.BuildNetwork != nil {
		net, err = sc.BuildNetwork(st.sim, sc.Balancer, rng.Split(), deliver)
	} else {
		net, err = topology.New(st.sim, sc.Topology, sc.Balancer, rng.Split(), deliver)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
	}
	sh, ok := net.(topology.Sharder)
	if !ok {
		return nil, 0, fmt.Errorf("sim: scenario %q: Shards > 1 needs a partitionable network (topology.Sharder), got %T", sc.Name, net)
	}
	st.net = sh
	st.part = sh.NewPartition(sc.Shards)
	la := sh.ShardBind(st.part, id, func(h topology.Handoff) {
		st.outHandoffs = append(st.outHandoffs, h)
	})
	st.applyFn = func(arg any) { st.net.ApplyHandoff(arg.(*topology.Handoff)) }

	if len(sc.Faults) > 0 {
		fab, ok := net.(*topology.Fabric)
		if !ok {
			return nil, 0, fmt.Errorf("sim: scenario %q: fault schedule requires the leaf-spine fabric", sc.Name)
		}
		// Every shard installs the FULL schedule, filtered to the
		// directed ports it owns — so each directed port is faulted by
		// exactly the shard that runs its events, at the exact times.
		resolve := func(leaf, spine int) (*netem.Port, *netem.Port, error) {
			up, down, err := fab.LinkPorts(leaf, spine)
			if err != nil {
				return nil, nil, err
			}
			upO, downO := fab.LinkOwners(st.part, leaf, spine)
			if upO != id {
				up = nil
			}
			if downO != id {
				down = nil
			}
			return up, down, nil
		}
		if _, err := faults.Install(st.sim, sc.Faults, resolve, nil); err != nil {
			return nil, 0, fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
		}
	}

	net.SetPool(pool)
	st.hosts = make([]*transport.Host, net.Hosts())
	for h := range st.hosts {
		host := h
		st.hosts[h] = transport.NewHost(st.sim, h, func(pkt *netem.Packet) { net.Inject(host, pkt) })
		st.hosts[h].SetPool(pool)
	}
	st.hostOwner = make([]int, net.Hosts())
	for h := range st.hostOwner {
		st.hostOwner[h] = sh.HostOwner(st.part, h)
	}
	st.rstats = make(map[int]*transport.FlowStats)
	if sc.StreamStats {
		st.agg = &StreamAgg{}
	} else {
		st.rFinal = make(map[int]transport.FlowStats)
	}
	return st, la, nil
}

// checkFlowEndpoints mirrors the single-engine runner's flow check.
func checkFlowEndpoints(i int, f workload.Flow, hosts int) error {
	if f.Src == f.Dst || f.Src < 0 || f.Src >= hosts || f.Dst < 0 || f.Dst >= hosts {
		return fmt.Errorf("sim: flow %d has invalid endpoints %d->%d", i, f.Src, f.Dst)
	}
	return nil
}

// scheduleFlows arms this shard's share of the workload. Every flow
// keeps its global index; a shard schedules open events only for
// flows with an endpoint it owns, and counts toward remaining only
// those whose sender it owns (completion is decided where the sender
// lives). With a lazy workload every shard pumps its own full source
// copy — sources are pure functions of spec and seed — so indices and
// arrival times agree across shards by construction.
func (st *shardState) scheduleFlows() error {
	sc := st.sc
	for i, f := range sc.Flows {
		if err := checkFlowEndpoints(i, f, len(st.hosts)); err != nil {
			return err
		}
		if st.hostOwner[f.Src] != st.id && st.hostOwner[f.Dst] != st.id {
			continue
		}
		if st.hostOwner[f.Src] == st.id {
			st.remaining++
		}
		i, f := i, f
		st.sim.At(f.Start, func() { st.openFlow(i, f) })
	}
	st.drained = sc.FlowSourceNew == nil
	if sc.FlowSourceNew != nil {
		st.src = sc.FlowSourceNew()
		var pump func(i int, f workload.Flow)
		pump = func(i int, f workload.Flow) {
			if err := checkFlowEndpoints(i, f, len(st.hosts)); err != nil {
				st.fail(err)
				return
			}
			if f.Start < st.sim.Now() {
				st.fail(fmt.Errorf("sim: FlowSource went backwards: flow %d starts at %v, now %v", i, f.Start, st.sim.Now()))
				return
			}
			if st.hostOwner[f.Src] == st.id {
				st.remaining++
			}
			st.sim.At(f.Start, func() {
				st.openFlow(i, f)
				if nf, ok := st.src.Next(); ok {
					pump(i+1, nf)
				} else {
					st.drained = true
				}
			})
		}
		if f, ok := st.src.Next(); ok {
			pump(0, f)
		} else {
			return fmt.Errorf("sim: scenario %q: FlowSource yielded no flows", sc.Name)
		}
	}
	return nil
}

// fail records the first error and stops the current window early.
func (st *shardState) fail(err error) {
	if st.err == nil {
		st.err = err
	}
	st.sim.Stop()
}

// flowDone is the shard-local part of every completion. Shards never
// stop themselves — the coordinator owns the stop decision at the
// next barrier.
func (st *shardState) flowDone() {
	st.remaining--
	st.done++
	if now := st.sim.Now(); now > st.lastDone {
		st.lastDone = now
	}
}

// openFlow opens the endpoints this shard owns for one flow.
func (st *shardState) openFlow(i int, f workload.Flow) {
	sc := st.sc
	id := netem.FlowID{Src: f.Src, Dst: f.Dst, Port: i}
	short := f.Size <= sc.ShortThreshold
	srcHere := st.hostOwner[f.Src] == st.id
	dstHere := st.hostOwner[f.Dst] == st.id
	switch {
	case srcHere && dstHere:
		// Shard-local flow: the exact single-engine wiring — shared
		// record, deferred keyed close and synchronous fold.
		snd := st.hosts[f.Src].OpenSender(st.cfg, id, f.Size, func(done *transport.Sender) {
			st.hosts[f.Dst].CloseReceiverAt(st.sim.Now(), st.closeLag, id)
			if st.agg != nil {
				st.agg.Fold(&done.Stats, short, st.sim.Now())
			}
			if st.obsAgg != nil {
				st.obsAgg.Fold(&done.Stats, short, st.sim.Now())
			}
			st.flowDone()
		})
		snd.Stats.Deadline = f.Deadline
		recv := st.hosts[f.Dst].OpenReceiver(st.cfg, id, f.Size, &snd.Stats)
		st.hookSamples(recv, short)
		st.logOpen(i, short, false, &snd.Stats)
		st.started++
		snd.Start()
	case srcHere:
		// Sender half of a cross-shard flow: completion travels to the
		// receiver's shard as a closeMsg, applied at the next barrier.
		dst := int32(st.hostOwner[f.Dst])
		snd := st.hosts[f.Src].OpenSender(st.cfg, id, f.Size, func(done *transport.Sender) {
			st.outDones = append(st.outDones, closeMsg{
				idx: i, dstShard: dst, at: st.sim.Now(), short: short, sender: done.Stats,
			})
			st.flowDone()
		})
		snd.Stats.Deadline = f.Deadline
		st.logOpen(i, short, true, &snd.Stats)
		st.started++
		snd.Start()
	case dstHere:
		// Receiver half: a fresh record only the receiver writes,
		// merged with the sender half at close (or end of run).
		rs := &transport.FlowStats{ID: id, Size: f.Size, Deadline: f.Deadline}
		st.rstats[i] = rs
		recv := st.hosts[f.Dst].OpenReceiver(st.cfg, id, f.Size, rs)
		st.hookSamples(recv, short)
	}
}

// logOpen records a sender-owned open (record mode only — streaming
// runs retain no per-flow state).
func (st *shardState) logOpen(idx int, short, cross bool, fs *transport.FlowStats) {
	if st.agg != nil {
		return
	}
	st.openLog = append(st.openLog, openRec{
		idx: idx, start: st.sim.Now(), short: short, cross: cross, stats: fs,
	})
}

// hookSamples wires the receiver's per-packet sample hook into the
// shard-local log, under the same conditions the single-engine runner
// installs its hooks.
func (st *shardState) hookSamples(recv *transport.Receiver, short bool) {
	sc := st.sc
	if !(sc.SampleShortPackets && short) && !sc.CollectTimeSeries {
		return
	}
	recv.Sample = func(ps transport.PacketSample) {
		st.samples = append(st.samples, sampleRec{ps: ps, short: short})
	}
}

// installTicker arms the per-shard goodput sampler: same period and
// phase as the single-engine sampler, but deltas are logged and
// replayed in a sorted merge instead of added to the series directly.
func (st *shardState) installTicker() {
	period := st.sc.TimeBucket
	var tick func()
	tick = func() {
		st.sampleGoodput()
		st.sim.After(period, tick)
	}
	st.sim.After(period, tick)
}

// sampleGoodput logs each owned flow's acked-byte delta since its
// last tick, in open order.
func (st *shardState) sampleGoodput() {
	now := st.sim.Now()
	for j := range st.openLog {
		r := &st.openLog[j]
		d := r.stats.BytesAcked - r.last
		if d <= 0 {
			continue
		}
		r.last = r.stats.BytesAcked
		st.ticks = append(st.ticks, tickRec{at: now, idx: int32(r.idx), short: r.short, delta: d})
	}
}

// serve is the shard goroutine: one epoch per work order until the
// channel closes. All shard state is private to this goroutine while
// it runs; the channel pair is the only synchronization.
func (st *shardState) serve(in <-chan shardEpochIn, out chan<- shardEpochOut, wg *sync.WaitGroup) {
	defer wg.Done()
	for ep := range in {
		out <- st.runEpoch(ep)
	}
}

// runEpoch applies the barrier's messages, runs the window, and
// reports. Each handoff is scheduled with the same DeliveryKey its
// source port used, so it fires at exactly the position — relative to
// this shard's local same-instant deliveries — that the unsharded
// engine fires the original delivery at.
func (st *shardState) runEpoch(ep shardEpochIn) shardEpochOut {
	st.applyCloses(ep.closes, true)
	for i := range ep.handoffs {
		h := &ep.handoffs[i]
		st.sim.AtKey(h.DeliverAt, netem.DeliveryKey(h.AdmittedAt, h.SrcPort), st.applyFn, h)
	}
	st.sim.RunUntil(ep.deadline)
	o := shardEpochOut{
		handoffs:  st.outHandoffs,
		dones:     st.outDones,
		remaining: st.remaining,
		drained:   st.drained,
		lastDone:  st.lastDone,
		err:       st.err,
	}
	st.outHandoffs = nil
	st.outDones = nil
	o.nextAt, o.hasNext = st.sim.NextEventAt()
	return o
}

// applyCloses handles the receiver halves of cross-shard flows whose
// senders completed elsewhere, in the barrier's deterministic order.
// The stats merge happens here — safe at any point at or after
// completion, because the receiver froze its half of the record the
// moment all payload arrived — but the teardown itself is re-created
// as the keyed engine event the single engine schedules at the
// sender's done callback: at completion + lag, keyed by (completion,
// host). The lag is no smaller than the window width, so an event
// scheduled from the barrier after the completion's window is never in
// the past. With schedule false (the post-join sweep, engines stopped)
// the receiver is dropped directly.
func (st *shardState) applyCloses(closes []closeMsg, schedule bool) {
	for i := range closes {
		c := &closes[i]
		id := c.sender.ID
		if schedule {
			st.hosts[id.Dst].CloseReceiverAt(c.at, st.closeLag, id)
		} else {
			st.hosts[id.Dst].CloseReceiver(id)
		}
		rs := st.rstats[c.idx]
		delete(st.rstats, c.idx)
		if st.agg != nil || st.obsAgg != nil {
			merged := c.sender
			addRecvHalf(&merged, rs)
			if st.agg != nil {
				st.agg.Fold(&merged, c.short, c.at)
			}
			if st.obsAgg != nil {
				st.obsAgg.Fold(&merged, c.short, c.at)
			}
		}
		if st.agg == nil && rs != nil {
			st.rFinal[c.idx] = *rs
		}
	}
}

// addRecvHalf grafts the receiver-side counters of src onto dst: the
// two halves of a cross-shard flow are written by disjoint shards, so
// the merge is plain assignment.
func addRecvHalf(dst, src *transport.FlowStats) {
	if src == nil {
		return
	}
	dst.SumQueueDelay = src.SumQueueDelay
	dst.PacketsRecv = src.PacketsRecv
	dst.OutOfOrder = src.OutOfOrder
	dst.DupAcksSent = src.DupAcksSent
	dst.SumPktDelay = src.SumPktDelay
	dst.DelaySamples = src.DelaySamples
}

// replaySamples merges the per-shard packet-sample logs and feeds the
// retained-sample slice and the receiver-side time series.
func replaySamples(sc *Scenario, res *Result, shards []*shardState, endTime units.Time) {
	if !sc.SampleShortPackets && !sc.CollectTimeSeries {
		return
	}
	var recs []sampleRec
	for _, st := range shards {
		recs = append(recs, st.samples...)
	}
	replaySampleRecs(sc, res, recs, endTime)
}

// replaySampleRecs applies a packet-sample log in (time, receiving
// host) order — BOTH runners feed their series through it, because the
// time-series bucket sums are floating-point and therefore
// order-sensitive: same-instant samples at different hosts arrive in
// engine delivery order on a single engine but are logged per shard
// when sharded, so a canonical replay order is the only way the sums
// come out bit-identical. Two samples can never tie on (time, host):
// a host's last hop is one FIFO port, which separates its deliveries
// in time.
func replaySampleRecs(sc *Scenario, res *Result, recs []sampleRec, endTime units.Time) {
	sort.SliceStable(recs, func(a, b int) bool {
		if recs[a].ps.At != recs[b].ps.At {
			return recs[a].ps.At < recs[b].ps.At
		}
		return recs[a].ps.Flow.Dst < recs[b].ps.Flow.Dst
	})
	for i := range recs {
		r := &recs[i]
		if r.ps.At > endTime {
			continue
		}
		if sc.SampleShortPackets && r.short {
			res.ShortSamples = append(res.ShortSamples, r.ps)
		}
		if !sc.CollectTimeSeries {
			continue
		}
		at := r.ps.At.Seconds()
		ooo := 0.0
		if r.ps.OutOfOrder {
			ooo = 1
		}
		if r.short {
			res.ShortQueueDelayUs.Add(at, r.ps.QueueDelay.Micros())
			res.ShortOOORatio.Add(at, ooo)
		} else {
			res.LongOOORatio.Add(at, ooo)
		}
	}
}

// replayGoodput merges the per-shard goodput tick logs — ordered by
// tick time, then the flows' global open order within a tick, which
// is the single-engine sampler's iteration order — and applies the
// final flush at EndTime.
func replayGoodput(sc *Scenario, res *Result, shards []*shardState, opens []openRec, endTime units.Time) {
	if !sc.CollectTimeSeries {
		return
	}
	rank := make(map[int32]int, len(opens))
	for i := range opens {
		rank[int32(opens[i].idx)] = i
	}
	var ticks []tickRec
	for _, st := range shards {
		ticks = append(ticks, st.ticks...)
	}
	sort.SliceStable(ticks, func(a, b int) bool {
		if ticks[a].at != ticks[b].at {
			return ticks[a].at < ticks[b].at
		}
		return rank[ticks[a].idx] < rank[ticks[b].idx]
	})
	applied := make(map[int32]units.Bytes, len(opens))
	for i := range ticks {
		t := &ticks[i]
		if t.at > endTime {
			continue
		}
		applied[t.idx] += t.delta
		if t.short {
			res.ShortGoodputBytes.Add(t.at.Seconds(), float64(t.delta))
		} else {
			res.LongGoodputBytes.Add(t.at.Seconds(), float64(t.delta))
		}
	}
	at := endTime.Seconds()
	for i := range opens {
		r := &opens[i]
		if d := r.stats.BytesAcked - applied[int32(r.idx)]; d > 0 {
			if r.short {
				res.ShortGoodputBytes.Add(at, float64(d))
			} else {
				res.LongGoodputBytes.Add(at, float64(d))
			}
		}
	}
}

// sortHandoffs orders one epoch's handoffs deterministically.
func sortHandoffs(hs []topology.Handoff) {
	sort.SliceStable(hs, func(i, j int) bool { return topology.HandoffBefore(&hs[i], &hs[j]) })
}

// sortCloses orders one epoch's completion messages deterministically.
func sortCloses(cs []closeMsg) {
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].at != cs[j].at {
			return cs[i].at < cs[j].at
		}
		return cs[i].idx < cs[j].idx
	})
}

// splitDue partitions pending handoffs into those due by the deadline
// and the rest.
func splitDue(hs []topology.Handoff, deadline units.Time) (due, rest []topology.Handoff) {
	for i := range hs {
		if hs[i].DeliverAt <= deadline {
			due = append(due, hs[i])
		} else {
			rest = append(rest, hs[i])
		}
	}
	return due, rest
}
