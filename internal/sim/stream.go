package sim

import (
	"tlb/internal/stats"
	"tlb/internal/transport"
	"tlb/internal/units"
)

// StreamAgg is the streaming representation of a run's flow
// measurements: one fixed-size stats.FlowAgg per class instead of a
// retained []*transport.FlowStats, so memory is O(1) in the flow
// count. Every Result accessor answers from it when present; FCT
// percentiles come from the per-class quantile sketch and carry its
// relative-error bound (stats.DefaultSketchAlpha), everything else is
// exact.
type StreamAgg struct {
	Classes [3]stats.FlowAgg // indexed by Class: AllFlows, ShortFlows, LongFlows
}

// Agg returns the accumulator for one class.
func (st *StreamAgg) Agg(c Class) *stats.FlowAgg { return &st.Classes[c] }

// Fold reduces one flow record into the All class plus its size class
// and forgets it. end is the run end time, used to judge deadlines and
// goodput duration of unfinished flows (completed flows carry their
// own End).
func (st *StreamAgg) Fold(fs *transport.FlowStats, short bool, end units.Time) {
	foldOne(&st.Classes[AllFlows], fs, end)
	if short {
		foldOne(&st.Classes[ShortFlows], fs, end)
	} else {
		foldOne(&st.Classes[LongFlows], fs, end)
	}
}

// foldOne mirrors the record-based Result accessors field for field:
// counters sum identically; FCT seconds feed the Online accumulator
// and the sketch.
func foldOne(a *stats.FlowAgg, fs *transport.FlowStats, end units.Time) {
	a.Count++
	if fs.Done {
		a.Completed++
		a.AddFCT(fs.FCT().Seconds())
	}
	if fs.Deadline != 0 {
		a.DeadlineTotal++
		if fs.MissedDeadline(end) {
			a.DeadlineMissed++
		}
	}
	e := fs.End
	if !fs.Done {
		e = end
	}
	if dur := (e - fs.Start).Seconds(); dur > 0 && fs.BytesAcked > 0 {
		a.GoodputSum += float64(fs.BytesAcked) * 8 / dur
		a.GoodputN++
	}
	a.BytesAcked += int64(fs.BytesAcked)
	a.Retransmits += fs.Retransmits
	a.Timeouts += fs.Timeouts
	a.PacketsRecv += fs.PacketsRecv
	a.OutOfOrder += fs.OutOfOrder
	a.DupAcksSent += fs.DupAcksSent
	a.SumQueueDelay += int64(fs.SumQueueDelay)
	a.DelaySamples += fs.DelaySamples
}

// Clone returns an independent copy: counters and the Online moments
// copy exactly (merging into a zero accumulator is assignment), the
// sketch clone is bucket-for-bucket equal. Progress snapshots hand
// clones to observers so retaining or merging them never touches the
// live fold target.
func (st *StreamAgg) Clone() *StreamAgg {
	c := &StreamAgg{}
	c.Merge(st)
	return c
}

// Merge folds another run shard's aggregates into this one, so sweep
// workers can reduce per-shard StreamAggs without retaining records.
func (st *StreamAgg) Merge(o *StreamAgg) {
	if o == nil {
		return
	}
	for i := range st.Classes {
		st.Classes[i].Merge(&o.Classes[i])
	}
}
