package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"tlb/internal/netem"
	"tlb/internal/units"
)

// This file is the run-control side of the run-control/measurement
// split: a Session owns one scenario's execution — start, cooperative
// cancellation, periodic snapshots — while the measurement itself
// stays in the runners (sim.go, shard.go) and the observer stream
// (observer.go). Run, RunSweep and the sharded runner are all built on
// it.
//
// Determinism: the session drives the engine in bounded RunUntil
// windows instead of one call, which is behavior-neutral — RunUntil
// executes events <= its deadline and then only advances the clock, so
// slicing [0, MaxTime] into windows executes the identical event
// sequence and lands on the identical end time (events observe the
// clock only at their own timestamps). Cancellation and snapshots
// happen strictly *between* windows, on the session goroutine, reading
// copies — never from inside the event stream — so an attached
// observer cannot perturb results, and a cancel discards the partial
// run rather than returning a half-measured Result.

// ErrCanceled is the terminal error of a canceled session, wrapped
// with the scenario name; test with errors.Is.
//
//simlint:allow sharedstate(immutable error sentinel: written once at init, only ever compared via errors.Is)
var ErrCanceled = errors.New("run canceled")

// DefaultSnapshotEvery is the snapshot period (in simulation time)
// used when an observer is attached without an explicit period. It is
// also the cancellation-check granularity of every session, observer
// or not.
const DefaultSnapshotEvery = 10 * units.Millisecond

// NoSnapshots disables periodic snapshots for a session that still
// wants the terminal Done event (e.g. a sweep whose caller only
// consumes per-scenario completions).
const NoSnapshots units.Time = -1

// SessionOptions configure one Session.
type SessionOptions struct {
	// Observer, when non-nil, receives the session's progress stream
	// (see observer.go). Nil runs silently.
	Observer Observer
	// SnapshotEvery is the snapshot period in simulation time: 0 means
	// DefaultSnapshotEvery, NoSnapshots (or any negative value)
	// disables snapshots while keeping the Done event.
	SnapshotEvery units.Time
	// Clock supplies wall time for Elapsed and events/sec; nil means
	// WallClock(). Injected so tests and the serve layer control the
	// one wall-clock seam.
	Clock Clock
	// Index/Total stamp the session's position in a sweep onto its
	// events; a solo session defaults to 0 of 1.
	Index, Total int
}

// Session is the handle for one running scenario: Run executes it,
// Cancel (from any goroutine) stops it at the next event-batch
// boundary. A Session runs at most once.
type Session struct {
	sc   Scenario
	opts SessionOptions

	clock    Clock
	start    time.Duration
	canceled atomic.Bool

	// Progress counters, written by the runner goroutine between event
	// batches and copied into events; never read concurrently.
	flowsStarted int64
	flowsDone    int64
	events       uint64

	// Event-rate bookkeeping for EventsPerSec.
	lastEvents uint64
	lastWall   time.Duration
}

// NewSession prepares a session for one scenario. The scenario is
// copied; later mutation of the caller's value does not affect the
// session.
func NewSession(sc Scenario, opts SessionOptions) *Session {
	if opts.Clock == nil {
		opts.Clock = WallClock()
	}
	if opts.Total <= 0 {
		opts.Total = 1
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	return &Session{sc: sc, opts: opts, clock: opts.Clock}
}

// Cancel requests cooperative cancellation: the run stops at the next
// event-batch boundary, discards the partial result, and returns an
// error wrapping ErrCanceled. Canceling before Run prevents the
// simulation from being built at all. Safe from any goroutine, and
// after completion (where it is a no-op).
func (ss *Session) Cancel() { ss.canceled.Store(true) }

// Canceled reports whether Cancel has been called.
func (ss *Session) Canceled() bool { return ss.canceled.Load() }

// Scenario returns the session's (defaulted) scenario copy.
func (ss *Session) Scenario() *Scenario { return &ss.sc }

// Run executes the session's scenario and returns its measurements,
// exactly as the package-level Run does. Exactly one ProgressDone
// event is emitted per Run call, error or not.
func (ss *Session) Run() (*Result, error) {
	ss.start = ss.clock()
	ss.lastWall = ss.start
	sc := &ss.sc
	sc.withDefaults()
	if err := ss.validate(); err != nil {
		ss.emitDone(nil, err)
		return nil, err
	}
	if ss.Canceled() {
		err := ss.cancelErr()
		ss.emitDone(nil, err)
		return nil, err
	}
	var (
		res *Result
		err error
	)
	if sc.Shards > 1 {
		res, err = runSharded(ss)
	} else {
		res, err = runSingle(ss)
	}
	ss.emitDone(res, err)
	return res, err
}

// validate applies the shared scenario checks (shard-specific ones
// live in runSharded). The messages are part of the API surface —
// spec-layer tests match on them.
func (ss *Session) validate() error {
	sc := &ss.sc
	if sc.Balancer == nil {
		return fmt.Errorf("sim: scenario %q has no balancer", sc.Name)
	}
	if sc.FlowSource != nil && sc.FlowSourceNew != nil {
		return fmt.Errorf("sim: scenario %q sets both FlowSource and FlowSourceNew", sc.Name)
	}
	hasSource := sc.FlowSource != nil || sc.FlowSourceNew != nil
	if len(sc.Flows) == 0 && !hasSource {
		return fmt.Errorf("sim: scenario %q has no flows", sc.Name)
	}
	if len(sc.Flows) > 0 && hasSource {
		return fmt.Errorf("sim: scenario %q sets both Flows and FlowSource", sc.Name)
	}
	if sc.StreamStats {
		if sc.SampleShortPackets || sc.CollectTimeSeries {
			return fmt.Errorf("sim: scenario %q: StreamStats is incompatible with SampleShortPackets/CollectTimeSeries (they retain per-packet records)", sc.Name)
		}
		if sc.Replication != nil {
			return fmt.Errorf("sim: scenario %q: StreamStats is incompatible with Replication (racing copies need retained records)", sc.Name)
		}
	}
	if hasSource && sc.Replication != nil {
		return fmt.Errorf("sim: scenario %q: Replication needs a materialized Flows slice", sc.Name)
	}
	return nil
}

func (ss *Session) cancelErr() error {
	return fmt.Errorf("sim: scenario %q: %w", ss.sc.Name, ErrCanceled)
}

// observing reports whether periodic snapshots should be produced.
func (ss *Session) observing() bool {
	return ss.opts.Observer != nil && ss.opts.SnapshotEvery > 0
}

// window is the RunUntil slice width: the snapshot period when
// observing, the default cancellation-check granularity otherwise.
func (ss *Session) window() units.Time {
	if ss.opts.SnapshotEvery > 0 {
		return ss.opts.SnapshotEvery
	}
	return DefaultSnapshotEvery
}

// emit forwards one event to the observer, if any.
func (ss *Session) emit(ev ProgressEvent) {
	if ss.opts.Observer != nil {
		ss.opts.Observer.OnProgress(ev)
	}
}

// baseEvent stamps the fields every event of this session shares.
func (ss *Session) baseEvent(kind ProgressKind) ProgressEvent {
	return ProgressEvent{
		Kind:         kind,
		Index:        ss.opts.Index,
		Total:        ss.opts.Total,
		Scenario:     ss.sc.Name,
		Scheme:       ss.sc.SchemeName,
		Elapsed:      ss.clock() - ss.start,
		FlowsStarted: ss.flowsStarted,
		FlowsDone:    ss.flowsDone,
	}
}

// rate returns events/sec over the wall interval since the previous
// call, advancing the interval bookkeeping.
func (ss *Session) rate(events uint64) float64 {
	now := ss.clock()
	dE := events - ss.lastEvents
	dT := now - ss.lastWall
	ss.lastEvents, ss.lastWall = events, now
	if dT <= 0 {
		return 0
	}
	return float64(dE) / dT.Seconds()
}

// emitDone sends the session's terminal event.
func (ss *Session) emitDone(res *Result, err error) {
	if ss.opts.Observer == nil {
		return
	}
	ev := ss.baseEvent(ProgressDone)
	ev.Completed = 1
	ev.Err = err
	ev.Events = ss.events
	ev.EventsPerSec = ss.rate(ss.events)
	if res != nil {
		ev.SimTime = res.EndTime
		ev.Classes = resultClasses(res)
		ev.Uplinks = res.Uplinks
	}
	ss.emit(ev)
}

// resultClasses reduces a finished run to its per-class aggregates:
// the streaming aggregate's exact clone when the run streamed, a fresh
// fold over the retained records otherwise.
func resultClasses(res *Result) *StreamAgg {
	if res.Stream != nil {
		return res.Stream.Clone()
	}
	agg := &StreamAgg{}
	for _, fs := range res.Flows {
		agg.Fold(fs, fs.Size <= res.ShortThreshold, res.EndTime)
	}
	return agg
}

// portSnapshots copies the current totals of the balanced (uplink)
// ports — the same reduction the end-of-run Result performs, reused by
// mid-run snapshots, where reading the counters is safe because the
// engine is parked at a batch boundary.
func portSnapshots(ports []*netem.Port) []PortSnapshot {
	out := make([]PortSnapshot, 0, len(ports))
	for _, p := range ports {
		out = append(out, PortSnapshot{
			Label:    p.Label(),
			BusyTime: p.BusyTime(),
			Queue:    p.Queue().Stats(),
			Link:     p.Link(),
		})
	}
	return out
}
