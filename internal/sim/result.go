package sim

import (
	"tlb/internal/stats"
	"tlb/internal/transport"
	"tlb/internal/units"
)

// Class selects a flow subset for aggregation.
type Class int

// Flow classes.
const (
	AllFlows Class = iota
	ShortFlows
	LongFlows
)

func (r *Result) inClass(fs *transport.FlowStats, c Class) bool {
	switch c {
	case ShortFlows:
		return fs.Size <= r.ShortThreshold
	case LongFlows:
		return fs.Size > r.ShortThreshold
	default:
		return true
	}
}

// Each visits every flow record in the given class.
func (r *Result) Each(c Class, fn func(*transport.FlowStats)) {
	for _, fs := range r.Flows {
		if r.inClass(fs, c) {
			fn(fs)
		}
	}
}

// Count returns the number of flows in the class.
func (r *Result) Count(c Class) int {
	if r.Stream != nil {
		return int(r.Stream.Agg(c).Count)
	}
	n := 0
	r.Each(c, func(*transport.FlowStats) { n++ })
	return n
}

// CompletedCount returns how many flows in the class finished.
func (r *Result) CompletedCount(c Class) int {
	if r.Stream != nil {
		return int(r.Stream.Agg(c).Completed)
	}
	n := 0
	r.Each(c, func(fs *transport.FlowStats) {
		if fs.Done {
			n++
		}
	})
	return n
}

// FCTSample collects the completion times (seconds) of finished flows
// in the class. Under StreamStats no raw observations exist, so the
// returned sample is empty — use AFCT/FCTPercentile, which answer from
// the streaming aggregates.
func (r *Result) FCTSample(c Class) *stats.Sample {
	s := &stats.Sample{}
	if r.Stream != nil {
		return s
	}
	r.Each(c, func(fs *transport.FlowStats) {
		if fs.Done {
			s.Add(fs.FCT().Seconds())
		}
	})
	return s
}

// AFCT returns the mean completion time of finished flows in the class.
func (r *Result) AFCT(c Class) units.Time {
	if r.Stream != nil {
		return units.FromSeconds(r.Stream.Agg(c).FCT.Mean())
	}
	s := r.FCTSample(c)
	return units.FromSeconds(s.Mean())
}

// FCTPercentile returns the p-th percentile FCT of finished flows —
// exact from retained records, or within the quantile sketch's
// relative-error bound (stats.DefaultSketchAlpha) under StreamStats.
func (r *Result) FCTPercentile(c Class, p float64) units.Time {
	if r.Stream != nil {
		sk := r.Stream.Agg(c).Sketch
		if sk == nil {
			return 0
		}
		return units.FromSeconds(sk.Percentile(p))
	}
	return units.FromSeconds(r.FCTSample(c).Percentile(p))
}

// DeadlineMissRatio returns the fraction of deadline-carrying flows in
// the class that missed (finished late or unfinished past the
// deadline at run end).
func (r *Result) DeadlineMissRatio(c Class) float64 {
	if r.Stream != nil {
		return r.Stream.Agg(c).MissRatio()
	}
	total, missed := 0, 0
	r.Each(c, func(fs *transport.FlowStats) {
		if fs.Deadline == 0 {
			return
		}
		total++
		if fs.MissedDeadline(r.EndTime) {
			missed++
		}
	})
	if total == 0 {
		return 0
	}
	return float64(missed) / float64(total)
}

// Goodput returns the class's aggregate goodput: acknowledged payload
// bytes divided by each flow's active time, averaged per flow. This is
// the "throughput of long flows" metric of Fig. 10d/11d.
func (r *Result) Goodput(c Class) units.Bandwidth {
	if r.Stream != nil {
		return units.Bandwidth(r.Stream.Agg(c).MeanGoodput())
	}
	var sum float64
	n := 0
	r.Each(c, func(fs *transport.FlowStats) {
		end := fs.End
		if !fs.Done {
			end = r.EndTime
		}
		dur := (end - fs.Start).Seconds()
		if dur <= 0 || fs.BytesAcked <= 0 {
			return
		}
		sum += float64(fs.BytesAcked) * 8 / dur
		n++
	})
	if n == 0 {
		return 0
	}
	return units.Bandwidth(sum / float64(n))
}

// AggregateGoodput returns total acknowledged bytes of the class over
// the whole run duration, as a single rate.
func (r *Result) AggregateGoodput(c Class) units.Bandwidth {
	var bytes units.Bytes
	if r.Stream != nil {
		bytes = units.Bytes(r.Stream.Agg(c).BytesAcked)
	} else {
		r.Each(c, func(fs *transport.FlowStats) { bytes += fs.BytesAcked })
	}
	dur := r.EndTime.Seconds()
	if dur <= 0 {
		return 0
	}
	//simlint:allow dimcheck(bytes*8/seconds is bits-per-second, the defining relation of Bandwidth)
	return units.Bandwidth(float64(bytes) * 8 / dur)
}

// UplinkUtilization returns mean busy fraction across all leaf uplinks
// — the link-utilization metric of Fig. 4a.
func (r *Result) UplinkUtilization() float64 {
	if len(r.Uplinks) == 0 || r.EndTime <= 0 {
		return 0
	}
	var sum float64
	for _, p := range r.Uplinks {
		sum += float64(p.BusyTime) / float64(r.EndTime)
	}
	return sum / float64(len(r.Uplinks))
}

// TotalRetransmits sums retransmissions in the class.
func (r *Result) TotalRetransmits(c Class) int64 {
	if r.Stream != nil {
		return r.Stream.Agg(c).Retransmits
	}
	var n int64
	r.Each(c, func(fs *transport.FlowStats) { n += fs.Retransmits })
	return n
}

// TotalTimeouts sums RTO events in the class.
func (r *Result) TotalTimeouts(c Class) int64 {
	if r.Stream != nil {
		return r.Stream.Agg(c).Timeouts
	}
	var n int64
	r.Each(c, func(fs *transport.FlowStats) { n += fs.Timeouts })
	return n
}

// OutOfOrderRatio returns out-of-order arrivals over received packets
// for the class — Fig. 4b's reordering metric.
func (r *Result) OutOfOrderRatio(c Class) float64 {
	var ooo, recv int64
	if r.Stream != nil {
		a := r.Stream.Agg(c)
		ooo, recv = a.OutOfOrder, a.PacketsRecv
	} else {
		r.Each(c, func(fs *transport.FlowStats) {
			ooo += fs.OutOfOrder
			recv += fs.PacketsRecv
		})
	}
	if recv == 0 {
		return 0
	}
	return float64(ooo) / float64(recv)
}

// DupAckRatio returns duplicate ACKs over received data packets for
// the class — Fig. 3b's metric.
func (r *Result) DupAckRatio(c Class) float64 {
	var dup, recv int64
	if r.Stream != nil {
		a := r.Stream.Agg(c)
		dup, recv = a.DupAcksSent, a.PacketsRecv
	} else {
		r.Each(c, func(fs *transport.FlowStats) {
			dup += fs.DupAcksSent
			recv += fs.PacketsRecv
		})
	}
	if recv == 0 {
		return 0
	}
	return float64(dup) / float64(recv)
}

// MeanQueueDelay returns the mean per-packet queueing delay of the
// class's received data packets.
func (r *Result) MeanQueueDelay(c Class) units.Time {
	var sum units.Time
	var n int64
	if r.Stream != nil {
		a := r.Stream.Agg(c)
		sum, n = units.Time(a.SumQueueDelay), a.DelaySamples
	} else {
		r.Each(c, func(fs *transport.FlowStats) {
			sum += fs.SumQueueDelay
			n += fs.DelaySamples
		})
	}
	if n == 0 {
		return 0
	}
	return sum / units.Time(n)
}
