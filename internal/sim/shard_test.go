package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/faults"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/stats"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// xorshift is a tiny deterministic generator for randomized
// differential tests — no global rand state, reproducible per seed.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// randomFlows builds a mixed workload with both intra- and cross-shard
// traffic over the given host count.
func randomFlows(seed uint64, hosts, n int) []workload.Flow {
	x := xorshift(seed*2654435761 + 1)
	flows := make([]workload.Flow, 0, n)
	var start units.Time
	for i := 0; i < n; i++ {
		src := x.intn(hosts)
		dst := x.intn(hosts)
		if dst == src {
			dst = (src + 1 + x.intn(hosts-1)) % hosts
		}
		size := units.Bytes(2000 + x.intn(300_000))
		flows = append(flows, workload.Flow{Src: src, Dst: dst, Size: size, Start: start})
		start += units.Time(x.intn(200)) * units.Microsecond
	}
	return flows
}

// runShardPair runs the scenario single-engine and with the given
// shard count.
func runShardPair(t *testing.T, sc Scenario, shards int) (single, sharded *Result) {
	t.Helper()
	sc.Shards = 1
	single, err := Run(sc)
	if err != nil {
		t.Fatalf("single-engine run: %v", err)
	}
	sc.Shards = shards
	sharded, err = Run(sc)
	if err != nil {
		t.Fatalf("sharded run (%d): %v", shards, err)
	}
	return single, sharded
}

// assertFlowsEqual compares the per-flow records field for field.
func assertFlowsEqual(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(a.Flows), len(b.Flows))
	}
	for i := range a.Flows {
		if *a.Flows[i] != *b.Flows[i] {
			t.Fatalf("flow %d records differ:\nsingle:  %+v\nsharded: %+v", i, *a.Flows[i], *b.Flows[i])
		}
	}
}

// assertSeriesEqual compares a time series bucket for bucket.
func assertSeriesEqual(t *testing.T, name string, a, b *stats.TimeSeries) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch", name)
	}
	if a == nil {
		return
	}
	if !reflect.DeepEqual(a.Sums(), b.Sums()) || !reflect.DeepEqual(a.Means(), b.Means()) {
		t.Fatalf("%s: series differ", name)
	}
	an, as := a.Overflow()
	bn, bs := b.Overflow()
	if an != bn || as != bs {
		t.Fatalf("%s: overflow differs: (%d,%g) vs (%d,%g)", name, an, as, bn, bs)
	}
}

// assertResultsExact demands full byte-identity: flows, counters, port
// snapshots, samples and series. Valid for MaxTime-bounded runs, where
// every shard executes exactly the events the single engine would.
func assertResultsExact(t *testing.T, a, b *Result) {
	t.Helper()
	assertFlowsEqual(t, a, b)
	if a.EndTime != b.EndTime {
		t.Fatalf("EndTime differs: %v vs %v", a.EndTime, b.EndTime)
	}
	if a.Drops != b.Drops || a.FaultDrops != b.FaultDrops {
		t.Fatalf("drops differ: (%d,%d) vs (%d,%d)", a.Drops, a.FaultDrops, b.Drops, b.FaultDrops)
	}
	if len(a.Uplinks) != len(b.Uplinks) {
		t.Fatalf("uplink counts differ: %d vs %d", len(a.Uplinks), len(b.Uplinks))
	}
	for i := range a.Uplinks {
		if a.Uplinks[i] != b.Uplinks[i] {
			t.Fatalf("uplink %d differs:\nsingle:  %+v\nsharded: %+v", i, a.Uplinks[i], b.Uplinks[i])
		}
	}
	if !reflect.DeepEqual(a.ShortSamples, b.ShortSamples) {
		t.Fatalf("short samples differ: %d vs %d records", len(a.ShortSamples), len(b.ShortSamples))
	}
	assertSeriesEqual(t, "ShortQueueDelayUs", a.ShortQueueDelayUs, b.ShortQueueDelayUs)
	assertSeriesEqual(t, "ShortOOORatio", a.ShortOOORatio, b.ShortOOORatio)
	assertSeriesEqual(t, "LongOOORatio", a.LongOOORatio, b.LongOOORatio)
	assertSeriesEqual(t, "ShortGoodputBytes", a.ShortGoodputBytes, b.ShortGoodputBytes)
	assertSeriesEqual(t, "LongGoodputBytes", a.LongGoodputBytes, b.LongGoodputBytes)
}

// TestShardedExactLeafSpine is the randomized differential test:
// MaxTime-bounded runs on the small leaf-spine fabric must be fully
// byte-identical at every shard count, across seeds and schemes.
func TestShardedExactLeafSpine(t *testing.T) {
	schemes := []struct {
		name string
		f    func() lb.Factory
	}{
		{"ecmp", lb.ECMP},
		{"rps", lb.RPS},
	}
	for _, scheme := range schemes {
		for seed := uint64(1); seed <= 3; seed++ {
			scheme, seed := scheme, seed
			t.Run(fmt.Sprintf("%s-seed%d", scheme.name, seed), func(t *testing.T) {
				t.Parallel()
				sc := Scenario{
					Name:               "shard-exact",
					Topology:           smallTopo(),
					Transport:          transport.DefaultConfig(),
					Balancer:           scheme.f(),
					SchemeName:         scheme.name,
					Seed:               seed,
					Flows:              randomFlows(seed, 8, 30),
					MaxTime:            20 * units.Millisecond,
					SampleShortPackets: true,
					CollectTimeSeries:  true,
				}
				for _, n := range []int{2, 4} {
					single, sharded := runShardPair(t, sc, n)
					assertResultsExact(t, single, sharded)
				}
			})
		}
	}
}

// TestShardedExactFatTree runs the randomized differential on a k=4
// fat-tree — 4 pods, real 4-way sharding, agg<->core boundaries —
// across seeds and schemes. The per-packet-randomized schemes (rps,
// presto) are the sensitive ones: a single event ordered differently
// anywhere rotates a leaf's RNG draw stream and diverges the whole
// run, which is how the finite-latency teardown rule was pinned down.
func TestShardedExactFatTree(t *testing.T) {
	ftCfg := topology.FatTreeConfig{
		K:          4,
		HostLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink: netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:      netem.QueueConfig{Capacity: 128, ECNThreshold: 20},
	}
	schemes := []struct {
		name string
		f    func() lb.Factory
	}{
		{"ecmp", lb.ECMP},
		{"rps", lb.RPS},
		{"presto", func() lb.Factory { return lb.Presto(64 * units.KB) }},
	}
	for _, scheme := range schemes {
		for seed := uint64(1); seed <= 3; seed++ {
			scheme, seed := scheme, seed
			t.Run(fmt.Sprintf("%s-seed%d", scheme.name, seed), func(t *testing.T) {
				t.Parallel()
				sc := Scenario{
					Name:       "shard-fattree",
					Transport:  transport.DefaultConfig(),
					Balancer:   scheme.f(),
					SchemeName: scheme.name,
					Seed:       seed,
					Flows:      randomFlows(seed+100, 16, 40),
					MaxTime:    15 * units.Millisecond,
					BuildNetwork: func(s *eventsim.Sim, f lb.Factory, rng *eventsim.RNG, deliver topology.DeliverFunc) (topology.Network, error) {
						return topology.NewFatTree(s, ftCfg, f, rng, deliver)
					},
				}
				for _, n := range []int{2, 4} {
					single, sharded := runShardPair(t, sc, n)
					assertResultsExact(t, single, sharded)
				}
			})
		}
	}
}

// TestShardedExactWithFaults exercises the per-shard ownership-split
// fault install: flap and de-rate events on boundary and non-boundary
// links, MaxTime-bounded for full identity.
func TestShardedExactWithFaults(t *testing.T) {
	t.Parallel()
	sched := faults.Flap(0, 0, 2*units.Millisecond, units.Millisecond, 500*units.Microsecond, 3)
	sched = append(sched, faults.DeRate(units.Millisecond, 1, 2, units.Gbps/2))
	sc := Scenario{
		Name:       "shard-faults",
		Topology:   smallTopo(),
		Transport:  transport.DefaultConfig(),
		Balancer:   lb.ECMP(),
		SchemeName: "ecmp",
		Seed:       9,
		Flows:      randomFlows(9, 8, 30),
		MaxTime:    20 * units.Millisecond,
		Faults:     sched,
	}
	single, sharded := runShardPair(t, sc, 2)
	assertResultsExact(t, single, sharded)
}

// TestShardedStopWhenDone checks the stop protocol: flow records and
// the end time (the last completion) must match the single engine.
// Port counters may legitimately drift in the final window (shards
// finish it; the single engine stops mid-window), so they are not
// compared here — the MaxTime tests pin them.
func TestShardedStopWhenDone(t *testing.T) {
	t.Parallel()
	for seed := uint64(1); seed <= 3; seed++ {
		sc := Scenario{
			Name:         "shard-stop",
			Topology:     smallTopo(),
			Transport:    transport.DefaultConfig(),
			Balancer:     lb.RPS(),
			SchemeName:   "rps",
			Seed:         seed,
			Flows:        randomFlows(seed+7, 8, 25),
			StopWhenDone: true,
			MaxTime:      5 * units.Second,
		}
		single, sharded := runShardPair(t, sc, 2)
		assertFlowsEqual(t, single, sharded)
		if single.EndTime != sharded.EndTime {
			t.Fatalf("seed %d: EndTime differs: %v vs %v", seed, single.EndTime, sharded.EndTime)
		}
		for i := range single.Flows {
			if !single.Flows[i].Done {
				t.Fatalf("seed %d: flow %d unfinished in a StopWhenDone run", seed, i)
			}
		}
	}
}

// TestShardedStreamStats checks the streaming aggregates: counters and
// sketch-backed percentiles merge exactly; the Welford mean folds in a
// different order across shard counts, so it is compared within a
// float-rounding tolerance.
func TestShardedStreamStats(t *testing.T) {
	t.Parallel()
	sc := Scenario{
		Name:        "shard-stream",
		Topology:    smallTopo(),
		Transport:   transport.DefaultConfig(),
		Balancer:    lb.ECMP(),
		SchemeName:  "ecmp",
		Seed:        4,
		Flows:       randomFlows(4, 8, 40),
		MaxTime:     20 * units.Millisecond,
		StreamStats: true,
	}
	single, sharded := runShardPair(t, sc, 2)
	for c := range single.Stream.Classes {
		a, b := &single.Stream.Classes[c], &sharded.Stream.Classes[c]
		if a.Count != b.Count || a.Completed != b.Completed ||
			a.DeadlineTotal != b.DeadlineTotal || a.DeadlineMissed != b.DeadlineMissed ||
			a.BytesAcked != b.BytesAcked || a.Retransmits != b.Retransmits ||
			a.Timeouts != b.Timeouts || a.PacketsRecv != b.PacketsRecv ||
			a.OutOfOrder != b.OutOfOrder || a.DupAcksSent != b.DupAcksSent ||
			a.SumQueueDelay != b.SumQueueDelay || a.DelaySamples != b.DelaySamples ||
			a.GoodputN != b.GoodputN {
			t.Fatalf("class %d counters differ:\nsingle:  %+v\nsharded: %+v", c, a, b)
		}
		if d := math.Abs(a.GoodputSum - b.GoodputSum); d > 1e-6*math.Abs(a.GoodputSum)+1e-9 {
			t.Fatalf("class %d GoodputSum differs: %g vs %g", c, a.GoodputSum, b.GoodputSum)
		}
	}
	for _, cl := range []Class{AllFlows, ShortFlows, LongFlows} {
		af, bf := single.AFCT(cl), sharded.AFCT(cl)
		if d := math.Abs(float64(af - bf)); d > 1e-6*math.Abs(float64(af)) {
			t.Fatalf("class %v AFCT differs: %v vs %v", cl, af, bf)
		}
	}
}

// TestShardedLazySource checks the FlowSourceNew path: every shard
// pumps its own copy of the source, and the result matches the single
// engine consuming one copy.
func TestShardedLazySource(t *testing.T) {
	t.Parallel()
	mkSource := func() workload.Source {
		return workload.NewSliceSource(randomFlows(12, 8, 35))
	}
	sc := Scenario{
		Name:          "shard-lazy",
		Topology:      smallTopo(),
		Transport:     transport.DefaultConfig(),
		Balancer:      lb.ECMP(),
		SchemeName:    "ecmp",
		Seed:          12,
		FlowSourceNew: mkSource,
		MaxTime:       20 * units.Millisecond,
	}
	single, sharded := runShardPair(t, sc, 2)
	assertResultsExact(t, single, sharded)
}

// TestShardedRejections pins the clear-error contract for scenario
// knobs that cannot shard.
func TestShardedRejections(t *testing.T) {
	t.Parallel()
	base := Scenario{
		Name:       "shard-reject",
		Topology:   smallTopo(),
		Transport:  transport.DefaultConfig(),
		Balancer:   lb.ECMP(),
		SchemeName: "ecmp",
		Seed:       1,
		Flows:      randomFlows(1, 8, 4),
		MaxTime:    units.Millisecond,
		Shards:     2,
	}
	rep := base
	rep.Replication = &ReplicationConfig{Threshold: 100 * units.KB, Copies: 2}
	if _, err := Run(rep); err == nil {
		t.Fatal("Replication under Shards > 1 did not error")
	}
	src := base
	src.Flows = nil
	src.FlowSource = workload.NewSliceSource(randomFlows(1, 8, 4))
	if _, err := Run(src); err == nil {
		t.Fatal("one-shot FlowSource under Shards > 1 did not error")
	}
}

// TestShardedClampFallsBack checks that a shard count above the
// topology's parallelism clamps (2 leaves -> 2 shards) and that a
// single-shard clamp falls back to the plain path.
func TestShardedClampFallsBack(t *testing.T) {
	t.Parallel()
	topo := smallTopo()
	topo.Leaves = 1
	topo.Spines = 2
	sc := Scenario{
		Name:       "shard-clamp",
		Topology:   topo,
		Transport:  transport.DefaultConfig(),
		Balancer:   lb.ECMP(),
		SchemeName: "ecmp",
		Seed:       1,
		Flows: []workload.Flow{
			{Src: 0, Dst: 1, Size: 10 * units.KB, Start: 0},
		},
		StopWhenDone: true,
		MaxTime:      units.Second,
		Shards:       8,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("clamped run: %v", err)
	}
	if got := res.CompletedCount(AllFlows); got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
}
