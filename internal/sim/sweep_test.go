package sim

import (
	"errors"
	"strings"
	"testing"

	"tlb/internal/lb"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

func sweepScenario(name string, seed uint64) Scenario {
	return Scenario{
		Name: name, Topology: smallTopo(), Transport: transport.DefaultConfig(),
		Balancer: lb.ECMP(), SchemeName: "ecmp", Seed: seed,
		Flows: []workload.Flow{
			{Src: 0, Dst: 4, Size: 40 * units.KB, Start: 0},
		},
		StopWhenDone: true, MaxTime: 10 * units.Second,
	}
}

// TestRunSweepAggregatesAllErrors: a batch with several broken
// scenarios must report every failure (index and name), not just the
// first, while still returning the results that did complete.
func TestRunSweepAggregatesAllErrors(t *testing.T) {
	bad1 := sweepScenario("bad-one", 1)
	bad1.Flows = nil // "has no flows"
	bad2 := sweepScenario("bad-two", 2)
	bad2.Balancer = nil // "has no balancer"
	scenarios := []Scenario{sweepScenario("good-a", 3), bad1, sweepScenario("good-b", 4), bad2}

	results, err := RunAll(scenarios, 4)
	if err == nil {
		t.Fatal("broken batch returned nil error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SweepError", err)
	}
	if len(se.Failures) != 2 {
		t.Fatalf("%d failures reported, want 2: %v", len(se.Failures), err)
	}
	if se.Failures[0].Index != 1 || se.Failures[0].Scenario != "bad-one" {
		t.Fatalf("first failure = %+v", se.Failures[0])
	}
	if se.Failures[1].Index != 3 || se.Failures[1].Scenario != "bad-two" {
		t.Fatalf("second failure = %+v", se.Failures[1])
	}
	for _, name := range []string{"bad-one", "bad-two", "no flows", "no balancer"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error message missing %q: %v", name, err)
		}
	}
	// Completed scenarios are still delivered alongside the error.
	if results[0] == nil || results[2] == nil {
		t.Fatal("successful results dropped from a partially failed sweep")
	}
	if results[1] != nil || results[3] != nil {
		t.Fatal("failed scenarios produced results")
	}
}

// TestRunSweepProgress: the progress callback fires once per scenario
// with a monotonically increasing Completed counter and per-scenario
// metadata.
func TestRunSweepProgress(t *testing.T) {
	scenarios := []Scenario{
		sweepScenario("p0", 1), sweepScenario("p1", 2), sweepScenario("p2", 3),
	}
	var seen []SweepProgress
	_, err := RunSweep(scenarios, SweepOptions{
		Workers: 2,
		//simlint:allow sharedstate(RunSweep serializes Progress calls under its mutex)
		Progress: func(p SweepProgress) { seen = append(seen, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(scenarios) {
		t.Fatalf("%d progress calls, want %d", len(seen), len(scenarios))
	}
	indices := map[int]bool{}
	for i, p := range seen {
		if p.Completed != i+1 || p.Total != len(scenarios) {
			t.Fatalf("progress %d: completed %d/%d", i, p.Completed, p.Total)
		}
		if p.Err != nil {
			t.Fatalf("unexpected failure: %v", p.Err)
		}
		if p.Scenario != scenarios[p.Index].Name {
			t.Fatalf("progress name %q for index %d", p.Scenario, p.Index)
		}
		indices[p.Index] = true
	}
	if len(indices) != len(scenarios) {
		t.Fatalf("progress covered %d distinct scenarios, want %d", len(indices), len(scenarios))
	}
}

// TestRunSweepEmptyBatch: a zero-length batch is a no-op, not a hang.
func TestRunSweepEmptyBatch(t *testing.T) {
	results, err := RunAll(nil, 4)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(results))
	}
}
