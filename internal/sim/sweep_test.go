package sim

import (
	"errors"
	"strings"
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

func sweepScenario(name string, seed uint64) Scenario {
	return Scenario{
		Name: name, Topology: smallTopo(), Transport: transport.DefaultConfig(),
		Balancer: lb.ECMP(), SchemeName: "ecmp", Seed: seed,
		Flows: []workload.Flow{
			{Src: 0, Dst: 4, Size: 40 * units.KB, Start: 0},
		},
		StopWhenDone: true, MaxTime: 10 * units.Second,
	}
}

// TestRunSweepAggregatesAllErrors: a batch with several broken
// scenarios must report every failure (index and name), not just the
// first, while still returning the results that did complete.
func TestRunSweepAggregatesAllErrors(t *testing.T) {
	bad1 := sweepScenario("bad-one", 1)
	bad1.Flows = nil // "has no flows"
	bad2 := sweepScenario("bad-two", 2)
	bad2.Balancer = nil // "has no balancer"
	scenarios := []Scenario{sweepScenario("good-a", 3), bad1, sweepScenario("good-b", 4), bad2}

	results, err := RunAll(scenarios, 4)
	if err == nil {
		t.Fatal("broken batch returned nil error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SweepError", err)
	}
	if len(se.Failures) != 2 {
		t.Fatalf("%d failures reported, want 2: %v", len(se.Failures), err)
	}
	if se.Failures[0].Index != 1 || se.Failures[0].Scenario != "bad-one" {
		t.Fatalf("first failure = %+v", se.Failures[0])
	}
	if se.Failures[1].Index != 3 || se.Failures[1].Scenario != "bad-two" {
		t.Fatalf("second failure = %+v", se.Failures[1])
	}
	for _, name := range []string{"bad-one", "bad-two", "no flows", "no balancer"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error message missing %q: %v", name, err)
		}
	}
	// Completed scenarios are still delivered alongside the error.
	if results[0] == nil || results[2] == nil {
		t.Fatal("successful results dropped from a partially failed sweep")
	}
	if results[1] != nil || results[3] != nil {
		t.Fatal("failed scenarios produced results")
	}
}

// TestRunSweepProgress: the progress callback fires once per scenario
// with a monotonically increasing Completed counter and per-scenario
// metadata.
func TestRunSweepProgress(t *testing.T) {
	scenarios := []Scenario{
		sweepScenario("p0", 1), sweepScenario("p1", 2), sweepScenario("p2", 3),
	}
	var seen []SweepProgress
	_, err := RunSweep(scenarios, SweepOptions{
		Workers: 2,
		//simlint:allow sharedstate(RunSweep serializes Progress calls under its mutex)
		Progress: func(p SweepProgress) { seen = append(seen, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(scenarios) {
		t.Fatalf("%d progress calls, want %d", len(seen), len(scenarios))
	}
	indices := map[int]bool{}
	for i, p := range seen {
		if p.Completed != i+1 || p.Total != len(scenarios) {
			t.Fatalf("progress %d: completed %d/%d", i, p.Completed, p.Total)
		}
		if p.Err != nil {
			t.Fatalf("unexpected failure: %v", p.Err)
		}
		if p.Scenario != scenarios[p.Index].Name {
			t.Fatalf("progress name %q for index %d", p.Scenario, p.Index)
		}
		indices[p.Index] = true
	}
	if len(indices) != len(scenarios) {
		t.Fatalf("progress covered %d distinct scenarios, want %d", len(indices), len(scenarios))
	}
}

// TestRunSweepEmptyBatch: a zero-length batch is a no-op, not a hang.
func TestRunSweepEmptyBatch(t *testing.T) {
	results, err := RunAll(nil, 4)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(results))
	}
}

// TestRunSweepRecoversPanickingScenario pins the worker-pool bugfix:
// a panic inside a scenario's Run used to kill its worker, leaving the
// unbuffered job dispatch blocked forever. With Workers:1 and the
// panicking scenario first, this test deadlocked before the recover —
// now the panic becomes that scenario's SweepFailure and the rest of
// the batch still runs.
func TestRunSweepRecoversPanickingScenario(t *testing.T) {
	boom := sweepScenario("boom", 1)
	boom.Balancer = func(s *eventsim.Sim, rng *eventsim.RNG, ports []*netem.Port) lb.Balancer {
		panic("factory exploded")
	}
	scenarios := []Scenario{boom, sweepScenario("after-a", 2), sweepScenario("after-b", 3)}

	var seen []SweepProgress
	results, err := RunSweep(scenarios, SweepOptions{
		Workers: 1,
		//simlint:allow sharedstate(RunSweep serializes Progress calls under its mutex)
		Progress: func(p SweepProgress) { seen = append(seen, p) },
	})
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SweepError", err)
	}
	if len(se.Failures) != 1 || se.Failures[0].Index != 0 {
		t.Fatalf("failures = %+v, want exactly the panicking scenario", se.Failures)
	}
	for _, want := range []string{"boom", "panicked", "factory exploded"} {
		if !strings.Contains(se.Failures[0].Err.Error(), want) {
			t.Fatalf("panic failure missing %q: %v", want, se.Failures[0].Err)
		}
	}
	if results[0] != nil || results[1] == nil || results[2] == nil {
		t.Fatal("scenarios after the panic did not complete")
	}
	// The synthesized terminal event keeps the one-Done-per-scenario
	// invariant: the progress adapter still fires for all three.
	if len(seen) != 3 {
		t.Fatalf("%d progress calls, want 3", len(seen))
	}
	if seen[0].Index != 0 || seen[0].Err == nil {
		t.Fatalf("first progress call = %+v, want the panic failure", seen[0])
	}
}

// TestSweepErrorTraversal: errors.Is and errors.As reach the
// individual failures of a multi-failure sweep through
// SweepError.Unwrap.
func TestSweepErrorTraversal(t *testing.T) {
	bad1 := sweepScenario("bad-one", 1)
	bad1.Flows = nil
	bad2 := sweepScenario("bad-two", 2)
	bad2.Balancer = nil
	_, err := RunAll([]Scenario{bad1, sweepScenario("ok", 3), bad2}, 2)

	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("errors.As found no *SweepError in %T", err)
	}
	unwrapped := se.Unwrap()
	if len(unwrapped) != 2 {
		t.Fatalf("Unwrap returned %d errors, want 2", len(unwrapped))
	}
	for i, f := range se.Failures {
		if unwrapped[i] != f.Err {
			t.Fatalf("Unwrap()[%d] is not Failures[%d].Err", i, i)
		}
		// errors.Is must find each leaf through the multi-error Unwrap.
		if !errors.Is(err, f.Err) {
			t.Fatalf("errors.Is(err, Failures[%d].Err) = false", i)
		}
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatal("errors.Is matched ErrCanceled on a non-canceled sweep")
	}
}

// TestSweepCancelBeforeRun: canceling an unstarted sweep fails every
// scenario with ErrCanceled without running any of them.
func TestSweepCancelBeforeRun(t *testing.T) {
	sw := NewSweep([]Scenario{sweepScenario("c0", 1), sweepScenario("c1", 2)}, SweepOptions{Workers: 2})
	sw.Cancel()
	results, err := sw.Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled through the SweepError", err)
	}
	var se *SweepError
	if !errors.As(err, &se) || len(se.Failures) != 2 {
		t.Fatalf("err = %v, want both scenarios failed", err)
	}
	for i, res := range results {
		if res != nil {
			t.Fatalf("canceled scenario %d produced a result", i)
		}
	}
}

// TestSweepCancelMidRun: Cancel issued from inside an observer
// callback (the serve layer's shape) stops the running session at its
// next batch boundary and fails the not-yet-started scenarios without
// building them.
func TestSweepCancelMidRun(t *testing.T) {
	long := sessionScenario(1)
	long.Name = "long"
	scenarios := []Scenario{long, sweepScenario("later-a", 2), sweepScenario("later-b", 3)}

	var sw *Sweep
	var dones int
	obs := ObserverFunc(func(ev ProgressEvent) {
		if ev.Kind == ProgressSnapshot {
			sw.Cancel()
		}
		if ev.Kind == ProgressDone {
			dones++
		}
	})
	sw = NewSweep(scenarios, SweepOptions{
		Workers:       1,
		Observer:      obs,
		SnapshotEvery: 100 * units.Microsecond,
		Clock:         fakeClock(),
	})
	results, err := sw.Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var se *SweepError
	if !errors.As(err, &se) || len(se.Failures) != 3 {
		t.Fatalf("err = %v, want all three scenarios canceled", err)
	}
	for i, res := range results {
		if res != nil {
			t.Fatalf("canceled sweep retained a result at %d", i)
		}
	}
	if dones != 3 {
		t.Fatalf("%d Done events, want one per scenario", dones)
	}
}
