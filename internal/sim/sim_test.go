package sim

import (
	"testing"

	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/topology"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// smallTopo is a 2-leaf, 4-spine fabric with 4 hosts per leaf at
// 1 Gbps — small enough for fast tests, large enough to exercise
// multipath.
func smallTopo() topology.Config {
	return topology.Config{
		Leaves:       2,
		Spines:       4,
		HostsPerLeaf: 4,
		HostLink:     netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:        netem.QueueConfig{Capacity: 256, ECNThreshold: 20},
	}
}

func TestSingleFlowCompletes(t *testing.T) {
	sc := Scenario{
		Name:       "single",
		Topology:   smallTopo(),
		Transport:  transport.DefaultConfig(),
		Balancer:   lb.ECMP(),
		SchemeName: "ecmp",
		Seed:       1,
		Flows: []workload.Flow{
			{Src: 0, Dst: 4, Size: 100 * units.KB, Start: 0},
		},
		StopWhenDone: true,
		MaxTime:      units.Second,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CompletedCount(AllFlows); got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
	fct := res.Flows[0].FCT()
	if fct <= 0 {
		t.Fatalf("non-positive FCT %v", fct)
	}
	// 100KB at 1Gbps is 800µs of serialization; with slow start from
	// 2 segments it takes ~7 RTT rounds. Anything beyond 20ms signals
	// timeouts or scheduling bugs.
	if fct > 20*units.Millisecond {
		t.Fatalf("FCT %v unreasonably large", fct)
	}
	if res.Drops != 0 {
		t.Fatalf("unexpected drops: %d", res.Drops)
	}
}

func TestAllSchemesCompleteMixedWorkload(t *testing.T) {
	schemes := []struct {
		name string
		f    lb.Factory
	}{
		{"ecmp", lb.ECMP()},
		{"rps", lb.RPS()},
		{"presto", lb.Presto(0)},
		{"letflow", lb.LetFlow(0)},
		{"drill", lb.DRILL(2, 1)},
		{"packet-sq", lb.PacketShortestQueue()},
	}
	for _, scheme := range schemes {
		scheme := scheme
		t.Run(scheme.name, func(t *testing.T) {
			t.Parallel()
			rngFlows := []workload.Flow{}
			// 20 short flows and 2 long flows, all leaf0 -> leaf1.
			for i := 0; i < 20; i++ {
				rngFlows = append(rngFlows, workload.Flow{
					Src: i % 4, Dst: 4 + (i % 4), Size: 30 * units.KB,
					Start: units.Time(i) * 50 * units.Microsecond,
				})
			}
			for i := 0; i < 2; i++ {
				rngFlows = append(rngFlows, workload.Flow{
					Src: i, Dst: 4 + i, Size: 2 * units.MB, Start: 0,
				})
			}
			sc := Scenario{
				Name:         "mixed-" + scheme.name,
				Topology:     smallTopo(),
				Transport:    transport.DefaultConfig(),
				Balancer:     scheme.f,
				SchemeName:   scheme.name,
				Seed:         7,
				Flows:        rngFlows,
				StopWhenDone: true,
				MaxTime:      5 * units.Second,
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.CompletedCount(AllFlows), len(rngFlows); got != want {
				t.Fatalf("completed = %d, want %d", got, want)
			}
			if res.AFCT(ShortFlows) <= 0 {
				t.Fatal("zero short AFCT")
			}
			if res.Goodput(LongFlows) <= 0 {
				t.Fatal("zero long goodput")
			}
		})
	}
}

func TestConservationNoDropsMeansAllBytesArrive(t *testing.T) {
	sc := Scenario{
		Name:       "conservation",
		Topology:   smallTopo(),
		Transport:  transport.DefaultConfig(),
		Balancer:   lb.ECMP(),
		SchemeName: "ecmp",
		Seed:       3,
		Flows: []workload.Flow{
			{Src: 0, Dst: 5, Size: 500 * units.KB, Start: 0},
			{Src: 1, Dst: 6, Size: 50 * units.KB, Start: 10 * units.Microsecond},
		},
		StopWhenDone: true,
		MaxTime:      5 * units.Second,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range res.Flows {
		if !fs.Done {
			t.Fatalf("flow %v unfinished", fs.ID)
		}
		if fs.BytesAcked != fs.Size {
			t.Fatalf("flow %v acked %d of %d bytes", fs.ID, fs.BytesAcked, fs.Size)
		}
		if res.Drops == 0 && fs.Retransmits != 0 {
			t.Fatalf("flow %v retransmitted %d with no drops", fs.ID, fs.Retransmits)
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Result {
		flows := []workload.Flow{}
		for i := 0; i < 10; i++ {
			flows = append(flows, workload.Flow{
				Src: i % 4, Dst: 4 + (i+1)%4, Size: units.Bytes(10000 + i*1000),
				Start: units.Time(i) * 20 * units.Microsecond,
			})
		}
		res, err := Run(Scenario{
			Name: "det", Topology: smallTopo(), Transport: transport.DefaultConfig(),
			Balancer: lb.RPS(), SchemeName: "rps", Seed: 42,
			Flows: flows, StopWhenDone: true, MaxTime: units.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.EndTime != b.EndTime {
		t.Fatalf("end times differ: %v vs %v", a.EndTime, b.EndTime)
	}
	for i := range a.Flows {
		if a.Flows[i].FCT() != b.Flows[i].FCT() {
			t.Fatalf("flow %d FCT differs: %v vs %v", i, a.Flows[i].FCT(), b.Flows[i].FCT())
		}
	}
}

// transportDefault returns the shared transport config for tests.
func transportDefault() transport.Config { return transport.DefaultConfig() }
