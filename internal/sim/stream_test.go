package sim

import (
	"math"
	"sort"
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/stats"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// streamTestFlows builds a deterministic Poisson workload over the
// small fabric: cross-leaf pairs, deadlined shorts, sized to span both
// classes.
func streamTestFlows(t *testing.T, n int) []workload.Flow {
	t.Helper()
	topo := smallTopo()
	cfg := workload.PoissonConfig{
		Hosts:         topo.Hosts(),
		Sizes:         workload.Uniform{MinSize: 4 * units.KB, MaxSize: 200 * units.KB},
		Load:          0.4,
		HostBandwidth: topo.HostLink.Bandwidth,
		Deadlines: workload.DeadlineDist{
			Min: units.Millisecond, Max: 10 * units.Millisecond,
			OnlyBelow: 100 * units.KB,
		},
		CrossLeafOnly: true,
		LeafOf:        func(h int) int { return h / topo.HostsPerLeaf },
	}
	flows, err := cfg.Generate(eventsim.NewRNG(99), n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return flows
}

func streamTestScenario(flows []workload.Flow, maxTime units.Time) Scenario {
	return Scenario{
		Name: "stream-parity", Topology: smallTopo(),
		Transport: transport.DefaultConfig(),
		Balancer:  lb.ECMP(), SchemeName: "ecmp", Seed: 7,
		Flows: flows, StopWhenDone: true, MaxTime: maxTime,
	}
}

// assertStreamParity checks every Result accessor against the
// record-based run: counters must be exactly equal; AFCT nearly equal
// (running sum vs Welford); percentiles within the sketch bound of the
// exact value's bracketing order statistics.
func assertStreamParity(t *testing.T, exact, streamed *Result) {
	t.Helper()
	if len(streamed.Flows) != 0 {
		t.Fatalf("streamed run retained %d records", len(streamed.Flows))
	}
	if streamed.Stream == nil {
		t.Fatal("streamed run has no Stream aggregate")
	}
	if exact.EndTime != streamed.EndTime {
		t.Fatalf("end times differ: %v vs %v", exact.EndTime, streamed.EndTime)
	}
	for _, c := range []Class{AllFlows, ShortFlows, LongFlows} {
		if e, s := exact.Count(c), streamed.Count(c); e != s {
			t.Fatalf("class %d Count %d vs %d", c, e, s)
		}
		if e, s := exact.CompletedCount(c), streamed.CompletedCount(c); e != s {
			t.Fatalf("class %d CompletedCount %d vs %d", c, e, s)
		}
		if e, s := exact.TotalRetransmits(c), streamed.TotalRetransmits(c); e != s {
			t.Fatalf("class %d retransmits %d vs %d", c, e, s)
		}
		if e, s := exact.TotalTimeouts(c), streamed.TotalTimeouts(c); e != s {
			t.Fatalf("class %d timeouts %d vs %d", c, e, s)
		}
		if e, s := exact.DeadlineMissRatio(c), streamed.DeadlineMissRatio(c); e != s {
			t.Fatalf("class %d miss ratio %v vs %v", c, e, s)
		}
		if e, s := exact.AggregateGoodput(c), streamed.AggregateGoodput(c); e != s {
			t.Fatalf("class %d aggregate goodput %v vs %v", c, e, s)
		}
		if e, s := exact.MeanQueueDelay(c), streamed.MeanQueueDelay(c); e != s {
			t.Fatalf("class %d queue delay %v vs %v", c, e, s)
		}
		if e, s := exact.OutOfOrderRatio(c), streamed.OutOfOrderRatio(c); e != s {
			t.Fatalf("class %d ooo ratio %v vs %v", c, e, s)
		}
		if e, s := exact.DupAckRatio(c), streamed.DupAckRatio(c); e != s {
			t.Fatalf("class %d dupack ratio %v vs %v", c, e, s)
		}
		// Goodput sums per-flow float terms in different orders
		// (completion order vs record order), so compare with a tight
		// relative tolerance rather than bit equality.
		eg, sg := float64(exact.Goodput(c)), float64(streamed.Goodput(c))
		if math.Abs(eg-sg) > 1e-6*math.Max(1, eg) {
			t.Fatalf("class %d goodput %v vs %v", c, eg, sg)
		}
		ea, sa := exact.AFCT(c).Seconds(), streamed.AFCT(c).Seconds()
		if math.Abs(ea-sa) > 1e-9*math.Max(1, ea) {
			t.Fatalf("class %d AFCT %v vs %v", c, ea, sa)
		}

		// Percentiles: the streamed estimate must stay within the
		// sketch's documented alpha bound of the exact value's
		// bracketing order statistics.
		var xs []float64
		exact.Each(c, func(fs *transport.FlowStats) {
			if fs.Done {
				xs = append(xs, fs.FCT().Seconds())
			}
		})
		if len(xs) == 0 {
			continue
		}
		sort.Float64s(xs)
		alpha := stats.DefaultSketchAlpha
		for _, p := range []float64{10, 50, 90, 95, 99, 99.9} {
			est := streamed.FCTPercentile(c, p).Seconds()
			rank := p / 100 * float64(len(xs)-1)
			lo := xs[int(rank)] * (1 - alpha)
			hi := xs[int(math.Ceil(rank))] * (1 + alpha)
			if est < lo-1e-12 || est > hi+1e-12 {
				t.Fatalf("class %d p%v: streamed %v outside [%v, %v]", c, p, est, lo, hi)
			}
		}
	}
}

func TestStreamStatsMatchesRecords(t *testing.T) {
	flows := streamTestFlows(t, 400)
	exact, err := Run(streamTestScenario(flows, 30*units.Second))
	if err != nil {
		t.Fatal(err)
	}
	sc := streamTestScenario(flows, 30*units.Second)
	sc.StreamStats = true
	streamed, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := exact.CompletedCount(AllFlows); got != 400 {
		t.Fatalf("only %d/400 completed; test wants a fully finished run", got)
	}
	assertStreamParity(t, exact, streamed)
}

// TestStreamStatsCrossCheck100k is the at-scale accuracy gate: the
// same 100k-flow workload run with records and streamed, every
// counter metric exactly equal and every percentile within the
// sketch's documented bound of the exact order statistics.
func TestStreamStatsCrossCheck100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-flow cross-check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("single-goroutine scale test; skipped under -race")
	}
	flows := streamTestFlows(t, 100_000)
	exact, err := Run(streamTestScenario(flows, 120*units.Second))
	if err != nil {
		t.Fatal(err)
	}
	sc := streamTestScenario(flows, 120*units.Second)
	sc.StreamStats = true
	streamed, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := exact.CompletedCount(AllFlows); got != 100_000 {
		t.Fatalf("only %d/100000 completed; test wants a fully finished run", got)
	}
	assertStreamParity(t, exact, streamed)
}

// A truncated run leaves flows unfinished; the streamed end-of-run
// sweep must fold them exactly as the record-based accessors count
// them (deadline misses at EndTime, goodput over active time).
func TestStreamStatsMatchesRecordsWithUnfinished(t *testing.T) {
	flows := streamTestFlows(t, 400)
	cut := flows[len(flows)-1].Start / 2
	exact, err := Run(streamTestScenario(flows, cut))
	if err != nil {
		t.Fatal(err)
	}
	sc := streamTestScenario(flows, cut)
	sc.StreamStats = true
	streamed, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if exact.CompletedCount(AllFlows) >= exact.Count(AllFlows) {
		t.Fatal("test wants unfinished flows")
	}
	assertStreamParity(t, exact, streamed)
}

// The lazy FlowSource path must produce the same simulation as the
// pre-materialized slice: same flow count, same completions, same
// aggregates.
func TestFlowSourceMatchesSlice(t *testing.T) {
	topo := smallTopo()
	cfg := workload.PoissonConfig{
		Hosts:         topo.Hosts(),
		Sizes:         workload.Uniform{MinSize: 4 * units.KB, MaxSize: 200 * units.KB},
		Load:          0.4,
		HostBandwidth: topo.HostLink.Bandwidth,
		CrossLeafOnly: true,
		LeafOf:        func(h int) int { return h / topo.HostsPerLeaf },
	}
	flows, err := cfg.Generate(eventsim.NewRNG(5), 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	slice := streamTestScenario(flows, 30*units.Second)
	slice.StreamStats = true
	fromSlice, err := Run(slice)
	if err != nil {
		t.Fatal(err)
	}

	src, err := cfg.Source(eventsim.NewRNG(5), 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	lazy := streamTestScenario(nil, 30*units.Second)
	lazy.StreamStats = true
	lazy.FlowSource = src
	fromSource, err := Run(lazy)
	if err != nil {
		t.Fatal(err)
	}

	// Same draws, same event sequence, same fold order: the aggregates
	// must be identical, floats included.
	for _, c := range []Class{AllFlows, ShortFlows, LongFlows} {
		if a, b := fromSlice.Count(c), fromSource.Count(c); a != b {
			t.Fatalf("class %d count %d vs %d", c, a, b)
		}
		if a, b := fromSlice.CompletedCount(c), fromSource.CompletedCount(c); a != b {
			t.Fatalf("class %d completed %d vs %d", c, a, b)
		}
		if a, b := fromSlice.AFCT(c), fromSource.AFCT(c); a != b {
			t.Fatalf("class %d AFCT %v vs %v", c, a, b)
		}
		if a, b := fromSlice.FCTPercentile(c, 99), fromSource.FCTPercentile(c, 99); a != b {
			t.Fatalf("class %d p99 %v vs %v", c, a, b)
		}
		if a, b := fromSlice.Goodput(c), fromSource.Goodput(c); a != b {
			t.Fatalf("class %d goodput %v vs %v", c, a, b)
		}
	}
	if fromSlice.EndTime != fromSource.EndTime {
		t.Fatalf("end time %v vs %v", fromSlice.EndTime, fromSource.EndTime)
	}
}

func TestStreamScenarioValidation(t *testing.T) {
	flows := []workload.Flow{{Src: 0, Dst: 4, Size: units.KB, Start: 0}}
	base := streamTestScenario(flows, units.Second)

	sc := base
	sc.FlowSource = workload.NewSliceSource(flows)
	if _, err := Run(sc); err == nil {
		t.Fatal("no error for Flows+FlowSource")
	}

	sc = base
	sc.StreamStats = true
	sc.CollectTimeSeries = true
	if _, err := Run(sc); err == nil {
		t.Fatal("no error for StreamStats+CollectTimeSeries")
	}

	sc = base
	sc.StreamStats = true
	sc.SampleShortPackets = true
	if _, err := Run(sc); err == nil {
		t.Fatal("no error for StreamStats+SampleShortPackets")
	}

	sc = base
	sc.StreamStats = true
	sc.Replication = &ReplicationConfig{Threshold: 100 * units.KB, Copies: 2}
	if _, err := Run(sc); err == nil {
		t.Fatal("no error for StreamStats+Replication")
	}

	sc = base
	sc.Flows = nil
	sc.FlowSource = workload.NewSliceSource(nil)
	if _, err := Run(sc); err == nil {
		t.Fatal("no error for empty FlowSource")
	}

	sc = base
	sc.Flows = nil
	sc.FlowSource = workload.NewSliceSource([]workload.Flow{
		{Src: 0, Dst: 4, Size: units.KB, Start: units.Millisecond},
		{Src: 1, Dst: 5, Size: units.KB, Start: 0}, // goes backwards
	})
	if _, err := Run(sc); err == nil {
		t.Fatal("no error for a FlowSource with decreasing starts")
	}

	sc = base
	sc.Flows = nil
	sc.FlowSource = workload.NewSliceSource([]workload.Flow{
		{Src: 0, Dst: 99, Size: units.KB, Start: 0}, // invalid endpoint
	})
	if _, err := Run(sc); err == nil {
		t.Fatal("no error for invalid endpoints from a source")
	}
}
