package sim

import (
	"time"

	"tlb/internal/units"
)

// This file is the measurement side of the run-control/measurement
// split: a typed progress stream every runner (single engine, sharded,
// sweep) emits over one interface. Observation is strictly read-only —
// an attached observer sees copies (exact Merge-able aggregate clones,
// port-stat snapshots) and can never perturb the simulation, so
// results are byte-identical with and without one (pinned by
// TestObserverNeutrality and the figure-identity tests).

// ProgressKind discriminates the events of a session's progress stream.
type ProgressKind int

const (
	// ProgressSnapshot is a periodic mid-run observation, emitted every
	// SnapshotEvery of *simulation* time at an event-batch boundary.
	ProgressSnapshot ProgressKind = iota
	// ProgressDone is the session's terminal event: exactly one per
	// session, carrying the final aggregates and the error, if any.
	ProgressDone
)

// String names the kind for logs and the SSE wire format.
func (k ProgressKind) String() string {
	switch k {
	case ProgressSnapshot:
		return "snapshot"
	case ProgressDone:
		return "done"
	}
	return "unknown"
}

// ProgressEvent is one observation of a running (or just-finished)
// session. Snapshot events describe the run in flight; the Done event
// closes the stream. All reference fields (Classes, Uplinks) are
// copies owned by the receiver — retaining them is safe.
type ProgressEvent struct {
	Kind ProgressKind

	// Index is the scenario's position in its sweep (0 for a solo
	// session); Total the sweep size (1 solo). Completed counts sweep
	// scenarios finished so far including this one — it is stamped by
	// the sweep on Done events ("Completed/Total" is the k/n line) and
	// is 1 on a solo session's Done.
	Index, Completed, Total int

	// Scenario is the Scenario.Name, Scheme its SchemeName.
	Scenario string
	Scheme   string

	// Elapsed is wall-clock time since the session started, read from
	// the session's injected Clock.
	Elapsed time.Duration

	// Err is the session's failure (Done events only).
	Err error

	// SimTime is the engine clock at the observation; Events the total
	// events executed so far (summed across shards when sharded).
	SimTime units.Time
	Events  uint64
	// EventsPerSec is the event rate over the wall-clock interval since
	// the previous event of this session (0 when the interval is too
	// short to measure).
	EventsPerSec float64

	// FlowsStarted counts flows opened so far, FlowsDone those
	// completed.
	FlowsStarted int64
	FlowsDone    int64

	// Classes holds per-class aggregates over the flows completed so
	// far (final aggregates on Done): an exact Merge-able clone, so
	// observers can reduce across sessions. Nil when the session has
	// nothing to report yet.
	Classes *StreamAgg

	// Uplinks snapshots the leaf uplink ports (queue depth sums feed
	// the live queue CDFs). Nil on events that carry no port state.
	Uplinks []PortSnapshot
}

// Observer receives a session's progress stream. Sessions call it
// synchronously from the run goroutine: implementations must be cheap
// and must not block, or they stall the simulation they are watching.
// Within one session the calls are sequential; a sweep serializes the
// streams of its concurrent sessions, so one observer instance may be
// shared across a whole sweep without its own locking.
type Observer interface {
	OnProgress(ProgressEvent)
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(ProgressEvent)

// OnProgress implements Observer.
func (f ObserverFunc) OnProgress(ev ProgressEvent) { f(ev) }
