package sim

import "time"

// Clock is the run-control layer's one monotonic wall-clock seam: a
// reading of elapsed wall time since an arbitrary fixed epoch.
// Everything in internal/sim that needs wall time — SweepProgress.
// Elapsed, the events/sec rate in ProgressEvents — subtracts two
// readings of one Clock, and internal/serve injects the same seam so
// the whole harness has exactly one place that touches time.Now.
// Tests inject a fake to make wall-derived fields deterministic.
type Clock func() time.Duration

// WallClock returns a Clock backed by the process monotonic clock.
// This is the single wall-clock site of the run-control layer; the
// simulation itself only ever sees eventsim.Sim.Now.
func WallClock() Clock {
	//simlint:allow nowallclock(the run-control layer's single wall-clock seam: everything else subtracts two readings of the returned Clock)
	start := time.Now()
	return func() time.Duration {
		//simlint:allow nowallclock(same seam: a monotonic distance from the epoch captured one line up)
		return time.Since(start)
	}
}
