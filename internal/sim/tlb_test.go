package sim

import (
	"testing"

	"tlb/internal/core"
	"tlb/internal/lb"
	"tlb/internal/units"
	"tlb/internal/workload"
)

func tlbConfig(topo int) core.Config {
	cfg := core.DefaultConfig()
	cfg.LinkBandwidth = units.Gbps
	cfg.RTT = 60 * units.Microsecond
	cfg.MaxQTh = 256
	return cfg
}

func TestTLBCompletesMixedWorkload(t *testing.T) {
	flows := []workload.Flow{}
	for i := 0; i < 30; i++ {
		flows = append(flows, workload.Flow{
			Src: i % 4, Dst: 4 + (i % 4), Size: 20 * units.KB,
			Start:    units.Time(i) * 30 * units.Microsecond,
			Deadline: units.Time(i)*30*units.Microsecond + 10*units.Millisecond,
		})
	}
	for i := 0; i < 2; i++ {
		flows = append(flows, workload.Flow{Src: i, Dst: 4 + i, Size: 3 * units.MB, Start: 0})
	}
	res, err := Run(Scenario{
		Name:       "tlb-mixed",
		Topology:   smallTopo(),
		Transport:  transportDefault(),
		Balancer:   core.Factory(tlbConfig(0)),
		SchemeName: "tlb",
		Seed:       11,
		Flows:      flows, StopWhenDone: true, MaxTime: 5 * units.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.CompletedCount(AllFlows), len(flows); got != want {
		t.Fatalf("completed %d of %d", got, want)
	}
	if miss := res.DeadlineMissRatio(ShortFlows); miss > 0.2 {
		t.Fatalf("TLB missed %.0f%% of short deadlines in a light workload", miss*100)
	}
}

// TestTLBShortFlowsBeatECMPUnderElephants is the paper's headline
// behaviour at test scale: with elephants occupying paths, TLB's
// per-packet shortest-queue spraying of shorts should beat ECMP's
// static hashing on short AFCT.
func TestTLBShortFlowsBeatECMPUnderElephants(t *testing.T) {
	mkFlows := func() []workload.Flow {
		flows := []workload.Flow{}
		for i := 0; i < 3; i++ { // elephants from 3 of 4 senders
			flows = append(flows, workload.Flow{Src: i, Dst: 4 + i, Size: 5 * units.MB, Start: 0})
		}
		for i := 0; i < 40; i++ {
			flows = append(flows, workload.Flow{
				Src: i % 4, Dst: 4 + (3 - i%4), Size: 20 * units.KB,
				Start: 100*units.Microsecond + units.Time(i)*40*units.Microsecond,
			})
		}
		return flows
	}
	run := func(name string, f lb.Factory) units.Time {
		res, err := Run(Scenario{
			Name: "headline-" + name, Topology: smallTopo(), Transport: transportDefault(),
			Balancer: f, SchemeName: name, Seed: 5,
			Flows: mkFlows(), StopWhenDone: true, MaxTime: 10 * units.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.CompletedCount(AllFlows) != len(mkFlows()) {
			t.Fatalf("%s: not all flows completed", name)
		}
		return res.AFCT(ShortFlows)
	}
	tlbFCT := run("tlb", core.Factory(tlbConfig(0)))
	ecmpFCT := run("ecmp", lb.ECMP())
	if tlbFCT >= ecmpFCT {
		t.Fatalf("TLB short AFCT %v not better than ECMP %v", tlbFCT, ecmpFCT)
	}
}
