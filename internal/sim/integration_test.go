package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"tlb/internal/core"
	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/topology"
	"tlb/internal/trace"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// TestFabricConservation: every payload byte injected is either
// acknowledged or the run saw drops; with no drops, acked == size for
// every flow, across random workloads and schemes.
func TestFabricConservationProperty(t *testing.T) {
	schemes := []lb.Factory{lb.ECMP(), lb.RPS(), lb.LetFlow(0), lb.Presto(0)}
	f := func(seed uint64, schemeIdx uint8, n uint8) bool {
		topo := smallTopo()
		rngFlows := []workload.Flow{}
		count := int(n%20) + 3
		s := int(seed % 100000)
		for i := 0; i < count; i++ {
			rngFlows = append(rngFlows, workload.Flow{
				Src: i % 4, Dst: 4 + (i+s)%4,
				Size:  units.Bytes(1000 + (s+i*7919)%200000),
				Start: units.Time(i) * 37 * units.Microsecond,
			})
		}
		res, err := Run(Scenario{
			Name:     "conservation-prop",
			Topology: topo, Transport: transport.DefaultConfig(),
			Balancer:   schemes[int(schemeIdx)%len(schemes)],
			SchemeName: "prop", Seed: seed,
			Flows: rngFlows, StopWhenDone: true, MaxTime: 30 * units.Second,
		})
		if err != nil {
			return false
		}
		for _, fs := range res.Flows {
			if !fs.Done {
				return false // all must finish within 30s at this scale
			}
			if fs.BytesAcked != fs.Size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestAsymmetricFabricEndToEnd drives traffic over a fabric with one
// degraded link and checks delivery still works plus the override is
// effective (flows crossing the slow link take visibly longer).
func TestAsymmetricFabricEndToEnd(t *testing.T) {
	topo := smallTopo()
	topo.Spines = 2
	slow := topo.FabricLink
	slow.Delay += 2 * units.Millisecond
	topo.Overrides = []topology.LinkOverride{{Leaf: 0, Spine: 1, Link: slow}}

	res, err := Run(Scenario{
		Name: "asym", Topology: topo, Transport: transport.DefaultConfig(),
		// ECMP hashes flows onto both spines, so some cross the slow link.
		Balancer: lb.ECMP(), SchemeName: "ecmp", Seed: 21,
		Flows: []workload.Flow{
			{Src: 0, Dst: 4, Size: 30 * units.KB, Start: 0},
			{Src: 1, Dst: 5, Size: 30 * units.KB, Start: 0},
			{Src: 2, Dst: 6, Size: 30 * units.KB, Start: 0},
			{Src: 3, Dst: 7, Size: 30 * units.KB, Start: 0},
		},
		StopWhenDone: true, MaxTime: 10 * units.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fast, slowCount int
	for _, fs := range res.Flows {
		if !fs.Done {
			t.Fatalf("flow %v unfinished", fs.ID)
		}
		if fs.FCT() > 4*units.Millisecond {
			slowCount++ // several RTTs over the +2ms link
		} else {
			fast++
		}
	}
	if fast == 0 || slowCount == 0 {
		t.Fatalf("expected a mix of fast and slow flows, got %d fast / %d slow", fast, slowCount)
	}
}

// TestTLBAvoidsDegradedLink: under TLB the same scenario should route
// everything around the slow path (queues empty, delay visible).
func TestTLBAvoidsDegradedLink(t *testing.T) {
	topo := smallTopo()
	slow := topo.FabricLink
	slow.Delay += 2 * units.Millisecond
	topo.Overrides = []topology.LinkOverride{{Leaf: 0, Spine: 3, Link: slow}}

	cfg := core.DefaultConfig()
	cfg.LinkBandwidth = topo.FabricLink.Bandwidth
	cfg.RTT = topo.BaseRTT()
	cfg.MaxQTh = topo.Queue.Capacity

	flows := []workload.Flow{}
	for i := 0; i < 12; i++ {
		flows = append(flows, workload.Flow{
			Src: i % 4, Dst: 4 + i%4, Size: 50 * units.KB,
			Start: units.Time(i) * 100 * units.Microsecond,
		})
	}
	res, err := Run(Scenario{
		Name: "tlb-asym", Topology: topo, Transport: transport.DefaultConfig(),
		Balancer: core.Factory(cfg), SchemeName: "tlb", Seed: 33,
		Flows: flows, StopWhenDone: true, MaxTime: 10 * units.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount(AllFlows) != len(flows) {
		t.Fatal("not all flows completed")
	}
	// The slow uplink (leaf0 -> spine3) should have carried almost
	// nothing: with 3 healthy paths its 2ms handicap never wins.
	for _, p := range res.Uplinks {
		if p.Label == "leaf0->spine3" && p.Queue.Enqueued > int64(len(flows)) {
			t.Fatalf("degraded uplink carried %d packets", p.Queue.Enqueued)
		}
	}
}

// TestSampledShortPackets verifies the Fig. 3 sampling path end to end.
func TestSampledShortPackets(t *testing.T) {
	res, err := Run(Scenario{
		Name: "samples", Topology: smallTopo(), Transport: transport.DefaultConfig(),
		Balancer: lb.RPS(), SchemeName: "rps", Seed: 4,
		Flows: []workload.Flow{
			{Src: 0, Dst: 4, Size: 30 * units.KB, Start: 0},
			{Src: 1, Dst: 5, Size: 2 * units.MB, Start: 0}, // long: must not be sampled
		},
		SampleShortPackets: true,
		StopWhenDone:       true, MaxTime: 10 * units.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShortSamples) == 0 {
		t.Fatal("no short-packet samples collected")
	}
	// ~21 data packets for 30KB (plus none from the 2MB flow).
	if len(res.ShortSamples) > 40 {
		t.Fatalf("%d samples — long flow leaked into short sampling", len(res.ShortSamples))
	}
	for _, ps := range res.ShortSamples {
		if ps.Flow.Src != 0 {
			t.Fatalf("sample from flow %v", ps.Flow)
		}
		if ps.OneWay <= 0 {
			t.Fatal("non-positive one-way delay sample")
		}
	}
}

// TestTimeSeriesCollection verifies the Fig. 8/9 series path.
func TestTimeSeriesCollection(t *testing.T) {
	flows := []workload.Flow{
		{Src: 0, Dst: 4, Size: 80 * units.KB, Start: 0},
		{Src: 1, Dst: 5, Size: units.MB, Start: 0},
	}
	res, err := Run(Scenario{
		Name: "series", Topology: smallTopo(), Transport: transport.DefaultConfig(),
		Balancer: lb.ECMP(), SchemeName: "ecmp", Seed: 6,
		Flows:             flows,
		CollectTimeSeries: true,
		TimeBucket:        500 * units.Microsecond,
		StopWhenDone:      true, MaxTime: 10 * units.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts := res.ShortQueueDelayUs.Means(); len(pts) == 0 {
		t.Fatal("no short queue-delay series")
	}
	long := res.LongGoodputBytes.Sums()
	var total float64
	for _, p := range long {
		total += p.Y
	}
	if total != float64(units.MB) {
		t.Fatalf("long goodput series sums to %.0f bytes, want %d", total, units.MB)
	}
	short := res.ShortGoodputBytes.Sums()
	total = 0
	for _, p := range short {
		total += p.Y
	}
	if total != float64(80*units.KB) {
		t.Fatalf("short goodput series sums to %.0f bytes, want %d", total, 80*units.KB)
	}
}

// TestBufferPressureCausesDropsAndRecovery injects a burst far beyond
// buffer capacity and checks the fabric drops, TCP retransmits, and
// every flow still completes — the failure-injection path.
func TestBufferPressureCausesDropsAndRecovery(t *testing.T) {
	topo := smallTopo()
	topo.Spines = 1                              // single path: no balancing escape
	topo.Queue = netem.QueueConfig{Capacity: 16} // tiny buffers, no ECN
	flows := []workload.Flow{}
	for i := 0; i < 8; i++ {
		flows = append(flows, workload.Flow{
			Src: i % 4, Dst: 4 + i%4, Size: 300 * units.KB, Start: 0,
		})
	}
	res, err := Run(Scenario{
		Name: "pressure", Topology: topo, Transport: transport.DefaultConfig(),
		Balancer: lb.ECMP(), SchemeName: "ecmp", Seed: 8,
		Flows: flows, StopWhenDone: true, MaxTime: 30 * units.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops == 0 {
		t.Fatal("expected drops under 8x oversubscription into 16-packet buffers")
	}
	if res.TotalRetransmits(AllFlows) == 0 {
		t.Fatal("drops but no retransmissions")
	}
	if got := res.CompletedCount(AllFlows); got != len(flows) {
		t.Fatalf("only %d of %d flows completed despite retransmission", got, len(flows))
	}
	for _, fs := range res.Flows {
		if fs.BytesAcked != fs.Size {
			t.Fatalf("flow %v acked %d of %d", fs.ID, fs.BytesAcked, fs.Size)
		}
	}
}

// TestResultClassAccessors pins the Result reduction helpers.
func TestResultClassAccessors(t *testing.T) {
	res, err := Run(Scenario{
		Name: "classes", Topology: smallTopo(), Transport: transport.DefaultConfig(),
		Balancer: lb.ECMP(), SchemeName: "ecmp", Seed: 10,
		Flows: []workload.Flow{
			{Src: 0, Dst: 4, Size: 10 * units.KB, Start: 0, Deadline: 50 * units.Millisecond},
			{Src: 1, Dst: 5, Size: 20 * units.KB, Start: 0, Deadline: units.Microsecond}, // impossible
			{Src: 2, Dst: 6, Size: 5 * units.MB, Start: 0},
		},
		StopWhenDone: true, MaxTime: 30 * units.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(ShortFlows) != 2 || res.Count(LongFlows) != 1 || res.Count(AllFlows) != 3 {
		t.Fatalf("class counts: %d/%d/%d", res.Count(ShortFlows), res.Count(LongFlows), res.Count(AllFlows))
	}
	if miss := res.DeadlineMissRatio(ShortFlows); miss != 0.5 {
		t.Fatalf("miss ratio %v, want 0.5 (one impossible deadline of two)", miss)
	}
	if res.AFCT(ShortFlows) <= 0 || res.AFCT(LongFlows) <= 0 {
		t.Fatal("zero AFCT")
	}
	if res.FCTPercentile(ShortFlows, 99) < res.FCTPercentile(ShortFlows, 1) {
		t.Fatal("percentiles not monotone")
	}
	if res.UplinkUtilization() <= 0 {
		t.Fatal("zero uplink utilization")
	}
	if res.Goodput(AllFlows) <= 0 || res.AggregateGoodput(AllFlows) <= 0 {
		t.Fatal("zero goodput")
	}
}

// TestFatTreeEndToEnd runs a full workload over the 3-tier substrate
// via Scenario.BuildNetwork: both decision tiers (edge and agg) are
// exercised for every scheme, including TLB.
func TestFatTreeEndToEnd(t *testing.T) {
	ftCfg := topology.FatTreeConfig{
		K:          4,
		HostLink:   netem.LinkConfig{Bandwidth: units.Gbps, Delay: 5 * units.Microsecond},
		FabricLink: netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
		Queue:      netem.QueueConfig{Capacity: 256, ECNThreshold: 65},
	}
	tlbCfg := core.DefaultConfig()
	tlbCfg.RTT = 100 * units.Microsecond
	schemes := []struct {
		name string
		f    lb.Factory
	}{
		{"ecmp", lb.ECMP()},
		{"letflow", lb.LetFlow(0)},
		{"tlb", core.Factory(tlbCfg)},
	}
	for _, s := range schemes {
		s := s
		t.Run(s.name, func(t *testing.T) {
			flows := []workload.Flow{}
			for i := 0; i < 24; i++ {
				// Inter-pod pairs: pod i%4 -> pod (i+1)%4.
				flows = append(flows, workload.Flow{
					Src: (i % 4) * 4, Dst: ((i+1)%4)*4 + i%4,
					Size:  units.Bytes(5000 + i*3000),
					Start: units.Time(i) * 30 * units.Microsecond,
				})
			}
			flows = append(flows, workload.Flow{Src: 1, Dst: 13, Size: units.MB, Start: 0})
			res, err := Run(Scenario{
				Name:       "fattree-" + s.name,
				Transport:  transport.DefaultConfig(),
				Balancer:   s.f,
				SchemeName: s.name,
				Seed:       17,
				Flows:      flows,
				BuildNetwork: func(sm *eventsim.Sim, f lb.Factory, rng *eventsim.RNG, deliver topology.DeliverFunc) (topology.Network, error) {
					return topology.NewFatTree(sm, ftCfg, f, rng, deliver)
				},
				StopWhenDone: true,
				MaxTime:      10 * units.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.CompletedCount(AllFlows), len(flows); got != want {
				t.Fatalf("completed %d of %d", got, want)
			}
			// Both tiers' ports appear in the snapshots.
			sawEdge, sawAgg := false, false
			for _, p := range res.Uplinks {
				if strings.HasPrefix(p.Label, "edge") {
					sawEdge = true
				}
				if strings.HasPrefix(p.Label, "agg") {
					sawAgg = true
				}
			}
			if !sawEdge || !sawAgg {
				t.Fatal("balanced-port snapshots missing a tier")
			}
		})
	}
}

// TestRunAllSweep checks the concurrent sweep helper: same results as
// serial runs, order preserved.
func TestRunAllSweep(t *testing.T) {
	mk := func(seed uint64) Scenario {
		return Scenario{
			Name: "sweep", Topology: smallTopo(), Transport: transport.DefaultConfig(),
			Balancer: lb.ECMP(), SchemeName: "ecmp", Seed: seed,
			Flows: []workload.Flow{
				{Src: 0, Dst: 4, Size: 50 * units.KB, Start: 0},
				{Src: 1, Dst: 5, Size: 80 * units.KB, Start: 0},
			},
			StopWhenDone: true, MaxTime: 10 * units.Second,
		}
	}
	scenarios := []Scenario{mk(1), mk(2), mk(3), mk(4)}
	parallel, err := RunAll(scenarios, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scenarios {
		serial, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i].EndTime != serial.EndTime {
			t.Fatalf("scenario %d differs parallel vs serial", i)
		}
	}
}

// TestIncastScenario runs the partition/aggregate pattern end to end:
// the destination host link is the bottleneck and all flows must
// still complete.
func TestIncastScenario(t *testing.T) {
	inc := workload.IncastConfig{
		Aggregator:    4, // on leaf 1
		Workers:       []int{0, 1, 2, 3},
		ResponseSize:  workload.Fixed{Size: 64 * units.KB},
		Rounds:        5,
		RoundInterval: 5 * units.Millisecond,
	}
	flows, err := inc.Generate(eventsim.NewRNG(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Scenario{
		Name: "incast", Topology: smallTopo(), Transport: transport.DefaultConfig(),
		Balancer: lb.RPS(), SchemeName: "rps", Seed: 3,
		Flows: flows, StopWhenDone: true, MaxTime: 30 * units.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount(AllFlows) != len(flows) {
		t.Fatalf("completed %d of %d", res.CompletedCount(AllFlows), len(flows))
	}
}

// TestTracerRecordsFlowLifecycle wires a tracer through a run.
func TestTracerRecordsFlowLifecycle(t *testing.T) {
	tr := trace.New(0)
	_, err := Run(Scenario{
		Name: "traced", Topology: smallTopo(), Transport: transport.DefaultConfig(),
		Balancer: lb.ECMP(), SchemeName: "ecmp", Seed: 2,
		Flows: []workload.Flow{
			{Src: 0, Dst: 4, Size: 20 * units.KB, Start: 0},
			{Src: 1, Dst: 5, Size: 30 * units.KB, Start: units.Millisecond},
		},
		Tracer:       tr,
		StopWhenDone: true, MaxTime: 10 * units.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count(trace.FlowStart) != 2 || tr.Count(trace.FlowEnd) != 2 {
		t.Fatalf("starts=%d ends=%d, want 2/2", tr.Count(trace.FlowStart), tr.Count(trace.FlowEnd))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("%d events", len(evs))
	}
	// Starts precede ends per flow.
	seenStart := map[netem.FlowID]bool{}
	for _, e := range evs {
		switch e.Kind {
		case trace.FlowStart:
			seenStart[e.Flow] = true
		case trace.FlowEnd:
			if !seenStart[e.Flow] {
				t.Fatal("flow ended before starting")
			}
		}
	}
}

// TestRepFlowReplication: replicated short flows finish at the minimum
// of their copies, long flows are not replicated, and the run ends
// despite losing copies still draining.
func TestRepFlowReplication(t *testing.T) {
	topo := smallTopo()
	// One very slow path plus three normal ones: an ECMP copy hashed
	// onto the slow path loses the race, the other copy wins.
	slow := topo.FabricLink
	slow.Delay += 5 * units.Millisecond
	topo.Overrides = []topology.LinkOverride{{Leaf: 0, Spine: 1, Link: slow}}

	flows := []workload.Flow{}
	for i := 0; i < 16; i++ {
		flows = append(flows, workload.Flow{
			Src: i % 4, Dst: 4 + i%4, Size: 20 * units.KB,
			Start: units.Time(i) * 50 * units.Microsecond,
		})
	}
	flows = append(flows, workload.Flow{Src: 0, Dst: 5, Size: units.MB, Start: 0})

	run := func(rep *ReplicationConfig) *Result {
		res, err := Run(Scenario{
			Name: "repflow", Topology: topo, Transport: transport.DefaultConfig(),
			Balancer: lb.ECMP(), SchemeName: "ecmp", Seed: 12,
			Flows: flows, Replication: rep,
			StopWhenDone: true, MaxTime: 30 * units.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	repl := run(&ReplicationConfig{Threshold: 100 * units.KB, Copies: 2})

	if got := repl.CompletedCount(AllFlows); got != len(flows) {
		t.Fatalf("completed %d of %d", got, len(flows))
	}
	// Replication takes the min of two ECMP draws: short AFCT must not
	// get worse, and with a 5ms trap on one of four paths it should be
	// clearly better.
	if repl.AFCT(ShortFlows) > plain.AFCT(ShortFlows) {
		t.Fatalf("repflow AFCT %v worse than plain %v",
			repl.AFCT(ShortFlows), plain.AFCT(ShortFlows))
	}
	for _, fs := range repl.Flows {
		if fs.Size <= 100*units.KB {
			if !fs.Done || fs.BytesAcked != fs.Size {
				t.Fatalf("replicated flow %v incomplete", fs.ID)
			}
		}
	}
}
