// Package sim is the experiment runner: it wires a topology, transport
// endpoints, a load-balancing scheme and a workload into one
// discrete-event simulation, runs it to a stop criterion, and returns
// the measurements every figure of the paper is reduced from.
package sim

import (
	"fmt"

	"tlb/internal/eventsim"
	"tlb/internal/faults"
	"tlb/internal/lb"
	"tlb/internal/netem"
	"tlb/internal/stats"
	"tlb/internal/topology"
	"tlb/internal/trace"
	"tlb/internal/transport"
	"tlb/internal/units"
	"tlb/internal/workload"
)

// Scenario fully describes one simulation run.
type Scenario struct {
	Name      string
	Topology  topology.Config
	Transport transport.Config
	// Balancer instantiates the scheme under test at each leaf.
	Balancer lb.Factory
	// SchemeName labels results (balancers are per-switch instances,
	// so the factory itself carries no name).
	SchemeName string
	Seed       uint64

	// Flows is the workload, absolute-timed.
	Flows []workload.Flow

	// FlowSource, when set, supplies the workload lazily instead of
	// Flows (setting both is an error). Flows must arrive in
	// non-decreasing Start order; the runner schedules one arrival
	// ahead of the clock instead of pre-scheduling every flow, so
	// neither the workload nor the event heap grows with the total flow
	// count.
	FlowSource workload.Source

	// FlowSourceNew supplies the workload lazily like FlowSource, but as
	// a replayable factory: every call must return a fresh Source that
	// yields the identical flow sequence (the compiled workloads are pure
	// functions of spec and seed, so this is their natural form). The
	// sharded runner (Shards > 1) requires the factory — each shard pumps
	// its own copy so flow indices stay global — and the single-engine
	// path simply consumes one copy, so the factory is always safe where
	// FlowSource would be. Setting both is an error.
	FlowSourceNew func() workload.Source

	// Shards > 1 partitions the run spatially: the topology is split
	// into that many per-shard event partitions (clamped to the
	// topology's parallelism — leaf groups on a leaf-spine fabric, pods
	// on a fat-tree), each running its own event engine on its own
	// goroutine, synchronized by conservative lookahead windows, with
	// cross-shard packets exchanged as timestamped handoffs applied in
	// deterministic order (see shard.go for the exact guarantees). 0 or
	// 1 keeps the single-engine path, byte-identical to previous
	// releases. A lazy workload must come as FlowSourceNew; Replication
	// and Tracer are incompatible with sharding.
	Shards int

	// StreamStats folds every flow record into fixed-size per-class
	// aggregates (Result.Stream) at completion and releases the record,
	// instead of retaining it in Result.Flows — O(1) memory per flow.
	// All Result accessors answer from the aggregates; FCT percentiles
	// carry the quantile sketch's relative-error bound
	// (stats.DefaultSketchAlpha), other metrics are exact.
	// Incompatible with SampleShortPackets, CollectTimeSeries and
	// Replication, which need retained records.
	StreamStats bool

	// MaxTime hard-stops the run; 0 means run until all flows finish.
	MaxTime units.Time
	// StopWhenDone ends the run as soon as every flow completed
	// (default behaviour; set MaxTime too as a safety net).
	StopWhenDone bool

	// ShortThreshold classifies flows for result aggregation (100 KB,
	// same as TLB's classifier).
	ShortThreshold units.Bytes

	// SampleShortPackets retains one PacketSample per short-flow data
	// packet (Fig. 3a/8 CDFs) — memory-heavy, off by default.
	SampleShortPackets bool
	// CollectTimeSeries enables the bucketed instantaneous series
	// (Fig. 8/9).
	CollectTimeSeries bool
	// TimeBucket is the series bucket width (default 1 ms).
	TimeBucket units.Time

	// Replication, when non-nil, enables RepFlow-style short-flow
	// replication (Xu & Li, 2014 — discussed in the paper's §8): each
	// flow at or below the threshold is opened as N copies with
	// different five-tuples (so per-flow schemes hash them onto
	// different paths), and the flow's completion time is the FIRST
	// copy to finish. The losing copies run to completion in the
	// background, which is RepFlow's documented bandwidth cost.
	Replication *ReplicationConfig

	// Faults is the run's link-fault schedule (down / flap / de-rate /
	// delay at scheduled sim times; see internal/faults). Empty injects
	// nothing. Requires the default leaf-spine fabric: the schedule
	// addresses links by (leaf, spine) pair.
	Faults faults.Schedule

	// Tracer, when non-nil, records flow lifecycle and retransmission
	// events for post-run inspection (see internal/trace). Packet-level
	// events are not recorded by the runner — they would dominate the
	// run; use the tracer's filters with custom hooks for those.
	Tracer *trace.Tracer

	// BuildNetwork, when set, constructs the network instead of the
	// default leaf-spine build of Topology — e.g. a fat-tree:
	//
	//	BuildNetwork: func(s, f, rng, deliver) (topology.Network, error) {
	//	    return topology.NewFatTree(s, ftCfg, f, rng, deliver)
	//	}
	//
	// Topology is ignored when this is set.
	BuildNetwork func(*eventsim.Sim, lb.Factory, *eventsim.RNG, topology.DeliverFunc) (topology.Network, error)
}

func (sc *Scenario) withDefaults() {
	if sc.ShortThreshold <= 0 {
		sc.ShortThreshold = 100 * units.KB
	}
	if sc.TimeBucket <= 0 {
		sc.TimeBucket = units.Millisecond
	}
	if sc.MaxTime <= 0 {
		sc.MaxTime = 60 * units.Second
	}
	if sc.SchemeName == "" {
		sc.SchemeName = "unnamed"
	}
}

// ReplicationConfig parameterizes RepFlow-style replication.
type ReplicationConfig struct {
	// Threshold: flows at or below this size are replicated (100 KB —
	// RepFlow replicates only the mice).
	Threshold units.Bytes
	// Copies is the total number of copies (2 in RepFlow).
	Copies int
}

// PortSnapshot records one fabric port's totals at the end of a run.
type PortSnapshot struct {
	Label    string
	BusyTime units.Time
	Queue    netem.QueueStats
	Link     netem.LinkConfig
}

// Result holds everything measured in one run.
type Result struct {
	Scenario string
	Scheme   string
	// Flows holds the per-flow records — empty under
	// Scenario.StreamStats, where Stream carries the aggregates
	// instead.
	Flows []*transport.FlowStats
	// Stream is the streaming aggregate representation (non-nil exactly
	// when the scenario ran with StreamStats).
	Stream  *StreamAgg
	EndTime units.Time
	Drops   int64
	// FaultDrops counts packets dropped at down ports anywhere in the
	// fabric (admission drops of the fault injector, not buffer drops).
	FaultDrops     int64
	ShortThreshold units.Bytes

	// Uplinks snapshots every leaf uplink port (the equal-cost paths).
	Uplinks []PortSnapshot

	// ShortSamples holds per-packet records of short flows when
	// Scenario.SampleShortPackets was set.
	ShortSamples []transport.PacketSample

	// Instantaneous series (when CollectTimeSeries): X in seconds.
	ShortQueueDelayUs *stats.TimeSeries // mean queueing delay, µs
	ShortOOORatio     *stats.TimeSeries // mean out-of-order indicator
	LongOOORatio      *stats.TimeSeries
	ShortGoodputBytes *stats.TimeSeries // payload bytes per bucket
	LongGoodputBytes  *stats.TimeSeries
}

// Run executes the scenario and returns its measurements. It is the
// observer-less session path, equivalent to
// NewSession(sc, SessionOptions{}).Run(); use a Session directly for
// cancellation or a progress stream (see session.go, observer.go).
func Run(sc Scenario) (*Result, error) {
	return NewSession(sc, SessionOptions{}).Run()
}

// runSingle is the single-engine runner. The session has already
// applied defaults and the shared validation.
func runSingle(ss *Session) (*Result, error) {
	sc := &ss.sc
	// A factory workload is consumed as one source.
	if sc.FlowSource == nil && sc.FlowSourceNew != nil {
		sc.FlowSource = sc.FlowSourceNew()
	}

	s := eventsim.New()
	rng := eventsim.NewRNG(sc.Seed)
	// One packet pool per run: endpoints allocate from it, and the
	// hosts (delivery) and fabric (drops) release back to it, making
	// the steady-state packet path allocation-free. Per-run ownership
	// keeps parallel sweep workers from sharing any mutable state.
	pool := netem.NewPacketPool()
	sc.Transport.Pool = pool

	// stopped mirrors the engine's one-shot stop flag: RunUntil consumes
	// a pending Stop on return, so the session's sliced drive loop needs
	// its own durable record that the run decided to end.
	stopped := false
	stop := func() { stopped = true; s.Stop() }

	res := &Result{
		Scenario:       sc.Name,
		Scheme:         sc.SchemeName,
		ShortThreshold: sc.ShortThreshold,
	}
	if sc.StreamStats {
		res.Stream = &StreamAgg{}
	}
	// obsAgg mirrors the streaming fold for observed record-mode runs:
	// snapshots want per-class aggregates even when the run retains its
	// records. It only ever reads completed records, so the simulation
	// cannot see it.
	var obsAgg *StreamAgg
	if ss.observing() && !sc.StreamStats {
		obsAgg = &StreamAgg{}
	}
	if sc.CollectTimeSeries {
		w := sc.TimeBucket.Seconds()
		res.ShortQueueDelayUs = stats.NewTimeSeries(w)
		res.ShortOOORatio = stats.NewTimeSeries(w)
		res.LongOOORatio = stats.NewTimeSeries(w)
		res.ShortGoodputBytes = stats.NewTimeSeries(w)
		res.LongGoodputBytes = stats.NewTimeSeries(w)
	}

	var hosts []*transport.Host
	deliver := func(host int, pkt *netem.Packet) { hosts[host].Receive(pkt) }
	var net topology.Network
	var err error
	if sc.BuildNetwork != nil {
		net, err = sc.BuildNetwork(s, sc.Balancer, rng.Split(), deliver)
	} else {
		net, err = topology.New(s, sc.Topology, sc.Balancer, rng.Split(), deliver)
	}
	if err != nil {
		return nil, fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
	}
	if len(sc.Faults) > 0 {
		fab, ok := net.(*topology.Fabric)
		if !ok {
			return nil, fmt.Errorf("sim: scenario %q: fault schedule requires the leaf-spine fabric", sc.Name)
		}
		if _, err := faults.Install(s, sc.Faults, fab.LinkPorts, sc.Tracer); err != nil {
			return nil, fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
		}
	}
	net.SetPool(pool)
	hosts = make([]*transport.Host, net.Hosts())
	for h := range hosts {
		host := h
		hosts[h] = transport.NewHost(s, h, func(pkt *netem.Packet) { net.Inject(host, pkt) })
		hosts[h].SetPool(pool)
	}
	closeLag := teardownLag(net, sc.Faults)

	// srecs is the run's packet-sample log (see the hook in openFlow).
	var srecs []sampleRec
	// remaining counts scheduled-but-unfinished flows; sourceDrained is
	// true once no further arrivals can appear (immediately for the
	// slice path, at the lazy source's exhaustion otherwise), so the
	// StopWhenDone check is the same predicate on both paths.
	remaining := len(sc.Flows)
	sourceDrained := sc.FlowSource == nil
	// openFlow runs at f.Start; it is the one shared body of the eager
	// (pre-scheduled slice) and lazy (pumped source) arrival paths.
	openFlow := func(i int, f workload.Flow) {
		id := netem.FlowID{Src: f.Src, Dst: f.Dst, Port: i}
		short := f.Size <= sc.ShortThreshold
		recvHost := hosts[f.Dst]
		sndHost := hosts[f.Src]
		snd := sndHost.OpenSender(sc.Transport, id, f.Size, func(done *transport.Sender) {
			closeReceiver(recvHost, s.Now(), closeLag, id)
			sc.Tracer.Record(trace.Event{
				At: s.Now(), Kind: trace.FlowEnd, Flow: id,
				Note: fmt.Sprintf("fct=%v retx=%d", done.Stats.FCT(), done.Stats.Retransmits),
			})
			if res.Stream != nil {
				// Fold and forget: the host already released the
				// endpoint, so nothing retains the record.
				res.Stream.Fold(&done.Stats, short, s.Now())
			}
			if obsAgg != nil {
				obsAgg.Fold(&done.Stats, short, s.Now())
			}
			ss.flowsDone++
			remaining--
			if sc.StopWhenDone && remaining == 0 && sourceDrained {
				stop()
			}
		})
		snd.Stats.Deadline = f.Deadline
		recv := recvHost.OpenReceiver(sc.Transport, id, f.Size, &snd.Stats)
		// Samples are logged and replayed in a canonical order after the
		// run (replaySampleRecs) rather than summed online: time-series
		// bucket sums are float additions, and only a shared replay
		// order makes them bit-identical to the sharded runner's.
		if (sc.SampleShortPackets && short) || sc.CollectTimeSeries {
			recv.Sample = func(ps transport.PacketSample) {
				srecs = append(srecs, sampleRec{ps: ps, short: short})
			}
		}
		if res.Stream == nil {
			res.Flows = append(res.Flows, &snd.Stats)
		}
		sc.Tracer.Record(trace.Event{
			At: s.Now(), Kind: trace.FlowStart, Flow: id,
			Note: f.Size.String(),
		})
		ss.flowsStarted++
		snd.Start()
	}

	checkFlow := func(i int, f workload.Flow) error {
		if f.Src == f.Dst || f.Src < 0 || f.Src >= len(hosts) || f.Dst < 0 || f.Dst >= len(hosts) {
			return fmt.Errorf("sim: flow %d has invalid endpoints %d->%d", i, f.Src, f.Dst)
		}
		return nil
	}

	var runErr error
	for i, f := range sc.Flows {
		f := f
		if err := checkFlow(i, f); err != nil {
			return nil, err
		}
		if sc.Replication != nil && sc.Replication.Copies > 1 && f.Size <= sc.Replication.Threshold {
			openReplicated(s, ss, obsAgg, res, hosts, f, i, closeLag, &remaining, stop)
			continue
		}
		i := i
		s.At(f.Start, func() { openFlow(i, f) })
	}
	if sc.FlowSource != nil {
		// Lazy pump: schedule one arrival ahead. Each flow's open event
		// pulls the next flow from the source and schedules it, so at
		// most one future arrival lives in the event heap at a time.
		var pump func(i int, f workload.Flow)
		pump = func(i int, f workload.Flow) {
			if err := checkFlow(i, f); err != nil {
				runErr = err
				stop()
				return
			}
			if f.Start < s.Now() {
				runErr = fmt.Errorf("sim: FlowSource went backwards: flow %d starts at %v, now %v", i, f.Start, s.Now())
				stop()
				return
			}
			remaining++
			s.At(f.Start, func() {
				openFlow(i, f)
				if nf, ok := sc.FlowSource.Next(); ok {
					pump(i+1, nf)
				} else {
					sourceDrained = true
				}
			})
		}
		if f, ok := sc.FlowSource.Next(); ok {
			pump(0, f)
		} else {
			return nil, fmt.Errorf("sim: scenario %q: FlowSource yielded no flows", sc.Name)
		}
	}

	// Goodput series: sample each flow's acked-byte progress once per
	// bucket (per-packet samples carry no size, and wrapping the
	// fabric's deliver path would double-dispatch).
	var flushGoodput func()
	if sc.CollectTimeSeries {
		flushGoodput = installGoodputSampler(s, sc, res)
	}

	// The run-control loop: drive the engine in bounded windows so the
	// session can check cancellation and emit snapshots strictly between
	// event batches. Slicing is behavior-neutral (see session.go): the
	// event sequence and the final clock are identical to one
	// RunUntil(MaxTime) call, observer attached or not.
	window := ss.window()
	next := window
	canceled := false
	for !stopped {
		if ss.Canceled() {
			canceled = true
			break
		}
		d := sc.MaxTime
		if next < d {
			d = next
		}
		s.RunUntil(d)
		if stopped || runErr != nil || s.Now() >= sc.MaxTime {
			break
		}
		if ss.observing() && s.Now() >= next {
			ss.events = s.Executed()
			ev := ss.baseEvent(ProgressSnapshot)
			ev.SimTime = s.Now()
			ev.Events = ss.events
			ev.EventsPerSec = ss.rate(ss.events)
			if res.Stream != nil {
				ev.Classes = res.Stream.Clone()
			} else if obsAgg != nil {
				ev.Classes = obsAgg.Clone()
			}
			ev.Uplinks = portSnapshots(net.BalancedPorts())
			ss.emit(ev)
		}
		next += window
	}
	ss.events = s.Executed()
	if canceled {
		return nil, ss.cancelErr()
	}
	if runErr != nil {
		return nil, runErr
	}
	if flushGoodput != nil {
		flushGoodput()
	}

	res.EndTime = s.Now()
	if len(srecs) > 0 {
		replaySampleRecs(sc, res, srecs, res.EndTime)
	}
	if res.Stream != nil {
		// Completed flows folded at their done callbacks; sweep the
		// still-open senders so unfinished flows count too, exactly as
		// the record-based accessors count them. Host order then FlowID
		// order keeps the fold sequence deterministic.
		for _, h := range hosts {
			h.EachOpenSenderSorted(func(snd *transport.Sender) {
				res.Stream.Fold(&snd.Stats, snd.Stats.Size <= sc.ShortThreshold, res.EndTime)
			})
		}
	}
	res.Drops = net.Drops()
	net.EveryQueue(func(_ string, q *netem.Queue) {
		res.FaultDrops += q.Stats().FaultDropped
	})
	res.Uplinks = portSnapshots(net.BalancedPorts())
	return res, nil
}

// minFabricDelayer is implemented by the partitionable topologies
// (leaf-spine, fat-tree): the minimum propagation delay over their
// boundary-capable links, independent of any partition.
type minFabricDelayer interface {
	MinFabricDelay() units.Time
}

// teardownLag returns the flow-teardown latency for a run on net: how
// long after a sender's completion its receiver is torn down. Teardown
// is modelled as a finite-latency event because an instantaneous close
// would be a zero-latency cross-shard influence — a retransmission
// still in flight when the sender finishes would be consumed by a
// sharded run (receiver open until the next barrier) but discarded by
// the single engine (receiver closed synchronously), and the extra
// duplicate ACK perturbs every downstream per-packet RNG draw. Using
// the minimum boundary-capable link delay — tightened by any
// fault-scheduled delay override, exactly like the sharded runner's
// lookahead — makes the lag (a) a pure function of scenario and
// topology, so both modes schedule the identical close event, and (b)
// at least as large as the sharded synchronization window, so a
// completion crossing a barrier can always still schedule its close in
// the future. Networks that cannot shard (custom BuildNetwork pipes)
// return 0 and keep the synchronous close.
func teardownLag(net topology.Network, sched faults.Schedule) units.Time {
	md, ok := net.(minFabricDelayer)
	if !ok {
		return 0
	}
	lag := md.MinFabricDelay()
	if lag <= 0 {
		return 0
	}
	for _, ev := range sched {
		if ev.Op == faults.OpDelay && ev.Delay < lag {
			lag = ev.Delay
		}
	}
	return lag
}

// closeReceiver tears down a flow's receiving endpoint at its sender's
// completion: deferred by the teardown lag on partitionable networks
// (see teardownLag), synchronous where no lag is defined.
func closeReceiver(h *transport.Host, done, lag units.Time, id netem.FlowID) {
	if lag > 0 {
		h.CloseReceiverAt(done, lag, id)
	} else {
		h.CloseReceiver(id)
	}
}

// installGoodputSampler periodically records each flow's acked-byte
// deltas into the goodput time series, bucketized by the sample time.
// The returned flush captures the final partial bucket after the run
// stops (completion can land between ticks).
func installGoodputSampler(s *eventsim.Sim, sc *Scenario, res *Result) (flush func()) {
	lastAcked := make(map[int]units.Bytes) // index in res.Flows
	sample := func() {
		at := s.Now().Seconds()
		for i, fs := range res.Flows {
			d := fs.BytesAcked - lastAcked[i]
			if d <= 0 {
				continue
			}
			lastAcked[i] = fs.BytesAcked
			if fs.Size <= sc.ShortThreshold {
				res.ShortGoodputBytes.Add(at, float64(d))
			} else {
				res.LongGoodputBytes.Add(at, float64(d))
			}
		}
	}
	period := sc.TimeBucket
	var tick func()
	tick = func() {
		sample()
		s.After(period, tick)
	}
	s.After(period, tick)
	return sample
}

// openReplicated realizes one flow as N racing copies (RepFlow). The
// canonical FlowStats in res.Flows receives the winner's record; losers
// keep draining but are otherwise ignored.
func openReplicated(s *eventsim.Sim, ss *Session, obsAgg *StreamAgg, res *Result, hosts []*transport.Host, f workload.Flow, idx int, closeLag units.Time, remaining *int, stop func()) {
	sc := &ss.sc
	canonical := &transport.FlowStats{
		ID:       netem.FlowID{Src: f.Src, Dst: f.Dst, Port: idx},
		Size:     f.Size,
		Deadline: f.Deadline,
	}
	res.Flows = append(res.Flows, canonical)
	won := false
	copies := sc.Replication.Copies
	s.At(f.Start, func() {
		for c := 0; c < copies; c++ {
			// Distinct Port per copy: per-flow schemes (ECMP, WCMP,
			// Presto, ...) hash the copies independently.
			id := netem.FlowID{Src: f.Src, Dst: f.Dst, Port: idx + (c+1)<<24}
			recvHost := hosts[f.Dst]
			sndHost := hosts[f.Src]
			snd := sndHost.OpenSender(sc.Transport, id, f.Size, func(done *transport.Sender) {
				closeReceiver(recvHost, s.Now(), closeLag, id)
				if won {
					return
				}
				won = true
				// The winner's record becomes the flow's record.
				*canonical = done.Stats
				canonical.ID = netem.FlowID{Src: f.Src, Dst: f.Dst, Port: idx}
				canonical.Deadline = f.Deadline
				sc.Tracer.Record(trace.Event{
					At: s.Now(), Kind: trace.FlowEnd, Flow: canonical.ID,
					Note: fmt.Sprintf("repflow winner fct=%v", done.Stats.FCT()),
				})
				if obsAgg != nil {
					obsAgg.Fold(canonical, f.Size <= sc.ShortThreshold, s.Now())
				}
				ss.flowsDone++
				*remaining--
				if sc.StopWhenDone && *remaining == 0 {
					stop()
				}
			})
			snd.Stats.Deadline = f.Deadline
			recvHost.OpenReceiver(sc.Transport, id, f.Size, &snd.Stats)
			snd.Start()
		}
		sc.Tracer.Record(trace.Event{
			At: s.Now(), Kind: trace.FlowStart,
			Flow: netem.FlowID{Src: f.Src, Dst: f.Dst, Port: idx},
			Note: fmt.Sprintf("%v x%d replicas", f.Size, copies),
		})
		ss.flowsStarted++
	})
}
