package sim

import (
	"runtime"
	"sync"
)

// RunAll executes the scenarios concurrently (each scenario is its own
// single-threaded simulation; the parallelism is across runs, which is
// where a parameter sweep's wall-clock goes on multicore machines).
// Results are returned in input order; the first error, if any, is
// returned alongside whatever completed.
func RunAll(scenarios []Scenario, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]*Result, len(scenarios))
	errs := make([]error, len(scenarios))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(scenarios[i])
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
