package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"tlb/internal/units"
)

// This file is the shared sweep runner every experiment submits its
// scenario batches to. Each scenario is its own single-threaded
// simulation; the parallelism is across runs, which is where a
// parameter sweep's wall-clock goes on multicore machines.
//
// Determinism: a scenario owns its seed and its simulation owns all of
// its state, so the Result of a scenario does not depend on which
// worker ran it or on how many workers there were. Results are always
// returned in input order; callers reduce them in that order and get
// byte-identical figures at any worker count (enforced by
// TestParallelSerialIdenticalFigures in internal/experiments).
//
// Each scenario runs inside a Session (session.go): the sweep is a
// pool of sessions plus one serialized observer stream, and Cancel
// reaches every running and not-yet-started session.

// SweepOptions configure one sweep.
type SweepOptions struct {
	// Workers is the number of scenarios executed concurrently;
	// <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called once per finished scenario.
	// Calls are serialized by the runner, so the callback may write to
	// shared state (a log) without its own locking. It runs on worker
	// goroutines; keep it cheap. It is an adapter over the observer
	// stream: one call per ProgressDone event.
	Progress func(SweepProgress)
	// Observer, when non-nil, receives the merged progress stream of
	// every session in the sweep: periodic snapshots plus one Done per
	// scenario, serialized under the sweep's lock (so one instance
	// needs no locking of its own), with Completed/Total stamped on
	// Done events.
	Observer Observer
	// SnapshotEvery is the per-session snapshot period in simulation
	// time (0 means DefaultSnapshotEvery). Only meaningful with an
	// Observer.
	SnapshotEvery units.Time
	// Clock supplies wall time for Elapsed fields; nil means
	// WallClock().
	Clock Clock
}

// SweepProgress describes one completed scenario of a sweep.
type SweepProgress struct {
	// Index is the scenario's position in the input slice.
	Index int
	// Completed counts scenarios finished so far, including this one;
	// Total is the batch size — "Completed/Total" is the k/n line.
	Completed, Total int
	// Scenario is the Scenario.Name.
	Scenario string
	// Elapsed is the wall-clock time this scenario's Run took.
	Elapsed time.Duration
	// Err is the scenario's failure, if any.
	Err error
}

// SweepFailure is one failed scenario of a sweep.
type SweepFailure struct {
	Index    int
	Scenario string
	Err      error
}

// SweepError aggregates every failed scenario of a sweep, so a batch
// with several broken configurations reports all of them instead of
// just the first.
type SweepError struct {
	Failures []SweepFailure
}

func (e *SweepError) Error() string {
	if len(e.Failures) == 1 {
		f := e.Failures[0]
		return fmt.Sprintf("scenario %q (#%d): %v", f.Scenario, f.Index, f.Err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d scenarios failed:", len(e.Failures))
	for _, f := range e.Failures {
		fmt.Fprintf(&b, "\n  %q (#%d): %v", f.Scenario, f.Index, f.Err)
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is / errors.As.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}

// Sweep is the handle for one scenario batch: Run executes it on the
// worker pool, Cancel (from any goroutine) stops every running session
// at its next batch boundary and prevents unstarted scenarios from
// building at all.
type Sweep struct {
	scenarios []Scenario
	opt       SweepOptions
	clock     Clock
	results   []*Result
	errs      []error

	mu       sync.Mutex // guards sessions + canceled
	sessions []*Session
	canceled bool

	// emitMu serializes the observer/progress stream and guards the
	// completion counter. It is distinct from mu so Cancel (which takes
	// mu) is safe to call from inside a callback (which holds emitMu).
	emitMu    sync.Mutex
	completed int
}

// NewSweep prepares a sweep over the scenarios. The slice is retained;
// do not mutate it until Run returns.
func NewSweep(scenarios []Scenario, opt SweepOptions) *Sweep {
	if opt.Clock == nil {
		opt.Clock = WallClock()
	}
	return &Sweep{
		scenarios: scenarios,
		opt:       opt,
		clock:     opt.Clock,
		results:   make([]*Result, len(scenarios)),
		errs:      make([]error, len(scenarios)),
		sessions:  make([]*Session, len(scenarios)),
	}
}

// Cancel requests cooperative cancellation of the whole sweep: every
// running session stops at its next event-batch boundary, and every
// scenario not yet started fails with ErrCanceled without running.
// Safe from any goroutine — including an Observer or Progress
// callback — and idempotent.
func (sw *Sweep) Cancel() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.canceled = true
	for _, ss := range sw.sessions {
		if ss != nil {
			ss.Cancel()
		}
	}
}

// Run executes the sweep and returns the results in input order. On
// failure the returned error is a *SweepError listing every failed
// scenario; the result slice still holds whatever completed. A
// panicking scenario is recovered in its worker and reported as that
// scenario's failure — it cannot wedge the pool (the job dispatch
// below blocks until a worker receives, so a dead worker would
// deadlock the sweep).
func (sw *Sweep) Run() ([]*Result, error) {
	workers := sw.opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sw.scenarios) {
		workers = len(sw.scenarios)
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sw.runOne(i)
			}
		}()
	}
	for i := range sw.scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	var failures []SweepFailure
	for i, err := range sw.errs {
		if err != nil {
			failures = append(failures, SweepFailure{Index: i, Scenario: sw.scenarios[i].Name, Err: err})
		}
	}
	if len(failures) > 0 {
		return sw.results, &SweepError{Failures: failures}
	}
	return sw.results, nil
}

// runOne executes scenario i inside its own session, converting a
// panic into that scenario's error so the worker survives to drain
// the job channel.
func (sw *Sweep) runOne(i int) {
	start := sw.clock()
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("sim: scenario %q panicked: %v\n%s", sw.scenarios[i].Name, r, debug.Stack())
			sw.results[i], sw.errs[i] = nil, err
			// The session never reached its Done event; synthesize the
			// terminal event so stream consumers still see one terminal
			// event per scenario.
			ev := ProgressEvent{
				Kind:     ProgressDone,
				Index:    i,
				Total:    len(sw.scenarios),
				Scenario: sw.scenarios[i].Name,
				Scheme:   sw.scenarios[i].SchemeName,
				Elapsed:  sw.clock() - start,
				Err:      err,
			}
			sw.observe(ev)
		}
	}()
	snapEvery := sw.opt.SnapshotEvery
	if sw.opt.Observer == nil {
		// Nobody consumes snapshots; keep the Done event (it drives the
		// Progress adapter) but skip the per-window aggregate clones.
		snapEvery = NoSnapshots
	}
	var obs Observer
	if sw.opt.Observer != nil || sw.opt.Progress != nil {
		obs = ObserverFunc(sw.observe)
	}
	ss := NewSession(sw.scenarios[i], SessionOptions{
		Observer:      obs,
		SnapshotEvery: snapEvery,
		Clock:         sw.clock,
		Index:         i,
		Total:         len(sw.scenarios),
	})
	sw.mu.Lock()
	sw.sessions[i] = ss
	if sw.canceled {
		ss.Cancel()
	}
	sw.mu.Unlock()
	sw.results[i], sw.errs[i] = ss.Run()
}

// observe serializes the sessions' event streams, stamps the sweep's
// completion counter onto Done events, and fans out to the Observer
// and the legacy Progress adapter.
func (sw *Sweep) observe(ev ProgressEvent) {
	sw.emitMu.Lock()
	defer sw.emitMu.Unlock()
	if ev.Kind == ProgressDone {
		sw.completed++
		ev.Completed = sw.completed
	}
	if sw.opt.Observer != nil {
		sw.opt.Observer.OnProgress(ev)
	}
	if sw.opt.Progress != nil && ev.Kind == ProgressDone {
		sw.opt.Progress(SweepProgress{
			Index:     ev.Index,
			Completed: ev.Completed,
			Total:     ev.Total,
			Scenario:  ev.Scenario,
			Elapsed:   ev.Elapsed,
			Err:       ev.Err,
		})
	}
}

// RunSweep executes the scenarios on a worker pool and returns their
// results in input order: NewSweep(...).Run() for callers that do not
// need the cancellation handle.
func RunSweep(scenarios []Scenario, opt SweepOptions) ([]*Result, error) {
	return NewSweep(scenarios, opt).Run()
}

// RunAll is RunSweep without progress reporting — the minimal batch
// API for callers that only want the worker pool.
func RunAll(scenarios []Scenario, workers int) ([]*Result, error) {
	return RunSweep(scenarios, SweepOptions{Workers: workers})
}
