package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
)

// This file is the shared sweep runner every experiment submits its
// scenario batches to. Each scenario is its own single-threaded
// simulation; the parallelism is across runs, which is where a
// parameter sweep's wall-clock goes on multicore machines.
//
// Determinism: a scenario owns its seed and its simulation owns all of
// its state, so the Result of a scenario does not depend on which
// worker ran it or on how many workers there were. Results are always
// returned in input order; callers reduce them in that order and get
// byte-identical figures at any worker count (enforced by
// TestParallelSerialIdenticalFigures in internal/experiments).

// SweepOptions configure one RunSweep call.
type SweepOptions struct {
	// Workers is the number of scenarios executed concurrently;
	// <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called once per finished scenario.
	// Calls are serialized by the runner, so the callback may write to
	// shared state (a log) without its own locking. It runs on worker
	// goroutines; keep it cheap.
	Progress func(SweepProgress)
}

// SweepProgress describes one completed scenario of a sweep.
type SweepProgress struct {
	// Index is the scenario's position in the input slice.
	Index int
	// Completed counts scenarios finished so far, including this one;
	// Total is the batch size — "Completed/Total" is the k/n line.
	Completed, Total int
	// Scenario is the Scenario.Name.
	Scenario string
	// Elapsed is the wall-clock time this scenario's Run took.
	Elapsed time.Duration
	// Err is the scenario's failure, if any.
	Err error
}

// SweepFailure is one failed scenario of a sweep.
type SweepFailure struct {
	Index    int
	Scenario string
	Err      error
}

// SweepError aggregates every failed scenario of a sweep, so a batch
// with several broken configurations reports all of them instead of
// just the first.
type SweepError struct {
	Failures []SweepFailure
}

func (e *SweepError) Error() string {
	if len(e.Failures) == 1 {
		f := e.Failures[0]
		return fmt.Sprintf("scenario %q (#%d): %v", f.Scenario, f.Index, f.Err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d scenarios failed:", len(e.Failures))
	for _, f := range e.Failures {
		fmt.Fprintf(&b, "\n  %q (#%d): %v", f.Scenario, f.Index, f.Err)
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is / errors.As.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}

// RunSweep executes the scenarios on a worker pool and returns their
// results in input order. On failure the returned error is a
// *SweepError listing every failed scenario; the result slice still
// holds whatever completed.
func RunSweep(scenarios []Scenario, opt SweepOptions) ([]*Result, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]*Result, len(scenarios))
	errs := make([]error, len(scenarios))
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex // serializes Progress calls + completed
		completed int
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				results[i], errs[i] = Run(scenarios[i])
				if opt.Progress != nil {
					mu.Lock()
					completed++
					opt.Progress(SweepProgress{
						Index:     i,
						Completed: completed,
						Total:     len(scenarios),
						Scenario:  scenarios[i].Name,
						Elapsed:   time.Since(start),
						Err:       errs[i],
					})
					mu.Unlock()
				}
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	var failures []SweepFailure
	for i, err := range errs {
		if err != nil {
			failures = append(failures, SweepFailure{Index: i, Scenario: scenarios[i].Name, Err: err})
		}
	}
	if len(failures) > 0 {
		return results, &SweepError{Failures: failures}
	}
	return results, nil
}

// RunAll is RunSweep without progress reporting — the minimal batch
// API for callers that only want the worker pool.
func RunAll(scenarios []Scenario, workers int) ([]*Result, error) {
	return RunSweep(scenarios, SweepOptions{Workers: workers})
}
