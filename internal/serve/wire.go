package serve

import (
	"encoding/json"
	"fmt"

	"tlb/internal/sim"
)

// This file defines the JSON shapes the server speaks: one wireEvent
// per sim.ProgressEvent on the SSE stream, plus the small submit /
// status / cancel response bodies. Times go out as float milliseconds
// — the natural unit of FCTs in this paper — so clients never parse
// unit strings.

// wireClass is one flow class's live aggregate: the in-flight
// counterpart of the summary table's AFCT columns.
type wireClass struct {
	Class     string  `json:"class"`
	Count     int64   `json:"count"`
	Completed int64   `json:"completed"`
	AFCTMs    float64 `json:"afctMs"`
	P99Ms     float64 `json:"p99Ms"`
}

// wireUplink is one balanced port's live queue statistic.
type wireUplink struct {
	Label        string  `json:"label"`
	MeanQueueLen float64 `json:"meanQueueLen"`
	Drops        int64   `json:"drops"`
	FaultDrops   int64   `json:"faultDrops,omitempty"`
}

// wireEvent is one SSE payload: a snapshot or a per-scenario terminal.
type wireEvent struct {
	Run          string      `json:"run"`
	Kind         string      `json:"kind"`
	Index        int         `json:"index"`
	Total        int         `json:"total"`
	Completed    int         `json:"completed,omitempty"`
	Scenario     string      `json:"scenario"`
	Scheme       string      `json:"scheme,omitempty"`
	ElapsedMs    float64     `json:"elapsedMs"`
	SimTimeMs    float64     `json:"simTimeMs"`
	Events       uint64      `json:"events"`
	EventsPerSec float64     `json:"eventsPerSec"`
	FlowsStarted int64       `json:"flowsStarted"`
	FlowsDone    int64       `json:"flowsDone"`
	Error        string      `json:"error,omitempty"`
	Classes      []wireClass `json:"classes,omitempty"`
	Uplinks      []wireUplink `json:"uplinks,omitempty"`
}

// wireEnd is the run-level terminal frame, sent after every scenario
// has its Done event.
type wireEnd struct {
	Run       string `json:"run"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	Canceled  bool   `json:"canceled,omitempty"`
	Error     string `json:"error,omitempty"`
}

// classNames orders the wire encoding of the three flow classes.
//
//simlint:allow sharedstate(immutable name table; written only at init)
var classNames = [...]struct {
	class sim.Class
	name  string
}{
	{sim.AllFlows, "all"},
	{sim.ShortFlows, "short"},
	{sim.LongFlows, "long"},
}

// encodeEvent reduces a ProgressEvent to its wire shape.
func encodeEvent(runID string, ev sim.ProgressEvent) wireEvent {
	w := wireEvent{
		Run:          runID,
		Kind:         ev.Kind.String(),
		Index:        ev.Index,
		Total:        ev.Total,
		Completed:    ev.Completed,
		Scenario:     ev.Scenario,
		Scheme:       ev.Scheme,
		ElapsedMs:    ev.Elapsed.Seconds() * 1e3,
		SimTimeMs:    ev.SimTime.Millis(),
		Events:       ev.Events,
		EventsPerSec: ev.EventsPerSec,
		FlowsStarted: ev.FlowsStarted,
		FlowsDone:    ev.FlowsDone,
	}
	if ev.Err != nil {
		w.Error = ev.Err.Error()
	}
	if ev.Classes != nil {
		for _, cn := range classNames {
			a := ev.Classes.Agg(cn.class)
			wc := wireClass{
				Class:     cn.name,
				Count:     a.Count,
				Completed: a.Completed,
				AFCTMs:    a.FCT.Mean() * 1e3,
			}
			if a.Sketch != nil {
				wc.P99Ms = a.Sketch.Percentile(99) * 1e3
			}
			w.Classes = append(w.Classes, wc)
		}
	}
	for _, p := range ev.Uplinks {
		u := wireUplink{
			Label:      p.Label,
			Drops:      p.Queue.Dropped,
			FaultDrops: p.Queue.FaultDropped,
		}
		if arrivals := p.Queue.Enqueued + p.Queue.Dropped; arrivals > 0 {
			u.MeanQueueLen = float64(p.Queue.SumLenOnArrival) / float64(arrivals)
		}
		w.Uplinks = append(w.Uplinks, u)
	}
	return w
}

// sseFrame renders one named SSE frame with a JSON data line.
func sseFrame(event string, payload any) []byte {
	data, err := json.Marshal(payload)
	if err != nil {
		// Wire types marshal by construction; a failure here is a
		// programming error worth surfacing to the stream.
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return []byte("event: " + event + "\ndata: " + string(data) + "\n\n")
}
