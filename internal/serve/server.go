// Package serve is tlbsim's run-submission server: POST a scenario
// spec (or an array of them — a campaign), watch the live progress
// stream over SSE, fetch the self-contained HTML report, cancel with
// DELETE. It is a thin shell over the sim session layer: one sweep per
// submitted run, one executor goroutine per sweep (the package's only
// goroutine, in this file), everything else served from retained
// event frames under a lock.
//
//	POST   /runs              submit spec JSON  → {"id": ...}
//	GET    /runs/{id}         status JSON
//	GET    /runs/{id}/events  SSE: snapshot* done* end (replays from the start)
//	GET    /runs/{id}/report  self-contained HTML report (after completion)
//	DELETE /runs/{id}         cancel via the sweep handle
//
// Determinism note: the server is run-control, not measurement — it
// attaches observers and cancels sessions, both of which are
// guaranteed result-neutral by the session layer, so a spec submitted
// here produces byte-identical figures to the same spec under
// cmd/tlbsim -spec.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"tlb/internal/report"
	"tlb/internal/sim"
	"tlb/internal/spec"
	"tlb/internal/trace"
	"tlb/internal/units"
)

// Options configure a Server.
type Options struct {
	// Workers bounds concurrent scenarios per submitted run (<= 0:
	// GOMAXPROCS, as in sim.SweepOptions).
	Workers int
	// SnapshotEvery is the SSE snapshot period in simulation time
	// (0: sim.DefaultSnapshotEvery).
	SnapshotEvery units.Time
	// Clock supplies wall time for event Elapsed fields; nil means
	// sim.WallClock(). Injected so tests control the clock seam.
	Clock sim.Clock
}

// Server routes run submissions onto the sim sweep layer. It is an
// http.Handler; Close cancels every run and joins the executors.
type Server struct {
	opt Options
	mux *http.ServeMux
	wg  sync.WaitGroup

	mu     sync.Mutex
	runs   map[string]*run
	order  []*run
	nextID int
	closed bool
}

// run is one submitted campaign and everything its handlers need:
// the sweep handle for cancel, pre-rendered SSE frames for replay,
// and the per-spec results for the report.
type run struct {
	id      string
	specs   []*spec.Spec
	tracers []*trace.Tracer
	sweep   *sim.Sweep

	mu        sync.Mutex
	cond      *sync.Cond
	frames    [][]byte // every SSE frame so far, in stream order
	completed int
	done      bool
	canceled  bool
	results   []*sim.Result
	err       error
}

// New builds a server. Callers own the http.Server / listener around
// it (see cmd/tlbsim -serve).
func New(opt Options) *Server {
	if opt.Clock == nil {
		opt.Clock = sim.WallClock()
	}
	s := &Server{opt: opt, runs: make(map[string]*run)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /runs", s.handleSubmit)
	s.mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /runs/{id}/report", s.handleReport)
	s.mux.HandleFunc("DELETE /runs/{id}", s.handleDelete)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every run and waits for their executors; the server
// rejects new submissions afterwards. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for _, rn := range s.order {
		rn.cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// parseSpecs decodes a request body holding one spec object or an
// array of them, applying the spec layer's strict decoding and
// JSON-path validation per element.
func parseSpecs(body []byte) ([]*spec.Spec, error) {
	trimmed := strings.TrimSpace(string(body))
	if trimmed == "" {
		return nil, errors.New("empty request body")
	}
	var raws []json.RawMessage
	if trimmed[0] == '[' {
		if err := json.Unmarshal([]byte(trimmed), &raws); err != nil {
			return nil, fmt.Errorf("campaign array: %v", err)
		}
	} else {
		raws = []json.RawMessage{json.RawMessage(trimmed)}
	}
	if len(raws) == 0 {
		return nil, errors.New("campaign array is empty")
	}
	specs := make([]*spec.Spec, len(raws))
	for i, raw := range raws {
		sp, err := spec.LoadBytes(raw)
		if err == nil {
			err = sp.Validate()
		}
		if err != nil {
			return nil, fmt.Errorf("specs[%d]: %w", i, err)
		}
		specs[i] = sp
	}
	return specs, nil
}

// runID picks the submission's id: the first explicit spec runId, or
// the next server-assigned r<n>. Caller holds s.mu.
func (s *Server) runID(specs []*spec.Spec) (string, error) {
	for _, sp := range specs {
		if sp.RunID == "" {
			continue
		}
		if !validID(sp.RunID) {
			return "", fmt.Errorf("runId %q: use 1-64 letters, digits, '-' or '_'", sp.RunID)
		}
		if _, dup := s.runs[sp.RunID]; dup {
			return "", fmt.Errorf("runId %q already exists", sp.RunID)
		}
		return sp.RunID, nil
	}
	s.nextID++
	return fmt.Sprintf("r%d", s.nextID), nil
}

func validID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	specs, err := parseSpecs(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scenarios := make([]sim.Scenario, len(specs))
	tracers := make([]*trace.Tracer, len(specs))
	for i, sp := range specs {
		sc, err := sp.Compile()
		if err != nil {
			http.Error(w, fmt.Sprintf("specs[%d]: %v", i, err), http.StatusBadRequest)
			return
		}
		// A reported faulted run also records its fault timeline (the
		// sharded runner rejects tracers, so only unsharded runs do).
		if sp.Outputs.Report && len(sp.Faults) > 0 && sc.Shards <= 1 {
			tracers[i] = trace.New(0).WithFilter(trace.Filter{Kinds: []trace.EventKind{trace.LinkFault}})
			sc.Tracer = tracers[i]
		}
		scenarios[i] = sc
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		http.Error(w, "server closing", http.StatusServiceUnavailable)
		return
	}
	id, err := s.runID(specs)
	if err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	for _, sp := range specs {
		sp.RunID = id // echoed in status, events and report rows
	}
	rn := &run{id: id, specs: specs, tracers: tracers}
	rn.cond = sync.NewCond(&rn.mu)
	rn.sweep = sim.NewSweep(scenarios, sim.SweepOptions{
		Workers:       s.opt.Workers,
		Observer:      sim.ObserverFunc(rn.observe),
		SnapshotEvery: s.opt.SnapshotEvery,
		Clock:         s.opt.Clock,
	})
	s.runs[id] = rn
	s.order = append(s.order, rn)
	s.wg.Add(1)
	s.mu.Unlock()

	go func() { // the package's one goroutine: this run's executor
		defer s.wg.Done()
		results, err := rn.sweep.Run()
		rn.finish(results, err)
	}()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{
		"id":        id,
		"scenarios": len(specs),
		"status":    "/runs/" + id,
		"events":    "/runs/" + id + "/events",
		"report":    "/runs/" + id + "/report",
	})
}

// observe is the run's sim.Observer: it renders each event to an SSE
// frame and wakes the streams. Calls are serialized by the sweep.
func (rn *run) observe(ev sim.ProgressEvent) {
	kind := ev.Kind.String()
	frame := sseFrame(kind, encodeEvent(rn.id, ev))
	rn.mu.Lock()
	if ev.Kind == sim.ProgressDone {
		rn.completed = ev.Completed
	}
	rn.frames = append(rn.frames, frame)
	rn.mu.Unlock()
	rn.cond.Broadcast()
}

// finish records the sweep's outcome and appends the run-level
// terminal frame.
func (rn *run) finish(results []*sim.Result, err error) {
	rn.mu.Lock()
	rn.results = results
	rn.err = err
	end := wireEnd{Run: rn.id, Completed: rn.completed, Total: len(rn.specs), Canceled: rn.canceled}
	if err != nil {
		end.Error = err.Error()
	}
	rn.frames = append(rn.frames, sseFrame("end", end))
	rn.done = true
	rn.mu.Unlock()
	rn.cond.Broadcast()
}

// cancel requests cooperative cancellation of the run's sweep.
func (rn *run) cancel() {
	rn.mu.Lock()
	rn.canceled = true
	rn.mu.Unlock()
	rn.sweep.Cancel()
	rn.cond.Broadcast()
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *run {
	s.mu.Lock()
	rn := s.runs[r.PathValue("id")]
	s.mu.Unlock()
	if rn == nil {
		http.Error(w, "no such run", http.StatusNotFound)
	}
	return rn
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rn := s.lookup(w, r)
	if rn == nil {
		return
	}
	rn.mu.Lock()
	st := map[string]any{
		"id":        rn.id,
		"total":     len(rn.specs),
		"completed": rn.completed,
		"done":      rn.done,
		"canceled":  rn.canceled,
	}
	if rn.err != nil {
		st["error"] = rn.err.Error()
	}
	rn.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	rn := s.lookup(w, r)
	if rn == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Wake the Wait below when the client goes away.
	ctx := r.Context()
	stop := context.AfterFunc(ctx, rn.cond.Broadcast)
	defer stop()

	cursor := 0
	for {
		rn.mu.Lock()
		for cursor >= len(rn.frames) && !rn.done && ctx.Err() == nil {
			rn.cond.Wait()
		}
		frames := rn.frames[cursor:]
		cursor = len(rn.frames)
		done := rn.done
		rn.mu.Unlock()
		for _, f := range frames {
			if _, err := w.Write(f); err != nil {
				return
			}
		}
		if len(frames) > 0 {
			flusher.Flush()
		}
		if ctx.Err() != nil || (done && len(frames) == 0) {
			return
		}
		if done {
			// Drain check: loop once more to pick up frames appended
			// between our snapshot and done (finish appends before done).
			continue
		}
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rn := s.lookup(w, r)
	if rn == nil {
		return
	}
	rn.mu.Lock()
	done := rn.done
	results := rn.results
	runErr := rn.err
	rn.mu.Unlock()
	if !done {
		http.Error(w, "run still in progress; wait for the SSE end event", http.StatusConflict)
		return
	}
	c := report.Campaign{Title: "tlbsim run " + rn.id}
	errAt := make([]error, len(rn.specs))
	var se *sim.SweepError
	if errors.As(runErr, &se) {
		for _, f := range se.Failures {
			if f.Index >= 0 && f.Index < len(errAt) {
				errAt[f.Index] = f.Err
			}
		}
	}
	// outputs.report selects rows; a campaign where no spec opts in
	// reports everything.
	selective := false
	for _, sp := range rn.specs {
		if sp.Outputs.Report {
			selective = true
			break
		}
	}
	for i, sp := range rn.specs {
		if selective && !sp.Outputs.Report {
			continue
		}
		item := report.Item{
			Scenario: sp.Name,
			Scheme:   sp.Scheme.Label,
			Err:      errAt[i],
			Faults:   rn.tracers[i].Events(),
		}
		if item.Scheme == "" {
			item.Scheme = sp.Scheme.Name
		}
		if results != nil {
			item.Result = results[i]
		}
		c.Items = append(c.Items, item)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(report.HTML(c))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	rn := s.lookup(w, r)
	if rn == nil {
		return
	}
	rn.cancel()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"id": rn.id, "canceled": true})
}
