package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"tlb/internal/report"
	"tlb/internal/spec"
	"tlb/internal/units"

	// Schemes used by submitted specs register themselves.
	_ "tlb/internal/core"
)

//simlint:allow sharedstate(test-only golden-update flag: written once by flag parsing before any test runs)
var update = flag.Bool("update", false, "rewrite golden files")

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return s, ts
}

// submit POSTs the body and returns the decoded response and status.
func submit(t *testing.T, ts *httptest.Server, body []byte) (map[string]any, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("submit response %q: %v", raw, err)
		}
	} else {
		out["error"] = string(raw)
	}
	return out, resp.StatusCode
}

type sseEvent struct {
	name string
	data string
}

// readSSE consumes the run's event stream until it closes (the server
// ends it after the run-level end frame) and returns the events.
func readSSE(t *testing.T, ts *httptest.Server, id string, during func(sseEvent)) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if during != nil {
					during(cur)
				}
			}
			cur = sseEvent{}
		}
	}
	return events
}

func quickstartSpec(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "quickstart", "spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// slowSpec builds a spec that runs long enough (tens of sim-ms) to be
// canceled mid-flight.
func slowSpec(name, runID string) *spec.Spec {
	return &spec.Spec{
		Version: spec.Version,
		Name:    name,
		RunID:   runID,
		Seed:    3,
		Scheme:  spec.Scheme{Name: "ecmp"},
		Topology: spec.Topology{
			Leaves: 2, Spines: 2, HostsPerLeaf: 2,
			HostLink:   spec.Link{Bandwidth: spec.Bw(units.Gbps), Delay: spec.Dur(5 * units.Microsecond)},
			FabricLink: spec.Link{Bandwidth: spec.Bw(units.Gbps), Delay: spec.Dur(10 * units.Microsecond)},
			Queue:      spec.Queue{Capacity: 256, ECNThreshold: 20},
		},
		Workload: spec.Workload{
			Kind: "mix",
			Groups: []spec.MixGroup{{
				Longs:     4,
				LongSizes: &spec.SizeDist{Kind: "fixed", Size: spec.Sz(50 * units.MB)},
			}},
		},
		Run: spec.Run{MaxTime: spec.Dur(30 * units.Second), StopWhenDone: true},
	}
}

func marshal(t *testing.T, sp *spec.Spec) []byte {
	t.Helper()
	data, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServeSmoke is the end-to-end path the Makefile's serve-smoke
// target runs under -race: POST the quickstart spec, watch ≥1 snapshot
// then the terminal events over SSE, fetch the report and pin its
// structural skeleton.
func TestServeSmoke(t *testing.T) {
	_, ts := newTestServer(t, Options{SnapshotEvery: 500 * units.Microsecond})
	out, code := submit(t, ts, quickstartSpec(t))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, out["error"])
	}
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("no run id in %v", out)
	}

	events := readSSE(t, ts, id, nil)
	var snapshots, dones, ends int
	for _, ev := range events {
		switch ev.name {
		case "snapshot":
			snapshots++
			if !strings.Contains(ev.data, `"run":"`+id+`"`) {
				t.Fatalf("snapshot missing run id echo: %s", ev.data)
			}
		case "done":
			dones++
		case "end":
			ends++
		}
	}
	if snapshots < 1 {
		t.Fatalf("no snapshot events (got %d events total)", len(events))
	}
	if dones != 1 || ends != 1 {
		t.Fatalf("terminal events: %d done, %d end; want 1 and 1", dones, ends)
	}
	if last := events[len(events)-1]; last.name != "end" {
		t.Fatalf("stream ended with %q, want end", last.name)
	}
	// Done events arrive after every snapshot of their scenario.
	if events[len(events)-2].name != "done" {
		t.Fatalf("event before end is %q, want done", events[len(events)-2].name)
	}

	// A live-aggregate snapshot carries class stats with completions.
	var lastSnap map[string]any
	for _, ev := range events {
		if ev.name == "done" {
			if err := json.Unmarshal([]byte(ev.data), &lastSnap); err != nil {
				t.Fatalf("done payload: %v", err)
			}
		}
	}
	if lastSnap["classes"] == nil {
		t.Fatalf("done event has no class aggregates: %v", lastSnap)
	}

	// Replay: a second subscriber after completion sees the same stream.
	replay := readSSE(t, ts, id, nil)
	if len(replay) != len(events) {
		t.Fatalf("replay returned %d events, live stream had %d", len(replay), len(events))
	}

	// Report: fetch and pin the structural skeleton.
	resp, err := http.Get(ts.URL + "/runs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	doc, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d: %s", resp.StatusCode, doc)
	}
	got := report.Skeleton(doc)
	golden := filepath.Join("testdata", "report_skeleton.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("report skeleton drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Status reflects completion.
	var st map[string]any
	sresp, err := http.Get(ts.URL + "/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["done"] != true || st["completed"] != float64(1) {
		t.Fatalf("status after completion: %v", st)
	}
}

// TestServeDeleteMidRun cancels a running campaign with DELETE: the
// SSE stream must still terminate with per-scenario done events plus a
// canceled end frame, and no goroutines may leak once the server
// closes.
func TestServeDeleteMidRun(t *testing.T) {
	s := New(Options{SnapshotEvery: 200 * units.Microsecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	baseline := runtime.NumGoroutine()

	body := []byte("[" + string(marshal(t, slowSpec("slow-a", "cancelme"))) + "," +
		string(marshal(t, slowSpec("slow-b", ""))) + "]")
	out, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, out["error"])
	}
	id, _ := out["id"].(string)
	if id != "cancelme" {
		t.Fatalf("run id %q, want the spec's runId echoed", id)
	}

	deleted := false
	events := readSSE(t, ts, id, func(ev sseEvent) {
		if ev.name == "snapshot" && !deleted {
			deleted = true
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/runs/"+id, nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("delete status %d", resp.StatusCode)
			}
		}
	})
	if !deleted {
		t.Fatal("no snapshot event arrived to trigger the delete")
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	last := events[len(events)-1]
	if last.name != "end" {
		t.Fatalf("stream ended with %q, want end", last.name)
	}
	var end map[string]any
	if err := json.Unmarshal([]byte(last.data), &end); err != nil {
		t.Fatal(err)
	}
	if end["canceled"] != true {
		t.Fatalf("end frame not marked canceled: %v", end)
	}
	if errText, _ := end["error"].(string); !strings.Contains(errText, "run canceled") {
		t.Fatalf("end frame error %q does not say run canceled", errText)
	}
	dones := 0
	for _, ev := range events {
		if ev.name == "done" {
			dones++
		}
	}
	if dones != 2 {
		t.Fatalf("%d done events after cancel, want one per scenario", dones)
	}

	// The canceled run's sessions are freed: after Close joins the
	// executor, the goroutine count settles back to the baseline.
	s.Close()
	ts.Close()
	settled := false
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseline {
			settled = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !settled {
		t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
	}
}

// TestServeRejectsBadSpecs: submission errors surface the spec layer's
// JSON-path messages with a 400, and bad ids conflict with 409.
func TestServeRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body, wantSub string
	}{
		{"empty", "", "empty request body"},
		{"garbage", "{not json", "specs[0]"},
		{"unknown field", `{"version":1,"nonsense":true}`, "nonsense"},
		{"empty array", "[]", "campaign array is empty"},
		{"bad scheme", string(marshalMut(t, func(sp *spec.Spec) { sp.Scheme.Name = "warp-drive" })), "warp-drive"},
	}
	for _, tc := range cases {
		out, code := submit(t, ts, []byte(tc.body))
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, code)
		}
		if msg, _ := out["error"].(string); !strings.Contains(msg, tc.wantSub) {
			t.Fatalf("%s: error %q missing %q", tc.name, msg, tc.wantSub)
		}
	}

	// Unknown run → 404; duplicate runId → 409.
	resp, err := http.Get(ts.URL + "/runs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run status %d", resp.StatusCode)
	}
	if _, code := submit(t, ts, marshal(t, slowSpec("dup", "dup-id"))); code != http.StatusAccepted {
		t.Fatalf("first dup-id submit: %d", code)
	}
	out, code := submit(t, ts, marshal(t, slowSpec("dup2", "dup-id")))
	if code != http.StatusConflict {
		t.Fatalf("duplicate runId: %d %v", code, out)
	}
}

func marshalMut(t *testing.T, mut func(*spec.Spec)) []byte {
	t.Helper()
	sp := slowSpec("mut", "")
	mut(sp)
	data, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
