package eventsim

import (
	"testing"
	"unsafe"
)

// TestEventNodeLayout pins the cache-line layout of the engine's event
// node. The queue-walk fields (at, seq, next, prev, where, gen) and
// both callback words must stay inside the first 64 bytes so slot-list
// splicing and ordering comparisons touch one cache line; only the
// dispatch-time arg interface may spill past it. A change that grows
// the node or pushes a hot field over the line must update this test
// deliberately (and re-run make bench to justify it).
func TestEventNodeLayout(t *testing.T) {
	if unsafe.Sizeof(uintptr(0)) != 8 {
		t.Skip("layout pinned for 64-bit platforms only")
	}
	if got, want := unsafe.Sizeof(event{}), uintptr(80); got != want {
		t.Errorf("sizeof(event) = %d, want %d", got, want)
	}
	var e event
	offsets := []struct {
		name string
		off  uintptr
		want uintptr
	}{
		{"at", unsafe.Offsetof(e.at), 0},
		{"seq", unsafe.Offsetof(e.seq), 8},
		{"next", unsafe.Offsetof(e.next), 16},
		{"prev", unsafe.Offsetof(e.prev), 24},
		{"where", unsafe.Offsetof(e.where), 32},
		{"gen", unsafe.Offsetof(e.gen), 40},
		{"fn", unsafe.Offsetof(e.fn), 48},
		{"fnArg", unsafe.Offsetof(e.fnArg), 56},
		{"arg", unsafe.Offsetof(e.arg), 64},
	}
	for _, f := range offsets {
		if f.off != f.want {
			t.Errorf("offsetof(event.%s) = %d, want %d", f.name, f.off, f.want)
		}
	}
	// Every hot field strictly inside the first cache line.
	for _, f := range offsets[:len(offsets)-1] {
		if f.off >= 64 {
			t.Errorf("hot field event.%s at offset %d crossed the first cache line", f.name, f.off)
		}
	}
}
