package eventsim

import (
	"testing"
)

// dualSim drives the calendar-queue engine and the old-heap reference
// through one operation stream and checks they agree on everything
// observable: fire order, clock, Executed and Pending. It is the
// oracle behind TestDifferentialRandomOps and FuzzEventOrder.
type dualSim struct {
	t    testing.TB
	s    *Sim
	r    *refSim
	sLog []int
	rLog []int
	sH   []Event
	rH   []refHandle
}

func newDualSim(t testing.TB) *dualSim {
	return &dualSim{t: t, s: New(), r: newRefSim()}
}

// schedule adds event id at absolute time at to both engines,
// alternating between the closure (At) and closure-free (AtArg)
// scheduling paths so both consume sequence numbers identically.
func (d *dualSim) schedule(id int, at Time) {
	if at < d.s.Now() {
		return
	}
	if id%2 == 0 {
		d.sH = append(d.sH, d.s.At(at, func() { d.sLog = append(d.sLog, id) }))
	} else {
		d.sH = append(d.sH, d.s.AtArg(at, func(any) { d.sLog = append(d.sLog, id) }, nil))
	}
	d.rH = append(d.rH, d.r.At(at, func() { d.rLog = append(d.rLog, id) }))
}

// scheduleReserved exercises the ReserveSeq/AtSeq pair: the FIFO slot
// is taken first, then the event is materialized with it.
func (d *dualSim) scheduleReserved(id int, at Time) {
	if at < d.s.Now() {
		return
	}
	sq := d.s.ReserveSeq()
	rq := d.r.ReserveSeq()
	if sq != rq {
		d.t.Fatalf("sequence counters diverged: wheel %d, ref %d", sq, rq)
	}
	d.sH = append(d.sH, d.s.AtSeq(at, sq, func(any) { d.sLog = append(d.sLog, id) }, nil))
	d.rH = append(d.rH, d.r.AtSeq(at, rq, func() { d.rLog = append(d.rLog, id) }))
}

// scheduleChained schedules id, whose firing schedules id+chainOffset
// a little later — covering events scheduled from inside callbacks.
func (d *dualSim) scheduleChained(id int, at, childDelta Time) {
	if at < d.s.Now() {
		return
	}
	d.sH = append(d.sH, d.s.At(at, func() {
		d.sLog = append(d.sLog, id)
		d.s.At(d.s.Now()+childDelta, func() { d.sLog = append(d.sLog, id+chainOffset) })
	}))
	d.rH = append(d.rH, d.r.At(at, func() {
		d.rLog = append(d.rLog, id)
		d.r.At(d.r.Now()+childDelta, func() { d.rLog = append(d.rLog, id+chainOffset) })
	}))
}

const chainOffset = 1 << 24

// cancel cancels handle index i (which may be stale: fired or already
// cancelled) in both engines; the reported pending-ness must match.
func (d *dualSim) cancel(i int) {
	if len(d.sH) == 0 {
		return
	}
	i %= len(d.sH)
	sOK := d.s.Cancel(d.sH[i])
	rOK := d.r.Cancel(d.rH[i])
	if sOK != rOK {
		d.t.Fatalf("Cancel(handle %d) diverged: wheel %v, ref %v", i, sOK, rOK)
	}
}

func (d *dualSim) step() {
	sOK := d.s.Step()
	rOK := d.r.Step()
	if sOK != rOK {
		d.t.Fatalf("Step availability diverged: wheel %v, ref %v", sOK, rOK)
	}
	d.check("after Step")
}

func (d *dualSim) runUntil(deadline Time) {
	d.s.RunUntil(deadline)
	d.r.RunUntil(deadline)
	d.check("after RunUntil")
}

func (d *dualSim) run() {
	d.s.Run()
	d.r.Run()
	d.check("after Run")
}

func (d *dualSim) check(when string) {
	d.t.Helper()
	if len(d.sLog) != len(d.rLog) {
		d.t.Fatalf("%s: wheel fired %d events, ref fired %d", when, len(d.sLog), len(d.rLog))
	}
	for i := range d.sLog {
		if d.sLog[i] != d.rLog[i] {
			d.t.Fatalf("%s: fire order diverged at position %d: wheel id %d, ref id %d",
				when, i, d.sLog[i], d.rLog[i])
		}
	}
	if d.s.Now() != d.r.Now() {
		d.t.Fatalf("%s: clocks diverged: wheel %v, ref %v", when, d.s.Now(), d.r.Now())
	}
	if d.s.Executed() != d.r.Executed() {
		d.t.Fatalf("%s: Executed diverged: wheel %d, ref %d", when, d.s.Executed(), d.r.Executed())
	}
	if d.s.Pending() != d.r.Pending() {
		d.t.Fatalf("%s: Pending diverged: wheel %d, ref %d", when, d.s.Pending(), d.r.Pending())
	}
}

// TestDifferentialRandomOps is the calendar queue's oracle: randomized
// schedule / cancel / RunUntil / Step workloads over several seeds,
// mixing near-horizon events (wheel slots), far-horizon events (the
// spill heap, and migration back as the clock advances), exact
// same-timestamp bursts (batched dispatch), reserved-sequence
// scheduling and cancel-after-fire — always requiring behavior
// identical to the old heap.
func TestDifferentialRandomOps(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := NewRNG(seed)
		d := newDualSim(t)
		nextID := 0
		for op := 0; op < 3000; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // near-horizon schedule (wheel)
				d.schedule(nextID, d.s.Now()+Time(rng.Intn(200_000)))
				nextID++
			case 3: // far-horizon schedule (spill, > wheelHorizon)
				d.schedule(nextID, d.s.Now()+wheelHorizon+Time(rng.Intn(50_000_000)))
				nextID++
			case 4: // same-timestamp burst
				at := d.s.Now() + Time(rng.Intn(100_000))
				for k := rng.Intn(6) + 2; k > 0; k-- {
					d.schedule(nextID, at)
					nextID++
				}
			case 5: // reserved-sequence schedule
				d.scheduleReserved(nextID, d.s.Now()+Time(rng.Intn(300_000)))
				nextID++
			case 6: // schedule-from-callback chain
				d.scheduleChained(nextID, d.s.Now()+Time(rng.Intn(100_000)), Time(rng.Intn(2_000_000)))
				nextID++
			case 7: // cancel (live or stale)
				d.cancel(rng.Intn(1 << 20))
			case 8:
				d.step()
			case 9:
				d.runUntil(d.s.Now() + Time(rng.Intn(3_000_000)))
			}
		}
		d.run()
		if d.s.Pending() != 0 {
			t.Fatalf("seed %d: events left pending after Run: %d", seed, d.s.Pending())
		}
		t.Logf("seed %d: %d events fired, clock at %v", seed, len(d.sLog), d.s.Now())
	}
}

// TestDifferentialHorizonBoundary pins the exact wheel/spill boundary:
// events scheduled right at, just inside and just beyond the horizon,
// then fired across several horizon advances, must match the
// reference in every observable.
func TestDifferentialHorizonBoundary(t *testing.T) {
	d := newDualSim(t)
	id := 0
	for _, base := range []Time{0, wheelHorizon - 1, wheelHorizon, wheelHorizon + 1,
		2*wheelHorizon - 1, 2 * wheelHorizon, 5 * wheelHorizon} {
		for _, off := range []Time{0, 1, (1 << slotShift) - 1, 1 << slotShift} {
			d.schedule(id, base+off)
			id++
		}
	}
	for d.s.Pending() > 0 {
		d.runUntil(d.s.Now() + wheelHorizon/2)
	}
	d.run()
}

// TestDifferentialStopInBatch verifies Stop issued from inside a
// same-timestamp batch halts both engines at the same position.
func TestDifferentialStopInBatch(t *testing.T) {
	d := newDualSim(t)
	for i := 0; i < 10; i++ {
		d.schedule(i, 100)
	}
	d.sH = append(d.sH, d.s.At(100, func() { d.sLog = append(d.sLog, 10); d.s.Stop() }))
	d.rH = append(d.rH, d.r.At(100, func() { d.rLog = append(d.rLog, 10); d.r.Stop() }))
	for i := 11; i < 20; i++ {
		d.schedule(i, 100)
	}
	d.run() // stops mid-batch at id 10
	if len(d.sLog) != 11 {
		t.Fatalf("stopped batch fired %d events, want 11", len(d.sLog))
	}
	d.run() // resumes the rest of the batch
	if len(d.sLog) != 20 {
		t.Fatalf("resumed batch fired %d events total, want 20", len(d.sLog))
	}
}
