package eventsim

import (
	"encoding/binary"
	"testing"
)

// FuzzEventOrder interprets the input as an operation stream and plays
// it into both the calendar-queue engine and the old-heap reference,
// requiring identical fire order, clock, Executed and Pending
// throughout. The seed corpus in testdata/fuzz/FuzzEventOrder covers
// the structure's edges: same-timestamp bursts (batched dispatch),
// far-horizon spills and their migration back into the wheel,
// cancel-after-fire, reserved sequences, and deadline jumps across
// many empty buckets.
func FuzzEventOrder(f *testing.F) {
	// near schedules draining via steps
	f.Add([]byte{0, 0x10, 0x00, 0, 0x20, 0x00, 0, 0x08, 0x00, 4, 4, 4, 4})
	// same-timestamp burst then run-until
	f.Add([]byte{2, 0x40, 3, 2, 0x40, 3, 5, 0xff, 0x7f})
	// far spill, cancel, deadline jump migrating the survivor
	f.Add([]byte{1, 0xff, 0xff, 0x3f, 1, 0x01, 0x00, 0x20, 3, 0x00, 0x00, 5, 0xff, 0xff})
	// reserved-sequence schedules interleaved with direct ones
	f.Add([]byte{6, 0x10, 0x00, 0, 0x10, 0x00, 6, 0x10, 0x00, 5, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzEventOrder(t, data)
	})
}

// fuzzOpLimit bounds scheduled events so a large random input cannot
// turn one fuzz execution into a multi-second simulation.
const fuzzOpLimit = 2048

func fuzzEventOrder(t *testing.T, data []byte) {
	d := newDualSim(t)
	nextID := 0
	i := 0
	take := func(n int) ([]byte, bool) {
		if i+n > len(data) {
			return nil, false
		}
		b := data[i : i+n]
		i += n
		return b, true
	}
	for i < len(data) && nextID < fuzzOpLimit {
		op, _ := take(1)
		switch op[0] % 7 {
		case 0: // near-horizon schedule: 16-bit delta in slot-width units
			b, ok := take(2)
			if !ok {
				break
			}
			delta := Time(binary.LittleEndian.Uint16(b)) << (slotShift - 2)
			d.schedule(nextID, d.s.Now()+delta)
			nextID++
		case 1: // far-horizon schedule: up to ~48 horizons out
			b, ok := take(3)
			if !ok {
				break
			}
			delta := wheelHorizon + Time(uint32(b[0])|uint32(b[1])<<8|uint32(b[2])<<16)*1024
			d.schedule(nextID, d.s.Now()+delta)
			nextID++
		case 2: // same-timestamp burst
			b, ok := take(2)
			if !ok {
				break
			}
			at := d.s.Now() + Time(b[0])<<slotShift
			for k := int(b[1]%7) + 2; k > 0 && nextID < fuzzOpLimit; k-- {
				d.schedule(nextID, at)
				nextID++
			}
		case 3: // cancel by (possibly stale) handle index
			b, ok := take(2)
			if !ok {
				break
			}
			d.cancel(int(binary.LittleEndian.Uint16(b)))
		case 4: // single step
			d.step()
		case 5: // run to a relative deadline (can cross many empty buckets)
			b, ok := take(2)
			if !ok {
				break
			}
			d.runUntil(d.s.Now() + Time(binary.LittleEndian.Uint16(b))<<(slotShift+2))
		case 6: // reserved-sequence schedule
			b, ok := take(2)
			if !ok {
				break
			}
			delta := Time(binary.LittleEndian.Uint16(b)) << (slotShift - 2)
			d.scheduleReserved(nextID, d.s.Now()+delta)
			nextID++
		}
	}
	d.run()
	if d.s.Pending() != 0 {
		t.Fatalf("events left pending after final Run: %d", d.s.Pending())
	}
}
