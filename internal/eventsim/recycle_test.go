package eventsim

import (
	"sort"
	"testing"
)

// TestStopBeforeRun pins the pre-Run Stop semantics: a Stop issued
// while no Run is in progress makes the next Run return immediately
// (executing nothing, not advancing the clock), is consumed by that
// return, and the Run after that proceeds normally.
func TestStopBeforeRun(t *testing.T) {
	s := New()
	fired := 0
	s.At(10, func() { fired++ })
	s.Stop()
	s.RunUntil(100)
	if fired != 0 {
		t.Fatal("Run after a pre-Run Stop executed events")
	}
	if s.Now() != 0 {
		t.Fatalf("Run after a pre-Run Stop advanced the clock to %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending events lost across a stopped Run: %d", s.Pending())
	}
	// The Stop was consumed: the next Run proceeds.
	s.RunUntil(100)
	if fired != 1 {
		t.Fatalf("Run after a consumed Stop fired %d events, want 1", fired)
	}
	if s.Now() != 100 {
		t.Fatalf("clock at %v after RunUntil(100), want 100", s.Now())
	}
}

// TestStopMidRunConsumed: a Stop issued by an event ends that Run and
// is consumed, so the next Run resumes the remaining events.
func TestStopMidRunConsumed(t *testing.T) {
	s := New()
	var fired []Time
	s.At(1, func() { fired = append(fired, s.Now()) })
	s.At(2, func() { fired = append(fired, s.Now()); s.Stop() })
	s.At(3, func() { fired = append(fired, s.Now()) })
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("stopped run fired %d events, want 2", len(fired))
	}
	s.Run()
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("resumed run did not fire the remaining event: %v", fired)
	}
}

// TestCancelRecycledEventIsNoOp: after an event fires, its node goes
// back to the freelist and is reused by the next schedule; cancelling
// through the stale handle must not touch the new occupant.
func TestCancelRecycledEventIsNoOp(t *testing.T) {
	s := New()
	stale := s.At(1, func() {})
	s.Run() // fires; node released

	fired := false
	fresh := s.At(10, func() { fired = true })
	if stale.Scheduled() {
		t.Fatal("stale handle reports scheduled after its event fired")
	}
	if s.Cancel(stale) { // generation mismatch: must be a no-op
		t.Fatal("stale handle cancelled the recycled node's new event")
	}
	if !fresh.Scheduled() {
		t.Fatal("cancelling a stale handle killed the recycled node's new event")
	}
	s.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// TestCancelledHandleStaysInertAfterReuse covers the cancel-then-reuse
// direction: cancel an event, schedule a new one (reusing the node),
// and verify the cancelled handle can neither cancel nor report the
// new event.
func TestCancelledHandleStaysInertAfterReuse(t *testing.T) {
	s := New()
	old := s.At(5, func() { t.Error("cancelled event fired") })
	if !s.Cancel(old) {
		t.Fatal("Cancel of a pending event reported not-pending")
	}

	fired := false
	s.At(7, func() { fired = true })
	if old.Scheduled() {
		t.Fatal("cancelled handle reports the recycled node's new event as its own")
	}
	if s.Cancel(old) {
		t.Fatal("stale cancel reported success against the recycled node")
	}
	s.Run()
	if !fired {
		t.Fatal("event scheduled into a recycled node was killed by a stale cancel")
	}
}

// TestHandleAtSurvivesRecycle: a handle's At() reports the time it was
// scheduled for even after the node was recycled for a later event.
func TestHandleAtSurvivesRecycle(t *testing.T) {
	s := New()
	h := s.At(42, func() {})
	s.Run()
	s.At(99, func() {})
	if h.At() != 42 {
		t.Fatalf("stale handle At() = %v, want 42", h.At())
	}
}

// TestTickerRestartAfterRecycle: stop a ticker, churn the freelist so
// its pending-tick node is recycled by unrelated events, then restart
// it; the stale handle kept across the stop must not interfere and the
// restarted ticker must tick on schedule.
func TestTickerRestartAfterRecycle(t *testing.T) {
	s := New()
	var ticks []Time
	tk := NewTicker(s, 10, func() { ticks = append(ticks, s.Now()) })
	tk.Start()
	s.RunUntil(25) // ticks at 10, 20
	tk.Stop()

	// Churn: recycle the stopped ticker's node through other events.
	for i := 0; i < 100; i++ {
		s.At(s.Now()+1, func() {})
	}
	s.RunUntil(30)

	tk.Start()
	s.RunUntil(55) // ticks at 40, 50
	tk.Stop()

	want := []Time{10, 20, 40, 50}
	if len(ticks) != len(want) {
		t.Fatalf("ticks at %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", ticks, want)
		}
	}
}

// TestEventChurn is a fuzz-style workout of the freelist: thousands of
// interleaved At/Cancel/Step operations driven by a seeded RNG, with an
// oracle tracking exactly which event IDs must fire. Any resurrection
// through recycled nodes (a cancelled event firing, a live one lost, a
// double fire) breaks the oracle.
func TestEventChurn(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := NewRNG(seed)
		s := New()
		type rec struct {
			h  Event
			id int
		}
		var live []rec
		nextID := 0
		fired := map[int]int{} // id -> fire count
		expected := map[int]bool{}

		for op := 0; op < 5000; op++ {
			switch rng.Intn(4) {
			case 0, 1: // schedule
				id := nextID
				nextID++
				at := s.Now() + Time(rng.Intn(50))
				expected[id] = true
				live = append(live, rec{h: s.At(at, func() { fired[id]++ }), id: id})
			case 2: // cancel a random live handle (possibly stale)
				if len(live) > 0 {
					i := rng.Intn(len(live))
					if live[i].h.Scheduled() {
						expected[live[i].id] = false
					}
					s.Cancel(live[i].h)
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			case 3: // run one event
				s.Step()
			}
		}
		for s.Step() {
		}

		var missing, resurrected, double []int
		for id, want := range expected {
			switch {
			case want && fired[id] == 0:
				missing = append(missing, id)
			case !want && fired[id] > 0:
				resurrected = append(resurrected, id)
			case fired[id] > 1:
				double = append(double, id)
			}
		}
		sort.Ints(missing)
		sort.Ints(resurrected)
		sort.Ints(double)
		if len(missing)+len(resurrected)+len(double) > 0 {
			t.Fatalf("seed %d: missing=%v resurrected=%v double=%v",
				seed, missing, resurrected, double)
		}
	}
}

// TestAtArg verifies the closure-free scheduling variant: ordering
// with At events, argument delivery, and cancellation.
func TestAtArg(t *testing.T) {
	s := New()
	var got []int
	record := func(arg any) { got = append(got, arg.(int)) }
	s.AtArg(20, record, 2)
	s.AtArg(10, record, 1)
	s.At(15, func() { got = append(got, 15) })
	c := s.AfterArg(5, record, 99)
	if !s.Cancel(c) {
		t.Fatal("Cancel of a pending AfterArg event reported not-pending")
	}
	s.Run()
	want := []int{1, 15, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestAtArgNilFnPanics: the arg variant enforces the same nil-callback
// contract as At.
func TestAtArgNilFnPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("AtArg(nil) did not panic")
		}
	}()
	s.AtArg(1, nil, 0)
}

// TestFreelistRecyclesNodes pins that the freelist actually recycles:
// run far more events through a Sim than the block size and check the
// heap never holds more nodes than its peak concurrency needs.
func TestFreelistRecyclesNodes(t *testing.T) {
	s := New()
	n := 0
	for i := 0; i < 10*eventBlock; i++ {
		s.At(s.Now(), func() { n++ })
		if !s.Step() {
			t.Fatal("step had nothing to run")
		}
	}
	if n != 10*eventBlock {
		t.Fatalf("ran %d events, want %d", n, 10*eventBlock)
	}
	// One event live at a time: a single block must have sufficed.
	if got := len(s.free); got > eventBlock {
		t.Fatalf("freelist grew to %d nodes for a 1-deep schedule (block size %d): not recycling",
			got, eventBlock)
	}
}
