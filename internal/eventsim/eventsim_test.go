package eventsim

import (
	"math"
	"testing"
	"testing/quick"

	"tlb/internal/units"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		s.At(at, func() { got = append(got, s.Now()) })
	}
	s.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of order: %v", order)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	s := New()
	var at1, at2 Time
	s.After(10, func() {
		at1 = s.Now()
		s.After(5, func() { at2 = s.Now() })
	})
	s.Run()
	if at1 != 10 || at2 != 15 {
		t.Fatalf("got %v, %v; want 10, 15", at1, at2)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(10, func() { fired = true })
	if !s.Cancel(e) {
		t.Fatal("Cancel of a pending event reported not-pending")
	}
	if s.Cancel(e) { // double cancel is a no-op
		t.Fatal("double Cancel reported the event as still pending")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Scheduled() {
		t.Fatal("cancelled event still reports scheduled")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var fired []int
	evs := make([]Event, 20)
	for i := 0; i < 20; i++ {
		i := i
		evs[i] = s.At(Time(i), func() { fired = append(fired, i) })
	}
	// Cancel a scattering of events.
	for _, i := range []int{3, 7, 11, 19, 0} {
		s.Cancel(evs[i])
	}
	s.Run()
	if len(fired) != 15 {
		t.Fatalf("fired %d events, want 15", len(fired))
	}
	prev := -1
	for _, i := range fired {
		if i <= prev {
			t.Fatalf("out of order after cancels: %v", fired)
		}
		prev = i
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i*10), func() { count++ })
	}
	s.RunUntil(50)
	if count != 5 {
		t.Fatalf("ran %d events before deadline, want 5", count)
	}
	if s.Now() != 50 {
		t.Fatalf("clock at %v, want 50", s.Now())
	}
	s.RunUntil(1000)
	if count != 10 {
		t.Fatalf("ran %d events total, want 10", count)
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("ran %d events, want 3 (stopped)", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}

func TestStep(t *testing.T) {
	s := New()
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatal("first step")
	}
	if !s.Step() || n != 2 {
		t.Fatal("second step")
	}
	if s.Step() {
		t.Fatal("step on empty queue reported true")
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var ticks []Time
	tk := NewTicker(s, 10, func() { ticks = append(ticks, s.Now()) })
	tk.Start()
	tk.Start() // idempotent
	s.At(35, func() { tk.Stop() })
	s.RunUntil(100)
	want := []Time{10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

// TestHeapPropertyRandomOps drives the 4-ary heap with random
// interleaved schedules and cancels and checks the pop order is always
// non-decreasing in time.
func TestHeapPropertyRandomOps(t *testing.T) {
	check := func(seed uint64) bool {
		rng := NewRNG(seed)
		s := New()
		var live []Event
		lastFired := Time(-1)
		ok := true
		record := func(at Time) func() {
			return func() {
				if at < lastFired {
					ok = false
				}
				lastFired = at
			}
		}
		for i := 0; i < 500; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				at := Time(rng.Intn(10000))
				live = append(live, s.At(at, record(at)))
			case 2:
				if len(live) > 0 {
					i := rng.Intn(len(live))
					s.Cancel(live[i])
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
		}
		s.Run()
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(124)
	same := 0
	for i := 0; i < 1000; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	rng := NewRNG(7)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := rng.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	rng := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := rng.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean %v too far from 1", mean)
	}
}

func TestRNGIntnUniformity(t *testing.T) {
	rng := NewRNG(13)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[rng.Intn(buckets)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/buckets) > 0.05*n/buckets {
			t.Fatalf("bucket %d has %d of %d draws", b, c, n)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide: %d of 1000", same)
	}
}

func TestRNGPerm(t *testing.T) {
	rng := NewRNG(3)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestTimeHelpers(t *testing.T) {
	if units.Second.Seconds() != 1 {
		t.Fatal("Second.Seconds() != 1")
	}
	if d := units.FromSeconds(0.0015); d != 1500*units.Microsecond {
		t.Fatalf("FromSeconds(0.0015) = %v", d)
	}
}
