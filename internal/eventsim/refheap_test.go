package eventsim

import "fmt"

// refSim is the engine this package shipped before the calendar queue:
// a single 4-ary implicit heap ordered by (at, seq). It is kept as a
// test-only reference implementation — the differential oracle in
// diff_test.go and FuzzEventOrder drive refSim and Sim through the
// same operation streams and require identical fire order, Executed,
// Pending and Now. The heap code is the old implementation verbatim
// (minus the freelist: the oracle does not need recycling, and leaving
// it out keeps the reference obviously correct).
type refSim struct {
	now      Time
	heap     []*refEvent
	seq      uint64
	stopped  bool
	executed uint64
}

type refEvent struct {
	at   Time
	seq  uint64
	fn   func()
	heap int32 // index in the heap, -1 once popped or cancelled
}

// refHandle mirrors Event for the reference engine. Nodes are never
// recycled, so "fired or cancelled" is simply heap == -1.
type refHandle struct {
	e *refEvent
}

func (h refHandle) Scheduled() bool { return h.e != nil && h.e.heap >= 0 }

func newRefSim() *refSim { return &refSim{} }

func (s *refSim) Now() Time         { return s.now }
func (s *refSim) Executed() uint64  { return s.executed }
func (s *refSim) Pending() int      { return len(s.heap) }
func (s *refSim) Stop()             { s.stopped = true }

func (s *refSim) ReserveSeq() uint64 {
	v := s.seq
	s.seq++
	return v
}

func (s *refSim) At(t Time, fn func()) refHandle {
	return s.scheduleSeq(t, s.ReserveSeq(), fn)
}

func (s *refSim) AtSeq(t Time, seq uint64, fn func()) refHandle {
	if seq >= s.seq {
		panic("refsim: AtSeq with unreserved sequence number")
	}
	return s.scheduleSeq(t, seq, fn)
}

func (s *refSim) scheduleSeq(t Time, seq uint64, fn func()) refHandle {
	if t < s.now {
		panic(fmt.Sprintf("refsim: scheduling at %v before now %v", t, s.now))
	}
	e := &refEvent{at: t, seq: seq, fn: fn, heap: -1}
	s.push(e)
	return refHandle{e: e}
}

func (s *refSim) Cancel(h refHandle) bool {
	if h.e == nil || h.e.heap < 0 {
		return false
	}
	s.remove(int(h.e.heap))
	h.e.heap = -1
	return true
}

func (s *refSim) Run() { s.RunUntil(maxTime) }

func (s *refSim) RunUntil(deadline Time) {
	for len(s.heap) > 0 && !s.stopped {
		e := s.heap[0]
		if e.at > deadline {
			break
		}
		s.popHead()
		s.now = e.at
		s.executed++
		e.fn()
	}
	if !s.stopped && s.now < deadline && deadline < maxTime {
		s.now = deadline
	}
	s.stopped = false
}

func (s *refSim) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap[0]
	s.popHead()
	s.now = e.at
	s.executed++
	e.fn()
	return true
}

func refBefore(a, b *refEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *refSim) push(e *refEvent) {
	s.heap = append(s.heap, e)
	s.up(len(s.heap) - 1)
}

func (s *refSim) popHead() {
	h := s.heap
	n := len(h) - 1
	h[0].heap = -1
	h[0] = h[n]
	h[n] = nil
	s.heap = h[:n]
	if n > 0 {
		s.down(0)
	}
}

func (s *refSim) remove(i int) {
	h := s.heap
	n := len(h) - 1
	h[i].heap = -1
	if i == n {
		h[n] = nil
		s.heap = h[:n]
		return
	}
	moved := h[n]
	h[i] = moved
	moved.heap = int32(i)
	h[n] = nil
	s.heap = h[:n]
	if i > 0 && refBefore(moved, h[(i-1)/4]) {
		s.up(i)
	} else {
		s.down(i)
	}
}

func (s *refSim) up(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !refBefore(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].heap = int32(i)
		i = p
	}
	h[i] = e
	e.heap = int32(i)
}

func (s *refSim) down(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if refBefore(h[c], h[min]) {
				min = c
			}
		}
		if !refBefore(h[min], e) {
			break
		}
		h[i] = h[min]
		h[i].heap = int32(i)
		i = min
	}
	h[i] = e
	e.heap = int32(i)
}
