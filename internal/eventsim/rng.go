package eventsim

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256**). Every stochastic decision in the simulator — packet
// spraying, workload sampling, hash seeds — draws from an explicitly
// seeded RNG so that a run is exactly reproducible from its seed, and
// independent components can be given independent streams (Split).
//
// math/rand is deliberately avoided: its global state invites hidden
// coupling between components, and pre-1.22 behaviour differs across
// toolchains.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given value via splitmix64,
// which guarantees a well-mixed non-zero state for any seed, including 0.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from this one. The child's
// stream is a deterministic function of the parent's state at the time
// of the call, so component construction order (which is deterministic)
// fixes all streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("eventsim: Intn with n <= 0")
	}
	// Lemire's unbiased bounded generation.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := -uint64(n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *RNG) ExpFloat64() float64 {
	// Inverse transform; u in (0,1] to avoid log(0).
	u := 1 - r.Float64()
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the given swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
