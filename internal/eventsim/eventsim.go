// Package eventsim implements the discrete-event simulation engine that
// everything else in this repository runs on.
//
// A Sim owns a virtual clock and a pending-event queue. Components
// schedule callbacks at absolute times (At) or relative delays (After);
// Run repeatedly pops the earliest event and invokes it, advancing the
// clock. Two events scheduled for the same instant fire in the order
// they were scheduled, which keeps runs fully deterministic.
//
// The engine is single-goroutine by design: a packet-level network
// simulation is a serial dependency chain, and determinism (exact
// reproducibility from a seed) matters more than intra-run parallelism.
// Parallelism belongs one level up, across independent runs of a
// parameter sweep.
//
// The pending queue is a hand-rolled 4-ary implicit heap rather than
// container/heap: event push/pop is the hottest path of the whole
// simulator (millions of packets, each several events), and the 4-ary
// layout plus direct comparisons (no interface dispatch) roughly halves
// its cost.
package eventsim

import (
	"fmt"

	"tlb/internal/units"
)

// Time re-exports the simulated-time type for convenience; all engine
// APIs use it.
type Time = units.Time

// maxTime is the largest representable simulated time.
const maxTime = Time(1<<63 - 1)

// Event is a scheduled callback. The zero value is meaningless; events
// are created by Sim.At and Sim.After and may be cancelled with Cancel.
type Event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal times
	fn   func()
	heap int32 // index in the heap, -1 once popped or cancelled
}

// At returns the time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.heap >= 0 }

// Sim is a discrete-event simulator instance.
type Sim struct {
	now     Time
	heap    []*Event
	seq     uint64
	stopped bool
	// executed counts events run so far; useful for progress reporting
	// and for bounding runaway simulations in tests.
	executed uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Executed returns the number of events that have run.
func (s *Sim) Executed() uint64 { return s.executed }

// Pending returns the number of events currently scheduled.
func (s *Sim) Pending() int { return len(s.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it is always a modelling bug, and silently
// reordering time corrupts every metric downstream.
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("eventsim: nil event function")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	s.push(e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling an event that already ran
// (or was already cancelled) is a no-op, so callers may cancel timers
// unconditionally.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.heap < 0 {
		return
	}
	s.remove(int(e.heap))
	e.heap = -1
}

// Stop makes the current Run/RunUntil call return after the in-flight
// event finishes. Pending events stay queued.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Sim) Run() {
	s.RunUntil(maxTime)
}

// RunUntil executes events with time <= deadline, then sets the clock to
// the deadline (if it is ahead) and returns. Events beyond the deadline
// stay queued, so a later RunUntil can continue the same simulation.
func (s *Sim) RunUntil(deadline Time) {
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		e := s.heap[0]
		if e.at > deadline {
			break
		}
		s.popHead()
		s.now = e.at
		s.executed++
		e.fn()
	}
	if !s.stopped && s.now < deadline && deadline < maxTime {
		s.now = deadline
	}
}

// Step runs exactly one event and reports whether one was available.
func (s *Sim) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap[0]
	s.popHead()
	s.now = e.at
	s.executed++
	e.fn()
	return true
}

// before reports heap ordering: earlier time first, FIFO within a time.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts the event into the 4-ary heap.
func (s *Sim) push(e *Event) {
	s.heap = append(s.heap, e)
	s.up(len(s.heap) - 1)
}

// popHead removes the heap minimum (the caller has already read it).
func (s *Sim) popHead() {
	h := s.heap
	n := len(h) - 1
	h[0].heap = -1
	h[0] = h[n]
	h[n] = nil
	s.heap = h[:n]
	if n > 0 {
		s.down(0)
	}
}

// remove deletes the element at index i.
func (s *Sim) remove(i int) {
	h := s.heap
	n := len(h) - 1
	h[i].heap = -1
	if i == n {
		h[n] = nil
		s.heap = h[:n]
		return
	}
	moved := h[n]
	h[i] = moved
	moved.heap = int32(i)
	h[n] = nil
	s.heap = h[:n]
	// Re-establish heap order in whichever direction is violated.
	if i > 0 && before(moved, h[(i-1)/4]) {
		s.up(i)
	} else {
		s.down(i)
	}
}

func (s *Sim) up(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !before(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].heap = int32(i)
		i = p
	}
	h[i] = e
	e.heap = int32(i)
}

func (s *Sim) down(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		// Find the smallest of up to 4 children.
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if before(h[c], h[min]) {
				min = c
			}
		}
		if !before(h[min], e) {
			break
		}
		h[i] = h[min]
		h[i].heap = int32(i)
		i = min
	}
	h[i] = e
	e.heap = int32(i)
}

// Ticker invokes fn every period until Stop is called or the simulation
// drains. The first tick fires one period after Start.
type Ticker struct {
	sim    *Sim
	period Time
	fn     func()
	ev     *Event
	tickFn func()
	active bool
}

// NewTicker creates an unstarted ticker.
func NewTicker(sim *Sim, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("eventsim: non-positive ticker period")
	}
	t := &Ticker{sim: sim, period: period, fn: fn}
	t.tickFn = t.tick
	return t
}

// Start schedules the first tick. Starting a running ticker is a no-op.
func (t *Ticker) Start() {
	if t.active {
		return
	}
	t.active = true
	t.ev = t.sim.After(t.period, t.tickFn)
}

func (t *Ticker) tick() {
	if !t.active {
		return
	}
	t.fn()
	if t.active {
		t.ev = t.sim.After(t.period, t.tickFn)
	}
}

// Stop cancels the pending tick and deactivates the ticker.
func (t *Ticker) Stop() {
	t.active = false
	t.sim.Cancel(t.ev)
}
