// Package eventsim implements the discrete-event simulation engine that
// everything else in this repository runs on.
//
// A Sim owns a virtual clock and a pending-event queue. Components
// schedule callbacks at absolute times (At) or relative delays (After);
// Run repeatedly pops the earliest event and invokes it, advancing the
// clock. Two events scheduled for the same instant fire in the order
// they were scheduled, which keeps runs fully deterministic. A second,
// disjoint ordering domain exists for callers that need a tie-break
// independent of scheduling order: AtKey schedules with an explicit
// caller-built key in the upper half of the sequence space (KeyDomain
// set), so keyed events fire after every same-instant counter-sequenced
// event, ordered among themselves by key. netem ports use it to give
// packet deliveries a position that depends only on (admission time,
// port identity) — the property that lets the sharded runner
// (internal/sim) reproduce the exact global event order from per-shard
// engines.
//
// The engine is single-goroutine by design: a packet-level network
// simulation is a serial dependency chain, and determinism (exact
// reproducibility from a seed) matters more than intra-run parallelism.
// Parallelism belongs one level up, across independent runs of a
// parameter sweep.
//
// The pending queue is a calendar queue (one-level hierarchical timing
// wheel plus a sorted spill): event push/pop is the hottest path of the
// whole simulator, and almost every event is near-future — a
// serialization completion or propagation arrival within one wire
// horizon of now. Those land in O(1) wheel slots keyed by their
// distance from the clock. The minority of far-future events (RTO
// timers, fault-schedule entries, pre-scheduled flow arrivals) overflow
// to a small 4-ary heap that refills the wheel as the clock advances.
// Events scheduled for the same instant drain from one wheel slot as a
// batch, so a burst of same-timestamp deliveries pays the ordering
// machinery once, not per event. DESIGN.md §14 describes the structure
// and why it preserves the engine's determinism contract exactly.
//
// Event storage is recycled through a per-Sim freelist so steady-state
// scheduling allocates nothing: nodes are carved in blocks, released
// back when an event fires or is cancelled, and reused LIFO. Handles
// (the exported Event value) carry a generation counter so a stale
// handle to a recycled node is inert — Cancel and Scheduled on it are
// no-ops rather than acting on whatever event happens to occupy the
// node now. The freelist is a plain slice, not a sync.Pool: the engine
// is single-goroutine, and sync.Pool's GC-driven emptying would make
// reuse order (and therefore node addresses) vary across runs.
package eventsim

import (
	"fmt"
	"math/bits"

	"tlb/internal/units"
)

// Time re-exports the simulated-time type for convenience; all engine
// APIs use it.
type Time = units.Time

// maxTime is the largest representable simulated time.
const maxTime = Time(1<<63 - 1)

// Calendar-queue geometry. A slot spans 2^slotShift simulated
// nanoseconds and the wheel holds wheelSlots of them, so events within
// wheelHorizon (= wheelSlots << slotShift ≈ 1.05 ms) of the clock
// insert in O(1); everything further out spills to the heap. 512 ns
// per slot keeps slot populations near one for the dominant event mix
// (per-packet serialization at 1–10 Gbps spaces events ~1.2–12 µs
// apart), and 2048 slots cover the longest queueing backlogs the
// figure scenarios build without spilling steady-state traffic.
const (
	slotShift    = 9
	wheelSlots   = 2048 // must be a power of two
	wheelMask    = wheelSlots - 1
	wheelWords   = wheelSlots / 64
	wheelHorizon = Time(wheelSlots) << slotShift
)

// Location tags for event.where: a non-negative value is an index into
// the spill heap; the two sentinels mark wheel membership and
// not-queued.
const (
	locNone  int32 = -1
	locWheel int32 = -2
)

// event is the engine-internal node for one scheduled callback. Nodes
// live in a per-Sim freelist and are recycled; gen is bumped at every
// release so stale Event handles cannot resurrect a recycled node.
//
// Field order is part of the performance contract (layout_test.go pins
// it): the queue-walk fields — at/seq for ordering comparisons,
// next/prev for slot-list splicing, where for membership — plus gen and
// both callback words all fit in the node's first 64 bytes, so an
// insert, unlink or compare touches one cache line. Only the two-word
// arg interface spills to the second line, and it is read once, at
// dispatch.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal times
	// next/prev link the node into its wheel slot's (at, seq)-sorted
	// list; nil while in the spill heap or free.
	next, prev *event
	// where locates the node: spill-heap index, locWheel (slot derived
	// from at), or locNone once fired or cancelled.
	where int32
	_     int32 // explicit padding: keeps gen's 8-alignment visible
	gen   uint64
	// Exactly one of fn / fnArg is set. The (fnArg, arg) pair lets hot
	// callers schedule a pre-bound function plus argument without
	// building a capturing closure per event.
	fn    func()
	fnArg func(any)
	arg   any
}

// Event is a handle to a scheduled callback. It is a value: copy it
// freely, keep it after the event fired, cancel it twice — a handle
// whose event already ran or was cancelled no longer matches its
// node's generation and every operation on it is a no-op. The zero
// value is a valid never-scheduled handle.
type Event struct {
	e   *event
	gen uint64
	at  Time
}

// At returns the time the event was scheduled for (valid even after
// the event fired; zero for the zero handle).
func (h Event) At() Time { return h.at }

// Scheduled reports whether the event is still pending.
func (h Event) Scheduled() bool { return h.e != nil && h.gen == h.e.gen }

// slot is one wheel bucket: a doubly-linked list kept sorted by
// (at, seq). All events in a slot share one absolute bucket number
// (at >> slotShift), so the list holds at most one slot-width of time.
type slot struct {
	head, tail *event
}

// Sim is a discrete-event simulator instance.
type Sim struct {
	now     Time
	seq     uint64
	stopped bool
	// keyedIDs is the construction-order counter behind ReserveKeyedID.
	keyedIDs uint32
	// executed counts events run so far; useful for progress reporting
	// and for bounding runaway simulations in tests.
	executed uint64

	// wheel state. occ is the slot-occupancy bitmap scanned (from the
	// clock's slot, circularly) to find the next nonempty slot; min
	// caches the wheel's earliest event, nil meaning "unknown, rescan"
	// (count disambiguates unknown from empty).
	slots [wheelSlots]slot
	occ   [wheelWords]uint64
	count int
	min   *event
	// curBucket/horizonEnd are refreshed when the clock advances into a
	// new bucket; events at or beyond horizonEnd go to the spill. They
	// may lag the clock after a RunUntil deadline jump — that only
	// diverts inserts to the spill (still correct, marginally slower)
	// until the next fired event refreshes them.
	curBucket  int64
	horizonEnd Time

	// spill is the far-future overflow: a 4-ary implicit heap ordered
	// by (at, seq). advance migrates its head into the wheel as the
	// horizon moves past it.
	spill []*event

	// free is the recycled-node stack (LIFO, deterministic).
	free []*event
}

// eventBlock is how many nodes one freelist refill carves at once, so
// warmup pays one allocation per block instead of one per event.
const eventBlock = 64

// initialSpillCap pre-sizes the spill heap; it only holds events more
// than a wheel horizon out (timers, fault schedules, arrivals).
const initialSpillCap = 256

// New returns an empty simulator with the clock at zero.
func New() *Sim {
	return &Sim{
		spill:      make([]*event, 0, initialSpillCap),
		horizonEnd: wheelHorizon,
	}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Executed returns the number of events that have run.
func (s *Sim) Executed() uint64 { return s.executed }

// Pending returns the number of events currently scheduled.
func (s *Sim) Pending() int { return s.count + len(s.spill) }

// NextEventAt returns the time of the earliest pending event; ok is
// false when nothing is scheduled. It exists for epoch-synchronized
// callers (the sharded runner in internal/sim): between conservative
// lookahead windows the coordinator peeks every shard's next event time
// and jumps the common window start over idle gaps instead of stepping
// through empty lookahead intervals one by one.
func (s *Sim) NextEventAt() (Time, bool) {
	e := s.peek()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// alloc pops a recycled node, refilling the freelist with a fresh
// block when it runs dry.
func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	blk := make([]event, eventBlock)
	for i := range blk {
		blk[i].where = locNone
	}
	for i := eventBlock - 1; i >= 1; i-- {
		s.free = append(s.free, &blk[i])
	}
	return &blk[0]
}

// release invalidates every outstanding handle to the node and returns
// it to the freelist. Callback references are cleared so the freelist
// does not pin closures or their captures.
func (s *Sim) release(e *event) {
	e.gen++
	e.fn = nil
	e.fnArg = nil
	e.arg = nil
	e.where = locNone
	e.next = nil
	e.prev = nil
	s.free = append(s.free, e)
}

// ReserveSeq consumes and returns the next FIFO sequence number
// without scheduling anything. It exists for components that fix an
// event's tie-break position at one point in simulated time but only
// materialize the event later (netem ports reserve at packet admission
// and schedule lazily, one event per port); AtSeq schedules with the
// reserved number. Each reservation advances the same counter ordinary
// scheduling uses, so reserved and direct events share one total
// (time, seq) order.
func (s *Sim) ReserveSeq() uint64 {
	v := s.seq
	s.seq++
	return v
}

// AtSeq schedules fn(arg) at absolute time t with a sequence number
// previously obtained from ReserveSeq, placing the event in FIFO order
// as of the reservation, not the call. The caller must keep the pair
// causally consistent: t must be >= Now (checked), and an event must
// not be scheduled behind the engine's firing position — i.e. at
// (t, seq) when another event at the same t with a sequence between
// seq and the current counter has already fired (unchecked; netem's
// per-port FIFO guarantees it by construction).
func (s *Sim) AtSeq(t Time, seq uint64, fn func(any), arg any) Event {
	if fn == nil {
		panic("eventsim: nil event function")
	}
	if seq >= s.seq {
		panic(fmt.Sprintf("eventsim: AtSeq with unreserved sequence number %d (next is %d)", seq, s.seq))
	}
	return s.schedule(t, seq, nil, fn, arg)
}

// KeyDomain is the bit separating caller-keyed events (AtKey) from
// counter-sequenced ones (At/AtArg/AtSeq). Counter sequences can never
// reach it, so the two domains share one total (time, seq) order with
// every keyed event sorting after every counter event at the same
// instant.
const KeyDomain uint64 = 1 << 63

// AtKey schedules fn(arg) at absolute time t with an explicit ordering
// key instead of a reserved sequence number. The key must have the
// KeyDomain bit set (checked), which places it after every
// counter-sequenced event at the same instant; among keyed events at
// one instant, smaller keys fire first. The caller owns key semantics
// and uniqueness: two pending events at the same (t, key) fire in an
// unspecified relative order. netem builds keys from (admission time,
// port index) so a delivery's position within its timestamp is a pure
// function of the traffic — identical no matter which engine instance
// (global or per-shard) schedules it.
func (s *Sim) AtKey(t Time, key uint64, fn func(any), arg any) Event {
	if fn == nil {
		panic("eventsim: nil event function")
	}
	if key&KeyDomain == 0 {
		panic(fmt.Sprintf("eventsim: AtKey key %#x outside the keyed domain", key))
	}
	return s.schedule(t, key, nil, fn, arg)
}

// ReserveKeyedID hands out consecutive small IDs in construction
// order, for components that schedule through AtKey and need a stable
// identity inside their keys. Determinism contract: IDs depend only on
// construction order, so two builds that construct the same components
// in the same order assign the same IDs — the property that makes
// AtKey ordering invariant across the sharded runner's per-shard
// engine instances, which each rebuild the full topology identically.
func (s *Sim) ReserveKeyedID() uint32 {
	v := s.keyedIDs
	s.keyedIDs++
	return v
}

func (s *Sim) schedule(t Time, seq uint64, fn func(), fnArg func(any), arg any) Event {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, s.now))
	}
	e := s.alloc()
	e.at = t
	e.seq = seq
	e.fn = fn
	e.fnArg = fnArg
	e.arg = arg
	if t < s.horizonEnd {
		s.wheelInsert(e)
	} else {
		s.spillPush(e)
	}
	return Event{e: e, gen: e.gen, at: t}
}

// nextSeq consumes the next FIFO sequence number for an immediate
// schedule.
func (s *Sim) nextSeq() uint64 {
	v := s.seq
	s.seq++
	return v
}

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it is always a modelling bug, and silently
// reordering time corrupts every metric downstream.
func (s *Sim) At(t Time, fn func()) Event {
	if fn == nil {
		panic("eventsim: nil event function")
	}
	return s.schedule(t, s.nextSeq(), fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// AtArg schedules fn(arg) at absolute time t. It exists for hot paths
// that would otherwise build a capturing closure per event: a stored
// func(any) plus a pointer-typed arg costs no allocation per call.
func (s *Sim) AtArg(t Time, fn func(any), arg any) Event {
	if fn == nil {
		panic("eventsim: nil event function")
	}
	return s.schedule(t, s.nextSeq(), nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d after the current time.
func (s *Sim) AfterArg(d Time, fn func(any), arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return s.AtArg(s.now+d, fn, arg)
}

// Cancel removes a pending event and reports whether it was still
// pending. Cancelling an event that already ran (or was already
// cancelled) returns false and does nothing else, so callers may
// cancel timers unconditionally; the generation check makes this safe
// even after the event's node has been recycled for a different event.
func (s *Sim) Cancel(h Event) bool {
	if h.e == nil || h.gen != h.e.gen {
		return false
	}
	s.unqueue(h.e)
	s.release(h.e)
	return true
}

// Stop makes the current Run/RunUntil call return after the in-flight
// event finishes. Pending events stay queued. A Stop issued while no
// Run is in progress is remembered: the next Run/RunUntil call returns
// immediately (consuming the Stop), so a stop decided between runs is
// not silently lost.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Sim) Run() {
	s.RunUntil(maxTime)
}

// RunUntil executes events with time <= deadline, then sets the clock to
// the deadline (if it is ahead) and returns. Events beyond the deadline
// stay queued, so a later RunUntil can continue the same simulation.
// A pending Stop (from before the call or issued by an event) ends the
// call early and is consumed on return.
//
// Events sharing a timestamp dispatch as a batch: once the earliest
// event's slot is located, its same-time successors in that slot fire
// back to back without re-probing the spill or the occupancy bitmap
// (the spill cannot hold an event at the current instant — advance
// migrated everything inside the horizon — and a callback scheduling
// at the current instant sorts into the same slot, where wheelInsert
// keeps the cached min coherent, so a counter-sequenced insert that
// belongs before a still-pending keyed event is picked up in order).
func (s *Sim) RunUntil(deadline Time) {
	for !s.stopped {
		e := s.peek()
		if e == nil || e.at > deadline {
			break
		}
		t := e.at
		s.advance(t)
		s.unqueue(e)
		s.executed++
		s.invoke(e)
		for !s.stopped {
			n := s.min
			if n == nil || n.at != t {
				break
			}
			s.unqueue(n)
			s.executed++
			s.invoke(n)
		}
	}
	if !s.stopped && s.now < deadline && deadline < maxTime {
		s.now = deadline
	}
	s.stopped = false
}

// Step runs exactly one event and reports whether one was available.
// Step ignores a pending Stop (it is an explicit single-step request).
func (s *Sim) Step() bool {
	e := s.peek()
	if e == nil {
		return false
	}
	s.advance(e.at)
	s.unqueue(e)
	s.executed++
	s.invoke(e)
	return true
}

// invoke releases the node and then runs the callback, so the callback
// itself can schedule new events into the just-freed node and a
// handle's Scheduled goes false for the duration of its own callback.
func (s *Sim) invoke(e *event) {
	fn, fnArg, arg := e.fn, e.fnArg, e.arg
	s.release(e)
	if fn != nil {
		fn()
	} else {
		fnArg(arg)
	}
}

// peek returns the earliest pending event without removing it, or nil.
// The wheel candidate comes from the cached min (rescanned on demand);
// the spill candidate is its heap head. Comparing the two is correct
// whether or not the spill head has been migrated yet.
func (s *Sim) peek() *event {
	wm := s.min
	if wm == nil && s.count > 0 {
		wm = s.rescan()
	}
	if len(s.spill) == 0 {
		return wm
	}
	sp := s.spill[0]
	if wm == nil || before(sp, wm) {
		return sp
	}
	return wm
}

// advance moves the clock to t. When t enters a new bucket the wheel
// horizon slides forward and every spill event now inside it migrates
// to its slot — this is what lets the same-timestamp batch in RunUntil
// skip spill probes, and what keeps slot lists to one bucket each.
func (s *Sim) advance(t Time) {
	s.now = t
	nb := int64(t >> slotShift)
	if nb == s.curBucket {
		return
	}
	s.curBucket = nb
	he := Time(nb+wheelSlots) << slotShift
	if he < t {
		// Near the Time overflow horizon (≈292 simulated years) the
		// wheel window cannot be represented; degrade to spill-only
		// operation, which stays correct.
		he = t
	}
	s.horizonEnd = he
	for len(s.spill) > 0 && s.spill[0].at < he {
		e := s.spill[0]
		s.spillPop()
		s.wheelInsert(e)
	}
}

// unqueue removes a queued event from whichever structure holds it.
func (s *Sim) unqueue(e *event) {
	if e.where == locWheel {
		s.wheelUnlink(e)
	} else {
		s.spillRemove(int(e.where))
	}
}

// before reports queue ordering: earlier time first, FIFO within a time.
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// ---- wheel ----

// wheelInsert links e into its slot's sorted list. The common case —
// the newest event in its slot, because per-source schedules advance
// monotonically — appends at the tail in O(1); otherwise a backward
// walk finds the insertion point (slot populations are near one, so
// the walk is short).
func (s *Sim) wheelInsert(e *event) {
	i := int(uint64(e.at)>>slotShift) & wheelMask
	sl := &s.slots[i]
	switch {
	case sl.tail == nil:
		sl.head = e
		sl.tail = e
		s.occ[i>>6] |= 1 << (uint(i) & 63)
	case !before(e, sl.tail):
		e.prev = sl.tail
		sl.tail.next = e
		sl.tail = e
	default:
		c := sl.tail
		for c.prev != nil && before(e, c.prev) {
			c = c.prev
		}
		e.next = c
		e.prev = c.prev
		if c.prev != nil {
			c.prev.next = e
		} else {
			sl.head = e
		}
		c.prev = e
	}
	e.where = locWheel
	s.count++
	if s.min != nil && before(e, s.min) {
		s.min = e
	} else if s.count == 1 {
		s.min = e
	}
}

// wheelUnlink removes e from its slot list and keeps the cached min
// coherent: removing the min promotes its same-slot successor (the
// slot holds the wheel's earliest bucket, so the successor is the new
// global wheel min), or invalidates the cache when the slot drains.
func (s *Sim) wheelUnlink(e *event) {
	i := int(uint64(e.at)>>slotShift) & wheelMask
	sl := &s.slots[i]
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sl.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sl.tail = e.prev
	}
	if sl.head == nil {
		s.occ[i>>6] &^= 1 << (uint(i) & 63)
	}
	s.count--
	if s.min == e {
		s.min = e.next // nil means "unknown": rescan on demand
	}
	e.next = nil
	e.prev = nil
	e.where = locNone
}

// rescan recomputes the cached wheel min by scanning the occupancy
// bitmap circularly from the clock's slot. Every queued wheel event
// lies within wheelSlots buckets at or after the clock's bucket, so
// the first occupied slot found is the earliest bucket and its list
// head the earliest event. Cost is a handful of word operations, paid
// only when a slot drains.
func (s *Sim) rescan() *event {
	start := int(uint64(s.now)>>slotShift) & wheelMask
	w := start >> 6
	b := uint(start & 63)
	if x := s.occ[w] & (^uint64(0) << b); x != 0 {
		s.min = s.slots[w<<6+bits.TrailingZeros64(x)].head
		return s.min
	}
	for k := 1; k <= wheelWords; k++ {
		w2 := (w + k) & (wheelWords - 1)
		if x := s.occ[w2]; x != 0 {
			s.min = s.slots[w2<<6+bits.TrailingZeros64(x)].head
			return s.min
		}
	}
	return nil
}

// ---- spill (4-ary implicit heap, far-future overflow) ----

func (s *Sim) spillPush(e *event) {
	s.spill = append(s.spill, e)
	s.up(len(s.spill) - 1)
}

// spillPop removes the heap minimum (the caller has already read it).
func (s *Sim) spillPop() {
	h := s.spill
	n := len(h) - 1
	h[0].where = locNone
	h[0] = h[n]
	h[n] = nil
	s.spill = h[:n]
	if n > 0 {
		s.down(0)
	}
}

// spillRemove deletes the element at index i.
func (s *Sim) spillRemove(i int) {
	h := s.spill
	n := len(h) - 1
	h[i].where = locNone
	if i == n {
		h[n] = nil
		s.spill = h[:n]
		return
	}
	moved := h[n]
	h[i] = moved
	moved.where = int32(i)
	h[n] = nil
	s.spill = h[:n]
	// Re-establish heap order in whichever direction is violated.
	if i > 0 && before(moved, h[(i-1)/4]) {
		s.up(i)
	} else {
		s.down(i)
	}
}

func (s *Sim) up(i int) {
	h := s.spill
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !before(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].where = int32(i)
		i = p
	}
	h[i] = e
	e.where = int32(i)
}

func (s *Sim) down(i int) {
	h := s.spill
	n := len(h)
	e := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		// Find the smallest of up to 4 children.
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if before(h[c], h[min]) {
				min = c
			}
		}
		if !before(h[min], e) {
			break
		}
		h[i] = h[min]
		h[i].where = int32(i)
		i = min
	}
	h[i] = e
	e.where = int32(i)
}

// Ticker invokes fn every period until Stop is called or the simulation
// drains. The first tick fires one period after Start.
type Ticker struct {
	sim    *Sim
	period Time
	fn     func()
	ev     Event
	tickFn func()
	active bool
}

// NewTicker creates an unstarted ticker.
func NewTicker(sim *Sim, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("eventsim: non-positive ticker period")
	}
	t := &Ticker{sim: sim, period: period, fn: fn}
	t.tickFn = t.tick
	return t
}

// Start schedules the first tick. Starting a running ticker is a no-op.
func (t *Ticker) Start() {
	if t.active {
		return
	}
	t.active = true
	t.ev = t.sim.After(t.period, t.tickFn)
}

func (t *Ticker) tick() {
	if !t.active {
		return
	}
	t.fn()
	if t.active {
		t.ev = t.sim.After(t.period, t.tickFn)
	}
}

// Stop cancels the pending tick and deactivates the ticker. The stale
// handle kept after Stop is harmless: its generation no longer matches
// once the node is recycled, so a later Stop cannot cancel an
// unrelated event.
func (t *Ticker) Stop() {
	t.active = false
	t.sim.Cancel(t.ev)
}
