// Package eventsim implements the discrete-event simulation engine that
// everything else in this repository runs on.
//
// A Sim owns a virtual clock and a pending-event queue. Components
// schedule callbacks at absolute times (At) or relative delays (After);
// Run repeatedly pops the earliest event and invokes it, advancing the
// clock. Two events scheduled for the same instant fire in the order
// they were scheduled, which keeps runs fully deterministic.
//
// The engine is single-goroutine by design: a packet-level network
// simulation is a serial dependency chain, and determinism (exact
// reproducibility from a seed) matters more than intra-run parallelism.
// Parallelism belongs one level up, across independent runs of a
// parameter sweep.
//
// The pending queue is a hand-rolled 4-ary implicit heap rather than
// container/heap: event push/pop is the hottest path of the whole
// simulator (millions of packets, each several events), and the 4-ary
// layout plus direct comparisons (no interface dispatch) roughly halves
// its cost.
//
// Event storage is recycled through a per-Sim freelist so steady-state
// scheduling allocates nothing: nodes are carved in blocks, released
// back when an event fires or is cancelled, and reused LIFO. Handles
// (the exported Event value) carry a generation counter so a stale
// handle to a recycled node is inert — Cancel and Scheduled on it are
// no-ops rather than acting on whatever event happens to occupy the
// node now. The freelist is a plain slice, not a sync.Pool: the engine
// is single-goroutine, and sync.Pool's GC-driven emptying would make
// reuse order (and therefore heap node addresses) vary across runs.
package eventsim

import (
	"fmt"

	"tlb/internal/units"
)

// Time re-exports the simulated-time type for convenience; all engine
// APIs use it.
type Time = units.Time

// maxTime is the largest representable simulated time.
const maxTime = Time(1<<63 - 1)

// event is the engine-internal node for one scheduled callback. Nodes
// live in a per-Sim freelist and are recycled; gen is bumped at every
// release so stale Event handles cannot resurrect a recycled node.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal times
	// Exactly one of fn / fnArg is set. The (fnArg, arg) pair lets hot
	// callers schedule a pre-bound function plus argument without
	// building a capturing closure per event.
	fn    func()
	fnArg func(any)
	arg   any
	gen   uint64
	heap  int32 // index in the heap, -1 once popped or cancelled
}

// Event is a handle to a scheduled callback. It is a value: copy it
// freely, keep it after the event fired, cancel it twice — a handle
// whose event already ran or was cancelled no longer matches its
// node's generation and every operation on it is a no-op. The zero
// value is a valid never-scheduled handle.
type Event struct {
	e   *event
	gen uint64
	at  Time
}

// At returns the time the event was scheduled for (valid even after
// the event fired; zero for the zero handle).
func (h Event) At() Time { return h.at }

// Scheduled reports whether the event is still pending.
func (h Event) Scheduled() bool { return h.e != nil && h.gen == h.e.gen }

// Sim is a discrete-event simulator instance.
type Sim struct {
	now     Time
	heap    []*event
	seq     uint64
	stopped bool
	// executed counts events run so far; useful for progress reporting
	// and for bounding runaway simulations in tests.
	executed uint64
	// free is the recycled-node stack (LIFO, deterministic).
	free []*event
}

// eventBlock is how many nodes one freelist refill carves at once, so
// warmup pays one allocation per block instead of one per event.
const eventBlock = 64

// initialHeapCap pre-sizes the pending queue; typical runs hold a few
// hundred in-flight events (one per packet on the wire plus timers).
const initialHeapCap = 512

// New returns an empty simulator with the clock at zero.
func New() *Sim {
	return &Sim{heap: make([]*event, 0, initialHeapCap)}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Executed returns the number of events that have run.
func (s *Sim) Executed() uint64 { return s.executed }

// Pending returns the number of events currently scheduled.
func (s *Sim) Pending() int { return len(s.heap) }

// alloc pops a recycled node, refilling the freelist with a fresh
// block when it runs dry.
func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	blk := make([]event, eventBlock)
	for i := range blk {
		blk[i].heap = -1
	}
	for i := eventBlock - 1; i >= 1; i-- {
		s.free = append(s.free, &blk[i])
	}
	return &blk[0]
}

// release invalidates every outstanding handle to the node and returns
// it to the freelist. Callback references are cleared so the freelist
// does not pin closures or their captures.
func (s *Sim) release(e *event) {
	e.gen++
	e.fn = nil
	e.fnArg = nil
	e.arg = nil
	e.heap = -1
	s.free = append(s.free, e)
}

func (s *Sim) schedule(t Time, fn func(), fnArg func(any), arg any) Event {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", t, s.now))
	}
	e := s.alloc()
	e.at = t
	e.seq = s.seq
	e.fn = fn
	e.fnArg = fnArg
	e.arg = arg
	s.seq++
	s.push(e)
	return Event{e: e, gen: e.gen, at: t}
}

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it is always a modelling bug, and silently
// reordering time corrupts every metric downstream.
func (s *Sim) At(t Time, fn func()) Event {
	if fn == nil {
		panic("eventsim: nil event function")
	}
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// AtArg schedules fn(arg) at absolute time t. It exists for hot paths
// that would otherwise build a capturing closure per event: a stored
// func(any) plus a pointer-typed arg costs no allocation per call.
func (s *Sim) AtArg(t Time, fn func(any), arg any) Event {
	if fn == nil {
		panic("eventsim: nil event function")
	}
	return s.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d after the current time.
func (s *Sim) AfterArg(d Time, fn func(any), arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", d))
	}
	return s.AtArg(s.now+d, fn, arg)
}

// Cancel removes a pending event and reports whether it was still
// pending. Cancelling an event that already ran (or was already
// cancelled) returns false and does nothing else, so callers may
// cancel timers unconditionally; the generation check makes this safe
// even after the event's node has been recycled for a different event.
func (s *Sim) Cancel(h Event) bool {
	if h.e == nil || h.gen != h.e.gen {
		return false
	}
	s.remove(int(h.e.heap))
	s.release(h.e)
	return true
}

// Stop makes the current Run/RunUntil call return after the in-flight
// event finishes. Pending events stay queued. A Stop issued while no
// Run is in progress is remembered: the next Run/RunUntil call returns
// immediately (consuming the Stop), so a stop decided between runs is
// not silently lost.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (s *Sim) Run() {
	s.RunUntil(maxTime)
}

// RunUntil executes events with time <= deadline, then sets the clock to
// the deadline (if it is ahead) and returns. Events beyond the deadline
// stay queued, so a later RunUntil can continue the same simulation.
// A pending Stop (from before the call or issued by an event) ends the
// call early and is consumed on return.
func (s *Sim) RunUntil(deadline Time) {
	for len(s.heap) > 0 && !s.stopped {
		e := s.heap[0]
		if e.at > deadline {
			break
		}
		s.popHead()
		s.now = e.at
		s.executed++
		s.invoke(e)
	}
	if !s.stopped && s.now < deadline && deadline < maxTime {
		s.now = deadline
	}
	s.stopped = false
}

// Step runs exactly one event and reports whether one was available.
// Step ignores a pending Stop (it is an explicit single-step request).
func (s *Sim) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap[0]
	s.popHead()
	s.now = e.at
	s.executed++
	s.invoke(e)
	return true
}

// invoke releases the node and then runs the callback, so the callback
// itself can schedule new events into the just-freed node and a
// handle's Scheduled goes false for the duration of its own callback.
func (s *Sim) invoke(e *event) {
	fn, fnArg, arg := e.fn, e.fnArg, e.arg
	s.release(e)
	if fn != nil {
		fn()
	} else {
		fnArg(arg)
	}
}

// before reports heap ordering: earlier time first, FIFO within a time.
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts the event into the 4-ary heap.
func (s *Sim) push(e *event) {
	s.heap = append(s.heap, e)
	s.up(len(s.heap) - 1)
}

// popHead removes the heap minimum (the caller has already read it).
func (s *Sim) popHead() {
	h := s.heap
	n := len(h) - 1
	h[0].heap = -1
	h[0] = h[n]
	h[n] = nil
	s.heap = h[:n]
	if n > 0 {
		s.down(0)
	}
}

// remove deletes the element at index i.
func (s *Sim) remove(i int) {
	h := s.heap
	n := len(h) - 1
	h[i].heap = -1
	if i == n {
		h[n] = nil
		s.heap = h[:n]
		return
	}
	moved := h[n]
	h[i] = moved
	moved.heap = int32(i)
	h[n] = nil
	s.heap = h[:n]
	// Re-establish heap order in whichever direction is violated.
	if i > 0 && before(moved, h[(i-1)/4]) {
		s.up(i)
	} else {
		s.down(i)
	}
}

func (s *Sim) up(i int) {
	h := s.heap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !before(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].heap = int32(i)
		i = p
	}
	h[i] = e
	e.heap = int32(i)
}

func (s *Sim) down(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		// Find the smallest of up to 4 children.
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if before(h[c], h[min]) {
				min = c
			}
		}
		if !before(h[min], e) {
			break
		}
		h[i] = h[min]
		h[i].heap = int32(i)
		i = min
	}
	h[i] = e
	e.heap = int32(i)
}

// Ticker invokes fn every period until Stop is called or the simulation
// drains. The first tick fires one period after Start.
type Ticker struct {
	sim    *Sim
	period Time
	fn     func()
	ev     Event
	tickFn func()
	active bool
}

// NewTicker creates an unstarted ticker.
func NewTicker(sim *Sim, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("eventsim: non-positive ticker period")
	}
	t := &Ticker{sim: sim, period: period, fn: fn}
	t.tickFn = t.tick
	return t
}

// Start schedules the first tick. Starting a running ticker is a no-op.
func (t *Ticker) Start() {
	if t.active {
		return
	}
	t.active = true
	t.ev = t.sim.After(t.period, t.tickFn)
}

func (t *Ticker) tick() {
	if !t.active {
		return
	}
	t.fn()
	if t.active {
		t.ev = t.sim.After(t.period, t.tickFn)
	}
}

// Stop cancels the pending tick and deactivates the ticker. The stale
// handle kept after Stop is harmless: its generation no longer matches
// once the node is recycled, so a later Stop cannot cancel an
// unrelated event.
func (t *Ticker) Stop() {
	t.active = false
	t.sim.Cancel(t.ev)
}
