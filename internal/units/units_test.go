package units

import (
	"testing"
	"testing/quick"
)

func TestTxTime(t *testing.T) {
	cases := []struct {
		bw    Bandwidth
		bytes Bytes
		want  Time
	}{
		{Gbps, 1500, 12 * Microsecond},          // 12000ns exactly
		{Gbps, 125, Microsecond},                // 1000 bits at 1e9 bps
		{10 * Gbps, 1500, 1200 * Nanosecond},    //
		{Mbps, 1500, 12 * Millisecond},          //
		{20 * Mbps, 1500, 600 * Microsecond},    // testbed link
		{8 * BitPerSecond, 1, Second},           // 8 bits at 8bps
		{3 * BitPerSecond, 1, Time(2666666667)}, // rounds up
	}
	for _, c := range cases {
		if got := c.bw.TxTime(c.bytes); got != c.want {
			t.Errorf("TxTime(%v, %v) = %v, want %v", c.bw, c.bytes, got, c.want)
		}
	}
}

func TestTxTimePanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero bandwidth")
		}
	}()
	Bandwidth(0).TxTime(100)
}

// TestTxTimeNeverUndershoots: serialization must take at least the
// exact bits/rate time, or back-to-back packets would overlap.
func TestTxTimeNeverUndershoots(t *testing.T) {
	f := func(bwRaw uint32, szRaw uint16) bool {
		bw := Bandwidth(bwRaw%1000000 + 1)
		sz := Bytes(szRaw%9000 + 1)
		got := bw.TxTime(sz)
		// got must satisfy got*bw >= bits*Second (no undershoot) and
		// (got-1)*bw < bits*Second (minimal).
		bits := int64(sz) * 8
		if int64(got)*int64(bw) < bits*int64(Second) {
			return false
		}
		if int64(got-1)*int64(bw) >= bits*int64(Second) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacketsPerSecond(t *testing.T) {
	if pps := Gbps.PacketsPerSecond(1500); pps < 83333.3 || pps > 83333.4 {
		t.Fatalf("1Gbps / 1500B = %v pps", pps)
	}
}

func TestBytesPerSecond(t *testing.T) {
	if bps := Gbps.BytesPerSecond(); bps != 125e6 {
		t.Fatalf("1Gbps = %v B/s", bps)
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Gbps.String(), "1Gbps"},
		{(20 * Mbps).String(), "20Mbps"},
		{(1500 * Kbps).String(), "1500Kbps"},
		{Bandwidth(7).String(), "7bps"},
		{(10 * MB).String(), "10MB"},
		{(100 * KB).String(), "100KB"},
		{Bytes(123).String(), "123B"},
		{Time(0).String(), "0s"},
		{Second.String(), "1s"},
		{(100 * Microsecond).String(), "100µs"},
		{(10 * Millisecond).String(), "10ms"},
		{Time(42).String(), "42ns"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (1500 * Microsecond).Millis() != 1.5 {
		t.Fatal("Millis")
	}
	if (250 * Nanosecond).Micros() != 0.25 {
		t.Fatal("Micros")
	}
	if FromSeconds(2.5) != 2500*Millisecond {
		t.Fatal("FromSeconds")
	}
}
