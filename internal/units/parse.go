package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file implements the textual forms the declarative scenario
// specs (internal/spec) use for physical quantities: "150us", "2.5ms",
// "100KB", "64KiB", "20Mbps". Formatting is exact — Format* picks the
// largest unit the value divides evenly, so Parse*(Format*(v)) == v
// for every representable value — while parsing additionally accepts
// decimal multipliers for hand-written specs.

// timeUnits in parse order; longest suffixes first so "ms" does not
// match the "s" rule.
//
//simlint:allow sharedstate(immutable suffix table; never written after init)
var timeUnits = []struct {
	suffix string
	unit   Time
}{
	{"ns", Nanosecond},
	{"us", Microsecond},
	{"µs", Microsecond},
	{"ms", Millisecond},
	{"s", Second},
}

// ParseTime parses a duration like "150us", "2.5ms", "3s" or "250ns".
// A bare number is nanoseconds.
func ParseTime(s string) (Time, error) {
	v, err := parseQuantity(s, "time", func(suffix string) (int64, bool) {
		for _, u := range timeUnits {
			if suffix == u.suffix {
				return int64(u.unit), true
			}
		}
		return 0, false
	})
	return Time(v), err
}

// FormatTime renders t exactly: the largest unit of s/ms/us/ns that
// divides it evenly, as an integer.
func FormatTime(t Time) string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	switch {
	case t != 0 && t%Second == 0:
		return fmt.Sprintf("%s%ds", neg, t/Second)
	case t != 0 && t%Millisecond == 0:
		return fmt.Sprintf("%s%dms", neg, t/Millisecond)
	case t != 0 && t%Microsecond == 0:
		return fmt.Sprintf("%s%dus", neg, t/Microsecond)
	default:
		return fmt.Sprintf("%s%dns", neg, int64(t))
	}
}

// byteUnits in parse order; binary units before their decimal
// near-namesakes so "KiB" is not split as "Ki"+"B".
//
//simlint:allow sharedstate(immutable suffix table; never written after init)
var byteUnits = []struct {
	suffix string
	unit   Bytes
}{
	{"KiB", KiB},
	{"MiB", MiB},
	{"GiB", 1024 * MiB},
	{"KB", KB},
	{"MB", MB},
	{"GB", 1000 * MB},
	{"B", Byte},
}

// ParseBytes parses a size like "100KB", "64KiB", "1460B" or "10MB".
// A bare number is bytes.
func ParseBytes(s string) (Bytes, error) {
	v, err := parseQuantity(s, "size", func(suffix string) (int64, bool) {
		for _, u := range byteUnits {
			if suffix == u.suffix {
				return int64(u.unit), true
			}
		}
		return 0, false
	})
	return Bytes(v), err
}

// FormatBytes renders n exactly, preferring decimal units and falling
// back to binary ones (so 64 KiB round-trips as "64KiB", not
// "65536B").
func FormatBytes(n Bytes) string {
	neg := ""
	if n < 0 {
		neg, n = "-", -n
	}
	switch {
	case n != 0 && n%MB == 0:
		return fmt.Sprintf("%s%dMB", neg, n/MB)
	case n != 0 && n%KB == 0:
		return fmt.Sprintf("%s%dKB", neg, n/KB)
	case n != 0 && n%MiB == 0:
		return fmt.Sprintf("%s%dMiB", neg, n/MiB)
	case n != 0 && n%KiB == 0:
		return fmt.Sprintf("%s%dKiB", neg, n/KiB)
	default:
		return fmt.Sprintf("%s%dB", neg, int64(n))
	}
}

// bandwidthUnits in parse order.
//
//simlint:allow sharedstate(immutable suffix table; never written after init)
var bandwidthUnits = []struct {
	suffix string
	unit   Bandwidth
}{
	{"Gbps", Gbps},
	{"Mbps", Mbps},
	{"Kbps", Kbps},
	{"bps", BitPerSecond},
}

// ParseBandwidth parses a rate like "1Gbps", "20Mbps" or "2.5Gbps". A
// bare number is bits per second.
func ParseBandwidth(s string) (Bandwidth, error) {
	v, err := parseQuantity(s, "bandwidth", func(suffix string) (int64, bool) {
		for _, u := range bandwidthUnits {
			if suffix == u.suffix {
				return int64(u.unit), true
			}
		}
		return 0, false
	})
	return Bandwidth(v), err
}

// FormatBandwidth renders b exactly with the largest even unit.
func FormatBandwidth(b Bandwidth) string {
	neg := ""
	if b < 0 {
		neg, b = "-", -b
	}
	switch {
	case b != 0 && b%Gbps == 0:
		return fmt.Sprintf("%s%dGbps", neg, b/Gbps)
	case b != 0 && b%Mbps == 0:
		return fmt.Sprintf("%s%dMbps", neg, b/Mbps)
	case b != 0 && b%Kbps == 0:
		return fmt.Sprintf("%s%dKbps", neg, b/Kbps)
	default:
		return fmt.Sprintf("%s%dbps", neg, int64(b))
	}
}

// parseQuantity splits "<number><suffix>" and scales. Integer values
// scale in integer arithmetic (exact); decimals go through float64 and
// round to the nearest base unit.
func parseQuantity(s, what string, unitOf func(suffix string) (int64, bool)) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty %s", what)
	}
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	num, suffix := s[:i], strings.TrimSpace(s[i:])
	unit := int64(1)
	if suffix != "" {
		u, ok := unitOf(suffix)
		if !ok {
			return 0, fmt.Errorf("units: unknown %s unit %q in %q", what, suffix, s)
		}
		unit = u
	}
	if n, err := strconv.ParseInt(num, 10, 64); err == nil {
		if n != 0 && (n*unit)/unit != n {
			return 0, fmt.Errorf("units: %s %q overflows", what, s)
		}
		return n * unit, nil
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad %s %q", what, s)
	}
	v := f * float64(unit)
	if math.IsNaN(v) || v > math.MaxInt64 || v < math.MinInt64 {
		return 0, fmt.Errorf("units: %s %q out of range", what, s)
	}
	return int64(math.Round(v)), nil
}
