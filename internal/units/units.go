// Package units defines the physical quantities used throughout the
// simulator: simulated time, link bandwidth and data sizes.
//
// Simulated time is an int64 count of nanoseconds so that event ordering
// is exact and free of floating-point drift. Bandwidth is bits per second.
// Sizes are bytes. Helper functions convert between the three (e.g. the
// serialization delay of a packet on a link).
package units

import "fmt"

// Time is a point in (or duration of) simulated time, in nanoseconds.
// It is intentionally distinct from time.Duration: simulated time never
// interacts with the wall clock.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// FromSeconds converts a float64 number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time with an adaptive unit, e.g. "150µs" or "1.5ms".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3gms", t.Millis())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3gµs", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Bandwidth is a link rate in bits per second.
type Bandwidth int64

// Common rates.
const (
	BitPerSecond Bandwidth = 1
	Kbps                   = 1000 * BitPerSecond
	Mbps                   = 1000 * Kbps
	Gbps                   = 1000 * Mbps
)

// TxTime returns the serialization delay of n bytes at bandwidth b.
// It rounds up to the next nanosecond so that back-to-back packets
// never overlap on the wire.
func (b Bandwidth) TxTime(n Bytes) Time {
	if b <= 0 {
		panic("units: non-positive bandwidth")
	}
	bits := int64(n) * 8
	// ceil(bits * 1e9 / b) without overflow for realistic values:
	// bits < 2^40 for any packet/burst we model, 1e9 < 2^30.
	return Time((bits*int64(Second) + int64(b) - 1) / int64(b))
}

// BytesPerSecond returns the bandwidth in bytes per second.
func (b Bandwidth) BytesPerSecond() float64 { return float64(b) / 8 }

// PacketsPerSecond returns how many packets of the given size the link
// can serialize per second.
func (b Bandwidth) PacketsPerSecond(pktBytes Bytes) float64 {
	return b.BytesPerSecond() / float64(pktBytes)
}

// String formats the bandwidth with an adaptive unit.
func (b Bandwidth) String() string {
	switch {
	case b >= Gbps && b%Gbps == 0:
		return fmt.Sprintf("%dGbps", b/Gbps)
	case b >= Mbps && b%Mbps == 0:
		return fmt.Sprintf("%dMbps", b/Mbps)
	case b >= Kbps && b%Kbps == 0:
		return fmt.Sprintf("%dKbps", b/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(b))
	}
}

// Bytes is a data size in bytes.
type Bytes int64

// Common sizes.
const (
	Byte Bytes = 1
	KB         = 1000 * Byte
	MB         = 1000 * KB
	KiB        = 1024 * Byte
	MiB        = 1024 * KiB
)

// String formats the size with an adaptive decimal unit.
func (n Bytes) String() string {
	switch {
	case n >= MB && n%MB == 0:
		return fmt.Sprintf("%dMB", n/MB)
	case n >= KB && n%KB == 0:
		return fmt.Sprintf("%dKB", n/KB)
	default:
		return fmt.Sprintf("%dB", int64(n))
	}
}
