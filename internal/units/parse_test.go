package units

import "testing"

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want Time
	}{
		{"150us", 150 * Microsecond},
		{"150µs", 150 * Microsecond},
		{"2.5ms", 2500 * Microsecond},
		{"3s", 3 * Second},
		{"250ns", 250 * Nanosecond},
		{"0s", 0},
		{"42", 42 * Nanosecond},
		{"-4ms", -4 * Millisecond},
		{" 10ms ", 10 * Millisecond},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseTime(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "ms", "10lightyears", "1.2.3s"} {
		if _, err := ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q) accepted", bad)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"100KB", 100 * KB},
		{"64KiB", 64 * KiB},
		{"1460B", 1460},
		{"10MB", 10 * MB},
		{"2MiB", 2 * MiB},
		{"1460", 1460},
		{"1.5KB", 1500},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

func TestParseBandwidth(t *testing.T) {
	cases := []struct {
		in   string
		want Bandwidth
	}{
		{"1Gbps", Gbps},
		{"20Mbps", 20 * Mbps},
		{"2.5Gbps", 2500 * Mbps},
		{"9600bps", 9600},
	}
	for _, c := range cases {
		got, err := ParseBandwidth(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBandwidth(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
}

// The spec layer depends on Format*/Parse* being lossless inverses for
// every value the experiments emit; exercise representative values of
// each branch.
func TestFormatRoundTrip(t *testing.T) {
	times := []Time{0, 1, 999, Microsecond, 150 * Microsecond, 2500 * Microsecond,
		Millisecond, 15 * Millisecond, Second, 120 * Second, 2500*Millisecond + 1, -4 * Millisecond}
	for _, v := range times {
		s := FormatTime(v)
		got, err := ParseTime(s)
		if err != nil || got != v {
			t.Errorf("ParseTime(FormatTime(%d)=%q) = %v, %v", int64(v), s, got, err)
		}
	}
	sizes := []Bytes{0, 1, 40, 1460, 100 * KB, 64 * KiB, 10 * MB, 55 * KB, 30*KB + 1, -100 * KB}
	for _, v := range sizes {
		s := FormatBytes(v)
		got, err := ParseBytes(s)
		if err != nil || got != v {
			t.Errorf("ParseBytes(FormatBytes(%d)=%q) = %v, %v", int64(v), s, got, err)
		}
	}
	bws := []Bandwidth{0, Gbps, 20 * Mbps, 5 * Mbps, 2500 * Mbps, 9600, Kbps, Gbps + 1}
	for _, v := range bws {
		s := FormatBandwidth(v)
		got, err := ParseBandwidth(s)
		if err != nil || got != v {
			t.Errorf("ParseBandwidth(FormatBandwidth(%d)=%q) = %v, %v", int64(v), s, got, err)
		}
	}
}
