package core

import (
	"fmt"

	"tlb/internal/lb"
)

// shortPolicyNames maps the spec-level policy strings onto the enum;
// EnvConfig/buildTLB translate in both directions so the registry and
// the experiments share one spelling.
//
//simlint:allow sharedstate(immutable name table; never written after init)
var shortPolicyNames = []struct {
	name   string
	policy ShortPolicy
}{
	{"shortest-queue", ShortShortestQueue},
	{"po2c", ShortPowerOfTwo},
	{"random", ShortRandom},
}

// ShortPolicyName returns the canonical spec string for a policy.
func ShortPolicyName(p ShortPolicy) string {
	for _, e := range shortPolicyNames {
		if e.policy == p {
			return e.name
		}
	}
	return fmt.Sprintf("ShortPolicy(%d)", int(p))
}

// EnvConfig returns the TLB configuration every environment starts
// from: the paper's defaults with the fabric-derived fields (link
// rate, RTT, q_th cap) filled in. Registry-built TLBs apply their spec
// parameters on top of exactly this base.
func EnvConfig(env lb.Env) Config {
	cfg := DefaultConfig()
	cfg.LinkBandwidth = env.FabricBandwidth
	cfg.RTT = env.BaseRTT
	cfg.MaxQTh = env.QueueCapacity
	return cfg
}

func init() {
	lb.Register(lb.Registration{
		Name: "tlb",
		Doc:  "the paper's traffic-aware adaptive-granularity balancer",
		Params: []lb.Param{
			{Name: "shortThreshold", Kind: lb.KindBytes, Doc: "short/long classification boundary (default 100KB)"},
			{Name: "interval", Kind: lb.KindDuration, Doc: "q_th update period t (default 500us)"},
			{Name: "deadline", Kind: lb.KindDuration, Doc: "short-flow completion budget D (default 10ms)"},
			{Name: "meanShortSize", Kind: lb.KindBytes, Doc: "mean short-flow size X (default 70KB)"},
			{Name: "estimateShortSize", Kind: lb.KindBool, Doc: "estimate X online via EWMA (default false)"},
			{Name: "longWindow", Kind: lb.KindBytes, Doc: "long-flow window W_L (default 64KiB)"},
			{Name: "rtt", Kind: lb.KindDuration, Doc: "fabric RTT (default: derived from the topology)"},
			{Name: "linkBandwidth", Kind: lb.KindBandwidth, Doc: "per-path bandwidth C (default: the fabric link rate)"},
			{Name: "mss", Kind: lb.KindBytes, Doc: "segment size for byte/packet conversion (default 1460B)"},
			{Name: "maxQTh", Kind: lb.KindInt, Doc: "q_th clamp in packets (default: the queue capacity)"},
			{Name: "fixedQTh", Kind: lb.KindInt, Doc: "pin q_th instead of adapting; -1 adapts (default -1)"},
			{Name: "shortPolicy", Kind: lb.KindString, Doc: "short-flow path policy: shortest-queue, po2c or random"},
			{Name: "shortHysteresis", Kind: lb.KindInt, Doc: "short-flow queue-difference hysteresis in packets (default 1)"},
			{Name: "uncappedLongDemand", Kind: lb.KindBool, Doc: "use the paper's literal Eq. 1 long-flow demand (default false)"},
			{Name: "rerouteLeastLong", Kind: lb.KindBool, Doc: "reroute longs to the fewest-longs uplink (default false)"},
			{Name: "disableSafeSwitch", Kind: lb.KindBool, Doc: "turn off the reordering guard (default false)"},
			{Name: "escapeFactor", Kind: lb.KindFloat, Doc: "degradation ratio that overrides the guard; 0 derives 4, negative disables"},
		},
		Build: buildTLB,
	})
}

func buildTLB(a *lb.Args, env lb.Env) lb.Factory {
	cfg := EnvConfig(env)
	cfg.ShortThreshold = a.Bytes("shortThreshold", cfg.ShortThreshold)
	cfg.Interval = a.Duration("interval", cfg.Interval)
	cfg.Deadline = a.Duration("deadline", cfg.Deadline)
	cfg.MeanShortSize = a.Bytes("meanShortSize", cfg.MeanShortSize)
	cfg.EstimateShortSize = a.Bool("estimateShortSize", cfg.EstimateShortSize)
	cfg.LongWindow = a.Bytes("longWindow", cfg.LongWindow)
	cfg.RTT = a.Duration("rtt", cfg.RTT)
	cfg.LinkBandwidth = a.Bandwidth("linkBandwidth", cfg.LinkBandwidth)
	cfg.MSS = a.Bytes("mss", cfg.MSS)
	cfg.MaxQTh = a.Int("maxQTh", cfg.MaxQTh)
	cfg.FixedQTh = a.Int("fixedQTh", cfg.FixedQTh)
	if s := a.String("shortPolicy", ""); s != "" {
		found := false
		for _, e := range shortPolicyNames {
			if e.name == s {
				cfg.ShortFlowPolicy, found = e.policy, true
				break
			}
		}
		if !found {
			a.Errorf("shortPolicy", "unknown policy %q (valid: shortest-queue, po2c, random)", s)
		}
	}
	cfg.ShortHysteresis = a.Int("shortHysteresis", cfg.ShortHysteresis)
	cfg.UncappedLongDemand = a.Bool("uncappedLongDemand", cfg.UncappedLongDemand)
	cfg.RerouteLeastLong = a.Bool("rerouteLeastLong", cfg.RerouteLeastLong)
	cfg.DisableSafeSwitch = a.Bool("disableSafeSwitch", cfg.DisableSafeSwitch)
	cfg.EscapeFactor = a.Float("escapeFactor", cfg.EscapeFactor)
	return Factory(cfg)
}
