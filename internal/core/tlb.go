// Package core implements TLB, the paper's traffic-aware load balancer
// with adaptive granularity. It plugs into the same switch-side
// Balancer interface as the baselines in internal/lb.
//
// Per the paper's design (§3, §5):
//
//   - The switch keeps a flow table driven by SYN/FIN packets plus a
//     periodic idle sweep, giving the live counts of short (m_S) and
//     long (m_L) flows.
//   - Flows are classified by bytes seen: everything starts short and
//     becomes long past a 100 KB threshold.
//   - Every interval t (500 µs) the granularity calculator recomputes
//     the long-flow switching threshold q_th from the queueing model
//     (internal/model, Eq. 9).
//   - The forwarding manager sends every short-flow packet to the
//     shortest queue; a long flow stays on its current uplink until
//     that uplink's queue reaches q_th, then jumps to the shortest
//     queue.
package core

import (
	"math"
	"sort"

	"tlb/internal/eventsim"
	"tlb/internal/lb"
	"tlb/internal/model"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// Config parameterizes one TLB instance (one per switch).
type Config struct {
	// ShortThreshold is the bytes-seen boundary between short and long
	// flows (100 KB in the paper).
	ShortThreshold units.Bytes
	// Interval is t: both the q_th update period and the idle-flow
	// sampling period (500 µs in the paper's NS2 setup).
	Interval units.Time
	// Deadline is D, the short-flow completion budget used by the
	// granularity calculator — the paper uses the 25th percentile of
	// the deadline distribution, including in the deadline-agnostic
	// case.
	Deadline units.Time
	// MeanShortSize is X. When EstimateShortSize is false this static
	// value is used; otherwise it seeds an online EWMA over the sizes
	// of finished short flows.
	MeanShortSize units.Bytes
	// EstimateShortSize switches X to the online estimate.
	EstimateShortSize bool
	// LongWindow is W_L, the receive-buffer cap of long flows (64 KB).
	LongWindow units.Bytes
	// RTT is the fabric round-trip propagation delay.
	RTT units.Time
	// LinkBandwidth is the per-path bottleneck bandwidth C.
	LinkBandwidth units.Bandwidth
	// MSS converts bytes to packets for the model.
	MSS units.Bytes
	// MaxQTh clamps q_th (packets); typically the switch buffer size.
	MaxQTh int
	// FixedQTh, when >= 0, disables the adaptive calculator and pins
	// the threshold — used by the Fig. 7 verification (which sweeps
	// fixed thresholds) and the fixed-granularity ablation.
	FixedQTh int
	// ShortFlowPolicy selects how short-flow packets pick a path
	// (shortest queue by default; alternatives exist for ablations).
	ShortFlowPolicy ShortPolicy
	// ShortHysteresis keeps a short flow on its current uplink while
	// that uplink's backlog is within this many packets of the global
	// minimum. Zero switches on any difference; one (the default via
	// DefaultConfig) avoids ping-ponging between near-equal queues,
	// which reorders bursts for no queueing gain.
	ShortHysteresis int
	// UncappedLongDemand forwards the flag of the same name to the
	// queueing model: assume longs send W_L per propagation RTT (the
	// paper's literal Eq. 1) instead of capping their demand at line
	// rate. See model.Params.UncappedLongDemand.
	UncappedLongDemand bool
	// RerouteLeastLong, when set, sends a rerouting long flow to the
	// uplink with the fewest parked longs instead of the lowest-delay
	// one (ablation knob).
	RerouteLeastLong bool
	// DisableSafeSwitch turns off the reordering guard on path
	// switches. By default a flow moves to a faster port only when its
	// idle gap covers the delay difference between the old and new
	// port (gap >= delay(old) - delay(new)): a packet sent now on the
	// new port then cannot overtake the flow's previous packet, so
	// switching never reorders. The guard is what lets TLB switch at
	// packet granularity without tripping TCP's duplicate-ACK
	// machinery, and it is computed purely from local port state. The
	// flag exists for the ablation that quantifies its value.
	DisableSafeSwitch bool
	// EscapeFactor overrides the safety guard when the current port is
	// drastically worse than the alternative (cur > EscapeFactor *
	// cand): a flow trapped behind a heavily degraded link (e.g. a
	// de-rated 5 Mbps path) accepts one reordering episode to get off
	// it, which is far cheaper than staying. 0 derives the default
	// (4); negative disables the escape.
	EscapeFactor float64
}

// ShortPolicy enumerates per-packet path policies for short flows.
type ShortPolicy int

// Short-flow path policies.
const (
	// ShortShortestQueue scans all uplinks for the minimum backlog —
	// the paper's design.
	ShortShortestQueue ShortPolicy = iota
	// ShortPowerOfTwo samples two random uplinks and takes the
	// shorter (DRILL-style), trading decision cost for queue accuracy.
	ShortPowerOfTwo
	// ShortRandom sprays uniformly (RPS-style), ignoring queues.
	ShortRandom
)

// DefaultConfig mirrors the paper's NS2 parameters.
func DefaultConfig() Config {
	return Config{
		ShortThreshold:  100 * units.KB,
		Interval:        500 * units.Microsecond,
		Deadline:        10 * units.Millisecond, // 25th pct of U[5ms,25ms]
		MeanShortSize:   70 * units.KB,
		LongWindow:      64 * units.KiB,
		RTT:             100 * units.Microsecond,
		LinkBandwidth:   units.Gbps,
		MSS:             1460,
		MaxQTh:          256,
		FixedQTh:        -1,
		ShortHysteresis: 1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ShortThreshold <= 0 {
		c.ShortThreshold = d.ShortThreshold
	}
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.Deadline <= 0 {
		c.Deadline = d.Deadline
	}
	if c.MeanShortSize <= 0 {
		c.MeanShortSize = d.MeanShortSize
	}
	if c.LongWindow <= 0 {
		c.LongWindow = d.LongWindow
	}
	if c.RTT <= 0 {
		c.RTT = d.RTT
	}
	if c.LinkBandwidth <= 0 {
		c.LinkBandwidth = d.LinkBandwidth
	}
	if c.MSS <= 0 {
		c.MSS = d.MSS
	}
	if c.MaxQTh <= 0 {
		c.MaxQTh = d.MaxQTh
	}
	return c
}

// Stats exposes TLB-internal counters for experiments and tests.
type Stats struct {
	// Reroutes counts long-flow path switches (granularity events).
	Reroutes int64
	// ShortPackets / LongPackets count forwarding decisions on
	// data-direction packets by flow class; ControlPackets counts
	// header-only reverse traffic (pure ACKs, SYN-ACKs) routed
	// statelessly — kept separate so the Fig. 15a per-packet-cost
	// breakdown does not conflate control routing with short-flow
	// data decisions.
	ShortPackets   int64
	LongPackets    int64
	ControlPackets int64
	// Updates counts q_th recomputations.
	Updates int64
	// Evictions counts idle flow-table removals.
	Evictions int64
}

// flowEntry is one row of the switch flow table.
type flowEntry struct {
	bytes    units.Bytes
	port     int
	long     bool
	lastSeen units.Time
	hasPort  bool
	// lastETA is the latest estimated arrival time of any packet this
	// flow has sent (send time + the chosen port's estimated delay at
	// that moment). A move to another port is reordering-safe exactly
	// when now + newPortDelay >= lastETA.
	lastETA units.Time
}

// TLB is one switch's balancer instance.
type TLB struct {
	sim   *eventsim.Sim
	rng   *eventsim.RNG
	cfg   Config
	ports []*netem.Port

	flows  map[netem.FlowID]*flowEntry
	nShort int
	nLong  int
	// longsOnPort counts parked long flows per uplink, for spreading
	// newly promoted longs.
	longsOnPort []int

	qth int

	// hystDelay is ShortHysteresis converted to time (packets times
	// MSS serialization at line rate), for delay-based comparisons.
	hystDelay units.Time

	// Online mean short-flow size estimate (EWMA over flows that
	// terminate below the long threshold).
	estShortSize float64

	ticker *eventsim.Ticker

	stats Stats
}

// New constructs a TLB balancer over the given uplinks and starts its
// periodic granularity updates.
func New(sim *eventsim.Sim, rng *eventsim.RNG, ports []*netem.Port, cfg Config) *TLB {
	c := cfg.withDefaults()
	//simlint:allow floateq(0 is the exact "derive the default" config sentinel, never a computed value)
	if c.EscapeFactor == 0 {
		c.EscapeFactor = 4
	}
	t := &TLB{
		sim:          sim,
		rng:          rng,
		cfg:          c,
		ports:        ports,
		flows:        make(map[netem.FlowID]*flowEntry),
		longsOnPort:  make([]int, len(ports)),
		estShortSize: float64(c.MeanShortSize),
	}
	t.hystDelay = units.Time(c.ShortHysteresis) * c.LinkBandwidth.TxTime(c.MSS+40)
	t.qth = t.computeQTh()
	t.ticker = eventsim.NewTicker(sim, c.Interval, t.tick)
	t.ticker.Start()
	return t
}

// Factory adapts TLB to the lb.Factory signature used by topology.
func Factory(cfg Config) lb.Factory {
	return func(sim *eventsim.Sim, rng *eventsim.RNG, ports []*netem.Port) lb.Balancer {
		return New(sim, rng, ports, cfg)
	}
}

// Name implements lb.Balancer.
func (t *TLB) Name() string { return "tlb" }

// QTh returns the current switching threshold in packets.
func (t *TLB) QTh() int { return t.qth }

// ActiveFlows returns the current (short, long) flow counts.
func (t *TLB) ActiveFlows() (short, long int) { return t.nShort, t.nLong }

// Stats returns a copy of the internal counters.
func (t *TLB) Stats() Stats { return t.stats }

// Pick implements lb.Balancer: the forwarding manager of §3.
func (t *TLB) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	// Reverse-direction control traffic (ACKs, SYN-ACKs) is routed
	// per packet to the shortest queue but kept out of the flow table:
	// the paper's switch counts flows from the SYN/FIN of the data
	// direction, and an ACK stream is not a flow competing for path
	// capacity.
	if pkt.Kind == netem.Ack || pkt.Kind == netem.SynAck {
		t.stats.ControlPackets++
		return lb.LowestDelay(t.rng, ports)
	}
	now := t.sim.Now()
	e, _ := t.lookup(pkt, now)

	var port int
	if e.long {
		t.stats.LongPackets++
		// Long flow: stick to the current uplink until its queue
		// reaches q_th, then jump to the lowest-delay port — if the
		// move is reorder-safe.
		if !e.hasPort {
			e.port = lb.LowestDelay(t.rng, ports)
			e.hasPort = true
			t.longsOnPort[e.port]++
		} else if ports[e.port].Down() {
			// The parked uplink died. Its queue drains and then never
			// grows again (a down port drops at admission), so waiting
			// for q_th would strand the flow in retransmission-timeout
			// loops until the link recovers. Move now, bypassing the
			// reorder guard: the packets on the old path are already
			// lost, so there is nothing left to overtake.
			np := t.rerouteTarget(ports)
			if np != e.port {
				t.stats.Reroutes++
				t.longsOnPort[e.port]--
				t.longsOnPort[np]++
				e.port = np
			}
		} else if ports[e.port].QueueLen() >= t.qth {
			np := t.rerouteTarget(ports)
			if np != e.port && t.switchSafe(e, now, ports[e.port].EstimatedDelay(), ports[np].EstimatedDelay()) {
				t.stats.Reroutes++
				t.longsOnPort[e.port]--
				t.longsOnPort[np]++
				e.port = np
			}
		}
		port = e.port
	} else {
		t.stats.ShortPackets++
		// Short flow: packet-level path choice (lowest estimated
		// delay, which on a symmetric fabric is the shortest queue of
		// the paper's design). A move must clear two guards: it has to
		// beat the current port by more than the hysteresis margin
		// (equal-cost hopping reorders for no gain), and it has to be
		// reorder-safe (see Config.DisableSafeSwitch).
		port = t.pickShort(ports)
		if e.hasPort && port != e.port && !ports[e.port].Down() {
			// Hysteresis and the reorder guard only apply while the old
			// port is alive; once it is down, anything in flight there
			// is lost and sticking would just feed the fault drop
			// counter.
			cur := ports[e.port].EstimatedDelay()
			cand := ports[port].EstimatedDelay()
			if cur <= cand+t.hystDelay || !t.switchSafe(e, now, cur, cand) {
				port = e.port
			}
		}
		e.port = port
		e.hasPort = true
	}

	if eta := now + ports[port].EstimatedDelay(); eta > e.lastETA {
		e.lastETA = eta
	}
	if pkt.FIN {
		t.remove(pkt.Flow, e, true)
	}
	return port
}

// switchSafe reports whether a packet sent now on a port with the
// given estimated delay cannot overtake any of the flow's in-flight
// packets — or whether the flow's current port is so much worse that
// one reordering episode is worth escaping it.
func (t *TLB) switchSafe(e *flowEntry, now, curDelay, candDelay units.Time) bool {
	if t.cfg.DisableSafeSwitch {
		return true
	}
	if now+candDelay >= e.lastETA {
		return true
	}
	return t.cfg.EscapeFactor > 0 &&
		float64(curDelay) > t.cfg.EscapeFactor*float64(candDelay)+float64(t.hystDelay)
}

// pickShort applies the configured short-flow policy.
func (t *TLB) pickShort(ports []*netem.Port) int {
	switch t.cfg.ShortFlowPolicy {
	case ShortPowerOfTwo:
		a := t.rng.Intn(len(ports))
		b := t.rng.Intn(len(ports))
		// A live sample beats a dead one regardless of backlog.
		if ports[a].Down() != ports[b].Down() {
			if ports[a].Down() {
				return b
			}
			return a
		}
		if ports[b].EstimatedDelay() < ports[a].EstimatedDelay() {
			return b
		}
		return a
	case ShortRandom:
		return lb.RandomLive(t.rng, ports)
	default:
		return lb.LowestDelay(t.rng, ports)
	}
}

// lookup finds or creates the packet's flow entry and applies the
// byte-count classification. It also returns when the flow's previous
// packet was seen (for burst detection).
func (t *TLB) lookup(pkt *netem.Packet, now units.Time) (*flowEntry, units.Time) {
	e, ok := t.flows[pkt.Flow]
	if !ok {
		// New flows (first seen on SYN, or mid-flow if the table
		// evicted them) start short.
		e = &flowEntry{}
		t.flows[pkt.Flow] = e
		t.nShort++
	}
	prevSeen := e.lastSeen
	e.lastSeen = now
	e.bytes += pkt.Payload
	if !e.long && e.bytes > t.cfg.ShortThreshold {
		e.long = true
		t.nShort--
		t.nLong++
		// The promoted flow keeps the port its last packet used (the
		// paper's rule: forward to the same queue as the last packet).
		if e.hasPort {
			t.longsOnPort[e.port]++
		}
	}
	return e, prevSeen
}

// rerouteTarget picks where a rerouting long flow goes.
func (t *TLB) rerouteTarget(ports []*netem.Port) int {
	if t.cfg.RerouteLeastLong {
		return t.leastLongPort()
	}
	return lb.LowestDelay(t.rng, ports)
}

// leastLongPort returns the live uplink hosting the fewest parked long
// flows, ties broken uniformly at random. Down uplinks are skipped
// (fixed index 0 when everything is down); with all ports up the scan
// consumes the same RNG values as the pre-liveness implementation.
func (t *TLB) leastLongPort() int {
	best := -1
	var bestN, ties int
	for i, n := range t.longsOnPort {
		if t.ports[i].Down() {
			continue
		}
		switch {
		case best < 0 || n < bestN:
			best, bestN, ties = i, n, 1
		case n == bestN:
			ties++
			if t.rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// remove drops a flow-table entry. completed says the flow ended with
// a FIN; idle evictions pass false so that the partial byte counts of
// stalled or dead flows do not bias the short-size estimate X (and
// through it q_th, Eq. 9) downward.
func (t *TLB) remove(id netem.FlowID, e *flowEntry, completed bool) {
	if e.long {
		t.nLong--
		if e.hasPort {
			t.longsOnPort[e.port]--
		}
	} else {
		t.nShort--
		if completed && t.cfg.EstimateShortSize && e.bytes > 0 {
			// EWMA of completed short-flow sizes (g = 1/8).
			t.estShortSize = 0.875*t.estShortSize + 0.125*float64(e.bytes)
		}
	}
	delete(t.flows, id)
}

// tick is the granularity calculator's periodic update: evict idle
// flows (lost FINs, dead connections) and recompute q_th. The sweep
// visits flows in sorted FlowID order: eviction itself is order-free
// today, but a fixed order keeps any future side effect (logging,
// estimator updates) deterministic by construction.
func (t *TLB) tick() {
	now := t.sim.Now()
	for _, id := range t.sortedFlowIDs() {
		if e := t.flows[id]; now-e.lastSeen >= t.cfg.Interval {
			t.stats.Evictions++
			t.remove(id, e, false)
		}
	}
	t.qth = t.computeQTh()
	t.stats.Updates++
}

// sortedFlowIDs returns the flow-table keys ordered by (Src, Dst,
// Port), the canonical iteration order for flow-table sweeps.
func (t *TLB) sortedFlowIDs() []netem.FlowID {
	ids := make([]netem.FlowID, 0, len(t.flows))
	//simlint:allow maporder(keys are collected here and sorted below before any use)
	for id := range t.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return flowIDLess(ids[i], ids[j]) })
	return ids
}

// flowIDLess orders FlowIDs lexicographically by (Src, Dst, Port).
func flowIDLess(a, b netem.FlowID) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	return a.Port < b.Port
}

// computeQTh evaluates Eq. 9 for the current traffic, in packets.
func (t *TLB) computeQTh() int {
	if t.cfg.FixedQTh >= 0 {
		if t.cfg.FixedQTh > t.cfg.MaxQTh {
			return t.cfg.MaxQTh
		}
		return t.cfg.FixedQTh
	}
	x := units.Bytes(t.estShortSize)
	if !t.cfg.EstimateShortSize {
		x = t.cfg.MeanShortSize
	}
	p := model.Params{
		Paths:              len(t.ports),
		ShortFlows:         t.nShort,
		LongFlows:          t.nLong,
		LinkBandwidth:      t.cfg.LinkBandwidth,
		RTT:                t.cfg.RTT,
		MeanShortSize:      x,
		LongWindow:         t.cfg.LongWindow,
		Deadline:           t.cfg.Deadline,
		Interval:           t.cfg.Interval,
		MSS:                t.cfg.MSS,
		UncappedLongDemand: t.cfg.UncappedLongDemand,
	}
	q := p.QTh()
	if math.IsInf(q, 1) || q > float64(t.cfg.MaxQTh) {
		return t.cfg.MaxQTh
	}
	return int(math.Ceil(q))
}

// Stop halts the periodic updates (used when tearing a simulation down
// before the event queue drains).
func (t *TLB) Stop() { t.ticker.Stop() }
