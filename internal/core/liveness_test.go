package core

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
)

// growLong pushes a flow past the 100KB threshold so it parks as a
// long flow, and returns the port it parked on.
func growLong(tl *TLB, ports []*netem.Port, flow netem.FlowID) int {
	port := -1
	for i := 0; i < 80; i++ {
		port = tl.Pick(dataPkt(flow, 1460), ports)
	}
	return port
}

// TestLongFlowEvictedOffDeadPortImmediately: a parked long flow whose
// uplink goes down must reroute on its next packet — a dead port's
// queue never reaches q_th (admission drops do not queue), so the
// normal threshold rule would strand the flow in RTO loops until the
// link recovered.
func TestLongFlowEvictedOffDeadPortImmediately(t *testing.T) {
	s := eventsim.New()
	// Pin q_th above the (empty) queue lengths so the only reroute
	// trigger in play is the dead port itself.
	tl, ports := newTLB(s, 4, func(c *Config) { c.FixedQTh = 5 })
	flow := netem.FlowID{Src: 1, Dst: 2}
	parked := growLong(tl, ports, flow)
	if _, long := tl.ActiveFlows(); long != 1 {
		t.Fatalf("flow not classified long")
	}
	before := tl.Stats().Reroutes
	ports[parked].SetDown(true)
	got := tl.Pick(dataPkt(flow, 1460), ports)
	if got == parked {
		t.Fatalf("long flow still forwarded to dead port %d", parked)
	}
	if ports[got].Down() {
		t.Fatalf("long flow rerouted to another down port %d", got)
	}
	if tl.Stats().Reroutes != before+1 {
		t.Fatalf("Reroutes = %d, want %d", tl.Stats().Reroutes, before+1)
	}
	// The flow now sticks to its new live port.
	if next := tl.Pick(dataPkt(flow, 1460), ports); next != got {
		t.Fatalf("rerouted flow moved again: %d then %d", got, next)
	}
}

// TestShortFlowLeavesDeadPortDespiteGuards: the hysteresis and
// reorder-safety guards must not pin a short flow to a dead uplink —
// everything in flight there is already lost.
func TestShortFlowLeavesDeadPortDespiteGuards(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, func(c *Config) { c.ShortHysteresis = 100 })
	flow := netem.FlowID{Src: 3, Dst: 4}
	cur := tl.Pick(dataPkt(flow, 1460), ports)
	ports[cur].SetDown(true)
	got := tl.Pick(dataPkt(flow, 1460), ports)
	if got == cur {
		t.Fatal("short flow stuck to its dead port behind the hysteresis guard")
	}
	if ports[got].Down() {
		t.Fatalf("short flow moved to another down port %d", got)
	}
}

// TestControlPacketsRoutedAroundDeadPort: header-only reverse traffic
// uses the live-aware lowest-delay scan.
func TestControlPacketsRoutedAroundDeadPort(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 2, nil)
	ports[0].SetDown(true)
	ack := &netem.Packet{Flow: netem.FlowID{Src: 9, Dst: 8}, Kind: netem.Ack, Wire: 40}
	for i := 0; i < 10; i++ {
		if got := tl.Pick(ack, ports); got != 1 {
			t.Fatalf("ACK routed to dead port %d", got)
		}
	}
}

// TestTLBTableDrainsWhenFINLostAtFaultedQueue: TLB's idle sweep (tick)
// already reclaims entries whose FIN died at a faulted queue; pin that
// so the three stateful schemes share the no-leak guarantee.
func TestTLBTableDrainsWhenFINLostAtFaultedQueue(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	for i := 0; i < 20; i++ {
		flow := netem.FlowID{Src: i, Dst: 100 + i}
		tl.Pick(&netem.Packet{Flow: flow, Kind: netem.Syn, Wire: 40}, ports)
		for j := 0; j < 5; j++ {
			tl.Pick(dataPkt(flow, 1460), ports)
		}
		// FIN lost at the faulted queue: never seen here.
	}
	if short, long := tl.ActiveFlows(); short+long != 20 {
		t.Fatalf("table size %d before sweep, want 20", short+long)
	}
	// Two idle intervals are ample for the periodic sweep.
	s.RunUntil(s.Now() + 2*tl.cfg.Interval)
	if short, long := tl.ActiveFlows(); short+long != 0 {
		t.Fatalf("table holds %d entries after idle sweep, want 0", short+long)
	}
	tl.Stop()
}
