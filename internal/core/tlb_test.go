package core

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

func testPorts(s *eventsim.Sim, n int) []*netem.Port {
	ports := make([]*netem.Port, n)
	for i := range ports {
		ports[i] = netem.NewPort(s,
			netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
			netem.QueueConfig{Capacity: 1000},
			func(*netem.Packet) {}, "up")
	}
	return ports
}

func fill(ports []*netem.Port, i, k int) {
	for j := 0; j < k; j++ {
		ports[i].Send(&netem.Packet{Flow: netem.FlowID{Src: 1000 + i}, Kind: netem.Data, Payload: 1460, Wire: 1500})
	}
}

func newTLB(s *eventsim.Sim, n int, mut func(*Config)) (*TLB, []*netem.Port) {
	ports := testPorts(s, n)
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	return New(s, eventsim.NewRNG(1), ports, cfg), ports
}

func dataPkt(flow netem.FlowID, payload units.Bytes) *netem.Packet {
	return &netem.Packet{Flow: flow, Kind: netem.Data, Payload: payload, Wire: payload + 40}
}

func TestClassificationShortToLong(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	flow := netem.FlowID{Src: 1, Dst: 2}

	// First packets: still short.
	for i := 0; i < 10; i++ {
		tl.Pick(dataPkt(flow, 1460), ports)
	}
	if short, long := tl.ActiveFlows(); short != 1 || long != 0 {
		t.Fatalf("after 14.6KB: short=%d long=%d", short, long)
	}
	// Push past the 100KB threshold.
	for i := 0; i < 60; i++ {
		tl.Pick(dataPkt(flow, 1460), ports)
	}
	if short, long := tl.ActiveFlows(); short != 0 || long != 1 {
		t.Fatalf("after 102KB: short=%d long=%d", short, long)
	}
	st := tl.Stats()
	if st.ShortPackets == 0 || st.LongPackets == 0 {
		t.Fatalf("packet class counters: %+v", st)
	}
}

func TestShortFlowsTakeShortestQueue(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	fill(ports, 0, 20)
	fill(ports, 1, 20)
	fill(ports, 3, 20)
	for i := 0; i < 10; i++ {
		if got := tl.Pick(dataPkt(netem.FlowID{Src: i, Dst: 50}, 1000), ports); got != 2 {
			t.Fatalf("short packet to port %d, want empty port 2", got)
		}
	}
}

func TestLongFlowSticksBelowThreshold(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, func(c *Config) { c.FixedQTh = 50 })
	flow := netem.FlowID{Src: 1, Dst: 2}
	// Make it long.
	for i := 0; i < 80; i++ {
		tl.Pick(dataPkt(flow, 1460), ports)
	}
	first := tl.Pick(dataPkt(flow, 1460), ports)
	// Pile up some queue on that port but stay below q_th=50 of
	// *waiting* packets.
	fill(ports, first, 30)
	for i := 0; i < 10; i++ {
		if got := tl.Pick(dataPkt(flow, 1460), ports); got != first {
			t.Fatalf("long flow moved below threshold (q=30 < 50)")
		}
	}
	if tl.Stats().Reroutes != 0 {
		t.Fatal("reroutes counted while sticking")
	}
}

func TestLongFlowSwitchesAtThreshold(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, func(c *Config) { c.FixedQTh = 10; c.DisableSafeSwitch = true })
	flow := netem.FlowID{Src: 1, Dst: 2}
	for i := 0; i < 80; i++ {
		tl.Pick(dataPkt(flow, 1460), ports)
	}
	cur := tl.Pick(dataPkt(flow, 1460), ports)
	fill(ports, cur, 20) // exceeds q_th = 10
	next := tl.Pick(dataPkt(flow, 1460), ports)
	if next == cur {
		t.Fatalf("long flow did not switch at threshold")
	}
	if tl.Stats().Reroutes != 1 {
		t.Fatalf("reroutes = %d, want 1", tl.Stats().Reroutes)
	}
}

func TestFINRemovesFlow(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	flow := netem.FlowID{Src: 1, Dst: 2}
	tl.Pick(dataPkt(flow, 1000), ports)
	if short, _ := tl.ActiveFlows(); short != 1 {
		t.Fatal("flow not tracked")
	}
	fin := dataPkt(flow, 1000)
	fin.FIN = true
	tl.Pick(fin, ports)
	if short, long := tl.ActiveFlows(); short != 0 || long != 0 {
		t.Fatalf("FIN left counts short=%d long=%d", short, long)
	}
}

func TestIdleEviction(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	tl.Pick(dataPkt(netem.FlowID{Src: 1, Dst: 2}, 1000), ports)
	// Two update intervals with no packets: the sweep must evict.
	s.RunUntil(2 * DefaultConfig().Interval)
	if short, long := tl.ActiveFlows(); short != 0 || long != 0 {
		t.Fatalf("idle flow not evicted: short=%d long=%d", short, long)
	}
	if tl.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", tl.Stats().Evictions)
	}
}

func TestActiveFlowKeptAcrossTicks(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	flow := netem.FlowID{Src: 1, Dst: 2}
	stop := 5 * DefaultConfig().Interval
	var send func()
	send = func() {
		tl.Pick(dataPkt(flow, 1000), ports)
		if s.Now() < stop {
			s.After(100*units.Microsecond, send)
		}
	}
	send()
	s.RunUntil(stop)
	if short, _ := tl.ActiveFlows(); short != 1 {
		t.Fatal("continuously active flow was evicted")
	}
}

func TestQThRespondsToLoad(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 15, func(c *Config) {
		c.RTT = 100 * units.Microsecond
		c.MeanShortSize = 70 * units.KB
		// Paper-literal demand model so §4.2's q_th > 0 regime holds
		// in this small static scenario.
		c.UncappedLongDemand = true
	})
	base := tl.QTh() // no flows: free switching
	if base != 0 {
		t.Fatalf("q_th with no traffic = %d, want 0", base)
	}
	// Register three long flows and 100 short flows (the paper's §4.2
	// regime, where Eq. 9 yields ~30 packets), then tick.
	longFlows := []netem.FlowID{{Src: 99, Dst: 100}, {Src: 98, Dst: 100}, {Src: 97, Dst: 100}}
	for _, lf := range longFlows {
		for i := 0; i < 80; i++ {
			tl.Pick(dataPkt(lf, 1460), ports)
		}
	}
	for i := 0; i < 100; i++ {
		tl.Pick(dataPkt(netem.FlowID{Src: i, Dst: 200, Port: i}, 1000), ports)
	}
	// Force recompute via the next tick; flows must be refreshed so the
	// sweep does not evict them: re-touch just before the tick.
	s.At(DefaultConfig().Interval-10*units.Microsecond, func() {
		for _, lf := range longFlows {
			tl.Pick(dataPkt(lf, 1460), ports)
		}
		for i := 0; i < 100; i++ {
			tl.Pick(dataPkt(netem.FlowID{Src: i, Dst: 200, Port: i}, 10), ports)
		}
	})
	s.RunUntil(DefaultConfig().Interval + units.Microsecond)
	qLoaded := tl.QTh()
	if qLoaded <= 0 {
		t.Fatalf("q_th under load = %d, want > 0", qLoaded)
	}
	if tl.Stats().Updates == 0 {
		t.Fatal("no periodic updates ran")
	}
}

func TestFixedQThMode(t *testing.T) {
	s := eventsim.New()
	tl, _ := newTLB(s, 4, func(c *Config) { c.FixedQTh = 42 })
	if tl.QTh() != 42 {
		t.Fatalf("fixed q_th = %d", tl.QTh())
	}
	s.RunUntil(3 * DefaultConfig().Interval)
	if tl.QTh() != 42 {
		t.Fatal("fixed q_th drifted after ticks")
	}
	// Fixed above the clamp.
	s2 := eventsim.New()
	tl2, _ := newTLB(s2, 4, func(c *Config) { c.FixedQTh = 9999; c.MaxQTh = 100 })
	if tl2.QTh() != 100 {
		t.Fatalf("clamped fixed q_th = %d, want 100", tl2.QTh())
	}
}

func TestEstimateShortSizeEWMA(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, func(c *Config) { c.EstimateShortSize = true })
	// Complete several 20KB short flows (FIN-terminated).
	for i := 0; i < 20; i++ {
		flow := netem.FlowID{Src: i, Dst: 50, Port: i}
		for j := 0; j < 13; j++ {
			tl.Pick(dataPkt(flow, 1460), ports)
		}
		fin := dataPkt(flow, 1460)
		fin.FIN = true
		tl.Pick(fin, ports)
	}
	// EWMA should have moved from the 70KB default toward ~20KB.
	if tl.estShortSize > 40000 {
		t.Fatalf("estimate %v did not track completed short flows", tl.estShortSize)
	}
}

func TestHeaderPacketsCountedAsShort(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	syn := &netem.Packet{Flow: netem.FlowID{Src: 1, Dst: 2}, Kind: netem.Syn, Wire: 40}
	tl.Pick(syn, ports)
	if short, _ := tl.ActiveFlows(); short != 1 {
		t.Fatal("SYN did not register the flow")
	}
	if tl.Stats().ShortPackets != 1 {
		t.Fatal("SYN not counted as a short-class decision")
	}
}

func TestStopHaltsTicker(t *testing.T) {
	s := eventsim.New()
	tl, _ := newTLB(s, 4, nil)
	tl.Stop()
	s.Run() // must terminate: no periodic events left
	if s.Pending() != 0 {
		t.Fatalf("%d events still pending after Stop", s.Pending())
	}
}

func TestSafeSwitchBlocksOvertaking(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 2, nil)
	flow := netem.FlowID{Src: 1, Dst: 2}

	// Pile a deep backlog onto port 0 so it is expensive, then force
	// the flow's first packet onto it by loading port 1 even more.
	fill(ports, 1, 200)
	fill(ports, 0, 100)
	first := tl.Pick(dataPkt(flow, 1460), ports)
	if first != 0 {
		t.Fatalf("first packet on port %d, want loaded-but-cheaper 0", first)
	}
	// Let port 1 drain below port 0 without any idle gap for the flow:
	// the flow's in-flight ETA must pin it to port 0.
	s.RunUntil(s.Now() + 150*units.Microsecond) // keep gap < ETA delta
	// Port queues drain equally; force imbalance by filling port 0.
	fill(ports, 0, 100)
	got := tl.Pick(dataPkt(flow, 1460), ports)
	if got != 0 {
		t.Fatal("flow switched to a faster port while its previous packet was still in flight")
	}

	// After a long idle period every in-flight packet has surely
	// landed; now the switch to the cheaper port must happen.
	s.RunUntil(s.Now() + 10*units.Millisecond)
	fill(ports, 0, 100)
	got = tl.Pick(dataPkt(flow, 1460), ports)
	if got != 1 {
		t.Fatalf("flow stuck on port 0 after its ETA passed (got %d)", got)
	}
}

func TestDisableSafeSwitch(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 2, func(c *Config) { c.DisableSafeSwitch = true; c.ShortHysteresis = 0 })
	flow := netem.FlowID{Src: 1, Dst: 2}
	fill(ports, 1, 200)
	fill(ports, 0, 100)
	if got := tl.Pick(dataPkt(flow, 1460), ports); got != 0 {
		t.Fatal("setup failed")
	}
	// With the guard off, the next packet chases the cheaper port
	// immediately even though the previous one is still queued.
	fill(ports, 0, 200)
	if got := tl.Pick(dataPkt(flow, 1460), ports); got != 1 {
		t.Fatal("guard disabled but flow did not chase the cheaper port")
	}
}

func TestLongFlowAvoidsDegradedPath(t *testing.T) {
	// One of four uplinks has 2ms extra propagation delay; a long flow
	// rerouting at threshold must never land on it while symmetric
	// ports have reasonable queues.
	s := eventsim.New()
	ports := testPorts(s, 3)
	slow := netem.NewPort(s,
		netem.LinkConfig{Bandwidth: units.Gbps, Delay: 2 * units.Millisecond},
		netem.QueueConfig{Capacity: 1000},
		func(*netem.Packet) {}, "slow")
	ports = append(ports, slow)
	cfg := DefaultConfig()
	cfg.FixedQTh = 5
	cfg.DisableSafeSwitch = true // isolate the target choice
	tl := New(s, eventsim.NewRNG(1), ports, cfg)

	flow := netem.FlowID{Src: 1, Dst: 2}
	for i := 0; i < 80; i++ {
		tl.Pick(dataPkt(flow, 1460), ports)
	}
	// Keep symmetric backlogs well below the 2ms-equivalent (~167
	// packets): crossing that would make the degraded path genuinely
	// cheaper and the reroute legitimate.
	for i := 0; i < 12; i++ {
		cur := tl.Pick(dataPkt(flow, 1460), ports)
		if cur == 3 {
			t.Fatal("long flow rerouted onto the degraded path")
		}
		fill(ports, cur, 10) // push it over the threshold repeatedly
	}
}

func TestSwitchSafeLogic(t *testing.T) {
	s := eventsim.New()
	tl, _ := newTLB(s, 2, nil) // EscapeFactor defaults to 4, hysteresis 1 pkt
	e := &flowEntry{lastETA: 10 * units.Millisecond}
	now := 5 * units.Millisecond

	// Candidate arrival would land at 5ms+1ms = 6ms < lastETA 10ms:
	// overtaking, not safe.
	if tl.switchSafe(e, now, 2*units.Millisecond, units.Millisecond) {
		t.Fatal("overtaking switch reported safe")
	}
	// Candidate landing after lastETA: safe.
	if !tl.switchSafe(e, now, 20*units.Millisecond, 6*units.Millisecond) {
		t.Fatal("non-overtaking switch reported unsafe")
	}
	// Escape: current 20ms vs candidate 1ms exceeds the 4x factor, so
	// the move is allowed even though it overtakes.
	if !tl.switchSafe(e, now, 20*units.Millisecond, units.Millisecond) {
		t.Fatal("drastic imbalance did not trigger the escape")
	}
	// Just under the factor: blocked.
	if tl.switchSafe(e, now, 3900*units.Microsecond, units.Millisecond) {
		t.Fatal("sub-threshold imbalance escaped")
	}

	// Escape disabled: even drastic imbalance stays blocked.
	s2 := eventsim.New()
	tl2, _ := newTLB(s2, 2, func(c *Config) { c.EscapeFactor = -1 })
	if tl2.switchSafe(e, now, 100*units.Millisecond, units.Microsecond) {
		t.Fatal("escape fired despite being disabled")
	}
	// Guard disabled entirely: everything is safe.
	s3 := eventsim.New()
	tl3, _ := newTLB(s3, 2, func(c *Config) { c.DisableSafeSwitch = true })
	if !tl3.switchSafe(e, now, units.Microsecond, units.Microsecond) {
		t.Fatal("DisableSafeSwitch did not bypass the guard")
	}
}

func TestLongAccountingOnFINAndEviction(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	flow := netem.FlowID{Src: 1, Dst: 2}
	for i := 0; i < 80; i++ {
		tl.Pick(dataPkt(flow, 1460), ports)
	}
	if _, long := tl.ActiveFlows(); long != 1 {
		t.Fatal("not classified long")
	}
	total := func() int {
		n := 0
		for _, c := range tl.longsOnPort {
			n += c
		}
		return n
	}
	if total() != 1 {
		t.Fatalf("longsOnPort total = %d, want 1", total())
	}
	fin := dataPkt(flow, 1460)
	fin.FIN = true
	tl.Pick(fin, ports)
	if total() != 0 {
		t.Fatalf("longsOnPort total after FIN = %d, want 0", total())
	}

	// Same via idle eviction.
	flow2 := netem.FlowID{Src: 3, Dst: 4}
	for i := 0; i < 80; i++ {
		tl.Pick(dataPkt(flow2, 1460), ports)
	}
	if total() != 1 {
		t.Fatal("second long not counted")
	}
	s.RunUntil(s.Now() + 3*DefaultConfig().Interval)
	if total() != 0 {
		t.Fatalf("longsOnPort total after eviction = %d, want 0", total())
	}
}

func TestRerouteLeastLongTarget(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 3, func(c *Config) {
		c.FixedQTh = 0 // always willing to move
		c.RerouteLeastLong = true
		c.DisableSafeSwitch = true
	})
	// Park two longs on port 0 manually via the counter, then drive a
	// third long and observe its reroute target avoids port 0.
	tl.longsOnPort[0] = 2
	flow := netem.FlowID{Src: 1, Dst: 2}
	for i := 0; i < 80; i++ {
		tl.Pick(dataPkt(flow, 1460), ports)
	}
	for i := 0; i < 10; i++ {
		if got := tl.Pick(dataPkt(flow, 1460), ports); got == 0 {
			t.Fatal("least-long reroute landed on the most-long port")
		}
	}
}
