package core

import (
	"sort"
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
)

// TestTickSweepVisitOrderSorted asserts the idle-eviction sweep's visit
// order: sortedFlowIDs — the exact sequence tick() walks — is ordered
// by (Src, Dst, Port) no matter in which order flows entered the table.
func TestTickSweepVisitOrderSorted(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	rng := eventsim.NewRNG(3)

	// Insert flows with scrambled identities.
	n := 50
	perm := rng.Perm(n)
	for _, i := range perm {
		flow := netem.FlowID{Src: i % 7, Dst: 10 + i%5, Port: i}
		tl.Pick(dataPkt(flow, 1460), ports)
	}

	ids := tl.sortedFlowIDs()
	if len(ids) != n {
		t.Fatalf("sweep sees %d flows, want %d", len(ids), n)
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return flowIDLess(ids[i], ids[j]) }) {
		t.Fatalf("tick sweep order not sorted: %v", ids)
	}
	// The order is a total order: strict between neighbours.
	for i := 1; i < len(ids); i++ {
		if !flowIDLess(ids[i-1], ids[i]) {
			t.Fatalf("duplicate or unordered neighbours %v, %v", ids[i-1], ids[i])
		}
	}
}

// TestTickEvictsIdleFlows pins the sweep's behavior after the sorted
// rewrite: every flow idle for at least one interval is evicted in one
// tick, active flows survive.
func TestTickEvictsIdleFlows(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	// Drive the sweep by hand: the periodic ticker would otherwise run
	// its own eviction pass while the clock advances.
	tl.Stop()

	for i := 0; i < 10; i++ {
		tl.Pick(dataPkt(netem.FlowID{Src: i, Dst: 100, Port: i}, 1460), ports)
	}
	// Let one interval pass, then refresh only the even flows.
	s.At(tl.cfg.Interval, func() {})
	s.Run()
	for i := 0; i < 10; i += 2 {
		tl.Pick(dataPkt(netem.FlowID{Src: i, Dst: 100, Port: i}, 1460), ports)
	}
	evBefore := tl.Stats().Evictions
	tl.tick()
	if got := tl.Stats().Evictions - evBefore; got != 5 {
		t.Fatalf("tick evicted %d flows, want the 5 idle ones", got)
	}
	if short, long := tl.ActiveFlows(); short != 5 || long != 0 {
		t.Fatalf("after tick: short=%d long=%d, want 5 short survivors", short, long)
	}
}
