package core

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// TestEvictionDoesNotPolluteShortSizeEstimate: idle-table evictions
// remove flows whose size the switch never saw in full — folding their
// partial byte counts into the X EWMA would bias q_th (Eq. 9)
// downward. Only FIN-completed short flows may update the estimate.
func TestEvictionDoesNotPolluteShortSizeEstimate(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, func(c *Config) { c.EstimateShortSize = true })
	before := tl.estShortSize

	// A short flow sends a little and then stalls: no FIN ever arrives.
	flow := netem.FlowID{Src: 1, Dst: 2}
	for i := 0; i < 3; i++ {
		tl.Pick(dataPkt(flow, 1460), ports)
	}
	s.RunUntil(3 * DefaultConfig().Interval) // idle sweep evicts it
	if short, long := tl.ActiveFlows(); short != 0 || long != 0 {
		t.Fatalf("flow not evicted: short=%d long=%d", short, long)
	}
	if tl.Stats().Evictions == 0 {
		t.Fatal("no eviction recorded")
	}
	if tl.estShortSize != before {
		t.Fatalf("idle eviction moved estShortSize %v -> %v", before, tl.estShortSize)
	}

	// A FIN-completed short flow must still update the EWMA.
	done := netem.FlowID{Src: 3, Dst: 4}
	tl.Pick(dataPkt(done, 1460), ports)
	fin := dataPkt(done, 1460)
	fin.FIN = true
	tl.Pick(fin, ports)
	if tl.estShortSize == before {
		t.Fatal("FIN-completed flow did not update estShortSize")
	}
}

// TestControlPacketsCountedSeparately: ACK/SYN-ACK routing is control
// traffic, not a short-flow data decision, and lands in its own
// counter (the Fig. 15a cost-breakdown fix).
func TestControlPacketsCountedSeparately(t *testing.T) {
	s := eventsim.New()
	tl, ports := newTLB(s, 4, nil)
	flow := netem.FlowID{Src: 1, Dst: 2}
	tl.Pick(&netem.Packet{Flow: flow.Reversed(), Kind: netem.Ack, Wire: 40}, ports)
	tl.Pick(&netem.Packet{Flow: flow.Reversed(), Kind: netem.SynAck, Wire: 40}, ports)
	st := tl.Stats()
	if st.ControlPackets != 2 {
		t.Fatalf("ControlPackets = %d, want 2", st.ControlPackets)
	}
	if st.ShortPackets != 0 || st.LongPackets != 0 {
		t.Fatalf("control traffic leaked into data counters: %+v", st)
	}
	// Control traffic must also stay out of the flow table.
	if short, long := tl.ActiveFlows(); short != 0 || long != 0 {
		t.Fatalf("control packets registered flows: short=%d long=%d", short, long)
	}
	// Data-direction packets still count by class.
	tl.Pick(dataPkt(flow, units.Bytes(1460)), ports)
	if st := tl.Stats(); st.ShortPackets != 1 {
		t.Fatalf("ShortPackets = %d after one data packet, want 1", st.ShortPackets)
	}
}
