package lb

import (
	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// This file implements switch-local adaptations of the related-work
// schemes the paper's §8 discusses beyond its four headline baselines.
// Each is documented with what was simplified relative to the original
// system (most of the originals involve end-host or cross-switch
// machinery this simulator's switch-local Balancer interface does not
// see).

// FlowBenderConfig parameterizes the FlowBender adaptation.
type FlowBenderConfig struct {
	// Window is the congestion observation period (≈ one RTT).
	Window units.Time
	// MarkFraction is the fraction of a flow's packets admitted into
	// ECN-marking queues above which the flow is re-hashed (the
	// original uses the end host's observed ECE fraction; 5% default).
	MarkFraction float64
	// ECNThreshold mirrors the queue marking threshold so the balancer
	// can tell whether the queue it picked would mark.
	ECNThreshold int
}

// FlowBender returns a FlowBender-style balancer: flows are hashed like
// ECMP, but a flow observing persistent congestion on its path for one
// window is re-hashed onto a random other uplink.
//
// Simplification vs the original (Kabbani et al., CoNEXT 2014):
// FlowBender detects congestion at the END HOST from the ECE fraction
// and re-routes by perturbing the TTL that feeds the hardware hash.
// Here the switch itself observes whether the flow's packets are
// entering above-ECN-threshold queues — the same congestion signal,
// seen one hop earlier.
func FlowBender(cfg FlowBenderConfig) Factory {
	if cfg.Window <= 0 {
		cfg.Window = 100 * units.Microsecond
	}
	if cfg.MarkFraction <= 0 {
		cfg.MarkFraction = 0.05
	}
	if cfg.ECNThreshold <= 0 {
		cfg.ECNThreshold = 65
	}
	return func(sim *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &flowBender{
			sim: sim, cfg: cfg, rng: rng,
			seed:  rng.Uint64(),
			flows: make(map[netem.FlowID]*fbFlow),
		}
	}
}

type flowBender struct {
	sim   *eventsim.Sim
	cfg   FlowBenderConfig
	rng   *eventsim.RNG
	seed  uint64
	flows map[netem.FlowID]*fbFlow
}

type fbFlow struct {
	// offset is added to the hash: incrementing it re-routes the flow,
	// exactly how FlowBender's TTL perturbation works.
	offset      uint64
	windowStart units.Time
	pkts        int
	marked      int
}

func (f *flowBender) Name() string { return "flowbender" }

func (f *flowBender) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	now := f.sim.Now()
	st, ok := f.flows[pkt.Flow]
	if !ok {
		st = &fbFlow{windowStart: now}
		f.flows[pkt.Flow] = st
	}
	port := int((pkt.Flow.Hash(f.seed) + st.offset*0x9e3779b97f4a7c15) % uint64(len(ports)))

	// Observe congestion on the chosen path.
	st.pkts++
	if ports[port].QueueLen() >= f.cfg.ECNThreshold {
		st.marked++
	}
	if now-st.windowStart >= f.cfg.Window {
		if st.pkts > 0 && float64(st.marked)/float64(st.pkts) > f.cfg.MarkFraction {
			st.offset++ // re-hash: take a different path next packet
		}
		st.windowStart = now
		st.pkts, st.marked = 0, 0
	}
	if pkt.FIN {
		delete(f.flows, pkt.Flow)
	}
	return port
}

// CongaFlowlet returns a congestion-aware flowlet balancer: flowlet
// boundaries like LetFlow, but the new flowlet goes to the uplink with
// the lowest estimated delivery delay instead of a random one.
//
// Simplification vs CONGA (Alizadeh et al., SIGCOMM 2014): CONGA
// aggregates congestion feedback from the destination leaf over each
// path; a Balancer only sees its local uplinks, so this uses the local
// backlog+propagation estimate. On a two-tier fabric whose contention
// sits at the leaf uplinks the two signals coincide.
func CongaFlowlet(gap units.Time) Factory {
	if gap <= 0 {
		gap = 500 * units.Microsecond // CONGA's flowlet timeout
	}
	return func(sim *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &congaFlowlet{sim: sim, gap: gap, rng: rng, flows: make(map[netem.FlowID]*letflowFlow)}
	}
}

type congaFlowlet struct {
	sim   *eventsim.Sim
	gap   units.Time
	rng   *eventsim.RNG
	flows map[netem.FlowID]*letflowFlow
}

func (c *congaFlowlet) Name() string { return "conga" }

func (c *congaFlowlet) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	now := c.sim.Now()
	f, ok := c.flows[pkt.Flow]
	if !ok {
		f = &letflowFlow{port: LowestDelay(c.rng, ports)}
		c.flows[pkt.Flow] = f
	} else if now-f.lastSeen > c.gap {
		f.port = LowestDelay(c.rng, ports)
	}
	f.lastSeen = now
	if pkt.FIN {
		delete(c.flows, pkt.Flow)
	}
	return f.port
}

// HermesConfig parameterizes the Hermes adaptation.
type HermesConfig struct {
	// RerouteBytes is the minimum bytes a flow must send between
	// reroutes (Hermes's sent-threshold; 64 KB default).
	RerouteBytes units.Bytes
	// Degrade is how much worse (multiplicatively) the current path's
	// estimated delay must be than the best before Hermes considers
	// rerouting beneficial (cautious rerouting; 2.0 default).
	Degrade float64
}

// Hermes returns a Hermes-style cautious balancer: a flow is rerouted
// only when (a) it has sent enough bytes since its last move, and
// (b) its current path is markedly worse than the best alternative —
// "reroute only when it will be beneficial".
//
// Simplification vs Hermes (Zhang et al., SIGCOMM 2017): Hermes senses
// path state end-to-end (RTT, ECN fraction, retransmissions) and
// classifies paths as good/gray/bad; this adaptation uses the local
// delay estimate as the path signal and keeps the cautious triggers.
func Hermes(cfg HermesConfig) Factory {
	if cfg.RerouteBytes <= 0 {
		cfg.RerouteBytes = 64 * units.KiB
	}
	if cfg.Degrade <= 1 {
		cfg.Degrade = 2.0
	}
	return func(sim *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &hermes{cfg: cfg, rng: rng, flows: make(map[netem.FlowID]*hermesFlow)}
	}
}

type hermes struct {
	cfg   HermesConfig
	rng   *eventsim.RNG
	flows map[netem.FlowID]*hermesFlow
}

type hermesFlow struct {
	port      int
	hasPort   bool
	sentSince units.Bytes
}

func (h *hermes) Name() string { return "hermes" }

func (h *hermes) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	f, ok := h.flows[pkt.Flow]
	if !ok {
		f = &hermesFlow{}
		h.flows[pkt.Flow] = f
	}
	if !f.hasPort {
		f.port = LowestDelay(h.rng, ports)
		f.hasPort = true
	} else if f.sentSince >= h.cfg.RerouteBytes {
		best := LowestDelay(h.rng, ports)
		cur := ports[f.port].EstimatedDelay()
		cand := ports[best].EstimatedDelay()
		// Cautious: move only on a clear win.
		if best != f.port && float64(cur) > h.cfg.Degrade*float64(cand) {
			f.port = best
			f.sentSince = 0
		}
	}
	f.sentSince += pkt.Wire
	if pkt.FIN {
		delete(h.flows, pkt.Flow)
	}
	return f.port
}

// WCMP returns weighted-cost multipath: static per-flow hashing like
// ECMP, but the hash space is split proportionally to each uplink's
// configured bandwidth, so a half-rate link receives half the flows.
// This is the standard answer to *known, static* bandwidth asymmetry.
func WCMP() Factory {
	return func(_ *eventsim.Sim, rng *eventsim.RNG, ports []*netem.Port) Balancer {
		w := &wcmp{seed: rng.Uint64()}
		var total int64
		for _, p := range ports {
			total += int64(p.Link().Bandwidth)
		}
		acc := int64(0)
		w.cum = make([]int64, len(ports))
		for i, p := range ports {
			acc += int64(p.Link().Bandwidth)
			w.cum[i] = acc
		}
		w.total = total
		return w
	}
}

type wcmp struct {
	seed  uint64
	cum   []int64
	total int64
}

func (w *wcmp) Name() string { return "wcmp" }

func (w *wcmp) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	if w.total <= 0 {
		return 0
	}
	x := int64(pkt.Flow.Hash(w.seed) % uint64(w.total))
	for i, c := range w.cum {
		if x < c {
			return i
		}
	}
	return len(ports) - 1
}
