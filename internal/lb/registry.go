// Scheme registry: the single place balancer names live. Every scheme
// — the lb baselines here and TLB in internal/core — registers a name,
// a parameter schema and a builder; cmd/tlbsim enumerates the registry
// for -list-schemes, and the spec layer (internal/spec) builds
// factories through it so scheme names and parameters are data, not
// code.
package lb

import (
	"fmt"
	"sort"
	"strings"

	"tlb/internal/units"
)

// ParamKind types a scheme parameter for documentation and decoding.
type ParamKind uint8

// Parameter kinds. Quantities (duration, bytes, bandwidth) decode from
// the exact unit strings of units.Parse* ("150us", "64KiB", "20Mbps").
const (
	KindDuration ParamKind = iota
	KindBytes
	KindBandwidth
	KindInt
	KindFloat
	KindBool
	KindString
)

func (k ParamKind) String() string {
	switch k {
	case KindDuration:
		return "duration"
	case KindBytes:
		return "bytes"
	case KindBandwidth:
		return "bandwidth"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("ParamKind(%d)", uint8(k))
	}
}

// Param documents one scheme parameter.
type Param struct {
	Name string
	Kind ParamKind
	// Doc is a one-line description including the default.
	Doc string
}

// Env carries the topology-derived context a scheme builder may need
// for its defaults (TLB derives its link rate, RTT and q_th cap from
// the fabric; FlowBender mirrors the queue's ECN threshold).
type Env struct {
	// FabricBandwidth is the default leaf-spine link rate.
	FabricBandwidth units.Bandwidth
	// BaseRTT is the fabric round-trip propagation delay.
	BaseRTT units.Time
	// QueueCapacity is the per-queue buffer size in packets.
	QueueCapacity int
	// ECNThreshold is the queue marking threshold in packets.
	ECNThreshold int
}

// Builder constructs a scheme's Factory from decoded arguments. Type
// and range problems are accumulated on a (never returned directly),
// so a builder reads every parameter and Build reports all problems at
// once.
type Builder func(a *Args, env Env) Factory

// Registration describes one scheme.
type Registration struct {
	// Name is the canonical scheme name ("ecmp", "tlb", ...).
	Name string
	// Doc is a one-line description for -list-schemes.
	Doc string
	// Params is the scheme's parameter schema; Build rejects argument
	// names outside it.
	Params []Param
	// Build constructs the factory.
	Build Builder
}

//simlint:allow sharedstate(written only by package-init Register calls; read-only once any sim runs)
var registry = map[string]Registration{}

// Register adds a scheme to the registry. It panics on a duplicate or
// empty name — registration happens in package init, where a panic is
// a build-time error.
func Register(r Registration) {
	if r.Name == "" || r.Build == nil {
		panic("lb: Register needs a name and a builder")
	}
	if _, dup := registry[r.Name]; dup {
		panic("lb: duplicate scheme registration: " + r.Name)
	}
	registry[r.Name] = r
}

// Names returns every registered scheme name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	//simlint:allow maporder(keys are collected here and sorted below before any use)
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns a scheme's registration.
func Lookup(name string) (Registration, bool) {
	r, ok := registry[name]
	return r, ok
}

// Build constructs the named scheme's factory from raw arguments
// (typically unmarshalled spec params). path prefixes error locations,
// e.g. "scheme.params". All problems — unknown scheme, unknown
// parameter names, type and range errors — are reported together.
func Build(name string, args map[string]any, path string, env Env) (Factory, error) {
	reg, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown scheme %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	a := NewArgs(args, path)
	known := make(map[string]bool, len(reg.Params))
	for _, p := range reg.Params {
		known[p.Name] = true
	}
	for _, k := range a.sortedKeys() {
		if !known[k] {
			valid := make([]string, 0, len(reg.Params))
			for _, p := range reg.Params {
				valid = append(valid, p.Name)
			}
			if len(valid) == 0 {
				a.errf("%s.%s: scheme %q takes no parameters", path, k, name)
			} else {
				a.errf("%s.%s: unknown parameter for scheme %q (valid: %s)",
					path, k, name, strings.Join(valid, ", "))
			}
		}
	}
	f := reg.Build(a, env)
	if err := a.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// Args decodes raw scheme arguments, accumulating every problem
// instead of failing on the first. Quantity values are the unit
// strings of internal/units; numbers may arrive as int, int64 or
// float64 (encoding/json produces float64).
type Args struct {
	vals map[string]any
	path string
	errs []string
}

// NewArgs wraps raw arguments; path prefixes error locations.
func NewArgs(vals map[string]any, path string) *Args {
	return &Args{vals: vals, path: path}
}

func (a *Args) errf(format string, args ...any) {
	a.errs = append(a.errs, fmt.Sprintf(format, args...))
}

// Errorf records a builder-side problem with the named parameter (e.g.
// an enum value outside its domain), located like the built-in type
// errors.
func (a *Args) Errorf(name, format string, args ...any) {
	a.errf("%s.%s: %s", a.path, name, fmt.Sprintf(format, args...))
}

// Err returns all accumulated problems, one per line, or nil.
func (a *Args) Err() error {
	if len(a.errs) == 0 {
		return nil
	}
	return fmt.Errorf("%s", strings.Join(a.errs, "\n"))
}

func (a *Args) sortedKeys() []string {
	keys := make([]string, 0, len(a.vals))
	//simlint:allow maporder(keys are collected here and sorted below before any use)
	for k := range a.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Duration reads a duration parameter ("150us"), or def when absent.
func (a *Args) Duration(name string, def units.Time) units.Time {
	v, ok := a.vals[name]
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		a.errf("%s.%s: want a duration string like %q, got %v", a.path, name, "150us", v)
		return def
	}
	t, err := units.ParseTime(s)
	if err != nil {
		a.errf("%s.%s: %v", a.path, name, err)
		return def
	}
	return t
}

// Bytes reads a size parameter ("100KB"), or def when absent.
func (a *Args) Bytes(name string, def units.Bytes) units.Bytes {
	v, ok := a.vals[name]
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		a.errf("%s.%s: want a size string like %q, got %v", a.path, name, "64KiB", v)
		return def
	}
	b, err := units.ParseBytes(s)
	if err != nil {
		a.errf("%s.%s: %v", a.path, name, err)
		return def
	}
	return b
}

// Bandwidth reads a rate parameter ("1Gbps"), or def when absent.
func (a *Args) Bandwidth(name string, def units.Bandwidth) units.Bandwidth {
	v, ok := a.vals[name]
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		a.errf("%s.%s: want a bandwidth string like %q, got %v", a.path, name, "1Gbps", v)
		return def
	}
	b, err := units.ParseBandwidth(s)
	if err != nil {
		a.errf("%s.%s: %v", a.path, name, err)
		return def
	}
	return b
}

// Int reads an integer parameter, or def when absent.
func (a *Args) Int(name string, def int) int {
	v, ok := a.vals[name]
	if !ok {
		return def
	}
	switch n := v.(type) {
	case int:
		return n
	case int64:
		return int(n)
	case float64:
		// encoding/json decodes every number as float64; accept it only
		// when it is exactly an integer.
		//simlint:allow floateq(integrality check on a decoded JSON number; exact comparison is the intent)
		if n == float64(int(n)) {
			return int(n)
		}
	}
	a.errf("%s.%s: want an integer, got %v", a.path, name, v)
	return def
}

// Float reads a float parameter, or def when absent.
func (a *Args) Float(name string, def float64) float64 {
	v, ok := a.vals[name]
	if !ok {
		return def
	}
	switch n := v.(type) {
	case float64:
		return n
	case int:
		return float64(n)
	case int64:
		return float64(n)
	}
	a.errf("%s.%s: want a number, got %v", a.path, name, v)
	return def
}

// Bool reads a boolean parameter, or def when absent.
func (a *Args) Bool(name string, def bool) bool {
	v, ok := a.vals[name]
	if !ok {
		return def
	}
	b, ok := v.(bool)
	if !ok {
		a.errf("%s.%s: want true or false, got %v", a.path, name, v)
		return def
	}
	return b
}

// String reads a string parameter, or def when absent.
func (a *Args) String(name string, def string) string {
	v, ok := a.vals[name]
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		a.errf("%s.%s: want a string, got %v", a.path, name, v)
		return def
	}
	return s
}
