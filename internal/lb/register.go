package lb

// Registrations for every baseline scheme this package implements. TLB
// registers itself the same way from internal/core, so the full scheme
// list is the union the registry reports via Names().

func init() {
	Register(Registration{
		Name: "ecmp",
		Doc:  "static flow hashing (flow granularity)",
		Build: func(_ *Args, _ Env) Factory {
			return ECMP()
		},
	})
	Register(Registration{
		Name: "rps",
		Doc:  "random packet spraying (packet granularity)",
		Build: func(_ *Args, _ Env) Factory {
			return RPS()
		},
	})
	Register(Registration{
		Name: "presto",
		Doc:  "fixed-size flowcells, round-robin uplinks",
		Params: []Param{
			{Name: "cell", Kind: KindBytes, Doc: "flowcell size (default 64KiB)"},
		},
		Build: func(a *Args, _ Env) Factory {
			return Presto(a.Bytes("cell", 0))
		},
	})
	Register(Registration{
		Name: "letflow",
		Doc:  "flowlet switching on an inactivity gap",
		Params: []Param{
			{Name: "gap", Kind: KindDuration, Doc: "flowlet inactivity timeout (default 150us)"},
		},
		Build: func(a *Args, _ Env) Factory {
			return LetFlow(a.Duration("gap", 0))
		},
	})
	Register(Registration{
		Name: "drill",
		Doc:  "per-packet power-of-d-choices with memory",
		Params: []Param{
			{Name: "d", Kind: KindInt, Doc: "random queues sampled per packet (default 2)"},
			{Name: "m", Kind: KindInt, Doc: "remembered least-loaded queues (default 1)"},
		},
		Build: func(a *Args, _ Env) Factory {
			return DRILL(a.Int("d", 2), a.Int("m", 1))
		},
	})
	Register(Registration{
		Name: "flowbender",
		Doc:  "congestion-triggered flow re-hashing",
		Params: []Param{
			{Name: "window", Kind: KindDuration, Doc: "congestion observation period (default 100us)"},
			{Name: "markFraction", Kind: KindFloat, Doc: "ECN-marked fraction that triggers a re-hash (default 0.05)"},
			{Name: "ecnThreshold", Kind: KindInt, Doc: "queue marking threshold in packets (default: the fabric's)"},
		},
		Build: func(a *Args, env Env) Factory {
			return FlowBender(FlowBenderConfig{
				Window:       a.Duration("window", 0),
				MarkFraction: a.Float("markFraction", 0),
				ECNThreshold: a.Int("ecnThreshold", env.ECNThreshold),
			})
		},
	})
	Register(Registration{
		Name: "conga",
		Doc:  "congestion-aware flowlet switching (local signals)",
		Params: []Param{
			{Name: "gap", Kind: KindDuration, Doc: "flowlet inactivity timeout (default 500us)"},
		},
		Build: func(a *Args, _ Env) Factory {
			return CongaFlowlet(a.Duration("gap", 0))
		},
	})
	Register(Registration{
		Name: "hermes",
		Doc:  "cautious rerouting on strong path degradation",
		Params: []Param{
			{Name: "rerouteBytes", Kind: KindBytes, Doc: "minimum bytes between reroutes (default 64KiB)"},
			{Name: "degrade", Kind: KindFloat, Doc: "delay ratio that justifies a reroute (default 2.0)"},
		},
		Build: func(a *Args, _ Env) Factory {
			return Hermes(HermesConfig{
				RerouteBytes: a.Bytes("rerouteBytes", 0),
				Degrade:      a.Float("degrade", 0),
			})
		},
	})
	Register(Registration{
		Name: "wcmp",
		Doc:  "bandwidth-weighted static flow hashing",
		Build: func(_ *Args, _ Env) Factory {
			return WCMP()
		},
	})
	Register(Registration{
		Name: "packet-sq",
		Doc:  "every packet to the instantaneous shortest queue",
		Build: func(_ *Args, _ Env) Factory {
			return PacketShortestQueue()
		},
	})
}
