package lb

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
)

func TestShortestQueueSkipsDownPorts(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	// Port 2 is the shortest queue but dead; port 1 is the live minimum.
	fill(ports, 0, 10)
	fill(ports, 1, 3)
	fill(ports, 3, 7)
	ports[2].SetDown(true)
	rng := eventsim.NewRNG(1)
	for i := 0; i < 10; i++ {
		if got := ShortestQueue(rng, ports); got != 1 {
			t.Fatalf("ShortestQueue = %d, want live minimum 1", got)
		}
	}
}

func TestLowestDelaySkipsDownPorts(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	fill(ports, 1, 5)
	fill(ports, 2, 5)
	fill(ports, 3, 5)
	ports[0].SetDown(true) // the empty (cheapest) port is dead
	rng := eventsim.NewRNG(1)
	for i := 0; i < 10; i++ {
		if got := LowestDelay(rng, ports); got == 0 {
			t.Fatal("LowestDelay picked the down port")
		}
	}
}

func TestAllPortsDownFallsBackDeterministically(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	for _, p := range ports {
		p.SetDown(true)
	}
	rng := eventsim.NewRNG(1)
	if got := ShortestQueue(rng, ports); got != 0 {
		t.Fatalf("all-down ShortestQueue = %d, want fixed 0", got)
	}
	if got := LowestDelay(rng, ports); got != 0 {
		t.Fatalf("all-down LowestDelay = %d, want fixed 0", got)
	}
	if got := RandomLive(rng, ports); got < 0 || got >= 4 {
		t.Fatalf("all-down RandomLive = %d, want a valid index", got)
	}
}

// TestRandomLiveHealthyMatchesPlainIntn pins the RNG-neutrality
// contract: with every port up, RandomLive consumes exactly one value
// from the stream and returns it, so pre-fault runs replay
// byte-for-byte.
func TestRandomLiveHealthyMatchesPlainIntn(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 8)
	a, b := eventsim.NewRNG(7), eventsim.NewRNG(7)
	for i := 0; i < 200; i++ {
		if got, want := RandomLive(a, ports), b.Intn(8); got != want {
			t.Fatalf("healthy RandomLive diverged from the historical stream at draw %d", i)
		}
	}
}

func TestRandomLiveAvoidsDownPorts(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	ports[0].SetDown(true)
	ports[2].SetDown(true)
	rng := eventsim.NewRNG(3)
	for i := 0; i < 200; i++ {
		if got := RandomLive(rng, ports); got == 0 || got == 2 {
			t.Fatalf("RandomLive picked down port %d", got)
		}
	}
}

func TestECMPRehashesAroundDownPort(t *testing.T) {
	b, ports, _ := newBal(t, ECMP(), 8)
	flow := netem.FlowID{Src: 1, Dst: 2, Port: 3}
	orig := b.Pick(dataPkt(flow, 1460), ports)
	ports[orig].SetDown(true)
	moved := b.Pick(dataPkt(flow, 1460), ports)
	if moved == orig {
		t.Fatal("ECMP kept hashing the flow onto its dead port")
	}
	// Stable on the fallback while the fault lasts, and back to the
	// original mapping after recovery.
	if again := b.Pick(dataPkt(flow, 1460), ports); again != moved {
		t.Fatalf("fallback not stable: %d then %d", moved, again)
	}
	ports[orig].SetDown(false)
	if got := b.Pick(dataPkt(flow, 1460), ports); got != orig {
		t.Fatalf("after recovery flow maps to %d, want original %d", got, orig)
	}
}

func TestRPSAvoidsDownPorts(t *testing.T) {
	b, ports, _ := newBal(t, RPS(), 4)
	ports[1].SetDown(true)
	flow := netem.FlowID{Src: 1, Dst: 2}
	for i := 0; i < 200; i++ {
		if got := b.Pick(dataPkt(flow, 1460), ports); got == 1 {
			t.Fatal("RPS sprayed onto the down port")
		}
	}
}

func TestPrestoLeavesDeadPortMidCell(t *testing.T) {
	b, ports, _ := newBal(t, Presto(0), 4)
	flow := netem.FlowID{Src: 1, Dst: 2}
	cur := b.Pick(dataPkt(flow, 1460), ports)
	ports[cur].SetDown(true)
	got := b.Pick(dataPkt(flow, 1460), ports)
	if got == cur {
		t.Fatal("presto kept the cell on its dead port")
	}
	// The move is the round-robin successor, so cell order is kept.
	if want := (cur + 1) % 4; got != want {
		t.Fatalf("presto moved to %d, want next live %d", got, want)
	}
}

func TestLetFlowLeavesDeadPortWithinFlowlet(t *testing.T) {
	b, ports, _ := newBal(t, LetFlow(0), 4)
	flow := netem.FlowID{Src: 1, Dst: 2}
	cur := b.Pick(dataPkt(flow, 1460), ports)
	ports[cur].SetDown(true)
	// Same instant — well inside the flowlet gap — yet the flow must
	// move: sticking would blackhole the flowlet.
	for i := 0; i < 20; i++ {
		if got := b.Pick(dataPkt(flow, 1460), ports); got == cur {
			t.Fatal("letflow stuck to the dead port within the flowlet gap")
		}
	}
}

func TestDRILLAvoidsDownPorts(t *testing.T) {
	b, ports, _ := newBal(t, DRILL(2, 1), 8)
	for i := 0; i < 8; i++ {
		if i != 6 {
			ports[i].SetDown(true)
		}
	}
	flow := netem.FlowID{Src: 1, Dst: 2}
	for i := 0; i < 100; i++ {
		if got := b.Pick(dataPkt(flow, 1460), ports); got != 6 {
			t.Fatalf("DRILL picked down port %d, only 6 is live", got)
		}
	}
}
