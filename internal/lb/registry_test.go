package lb

import (
	"strings"
	"testing"

	"tlb/internal/units"
)

func testEnv() Env {
	return Env{
		FabricBandwidth: units.Gbps,
		BaseRTT:         100 * units.Microsecond,
		QueueCapacity:   256,
		ECNThreshold:    65,
	}
}

func TestNamesCoverBaselines(t *testing.T) {
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, want := range []string{"ecmp", "rps", "presto", "letflow", "drill",
		"flowbender", "conga", "hermes", "wcmp", "packet-sq"} {
		if !got[want] {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
}

func TestBuildProducesWorkingFactories(t *testing.T) {
	for _, name := range Names() {
		f, err := Build(name, nil, "scheme.params", testEnv())
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if f == nil {
			t.Fatalf("Build(%s): nil factory", name)
		}
	}
}

func TestBuildUnknownSchemeListsValid(t *testing.T) {
	_, err := Build("nope", nil, "scheme.params", testEnv())
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	for _, want := range []string{"ecmp", "letflow"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

func TestBuildAggregatesErrors(t *testing.T) {
	_, err := Build("letflow", map[string]any{
		"gap":  "10lightyears",
		"nope": 1,
	}, "scheme.params", testEnv())
	if err == nil {
		t.Fatal("bad args accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "scheme.params.gap") {
		t.Errorf("missing gap location in %q", msg)
	}
	if !strings.Contains(msg, "scheme.params.nope") || !strings.Contains(msg, "gap") {
		t.Errorf("unknown-param error should name the valid params: %q", msg)
	}
}

func TestArgsTypedAccessors(t *testing.T) {
	a := NewArgs(map[string]any{
		"d":    float64(3), // the type encoding/json produces
		"gap":  "150us",
		"cell": "64KiB",
		"bw":   "20Mbps",
		"frac": 0.25,
		"on":   true,
		"s":    "hello",
	}, "p")
	if got := a.Int("d", 0); got != 3 {
		t.Errorf("Int = %d", got)
	}
	if got := a.Duration("gap", 0); got != 150*units.Microsecond {
		t.Errorf("Duration = %v", got)
	}
	if got := a.Bytes("cell", 0); got != 64*units.KiB {
		t.Errorf("Bytes = %v", got)
	}
	if got := a.Bandwidth("bw", 0); got != 20*units.Mbps {
		t.Errorf("Bandwidth = %v", got)
	}
	if got := a.Float("frac", 0); got != 0.25 {
		t.Errorf("Float = %v", got)
	}
	if !a.Bool("on", false) || a.String("s", "") != "hello" {
		t.Error("Bool/String accessors")
	}
	// Absent keys fall back to defaults without recording errors.
	if got := a.Int("missing", 7); got != 7 {
		t.Errorf("default = %d", got)
	}
	if err := a.Err(); err != nil {
		t.Fatalf("unexpected errors: %v", err)
	}
	// Non-integral float is a type error.
	bad := NewArgs(map[string]any{"d": 2.5}, "p")
	bad.Int("d", 0)
	if bad.Err() == nil {
		t.Error("non-integral float accepted as int")
	}
}
