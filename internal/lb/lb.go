// Package lb defines the load-balancer interface that switches consult
// when forwarding a packet onto one of several equal-cost uplinks, and
// implements the baseline schemes the paper compares against: ECMP,
// RPS, Presto, LetFlow and DRILL, plus the plain flow/flowlet/packet
// granularity switchers used in the paper's §2 motivation study.
//
// The TLB scheme itself — the paper's contribution — lives in
// internal/core and implements the same Balancer interface.
package lb

import (
	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// Balancer picks an uplink for each packet at one switch. A Balancer
// instance is per-switch: it owns whatever per-flow state its scheme
// needs and sees every packet that switch forwards upward.
type Balancer interface {
	// Name identifies the scheme, e.g. "ecmp" or "tlb".
	Name() string
	// Pick returns the index of the uplink the packet should take.
	// ports is the fixed slice of candidate uplinks passed at
	// construction (also given here for convenience and so stateless
	// schemes need not retain it).
	Pick(pkt *netem.Packet, ports []*netem.Port) int
}

// Factory constructs a per-switch Balancer. sim provides the clock and
// timers (schemes with periodic work, like TLB, hook in here), rng is a
// private deterministic stream, and ports are the switch's uplinks.
type Factory func(sim *eventsim.Sim, rng *eventsim.RNG, ports []*netem.Port) Balancer

// ShortestQueue returns the index of the port with the fewest queued
// packets, breaking ties uniformly at random so that simultaneous
// arrivals do not herd onto one queue. It is the primitive behind
// packet-level spraying in DRILL and TLB.
func ShortestQueue(rng *eventsim.RNG, ports []*netem.Port) int {
	best := 0
	bestLen := ports[0].QueueLen()
	ties := 1
	for i := 1; i < len(ports); i++ {
		l := ports[i].QueueLen()
		switch {
		case l < bestLen:
			best, bestLen, ties = i, l, 1
		case l == bestLen:
			// Reservoir-sample among ties for a uniform choice.
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// LowestDelay returns the index of the port whose estimated delivery
// delay (backlog serialization + propagation) is smallest, breaking
// ties uniformly at random. On a symmetric fabric it coincides with
// ShortestQueue; on an asymmetric one it avoids slow or long paths
// that a packet-count comparison cannot see.
func LowestDelay(rng *eventsim.RNG, ports []*netem.Port) int {
	best := 0
	bestCost := ports[0].EstimatedDelay()
	ties := 1
	for i := 1; i < len(ports); i++ {
		c := ports[i].EstimatedDelay()
		switch {
		case c < bestCost:
			best, bestCost, ties = i, c, 1
		case c == bestCost:
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// ECMP returns a factory for Equal-Cost Multi-Path: a static hash of
// the flow identity selects the uplink, so a flow never moves. This is
// also the paper's "flow-level granularity" scheme.
func ECMP() Factory {
	return func(_ *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &ecmp{seed: rng.Uint64()}
	}
}

type ecmp struct {
	seed uint64
}

func (e *ecmp) Name() string { return "ecmp" }

func (e *ecmp) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	return int(pkt.Flow.Hash(e.seed) % uint64(len(ports)))
}

// RPS returns a factory for Random Packet Spraying: every packet takes
// a uniformly random uplink. This is the paper's "packet-level
// granularity" scheme.
func RPS() Factory {
	return func(_ *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &rps{rng: rng}
	}
}

type rps struct {
	rng *eventsim.RNG
}

func (r *rps) Name() string { return "rps" }

func (r *rps) Pick(_ *netem.Packet, ports []*netem.Port) int {
	return r.rng.Intn(len(ports))
}

// PrestoCell is the fixed flowcell size Presto uses (64 KB).
const PrestoCell = 64 * units.KiB

// Presto returns a factory for Presto-style load balancing: each flow
// is chopped into fixed-size flowcells and consecutive cells take
// consecutive uplinks (round-robin from a random start), oblivious to
// congestion.
func Presto(cell units.Bytes) Factory {
	if cell <= 0 {
		cell = PrestoCell
	}
	return func(_ *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &presto{cell: cell, rng: rng, flows: make(map[netem.FlowID]*prestoFlow)}
	}
}

type presto struct {
	cell  units.Bytes
	rng   *eventsim.RNG
	flows map[netem.FlowID]*prestoFlow
}

type prestoFlow struct {
	port   int
	inCell units.Bytes
}

func (p *presto) Name() string { return "presto" }

func (p *presto) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	// Header-only packets (pure ACKs, handshakes) are routed
	// statelessly: they never carry FIN, so flow-table entries created
	// for reverse-direction ACK streams would survive the whole run.
	if pkt.IsShortHeader() {
		return p.rng.Intn(len(ports))
	}
	f, ok := p.flows[pkt.Flow]
	if !ok {
		f = &prestoFlow{port: p.rng.Intn(len(ports))}
		p.flows[pkt.Flow] = f
	}
	if f.inCell >= p.cell {
		f.inCell = 0
		f.port = (f.port + 1) % len(ports)
	}
	f.inCell += pkt.Wire
	if pkt.FIN {
		delete(p.flows, pkt.Flow)
	}
	return f.port
}

// LetFlowGap is the default flowlet inactivity timeout (150 µs, the
// value the paper uses in its motivation study).
const LetFlowGap = 150 * units.Microsecond

// LetFlow returns a factory for LetFlow: when the gap since a flow's
// previous packet exceeds the flowlet timeout, the flow(let) is
// re-routed to a uniformly random uplink; otherwise it sticks. This is
// also the paper's "flowlet-level granularity" scheme.
func LetFlow(gap units.Time) Factory {
	if gap <= 0 {
		gap = LetFlowGap
	}
	return func(sim *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &letflow{sim: sim, gap: gap, rng: rng, flows: make(map[netem.FlowID]*letflowFlow)}
	}
}

type letflow struct {
	sim   *eventsim.Sim
	gap   units.Time
	rng   *eventsim.RNG
	flows map[netem.FlowID]*letflowFlow
}

type letflowFlow struct {
	port     int
	lastSeen units.Time
}

func (l *letflow) Name() string { return "letflow" }

func (l *letflow) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	// Header-only packets are routed statelessly (see presto.Pick):
	// pure ACKs never carry FIN, so tracking them would leak one table
	// entry per reverse-direction stream for the whole run.
	if pkt.IsShortHeader() {
		return l.rng.Intn(len(ports))
	}
	now := l.sim.Now()
	f, ok := l.flows[pkt.Flow]
	if !ok {
		f = &letflowFlow{port: l.rng.Intn(len(ports))}
		l.flows[pkt.Flow] = f
	} else if now-f.lastSeen > l.gap {
		f.port = l.rng.Intn(len(ports))
	}
	f.lastSeen = now
	if pkt.FIN {
		delete(l.flows, pkt.Flow)
		return f.port
	}
	return f.port
}

// DRILL returns a factory for DRILL(d, m): per packet, sample d random
// queues plus the m remembered least-loaded queues from the previous
// decision, and pick the shortest. DRILL(2, 1) is the configuration the
// DRILL paper recommends.
func DRILL(d, m int) Factory {
	if d <= 0 {
		d = 2
	}
	if m < 0 {
		m = 1
	}
	return func(_ *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &drill{d: d, m: m, rng: rng}
	}
}

type drill struct {
	d, m   int
	rng    *eventsim.RNG
	memory []int
}

func (d *drill) Name() string { return "drill" }

func (d *drill) Pick(_ *netem.Packet, ports []*netem.Port) int {
	best := -1
	bestLen := 0
	consider := func(i int) {
		l := ports[i].QueueLen()
		if best < 0 || l < bestLen {
			best, bestLen = i, l
		}
	}
	for i := 0; i < d.d; i++ {
		consider(d.rng.Intn(len(ports)))
	}
	for _, i := range d.memory {
		if i < len(ports) {
			consider(i)
		}
	}
	if d.m > 0 {
		if len(d.memory) < d.m {
			d.memory = append(d.memory, best)
		} else {
			copy(d.memory, d.memory[1:])
			d.memory[len(d.memory)-1] = best
		}
	}
	return best
}

// PacketShortestQueue returns a factory that sends every packet to the
// instantaneous shortest queue — the idealised packet-level policy TLB
// applies to short flows, exposed standalone for ablations.
func PacketShortestQueue() Factory {
	return func(_ *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &psq{rng: rng}
	}
}

type psq struct {
	rng *eventsim.RNG
}

func (p *psq) Name() string { return "packet-sq" }

func (p *psq) Pick(_ *netem.Packet, ports []*netem.Port) int {
	return ShortestQueue(p.rng, ports)
}
