// Package lb defines the load-balancer interface that switches consult
// when forwarding a packet onto one of several equal-cost uplinks, and
// implements the baseline schemes the paper compares against: ECMP,
// RPS, Presto, LetFlow and DRILL, plus the plain flow/flowlet/packet
// granularity switchers used in the paper's §2 motivation study.
//
// The TLB scheme itself — the paper's contribution — lives in
// internal/core and implements the same Balancer interface.
package lb

import (
	"sort"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// Balancer picks an uplink for each packet at one switch. A Balancer
// instance is per-switch: it owns whatever per-flow state its scheme
// needs and sees every packet that switch forwards upward.
type Balancer interface {
	// Name identifies the scheme, e.g. "ecmp" or "tlb".
	Name() string
	// Pick returns the index of the uplink the packet should take.
	// ports is the fixed slice of candidate uplinks passed at
	// construction (also given here for convenience and so stateless
	// schemes need not retain it).
	Pick(pkt *netem.Packet, ports []*netem.Port) int
}

// Factory constructs a per-switch Balancer. sim provides the clock and
// timers (schemes with periodic work, like TLB, hook in here), rng is a
// private deterministic stream, and ports are the switch's uplinks.
type Factory func(sim *eventsim.Sim, rng *eventsim.RNG, ports []*netem.Port) Balancer

// ShortestQueue returns the index of the live port with the fewest
// queued packets, breaking ties uniformly at random so that
// simultaneous arrivals do not herd onto one queue. Down ports are
// skipped; if every port is down the choice does not matter (admission
// drops regardless), so a fixed index keeps the run deterministic. It
// is the primitive behind packet-level spraying in DRILL and TLB.
//
// With all ports up the scan consumes exactly the RNG values the
// pre-liveness implementation did, so healthy runs replay byte-for-byte.
func ShortestQueue(rng *eventsim.RNG, ports []*netem.Port) int {
	best := -1
	var bestLen, ties int
	for i, p := range ports {
		if p.Down() {
			continue
		}
		l := p.QueueLen()
		switch {
		case best < 0 || l < bestLen:
			best, bestLen, ties = i, l, 1
		case l == bestLen:
			// Reservoir-sample among ties for a uniform choice.
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// LowestDelay returns the index of the live port whose estimated
// delivery delay (backlog serialization + propagation) is smallest,
// breaking ties uniformly at random. On a symmetric fabric it
// coincides with ShortestQueue; on an asymmetric one it avoids slow or
// long paths that a packet-count comparison cannot see. Down ports are
// skipped (fixed index 0 when all are down), with the same
// healthy-run RNG stream as ShortestQueue.
func LowestDelay(rng *eventsim.RNG, ports []*netem.Port) int {
	best := -1
	var bestCost units.Time
	ties := 0
	for i, p := range ports {
		if p.Down() {
			continue
		}
		c := p.EstimatedDelay()
		switch {
		case best < 0 || c < bestCost:
			best, bestCost, ties = i, c, 1
		case c == bestCost:
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// RandomLive picks a uniformly random uplink, re-drawing over only the
// live uplinks when the first pick is down. In a healthy fabric it
// consumes exactly one RNG value — the historical stream of the
// random-spraying schemes — and at most two under faults.
func RandomLive(rng *eventsim.RNG, ports []*netem.Port) int {
	i := rng.Intn(len(ports))
	if !ports[i].Down() {
		return i
	}
	live := 0
	for _, p := range ports {
		if !p.Down() {
			live++
		}
	}
	if live == 0 {
		return i
	}
	k := rng.Intn(live)
	for j, p := range ports {
		if p.Down() {
			continue
		}
		if k == 0 {
			return j
		}
		k--
	}
	return i
}

// nextLive returns the first uplink after i in cyclic order that is
// up. With every port healthy it is the plain round-robin successor
// (i+1) mod n, which is also the fallback when all ports are down.
func nextLive(ports []*netem.Port, i int) int {
	n := len(ports)
	for d := 1; d <= n; d++ {
		if j := (i + d) % n; !ports[j].Down() {
			return j
		}
	}
	return (i + 1) % n
}

// sortedFlowIDs returns the map's keys ordered by (Src, Dst, Port),
// the canonical iteration order for flow-table sweeps: eviction itself
// is order-free, but a fixed order keeps any future side effect
// deterministic by construction.
func sortedFlowIDs[V any](m map[netem.FlowID]V) []netem.FlowID {
	ids := make([]netem.FlowID, 0, len(m))
	//simlint:allow maporder(keys are collected here and sorted below before any use)
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Port < b.Port
	})
	return ids
}

// ECMP returns a factory for Equal-Cost Multi-Path: a static hash of
// the flow identity selects the uplink, so a flow never moves. This is
// also the paper's "flow-level granularity" scheme.
func ECMP() Factory {
	return func(_ *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &ecmp{seed: rng.Uint64()}
	}
}

type ecmp struct {
	seed uint64
}

func (e *ecmp) Name() string { return "ecmp" }

func (e *ecmp) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	// Hash onto the live uplinks only, the way a real switch's routing
	// protocol would withdraw a dead next-hop from the ECMP group. With
	// every port up this is exactly hash mod n — flows do not move —
	// and flows hashed onto surviving ports stay put across a failure
	// of some other port only if their index is below the dead one;
	// that remap churn is inherent to hash-mod-live ECMP.
	live := 0
	for _, p := range ports {
		if !p.Down() {
			live++
		}
	}
	if live == 0 {
		return int(pkt.Flow.Hash(e.seed) % uint64(len(ports)))
	}
	k := int(pkt.Flow.Hash(e.seed) % uint64(live))
	for i, p := range ports {
		if p.Down() {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return 0
}

// RPS returns a factory for Random Packet Spraying: every packet takes
// a uniformly random uplink. This is the paper's "packet-level
// granularity" scheme.
func RPS() Factory {
	return func(_ *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &rps{rng: rng}
	}
}

type rps struct {
	rng *eventsim.RNG
}

func (r *rps) Name() string { return "rps" }

func (r *rps) Pick(_ *netem.Packet, ports []*netem.Port) int {
	return RandomLive(r.rng, ports)
}

// PrestoCell is the fixed flowcell size Presto uses (64 KB).
const PrestoCell = 64 * units.KiB

// prestoIdleTimeout is how long a Presto flow-table entry may sit
// unused before the idle sweep reclaims it. A flow whose FIN was lost
// at a faulted queue otherwise leaks its entry for the whole run. The
// timeout sits far above any transport retransmission timer (max RTO
// is 1 s), so a live-but-stalled flow is never evicted and healthy-run
// forwarding is unchanged.
const prestoIdleTimeout = 5 * units.Second

// Presto returns a factory for Presto-style load balancing: each flow
// is chopped into fixed-size flowcells and consecutive cells take
// consecutive uplinks (round-robin from a random start), oblivious to
// congestion.
func Presto(cell units.Bytes) Factory {
	if cell <= 0 {
		cell = PrestoCell
	}
	return func(sim *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &presto{sim: sim, cell: cell, rng: rng, flows: make(map[netem.FlowID]*prestoFlow)}
	}
}

type presto struct {
	sim        *eventsim.Sim
	cell       units.Bytes
	rng        *eventsim.RNG
	flows      map[netem.FlowID]*prestoFlow
	sweepArmed bool
}

type prestoFlow struct {
	port     int
	inCell   units.Bytes
	lastSeen units.Time
}

func (p *presto) Name() string { return "presto" }

func (p *presto) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	// Header-only packets (pure ACKs, handshakes) are routed
	// statelessly: they never carry FIN, so flow-table entries created
	// for reverse-direction ACK streams would survive the whole run.
	if pkt.IsShortHeader() {
		return RandomLive(p.rng, ports)
	}
	f, ok := p.flows[pkt.Flow]
	if !ok {
		f = &prestoFlow{port: RandomLive(p.rng, ports)}
		p.flows[pkt.Flow] = f
		p.armSweep()
	}
	f.lastSeen = p.sim.Now()
	if f.inCell >= p.cell {
		f.inCell = 0
		f.port = nextLive(ports, f.port)
	} else if ports[f.port].Down() {
		// The cell's path died mid-cell: move the remainder to the next
		// live uplink rather than blackholing it until the cell fills.
		f.port = nextLive(ports, f.port)
	}
	f.inCell += pkt.Wire
	if pkt.FIN {
		delete(p.flows, pkt.Flow)
	}
	return f.port
}

// armSweep schedules the idle sweep lazily — only while the table is
// non-empty — so a drained simulation has no pending balancer events
// and Run() terminates.
func (p *presto) armSweep() {
	if p.sweepArmed {
		return
	}
	p.sweepArmed = true
	p.sim.After(prestoIdleTimeout, p.sweep)
}

func (p *presto) sweep() {
	p.sweepArmed = false
	now := p.sim.Now()
	for _, id := range sortedFlowIDs(p.flows) {
		if now-p.flows[id].lastSeen >= prestoIdleTimeout {
			delete(p.flows, id)
		}
	}
	if len(p.flows) > 0 {
		p.armSweep()
	}
}

// LetFlowGap is the default flowlet inactivity timeout (150 µs, the
// value the paper uses in its motivation study).
const LetFlowGap = 150 * units.Microsecond

// LetFlow returns a factory for LetFlow: when the gap since a flow's
// previous packet exceeds the flowlet timeout, the flow(let) is
// re-routed to a uniformly random uplink; otherwise it sticks. This is
// also the paper's "flowlet-level granularity" scheme.
// letflowSweepPeriod is how often LetFlow reclaims idle flow-table
// entries (flows whose FIN was lost at a faulted queue). Eviction is
// behaviour-neutral: an entry idle longer than the flowlet gap would
// re-pick a random port on its next packet anyway, and a table miss
// draws from the same RNG stream — so healthy runs are byte-identical
// with or without the sweep.
const letflowSweepPeriod = 500 * units.Millisecond

func LetFlow(gap units.Time) Factory {
	if gap <= 0 {
		gap = LetFlowGap
	}
	return func(sim *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &letflow{sim: sim, gap: gap, rng: rng, flows: make(map[netem.FlowID]*letflowFlow)}
	}
}

type letflow struct {
	sim        *eventsim.Sim
	gap        units.Time
	rng        *eventsim.RNG
	flows      map[netem.FlowID]*letflowFlow
	sweepArmed bool
}

type letflowFlow struct {
	port     int
	lastSeen units.Time
}

func (l *letflow) Name() string { return "letflow" }

func (l *letflow) Pick(pkt *netem.Packet, ports []*netem.Port) int {
	// Header-only packets are routed statelessly (see presto.Pick):
	// pure ACKs never carry FIN, so tracking them would leak one table
	// entry per reverse-direction stream for the whole run.
	if pkt.IsShortHeader() {
		return RandomLive(l.rng, ports)
	}
	now := l.sim.Now()
	f, ok := l.flows[pkt.Flow]
	if !ok {
		f = &letflowFlow{port: RandomLive(l.rng, ports)}
		l.flows[pkt.Flow] = f
		l.armSweep()
	} else if now-f.lastSeen > l.gap || ports[f.port].Down() {
		// Gap expiry is the scheme's own re-pick rule; a dead current
		// port forces one too — sticking would blackhole the flowlet.
		f.port = RandomLive(l.rng, ports)
	}
	f.lastSeen = now
	if pkt.FIN {
		delete(l.flows, pkt.Flow)
		return f.port
	}
	return f.port
}

// armSweep schedules the idle sweep lazily, as in presto.armSweep.
func (l *letflow) armSweep() {
	if l.sweepArmed {
		return
	}
	l.sweepArmed = true
	l.sim.After(letflowSweepPeriod, l.sweep)
}

func (l *letflow) sweep() {
	l.sweepArmed = false
	now := l.sim.Now()
	for _, id := range sortedFlowIDs(l.flows) {
		if now-l.flows[id].lastSeen > l.gap {
			delete(l.flows, id)
		}
	}
	if len(l.flows) > 0 {
		l.armSweep()
	}
}

// DRILL returns a factory for DRILL(d, m): per packet, sample d random
// queues plus the m remembered least-loaded queues from the previous
// decision, and pick the shortest. DRILL(2, 1) is the configuration the
// DRILL paper recommends.
func DRILL(d, m int) Factory {
	if d <= 0 {
		d = 2
	}
	if m < 0 {
		m = 1
	}
	return func(_ *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &drill{d: d, m: m, rng: rng}
	}
}

type drill struct {
	d, m   int
	rng    *eventsim.RNG
	memory []int
}

func (d *drill) Name() string { return "drill" }

func (d *drill) Pick(_ *netem.Packet, ports []*netem.Port) int {
	best := -1
	bestLen := 0
	consider := func(i int) {
		if ports[i].Down() {
			return
		}
		l := ports[i].QueueLen()
		if best < 0 || l < bestLen {
			best, bestLen = i, l
		}
	}
	for i := 0; i < d.d; i++ {
		consider(d.rng.Intn(len(ports)))
	}
	for _, i := range d.memory {
		if i < len(ports) {
			consider(i)
		}
	}
	if best < 0 {
		// Every sampled and remembered uplink is down: fall back to a
		// scan for any live port (fixed index 0 if none remain).
		for i := range ports {
			if !ports[i].Down() {
				consider(i)
				break
			}
		}
	}
	if best < 0 {
		best = 0
	}
	if d.m > 0 {
		if len(d.memory) < d.m {
			d.memory = append(d.memory, best)
		} else {
			copy(d.memory, d.memory[1:])
			d.memory[len(d.memory)-1] = best
		}
	}
	return best
}

// PacketShortestQueue returns a factory that sends every packet to the
// instantaneous shortest queue — the idealised packet-level policy TLB
// applies to short flows, exposed standalone for ablations.
func PacketShortestQueue() Factory {
	return func(_ *eventsim.Sim, rng *eventsim.RNG, _ []*netem.Port) Balancer {
		return &psq{rng: rng}
	}
}

type psq struct {
	rng *eventsim.RNG
}

func (p *psq) Name() string { return "packet-sq" }

func (p *psq) Pick(_ *netem.Packet, ports []*netem.Port) int {
	return ShortestQueue(p.rng, ports)
}
