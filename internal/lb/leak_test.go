package lb

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// ackPkt builds a header-only pure ACK as the reverse direction of a
// data flow would emit it.
func ackPkt(flow netem.FlowID) *netem.Packet {
	return &netem.Packet{Flow: flow.Reversed(), Kind: netem.Ack, Wire: 40}
}

// driveFlows pushes n flows through the balancer: SYN, a few data
// packets interleaved with reverse-direction pure ACKs, then a FIN.
// This is the packet mix a real run produces, where the same leaf
// switch balances both a flow's data and the opposite flow's ACKs.
func driveFlows(b Balancer, ports []*netem.Port, n int) {
	for i := 0; i < n; i++ {
		flow := netem.FlowID{Src: i, Dst: 1000 + i, Port: i}
		syn := &netem.Packet{Flow: flow, Kind: netem.Syn, Wire: 40}
		b.Pick(syn, ports)
		for j := 0; j < 5; j++ {
			b.Pick(dataPkt(flow, 1460), ports)
			b.Pick(ackPkt(flow), ports)
		}
		fin := dataPkt(flow, 1460)
		fin.FIN = true
		b.Pick(fin, ports)
		// Trailing ACK of the FIN, after the data direction is gone.
		b.Pick(ackPkt(flow), ports)
	}
}

// TestPrestoFlowTableDrains: after every flow FINs, the table must be
// empty — pure ACK streams never FIN, so any entries created for them
// would persist for the whole run and inflate the Fig. 15b scheme-state
// measurement.
func TestPrestoFlowTableDrains(t *testing.T) {
	b, ports, _ := newBal(t, Presto(0), 4)
	driveFlows(b, ports, 50)
	if n := len(b.(*presto).flows); n != 0 {
		t.Fatalf("presto flow table holds %d entries after all flows finished, want 0", n)
	}
}

// TestLetFlowFlowTableDrains is the LetFlow counterpart of the Presto
// leak regression.
func TestLetFlowFlowTableDrains(t *testing.T) {
	b, ports, _ := newBal(t, LetFlow(0), 4)
	driveFlows(b, ports, 50)
	if n := len(b.(*letflow).flows); n != 0 {
		t.Fatalf("letflow flow table holds %d entries after all flows finished, want 0", n)
	}
}

// TestHeaderPacketsRoutedStatelessly: a pure ACK must not create any
// flow-table state, and must still land on a valid port.
func TestHeaderPacketsRoutedStatelessly(t *testing.T) {
	for name, f := range map[string]Factory{"presto": Presto(0), "letflow": LetFlow(0)} {
		b, ports, _ := newBal(t, f, 4)
		flow := netem.FlowID{Src: 7, Dst: 8, Port: 9}
		for i := 0; i < 10; i++ {
			got := b.Pick(ackPkt(flow), ports)
			if got < 0 || got >= len(ports) {
				t.Fatalf("%s routed ACK to invalid port %d", name, got)
			}
		}
		var size int
		switch bal := b.(type) {
		case *presto:
			size = len(bal.flows)
		case *letflow:
			size = len(bal.flows)
		}
		if size != 0 {
			t.Fatalf("%s created %d flow entries from pure ACKs", name, size)
		}
	}
}

// TestStatelessRoutingDeterminism: the header-only path consumes the
// balancer's own RNG stream, so runs with the same seed stay
// reproducible.
func TestStatelessRoutingDeterminism(t *testing.T) {
	pick := func() []int {
		s := eventsim.New()
		ports := testPorts(s, 8)
		b := LetFlow(0)(s, eventsim.NewRNG(99), ports)
		out := make([]int, 20)
		for i := range out {
			out[i] = b.Pick(ackPkt(netem.FlowID{Src: 1, Dst: 2}), ports)
		}
		return out
	}
	a, b := pick(), pick()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ACK routing diverged at %d: %v vs %v", i, a, b)
		}
	}
}

// driveFlowsLosingFIN pushes n flows through the balancer but "loses"
// every FIN upstream: the packet mix of a run where a flow's closing
// packets die at a faulted queue before reaching this switch. Without
// an idle sweep these entries leak for the rest of the run.
func driveFlowsLosingFIN(b Balancer, ports []*netem.Port, n int) {
	for i := 0; i < n; i++ {
		flow := netem.FlowID{Src: i, Dst: 1000 + i, Port: i}
		b.Pick(&netem.Packet{Flow: flow, Kind: netem.Syn, Wire: 40}, ports)
		for j := 0; j < 5; j++ {
			b.Pick(dataPkt(flow, 1460), ports)
		}
		// FIN dropped at the faulted queue: the balancer never sees it.
	}
}

// TestPrestoIdleSweepReclaimsLostFINs: entries orphaned by FINs lost at
// a faulted queue must drain once the flows go idle, and the sweep must
// disarm afterwards so the event queue can empty.
func TestPrestoIdleSweepReclaimsLostFINs(t *testing.T) {
	b, ports, s := newBal(t, Presto(0), 4)
	driveFlowsLosingFIN(b, ports, 50)
	if n := len(b.(*presto).flows); n != 50 {
		t.Fatalf("table holds %d entries before the sweep, want 50", n)
	}
	s.Run()
	if n := len(b.(*presto).flows); n != 0 {
		t.Fatalf("presto table holds %d orphaned entries after idle sweep, want 0", n)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events still pending after the table drained", s.Pending())
	}
}

// TestLetFlowIdleSweepReclaimsLostFINs is the LetFlow counterpart.
func TestLetFlowIdleSweepReclaimsLostFINs(t *testing.T) {
	b, ports, s := newBal(t, LetFlow(0), 4)
	driveFlowsLosingFIN(b, ports, 50)
	if n := len(b.(*letflow).flows); n != 50 {
		t.Fatalf("table holds %d entries before the sweep, want 50", n)
	}
	s.Run()
	if n := len(b.(*letflow).flows); n != 0 {
		t.Fatalf("letflow table holds %d orphaned entries after idle sweep, want 0", n)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events still pending after the table drained", s.Pending())
	}
}

// TestIdleSweepSparesLiveFlows: a flow that keeps sending (e.g. one
// retransmitting across a fault, max RTO 1s) must never be evicted by
// the Presto sweep, or its round-robin cell position would reset.
func TestIdleSweepSparesLiveFlows(t *testing.T) {
	b, ports, s := newBal(t, Presto(0), 4)
	flow := netem.FlowID{Src: 1, Dst: 2}
	deadline := 12 * units.Second
	for s.Now() < deadline {
		b.Pick(dataPkt(flow, 1460), ports)
		s.RunUntil(s.Now() + units.Second)
	}
	if n := len(b.(*presto).flows); n != 1 {
		t.Fatalf("live flow evicted: table size %d, want 1", n)
	}
}
