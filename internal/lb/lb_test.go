package lb

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

// testPorts builds n uplink ports with a shared sink.
func testPorts(s *eventsim.Sim, n int) []*netem.Port {
	ports := make([]*netem.Port, n)
	for i := range ports {
		ports[i] = netem.NewPort(s,
			netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
			netem.QueueConfig{Capacity: 1000},
			func(*netem.Packet) {}, "up")
	}
	return ports
}

func dataPkt(flow netem.FlowID, n units.Bytes) *netem.Packet {
	return &netem.Packet{Flow: flow, Kind: netem.Data, Payload: n, Wire: n + 40}
}

// fill puts k packets into port i's queue.
func fill(ports []*netem.Port, i, k int) {
	for j := 0; j < k; j++ {
		ports[i].Send(dataPkt(netem.FlowID{Src: 100 + i, Dst: 200}, 1460))
	}
}

func newBal(t *testing.T, f Factory, n int) (Balancer, []*netem.Port, *eventsim.Sim) {
	t.Helper()
	s := eventsim.New()
	ports := testPorts(s, n)
	return f(s, eventsim.NewRNG(1), ports), ports, s
}

func TestECMPIsStablePerFlow(t *testing.T) {
	b, ports, _ := newBal(t, ECMP(), 8)
	flow := netem.FlowID{Src: 1, Dst: 2, Port: 3}
	first := b.Pick(dataPkt(flow, 1460), ports)
	for i := 0; i < 100; i++ {
		if got := b.Pick(dataPkt(flow, 1460), ports); got != first {
			t.Fatalf("ECMP moved flow from %d to %d", first, got)
		}
	}
}

func TestECMPSpreadsAcrossFlows(t *testing.T) {
	b, ports, _ := newBal(t, ECMP(), 8)
	used := map[int]bool{}
	for i := 0; i < 200; i++ {
		used[b.Pick(dataPkt(netem.FlowID{Src: i, Dst: i + 1, Port: i}, 1460), ports)] = true
	}
	if len(used) < 6 {
		t.Fatalf("200 flows hashed onto only %d of 8 ports", len(used))
	}
}

func TestRPSUsesAllPortsUniformly(t *testing.T) {
	b, ports, _ := newBal(t, RPS(), 4)
	counts := make([]int, 4)
	flow := netem.FlowID{Src: 1, Dst: 2}
	for i := 0; i < 4000; i++ {
		counts[b.Pick(dataPkt(flow, 1460), ports)]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("port %d got %d of 4000 (non-uniform)", i, c)
		}
	}
}

func TestPrestoRotatesEveryCell(t *testing.T) {
	cell := units.Bytes(64 * units.KiB)
	b, ports, _ := newBal(t, Presto(cell), 4)
	flow := netem.FlowID{Src: 1, Dst: 2}
	var seq []int
	// 1460B payload + 40B header = 1500B wire; ~44 packets per cell.
	for i := 0; i < 200; i++ {
		seq = append(seq, b.Pick(dataPkt(flow, 1460), ports))
	}
	// Count transitions: should change port roughly every
	// ceil(65536/1500)=44 packets, and consecutive cells take
	// consecutive ports.
	changes := 0
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1] {
			changes++
			if seq[i] != (seq[i-1]+1)%4 {
				t.Fatalf("presto jumped from %d to %d (not round-robin)", seq[i-1], seq[i])
			}
		}
	}
	if changes < 3 || changes > 5 {
		t.Fatalf("presto changed ports %d times over 200 packets, want ~4", changes)
	}
}

func TestPrestoStateClearedOnFIN(t *testing.T) {
	b, ports, _ := newBal(t, Presto(0), 4)
	p := b.(*presto)
	flow := netem.FlowID{Src: 1, Dst: 2}
	b.Pick(dataPkt(flow, 1460), ports)
	if len(p.flows) != 1 {
		t.Fatalf("flow table size %d", len(p.flows))
	}
	fin := dataPkt(flow, 1460)
	fin.FIN = true
	b.Pick(fin, ports)
	if len(p.flows) != 0 {
		t.Fatalf("flow table not cleared on FIN: %d", len(p.flows))
	}
}

func TestLetFlowSticksWithinFlowlet(t *testing.T) {
	gap := 150 * units.Microsecond
	s := eventsim.New()
	ports := testPorts(s, 8)
	b := LetFlow(gap)(s, eventsim.NewRNG(1), ports)
	flow := netem.FlowID{Src: 1, Dst: 2}
	first := b.Pick(dataPkt(flow, 1460), ports)
	// Packets 10µs apart: same flowlet, same port. (RunUntil, not Run:
	// the idle sweep keeps an event pending while the table is
	// non-empty, and Run would fast-forward straight to it.)
	for i := 0; i < 50; i++ {
		s.RunUntil(s.Now() + 10*units.Microsecond)
		if got := b.Pick(dataPkt(flow, 1460), ports); got != first {
			t.Fatalf("letflow switched within flowlet gap")
		}
	}
}

func TestLetFlowSwitchesAfterGap(t *testing.T) {
	gap := 150 * units.Microsecond
	s := eventsim.New()
	ports := testPorts(s, 8)
	b := LetFlow(gap)(s, eventsim.NewRNG(1), ports)
	flow := netem.FlowID{Src: 1, Dst: 2}
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		seen[b.Pick(dataPkt(flow, 1460), ports)] = true
		s.RunUntil(s.Now() + gap + units.Microsecond)
	}
	if len(seen) < 2 {
		t.Fatal("letflow never rerouted across idle gaps")
	}
}

func TestDRILLPrefersShortQueues(t *testing.T) {
	b, ports, _ := newBal(t, DRILL(2, 1), 8)
	// Load every port except 5 heavily.
	for i := 0; i < 8; i++ {
		if i != 5 {
			fill(ports, i, 50)
		}
	}
	counts := make([]int, 8)
	for i := 0; i < 400; i++ {
		counts[b.Pick(dataPkt(netem.FlowID{Src: i}, 1460), ports)]++
	}
	// With d=2+memory, the empty port should dominate once found.
	if counts[5] < 200 {
		t.Fatalf("drill sent only %d of 400 to the empty port: %v", counts[5], counts)
	}
}

func TestShortestQueuePicksMinimum(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	fill(ports, 0, 10)
	fill(ports, 1, 5)
	fill(ports, 2, 1)
	fill(ports, 3, 7)
	rng := eventsim.NewRNG(1)
	for i := 0; i < 10; i++ {
		if got := ShortestQueue(rng, ports); got != 2 {
			t.Fatalf("ShortestQueue = %d, want 2", got)
		}
	}
}

func TestShortestQueueBreaksTiesUniformly(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	// All empty: ties everywhere.
	rng := eventsim.NewRNG(1)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[ShortestQueue(rng, ports)]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("tie-break non-uniform at port %d: %v", i, counts)
		}
	}
	_ = s
}

func TestPacketShortestQueueFollowsLoadShifts(t *testing.T) {
	b, ports, _ := newBal(t, PacketShortestQueue(), 3)
	fill(ports, 0, 5)
	fill(ports, 1, 5)
	if got := b.Pick(dataPkt(netem.FlowID{Src: 1}, 1460), ports); got != 2 {
		t.Fatalf("picked %d, want empty port 2", got)
	}
	fill(ports, 2, 20)
	got := b.Pick(dataPkt(netem.FlowID{Src: 1}, 1460), ports)
	if got == 2 {
		t.Fatal("still picking the now-longest queue")
	}
}

func TestSchemeNames(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 2)
	for name, f := range map[string]Factory{
		"ecmp":      ECMP(),
		"rps":       RPS(),
		"presto":    Presto(0),
		"letflow":   LetFlow(0),
		"drill":     DRILL(0, -1),
		"packet-sq": PacketShortestQueue(),
	} {
		b := f(s, eventsim.NewRNG(1), ports)
		if b.Name() != name {
			t.Fatalf("Name() = %q, want %q", b.Name(), name)
		}
		// Every scheme must return a valid index.
		if got := b.Pick(dataPkt(netem.FlowID{Src: 1, Dst: 2}, 1460), ports); got < 0 || got >= 2 {
			t.Fatalf("%s picked invalid port %d", name, got)
		}
	}
}

func TestLowestDelayAvoidsSlowLink(t *testing.T) {
	s := eventsim.New()
	ports := []*netem.Port{
		netem.NewPort(s, netem.LinkConfig{Bandwidth: units.Gbps, Delay: 10 * units.Microsecond},
			netem.QueueConfig{Capacity: 1000}, func(*netem.Packet) {}, "fast"),
		netem.NewPort(s, netem.LinkConfig{Bandwidth: units.Gbps, Delay: 2 * units.Millisecond},
			netem.QueueConfig{Capacity: 1000}, func(*netem.Packet) {}, "slow"),
	}
	rng := eventsim.NewRNG(1)
	for i := 0; i < 20; i++ {
		if got := LowestDelay(rng, ports); got != 0 {
			t.Fatalf("LowestDelay picked the slow empty port")
		}
	}
	// Load the fast port beyond the 2ms equivalent (~167 packets).
	fill(ports, 0, 200)
	if got := LowestDelay(rng, ports); got != 1 {
		t.Fatal("LowestDelay ignored a 2.4ms backlog on the fast port")
	}
}

func TestLowestDelayMatchesShortestQueueOnSymmetricFabric(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	fill(ports, 0, 9)
	fill(ports, 1, 3)
	fill(ports, 2, 6)
	fill(ports, 3, 12)
	a := ShortestQueue(eventsim.NewRNG(1), ports)
	b := LowestDelay(eventsim.NewRNG(1), ports)
	if a != 1 || b != 1 {
		t.Fatalf("symmetric fabric disagreement: sq=%d, ld=%d", a, b)
	}
}
