package lb

import (
	"testing"

	"tlb/internal/eventsim"
	"tlb/internal/netem"
	"tlb/internal/units"
)

func TestFlowBenderStableWithoutCongestion(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 8)
	b := FlowBender(FlowBenderConfig{Window: 100 * units.Microsecond, ECNThreshold: 20})(s, eventsim.NewRNG(1), ports)
	flow := netem.FlowID{Src: 1, Dst: 2}
	first := b.Pick(dataPkt(flow, 1460), ports)
	for i := 0; i < 100; i++ {
		s.RunUntil(s.Now() + 10*units.Microsecond)
		if got := b.Pick(dataPkt(flow, 1460), ports); got != first {
			t.Fatal("flowbender moved an uncongested flow")
		}
	}
}

func TestFlowBenderReroutesUnderPersistentCongestion(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 8)
	b := FlowBender(FlowBenderConfig{Window: 50 * units.Microsecond, ECNThreshold: 5})(s, eventsim.NewRNG(1), ports)
	flow := netem.FlowID{Src: 1, Dst: 2}
	first := b.Pick(dataPkt(flow, 1460), ports)
	// Keep the chosen port's queue above the marking threshold; the
	// flow must eventually re-hash away.
	moved := false
	for i := 0; i < 200 && !moved; i++ {
		for ports[first].QueueLen() < 8 {
			fill(ports, first, 4)
		}
		s.RunUntil(s.Now() + 10*units.Microsecond)
		if got := b.Pick(dataPkt(flow, 1460), ports); got != first {
			moved = true
		}
	}
	if !moved {
		t.Fatal("flowbender never rerouted a persistently congested flow")
	}
}

func TestCongaFlowletPicksLeastLoadedAtBoundary(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	b := CongaFlowlet(100*units.Microsecond)(s, eventsim.NewRNG(1), ports)
	flow := netem.FlowID{Src: 1, Dst: 2}
	// All but port 2 loaded: first pick must be 2.
	fill(ports, 0, 50)
	fill(ports, 1, 50)
	fill(ports, 3, 50)
	if got := b.Pick(dataPkt(flow, 1460), ports); got != 2 {
		t.Fatalf("initial flowlet on port %d, want 2", got)
	}
	// Within the gap the flowlet sticks even if loads shift.
	fill(ports, 2, 100)
	if got := b.Pick(dataPkt(flow, 1460), ports); got != 2 {
		t.Fatal("conga switched within a flowlet")
	}
	// After the gap it re-evaluates and escapes the now-loaded port.
	s.RunUntil(s.Now() + 150*units.Microsecond)
	// (queues have partially drained; reload the others)
	fill(ports, 0, 80)
	fill(ports, 1, 80)
	fill(ports, 3, 80)
	fill(ports, 2, 200)
	if got := b.Pick(dataPkt(flow, 1460), ports); got == 2 {
		t.Fatal("conga stayed on the most congested port after the flowlet gap")
	}
}

func TestHermesCautiousReroute(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	b := Hermes(HermesConfig{RerouteBytes: 10 * units.KiB, Degrade: 2})(s, eventsim.NewRNG(1), ports)
	flow := netem.FlowID{Src: 1, Dst: 2}
	first := b.Pick(dataPkt(flow, 1460), ports)

	// Mild degradation (one extra packet over the others): not a 2x
	// win, Hermes must stay even after the byte budget.
	for i := range ports {
		fill(ports, i, 3)
	}
	fill(ports, first, 1)
	for i := 0; i < 20; i++ {
		if got := b.Pick(dataPkt(flow, 1460), ports); got != first {
			t.Fatal("hermes rerouted on a marginal difference")
		}
	}
	// Severe degradation: now it should move once the budget is met.
	fill(ports, first, 300)
	moved := false
	for i := 0; i < 20; i++ {
		if got := b.Pick(dataPkt(flow, 1460), ports); got != first {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("hermes never escaped a severely degraded path")
	}
}

func TestHermesRespectsByteBudget(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	b := Hermes(HermesConfig{RerouteBytes: units.MiB, Degrade: 2})(s, eventsim.NewRNG(1), ports)
	flow := netem.FlowID{Src: 1, Dst: 2}
	first := b.Pick(dataPkt(flow, 1460), ports)
	fill(ports, first, 300) // severe, but budget not met
	for i := 0; i < 50; i++ {
		if got := b.Pick(dataPkt(flow, 1460), ports); got != first {
			t.Fatal("hermes rerouted before sending its byte budget")
		}
	}
}

func TestWCMPWeightsByBandwidth(t *testing.T) {
	s := eventsim.New()
	mk := func(bw units.Bandwidth) *netem.Port {
		return netem.NewPort(s, netem.LinkConfig{Bandwidth: bw, Delay: 10 * units.Microsecond},
			netem.QueueConfig{Capacity: 1000}, func(*netem.Packet) {}, "p")
	}
	// Port 0 has 3x the capacity of port 1.
	ports := []*netem.Port{mk(3 * units.Gbps), mk(units.Gbps)}
	b := WCMP()(s, eventsim.NewRNG(1), ports)
	counts := make([]int, 2)
	for i := 0; i < 4000; i++ {
		counts[b.Pick(dataPkt(netem.FlowID{Src: i, Dst: i + 1, Port: i}, 1460), ports)]++
	}
	frac := float64(counts[0]) / 4000
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("3:1 WCMP sent %.2f of flows to the fat link, want ~0.75", frac)
	}
	// Per-flow stability, like ECMP.
	flow := netem.FlowID{Src: 5, Dst: 6}
	first := b.Pick(dataPkt(flow, 1460), ports)
	for i := 0; i < 50; i++ {
		if b.Pick(dataPkt(flow, 1460), ports) != first {
			t.Fatal("wcmp moved a flow")
		}
	}
}

func TestRelatedSchemeNames(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 2)
	for name, f := range map[string]Factory{
		"flowbender": FlowBender(FlowBenderConfig{}),
		"conga":      CongaFlowlet(0),
		"hermes":     Hermes(HermesConfig{}),
		"wcmp":       WCMP(),
	} {
		b := f(s, eventsim.NewRNG(1), ports)
		if b.Name() != name {
			t.Fatalf("Name() = %q, want %q", b.Name(), name)
		}
		if got := b.Pick(dataPkt(netem.FlowID{Src: 1, Dst: 2}, 1460), ports); got < 0 || got >= 2 {
			t.Fatalf("%s picked invalid port %d", name, got)
		}
	}
}

func TestRelatedSchemesCleanUpOnFIN(t *testing.T) {
	s := eventsim.New()
	ports := testPorts(s, 4)
	type tabled interface{ flowCount() int }
	schemes := []struct {
		name string
		bal  Balancer
		size func() int
	}{}
	cg := CongaFlowlet(0)(s, eventsim.NewRNG(1), ports).(*congaFlowlet)
	hm := Hermes(HermesConfig{})(s, eventsim.NewRNG(1), ports).(*hermes)
	fb := FlowBender(FlowBenderConfig{})(s, eventsim.NewRNG(1), ports).(*flowBender)
	_ = schemes
	for i := 0; i < 10; i++ {
		flow := netem.FlowID{Src: i, Dst: 100}
		for j := 0; j < 3; j++ {
			cg.Pick(dataPkt(flow, 1460), ports)
			hm.Pick(dataPkt(flow, 1460), ports)
			fb.Pick(dataPkt(flow, 1460), ports)
		}
		fin := dataPkt(flow, 1460)
		fin.FIN = true
		cg.Pick(fin, ports)
		fin2 := dataPkt(flow, 1460)
		fin2.FIN = true
		hm.Pick(fin2, ports)
		fin3 := dataPkt(flow, 1460)
		fin3.FIN = true
		fb.Pick(fin3, ports)
	}
	if len(cg.flows) != 0 || len(hm.flows) != 0 || len(fb.flows) != 0 {
		t.Fatalf("state leak: conga=%d hermes=%d flowbender=%d",
			len(cg.flows), len(hm.flows), len(fb.flows))
	}
}
